/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 */

#ifndef PICOSIM_BENCH_BENCH_UTIL_HH
#define PICOSIM_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "runtime/harness.hh"
#include "service/job_manager.hh"
#include "spec/engine.hh"
#include "spec/run_spec.hh"
#include "spec/workload_registry.hh"

namespace picosim::bench
{

/**
 * Minimal machine-readable benchmark emitter: one JSON file holding an
 * array of flat row objects ({"string": "x", "number": 1.5, ...}), so
 * the perf trajectory of a driver can be recorded and diffed across PRs
 * (BENCH_kernel.json style). Rows are buffered and written on write().
 */
class BenchJson
{
  public:
    explicit BenchJson(std::string path) : path_(std::move(path)) {}

    void
    beginRow()
    {
        rows_.emplace_back();
    }

    void
    field(const char *name, const std::string &value)
    {
        addRaw(name, '"' + escape(value) + '"');
    }

    void
    field(const char *name, const char *value)
    {
        field(name, std::string(value));
    }

    void
    field(const char *name, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        addRaw(name, buf);
    }

    void
    field(const char *name, std::uint64_t value)
    {
        addRaw(name, std::to_string(value));
    }

    void
    field(const char *name, bool value)
    {
        addRaw(name, value ? "true" : "false");
    }

    /** Write the file; @return success (failures are non-fatal: a bench
     *  must still report to stdout when the CWD is read-only). */
    bool
    write() const
    {
        std::ofstream out(path_);
        if (!out)
            return false;
        out << "[\n";
        for (std::size_t i = 0; i < rows_.size(); ++i) {
            out << "  {" << rows_[i] << '}';
            if (i + 1 < rows_.size())
                out << ',';
            out << '\n';
        }
        out << "]\n";
        return out.good();
    }

    const std::string &path() const { return path_; }

  private:
    static std::string
    escape(const std::string &s)
    {
        std::string r;
        for (char c : s) {
            if (c == '"' || c == '\\')
                r += '\\';
            r += c;
        }
        return r;
    }

    void
    addRaw(const char *name, const std::string &json)
    {
        std::string &row = rows_.back();
        if (!row.empty())
            row += ", ";
        row += '"';
        row += name;
        row += "\": ";
        row += json;
    }

    std::string path_;
    std::vector<std::string> rows_;
};

/**
 * Stamp the host-parallelism context into the current row of @p json:
 * hostConcurrency (hardware threads of the machine that produced the
 * row) and workerThreads (host threads this measurement actually used).
 * Every BENCH_*.json row gets this, so a pool/PDES speedup measured on a
 * 1-CPU box is recognizable as unmeasurable rather than as a regression.
 */
inline void
stampHost(BenchJson &json, unsigned workerThreads = 1)
{
    json.field("hostConcurrency",
               std::uint64_t{std::thread::hardware_concurrency()});
    json.field("workerThreads", std::uint64_t{workerThreads});
}

/**
 * Stamp the serialized RunSpec that produced the current row into @p
 * json. The single-line canonical form parses back bit-exactly, so any
 * BENCH_*.json row can be replayed with `picosim_run --spec` (the
 * serialize() output never contains newlines, which BenchJson's escaper
 * does not handle).
 */
inline void
stampSpec(BenchJson &json, const spec::RunSpec &spec)
{
    json.field("spec", spec.serialize());
}

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** True when PICOSIM_QUICK is set: benches subsample their sweeps. */
inline bool
quickMode()
{
    const char *env = std::getenv("PICOSIM_QUICK");
    return env && *env && *env != '0';
}

/** A canonical RunSpec for @p workload with @p args under @p kind on
 *  the default machine — the shared shorthand of the bench drivers. */
inline spec::RunSpec
canonicalSpec(const std::string &workload, spec::WorkloadArgs args,
              rt::RuntimeKind kind = rt::RuntimeKind::Phentos)
{
    spec::RunSpec s;
    s.workload = workload;
    s.wl = std::move(args);
    s.runtime = kind;
    s.canonicalize();
    return s;
}

// -- Local job service ---------------------------------------------------
//
// The bench drivers' sweep loops execute through the same job core
// picosim_run and picosim_serve use (svc::JobManager, in-process); only
// kernel-timing microbenches that time Engine calls directly stay on
// the engine to keep the measured path free of job bookkeeping.

/** The process-wide job manager the sequential bench loops share. */
inline svc::JobManager &
localJobService()
{
    static svc::JobManager mgr; // hardware-concurrency workers
    return mgr;
}

/** Run one spec as a single-run job on the local job service. */
inline rt::RunResult
runJob(const spec::RunSpec &s)
{
    svc::JobManager &mgr = localJobService();
    svc::JobSpec js;
    js.runs = {s};
    const std::uint64_t id = mgr.submit(std::move(js));
    const svc::JobStatus st = mgr.wait(id);
    if (st.state == svc::JobState::Failed)
        throw spec::SpecError(st.error);
    std::vector<svc::RunRow> rows = mgr.runRows(id);
    return std::move(rows.at(0).result);
}

/** runJob plus the serial baseline (fills serialCycles) — the job-core
 *  equivalent of spec::Engine::runWithSpeedup. */
inline rt::RunResult
runJobWithSpeedup(const spec::RunSpec &s)
{
    if (s.runtime == rt::RuntimeKind::Serial) {
        rt::RunResult res = runJob(s);
        res.serialCycles = res.cycles;
        return res;
    }
    spec::RunSpec serial = s;
    serial.runtime = rt::RuntimeKind::Serial;
    svc::JobManager &mgr = localJobService();
    svc::JobSpec js;
    js.runs = {s, std::move(serial)};
    const std::uint64_t id = mgr.submit(std::move(js));
    const svc::JobStatus st = mgr.wait(id);
    if (st.state == svc::JobState::Failed)
        throw spec::SpecError(st.error);
    std::vector<svc::RunRow> rows = mgr.runRows(id);
    rt::RunResult res = std::move(rows.at(0).result);
    res.serialCycles = rows.at(1).result.cycles;
    return res;
}

/**
 * Run @p specs as one job on a dedicated @p workers-thread manager
 * (0 = hardware concurrency); results are positional and identical to
 * running each spec alone. @p onResult fires in run order as rows
 * complete. Throws on a failed job (first error message).
 */
inline std::vector<rt::RunResult>
runJobs(const std::vector<spec::RunSpec> &specs, unsigned workers = 0,
        const std::function<void(std::size_t, const rt::RunResult &)>
            &onResult = nullptr)
{
    if (specs.empty())
        return {};
    svc::JobManager::Params mp;
    mp.workers = workers;
    svc::JobManager mgr(mp);
    svc::JobSpec js;
    js.runs = specs;
    const std::uint64_t id = mgr.submit(std::move(js));
    std::vector<rt::RunResult> out;
    out.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        auto row = mgr.waitRow(id, i);
        if (row && onResult)
            onResult(i, row->result);
        out.push_back(row ? std::move(row->result) : rt::RunResult{});
    }
    const svc::JobStatus st = mgr.wait(id);
    if (st.state == svc::JobState::Failed)
        throw spec::SpecError(st.error);
    return out;
}

/**
 * Measure the Figure 7 lifetime-overhead metric: single-core run (the
 * measuring thread both generates and executes tasks, as in the paper's
 * deadlock discussion), near-empty payloads, overhead = wall / tasks.
 */
inline double
lifetimeOverhead(spec::RunSpec s)
{
    s.cores = 1;
    const rt::RunResult res = runJob(s);
    if (!res.completed) {
        std::fprintf(stderr, "warning: %s did not complete %s\n",
                     res.runtime.c_str(), res.program.c_str());
        return 0.0;
    }
    return res.overheadPerTask();
}

} // namespace picosim::bench

#endif // PICOSIM_BENCH_BENCH_UTIL_HH
