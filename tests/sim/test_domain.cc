/**
 * @file
 * Unit tests for the conservative-PDES domain partitioning of the kernel.
 *
 * The contract under test, at the wheel level and away from the full
 * system: a partitioned simulator executes lookahead windows whose
 * results are bit-identical for ANY host thread count and ANY assignment
 * of components to domains, and — when all cross-domain traffic flows
 * through timed ports / wakes with latency >= the lookahead — identical
 * to the plain unpartitioned sequential kernel as well.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "sim/kernel.hh"
#include "sim/port.hh"
#include "sim/ticked.hh"

using namespace picosim;
using namespace picosim::sim;

namespace
{

constexpr Cycle kRingLatency = 3;

/**
 * One station of a token ring: pops its input port, journals the
 * (cycle, value) it saw, and forwards value+1 to the next station's
 * port. The only inter-station coupling is the TimedPort, so a ring
 * spread over PDES domains exercises exactly the cross-domain staging
 * path and nothing else.
 */
class RingNode : public Ticked
{
  public:
    RingNode(const Clock &clk, unsigned id, int hops, bool &done)
        : Ticked("ring" + std::to_string(id)), clk_(clk), hops_(hops),
          done_(done),
          in(clk, PortParams{/*capacity=*/8, kRingLatency, /*width=*/0},
             nullptr, {}, this)
    {
    }

    void
    tick() override
    {
        while (in.frontReady()) {
            const int v = in.pop();
            journal.emplace_back(clk_.now(), v);
            if (v >= hops_)
                done_ = true;
            else if (next != nullptr)
                next->push(v + 1);
        }
    }

    bool active() const override { return false; }
    Cycle wakeAt() const override { return in.nextReadyCycle(); }

    TimedPort<int> *next = nullptr;
    TimedPort<int> in;
    std::vector<std::pair<Cycle, int>> journal;

  private:
    const Clock &clk_;
    const int hops_;
    bool &done_;
};

struct RingResult
{
    Cycle finalCycle = 0;
    std::vector<std::vector<std::pair<Cycle, int>>> journals;

    bool
    operator==(const RingResult &o) const
    {
        return finalCycle == o.finalCycle && journals == o.journals;
    }
};

/**
 * Build and run a token ring. @p domainOf[i] assigns node i to a PDES
 * domain; an empty vector builds the plain unpartitioned simulator.
 */
RingResult
runRing(const std::vector<unsigned> &domainOf, unsigned numDomains,
        unsigned hostThreads, unsigned numNodes, int hops)
{
    Simulator sim;
    const bool windowed = numDomains > 1;
    if (windowed) {
        sim.configureDomains(numDomains);
        sim.setHostThreads(hostThreads);
    }

    bool done = false;
    std::vector<std::unique_ptr<RingNode>> nodes;
    for (unsigned i = 0; i < numNodes; ++i) {
        const unsigned dom = windowed ? domainOf[i] : 0u;
        nodes.push_back(std::make_unique<RingNode>(sim.domainClock(dom), i,
                                                   hops, done));
        sim.addTicked(nodes.back().get(), dom);
    }
    for (unsigned i = 0; i < numNodes; ++i) {
        RingNode &producer = *nodes[i];
        RingNode &consumer = *nodes[(i + 1) % numNodes];
        producer.next = &consumer.in;
        if (windowed && domainOf[i] != domainOf[(i + 1) % numNodes]) {
            consumer.in.enableCrossDomainStaging(
                sim, sim.domainClock(domainOf[i]));
        }
    }
    if (windowed)
        EXPECT_EQ(sim.lookahead(), kRingLatency);

    // Seed token, injected before the run (harness context).
    nodes[0]->in.push(1);
    EXPECT_TRUE(sim.run([ptr = &done] { return *ptr; }, 100'000));

    RingResult r;
    r.finalCycle = sim.clock().now();
    for (auto &n : nodes)
        r.journals.push_back(std::move(n->journal));
    return r;
}

} // namespace

TEST(PdesDomains, ConfigureOneDomainIsSequentialFallback)
{
    Simulator sim;
    sim.configureDomains(1);
    EXPECT_FALSE(sim.partitioned());
    EXPECT_EQ(sim.numDomains(), 1u);
    EXPECT_EQ(sim.lookahead(), 1u);
}

TEST(PdesDomains, LookaheadIsMinCrossDomainLatency)
{
    Simulator sim;
    sim.configureDomains(2);
    EXPECT_TRUE(sim.partitioned());
    EXPECT_EQ(sim.numDomains(), 2u);
    EXPECT_EQ(sim.lookahead(), 1u); // no links yet
    sim.registerCrossDomainLink(7, [] {});
    sim.registerCrossDomainLink(3, [] {});
    sim.registerCrossDomainLink(5, [] {});
    EXPECT_EQ(sim.lookahead(), 3u);
}

TEST(PdesDomains, PairwiseLookaheadMatrixDerivation)
{
    Simulator sim;
    sim.configureDomains(3);
    // Unconstrained pairs contribute nothing to the window bound.
    EXPECT_EQ(sim.pairLookahead(0, 1), kCycleNever);
    EXPECT_EQ(sim.minOutLookahead(2), kCycleNever);

    sim.registerCrossDomainLink(0, 1, 4, [] {}, "a");
    sim.registerCrossDomainLink(0, 1, 9, [] {}, "b"); // looser duplicate
    sim.registerCrossDomainLink(1, 2, 6, [] {}, "c");
    EXPECT_EQ(sim.pairLookahead(0, 1), 4u); // min per ordered pair
    EXPECT_EQ(sim.pairLookahead(1, 2), 6u);
    EXPECT_EQ(sim.pairLookahead(1, 0), kCycleNever); // ordered: no reverse
    EXPECT_EQ(sim.minOutLookahead(0), 4u);
    EXPECT_EQ(sim.minOutLookahead(1), 6u);
    EXPECT_EQ(sim.minOutLookahead(2), kCycleNever); // no out-links at all
    EXPECT_EQ(sim.lookahead(), 4u);

    // An endpoint-less (legacy) link constrains EVERY ordered pair, but
    // never loosens a tighter concrete one.
    sim.registerCrossDomainLink(5, [] {});
    EXPECT_EQ(sim.pairLookahead(0, 1), 4u);
    EXPECT_EQ(sim.pairLookahead(1, 0), 5u);
    EXPECT_EQ(sim.pairLookahead(2, 0), 5u);
    EXPECT_EQ(sim.minOutLookahead(0), 4u);
    EXPECT_EQ(sim.minOutLookahead(2), 5u);
    EXPECT_EQ(sim.lookahead(), 4u);
}

TEST(PdesDomains, ZeroLatencyCrossDomainLinkFailsNamingTheLink)
{
    // A latency-0 cross-domain edge means an empty conservative window —
    // the partition must be refused up front, and the diagnostic must
    // name the offending link so the user can find it in the topology.
    Simulator sim;
    sim.configureDomains(2);
    try {
        sim.registerCrossDomainLink(0, 1, 0, [] {}, "manager.c3.readyQueue");
        FAIL() << "latency-0 cross-domain link must be fatal";
    } catch (const std::runtime_error &e) {
        EXPECT_NE(std::string(e.what()).find("manager.c3.readyQueue"),
                  std::string::npos)
            << "diagnostic must name the offending link, got: " << e.what();
    }
}

TEST(PdesDomains, RingMatchesSequentialKernelExactly)
{
    // All cross-domain traffic rides ports whose latency equals the
    // lookahead, so the windowed schedule must reproduce the plain
    // sequential kernel's journal bit for bit — and the journal, not
    // just the final state, so intermediate timing cannot drift.
    const unsigned numNodes = 6;
    const int hops = 50;
    const RingResult plain = runRing({}, 1, 1, numNodes, hops);
    ASSERT_FALSE(plain.journals[0].empty());

    const std::vector<unsigned> domainOf = {0, 1, 2, 0, 1, 2};
    for (unsigned threads : {1u, 2u, 3u}) {
        const RingResult windowed =
            runRing(domainOf, 3, threads, numNodes, hops);
        EXPECT_EQ(plain.journals, windowed.journals)
            << "hostThreads=" << threads;
    }
}

TEST(PdesDomains, ShuffledDomainAssignmentCannotChangeResults)
{
    // Which domain a node lands in (and therefore which per-domain
    // registration slot it gets, which thread runs it, and which edges
    // become staging links) is an execution detail — every labeling
    // must produce the identical result, including the final clock.
    const unsigned numNodes = 6;
    const int hops = 50;
    const std::vector<std::vector<unsigned>> labelings = {
        {0, 1, 2, 0, 1, 2},
        {2, 0, 1, 1, 0, 2},
        {1, 1, 0, 2, 2, 0},
    };
    const RingResult reference =
        runRing(labelings[0], 3, 1, numNodes, hops);
    for (const auto &domainOf : labelings) {
        for (unsigned threads : {1u, 2u, 3u}) {
            const RingResult got =
                runRing(domainOf, 3, threads, numNodes, hops);
            EXPECT_EQ(reference, got) << "threads=" << threads;
        }
    }
}

TEST(PdesDomains, RingBitIdenticalAtOddAndPrimeDomainCounts)
{
    // Nothing in the windowed loop may assume an even or power-of-two
    // partition: 5- and 7-way cuts, with thread counts that divide the
    // domain count unevenly (including more threads than domains, which
    // must clamp), all replay the sequential journal bit for bit.
    const int hops = 60;
    {
        const unsigned numNodes = 10;
        const RingResult plain = runRing({}, 1, 1, numNodes, hops);
        ASSERT_FALSE(plain.journals[0].empty());
        const std::vector<std::vector<unsigned>> labelings = {
            {0, 1, 2, 3, 4, 0, 1, 2, 3, 4}, // striped
            {3, 0, 4, 1, 2, 2, 4, 0, 3, 1}, // shuffled, one same-domain edge
        };
        for (const auto &domainOf : labelings)
            for (unsigned threads : {1u, 2u, 3u, 5u})
                EXPECT_EQ(plain.journals,
                          runRing(domainOf, 5, threads, numNodes, hops)
                              .journals)
                    << "domains=5 threads=" << threads;
    }
    {
        const unsigned numNodes = 7;
        const RingResult plain = runRing({}, 1, 1, numNodes, hops);
        const std::vector<std::vector<unsigned>> labelings = {
            {0, 1, 2, 3, 4, 5, 6}, // one node per domain, in order
            {5, 2, 6, 0, 3, 1, 4}, // shuffled labels
        };
        for (const auto &domainOf : labelings)
            for (unsigned threads : {1u, 2u, 4u, 7u, 11u})
                EXPECT_EQ(plain.journals,
                          runRing(domainOf, 7, threads, numNodes, hops)
                              .journals)
                    << "domains=7 threads=" << threads;
    }
}

namespace
{

/** Ticks every cycle for @p n cycles, then goes idle forever. */
class BusyLoop : public Ticked
{
  public:
    BusyLoop(const Clock &clk, unsigned n)
        : Ticked("busy"), clk_(clk), remaining_(n)
    {
    }

    void
    tick() override
    {
        if (remaining_ > 0) {
            --remaining_;
            journal.push_back(clk_.now());
        }
    }

    bool active() const override { return remaining_ > 0; }

    std::vector<Cycle> journal;

  private:
    const Clock &clk_;
    unsigned remaining_;
};

/** One far-future self-armed tick: idle until @p due, tick once, done. */
class Sleeper : public Ticked
{
  public:
    Sleeper(const Clock &clk, Cycle due)
        : Ticked("sleeper"), clk_(clk), due_(due)
    {
    }

    void tick() override { journal.push_back(clk_.now()); }
    bool active() const override { return false; }

    Cycle
    wakeAt() const override
    {
        return clk_.now() < due_ ? due_ : kCycleNever;
    }

    std::vector<Cycle> journal;

  private:
    const Clock &clk_;
    const Cycle due_;
};

struct IdleResult
{
    std::vector<Cycle> busy, sleeper;
    std::uint64_t run1 = 0, skipped1 = 0, barriers = 0;
};

IdleResult
runIdleTopology(bool windowed, unsigned hostThreads)
{
    constexpr unsigned kBusyCycles = 600;
    constexpr Cycle kDue = 5000;
    Simulator sim;
    if (windowed) {
        sim.configureDomains(2);
        sim.setHostThreads(hostThreads);
        // Sparse topology: links declared both ways, but no traffic ever
        // staged — the window bound still derives from the matrix.
        sim.registerCrossDomainLink(0, 1, 4, [] {}, "fwd");
        sim.registerCrossDomainLink(1, 0, 4, [] {}, "rev");
    }
    BusyLoop busy(sim.domainClock(0), kBusyCycles);
    sim.addTicked(&busy, 0);
    Sleeper sleeper(sim.domainClock(windowed ? 1 : 0), kDue);
    sim.addTicked(&sleeper, windowed ? 1 : 0);
    sim.run([&] { return sleeper.journal.size() >= 2; }, 20'000);
    IdleResult r;
    r.busy = busy.journal;
    r.sleeper = sleeper.journal;
    if (windowed) {
        r.run1 = sim.domainWindowsRun(1);
        r.skipped1 = sim.domainWindowsSkipped(1);
        r.barriers = sim.windowBarriers();
    }
    return r;
}

} // namespace

TEST(PdesDomains, IdleDomainSkipsWindowsAndFastForwardsGaps)
{
    // Regression for the idle-window fast path: a domain whose next event
    // is thousands of cycles out must (a) skip the windows it has nothing
    // to do in, (b) not drag the coordinator through the dead gap one
    // lookahead at a time once EVERY domain is idle, and (c) change no
    // simulated result while doing either.
    const IdleResult plain = runIdleTopology(false, 1);
    EXPECT_EQ(plain.sleeper, (std::vector<Cycle>{0, 5000}));
    ASSERT_EQ(plain.busy.size(), 600u);

    const IdleResult one = runIdleTopology(true, 1);
    EXPECT_EQ(one.busy, plain.busy);
    EXPECT_EQ(one.sleeper, plain.sleeper);
    // ~150 four-cycle windows while the busy domain grinds: the sleeping
    // domain must skip nearly all of them and run only a handful.
    EXPECT_GT(one.skipped1, 100u);
    EXPECT_LE(one.run1, 4u);
    // Crawling the 600..5000 gap window by window would cost ~1100 extra
    // barriers; the global-next jump must take it in one.
    EXPECT_LT(one.barriers, 400u);

    // The accounting itself is part of the deterministic schedule: a
    // second host thread replays the same windows, skips, and barriers.
    const IdleResult two = runIdleTopology(true, 2);
    EXPECT_EQ(two.busy, plain.busy);
    EXPECT_EQ(two.sleeper, plain.sleeper);
    EXPECT_EQ(two.run1, one.run1);
    EXPECT_EQ(two.skipped1, one.skipped1);
    EXPECT_EQ(two.barriers, one.barriers);
}

namespace
{

/** Journal-only recorder (domain 0 consumer of cross-domain wakes). */
class CycleRecorder : public Ticked
{
  public:
    explicit CycleRecorder(const Clock &clk)
        : Ticked("recorder"), clk_(clk)
    {
    }

    void tick() override { journal.push_back(clk_.now()); }
    bool active() const override { return false; }

    std::vector<Cycle> journal;

  private:
    const Clock &clk_;
};

/** Active for n ticks, requesting a wake on @p target lookahead cycles
 *  ahead each time — the raw cross-domain requestWake path. */
class Pinger : public Ticked
{
  public:
    Pinger(const Clock &clk, Ticked &target, unsigned n, Cycle ahead)
        : Ticked("pinger"), clk_(clk), target_(target), remaining_(n),
          ahead_(ahead)
    {
    }

    void
    tick() override
    {
        if (remaining_ > 0) {
            --remaining_;
            target_.requestWake(clk_.now() + ahead_);
        }
    }

    bool active() const override { return remaining_ > 0; }

  private:
    const Clock &clk_;
    Ticked &target_;
    unsigned remaining_;
    const Cycle ahead_;
};

std::vector<Cycle>
runPingJournal(bool windowed, unsigned hostThreads)
{
    constexpr Cycle kAhead = 5;
    Simulator sim;
    if (windowed) {
        sim.configureDomains(2);
        sim.setHostThreads(hostThreads);
        sim.registerCrossDomainLink(kAhead, [] {});
    }
    CycleRecorder rec(sim.domainClock(0));
    sim.addTicked(&rec, 0);
    Pinger ping(sim.domainClock(windowed ? 1 : 0), rec, 3, kAhead);
    sim.addTicked(&ping, windowed ? 1 : 0);
    sim.runFor(200);
    return rec.journal;
}

} // namespace

TEST(PdesDomains, CrossDomainWakesBeyondLookaheadMatchSequential)
{
    // Wakes requested >= lookahead ahead land past the window boundary,
    // so the outbox delivery must reproduce the sequential kernel's
    // schedule exactly: registration tick at 0, then 5, 6, 7.
    const std::vector<Cycle> plain = runPingJournal(false, 1);
    EXPECT_EQ(plain, (std::vector<Cycle>{0, 5, 6, 7}));
    for (unsigned threads : {1u, 2u}) {
        EXPECT_EQ(runPingJournal(true, threads), plain)
            << "hostThreads=" << threads;
    }
}
