#include "cpu/system.hh"

#include <algorithm>

namespace picosim::cpu
{

System::System(const SystemParams &params)
    : params_(params), bandwidth_(params.bandwidthAlpha)
{
    sim_.setEvalMode(params.evalMode);
    memory_ = std::make_unique<mem::CoherentMemory>(params.numCores,
                                                    params.mem);
    if (params.mem.mode == mem::MemMode::Timed)
        timedMem_ = std::make_unique<mem::TimedMemory>(
            sim_.clock(), *memory_, sim_.stats());
    picos_ = std::make_unique<picos::Picos>(sim_.clock(), params.picos,
                                            sim_.stats());
    manager_ = std::make_unique<manager::PicosManager>(
        sim_.clock(), *picos_, params.numCores, params.manager, sim_.stats());

    cores_.reserve(params.numCores);
    delegates_.reserve(params.numCores);
    hartApis_.reserve(params.numCores);
    for (CoreId i = 0; i < params.numCores; ++i) {
        cores_.push_back(
            std::make_unique<Core>(sim_.clock(), i, sim_.stats()));
        delegates_.push_back(std::make_unique<delegate::PicosDelegate>(
            i, *manager_, sim_.stats()));
        hartApis_.push_back(std::make_unique<HartApi>(
            i, *delegates_.back(), *memory_, bandwidth_, params.hartApi,
            timedMem_.get()));
    }

    // Evaluation order each cycle: cores produce transactions, the manager
    // moves them, Picos consumes them, and the timed memory subsystem
    // schedules this cycle's requests last (harts must have issued before
    // it runs so responses are armed within the issue cycle).
    for (auto &core : cores_)
        sim_.addTicked(core.get());
    sim_.addTicked(manager_.get());
    sim_.addTicked(picos_.get());
    if (timedMem_) {
        sim_.addTicked(timedMem_.get());
        for (CoreId i = 0; i < params.numCores; ++i)
            timedMem_->bindHart(i, &cores_[i]->context(), cores_[i].get());
    }
}

bool
System::allThreadsDone() const
{
    return std::all_of(cores_.begin(), cores_.end(),
                       [](const auto &c) { return c->threadDone(); });
}

bool
System::run(Cycle limit)
{
    return sim_.run([this] { return allThreadsDone(); }, limit);
}

} // namespace picosim::cpu
