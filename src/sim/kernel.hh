/**
 * @file
 * The simulation kernel: owns the clock, ticks components, fast-forwards
 * across quiescent periods.
 */

#ifndef PICOSIM_SIM_KERNEL_HH
#define PICOSIM_SIM_KERNEL_HH

#include <functional>
#include <vector>

#include "sim/clock.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/types.hh"

namespace picosim::sim
{

/**
 * Cycle-driven simulator with activity-based fast-forward.
 *
 * Components are ticked in registration order for every cycle in which at
 * least one reports active(); when all are quiescent, the clock jumps to
 * the minimum wakeAt() across components. This keeps queue/arbiter
 * behaviour cycle-exact while skipping the long stretches in which every
 * hart is merely burning payload cycles.
 */
class Simulator
{
  public:
    Simulator() = default;

    Clock &clock() { return clock_; }
    const Clock &clock() const { return clock_; }
    StatGroup &stats() { return stats_; }

    /** Register a component; order defines per-cycle evaluation order. */
    void addTicked(Ticked *component) { ticked_.push_back(component); }

    /**
     * Run until the predicate holds (checked once per evaluated cycle) or
     * the cycle limit is exceeded.
     *
     * @return true if the predicate was satisfied, false on cycle-limit.
     */
    bool run(const std::function<bool()> &done, Cycle limit = kCycleNever);

    /** Run for exactly n cycles of simulated time. */
    void runFor(Cycle n);

    std::uint64_t evaluatedCycles() const { return evaluatedCycles_; }

  private:
    /** Tick everything once at the current cycle. */
    void evaluate();

    /** Earliest future cycle at which any component needs evaluation. */
    Cycle nextWake() const;

    bool anyActive() const;

    Clock clock_;
    StatGroup stats_;
    std::vector<Ticked *> ticked_;
    std::uint64_t evaluatedCycles_ = 0;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_KERNEL_HH
