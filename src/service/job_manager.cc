#include "service/job_manager.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "runtime/cancel.hh"
#include "runtime/harness.hh"
#include "service/run_plan.hh"
#include "service/wire.hh"
#include "spec/engine.hh"
#include "spec/workload_registry.hh"

namespace picosim::svc
{

JobState
jobStateFromName(const std::string &name)
{
    for (const JobState s :
         {JobState::Queued, JobState::Running, JobState::Done,
          JobState::Failed, JobState::Cancelled, JobState::TimedOut}) {
        if (name == jobStateName(s))
            return s;
    }
    throw spec::SpecError("unknown job state '" + name + "'");
}

namespace
{
using SteadyClock = std::chrono::steady_clock;

void
jsonKey(std::string &j, const char *key)
{
    j += ",\"";
    j += key;
    j += "\":";
}

void
jsonNum(std::string &j, const char *key, std::uint64_t v)
{
    jsonKey(j, key);
    j += std::to_string(v);
}

std::string
jsonHead(const char *type, std::uint64_t id)
{
    std::string j = "{\"type\":\"";
    j += type;
    j += "\",\"id\":" + std::to_string(id);
    return j;
}

/** Journal record for one finished run row. */
std::string
rowRecord(std::uint64_t id, std::size_t run, const RunRow &row)
{
    std::string j = jsonHead("row", id);
    jsonNum(j, "run", run);
    jsonKey(j, "result");
    j += wire::jsonString(wire::runResultJson(row.result));
    if (!row.statDump.empty()) {
        jsonKey(j, "dump");
        j += wire::jsonString(row.statDump);
    }
    j += '}';
    return j;
}

/** Journal record for one durable checkpoint of a run. */
std::string
checkpointRecord(std::uint64_t id, std::size_t run,
                 const sim::Checkpoint &cp)
{
    std::string j = jsonHead("checkpoint", id);
    jsonNum(j, "run", run);
    jsonNum(j, "cycle", cp.cycle);
    jsonNum(j, "seq", cp.seq);
    jsonNum(j, "digest", cp.digest);
    j += '}';
    return j;
}

/** Append from a worker path: a full disk must not kill the daemon (or
 *  fail the simulation that just finished), so complain and carry on —
 *  the record is simply not durable. */
void
appendQuiet(Journal *jp, const std::string &payload) noexcept
{
    try {
        jp->append(payload);
    } catch (const std::exception &e) {
        std::cerr << "picosim journal: append failed: " << e.what()
                  << "\n";
    }
}

} // namespace

/** One job's full bookkeeping. Lives behind a unique_ptr so the
 *  CancelToken's address stays stable for in-flight RunControls. */
struct JobManager::Rec
{
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::Queued;
    std::vector<RunRow> rows;       ///< rows[i] pairs with spec.runs[i]
    std::size_t nextRun = 0;        ///< first undispatched run index
    std::size_t doneRuns = 0;       ///< dispatched runs that returned
    std::size_t inFlight = 0;
    rt::CancelToken token;
    bool cancelRequested = false;
    double timeoutSec = 0.0;        ///< resolved (spec or manager default)
    unsigned maxInFlight = 0;       ///< resolved
    bool deadlineArmed = false;
    SteadyClock::time_point deadline{};
    std::uint64_t startSeq = 0;
    std::string error;

    /** Per-run resume cut recovered from the journal (cycle 0 = none).
     *  Sized with rows and never resized, so handing its elements'
     *  addresses to RunControls::resumeFrom is safe for the run. */
    std::vector<sim::Checkpoint> resumeCp;

    /** Journal record re-creating this job on recovery. Stores the
     *  RESOLVED timeout/in-flight limits, so a restart with different
     *  manager defaults cannot silently change an admitted job. */
    std::string
    submitRecord() const
    {
        std::string j = jsonHead("submit", id);
        jsonKey(j, "tag");
        j += wire::jsonString(spec.tag);
        char t[40];
        std::snprintf(t, sizeof(t), "%.17g", timeoutSec);
        jsonKey(j, "timeout");
        j += t;
        jsonNum(j, "maxInFlight", maxInFlight);
        jsonNum(j, "capture", spec.captureStatDumps ? 1 : 0);
        jsonNum(j, "runs", spec.runs.size());
        for (std::size_t i = 0; i < spec.runs.size(); ++i) {
            jsonKey(j, ("run" + std::to_string(i)).c_str());
            j += wire::jsonString(spec.runs[i].serialize());
        }
        j += '}';
        return j;
    }

    /** Journal record for a final state transition. */
    std::string
    stateRecord() const
    {
        std::string j = jsonHead("state", id);
        jsonKey(j, "state");
        j += wire::jsonString(jobStateName(state));
        jsonKey(j, "error");
        j += wire::jsonString(error);
        j += '}';
        return j;
    }

    JobStatus
    snapshot() const
    {
        JobStatus st;
        st.id = id;
        st.tag = spec.tag;
        st.state = state;
        st.runsTotal = spec.runs.size();
        st.runsDone = doneRuns;
        st.error = error;
        st.startSeq = startSeq;
        return st;
    }
};

JobManager::JobManager() : JobManager(Params{}) {}

JobManager::JobManager(const Params &params)
    : defaultTimeoutSec_(params.defaultTimeoutSec),
      defaultMaxInFlight_(params.maxInFlightPerJob),
      checkpointEvery_(params.checkpointEvery),
      queue_(params.maxQueued), paused_(params.startPaused)
{
    if (!params.journalDir.empty()) {
        // Replay + compact before any worker exists: recovery mutates
        // jobs_/queue_ without the lock, single-threaded by design.
        // The append fd is opened only after compaction renamed the
        // rewritten file into place, so it points at the live inode.
        recover(params.journalDir);
        journal_ = std::make_unique<Journal>(params.journalDir);
    }
    workers_ = params.workers != 0
                   ? params.workers
                   : std::max(1u, std::thread::hardware_concurrency());
    pool_.reserve(workers_);
    for (unsigned t = 0; t < workers_; ++t)
        pool_.emplace_back([this] { workerLoop(); });
}

JobManager::~JobManager()
{
    {
        const std::lock_guard<std::mutex> lk(lock_);
        stopping_ = true;
        // Wake in-flight runs at their next deterministic boundary;
        // their results are discarded with the manager.
        for (auto &[id, rec] : jobs_)
            if (!jobStateFinal(rec->state))
                rec->token.cancel();
    }
    dispatchCv_.notify_all();
    for (std::thread &t : pool_)
        t.join();
}

JobManager::Rec *
JobManager::find(std::uint64_t id)
{
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
}

const JobManager::Rec *
JobManager::find(std::uint64_t id) const
{
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
}

std::uint64_t
JobManager::submit(JobSpec spec)
{
    if (spec.runs.empty())
        throw spec::SpecError("job has no runs");

    const std::lock_guard<std::mutex> lk(lock_);
    if (stopping_ || draining_)
        throw spec::SpecError("job manager is shutting down");
    if (queue_.full()) {
        throw spec::SpecError("job queue full (" +
                              std::to_string(queue_.size()) +
                              " jobs queued)");
    }

    auto rec = std::make_unique<Rec>();
    rec->id = ++lastId_;
    rec->rows.resize(spec.runs.size());
    rec->resumeCp.resize(spec.runs.size());
    rec->timeoutSec =
        spec.timeoutSec > 0.0 ? spec.timeoutSec : defaultTimeoutSec_;
    rec->maxInFlight =
        spec.maxInFlight != 0 ? spec.maxInFlight : defaultMaxInFlight_;
    rec->spec = std::move(spec);

    const std::uint64_t id = rec->id;
    if (journal_ != nullptr) {
        // Durable before visible: if the append throws, the job was
        // never admitted.
        journal_->append(rec->submitRecord());
    }
    queue_.push(id); // capacity checked above, under the same lock
    jobs_.emplace(id, std::move(rec));
    dispatchCv_.notify_all();
    return id;
}

std::uint64_t
JobManager::submitText(const std::string &text, double timeoutSec,
                       std::string tag,
                       std::vector<std::string> *warnings)
{
    const spec::RunSpec parsed = spec::RunSpec::parse(text, warnings);
    const RunPlan plan = RunPlan::make({parsed});

    JobSpec js;
    js.runs = plan.runs;
    js.timeoutSec = timeoutSec;
    js.tag = std::move(tag);
    return submit(std::move(js));
}

bool
JobManager::cancel(std::uint64_t id)
{
    {
        const std::lock_guard<std::mutex> lk(lock_);
        Rec *rec = find(id);
        if (rec == nullptr || jobStateFinal(rec->state))
            return false;
        rec->cancelRequested = true;
        rec->token.cancel();
        if (rec->state == JobState::Queued) {
            // Nothing dispatched: finalize on the spot. The rows keep
            // done == false — the runs never existed.
            queue_.remove(id);
            rec->state = JobState::Cancelled;
            if (journal_ != nullptr)
                appendQuiet(journal_.get(), rec->stateRecord());
        }
        // Running jobs finalize when their in-flight and remaining
        // runs drain (each observes the token and returns Cancelled).
    }
    resultCv_.notify_all();
    return true;
}

std::optional<JobStatus>
JobManager::status(std::uint64_t id) const
{
    const std::lock_guard<std::mutex> lk(lock_);
    const Rec *rec = find(id);
    if (rec == nullptr)
        return std::nullopt;
    return rec->snapshot();
}

std::vector<JobStatus>
JobManager::list() const
{
    const std::lock_guard<std::mutex> lk(lock_);
    std::vector<JobStatus> out;
    out.reserve(jobs_.size());
    for (const auto &[id, rec] : jobs_) // map: ascending id = admission
        out.push_back(rec->snapshot());
    return out;
}

JobStatus
JobManager::wait(std::uint64_t id)
{
    std::unique_lock<std::mutex> lk(lock_);
    const Rec *rec = find(id);
    if (rec == nullptr)
        throw spec::SpecError("unknown job " + std::to_string(id));
    resultCv_.wait(lk, [&] { return jobStateFinal(rec->state); });
    return rec->snapshot();
}

std::optional<JobStatus>
JobManager::waitFor(std::uint64_t id, double seconds)
{
    std::unique_lock<std::mutex> lk(lock_);
    const Rec *rec = find(id);
    if (rec == nullptr)
        throw spec::SpecError("unknown job " + std::to_string(id));
    const bool finished = resultCv_.wait_for(
        lk, std::chrono::duration<double>(seconds),
        [&] { return jobStateFinal(rec->state); });
    if (!finished)
        return std::nullopt;
    return rec->snapshot();
}

std::optional<RunRow>
JobManager::waitRow(std::uint64_t id, std::size_t idx)
{
    std::unique_lock<std::mutex> lk(lock_);
    const Rec *rec = find(id);
    if (rec == nullptr || idx >= rec->rows.size())
        return std::nullopt;
    resultCv_.wait(lk, [&] {
        return rec->rows[idx].done || jobStateFinal(rec->state);
    });
    return rec->rows[idx];
}

std::vector<RunRow>
JobManager::runRows(std::uint64_t id) const
{
    const std::lock_guard<std::mutex> lk(lock_);
    const Rec *rec = find(id);
    if (rec == nullptr)
        return {};
    return rec->rows;
}

void
JobManager::pause()
{
    const std::lock_guard<std::mutex> lk(lock_);
    paused_ = true;
}

void
JobManager::resume()
{
    {
        const std::lock_guard<std::mutex> lk(lock_);
        paused_ = false;
    }
    dispatchCv_.notify_all();
}

void
JobManager::drain()
{
    std::unique_lock<std::mutex> lk(lock_);
    draining_ = true;
    paused_ = true; // nothing new dispatches
    for (auto &[id, rec] : jobs_) {
        if (!jobStateFinal(rec->state) && rec->inFlight > 0 &&
            !rec->cancelRequested) {
            // Stop the run at its next deterministic boundary. The
            // worker sees draining_ and leaves the row unfinished (and
            // unjournaled) instead of recording a cancellation — the
            // job itself is NOT cancelled, just interrupted.
            rec->token.cancel();
        }
    }
    resultCv_.wait(lk, [&] {
        for (const auto &[id, rec] : jobs_)
            if (rec->inFlight > 0)
                return false;
        return true;
    });
}

/** First (job, run) eligible for dispatch, in strict admission order.
 *  Caller holds lock_. */
JobManager::Rec *
JobManager::pickRun(std::size_t &runIdx)
{
    for (const std::uint64_t id : queue_.items()) {
        Rec *rec = find(id);
        if (rec == nullptr)
            continue;
        // Rows recovered from the journal are already done; dispatch
        // resumes at the first gap.
        while (rec->nextRun < rec->spec.runs.size() &&
               rec->rows[rec->nextRun].done)
            ++rec->nextRun;
        if (rec->nextRun >= rec->spec.runs.size())
            continue;
        if (rec->maxInFlight != 0 && rec->inFlight >= rec->maxInFlight)
            continue;
        runIdx = rec->nextRun;
        return rec;
    }
    return nullptr;
}

/** Settle the final state once every dispatched run returned.
 *  Precedence: cancelled > timeout > failed > done. Holds lock_. */
void
JobManager::finalize(Rec &rec)
{
    if (rec.cancelRequested) {
        rec.state = JobState::Cancelled;
        if (journal_ != nullptr)
            appendQuiet(journal_.get(), rec.stateRecord());
        return;
    }
    bool timedOut = false;
    bool failed = false;
    for (const RunRow &row : rec.rows) {
        if (!row.done)
            continue;
        if (row.result.status == rt::RunStatus::TimedOut)
            timedOut = true;
        if (row.result.status == rt::RunStatus::Error) {
            if (!failed)
                rec.error = row.result.error;
            failed = true;
        }
    }
    rec.state = timedOut  ? JobState::TimedOut
                : failed  ? JobState::Failed
                          : JobState::Done;
    if (journal_ != nullptr)
        appendQuiet(journal_.get(), rec.stateRecord());
}

void
JobManager::workerLoop()
{
    std::unique_lock<std::mutex> lk(lock_);
    while (true) {
        std::size_t idx = 0;
        Rec *rec = nullptr;
        dispatchCv_.wait(lk, [&] {
            if (stopping_)
                return true;
            if (paused_)
                return false;
            rec = pickRun(idx);
            return rec != nullptr;
        });
        if (stopping_)
            return;

        rec->nextRun = idx + 1;
        ++rec->inFlight;
        if (rec->state == JobState::Queued) {
            rec->state = JobState::Running;
            rec->startSeq = ++startCounter_;
            if (rec->timeoutSec > 0.0) {
                // The wall-clock budget covers the whole job, counted
                // from its first dispatched run.
                rec->deadline =
                    SteadyClock::now() +
                    std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(rec->timeoutSec));
                rec->deadlineArmed = true;
            }
        }
        if (rec->nextRun >= rec->spec.runs.size())
            queue_.remove(rec->id); // fully dispatched

        // Snapshot everything the unlocked run needs. The token address
        // is stable (Rec is heap-pinned) and outlives the run: records
        // are only destroyed with the manager, after the pool joined.
        const spec::RunSpec runSpec = rec->spec.runs[idx];
        const bool capture = rec->spec.captureStatDumps;
        const std::uint64_t jobId = rec->id;
        rt::RunControls ctl;
        ctl.cancel = &rec->token;
        ctl.deadline = rec->deadline;
        ctl.hasDeadline = rec->deadlineArmed;

        // Checkpoint plumbing. lastCp tracks the newest cut on this
        // worker's stack (for the drop-job retry below); a journaled
        // manager also makes every cut durable from the sim thread.
        sim::Checkpoint lastCp;
        bool haveCp = false;
        Journal *const jp = journal_.get();
        if (jp != nullptr) {
            ctl.checkpointEvery = checkpointEvery_;
            ctl.onCheckpoint = [&lastCp, &haveCp, jp, jobId,
                                idx](const sim::Checkpoint &cp) {
                lastCp = cp;
                haveCp = true;
                appendQuiet(jp, checkpointRecord(jobId, idx, cp));
            };
            if (rec->resumeCp[idx].cycle != 0)
                ctl.resumeFrom = &rec->resumeCp[idx];
        }

        lk.unlock();
        const auto execute = [capture](const spec::RunSpec &sp,
                                       const rt::RunControls &c) {
            RunRow r;
            try {
                if (capture) {
                    spec::InspectedRun ins =
                        spec::Engine::runInspected(sp, nullptr, c);
                    std::ostringstream os;
                    ins.system->stats().dump(os);
                    ins.system->memory().stats().dump(os);
                    r.result = std::move(ins.result);
                    r.statDump = os.str();
                } else {
                    r.result = spec::Engine::run(sp, c);
                }
            } catch (const std::exception &e) {
                r.result.status = rt::RunStatus::Error;
                r.result.error = e.what();
            } catch (...) {
                r.result.status = rt::RunStatus::Error;
                r.result.error = "unknown worker exception";
            }
            r.done = true;
            return r;
        };
        RunRow row = execute(runSpec, ctl);
        if (row.result.status == rt::RunStatus::Dropped) {
            // The drop-job fault killed the run mid-flight. Re-dispatch
            // it once with the fault disarmed, resuming from its last
            // checkpoint when one was taken — the crash-recovery path
            // in miniature, exercised per run.
            spec::RunSpec retry = runSpec;
            retry.faultKind = sim::FaultKind::None;
            retry.faultCycle = 0;
            retry.faultUntil = 0;
            retry.faultTarget = 0;
            rt::RunControls rctl = ctl;
            sim::Checkpoint resumePoint;
            if (haveCp) {
                resumePoint = lastCp;
                rctl.resumeFrom = &resumePoint;
            }
            row = execute(retry, rctl);
        }
        lk.lock();

        --rec->inFlight;
        const bool interrupted =
            (draining_ || stopping_) &&
            row.result.status == rt::RunStatus::Cancelled &&
            !rec->cancelRequested;
        if (interrupted) {
            // Shutdown stopped this run, not the user: the row stays
            // unfinished and unjournaled, so a manager restarted on
            // the same journal re-dispatches it, resuming from the
            // last durable checkpoint.
            if (idx < rec->nextRun)
                rec->nextRun = idx;
        } else {
            if (jp != nullptr)
                appendQuiet(jp, rowRecord(jobId, idx, row));
            rec->rows[idx] = std::move(row);
            ++rec->doneRuns;
            if (rec->doneRuns == rec->spec.runs.size() &&
                !jobStateFinal(rec->state))
                finalize(*rec);
        }
        resultCv_.notify_all();
        dispatchCv_.notify_all();
    }
}

/** Rebuild jobs_/queue_/lastId_ from the journal in @p dir, then
 *  compact it. Ctor-only: runs single-threaded before the pool starts,
 *  so no locking. Torn/corrupt tails and unreplayable records are
 *  skipped with a loud stderr warning — never silently. */
void
JobManager::recover(const std::string &dir)
{
    const std::vector<std::string> records =
        Journal::readAll(dir, &std::cerr);

    for (const std::string &payload : records) {
        std::map<std::string, std::string> kv;
        try {
            kv = wire::parseFlatJson(payload);
        } catch (const std::exception &e) {
            std::cerr << "picosim journal: unparsable record skipped: "
                      << e.what() << "\n";
            continue;
        }
        const auto get = [&kv](const std::string &key) -> std::string {
            const auto it = kv.find(key);
            return it == kv.end() ? std::string() : it->second;
        };
        const auto getU64 = [&get](const std::string &key) {
            return std::strtoull(get(key).c_str(), nullptr, 10);
        };
        const std::string type = get("type");
        try {
            if (type == "submit") {
                auto rec = std::make_unique<Rec>();
                rec->id = getU64("id");
                rec->spec.tag = get("tag");
                rec->timeoutSec = std::strtod(get("timeout").c_str(),
                                              nullptr);
                rec->maxInFlight =
                    static_cast<unsigned>(getU64("maxInFlight"));
                rec->spec.timeoutSec = rec->timeoutSec;
                rec->spec.maxInFlight = rec->maxInFlight;
                rec->spec.captureStatDumps = getU64("capture") != 0;
                const std::size_t n =
                    static_cast<std::size_t>(getU64("runs"));
                rec->spec.runs.reserve(n);
                for (std::size_t i = 0; i < n; ++i) {
                    // Canonical serialize() output parses back
                    // bit-exactly, so the recovered runs are verbatim.
                    rec->spec.runs.push_back(spec::RunSpec::parse(
                        get("run" + std::to_string(i))));
                }
                rec->rows.resize(n);
                rec->resumeCp.resize(n);
                lastId_ = std::max(lastId_, rec->id);
                jobs_[rec->id] = std::move(rec);
            } else if (type == "state") {
                if (Rec *rec = find(getU64("id"))) {
                    rec->state = jobStateFromName(get("state"));
                    rec->error = get("error");
                }
            } else if (type == "row") {
                Rec *rec = find(getU64("id"));
                const std::size_t run =
                    static_cast<std::size_t>(getU64("run"));
                if (rec != nullptr && run < rec->rows.size()) {
                    RunRow &row = rec->rows[run];
                    row.result = wire::runResultFromJson(get("result"));
                    row.statDump = get("dump");
                    row.done = true;
                }
            } else if (type == "checkpoint") {
                Rec *rec = find(getU64("id"));
                const std::size_t run =
                    static_cast<std::size_t>(getU64("run"));
                if (rec != nullptr && run < rec->resumeCp.size()) {
                    sim::Checkpoint &cp = rec->resumeCp[run];
                    const Cycle cycle = getU64("cycle");
                    if (cycle > cp.cycle) {
                        cp.cycle = cycle;
                        cp.seq = getU64("seq");
                        cp.digest = getU64("digest");
                    }
                }
            } else {
                std::cerr << "picosim journal: unknown record type '"
                          << type << "' skipped\n";
            }
        } catch (const std::exception &e) {
            std::cerr << "picosim journal: record replay failed ("
                      << e.what() << "); skipped\n";
        }
    }

    // Settle every recovered job: recount the rows, finalize jobs whose
    // runs all finished before the crash, and re-queue the rest — an
    // interrupted running job goes back in as queued, its finished rows
    // kept and its missing runs resumed from their last checkpoint.
    for (auto &[id, rec] : jobs_) {
        rec->doneRuns = 0;
        for (const RunRow &row : rec->rows)
            if (row.done)
                ++rec->doneRuns;
        if (jobStateFinal(rec->state))
            continue;
        if (!rec->rows.empty() &&
            rec->doneRuns == rec->spec.runs.size()) {
            finalize(*rec); // journal_ is still null: compaction below
                            // writes the state record durably
            continue;
        }
        rec->state = JobState::Queued;
        rec->nextRun = 0; // pickRun skips the recovered rows
        rec->inFlight = 0;
        rec->deadlineArmed = false; // the wall-clock budget restarts
        rec->startSeq = 0;
        if (!queue_.push(id)) {
            std::cerr << "picosim journal: recovered job " << id
                      << " does not fit --max-queued; it stays visible "
                         "but will not be re-run\n";
        }
    }

    // Compact: the live state replaces the historical append stream.
    std::vector<std::string> compacted;
    for (const auto &[id, rec] : jobs_) {
        compacted.push_back(rec->submitRecord());
        for (std::size_t i = 0; i < rec->rows.size(); ++i)
            if (rec->rows[i].done)
                compacted.push_back(rowRecord(rec->id, i, rec->rows[i]));
        for (std::size_t i = 0; i < rec->resumeCp.size(); ++i)
            if (rec->resumeCp[i].cycle != 0)
                compacted.push_back(
                    checkpointRecord(rec->id, i, rec->resumeCp[i]));
        if (jobStateFinal(rec->state))
            compacted.push_back(rec->stateRecord());
    }
    Journal::rewrite(dir, compacted);
}

} // namespace picosim::svc
