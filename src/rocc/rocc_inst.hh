/**
 * @file
 * RoCC custom-instruction word format (paper Figure 1) and the seven
 * task-scheduling instructions implemented by the Picos Delegate (Table I).
 *
 * Layout of a RoCC instruction word:
 *
 *   31      25 24  20 19  15 14 13 12 11   7 6      0
 *   [ funct7 ][ rs2 ][ rs1 ][xd|xs1|xs2][ rd ][ opcode ]
 */

#ifndef PICOSIM_ROCC_ROCC_INST_HH
#define PICOSIM_ROCC_ROCC_INST_HH

#include <cstdint>
#include <string_view>

namespace picosim::rocc
{

/** The four RoCC custom opcodes defined by RISC-V. */
enum class CustomOpcode : std::uint8_t {
    Custom0 = 0b0001011,
    Custom1 = 0b0101011,
    Custom2 = 0b1011011,
    Custom3 = 0b1111011,
};

/** funct7 selectors of the task-scheduling instructions (Table I). */
enum class TaskFunct : std::uint8_t {
    SubmissionRequest = 0,
    SubmitPacket = 1,
    SubmitThreePackets = 2,
    ReadyTaskRequest = 3,
    FetchSwId = 4,
    FetchPicosId = 5,
    RetireTask = 6,
};

/** Number of distinct task-scheduling instructions. */
inline constexpr unsigned kNumTaskInsts = 7;

/** Human-readable mnemonic for a funct value. */
std::string_view functName(TaskFunct funct);

/** True for instructions that may return a failure flag (non-blocking). */
constexpr bool
isNonBlocking(TaskFunct funct)
{
    // Only Retire Task is blocking (Section IV-B).
    return funct != TaskFunct::RetireTask;
}

/** Decoded RoCC instruction fields. */
struct RoccInst
{
    TaskFunct funct = TaskFunct::SubmissionRequest;
    std::uint8_t rs2 = 0;
    std::uint8_t rs1 = 0;
    bool xd = false;
    bool xs1 = false;
    bool xs2 = false;
    std::uint8_t rd = 0;
    CustomOpcode opcode = CustomOpcode::Custom0;

    bool operator==(const RoccInst &) const = default;
};

/** Pack fields into a 32-bit instruction word. */
std::uint32_t encode(const RoccInst &inst);

/** Unpack a 32-bit instruction word. */
RoccInst decode(std::uint32_t word);

/**
 * Canonical register usage of each task instruction: whether it consumes
 * rs1/rs2 and produces rd. Used by the delegate model and by tests.
 */
struct InstSignature
{
    bool usesRs1;
    bool usesRs2;
    bool writesRd;
};

InstSignature signatureOf(TaskFunct funct);

/** Build the canonical instruction word for a task instruction. */
RoccInst makeTaskInst(TaskFunct funct, std::uint8_t rd = 0,
                      std::uint8_t rs1 = 0, std::uint8_t rs2 = 0);

} // namespace picosim::rocc

#endif // PICOSIM_ROCC_ROCC_INST_HH
