/**
 * @file
 * Non-allocating small-callable storage.
 *
 * The simulator's hot path passes predicates around constantly: the run
 * loop's done() check and every WaitUntil poll. std::function costs an
 * indirect call through a type-erasure vtable plus a possible heap
 * allocation for the captured state. SmallFn stores the callable inline
 * (captures are a few pointers in practice), rejects anything that would
 * not fit at compile time, and invokes through a single function pointer.
 *
 * Callables must be trivially copyable and trivially destructible — true
 * for every capture the simulator uses (raw pointers, ids, cycle counts)
 * and statically enforced, so SmallFn itself stays trivially copyable and
 * needs no destructor bookkeeping.
 */

#ifndef PICOSIM_SIM_SMALL_FN_HH
#define PICOSIM_SIM_SMALL_FN_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace picosim::sim
{

template <typename Signature, std::size_t Capacity = 48>
class SmallFn;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFn<R(Args...), Capacity>
{
  public:
    SmallFn() = default;

    /** Implicit from any small trivially-copyable callable. */
    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, SmallFn> &&
                  std::is_invocable_r_v<R, std::decay_t<F> &, Args...>>>
    SmallFn(F &&fn) // NOLINT(google-explicit-constructor)
    {
        using Fn = std::decay_t<F>;
        static_assert(sizeof(Fn) <= Capacity,
                      "callable captures too much state for SmallFn");
        static_assert(alignof(Fn) <= alignof(std::max_align_t),
                      "over-aligned callables are not supported");
        static_assert(std::is_trivially_copyable_v<Fn> &&
                          std::is_trivially_destructible_v<Fn>,
                      "SmallFn requires trivially copyable callables");
        ::new (static_cast<void *>(storage_)) Fn(std::forward<F>(fn));
        invoke_ = [](const void *s, Args... args) -> R {
            // The callable was placement-new'ed into the storage; launder
            // recovers a pointer to that object.
            const Fn *fn_p = std::launder(
                reinterpret_cast<const Fn *>(static_cast<const char *>(s)));
            // Predicates are logically const but may capture mutable
            // state by value; invoke through a non-const copy semantics
            // free path: cast away constness of the storage view.
            return (*const_cast<Fn *>(fn_p))(std::forward<Args>(args)...);
        };
    }

    SmallFn(std::nullptr_t) {} // NOLINT(google-explicit-constructor)

    explicit operator bool() const { return invoke_ != nullptr; }

    R
    operator()(Args... args) const
    {
        return invoke_(storage_, std::forward<Args>(args)...);
    }

    void reset() { invoke_ = nullptr; }

  private:
    using Invoke = R (*)(const void *, Args...);

    alignas(std::max_align_t) char storage_[Capacity];
    Invoke invoke_ = nullptr;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_SMALL_FN_HH
