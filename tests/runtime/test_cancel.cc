/** @file Unit tests for cooperative run cancellation: the CancelToken
 *  latch, RunControls on runProgram (cancel, timeout, deadline and
 *  their precedence), and the determinism contract — arming the stop
 *  check must not perturb a run that never stops. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "apps/workloads.hh"
#include "runtime/harness.hh"
#include "spec/engine.hh"

using namespace picosim;
using namespace picosim::rt;

namespace
{

/** A run long enough that a cooperative stop always lands mid-run
 *  (tens of thousands of dispatch boundaries). */
Program
longProgram()
{
    return apps::taskChain(20000, 1, 500);
}

} // namespace

TEST(CancelToken, OneWayLatch)
{
    CancelToken token;
    EXPECT_FALSE(token.cancelled());
    token.cancel();
    EXPECT_TRUE(token.cancelled());
    token.cancel(); // idempotent
    EXPECT_TRUE(token.cancelled());
}

TEST(RunControls, NoControlsMeansNoRequest)
{
    const RunControls ctl;
    EXPECT_FALSE(ctl.cancelRequested());
}

TEST(RunControls, EitherTokenRequestsCancellation)
{
    CancelToken job, group;
    RunControls ctl;
    ctl.cancel = &job;
    ctl.groupCancel = &group;
    EXPECT_FALSE(ctl.cancelRequested());
    group.cancel();
    EXPECT_TRUE(ctl.cancelRequested());
}

TEST(Cancel, PreCancelledRunNeverStarts)
{
    CancelToken token;
    token.cancel();
    HarnessParams params;
    params.controls.cancel = &token;
    const RunResult res =
        runProgram(RuntimeKind::Phentos, apps::taskFree(64, 1, 100), params);
    EXPECT_EQ(res.status, RunStatus::Cancelled);
    EXPECT_FALSE(res.completed);
    EXPECT_EQ(res.cycles, 0u);
}

TEST(Cancel, MidRunCancelStopsEarly)
{
    const Program prog = longProgram();
    const RunResult full = runProgram(RuntimeKind::Phentos, prog);
    ASSERT_TRUE(full.completed);

    CancelToken token;
    std::atomic<bool> started{false};
    std::thread canceller([&] {
        while (!started.load())
            std::this_thread::yield();
        token.cancel();
    });
    HarnessParams params;
    params.controls.cancel = &token;
    started.store(true);
    const RunResult res =
        runProgram(RuntimeKind::Phentos, prog, params);
    canceller.join();

    EXPECT_EQ(res.status, RunStatus::Cancelled);
    EXPECT_FALSE(res.completed);
    // Stopped at a cycle-dispatch boundary before the natural end.
    EXPECT_LT(res.cycles, full.cycles);
}

TEST(Cancel, TinyTimeoutTimesOut)
{
    HarnessParams params;
    params.controls.timeoutSec = 1e-9;
    const RunResult res =
        runProgram(RuntimeKind::Phentos, longProgram(), params);
    EXPECT_EQ(res.status, RunStatus::TimedOut);
    EXPECT_FALSE(res.completed);
}

TEST(Cancel, PastDeadlineTimesOut)
{
    HarnessParams params;
    params.controls.deadline = std::chrono::steady_clock::now() -
                               std::chrono::seconds(1);
    params.controls.hasDeadline = true;
    const RunResult res =
        runProgram(RuntimeKind::Phentos, longProgram(), params);
    EXPECT_EQ(res.status, RunStatus::TimedOut);
    EXPECT_FALSE(res.completed);
}

TEST(Cancel, CancellationWinsOverDeadline)
{
    CancelToken token;
    token.cancel();
    HarnessParams params;
    params.controls.cancel = &token;
    params.controls.timeoutSec = 1e-9;
    params.controls.deadline = std::chrono::steady_clock::now() -
                               std::chrono::seconds(1);
    params.controls.hasDeadline = true;
    const RunResult res =
        runProgram(RuntimeKind::Phentos, longProgram(), params);
    EXPECT_EQ(res.status, RunStatus::Cancelled);
}

TEST(Cancel, ArmedButIdleControlsDoNotPerturbTheRun)
{
    // The determinism contract at the single-run level: a run whose
    // controls never fire must be bit-identical to an uncontrolled run.
    const Program prog = apps::taskChain(256, 2, 500);
    const RunResult plain = runProgram(RuntimeKind::Phentos, prog);

    CancelToken token; // never cancelled
    HarnessParams params;
    params.controls.cancel = &token;
    params.controls.timeoutSec = 3600.0;
    const RunResult armed = runProgram(RuntimeKind::Phentos, prog, params);

    EXPECT_EQ(armed.status, RunStatus::Ok);
    EXPECT_TRUE(armed.completed);
    EXPECT_EQ(armed.cycles, plain.cycles);
    EXPECT_EQ(armed.evaluatedCycles, plain.evaluatedCycles);
    EXPECT_EQ(armed.componentTicks, plain.componentTicks);
}

TEST(Cancel, PdesRunStopsAtAWindowBarrier)
{
    // The partitioned kernel polls the stop check at every window
    // barrier; a timed-out PDES run must stop cleanly and join all
    // host threads (this test hangs if it does not).
    spec::RunSpec s;
    s.workload = "task-chain";
    s.wl = {{"tasks", 20000}, {"deps", 1}, {"payload", 500}};
    s.cores = 8;
    s.schedShards = 2;
    s.clusters = 2;
    s.pdes = cpu::PdesParams::Partition::Force;
    s.hostThreads = 2;
    s.canonicalize();

    RunControls ctl;
    ctl.timeoutSec = 1e-9;
    const RunResult res = spec::Engine::run(s, ctl);
    EXPECT_EQ(res.status, RunStatus::TimedOut);
    EXPECT_FALSE(res.completed);
}

TEST(Cancel, StatusNamesAreStable)
{
    EXPECT_STREQ(runStatusName(RunStatus::Ok), "ok");
    EXPECT_STREQ(runStatusName(RunStatus::CycleLimit), "cycle-limit");
    EXPECT_STREQ(runStatusName(RunStatus::Cancelled), "cancelled");
    EXPECT_STREQ(runStatusName(RunStatus::TimedOut), "timed-out");
    EXPECT_STREQ(runStatusName(RunStatus::Error), "error");
}
