/**
 * @file
 * Engine: the one front door from a RunSpec to simulated results.
 *
 * Front-ends (picosim_run, the bench drivers, embedding code) never
 * assemble cpu::SystemParams or rt::HarnessParams themselves: they
 * describe the experiment as a RunSpec and call Engine. run() mirrors
 * rt::runProgram exactly (a serial runtime is forced to one core with
 * the topology reset), so spec-driven runs are bit-identical to the
 * legacy flag-driven paths; runBatch() spreads many specs over the
 * harness worker pool; runInspected() keeps the simulated System alive
 * for post-run inspection (statistics dumps, task traces, PDES window
 * counters).
 */

#ifndef PICOSIM_SPEC_ENGINE_HH
#define PICOSIM_SPEC_ENGINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "runtime/harness.hh"
#include "spec/run_spec.hh"

namespace picosim::rt
{
class TaskTrace;
}

namespace picosim::spec
{

/** A finished run whose System (and runtime model) stay inspectable. */
struct InspectedRun
{
    rt::RunResult result;
    std::unique_ptr<cpu::System> system;
    std::unique_ptr<rt::Runtime> runtime;
};

class Engine
{
  public:
    /** The workload program @p spec describes, via the registry.
     *  @p spec must be canonical (RunSpec::canonicalize). */
    static rt::Program buildProgram(const RunSpec &spec);

    /** Harness parameters equivalent to @p spec. */
    static rt::HarnessParams harnessParams(const RunSpec &spec);

    /**
     * System parameters exactly as a run of @p spec would use them:
     * a serial runtime is folded to one core with the topology reset
     * (the baseline never touches the scheduler), mirroring
     * rt::runProgram.
     */
    static cpu::SystemParams systemParams(const RunSpec &spec);

    /** A fresh System built from systemParams(@p spec). */
    static std::unique_ptr<cpu::System> makeSystem(const RunSpec &spec);

    /** Run @p spec once; bit-identical to rt::runProgram on the same
     *  parameters. serialCycles is left zero (see runWithSpeedup).
     *  @p controls adds cooperative cancellation / wall-clock limits,
     *  polled only at deterministic boundaries. */
    static rt::RunResult run(const RunSpec &spec,
                             const rt::RunControls &controls = {});

    /** Run @p spec plus its serial baseline; fills serialCycles. */
    static rt::RunResult
    runWithSpeedup(const RunSpec &spec,
                   const rt::RunControls &controls = {});

    /**
     * Run every spec on the harness worker pool (rt::runBatch; 0
     * threads = hardware concurrency). Results align positionally with
     * @p specs and are identical to running each spec sequentially.
     * Duplicate specs are independent jobs with private Programs.
     *
     * With opts.captureErrors (the default), a spec whose workload
     * fails to build — and a run whose worker throws — becomes an
     * explicit per-job rt::RunStatus::Error result carrying the message
     * verbatim; the rest of the batch still runs. An empty spec vector
     * returns an empty result vector.
     */
    static std::vector<rt::RunResult>
    runBatch(const std::vector<RunSpec> &specs,
             const rt::BatchOptions &opts);

    /** Legacy overload: build errors and worker exceptions propagate
     *  as exceptions (first one rethrown after the pool joins). */
    static std::vector<rt::RunResult>
    runBatch(const std::vector<RunSpec> &specs, unsigned threads = 0,
             const std::function<void(std::size_t, const rt::RunResult &)>
                 &onResult = nullptr);

    /**
     * Run @p spec with the System kept alive for inspection. @p trace,
     * when given, is armed on runtimes that support task tracing
     * (Phentos, Nanos). serialCycles is left zero.
     */
    static InspectedRun runInspected(const RunSpec &spec,
                                     rt::TaskTrace *trace = nullptr,
                                     const rt::RunControls &controls = {});
};

} // namespace picosim::spec

#endif // PICOSIM_SPEC_ENGINE_HH
