#include "runtime/sw_dep_graph.hh"

#include <algorithm>

#include "runtime/addr_space.hh"
#include "sim/log.hh"

namespace picosim::rt
{

void
SwDepGraph::addEdge(std::uint64_t producer, std::uint64_t consumer,
                    LiveTask &consumer_task, DepOpResult &res)
{
    auto it = live_.find(producer);
    if (it == live_.end() || producer == consumer)
        return; // producer already finished: no edge
    // Nanos deduplicates repeated edges between the same task pair (a
    // 15-parameter chain still creates a single predecessor link).
    if (!it->second.dependents.empty() &&
        it->second.dependents.back() == consumer)
        return;
    it->second.dependents.push_back(consumer);
    ++consumer_task.pendingDeps;
    res.cost += costs_.swDepEdge;
}

DepOpResult
SwDepGraph::submit(const Task &task)
{
    DepOpResult res;
    res.cost = costs_.swDepBase;

    if (live_.count(task.id))
        sim::fatal("SwDepGraph::submit: duplicate task id");
    LiveTask &lt = live_[task.id];
    lt.deps = task.deps;

    for (const TaskDep &dep : task.deps) {
        res.touchedLines.push_back(layout::swDepBucketAddr(dep.addr));
        auto [it, inserted] = addrMap_.try_emplace(dep.addr);
        res.cost += inserted ? costs_.swDepNewEntry : costs_.swDepHitEntry;
        AddrEntry &entry = it->second;

        switch (dep.dir) {
          case Dir::In:
            if (entry.lastWriter >= 0)
                addEdge(entry.lastWriter, task.id, lt, res); // RAW
            entry.readers.push_back(task.id);
            break;
          case Dir::Out:
          case Dir::InOut:
            if (entry.lastWriter >= 0)
                addEdge(entry.lastWriter, task.id, lt, res); // WAW / RAW
            for (std::uint64_t r : entry.readers)
                addEdge(r, task.id, lt, res); // WAR
            entry.lastWriter = static_cast<std::int64_t>(task.id);
            entry.readers.clear();
            break;
        }
    }

    res.ready = (lt.pendingDeps == 0);
    return res;
}

DepOpResult
SwDepGraph::release(std::uint64_t task_id)
{
    DepOpResult res;
    auto it = live_.find(task_id);
    if (it == live_.end())
        sim::fatal("SwDepGraph::release: unknown task id");
    LiveTask &lt = it->second;

    res.cost = costs_.swDepBase / 2;
    for (const TaskDep &dep : lt.deps) {
        res.cost += costs_.swDepRelease;
        res.touchedLines.push_back(layout::swDepBucketAddr(dep.addr));
        auto ait = addrMap_.find(dep.addr);
        if (ait == addrMap_.end())
            continue;
        AddrEntry &entry = ait->second;
        if (entry.lastWriter == static_cast<std::int64_t>(task_id))
            entry.lastWriter = -1;
        std::erase(entry.readers, task_id);
        // Drop quiescent entries so the hash does not grow unboundedly
        // (Nanos trims its domain the same way).
        if (entry.lastWriter < 0 && entry.readers.empty())
            addrMap_.erase(ait);
    }

    for (std::uint64_t dep_id : lt.dependents) {
        auto dit = live_.find(dep_id);
        if (dit == live_.end())
            sim::panic("SwDepGraph: dangling dependent edge");
        if (dit->second.pendingDeps == 0)
            sim::panic("SwDepGraph: pending underflow");
        if (--dit->second.pendingDeps == 0) {
            res.becameReady.push_back(dep_id);
            res.cost += costs_.swDepWake;
        }
    }

    live_.erase(it);
    return res;
}

} // namespace picosim::rt
