/**
 * @file
 * Blocked Cholesky factorization as a nested (fork-join) task program.
 *
 * The classic tiled algorithm factorizes an nb x nb grid of bs x bs
 * blocks: panel k runs potrf on the diagonal block, trsm on the column
 * panel below it, then the syrk/gemm trailing update. Here each panel is
 * one parent task; the executing worker spawns the panel's kernel tasks
 * (with their block dependences) from its own core and joins them with a
 * single scoped taskwait, so the dependence engines see submission
 * traffic from every hart instead of only the master.
 *
 * Panels are serialized through a token dependence between the parent
 * tasks: panel k+1 may only start once panel k's parent retired, which —
 * because the parent retires after its scoped taskwait — guarantees the
 * whole panel-k subtree reached the dependence tables before any panel-
 * k+1 kernel is submitted (conflicting block addresses thus arrive in
 * program order).
 */

#include "apps/workloads.hh"

#include <string>

#include "apps/register.hh"
#include "sim/log.hh"
#include "spec/workload_registry.hh"

namespace picosim::apps
{

namespace
{
constexpr Addr kCholeskyBase = 0x5900'0000;
constexpr Addr kCholeskyToken = 0x59F0'0000;

/** ~1.6 cycles per FLOP at -O3 on the in-order Rocket FPU. */
constexpr double kCyclesPerFlop = 1.6;
constexpr Cycle kTaskFixed = 220;
/** Panel-orchestration body: loop control + spawn bookkeeping. */
constexpr Cycle kPanelPayload = 120;

Cycle
flops(double count)
{
    return kTaskFixed + static_cast<Cycle>(kCyclesPerFlop * count);
}
} // namespace

rt::Program
choleskyNested(unsigned nb, unsigned bs)
{
    if (nb == 0 || bs == 0)
        sim::fatal("choleskyNested: empty matrix");
    rt::Program prog;
    prog.name = "cholesky-nested nb" + std::to_string(nb) + " bs" +
                std::to_string(bs);

    const double b3 = static_cast<double>(bs) * bs * bs;
    const auto blockAddr = [&](unsigned i, unsigned j) {
        return kCholeskyBase +
               (static_cast<Addr>(i) * nb + j) * bs * bs * sizeof(double);
    };

    for (unsigned k = 0; k < nb; ++k) {
        // The panel parent: chained to its predecessor through the token
        // so panel subtrees enter the dependence engines in order.
        const std::uint64_t panel = prog.spawn(
            kPanelPayload, {{kCholeskyToken, rt::Dir::InOut}});

        // potrf: factorize the diagonal block.
        prog.spawnChild(panel, flops(b3 / 3.0),
                        {{blockAddr(k, k), rt::Dir::InOut}});

        // trsm: triangular solves down the column panel.
        for (unsigned i = k + 1; i < nb; ++i)
            prog.spawnChild(panel, flops(b3),
                            {{blockAddr(k, k), rt::Dir::In},
                             {blockAddr(i, k), rt::Dir::InOut}});

        // Trailing update: syrk on the diagonal, gemm off it.
        for (unsigned i = k + 1; i < nb; ++i) {
            prog.spawnChild(panel, flops(b3),
                            {{blockAddr(i, k), rt::Dir::In},
                             {blockAddr(i, i), rt::Dir::InOut}});
            for (unsigned j = k + 1; j < i; ++j)
                prog.spawnChild(panel, flops(2.0 * b3),
                                {{blockAddr(i, k), rt::Dir::In},
                                 {blockAddr(j, k), rt::Dir::In},
                                 {blockAddr(i, j), rt::Dir::InOut}});
        }

        // One scoped join for the whole panel: intra-panel ordering is
        // the dependence engine's job (potrf -> trsm -> syrk/gemm RAW
        // edges); the parent only retires once its subtree drained.
        prog.taskwaitChildren(panel);
    }
    prog.taskwait();
    return prog;
}

void
registerCholeskyWorkloads(spec::WorkloadRegistry &reg)
{
    reg.add({"cholesky-nested",
             "tiled Cholesky with worker-spawned panel subtrees",
             {{"nb", 10, 1, 10'000, "matrix dimension in blocks"},
              {"bs", 16, 1, 10'000, "block dimension in doubles"}},
             [](const spec::WorkloadArgs &a) {
                 return choleskyNested(static_cast<unsigned>(a.at("nb")),
                                       static_cast<unsigned>(a.at("bs")));
             }});
}

} // namespace picosim::apps
