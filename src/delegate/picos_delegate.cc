#include "delegate/picos_delegate.hh"

#include <string>

#include "sim/log.hh"

namespace picosim::delegate
{

PicosDelegate::PicosDelegate(CoreId core, manager::PicosManager &mgr,
                             sim::StatGroup &stats, CoreId mgr_port)
    : core_(core), port_(mgr_port), mgr_(mgr)
{
    // Resolve the per-instruction counters once; the instruction wrappers
    // below run on every simulated RoCC execution and must not pay a
    // string build + map lookup each time.
    static const char *const kOpNames[kNumOps] = {
        "submissionRequest", "submitPacket",  "submitThreePackets",
        "readyTaskRequest",  "fetchSwId",     "fetchPicosId",
        "retireTask",
    };
    const std::string prefix = "delegate." + std::to_string(core_) + ".";
    for (unsigned i = 0; i < kNumOps; ++i)
        ops_[i] = &stats.scalar(prefix + kOpNames[i]);
}

PicosDelegate::PicosDelegate(CoreId core, manager::PicosManager &mgr,
                             sim::StatGroup &stats)
    : PicosDelegate(core, mgr, stats, core)
{
}

bool
PicosDelegate::submissionRequest(unsigned num_packets)
{
    count(kOpSubmissionRequest);
    return mgr_.submissionRequest(port_, num_packets);
}

bool
PicosDelegate::submitPacket(std::uint32_t packet)
{
    count(kOpSubmitPacket);
    return mgr_.submitPacket(port_, packet);
}

bool
PicosDelegate::submitThreePackets(std::uint64_t rs1, std::uint64_t rs2)
{
    count(kOpSubmitThreePackets);
    const auto p1 = static_cast<std::uint32_t>(rs1 >> 32);
    const auto p2 = static_cast<std::uint32_t>(rs1 & 0xffffffffu);
    const auto p3 = static_cast<std::uint32_t>(rs2 & 0xffffffffu);
    return mgr_.submitThreePackets(port_, p1, p2, p3);
}

bool
PicosDelegate::readyTaskRequest()
{
    count(kOpReadyTaskRequest);
    return mgr_.readyTaskRequest(port_);
}

std::optional<std::uint64_t>
PicosDelegate::fetchSwId()
{
    count(kOpFetchSwId);
    const auto front = mgr_.peekReady(port_);
    if (!front)
        return std::nullopt;
    swIdFetched_ = true;
    return front->swId;
}

std::optional<std::uint32_t>
PicosDelegate::fetchPicosId()
{
    count(kOpFetchPicosId);
    if (!swIdFetched_ || !mgr_.peekReady(port_))
        return std::nullopt;
    swIdFetched_ = false;
    return mgr_.popReady(port_).picosId;
}

bool
PicosDelegate::retireCanAccept() const
{
    return mgr_.retireCanAccept(port_);
}

void
PicosDelegate::retireTask(std::uint32_t picos_id)
{
    count(kOpRetireTask);
    if (!mgr_.retirePush(port_, picos_id))
        sim::panic("retireTask pushed without retireCanAccept");
}

InstResult
PicosDelegate::execute(const rocc::RoccInst &inst, std::uint64_t rs1,
                       std::uint64_t rs2)
{
    using rocc::TaskFunct;
    InstResult res;
    switch (inst.funct) {
      case TaskFunct::SubmissionRequest:
        res.success = submissionRequest(static_cast<unsigned>(rs1));
        res.value = res.success ? 0 : kFailureValue;
        break;
      case TaskFunct::SubmitPacket:
        res.success = submitPacket(static_cast<std::uint32_t>(rs1));
        res.value = res.success ? 0 : kFailureValue;
        break;
      case TaskFunct::SubmitThreePackets:
        res.success = submitThreePackets(rs1, rs2);
        res.value = res.success ? 0 : kFailureValue;
        break;
      case TaskFunct::ReadyTaskRequest:
        res.success = readyTaskRequest();
        res.value = res.success ? 0 : kFailureValue;
        break;
      case TaskFunct::FetchSwId:
        if (auto id = fetchSwId()) {
            res.success = true;
            res.value = *id;
        } else {
            res.value = kFailureValue;
        }
        break;
      case TaskFunct::FetchPicosId:
        if (auto id = fetchPicosId()) {
            res.success = true;
            res.value = *id;
        } else {
            res.value = kFailureValue;
        }
        break;
      case TaskFunct::RetireTask:
        // Blocking semantics are modeled by the issuing hart (cpu layer);
        // by the time execute() is called acceptance must hold.
        retireTask(static_cast<std::uint32_t>(rs1));
        res.success = true;
        break;
    }
    return res;
}

} // namespace picosim::delegate
