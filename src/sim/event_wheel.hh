/**
 * @file
 * Bitmap timing wheel backing the event-driven kernel's scheduler.
 *
 * The binary-heap event queue this replaces paid O(log n) per operation,
 * carried duplicate/stale entries that had to be re-validated on every
 * fast-forward, and allocated as the heap grew. The wheel exploits the
 * kernel's actual structure instead:
 *
 *  - Each component has exactly ONE armed wake cycle (the minimum of its
 *    self-schedule and its earliest pending external wake; the Simulator
 *    maintains that minimum). Arming, disarming and re-arming are O(1)
 *    bit operations — no stale entries exist at all.
 *  - A bucket holds one bit per component (registration index), so
 *    same-cycle events are naturally batched into one dispatch and are
 *    iterated in REGISTRATION ORDER by construction: word order, then
 *    bit order, is exactly the deterministic same-cycle ordering rule
 *    the tick-the-world reference kernel defines. Scheduling order can
 *    never influence dispatch order — bits have no insertion history.
 *  - The wheel covers a horizon of kBuckets consecutive cycles (wake
 *    deltas produced by ports, queues and payload delays are short); the
 *    occupancy bitmap makes "find the next scheduled cycle" a handful of
 *    word scans even across multi-thousand-cycle quiescent gaps.
 *    Events beyond the horizon (rare: long alarms) are kept by the
 *    Simulator in a far set and re-filed when they enter the horizon.
 *
 * Buckets are lazily re-tagged: every bucket stores the absolute cycle
 * its bits belong to, so wrap-around never needs eager cleaning and a
 * stale bucket is recognized (and recycled) in O(1).
 */

#ifndef PICOSIM_SIM_EVENT_WHEEL_HH
#define PICOSIM_SIM_EVENT_WHEEL_HH

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "sim/types.hh"

namespace picosim::sim
{

class EventWheel
{
  public:
    /** Cycles covered by the wheel: events in [now, now + kBuckets). */
    static constexpr std::uint32_t kBuckets = 16384;

    EventWheel()
        : tags_(kBuckets, kCycleNever), occ_(kBuckets / 64, 0)
    {
        masks_.resize(static_cast<std::size_t>(kBuckets) * words_, 0);
    }

    /** Number of 64-bit mask words per bucket. */
    unsigned numWords() const { return words_; }

    /** Grow capacity to hold component index @p reg (call on register). */
    void
    addComponent(unsigned reg)
    {
        const unsigned needed = reg / 64 + 1;
        if (needed <= words_)
            return;
        // Re-layout the flat mask array to the wider per-bucket stride.
        std::vector<std::uint64_t> wider(
            static_cast<std::size_t>(kBuckets) * needed, 0);
        for (std::uint32_t b = 0; b < kBuckets; ++b)
            std::memcpy(&wider[static_cast<std::size_t>(b) * needed],
                        &masks_[static_cast<std::size_t>(b) * words_],
                        words_ * sizeof(std::uint64_t));
        masks_ = std::move(wider);
        words_ = needed;
    }

    /**
     * Arm component @p reg at @p cycle. The caller guarantees the cycle
     * lies within the wheel's horizon of the current scan position; a
     * bucket last used for an older cycle is recycled in place.
     */
    void
    set(unsigned reg, Cycle cycle)
    {
        const std::uint32_t b = bucketOf(cycle);
        if (tags_[b] != cycle) {
            tags_[b] = cycle;
            std::memset(&masks_[static_cast<std::size_t>(b) * words_], 0,
                        words_ * sizeof(std::uint64_t));
        }
        masks_[static_cast<std::size_t>(b) * words_ + reg / 64] |=
            std::uint64_t{1} << (reg % 64);
        occ_[b / 64] |= std::uint64_t{1} << (b % 64);
    }

    /** Disarm component @p reg from @p cycle (no-op if not armed there).
     *  Occupancy is cleaned lazily by the next scan. */
    void
    clear(unsigned reg, Cycle cycle)
    {
        const std::uint32_t b = bucketOf(cycle);
        if (tags_[b] != cycle)
            return;
        masks_[static_cast<std::size_t>(b) * words_ + reg / 64] &=
            ~(std::uint64_t{1} << (reg % 64));
    }

    /** Live view of mask word @p w of the bucket for @p cycle. */
    std::uint64_t
    word(Cycle cycle, unsigned w) const
    {
        const std::uint32_t b = bucketOf(cycle);
        if (tags_[b] != cycle)
            return 0;
        return masks_[static_cast<std::size_t>(b) * words_ + w];
    }

    /** Clear one bit of the bucket for @p cycle (tag assumed matching). */
    void
    clearBit(Cycle cycle, unsigned reg)
    {
        const std::uint32_t b = bucketOf(cycle);
        masks_[static_cast<std::size_t>(b) * words_ + reg / 64] &=
            ~(std::uint64_t{1} << (reg % 64));
    }

    /** True when any component is armed exactly at @p cycle. */
    bool
    anyAt(Cycle cycle) const
    {
        const std::uint32_t b = bucketOf(cycle);
        if (tags_[b] != cycle)
            return false;
        const std::size_t base = static_cast<std::size_t>(b) * words_;
        for (unsigned w = 0; w < words_; ++w)
            if (masks_[base + w])
                return true;
        return false;
    }

    /**
     * Earliest armed cycle >= @p from within the horizon, or kCycleNever.
     * All armed cycles live in [from, from + kBuckets) by the Simulator's
     * arming invariant, so ring order from @p from equals cycle order.
     * Buckets whose bits were all consumed (or whose tag went stale after
     * a wrap) have their occupancy cleared here, lazily.
     */
    Cycle
    firstOnOrAfter(Cycle from)
    {
        const std::uint32_t start = bucketOf(from);
        // Scan occupancy words in ring order; the first word is masked to
        // the ring start, the wrapped tail re-visits its lower bits.
        for (std::uint32_t step = 0; step <= kBuckets / 64; ++step) {
            const std::uint32_t wi =
                ((start / 64) + step) % (kBuckets / 64);
            std::uint64_t bits = occ_[wi];
            if (step == 0)
                bits &= ~std::uint64_t{0} << (start % 64);
            else if (step == kBuckets / 64)
                bits &= (std::uint64_t{1} << (start % 64)) - 1;
            while (bits) {
                const std::uint32_t b =
                    wi * 64 +
                    static_cast<std::uint32_t>(std::countr_zero(bits));
                bits &= bits - 1;
                const Cycle tag = tags_[b];
                if (tag == kCycleNever || tag < from || !nonEmpty(b)) {
                    // Consumed or stale-lap bucket: drop its occupancy.
                    occ_[b / 64] &= ~(std::uint64_t{1} << (b % 64));
                    continue;
                }
                return tag;
            }
        }
        return kCycleNever;
    }

  private:
    static std::uint32_t
    bucketOf(Cycle cycle)
    {
        return static_cast<std::uint32_t>(cycle) & (kBuckets - 1);
    }

    bool
    nonEmpty(std::uint32_t b) const
    {
        const std::size_t base = static_cast<std::size_t>(b) * words_;
        for (unsigned w = 0; w < words_; ++w)
            if (masks_[base + w])
                return true;
        return false;
    }

    unsigned words_ = 1;
    std::vector<std::uint64_t> masks_; ///< kBuckets x words_ bit matrix
    std::vector<Cycle> tags_;          ///< absolute cycle of each bucket
    std::vector<std::uint64_t> occ_;   ///< bucket-occupancy bitmap
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_EVENT_WHEEL_HH
