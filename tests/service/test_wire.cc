/** @file Unit tests for the service wire format: JSON string escaping,
 *  the RunResult <-> flat-JSON round trip (bit-exact, doubles
 *  included — the guarantee behind the byte-identical client-side CLI
 *  report), and malformed-input rejection. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <map>
#include <string>

#include "service/wire.hh"
#include "spec/run_spec.hh"

using namespace picosim;
namespace wire = picosim::svc::wire;

namespace
{

rt::RunResult
fullResult()
{
    rt::RunResult res;
    res.runtime = "phentos";
    res.program = "blackscholes 4K B16";
    res.completed = true;
    res.status = rt::RunStatus::Ok;
    res.cycles = 404299;
    res.serialPayload = 399360;
    res.tasks = 256;
    res.meanTaskSize = 1560.3976339745962; // needs all 17 digits
    res.serialCycles = 1234567890123ull;
    res.evaluatedCycles = 398877;
    res.componentTicks = 2864414;
    res.tickWorldTicks = 11320372;
    res.busTransactions = 11;
    res.busStallCycles = 22;
    res.dramStallCycles = 33;
    res.mshrStallCycles = 44;
    res.schedSubStalls = 55;
    res.schedRoutingStalls = 66;
    res.schedReadyStalls = 77;
    res.schedGatewayStallCycles = 88;
    res.crossShardEdges = 99;
    res.workSteals = 111;
    res.workerSubmits = 222;
    res.inlineTasks = 333;
    return res;
}

} // namespace

TEST(Wire, JsonStringEscapingRoundTrips)
{
    const std::string nasty =
        "quote\" backslash\\ newline\n tab\t bell\x07 high\x1f done";
    const std::string quoted = wire::jsonString(nasty);
    EXPECT_EQ(quoted.front(), '"');
    EXPECT_EQ(quoted.back(), '"');
    EXPECT_EQ(quoted.find('\n'), std::string::npos)
        << "escaped strings must stay on one line";
    EXPECT_EQ(wire::parseJsonString(quoted), nasty);
}

TEST(Wire, RunResultRoundTripsBitExactly)
{
    const rt::RunResult in = fullResult();
    const std::string json = wire::runResultJson(in);
    EXPECT_EQ(json.find('\n'), std::string::npos);

    const rt::RunResult out = wire::runResultFromJson(json);
    EXPECT_EQ(out.runtime, in.runtime);
    EXPECT_EQ(out.program, in.program);
    EXPECT_EQ(out.completed, in.completed);
    EXPECT_EQ(out.status, in.status);
    EXPECT_EQ(out.error, in.error);
    EXPECT_EQ(out.cycles, in.cycles);
    EXPECT_EQ(out.serialPayload, in.serialPayload);
    EXPECT_EQ(out.tasks, in.tasks);
    // %.17g: doubles survive the text round trip bit-for-bit.
    EXPECT_EQ(std::memcmp(&out.meanTaskSize, &in.meanTaskSize,
                          sizeof(double)),
              0);
    EXPECT_EQ(out.serialCycles, in.serialCycles);
    EXPECT_EQ(out.evaluatedCycles, in.evaluatedCycles);
    EXPECT_EQ(out.componentTicks, in.componentTicks);
    EXPECT_EQ(out.tickWorldTicks, in.tickWorldTicks);
    EXPECT_EQ(out.busTransactions, in.busTransactions);
    EXPECT_EQ(out.busStallCycles, in.busStallCycles);
    EXPECT_EQ(out.dramStallCycles, in.dramStallCycles);
    EXPECT_EQ(out.mshrStallCycles, in.mshrStallCycles);
    EXPECT_EQ(out.schedSubStalls, in.schedSubStalls);
    EXPECT_EQ(out.schedRoutingStalls, in.schedRoutingStalls);
    EXPECT_EQ(out.schedReadyStalls, in.schedReadyStalls);
    EXPECT_EQ(out.schedGatewayStallCycles, in.schedGatewayStallCycles);
    EXPECT_EQ(out.crossShardEdges, in.crossShardEdges);
    EXPECT_EQ(out.workSteals, in.workSteals);
    EXPECT_EQ(out.workerSubmits, in.workerSubmits);
    EXPECT_EQ(out.inlineTasks, in.inlineTasks);
}

TEST(Wire, ErrorStatusRoundTrips)
{
    rt::RunResult in;
    in.status = rt::RunStatus::Error;
    in.error = "fatal: \"chaos\" at line 3\nwith a newline";
    const rt::RunResult out =
        wire::runResultFromJson(wire::runResultJson(in));
    EXPECT_EQ(out.status, rt::RunStatus::Error);
    EXPECT_EQ(out.error, in.error);
}

TEST(Wire, FlatJsonParsesStringsNumbersAndBooleans)
{
    const auto kv = wire::parseFlatJson(
        R"({"name": "a b", "n": 42, "x": 1.5, "flag": true, "off": false})");
    EXPECT_EQ(kv.at("name"), "a b");
    EXPECT_EQ(kv.at("n"), "42");
    EXPECT_EQ(kv.at("x"), "1.5");
    EXPECT_EQ(kv.at("flag"), "true");
    EXPECT_EQ(kv.at("off"), "false");
}

TEST(Wire, FlatJsonIgnoresUnknownResultFields)
{
    // Forward compatibility: a newer server may send extra fields.
    const rt::RunResult out = wire::runResultFromJson(
        R"({"runtime": "serial", "cycles": 7, "futureField": 1})");
    EXPECT_EQ(out.runtime, "serial");
    EXPECT_EQ(out.cycles, 7u);
}

TEST(Wire, MalformedJsonThrows)
{
    EXPECT_THROW(wire::parseFlatJson("not json"), spec::SpecError);
    EXPECT_THROW(wire::parseFlatJson("{\"unterminated\": \"str"),
                 spec::SpecError);
    EXPECT_THROW(wire::parseFlatJson("{\"a\" 1}"), spec::SpecError);
    EXPECT_THROW(wire::runResultFromJson("[1,2]"), spec::SpecError);
}
