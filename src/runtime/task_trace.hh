/**
 * @file
 * Per-task lifecycle tracing: submission, dispatch and retirement
 * timestamps plus the executing core, for latency breakdowns and
 * chrome://tracing visualization of schedules.
 *
 * Attach a TaskTrace to any runtime via Runtime-specific setTrace();
 * recording is optional and free when disabled.
 */

#ifndef PICOSIM_RUNTIME_TASK_TRACE_HH
#define PICOSIM_RUNTIME_TASK_TRACE_HH

#include <algorithm>
#include <cstdint>
#include <ostream>
#include <vector>

#include "sim/types.hh"

namespace picosim::rt
{

struct TaskRecord
{
    Cycle submitted = 0;  ///< runtime accepted the spawn
    Cycle dispatched = 0; ///< a core started executing the body
    Cycle retired = 0;    ///< retirement completed
    CoreId core = 0;      ///< executing core
    bool valid = false;
};

class TaskTrace
{
  public:
    /**
     * Hard ceiling on stored records (~40 MB of trace memory). Events for
     * ids at or beyond it are counted in droppedRecords() instead of
     * silently vanishing from latency breakdowns.
     */
    static constexpr std::uint64_t kMaxRecords = 1u << 20;

    void
    reset(std::uint64_t num_tasks)
    {
        records_.assign(num_tasks, TaskRecord{});
        dropped_ = 0;
    }

    bool enabled() const { return !records_.empty(); }
    std::size_t size() const { return records_.size(); }

    /** Events whose id exceeded kMaxRecords (lost from breakdowns). */
    std::uint64_t droppedRecords() const { return dropped_; }

    void
    onSubmit(std::uint64_t id, Cycle now)
    {
        if (!grownTo(id))
            return;
        records_[id].submitted = now;
        records_[id].valid = true;
    }

    void
    onDispatch(std::uint64_t id, Cycle now, CoreId core)
    {
        if (!grownTo(id))
            return;
        records_[id].dispatched = now;
        records_[id].core = core;
    }

    void
    onRetire(std::uint64_t id, Cycle now)
    {
        if (!grownTo(id))
            return;
        records_[id].retired = now;
    }

    const TaskRecord &record(std::uint64_t id) const
    {
        return records_.at(id);
    }

    /** Mean cycles from submission to dispatch (queueing latency). */
    double meanQueueLatency() const;

    /** Mean cycles from dispatch to retirement (service time). */
    double meanServiceTime() const;

    /** Number of records that completed the full lifecycle. */
    std::uint64_t completedCount() const;

    /**
     * Emit the schedule as a Chrome trace-event JSON array (one lane per
     * core; open in chrome://tracing or Perfetto). Cycle counts are
     * reported as microseconds 1:1.
     */
    void writeChromeTrace(std::ostream &os,
                          const std::string &name = "picosim") const;

  private:
    /**
     * Ensure a record for @p id exists. Runtimes may spawn more tasks
     * than the reset() count (programs whose task ids are produced
     * dynamically); those records must not silently vanish, so the
     * vector grows geometrically up to kMaxRecords. @return false when
     * the id is beyond the ceiling (the event is counted as dropped).
     */
    bool
    grownTo(std::uint64_t id)
    {
        if (id < records_.size())
            return true;
        if (id >= kMaxRecords) {
            ++dropped_;
            return false;
        }
        records_.resize(
            std::min<std::uint64_t>(
                kMaxRecords,
                std::max<std::uint64_t>(id + 1, records_.size() * 2)),
            TaskRecord{});
        return true;
    }

    std::vector<TaskRecord> records_;
    std::uint64_t dropped_ = 0;
};

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_TASK_TRACE_HH
