/**
 * @file
 * Nested-tasking extension: how do the runtimes and the scheduler fabrics
 * behave when tasks spawn tasks? The recursive workloads (fork-join
 * Cholesky panels, divide-and-conquer mergesort, the nested taskbench
 * tree) submit most of their tasks from worker harts — every core's
 * delegate port carries submission bursts, which is exactly the traffic
 * pattern the sharded multi-Picos fabrics were built for. The sweep
 * reports makespan, speedup over the serial baseline, the share of
 * worker-side submissions, and the sharded-fabric counters (gateway
 * waits, cross-shard edges, steals).
 *
 * Every configuration is a spec::RunSpec mutation run through
 * spec::Engine; each BENCH json row carries its serialized spec.
 * Emits BENCH_nested.json alongside the table.
 */

#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "spec/engine.hh"

using namespace picosim;
using namespace picosim::bench;

namespace
{

struct Topo
{
    unsigned shards;
    unsigned clusters;
};

/** One configuration run, with its wall time (the BENCH json tracks the
 *  simulator's own perf trajectory across PRs, not just the makespans). */
rt::RunResult
runTopo(const spec::RunSpec &s, double &wall_sec)
{
    const auto t0 = std::chrono::steady_clock::now();
    rt::RunResult r = bench::runJobWithSpeedup(s);
    wall_sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return r;
}

} // namespace

int
main()
{
    const std::vector<spec::RunSpec> bases = {
        // fork-join panels, real deps
        canonicalSpec("cholesky-nested", {{"nb", 12}, {"bs", 16}}),
        // deep recursion, binary tree
        canonicalSpec("mergesort-nested", {{"n", 16384}, {"cutoff", 256}}),
        // wide independent fan-out
        canonicalSpec("task-tree",
                     {{"fanout", 4}, {"depth", 4}, {"payload", 1000}}),
    };
    const std::vector<rt::RuntimeKind> kinds = {rt::RuntimeKind::Phentos,
                                                rt::RuntimeKind::NanosRV};
    const std::vector<unsigned> coreCounts =
        quickMode() ? std::vector<unsigned>{8u}
                    : std::vector<unsigned>{8u, 16u, 32u};
    const Topo topos[] = {{1, 1}, {4, 4}};

    BenchJson json("BENCH_nested.json");
    bool allCompleted = true;
    for (const spec::RunSpec &base : bases) {
        const rt::Program prog = spec::Engine::buildProgram(base);
        std::printf("# Nested scaling: %s (%llu tasks, mean size %.0f "
                    "cycles)\n",
                    prog.name.c_str(),
                    static_cast<unsigned long long>(prog.numTasks()),
                    prog.meanTaskSize());
        std::printf("%-9s %-6s %-9s %12s %8s %10s %7s %12s %8s %8s\n",
                    "runtime", "cores", "topology", "cycles", "speedup",
                    "workerSub", "inline", "gateWaitCyc", "xEdges",
                    "steals");
        for (const rt::RuntimeKind kind : kinds) {
            for (unsigned cores : coreCounts) {
                for (const Topo &t : topos) {
                    if (t.clusters > cores)
                        continue;
                    spec::RunSpec s = base;
                    s.runtime = kind;
                    s.cores = cores;
                    s.schedShards = t.shards;
                    s.clusters = t.clusters;
                    double wallSec = 0.0;
                    const rt::RunResult r = runTopo(s, wallSec);
                    allCompleted = allCompleted && r.completed;
                    char topo[16];
                    std::snprintf(topo, sizeof topo, "%ux%u", t.shards,
                                  t.clusters);
                    std::printf(
                        "%-9s %-6u %-9s %12llu %8.2f %10llu %7llu "
                        "%12llu %8llu %8llu%s\n",
                        r.runtime.c_str(), cores, topo,
                        static_cast<unsigned long long>(r.cycles),
                        r.speedup(),
                        static_cast<unsigned long long>(r.workerSubmits),
                        static_cast<unsigned long long>(r.inlineTasks),
                        static_cast<unsigned long long>(
                            r.schedGatewayStallCycles),
                        static_cast<unsigned long long>(r.crossShardEdges),
                        static_cast<unsigned long long>(r.workSteals),
                        r.completed ? "" : "  INCOMPLETE");
                    json.beginRow();
                    bench::stampHost(json);
                    bench::stampSpec(json, s);
                    json.field("bench", "nested_scaling");
                    json.field("workload", prog.name);
                    json.field("runtime", r.runtime);
                    json.field("cores", std::uint64_t{cores});
                    json.field("shards", std::uint64_t{t.shards});
                    json.field("clusters", std::uint64_t{t.clusters});
                    json.field("cycles", r.cycles);
                    json.field("speedup", r.speedup());
                    json.field("tasks", r.tasks);
                    json.field("workerSubmits", r.workerSubmits);
                    json.field("inlineTasks", r.inlineTasks);
                    json.field("gatewayStallCycles",
                               r.schedGatewayStallCycles);
                    json.field("crossShardEdges", r.crossShardEdges);
                    json.field("steals", r.workSteals);
                    json.field("wallSec", wallSec);
                    json.field("hostTicksPerSec",
                               wallSec > 0
                                   ? static_cast<double>(
                                         r.componentTicks) /
                                         wallSec
                                   : 0.0);
                    json.field("completed", r.completed);
                }
            }
        }
        std::printf("\n");
    }
    if (json.write())
        std::printf("json: %s\n", json.path().c_str());
    else
        std::fprintf(stderr, "warning: could not write %s\n",
                     json.path().c_str());
    std::printf("# Most tasks are submitted from worker harts (the "
                "workerSub column): nested\n# programs exercise every "
                "core's submission port, not just the master's.\n");
    return allCompleted ? 0 : 1;
}
