/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic behaviour in the simulator draws from explicitly seeded
 * instances of this generator so experiments are exactly reproducible.
 */

#ifndef PICOSIM_SIM_RNG_HH
#define PICOSIM_SIM_RNG_HH

#include <array>
#include <cstdint>

namespace picosim::sim
{

/** xoshiro256** 1.0 by Blackman & Vigna (public domain algorithm). */
class Rng
{
  public:
    using result_type = std::uint64_t;

    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
    {
        // SplitMix64 expansion of the seed, as recommended by the authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    result_type
    operator()()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound), bound > 0, via Lemire reduction. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return static_cast<std::uint64_t>(
            (static_cast<unsigned __int128>((*this)()) * bound) >> 64);
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t
    range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::array<std::uint64_t, 4> state_{};
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_RNG_HH
