/**
 * @file
 * Property-based equivalence tests: the Picos hardware model and the
 * software dependence graph (Nanos-SW's inference) must agree on the
 * dependence semantics of Section III-A for arbitrary task streams --
 * same readiness decisions, same executable schedules.
 *
 * The reference executor runs a program through SwDepGraph; the hardware
 * executor drives bare Picos through its packet interfaces. Both retire
 * greedily. For every randomized program we check: all tasks complete,
 * and every task is dispatched only after all of its program-order
 * predecessors that conflict with it (RAW/WAW/WAR) have retired.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "picos/picos.hh"
#include "rocc/task_packets.hh"
#include "runtime/sw_dep_graph.hh"
#include "runtime/task_types.hh"
#include "sim/clock.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace picosim;
using namespace picosim::rocc;

namespace
{

/** Generate a random program over a small address pool. */
std::vector<rt::Task>
randomTasks(std::uint64_t seed, unsigned num_tasks, unsigned num_addrs,
            unsigned max_deps)
{
    sim::Rng rng(seed);
    std::vector<rt::Task> tasks;
    for (unsigned i = 0; i < num_tasks; ++i) {
        rt::Task t;
        t.id = i;
        t.payload = 10;
        const unsigned ndeps =
            static_cast<unsigned>(rng.below(max_deps + 1));
        std::vector<Addr> used;
        for (unsigned d = 0; d < ndeps; ++d) {
            const Addr addr =
                0x8000'0000ull + rng.below(num_addrs) * 64;
            // Skip duplicate addresses within one task (the real
            // programming model annotates each pointer once).
            bool dup = false;
            for (Addr u : used)
                dup |= (u == addr);
            if (dup)
                continue;
            used.push_back(addr);
            t.deps.push_back(
                {addr, static_cast<Dir>(1 + rng.below(3))});
        }
        tasks.push_back(std::move(t));
    }
    return tasks;
}

/**
 * Ground truth: the conflict predecessors of each task under the
 * paper's Section III-A rules, computed directly from program order.
 */
std::vector<std::vector<unsigned>>
conflictPredecessors(const std::vector<rt::Task> &tasks)
{
    std::vector<std::vector<unsigned>> preds(tasks.size());
    for (unsigned i = 0; i < tasks.size(); ++i) {
        for (unsigned j = 0; j < i; ++j) {
            bool conflict = false;
            for (const auto &di : tasks[i].deps) {
                for (const auto &dj : tasks[j].deps) {
                    if (di.addr != dj.addr)
                        continue;
                    const bool i_writes = di.dir != Dir::In;
                    const bool j_writes = dj.dir != Dir::In;
                    if (i_writes || j_writes)
                        conflict = true;
                }
            }
            if (conflict)
                preds[i].push_back(j);
        }
    }
    return preds;
}

/**
 * Drive bare Picos with the whole task stream and retire greedily.
 * @return dispatch order (by swId), or empty on timeout/deadlock.
 */
std::vector<unsigned>
hardwareSchedule(const std::vector<rt::Task> &tasks)
{
    sim::Clock clock;
    sim::StatGroup stats;
    picos::Picos picos(clock, picos::PicosParams{}, stats);

    std::vector<std::uint32_t> packets;
    for (const rt::Task &t : tasks) {
        TaskDescriptor d;
        d.swId = t.id;
        d.deps = t.deps;
        auto p = encodeNonZero(d);
        p.resize(kDescriptorPackets, 0);
        packets.insert(packets.end(), p.begin(), p.end());
    }

    std::vector<unsigned> order;
    std::size_t pushed = 0;
    std::uint32_t buf[3];
    unsigned got = 0;
    const unsigned budget = 200'000;
    for (unsigned i = 0;
         i < budget && order.size() < tasks.size(); ++i) {
        if (pushed < packets.size() && picos.subPush(packets[pushed]))
            ++pushed;
        if (picos.readyValid()) {
            buf[got++] = picos.readyPop();
            if (got == 3) {
                got = 0;
                order.push_back(
                    static_cast<unsigned>(buf[2])); // swId low
                picos.retirePush(buf[0]);
            }
        }
        picos.tick();
        clock.advanceTo(clock.now() + 1);
    }
    return order.size() == tasks.size() ? order
                                        : std::vector<unsigned>{};
}

/** Same through the software graph (immediate release). */
std::vector<unsigned>
softwareSchedule(const std::vector<rt::Task> &tasks)
{
    rt::CostModel cm;
    rt::SwDepGraph graph(cm);
    std::vector<unsigned> order;
    std::vector<std::uint64_t> ready;
    for (const rt::Task &t : tasks) {
        const auto r = graph.submit(t);
        if (r.ready)
            ready.push_back(t.id);
        // Greedily drain everything currently ready.
        while (!ready.empty()) {
            const std::uint64_t id = ready.back();
            ready.pop_back();
            order.push_back(static_cast<unsigned>(id));
            const auto rel = graph.release(id);
            ready.insert(ready.end(), rel.becameReady.begin(),
                         rel.becameReady.end());
        }
    }
    return order;
}

/** Check a dispatch order against the ground-truth conflict edges. */
::testing::AssertionResult
validSchedule(const std::vector<rt::Task> &tasks,
              const std::vector<unsigned> &order)
{
    if (order.size() != tasks.size())
        return ::testing::AssertionFailure()
               << "incomplete schedule: " << order.size() << "/"
               << tasks.size();
    const auto preds = conflictPredecessors(tasks);
    std::vector<unsigned> position(tasks.size());
    for (unsigned pos = 0; pos < order.size(); ++pos)
        position[order[pos]] = pos;
    for (unsigned i = 0; i < tasks.size(); ++i) {
        for (unsigned j : preds[i]) {
            if (position[j] > position[i]) {
                return ::testing::AssertionFailure()
                       << "task " << i << " dispatched before its "
                       << "conflict predecessor " << j;
            }
        }
    }
    return ::testing::AssertionSuccess();
}

} // namespace

class EquivalenceTest : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(EquivalenceTest, HardwareScheduleRespectsConflicts)
{
    const auto tasks = randomTasks(GetParam(), 60, 12, 4);
    const auto order = hardwareSchedule(tasks);
    EXPECT_TRUE(validSchedule(tasks, order));
}

TEST_P(EquivalenceTest, SoftwareScheduleRespectsConflicts)
{
    const auto tasks = randomTasks(GetParam(), 60, 12, 4);
    const auto order = softwareSchedule(tasks);
    EXPECT_TRUE(validSchedule(tasks, order));
}

TEST_P(EquivalenceTest, BothSidesCompleteDenseConflictStreams)
{
    // Few addresses, many writers: maximum conflict density.
    const auto tasks = randomTasks(GetParam() ^ 0xabcdef, 40, 3, 2);
    EXPECT_TRUE(validSchedule(tasks, hardwareSchedule(tasks)));
    EXPECT_TRUE(validSchedule(tasks, softwareSchedule(tasks)));
}

TEST_P(EquivalenceTest, MaxDepsStreams)
{
    const auto tasks = randomTasks(GetParam() ^ 0x777, 25, 30, 15);
    EXPECT_TRUE(validSchedule(tasks, hardwareSchedule(tasks)));
    EXPECT_TRUE(validSchedule(tasks, softwareSchedule(tasks)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Range<std::uint64_t>(1, 21));
