/**
 * @file
 * The 37 benchmark inputs of Figure 9, in figure order.
 *
 * Input mapping (DESIGN.md substitutions): blackscholes and jacobi use the
 * paper's sizes directly; sparseLU "N32"/"N128" block grids are scaled to
 * 8x8 / 12x12 blocks with block size 6*M elements so the granularity sweep
 * spans the same decades while full Nanos-SW sweeps stay tractable;
 * stream sizes "NxM" map to N blocks of M doubles.
 *
 * Every input is expressed as a workload-registry name plus `wl.*`
 * parameters, so figure rows and spec files describe the exact same runs.
 */

#include "apps/workloads.hh"

namespace picosim::apps
{

rt::Program
BenchInput::build() const
{
    return spec::WorkloadRegistry::instance().build(program, args);
}

std::vector<BenchInput>
figure9Inputs()
{
    std::vector<BenchInput> inputs;

    // blackscholes: 4K and 16K options, block size 8..256.
    for (unsigned opts : {4096u, 16384u}) {
        for (unsigned b : {8u, 16u, 32u, 64u, 128u, 256u}) {
            const std::string sz = opts == 4096 ? "4K" : "16K";
            inputs.push_back({"blackscholes", sz + " B" + std::to_string(b),
                              {{"options", opts}, {"block", b}}});
        }
    }

    // jacobi: N in {128, 256, 512}, one-row blocks, 8 sweeps.
    for (unsigned n : {128u, 256u, 512u}) {
        inputs.push_back(
            {"jacobi", "N" + std::to_string(n) + " B1",
             {{"n", n}, {"block-rows", 1}, {"sweeps", 8}}});
    }

    // sparselu: two grid sizes x block-size multiplier M in {1..16}.
    for (unsigned n : {32u, 128u}) {
        const unsigned nb = n == 32 ? 8 : 12;
        for (unsigned m : {1u, 2u, 4u, 8u, 16u}) {
            inputs.push_back(
                {"sparselu",
                 "N" + std::to_string(n) + " M" + std::to_string(m),
                 {{"nb", nb}, {"bs", 6 * m}}});
        }
    }

    // stream-barr and stream-deps: same six sizes each.
    struct StreamSize { const char *label; unsigned blocks, elems; };
    const StreamSize sizes[] = {
        {"64", 8, 8},          {"16x16", 16, 16},
        {"16x128", 16, 128},   {"128x128", 128, 128},
        {"128x1024", 128, 1024}, {"4096x4096", 1024, 4096},
    };
    for (const auto &s : sizes) {
        inputs.push_back({"stream-barr", s.label,
                          {{"blocks", s.blocks}, {"elems", s.elems},
                           {"iters", 2}}});
    }
    for (const auto &s : sizes) {
        inputs.push_back({"stream-deps", s.label,
                          {{"blocks", s.blocks}, {"elems", s.elems},
                           {"iters", 2}}});
    }

    return inputs;
}

} // namespace picosim::apps
