/** @file Unit tests for the Picos accelerator model. */

#include <gtest/gtest.h>

#include <optional>
#include <vector>

#include "picos/picos.hh"
#include "rocc/task_packets.hh"
#include "sim/clock.hh"
#include "sim/stats.hh"

using namespace picosim;
using namespace picosim::picos;
using namespace picosim::rocc;

namespace
{

class PicosTest : public ::testing::Test
{
  protected:
    PicosTest() : picos_(clock_, PicosParams{}, stats_) {}

    void
    step(unsigned n = 1)
    {
        for (unsigned i = 0; i < n; ++i) {
            picos_.tick();
            clock_.advanceTo(clock_.now() + 1);
        }
    }

    /** Push a full padded descriptor, ticking as needed. */
    void
    submit(std::uint64_t sw_id, std::vector<TaskDep> deps)
    {
        TaskDescriptor desc;
        desc.swId = sw_id;
        desc.deps = std::move(deps);
        auto pkts = encodeNonZero(desc);
        pkts.resize(kDescriptorPackets, 0);
        for (std::uint32_t p : pkts) {
            while (!picos_.subPush(p))
                step();
        }
    }

    /** Tick until a ready tuple appears; nullopt on timeout. */
    std::optional<ReadyTuple>
    awaitReady(unsigned budget = 1000)
    {
        std::uint32_t buf[3];
        unsigned got = 0;
        for (unsigned i = 0; i < budget && got < 3; ++i) {
            if (picos_.readyValid())
                buf[got++] = picos_.readyPop();
            else
                step();
        }
        if (got < 3)
            return std::nullopt;
        ReadyTuple t;
        t.picosId = buf[0];
        t.swId = (static_cast<std::uint64_t>(buf[1]) << 32) | buf[2];
        return t;
    }

    void
    retire(std::uint32_t picos_id)
    {
        while (!picos_.retirePush(picos_id))
            step();
    }

    sim::Clock clock_;
    sim::StatGroup stats_;
    Picos picos_;
};

} // namespace

TEST_F(PicosTest, IndependentTaskBecomesReady)
{
    submit(42, {{0x1000, Dir::Out}});
    const auto t = awaitReady();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->swId, 42u);
    EXPECT_EQ(picos_.taskState(t->picosId), TaskState::Running);
    EXPECT_EQ(picos_.inFlightTasks(), 1u);
}

TEST_F(PicosTest, ZeroDepTaskIsReadyImmediately)
{
    submit(7, {});
    const auto t = awaitReady();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->swId, 7u);
}

TEST_F(PicosTest, RawDependenceBlocksReader)
{
    submit(1, {{0x1000, Dir::Out}});
    submit(2, {{0x1000, Dir::In}});
    const auto t1 = awaitReady();
    ASSERT_TRUE(t1.has_value());
    EXPECT_EQ(t1->swId, 1u);
    // Task 2 must not be ready while task 1 is in flight.
    step(200);
    EXPECT_FALSE(picos_.readyValid());
    retire(t1->picosId);
    const auto t2 = awaitReady();
    ASSERT_TRUE(t2.has_value());
    EXPECT_EQ(t2->swId, 2u);
}

TEST_F(PicosTest, WawDependenceSerializesWriters)
{
    submit(1, {{0x2000, Dir::Out}});
    submit(2, {{0x2000, Dir::Out}});
    const auto t1 = awaitReady();
    ASSERT_TRUE(t1 && t1->swId == 1u);
    step(200);
    EXPECT_FALSE(picos_.readyValid());
    retire(t1->picosId);
    const auto t2 = awaitReady();
    ASSERT_TRUE(t2 && t2->swId == 2u);
}

TEST_F(PicosTest, WarDependenceBlocksWriterOnReaders)
{
    submit(1, {{0x3000, Dir::Out}});
    const auto t1 = awaitReady();
    ASSERT_TRUE(t1.has_value());
    retire(t1->picosId);

    submit(2, {{0x3000, Dir::In}});
    submit(3, {{0x3000, Dir::In}});
    submit(4, {{0x3000, Dir::Out}}); // WAR on 2 and 3
    const auto t2 = awaitReady();
    const auto t3 = awaitReady();
    ASSERT_TRUE(t2 && t3);
    EXPECT_EQ(t2->swId, 2u);
    EXPECT_EQ(t3->swId, 3u);
    step(200);
    EXPECT_FALSE(picos_.readyValid()); // writer still blocked
    retire(t2->picosId);
    step(200);
    EXPECT_FALSE(picos_.readyValid()); // one reader left
    retire(t3->picosId);
    const auto t4 = awaitReady();
    ASSERT_TRUE(t4 && t4->swId == 4u);
}

TEST_F(PicosTest, ParallelReadersAllReady)
{
    for (std::uint64_t i = 0; i < 5; ++i)
        submit(i, {{0x4000, Dir::In}});
    for (std::uint64_t i = 0; i < 5; ++i) {
        const auto t = awaitReady();
        ASSERT_TRUE(t.has_value()) << "reader " << i;
    }
}

TEST_F(PicosTest, ChainExecutesInOrder)
{
    const unsigned n = 10;
    for (std::uint64_t i = 0; i < n; ++i)
        submit(i, {{0x5000, Dir::InOut}});
    for (std::uint64_t i = 0; i < n; ++i) {
        const auto t = awaitReady();
        ASSERT_TRUE(t.has_value()) << "task " << i;
        EXPECT_EQ(t->swId, i);
        step(50);
        EXPECT_FALSE(picos_.readyValid()); // strictly serial
        retire(t->picosId);
    }
    // Everything retires; Picos drains.
    step(100);
    EXPECT_TRUE(picos_.quiescent());
}

TEST_F(PicosTest, RetireFreesReservationEntry)
{
    submit(1, {});
    const auto t = awaitReady();
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(picos_.inFlightTasks(), 1u);
    retire(t->picosId);
    step(100);
    EXPECT_EQ(picos_.inFlightTasks(), 0u);
    EXPECT_EQ(picos_.tasksRetired(), 1u);
}

TEST_F(PicosTest, BadRetireIsCountedNotFatal)
{
    retire(99); // nothing in flight
    step(100);
    EXPECT_GE(stats_.scalarValue("picos.badRetires"), 1.0);
}

TEST_F(PicosTest, FifteenDepsDescriptorWorks)
{
    std::vector<TaskDep> deps;
    for (unsigned i = 0; i < 15; ++i)
        deps.push_back({0x6000ull + i * 64, Dir::Out});
    submit(123, deps);
    const auto t = awaitReady();
    ASSERT_TRUE(t && t->swId == 123u);
}

TEST_F(PicosTest, DiamondDependence)
{
    // 1 -> {2,3} -> 4
    submit(1, {{0x7000, Dir::Out}});
    submit(2, {{0x7000, Dir::In}, {0x7040, Dir::Out}});
    submit(3, {{0x7000, Dir::In}, {0x7080, Dir::Out}});
    submit(4, {{0x7040, Dir::In}, {0x7080, Dir::In}});
    auto t1 = awaitReady();
    ASSERT_TRUE(t1 && t1->swId == 1u);
    retire(t1->picosId);
    auto t2 = awaitReady();
    auto t3 = awaitReady();
    ASSERT_TRUE(t2 && t3);
    EXPECT_EQ(t2->swId + t3->swId, 5u); // 2 and 3, either order
    step(100);
    EXPECT_FALSE(picos_.readyValid());
    retire(t2->picosId);
    step(100);
    EXPECT_FALSE(picos_.readyValid());
    retire(t3->picosId);
    auto t4 = awaitReady();
    ASSERT_TRUE(t4 && t4->swId == 4u);
}

TEST_F(PicosTest, ThroughputBoundedByPacketIngest)
{
    // 48 packets/task at 1 packet/cycle: N tasks need >= 48*N cycles.
    const unsigned n = 8;
    const Cycle start = clock_.now();
    for (std::uint64_t i = 0; i < n; ++i) {
        submit(i, {});
        const auto t = awaitReady(10000);
        ASSERT_TRUE(t.has_value());
        retire(t->picosId);
    }
    EXPECT_GE(clock_.now() - start, 48u * n);
}

TEST(PicosCapacity, TrsFullExertsBackpressure)
{
    sim::Clock clock;
    sim::StatGroup stats;
    PicosParams p;
    p.trsEntries = 2;
    Picos picos(clock, p, stats);

    auto push_desc = [&](std::uint64_t id) {
        TaskDescriptor d;
        d.swId = id;
        d.deps = {{0x9000, Dir::InOut}}; // chain: nothing retires
        auto pkts = encodeNonZero(d);
        pkts.resize(kDescriptorPackets, 0);
        unsigned pushed = 0;
        for (unsigned i = 0; i < 5000 && pushed < pkts.size(); ++i) {
            if (picos.subPush(pkts[pushed]))
                ++pushed;
            picos.tick();
            clock.advanceTo(clock.now() + 1);
        }
        return pushed == pkts.size();
    };

    EXPECT_TRUE(push_desc(1));
    EXPECT_TRUE(push_desc(2));
    // The third descriptor parks in the 64-packet submission queue (the
    // gateway no longer consumes), so the fourth cannot be accepted.
    EXPECT_TRUE(push_desc(3));
    EXPECT_FALSE(push_desc(4));
    EXPECT_GE(stats.scalarValue("picos.trsStalls"), 1.0);
}

TEST(PicosCapacity, DepTableConflictStallsNotCorrupts)
{
    sim::Clock clock;
    sim::StatGroup stats;
    PicosParams p;
    p.dctSets = 1;
    p.dctWays = 2; // only two live addresses at a time
    Picos picos(clock, p, stats);

    auto submit_and_tick = [&](std::uint64_t id, Addr a) {
        TaskDescriptor d;
        d.swId = id;
        d.deps = {{a, Dir::Out}};
        auto pkts = encodeNonZero(d);
        pkts.resize(kDescriptorPackets, 0);
        unsigned pushed = 0;
        for (unsigned i = 0; i < 20000 && pushed < pkts.size(); ++i) {
            if (picos.subPush(pkts[pushed]))
                ++pushed;
            picos.tick();
            clock.advanceTo(clock.now() + 1);
        }
    };

    submit_and_tick(1, 0x100);
    submit_and_tick(2, 0x200);
    submit_and_tick(3, 0x300); // no free way while 1 and 2 live

    // Without retirement, the gateway must stall on the full set: only
    // the first two descriptors complete processing.
    for (unsigned i = 0; i < 300; ++i) {
        picos.tick();
        clock.advanceTo(clock.now() + 1);
    }
    EXPECT_EQ(picos.tasksProcessed(), 2u);
    EXPECT_GE(stats.scalarValue("picos.depTableStalls"), 1.0);

    // Drain: pop ready tasks and retire them; eventually all three retire.
    unsigned retired = 0;
    std::uint32_t buf[3];
    unsigned got = 0;
    for (unsigned i = 0; i < 50000 && retired < 3; ++i) {
        if (picos.readyValid()) {
            buf[got++] = picos.readyPop();
            if (got == 3) {
                got = 0;
                picos.retirePush(buf[0]);
                ++retired;
            }
        }
        picos.tick();
        clock.advanceTo(clock.now() + 1);
    }
    EXPECT_EQ(retired, 3u);
    EXPECT_GE(stats.scalarValue("picos.depTableStalls"), 1.0);
}
