/**
 * @file
 * Kernel-efficiency benchmark: quantifies what the event-driven kernel and
 * the parallel batch harness buy over the reference implementation.
 *
 *  1. Component-tick reduction and wall-clock speedup: Figure 8-style
 *     workloads run under EvalMode::EventDriven vs the tick-the-world
 *     reference, with identical cycle results. Each mode is run several
 *     times and the minimum wall time is reported, so the speedup is a
 *     ratio of floors rather than of noise.
 *  2. Batch throughput: the Figure 9 matrix swept by runBatch() with one
 *     worker vs a pool, with identical rows. The pool result is only
 *     meaningful relative to hostConcurrency (also emitted): on a
 *     single-hardware-thread host the pool cannot beat 1x by
 *     construction.
 *  3. Conservative-PDES: one sharded simulation run on the windowed
 *     kernel, swept over --host-threads 1/2/4/8 — full stat dumps AND
 *     the kernel's window/skip/barrier counters must be bit-identical
 *     at every thread count (the identical gate in check_perf.py), and
 *     the wall ratios show what intra-run threading buys on this host.
 *     The 32-core sparselu point is the ROADMAP scaling target.
 *
 * Every experiment is described as a spec::RunSpec mutation and executed
 * through spec::Engine, and each BENCH json row carries the serialized
 * spec that produced it (replayable with `picosim_run --spec`).
 *
 * `--quick` (or PICOSIM_QUICK=1) subsamples the sweeps for CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench/bench_util.hh"
#include "bench/fig_common.hh"
#include "cpu/system.hh"
#include "spec/engine.hh"

using namespace picosim;

namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

void
compareModes(bench::BenchJson &json, const char *label,
             const spec::RunSpec &base, unsigned repeats)
{
    spec::RunSpec event = base;
    event.mode = sim::EvalMode::EventDriven;
    spec::RunSpec world = base;
    world.mode = sim::EvalMode::TickWorld;

    // Min-of-N: both modes are CPU-bound and deterministic, so the floor
    // of several runs is the honest wall time on a shared machine.
    rt::RunResult re, rw;
    double te = 0.0, tw = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        const double e =
            wallSeconds([&] { re = spec::Engine::run(event); });
        const double w =
            wallSeconds([&] { rw = spec::Engine::run(world); });
        te = r == 0 ? e : std::min(te, e);
        tw = r == 0 ? w : std::min(tw, w);
    }

    const double tickRatio =
        re.componentTicks == 0
            ? 0.0
            : static_cast<double>(rw.componentTicks) /
                  static_cast<double>(re.componentTicks);
    std::printf("%-28s %12llu cycles %s  ticks %llu -> %llu (%.2fx)  "
                "wall %.3fs -> %.3fs (%.2fx)\n",
                label, static_cast<unsigned long long>(re.cycles),
                re.cycles == rw.cycles ? "[=]" : "[MISMATCH]",
                static_cast<unsigned long long>(rw.componentTicks),
                static_cast<unsigned long long>(re.componentTicks),
                tickRatio, tw, te, te > 0 ? tw / te : 0.0);

    json.beginRow();
    json.field("bench", "mode_compare");
    json.field("label", label);
    json.field("cycles", re.cycles);
    json.field("identical", re.cycles == rw.cycles);
    json.field("eventTicks", re.componentTicks);
    json.field("worldTicks", rw.componentTicks);
    json.field("tickRatio", tickRatio);
    json.field("wallEventSec", te);
    json.field("wallWorldSec", tw);
    json.field("wallSpeedup", te > 0 ? tw / te : 0.0);
    bench::stampSpec(json, event);
    bench::stampHost(json);
}

/** What one PDES run produced; every field is part of the bit-identity
 *  contract — the window accounting is as deterministic as the model. */
struct PdesRun
{
    Cycle cycles = 0;
    std::string dump;
    std::uint64_t domains = 0;
    std::uint64_t windowBarriers = 0;
    std::uint64_t windowsRun = 0;     ///< summed over domains
    std::uint64_t windowsSkipped = 0; ///< summed over domains

    bool
    operator==(const PdesRun &o) const
    {
        return cycles == o.cycles && dump == o.dump &&
               domains == o.domains &&
               windowBarriers == o.windowBarriers &&
               windowsRun == o.windowsRun &&
               windowsSkipped == o.windowsSkipped;
    }
};

/** One forced-partition PDES run of @p s (pdes=force is set by the
 *  sweep), keeping the System inspectable for the window counters. */
PdesRun
runPdes(const spec::RunSpec &s)
{
    const spec::InspectedRun run = spec::Engine::runInspected(s);
    PdesRun r;
    r.cycles = run.result.cycles;
    std::ostringstream dump;
    run.system->stats().dump(dump);
    r.dump = dump.str();
    const sim::Simulator &sim = run.system->simulator();
    r.domains = run.system->pdesDomains();
    r.windowBarriers = sim.windowBarriers();
    for (unsigned d = 0; d < r.domains; ++d) {
        r.windowsRun += sim.domainWindowsRun(d);
        r.windowsSkipped += sim.domainWindowsSkipped(d);
    }
    return r;
}

/** One sweep point: @p threads host threads against the precomputed
 *  1-thread floor (@p one, @p t1). Emits a pdes_compare row. */
bool
comparePdes(bench::BenchJson &json, const std::string &label,
            const spec::RunSpec &base, unsigned repeats, unsigned threads,
            const PdesRun &one, double t1)
{
    spec::RunSpec s = base;
    s.hostThreads = threads;
    PdesRun rn;
    double tn = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        const double b = wallSeconds([&] { rn = runPdes(s); });
        tn = r == 0 ? b : std::min(tn, b);
    }
    const bool same = one == rn;
    std::printf("%-32s %12llu cycles %s  wall 1t %.3fs -> %ut %.3fs "
                "(%.2fx)\n",
                label.c_str(), static_cast<unsigned long long>(one.cycles),
                same ? "[=]" : "[MISMATCH]", t1, threads, tn,
                tn > 0 ? t1 / tn : 0.0);
    json.beginRow();
    json.field("bench", "pdes_compare");
    json.field("label", label);
    json.field("cycles", one.cycles);
    json.field("identical", same);
    json.field("domains", one.domains);
    json.field("windowBarriers", one.windowBarriers);
    json.field("windowsRun", one.windowsRun);
    json.field("windowsSkipped", one.windowsSkipped);
    json.field("wallOneThreadSec", t1);
    json.field("wallMultiThreadSec", tn);
    json.field("pdesSpeedup", tn > 0 ? t1 / tn : 0.0);
    bench::stampSpec(json, s);
    bench::stampHost(json, threads);
    return same;
}

/** Full pdes_compare sweep over host-thread counts for one topology.
 *  @p baseLabel names the h2 row (baseline continuity); other thread
 *  counts get an " hN" suffix. */
bool
sweepPdes(bench::BenchJson &json, const std::string &baseLabel,
          const spec::RunSpec &workloadSpec, unsigned cores,
          unsigned shards, unsigned clusters, unsigned repeats,
          const std::vector<unsigned> &threadCounts)
{
    spec::RunSpec base = workloadSpec;
    base.cores = cores;
    base.schedShards = shards;
    base.clusters = clusters;
    base.pdes = cpu::PdesParams::Partition::Force;
    base.hostThreads = 1;

    PdesRun one;
    double t1 = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        const double a = wallSeconds([&] { one = runPdes(base); });
        t1 = r == 0 ? a : std::min(t1, a);
    }
    std::printf("%-32s %llu domains, %llu windows run, %llu skipped, "
                "%llu barriers\n",
                (baseLabel + " (1 thread)").c_str(),
                static_cast<unsigned long long>(one.domains),
                static_cast<unsigned long long>(one.windowsRun),
                static_cast<unsigned long long>(one.windowsSkipped),
                static_cast<unsigned long long>(one.windowBarriers));
    bool same = true;
    for (unsigned threads : threadCounts) {
        const std::string label =
            threads == 2 ? baseLabel
                         : baseLabel + " h" + std::to_string(threads);
        same = comparePdes(json, label, base, repeats, threads, one, t1) &&
               same;
    }
    return same;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            // Same switch the sweeps read; one knob for both paths.
            setenv("PICOSIM_QUICK", "1", /*overwrite=*/1);
        } else {
            std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
            return 2;
        }
    }
    const unsigned repeats = 3;

    bench::BenchJson json("BENCH_kernel.json");

    std::printf("== Event-driven kernel vs tick-the-world reference ==\n");
    std::printf("(ticks = component evaluations; [=] = identical cycle "
                "results; wall = min of %u runs)\n\n",
                repeats);

    // Warm the process (allocator pools, lazy init, page faults) before
    // anything is timed, so the first measured row is not penalized.
    (void)spec::Engine::run(
        bench::canonicalSpec("blackscholes", {{"options", 1024}, {"block", 32}}));

    // Figure 8 coarse-granularity points: most components quiescent most
    // cycles, the sweet spot for wake scheduling.
    compareModes(json, "blackscholes 4K B32 Phentos",
                 bench::canonicalSpec("blackscholes", {{"options", 4096}, {"block", 32}}),
                 repeats);
    compareModes(json, "blackscholes 4K B256 Phentos",
                 bench::canonicalSpec("blackscholes",
                          {{"options", 4096}, {"block", 256}}),
                 repeats);
    compareModes(json, "task-free g=10k Phentos",
                 bench::canonicalSpec("task-free",
                          {{"tasks", 256}, {"deps", 1}, {"payload", 10'000}}),
                 repeats);
    compareModes(json, "task-free g=10k Nanos-RV",
                 bench::canonicalSpec("task-free",
                          {{"tasks", 256}, {"deps", 1}, {"payload", 10'000}},
                          rt::RuntimeKind::NanosRV),
                 repeats);
    compareModes(json, "task-chain g=1k Phentos",
                 bench::canonicalSpec("task-chain",
                          {{"tasks", 256}, {"deps", 1}, {"payload", 1'000}}),
                 repeats);

    const unsigned hostThreads =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned poolThreads = 8;
    std::printf("\n== Parallel batch harness (Figure 9 sweep, %u worker "
                "pool, %u hardware thread(s)) ==\n",
                poolThreads, hostThreads);
    std::vector<bench::MatrixRow> serialRows, poolRows;
    const double tSerial = wallSeconds(
        [&] { serialRows = bench::runFigure9Matrix(false, 1); });
    const double tPool = wallSeconds(
        [&] { poolRows = bench::runFigure9Matrix(false, poolThreads); });

    bool same = serialRows.size() == poolRows.size();
    for (std::size_t i = 0; same && i < serialRows.size(); ++i) {
        same = serialRows[i].serialCycles == poolRows[i].serialCycles &&
               serialRows[i].nanosSw == poolRows[i].nanosSw &&
               serialRows[i].nanosRv == poolRows[i].nanosRv &&
               serialRows[i].phentos == poolRows[i].phentos;
    }
    std::printf("1 worker: %.2fs   %u workers: %.2fs (%.2fx)   results %s\n",
                tSerial, poolThreads, tPool,
                tPool > 0 ? tSerial / tPool : 0.0,
                same ? "identical" : "MISMATCH");
    if (hostThreads == 1) {
        std::printf("(single hardware thread: pool speedup is capped at "
                    "~1x on this host)\n");
    }

    json.beginRow();
    json.field("bench", "batch_throughput");
    json.field("serialSec", tSerial);
    json.field("poolSec", tPool);
    json.field("poolSpeedup", tPool > 0 ? tSerial / tPool : 0.0);
    json.field("poolThreads", std::uint64_t{poolThreads});
    json.field("identical", same);
    bench::stampHost(json, poolThreads);

    std::printf("\n== Conservative-PDES windowed kernel (forced "
                "partition, auto domain count, host-thread sweep) ==\n");
    bool pdes_same = sweepPdes(
        json, "task-chain g=1k Phentos 4x4",
        bench::canonicalSpec("task-chain",
                 {{"tasks", 256}, {"deps", 1}, {"payload", 1'000}}),
        16, 4, 4, repeats, {2u, 4u, 8u});
    // The ROADMAP scaling target: sparselu at 32 cores on the 4x4
    // fabric (the shard_scaling regression point). Heavier, so the
    // quick/CI run keeps only the h4 point.
    pdes_same = sweepPdes(json, "sparselu 12b 32c Phentos 4x4",
                          bench::canonicalSpec("sparselu", {{"nb", 12}, {"bs", 24}}),
                          32, 4, 4, bench::quickMode() ? 1u : repeats,
                          bench::quickMode()
                              ? std::vector<unsigned>{4u}
                              : std::vector<unsigned>{2u, 4u, 8u}) &&
                pdes_same;
    if (hostThreads == 1) {
        std::printf("(single hardware thread: PDES wall speedup is capped "
                    "at ~1x on this host; identity still checked)\n");
    }

    if (json.write())
        std::printf("json      : %s\n", json.path().c_str());
    else
        std::fprintf(stderr, "warning: could not write %s\n",
                     json.path().c_str());
    return same && pdes_same ? 0 : 1;
}
