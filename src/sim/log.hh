/**
 * @file
 * Tiny leveled logging facility for the simulator.
 *
 * Follows the spirit of gem5's trace flags: each message names the component
 * that produced it and is filtered by a global level so benchmark binaries
 * run silent by default.
 */

#ifndef PICOSIM_SIM_LOG_HH
#define PICOSIM_SIM_LOG_HH

#include <cstdint>
#include <sstream>
#include <string>
#include <string_view>

#include "sim/types.hh"

namespace picosim::sim
{

enum class LogLevel : std::uint8_t {
    None = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
    Trace = 5,
};

/** Global log level; defaults to Warn. Not thread safe by design: the
 *  simulator is single-threaded. */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/** Emit one line: "[cycle] level component: message". */
void logLine(LogLevel level, Cycle cycle, std::string_view component,
             std::string_view message);

/**
 * Fatal user-facing error (bad configuration): prints and throws
 * std::runtime_error, mirroring gem5's fatal().
 */
[[noreturn]] void fatal(const std::string &message);

/**
 * Internal invariant violation (a simulator bug): prints and aborts,
 * mirroring gem5's panic().
 */
[[noreturn]] void panic(const std::string &message);

} // namespace picosim::sim

/** Convenience macros; evaluate the stream expression lazily. */
#define PSIM_LOG(level, clk, comp, expr)                                      \
    do {                                                                      \
        if (static_cast<int>(::picosim::sim::logLevel()) >=                   \
            static_cast<int>(level)) {                                        \
            std::ostringstream psim_log_oss_;                                 \
            psim_log_oss_ << expr;                                            \
            ::picosim::sim::logLine(level, (clk).now(), comp,                 \
                                    psim_log_oss_.str());                     \
        }                                                                     \
    } while (0)

#define PSIM_TRACE(clk, comp, expr)                                          \
    PSIM_LOG(::picosim::sim::LogLevel::Trace, clk, comp, expr)
#define PSIM_DEBUG(clk, comp, expr)                                          \
    PSIM_LOG(::picosim::sim::LogLevel::Debug, clk, comp, expr)
#define PSIM_INFO(clk, comp, expr)                                           \
    PSIM_LOG(::picosim::sim::LogLevel::Info, clk, comp, expr)
#define PSIM_WARN(clk, comp, expr)                                           \
    PSIM_LOG(::picosim::sim::LogLevel::Warn, clk, comp, expr)

#endif // PICOSIM_SIM_LOG_HH
