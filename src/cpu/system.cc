#include "cpu/system.hh"

#include <algorithm>
#include <string>

#include "sim/log.hh"

namespace picosim::cpu
{

System::System(const SystemParams &params)
    : params_(params), bandwidth_(params.bandwidthAlpha)
{
    picos::TopologyParams topo = params.topology;
    if (!topo.singlePicos() && topo.clusters > params.numCores)
        sim::fatal("topology needs at least one core per cluster");

    sim_.setEvalMode(params.evalMode);

    // Conservative-PDES partitioning: the scheduler fabric is the only
    // cut in this component graph where every crossing edge is a timed
    // port (cores share functional memory/bandwidth state with the
    // managers, so they stay together in domain 0). The single-Picos
    // topology has no such cut — sequential fallback — and the TickWorld
    // reference kernel is sequential by definition.
    const PdesParams &pdes = params.pdes;
    pdesActive_ =
        (pdes.partition == PdesParams::Partition::Force ||
         (pdes.partition == PdesParams::Partition::Auto &&
          pdes.hostThreads > 1)) &&
        !topo.singlePicos() && params.evalMode == sim::EvalMode::EventDriven;
    if (pdesActive_) {
        topo.pdesBoundaryPorts = true;
        sim_.configureDomains(2);
        sim_.setHostThreads(pdes.hostThreads);
    }
    memory_ = std::make_unique<mem::CoherentMemory>(params.numCores,
                                                    params.mem);
    if (params.mem.mode == mem::MemMode::Timed)
        timedMem_ = std::make_unique<mem::TimedMemory>(
            sim_.clock(), *memory_, sim_.stats());

    // Scheduler: the paper's single centralized Picos by default; the
    // sharded scaling layer when the topology asks for it. Each cluster
    // gets its own manager fronting its SchedulerIf endpoint.
    if (topo.singlePicos()) {
        picos_ = std::make_unique<picos::Picos>(sim_.clock(), params.picos,
                                                sim_.stats());
        managers_.push_back(std::make_unique<manager::PicosManager>(
            sim_.clock(), *picos_, params.numCores, params.manager,
            sim_.stats()));
    } else {
        // The scheduler ticks on its own domain's clock when partitioned;
        // the ready-return ports are always bound to the managers' clock.
        sharded_ = std::make_unique<picos::ShardedPicos>(
            pdesActive_ ? sim_.domainClock(1) : sim_.clock(), sim_.clock(),
            params.picos, topo, sim_.stats());
        // Per-cluster managers keep their central ready queue at one
        // tuple: work buffered there is pinned to the cluster, and the
        // whole point of the sharded fabric is that surplus ready tasks
        // stay stealable by dry neighbours. Per-core queues still hide
        // the ready-fetch latency for demand-driven flow.
        manager::ManagerParams cluster_mp = params.manager;
        cluster_mp.roccReadyQueueDepth = 1;
        for (unsigned c = 0; c < topo.clusters; ++c) {
            const unsigned begin = clusterBegin(c);
            const unsigned end = clusterBegin(c + 1);
            managers_.push_back(std::make_unique<manager::PicosManager>(
                sim_.clock(), sharded_->clusterPort(c), end - begin,
                cluster_mp, sim_.stats(),
                "manager.c" + std::to_string(c)));
        }
    }

    cores_.reserve(params.numCores);
    delegates_.reserve(params.numCores);
    hartApis_.reserve(params.numCores);
    for (CoreId i = 0; i < params.numCores; ++i) {
        const unsigned cluster = clusterOfCore(i);
        cores_.push_back(
            std::make_unique<Core>(sim_.clock(), i, sim_.stats()));
        cores_.back()->bindDoneCounter(&coresDone_);
        delegates_.push_back(std::make_unique<delegate::PicosDelegate>(
            i, *managers_[cluster], sim_.stats(),
            i - clusterBegin(cluster)));
        hartApis_.push_back(std::make_unique<HartApi>(
            i, *delegates_.back(), *memory_, bandwidth_, params.hartApi,
            timedMem_.get()));
    }

    // Evaluation order each cycle: cores produce transactions, the
    // managers move them, the scheduler consumes them, and the timed
    // memory subsystem schedules this cycle's requests last (harts must
    // have issued before it runs so responses are armed within the issue
    // cycle).
    for (auto &core : cores_)
        sim_.addTicked(core.get());
    for (auto &mgr : managers_)
        sim_.addTicked(mgr.get());
    if (picos_)
        sim_.addTicked(picos_.get());
    if (sharded_)
        sim_.addTicked(sharded_.get(), pdesActive_ ? 1u : 0u);
    if (timedMem_) {
        sim_.addTicked(timedMem_.get());
        for (CoreId i = 0; i < params.numCores; ++i)
            timedMem_->bindHart(i, &cores_[i]->context(), cores_[i].get());
    }

    // With every component registered (port owners final), flip the
    // manager<->scheduler boundary ports into staging mode; this also
    // derives the kernel's lookahead from their latencies.
    if (pdesActive_)
        sharded_->bindPdes(sim_);
}

picos::Picos &
System::picos()
{
    if (!picos_)
        sim::fatal("System::picos() on a sharded-scheduler topology");
    return *picos_;
}

unsigned
System::clusterBegin(unsigned cluster) const
{
    // Contiguous, balanced blocks: cluster c covers [cN/C, (c+1)N/C).
    const auto n = static_cast<std::uint64_t>(params_.numCores);
    const std::uint64_t clusters =
        std::max(1u, params_.topology.clusters);
    return static_cast<unsigned>(cluster * n / clusters);
}

unsigned
System::clusterOfCore(CoreId i) const
{
    // Exact inverse of clusterBegin()'s partition — the smallest c with
    // clusterBegin(c + 1) > i, i.e. ceil((i+1)C/n) - 1. (A plain
    // i*C/n is NOT that inverse when C does not divide n and would
    // hand delegates out-of-range manager ports.)
    const auto n = static_cast<std::uint64_t>(params_.numCores);
    const std::uint64_t clusters =
        std::max(1u, params_.topology.clusters);
    return static_cast<unsigned>(((i + 1) * clusters + n - 1) / n - 1);
}

bool
System::allThreadsDone() const
{
    return coresDone_ == cores_.size();
}

bool
System::run(Cycle limit)
{
    // The predicate is an O(1) counter comparison: cores report their
    // thread's completion to coresDone_ exactly once, so the kernel's
    // per-evaluated-cycle done() check never rescans every core.
    return sim_.run([this] { return allThreadsDone(); }, limit);
}

} // namespace picosim::cpu
