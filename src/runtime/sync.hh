/**
 * @file
 * Simulated synchronization primitives used by the Nanos model.
 *
 * A SimLock combines real mutual exclusion on the simulated timeline with
 * the calibrated cycle cost of a pthread mutex and the MESI traffic of its
 * cache line — so lock convoys and line bouncing show up exactly where the
 * paper says they hurt (Section V-A).
 */

#ifndef PICOSIM_RUNTIME_SYNC_HH
#define PICOSIM_RUNTIME_SYNC_HH

#include <algorithm>

#include "cpu/hart_api.hh"
#include "runtime/cost_model.hh"
#include "sim/cotask.hh"

namespace picosim::rt
{

struct SimLock
{
    bool held = false;
    Addr lineAddr = 0;
    std::uint64_t acquisitions = 0;
    std::uint64_t contentions = 0;
};

/**
 * Acquire: test-and-set with backoff. The CAS takes effect atomically at
 * the end of the RMW latency (no suspension between the test and the set,
 * so two harts waking in the same cycle cannot both win).
 */
inline sim::CoTask<void>
lockAcquire(cpu::HartApi &api, SimLock &lock, const CostModel &cm)
{
    Cycle backoff = 24;
    while (true) {
        co_await api.atomicRmw(lock.lineAddr);
        if (!lock.held) {
            lock.held = true;
            break;
        }
        ++lock.contentions;
        co_await api.delay(backoff);
        backoff = std::min<Cycle>(backoff * 2, 384);
    }
    ++lock.acquisitions;
    co_await api.delay(cm.mutexLock);
}

/** Release: charge cost, write the lock line, free waiters. */
inline sim::CoTask<void>
lockRelease(cpu::HartApi &api, SimLock &lock, const CostModel &cm)
{
    co_await api.delay(cm.mutexUnlock);
    co_await api.write(lock.lineAddr);
    lock.held = false;
}

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_SYNC_HH
