/** @file Unit tests for the MESI L1 + memory model. */

#include <gtest/gtest.h>

#include "mem/coherent_memory.hh"

using namespace picosim;
using namespace picosim::mem;

namespace
{
MemParams
params()
{
    return MemParams{};
}
} // namespace

TEST(CoherentMemory, ColdReadMissesThenHits)
{
    CoherentMemory mem(2, params());
    const Cycle first = mem.read(0, 0x1000);
    const Cycle second = mem.read(0, 0x1000);
    EXPECT_GT(first, second);
    EXPECT_EQ(second, params().hitLatency);
    EXPECT_EQ(mem.lineState(0, 0x1000), LineState::Exclusive);
}

TEST(CoherentMemory, SameLineDifferentWordsHit)
{
    CoherentMemory mem(1, params());
    mem.read(0, 0x1000);
    EXPECT_EQ(mem.read(0, 0x1038), params().hitLatency); // same 64B line
}

TEST(CoherentMemory, SharedReadersBothShared)
{
    CoherentMemory mem(2, params());
    mem.read(0, 0x1000);
    mem.read(1, 0x1000);
    EXPECT_EQ(mem.lineState(0, 0x1000), LineState::Shared);
    EXPECT_EQ(mem.lineState(1, 0x1000), LineState::Shared);
}

TEST(CoherentMemory, WriteInvalidatesRemotes)
{
    CoherentMemory mem(2, params());
    mem.read(0, 0x1000);
    mem.read(1, 0x1000);
    mem.write(0, 0x1000);
    EXPECT_EQ(mem.lineState(0, 0x1000), LineState::Modified);
    EXPECT_EQ(mem.lineState(1, 0x1000), LineState::Invalid);
}

TEST(CoherentMemory, ExclusiveWriteHitsSilently)
{
    CoherentMemory mem(2, params());
    mem.read(0, 0x1000); // Exclusive
    EXPECT_EQ(mem.write(0, 0x1000), params().hitLatency);
    EXPECT_EQ(mem.lineState(0, 0x1000), LineState::Modified);
}

TEST(CoherentMemory, DirtyRemoteTransferGoesThroughMemory)
{
    CoherentMemory mem(2, params());
    mem.write(0, 0x1000); // Modified in core 0
    const Cycle lat = mem.read(1, 0x1000);
    // MESI: must include the dirty-through-memory penalty.
    EXPECT_GE(lat, params().hitLatency + params().missLatency +
                       params().dirtyRemoteExtra);
    EXPECT_EQ(mem.lineState(0, 0x1000), LineState::Shared);
    EXPECT_EQ(mem.lineState(1, 0x1000), LineState::Shared);
}

TEST(CoherentMemory, LineBouncingIsExpensive)
{
    CoherentMemory mem(2, params());
    // Two cores alternately writing the same line: every access pays the
    // dirty-remote + invalidate penalty after the first.
    mem.write(0, 0x2000);
    Cycle total = 0;
    for (int i = 0; i < 10; ++i)
        total += mem.write(i % 2, 0x2000);
    const Cycle bounce_avg = total / 10;
    EXPECT_GT(bounce_avg, params().missLatency);
}

TEST(CoherentMemory, AtomicCostsMoreThanWrite)
{
    CoherentMemory mem(1, params());
    mem.write(0, 0x3000);
    const Cycle w = mem.write(0, 0x3000);
    mem.reset();
    mem.write(0, 0x3000);
    const Cycle a = mem.atomicRmw(0, 0x3000);
    EXPECT_EQ(a, w + params().atomicExtra);
}

TEST(CoherentMemory, CapacityEviction)
{
    MemParams p = params();
    p.l1Sets = 2;
    p.l1Ways = 2;
    CoherentMemory mem(1, p);
    // Fill one set (same set index => stride of sets*lineBytes).
    const Addr stride = static_cast<Addr>(p.l1Sets) * p.lineBytes;
    mem.read(0, 0x0);
    mem.read(0, stride);
    mem.read(0, 2 * stride); // evicts 0x0 (LRU)
    EXPECT_EQ(mem.lineState(0, 0x0), LineState::Invalid);
    EXPECT_NE(mem.lineState(0, stride), LineState::Invalid);
}

TEST(CoherentMemory, StreamTouchChargesPerLine)
{
    CoherentMemory mem(1, params());
    const Cycle cold = mem.streamTouch(0, 0x10000, 8, false);
    const Cycle warm = mem.streamTouch(0, 0x10000, 8, false);
    EXPECT_GT(cold, warm);
    EXPECT_EQ(warm, 8 * params().hitLatency);
}

TEST(CoherentMemory, ResetDropsAllState)
{
    CoherentMemory mem(1, params());
    mem.write(0, 0x1000);
    mem.reset();
    EXPECT_EQ(mem.lineState(0, 0x1000), LineState::Invalid);
}

class FalseSharingTest : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(FalseSharingTest, DistinctLinesDoNotInterfere)
{
    const unsigned ncores = GetParam();
    CoherentMemory mem(ncores, params());
    // Each core writes its own line: after warmup, all writes are hits.
    for (unsigned c = 0; c < ncores; ++c)
        mem.write(c, 0x8000 + c * 64);
    for (unsigned c = 0; c < ncores; ++c)
        EXPECT_EQ(mem.write(c, 0x8000 + c * 64), params().hitLatency);
}

INSTANTIATE_TEST_SUITE_P(CoreCounts, FalseSharingTest,
                         ::testing::Values(1, 2, 4, 8));
