/**
 * @file
 * RunPlan: the one place that knows how a request expands into the runs
 * of a job and how the finished runs print.
 *
 * `picosim_run`, `picosim_submit --print=cli` and the server all build
 * their batches through RunPlan::make and print through
 * printRunResult/printPlanResults, so a spec submitted over the wire
 * produces stdout byte-identical to the same spec run directly — the
 * round-trip contract the server smoke test diffs.
 */

#ifndef PICOSIM_SERVICE_RUN_PLAN_HH
#define PICOSIM_SERVICE_RUN_PLAN_HH

#include <cstddef>
#include <vector>

#include "runtime/runtime.hh"
#include "spec/run_spec.hh"

namespace picosim::svc
{

struct RunPlan
{
    /** Expanded batch: per display spec and repetition, the main run
     *  followed by its serial baseline (unless the main run already is
     *  serial and serves as its own baseline). */
    std::vector<spec::RunSpec> runs;
    std::size_t runsPerSpec = 2; ///< 1 when the main runtime is serial
    unsigned printCores = 8;     ///< core count the report prints

    /** Expand @p specs (canonical, non-empty, sharing runtime/repeat —
     *  the `picosim_run` contract). Throws spec::SpecError when empty. */
    static RunPlan make(const std::vector<spec::RunSpec> &specs);

    /** Number of displayed results @p results folds to. */
    std::size_t
    displayCount(std::size_t resultCount) const
    {
        return resultCount / runsPerSpec;
    }

    /** Fold raw per-run results (positionally aligned with `runs`) into
     *  display results: one per main run, serialCycles filled from its
     *  baseline partner. */
    std::vector<rt::RunResult>
    fold(const std::vector<rt::RunResult> &results) const;
};

/** The classic `picosim_run` per-run report (exact format preserved —
 *  this is the byte-identity contract of the CLI golden tests). */
void printRunResult(const rt::RunResult &res, unsigned cores);

/** Fold + print every display result, blank-line separated; true when
 *  every displayed run completed (the process exit-code contract). */
bool printPlanResults(const RunPlan &plan,
                      const std::vector<rt::RunResult> &results);

} // namespace picosim::svc

#endif // PICOSIM_SERVICE_RUN_PLAN_HH
