/**
 * @file
 * Whole-system MESI L1 + main-memory latency model.
 *
 * This is a functional-latency coherence model: every access updates the
 * per-core set-associative tag arrays and the implied sharer/owner state,
 * and returns the latency that the issuing hart must charge. Bus occupancy
 * is not modeled (documented in DESIGN.md); the first-order effects the
 * paper leans on — line bouncing of contended runtime structures and the
 * through-memory dirty-transfer penalty of MESI — are.
 *
 * Event-driven kernel contract: memory is not Ticked. All latency is
 * charged inline on the issuing hart's timeline (the hart awaits the
 * returned cycle count), so no access ever changes another component's
 * wake cycle and no requestWake() is needed from this layer. One System
 * owns one CoherentMemory; batch jobs each build their own System, so
 * the mutable tag state is never shared across harness worker threads.
 */

#ifndef PICOSIM_MEM_COHERENT_MEMORY_HH
#define PICOSIM_MEM_COHERENT_MEMORY_HH

#include <cstdint>
#include <vector>

#include "sim/stats.hh"
#include "sim/types.hh"
#include "mem/mem_params.hh"

namespace picosim::mem
{

/** MESI stable states. */
enum class LineState : std::uint8_t { Invalid, Shared, Exclusive, Modified };

/** Kinds of line-granular accesses the model distinguishes. */
enum class MemOp : std::uint8_t { Read, Write, Atomic };

/**
 * All L1s plus main memory of one simulated system.
 */
class CoherentMemory
{
  public:
    /**
     * Functional outcome of one access: the inline latency plus the
     * classification the timed front-end (TimedMemory) needs to decide
     * which shared resources — bus, main memory — the access occupies.
     */
    struct AccessDetail
    {
        Cycle latency = 0;        ///< zero-contention (inline) latency
        bool hit = false;         ///< satisfied entirely by the local L1
        bool refill = false;      ///< line filled from main memory
        bool dirtyTransfer = false; ///< remote Modified moved through memory
    };

    CoherentMemory(unsigned num_cores, const MemParams &params);

    /** Load one word in the line containing @p addr. @return latency. */
    Cycle read(CoreId core, Addr addr);

    /** Store to the line containing @p addr. @return latency. */
    Cycle write(CoreId core, Addr addr);

    /** Atomic read-modify-write (amoadd & friends). @return latency. */
    Cycle atomicRmw(CoreId core, Addr addr);

    /**
     * Perform one access, updating tag/sharer state exactly as the plain
     * read/write/atomicRmw entry points do (which are thin wrappers over
     * this), and report the classification alongside the latency.
     */
    AccessDetail access(CoreId core, Addr addr, MemOp op);

    /**
     * Non-mutating hit test: would an access of @p op kind be satisfied
     * by @p core's L1 alone? (Writes and atomics need M or E.) Used by
     * the timed front-end for MSHR allocation before committing.
     */
    bool probeHit(CoreId core, Addr addr, MemOp op) const;

    /**
     * Charge the latency of touching @p lines distinct lines of payload
     * data with hit ratio implied by footprint vs cache size; cheap summary
     * path used for task payload traffic.
     */
    Cycle streamTouch(CoreId core, Addr base, unsigned lines, bool write);

    /** State of @p addr's line in @p core's L1 (Invalid if not present). */
    LineState lineState(CoreId core, Addr addr) const;

    const MemParams &params() const { return params_; }
    sim::StatGroup &stats() { return stats_; }

    unsigned numCores() const { return static_cast<unsigned>(l1s_.size()); }

    /** Drop all cached state (between experiment runs). */
    void reset();

  private:
    struct Way
    {
        bool valid = false;
        Addr tag = 0;
        LineState state = LineState::Invalid;
        std::uint64_t lastUse = 0;
    };

    struct L1
    {
        std::vector<Way> ways; // sets * waysPerSet, row-major
    };

    Addr lineAddr(Addr addr) const { return addr / params_.lineBytes; }
    unsigned
    setIndex(Addr line) const
    {
        // l1Sets is a power of two in every calibrated configuration;
        // the masked path avoids an integer division on the per-access
        // (and per-snooped-core) hot path.
        return setsPow2_ ? static_cast<unsigned>(line) & (params_.l1Sets - 1)
                         : static_cast<unsigned>(line % params_.l1Sets);
    }

    /** Scan one set of one core's L1 for @p line (set precomputed). */
    Way *
    findInSet(CoreId core, unsigned set, Addr line)
    {
        Way *base = &l1s_[core].ways[std::size_t{set} * params_.l1Ways];
        for (unsigned w = 0; w < params_.l1Ways; ++w) {
            if (base[w].valid && base[w].tag == line)
                return &base[w];
        }
        return nullptr;
    }

    Way *findLine(CoreId core, Addr line);
    const Way *findLine(CoreId core, Addr line) const;

    /** Victimize the LRU way of the proper set; returns the slot. */
    Way *allocLine(CoreId core, Addr line);

    /**
     * Downgrade/invalidate remote copies for an access of the given intent.
     * @return extra latency due to remote state.
     */
    Cycle snoopRemotes(CoreId core, Addr line, bool exclusive_intent,
                       bool &had_sharers, bool &had_dirty);

    MemParams params_;
    bool setsPow2_ = false;
    std::vector<L1> l1s_;
    std::uint64_t useClock_ = 0;
    sim::StatGroup stats_;

    // Cached stat slots: the MESI model bumps these on every access.
    sim::Scalar *statReads_;
    sim::Scalar *statReadMisses_;
    sim::Scalar *statWrites_;
    sim::Scalar *statWriteMisses_;
    sim::Scalar *statUpgrades_;
    sim::Scalar *statAtomics_;
    sim::Scalar *statInvalidations_;
    sim::Scalar *statDirtyRemoteTransfers_;
    sim::Scalar *statVictimWritebacks_;
};

} // namespace picosim::mem

#endif // PICOSIM_MEM_COHERENT_MEMORY_HH
