#include "runtime/task_types.hh"

#include "sim/log.hh"

namespace picosim::rt
{

namespace
{
/** Tag bit marking an index_ entry that points into childTasks_. */
constexpr std::size_t kChildBit = ~(~std::size_t{0} >> 1);
constexpr std::size_t kInvalid = ~std::size_t{0}; // reserved: never a tag
} // namespace

std::uint64_t
Program::spawnChild(std::uint64_t parent, Cycle payload,
                    std::vector<TaskDep> deps)
{
    if (parent >= numTasks_)
        sim::fatal("Program::spawnChild: unknown parent task id");
    Task child;
    child.id = numTasks_;
    child.payload = payload;
    child.deps = std::move(deps);
    child.parent = parent;
    childTasks_.push_back(std::move(child));

    BodyOp op;
    op.kind = BodyOp::Kind::SpawnChild;
    op.child = numTasks_;
    bodies_[parent].push_back(op);
    return numTasks_++;
}

void
Program::taskwaitChildren(std::uint64_t parent)
{
    if (parent >= numTasks_)
        sim::fatal("Program::taskwaitChildren: unknown parent task id");
    BodyOp op;
    op.kind = BodyOp::Kind::TaskwaitChildren;
    op.waitTarget = childrenOf(parent);
    bodies_[parent].push_back(op);
}

const std::vector<BodyOp> &
Program::bodyOf(std::uint64_t id) const
{
    static const std::vector<BodyOp> kEmpty;
    const auto it = bodies_.find(id);
    return it == bodies_.end() ? kEmpty : it->second;
}

std::uint64_t
Program::childrenOf(std::uint64_t id) const
{
    std::uint64_t count = 0;
    for (const BodyOp &op : bodyOf(id)) {
        if (op.kind == BodyOp::Kind::SpawnChild)
            ++count;
    }
    return count;
}

unsigned
Program::maxDeps() const
{
    unsigned max_deps = 0;
    for (const Action &a : actions) {
        if (a.kind == Action::Kind::Spawn)
            max_deps = std::max<unsigned>(
                max_deps, static_cast<unsigned>(a.task.deps.size()));
    }
    for (const Task &t : childTasks_)
        max_deps =
            std::max<unsigned>(max_deps, static_cast<unsigned>(t.deps.size()));
    return max_deps;
}

Cycle
Program::serialPayloadCycles() const
{
    Cycle total = 0;
    const auto add = [&total](Cycle payload) {
        if (__builtin_add_overflow(total, payload, &total))
            sim::fatal("Program::serialPayloadCycles: payload sum overflows "
                       "Cycle — the serial speedup baseline would wrap");
    };
    for (const Action &a : actions) {
        if (a.kind == Action::Kind::Spawn)
            add(a.task.payload);
    }
    for (const Task &t : childTasks_)
        add(t.payload);
    return total;
}

const Task &
Program::taskById(std::uint64_t id) const
{
    if (index_.size() != numTasks_) {
        index_.clear();
        index_.resize(numTasks_, kInvalid);
        for (std::size_t pos = 0; pos < actions.size(); ++pos) {
            const Action &a = actions[pos];
            if (a.kind == Action::Kind::Spawn)
                index_[a.task.id] = pos;
        }
        for (std::size_t pos = 0; pos < childTasks_.size(); ++pos)
            index_[childTasks_[pos].id] = pos | kChildBit;
    }
    if (id >= index_.size() || index_[id] == kInvalid)
        sim::fatal("Program::taskById: unknown task id");
    const std::size_t pos = index_[id];
    return pos & kChildBit ? childTasks_[pos & ~kChildBit]
                           : actions[pos].task;
}

} // namespace picosim::rt
