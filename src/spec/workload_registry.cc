#include "spec/workload_registry.hh"

#include <algorithm>
#include <mutex>

#include "apps/register.hh"
#include "sim/log.hh"

namespace picosim::spec
{

const ParamDef *
WorkloadDef::findParam(const std::string &param) const
{
    for (const ParamDef &p : params)
        if (p.name == param)
            return &p;
    return nullptr;
}

WorkloadArgs
WorkloadDef::canonicalArgs(const WorkloadArgs &args) const
{
    WorkloadArgs out;
    for (const ParamDef &p : params)
        out[p.name] = p.def;
    for (const auto &[key, value] : args) {
        const ParamDef *p = findParam(key);
        if (!p) {
            std::string valid;
            std::string best;
            unsigned bestDist = ~0u;
            for (const ParamDef &q : params) {
                if (!valid.empty())
                    valid += ", ";
                valid += "wl." + q.name;
                const unsigned d = editDistance(key, q.name);
                if (d < bestDist) {
                    bestDist = d;
                    best = q.name;
                }
            }
            throw SpecError("workload '" + name + "' has no parameter 'wl." +
                            key + "' (valid: " + valid + ")" +
                            didYouMean(key, best, "wl."));
        }
        if (value < p->min || value > p->max) {
            throw SpecError("wl." + key + " expects an integer in [" +
                            std::to_string(p->min) + ", " +
                            std::to_string(p->max) + "], got '" +
                            std::to_string(value) + "'");
        }
        out[key] = value;
    }
    return out;
}

WorkloadRegistry &
WorkloadRegistry::instance()
{
    static WorkloadRegistry registry;
    static std::once_flag once;
    std::call_once(once,
                   [] { apps::registerBuiltinWorkloads(registry); });
    return registry;
}

void
WorkloadRegistry::add(WorkloadDef def)
{
    for (const WorkloadDef &d : defs_)
        if (d.name == def.name)
            sim::fatal("duplicate workload registration: " + def.name);
    defs_.push_back(std::move(def));
}

const WorkloadDef *
WorkloadRegistry::find(const std::string &name) const
{
    for (const WorkloadDef &d : defs_)
        if (d.name == name)
            return &d;
    return nullptr;
}

std::string
WorkloadRegistry::nearest(const std::string &name) const
{
    std::string best;
    unsigned bestDist = ~0u;
    for (const WorkloadDef &d : defs_) {
        const unsigned dist = editDistance(name, d.name);
        if (dist < bestDist) {
            bestDist = dist;
            best = d.name;
        }
    }
    return best;
}

rt::Program
WorkloadRegistry::build(const std::string &name,
                        const WorkloadArgs &args) const
{
    const WorkloadDef *def = find(name);
    if (!def) {
        throw SpecError("unknown workload '" + name +
                        "' (try --list-workloads)" +
                        didYouMean(name, nearest(name)));
    }
    return def->build(def->canonicalArgs(args));
}

unsigned
editDistance(const std::string &a, const std::string &b)
{
    // Classic two-row Levenshtein; the strings involved are short keys.
    std::vector<unsigned> prev(b.size() + 1), cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = static_cast<unsigned>(j);
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = static_cast<unsigned>(i);
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const unsigned sub =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::string
didYouMean(const std::string &got, const std::string &nearest,
           const std::string &prefix)
{
    if (nearest.empty() || nearest == got)
        return "";
    // A suggestion further away than half the typed key is noise.
    const unsigned dist = editDistance(got, nearest);
    if (dist > std::max<std::size_t>(2, got.size() / 2))
        return "";
    return " (did you mean '" + prefix + nearest + "'?)";
}

} // namespace picosim::spec
