/**
 * @file
 * Timed port/interconnect primitives.
 *
 * Three building blocks, all layered on the event kernel's requestWake()
 * contract so producers and consumers on different components stay
 * bit-identical between EvalMode::EventDriven and EvalMode::TickWorld:
 *
 *  - LinkTimings: the latency configuration of a request/response link.
 *    A tightly-coupled (RoCC) link is {issue≈2, response=0}; the paper's
 *    loosely-coupled AXI baseline is {issue=MMIO write, response=MMIO
 *    read} — the coupling gap becomes a configuration, not bespoke code.
 *  - Arbiter: a shared resource (bus, DRAM port) granted FCFS with a
 *    per-grant occupancy. Grants serialize; waiting shows up as stall
 *    cycles in the stats. All bookkeeping is cycle arithmetic, so the
 *    schedule is independent of when (or how often) components tick.
 *  - TimedPort<T>: a bounded request queue between two components —
 *    TimedFifo semantics (capacity backpressure, visibility latency)
 *    plus width-limited acceptance (at most `width` items become visible
 *    per cycle) and per-port contention statistics. An optional owner
 *    component is woken exactly as the hand-written manager code used
 *    to: pushes wake at the front element's ready cycle, freeing space
 *    with popAndWakeOwner() wakes at the current cycle.
 */

#ifndef PICOSIM_SIM_PORT_HH
#define PICOSIM_SIM_PORT_HH

#include <algorithm>
#include <cstddef>
#include <functional>
#include <string>
#include <utility>

#include "sim/clock.hh"
#include "sim/kernel.hh"
#include "sim/ring.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/types.hh"

namespace picosim::sim
{

/** Latency configuration of a request/response link. */
struct LinkTimings
{
    /** One-way cost of issuing a command/request over the link. */
    Cycle issue = 0;

    /** Cost of reading a response/status back over the link. */
    Cycle response = 0;
};

/** Parameters of one timed port. */
struct PortParams
{
    /** Maximum resident elements (backpressure beyond this). */
    std::size_t capacity = 1;

    /** Cycles before an accepted element is visible to the consumer. */
    Cycle latency = 0;

    /** Elements accepted per cycle; 0 = unlimited (plain TimedFifo). */
    unsigned width = 0;
};

/**
 * A shared resource granted first-come-first-served with per-grant
 * occupancy. grant() returns the cycle the resource starts serving the
 * request; the resource is busy until grant + occupancy. Because the
 * free-at horizon is plain cycle arithmetic, callers may reserve future
 * cycles — the schedule never depends on evaluation sparsity.
 */
class Arbiter
{
  public:
    /**
     * @param stats Optional stat registry; pass nullptr for stat-free use.
     * @param name Stat prefix, e.g. "port.membus".
     */
    Arbiter(StatGroup *stats, const std::string &name)
    {
        if (stats) {
            grants_ = &stats->scalar(name + ".grants");
            busyCycles_ = &stats->scalar(name + ".busyCycles");
            stallCycles_ = &stats->scalar(name + ".stallCycles");
        }
    }

    /**
     * Reserve the resource for a request ready at @p ready, occupying it
     * for @p occupancy cycles. @return the grant (service start) cycle.
     */
    Cycle
    grant(Cycle ready, Cycle occupancy)
    {
        const Cycle g = std::max(ready, freeAt_);
        freeAt_ = g + occupancy;
        if (grants_) {
            ++*grants_;
            *busyCycles_ += static_cast<double>(occupancy);
            *stallCycles_ += static_cast<double>(g - ready);
        }
        return g;
    }

    /** First cycle at which a new request would be served immediately. */
    Cycle freeAt() const { return freeAt_; }

    void reset() { freeAt_ = 0; }

  private:
    Cycle freeAt_ = 0;
    // Cached registry entries (map nodes are stable); null when stat-free.
    Scalar *grants_ = nullptr;
    Scalar *busyCycles_ = nullptr;
    Scalar *stallCycles_ = nullptr;
};

/**
 * A bounded, width-limited, latency-charged queue between a producer and
 * a consumer component. The consumer (owner) is woken through the kernel
 * on pushes; a producer blocked on a full port shows up as push stalls.
 */
template <typename T>
class TimedPort
{
  public:
    /**
     * @param owner Component woken on pushes / popAndWakeOwner() frees.
     *        May be nullptr for ports internal to a single component.
     */
    TimedPort(const Clock &clock, const PortParams &params,
              StatGroup *stats = nullptr, const std::string &name = {},
              Ticked *owner = nullptr)
        : clock_(clock), params_(params), owner_(owner), name_(name)
    {
        if (stats) {
            pushes_ = &stats->scalar(name + ".pushes");
            pushStalls_ = &stats->scalar(name + ".pushStalls");
            queued_ = &stats->dist(name + ".queued");
        }
    }

    std::size_t capacity() const { return params_.capacity; }

    /**
     * Occupancy as the PRODUCER sees it. In cross-domain staging mode
     * this is the window-start snapshot of resident items (creditSize_)
     * plus everything staged since — consumer pops inside the current
     * window don't free credit until the next boundary, a conservative
     * view that is identical at every host thread count.
     */
    std::size_t
    size() const
    {
        return staging_ ? creditSize_ + staged_.size() : items_.size();
    }

    bool empty() const { return size() == 0; }
    bool full() const { return size() >= params_.capacity; }

    /** True when a producer may push this cycle. */
    bool canPush() const { return !full(); }

    /** True when the consumer can see and pop the front element now. */
    bool
    frontReady() const
    {
        return !items_.empty() && items_.front().readyAt <= clock_.now();
    }

    /**
     * Push; returns false (and counts a stall) when full. On success the
     * owner is woken at the front element's ready cycle — the cycle at
     * which the port next has consumable work.
     */
    bool
    push(T value)
    {
        if (full()) {
            if (pushStalls_)
                ++*pushStalls_;
            return false;
        }
        if (staging_) {
            // Cross-domain: record (send cycle, value) in the producer-
            // owned staging ring; the window-boundary drain replays the
            // accept/latency arithmetic and wakes the owner. Nothing on
            // this path touches consumer-owned state. The first staged
            // item since the last drain marks the link dirty so the
            // boundary only visits links with live traffic.
            if (staged_.empty())
                sim_->markLinkDirty(linkId_);
            staged_.push_back(
                StagedSlot{producerClock_->now(), std::move(value)});
            if (pushes_) {
                ++*pushes_;
                queued_->sample(static_cast<double>(size()));
            }
            return true;
        }
        items_.push_back(Slot{acceptCycle(clock_.now()) + params_.latency,
                              std::move(value)});
        if (pushes_) {
            ++*pushes_;
            queued_->sample(static_cast<double>(items_.size()));
        }
        if (owner_)
            owner_->requestWake(items_.front().readyAt);
        return true;
    }

    /** Front element; only valid when frontReady(). */
    const T &
    front() const
    {
        if (!frontReady())
            panic("TimedPort::front on not-ready port");
        return items_.front().value;
    }

    /** Pop and return the front element; only valid when frontReady(). */
    T
    pop()
    {
        if (!frontReady())
            panic("TimedPort::pop on not-ready port");
        T value = std::move(items_.front().value);
        items_.pop_front();
        // Consumer pops free producer credit, but only the boundary
        // drain republishes it (creditSize_). A clean link would never
        // be drained again, leaving a blocked producer stalled on stale
        // credit forever — so the first pop since the last drain marks
        // the link dirty too. Pops happen at deterministic simulated
        // cycles, so the dirty set stays thread-count-independent.
        if (staging_ && !creditDirty_) {
            creditDirty_ = true;
            sim_->markLinkDirty(linkId_);
        }
        return value;
    }

    /**
     * Pop from outside the owner, waking it this cycle: freed space (or
     * consumed output) may let the owner's pipelines advance.
     */
    T
    popAndWakeOwner()
    {
        if (owner_)
            owner_->requestWake(clock_.now());
        return pop();
    }

    void
    clear()
    {
        items_.clear();
        staged_.clear();
        creditSize_ = 0;
        creditDirty_ = false;
        acceptAt_ = 0;
        acceptUsed_ = 0;
    }

    /**
     * Earliest cycle at which the front element becomes consumable, or
     * kCycleNever when empty. Used by components' wakeAt() logic.
     */
    Cycle
    nextReadyCycle() const
    {
        return items_.empty() ? kCycleNever : items_.front().readyAt;
    }

    const PortParams &params() const { return params_; }

    /** Re-bind the owner (consumer) woken on pushes and drains. */
    void setOwner(Ticked *owner) { owner_ = owner; }

    /** True when enableCrossDomainStaging() put the port in PDES mode. */
    bool crossDomainStaging() const { return staging_; }

    /**
     * Install a callback invoked once per staged item as the boundary
     * drain makes it visible to the consumer domain (single-threaded
     * coordinator context, so it may touch consumer-domain state).
     * Producer-side occupancy/stat counters that would otherwise race
     * across domains move here.
     */
    void
    onStagedDrain(std::function<void(const T &)> hook)
    {
        stagedDrainHook_ = std::move(hook);
    }

    /**
     * Put the port in cross-domain staging mode: the producer lives in a
     * different PDES domain than the consumer (this port's clock_ must be
     * the CONSUMER domain's clock). Pushes stage producer-side; the
     * registered drain replays them at each window boundary. The port's
     * latency becomes the (producer domain -> consumer domain) lookahead
     * bound, so it must be >= 1; the domain pair is derived from the two
     * clocks.
     */
    void
    enableCrossDomainStaging(Simulator &sim, const Clock &producerClock)
    {
        if (params_.latency == 0)
            panic("cross-domain TimedPort '" +
                  (name_.empty() ? std::string("<unnamed>") : name_) +
                  "' requires latency >= 1 (the port latency is the "
                  "conservative lookahead of its domain pair)");
        staging_ = true;
        producerClock_ = &producerClock;
        creditSize_ = items_.size();
        sim_ = &sim;
        linkId_ = sim.registerCrossDomainLink(
            sim.domainOfClock(producerClock), sim.domainOfClock(clock_),
            params_.latency, [this] { drainStaged(); }, name_);
    }

  private:
    struct Slot
    {
        Cycle readyAt;
        T value;
    };

    struct StagedSlot
    {
        Cycle sendCycle;
        T value;
    };

    /**
     * Window-boundary replay of staged pushes: identical accept/latency
     * arithmetic to the plain push() path, anchored at each recorded
     * send cycle, with the owner woken exactly as a live push would
     * have. Replay cannot overflow: the producer-view admission bound
     * (creditSize_ + staged) <= capacity, and items_ never exceeds
     * creditSize_ inside a window.
     */
    void
    drainStaged()
    {
        while (!staged_.empty()) {
            StagedSlot s = std::move(staged_.front());
            staged_.pop_front();
            if (stagedDrainHook_)
                stagedDrainHook_(s.value);
            items_.push_back(Slot{acceptCycle(s.sendCycle) +
                                      params_.latency,
                                  std::move(s.value)});
            if (owner_)
                owner_->requestWake(items_.front().readyAt);
        }
        creditSize_ = items_.size(); // refresh the producer's credit
        creditDirty_ = false;
    }

    /** Width arbitration: the cycle a push at @p now is accepted. */
    Cycle
    acceptCycle(Cycle now)
    {
        if (params_.width == 0)
            return now;
        if (now > acceptAt_) {
            acceptAt_ = now;
            acceptUsed_ = 0;
        }
        if (acceptUsed_ >= params_.width) {
            ++acceptAt_;
            acceptUsed_ = 0;
        }
        ++acceptUsed_;
        return acceptAt_;
    }

    const Clock &clock_;
    PortParams params_;
    Ticked *owner_;
    std::string name_; ///< diagnostics (staging misconfiguration, etc.)
    Ring<Slot> items_;
    Cycle acceptAt_ = 0;     ///< cycle whose acceptance slots are in use
    unsigned acceptUsed_ = 0; ///< slots consumed in acceptAt_

    // -- Cross-domain staging (PDES mode only) --
    bool staging_ = false;
    const Clock *producerClock_ = nullptr;
    Simulator *sim_ = nullptr;    ///< for dirty-link marking
    unsigned linkId_ = 0;         ///< this port's cross-domain link id
    std::size_t creditSize_ = 0;  ///< items_ snapshot at the last drain
    bool creditDirty_ = false;    ///< consumer popped since last drain
    Ring<StagedSlot> staged_;     ///< producer-owned pending pushes
    std::function<void(const T &)> stagedDrainHook_; ///< per-item drain
    // Cached registry entries; null when stat-free.
    Scalar *pushes_ = nullptr;
    Scalar *pushStalls_ = nullptr;
    Distribution *queued_ = nullptr;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_PORT_HH
