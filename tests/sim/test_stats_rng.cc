/** @file Unit tests for the statistics package and the RNG. */

#include <gtest/gtest.h>

#include <sstream>

#include "sim/rng.hh"
#include "sim/stats.hh"

using namespace picosim::sim;

TEST(Scalar, AccumulatesAndResets)
{
    Scalar s;
    EXPECT_EQ(s.value(), 0.0);
    s += 2.5;
    ++s;
    EXPECT_EQ(s.value(), 3.5);
    s.set(10.0);
    EXPECT_EQ(s.value(), 10.0);
    s.reset();
    EXPECT_EQ(s.value(), 0.0);
}

TEST(Distribution, TracksMoments)
{
    Distribution d;
    for (double v : {1.0, 2.0, 3.0, 4.0})
        d.sample(v);
    EXPECT_EQ(d.count(), 4u);
    EXPECT_EQ(d.sum(), 10.0);
    EXPECT_EQ(d.min(), 1.0);
    EXPECT_EQ(d.max(), 4.0);
    EXPECT_DOUBLE_EQ(d.mean(), 2.5);
    EXPECT_DOUBLE_EQ(d.variance(), 1.25);
}

TEST(Distribution, EmptyIsSafe)
{
    Distribution d;
    EXPECT_EQ(d.mean(), 0.0);
    EXPECT_EQ(d.min(), 0.0);
    EXPECT_EQ(d.max(), 0.0);
    EXPECT_EQ(d.variance(), 0.0);
}

TEST(StatGroup, LookupAndDump)
{
    StatGroup g;
    g.scalar("a.count") += 3;
    g.dist("b.lat").sample(7.0);
    EXPECT_TRUE(g.hasScalar("a.count"));
    EXPECT_FALSE(g.hasScalar("missing"));
    EXPECT_EQ(g.scalarValue("a.count"), 3.0);
    EXPECT_EQ(g.scalarValue("missing"), 0.0);

    std::ostringstream oss;
    g.dump(oss);
    EXPECT_NE(oss.str().find("a.count"), std::string::npos);
    EXPECT_NE(oss.str().find("b.lat.mean"), std::string::npos);

    g.reset();
    EXPECT_EQ(g.scalarValue("a.count"), 0.0);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a(), b());
    bool any_diff = false;
    Rng a2(42);
    for (int i = 0; i < 100; ++i)
        any_diff |= (a2() != c());
    EXPECT_TRUE(any_diff);
}

TEST(Rng, BelowStaysInRange)
{
    Rng rng(7);
    for (int i = 0; i < 10'000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10'000; ++i) {
        const auto v = rng.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= v == 3;
        saw_hi |= v == 6;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformCoversUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100'000;
    for (int i = 0; i < n; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowIsRoughlyUniform)
{
    Rng rng(13);
    unsigned buckets[8] = {};
    const int n = 80'000;
    for (int i = 0; i < n; ++i)
        ++buckets[rng.below(8)];
    for (unsigned b : buckets)
        EXPECT_NEAR(b, n / 8.0, n / 8.0 * 0.1);
}
