/**
 * @file
 * STREAM-style micro-benchmarks (ompss-ee): copy/scale/add/triad kernels
 * over blocked arrays. stream-deps chains the kernels through per-block
 * data dependences; stream-barr separates them with taskwait barriers and
 * spawns dependence-free tasks (Section VI-A2).
 */

#include "apps/workloads.hh"

#include "apps/register.hh"
#include "sim/log.hh"
#include "spec/workload_registry.hh"

namespace picosim::apps
{

namespace
{
constexpr Addr kArrayA = 0x5600'0000;
constexpr Addr kArrayB = 0x5700'0000;
constexpr Addr kArrayC = 0x5800'0000;

/**
 * Memory-bound kernels on a core with no L2: ~6 cycles per element
 * (load/store plus FP op, partially hidden by the 667 MHz memory).
 */
constexpr Cycle kCyclesPerElem = 6;
constexpr Cycle kTaskFixed = 140;

Addr
blockAddr(Addr base, unsigned block, unsigned block_elems)
{
    return base + static_cast<Addr>(block) * block_elems * sizeof(double);
}
} // namespace

rt::Program
streamDeps(unsigned num_blocks, unsigned block_elems, unsigned iterations)
{
    rt::Program prog;
    prog.name = "stream-deps " + std::to_string(num_blocks) + "x" +
                std::to_string(block_elems);
    const Cycle payload = kTaskFixed + kCyclesPerElem * block_elems;

    for (unsigned it = 0; it < iterations; ++it) {
        for (unsigned b = 0; b < num_blocks; ++b) {
            // copy: c = a
            prog.spawn(payload,
                       {{blockAddr(kArrayA, b, block_elems), rt::Dir::In},
                        {blockAddr(kArrayC, b, block_elems), rt::Dir::Out}});
        }
        for (unsigned b = 0; b < num_blocks; ++b) {
            // scale: b = s * c
            prog.spawn(payload,
                       {{blockAddr(kArrayC, b, block_elems), rt::Dir::In},
                        {blockAddr(kArrayB, b, block_elems), rt::Dir::Out}});
        }
        for (unsigned b = 0; b < num_blocks; ++b) {
            // add: c = a + b
            prog.spawn(payload,
                       {{blockAddr(kArrayA, b, block_elems), rt::Dir::In},
                        {blockAddr(kArrayB, b, block_elems), rt::Dir::In},
                        {blockAddr(kArrayC, b, block_elems), rt::Dir::Out}});
        }
        for (unsigned b = 0; b < num_blocks; ++b) {
            // triad: a = b + s * c
            prog.spawn(payload,
                       {{blockAddr(kArrayB, b, block_elems), rt::Dir::In},
                        {blockAddr(kArrayC, b, block_elems), rt::Dir::In},
                        {blockAddr(kArrayA, b, block_elems), rt::Dir::Out}});
        }
    }
    prog.taskwait();
    return prog;
}

rt::Program
streamBarr(unsigned num_blocks, unsigned block_elems, unsigned iterations)
{
    rt::Program prog;
    prog.name = "stream-barr " + std::to_string(num_blocks) + "x" +
                std::to_string(block_elems);
    const Cycle payload = kTaskFixed + kCyclesPerElem * block_elems;

    for (unsigned it = 0; it < iterations; ++it) {
        for (unsigned kernel = 0; kernel < 4; ++kernel) {
            for (unsigned b = 0; b < num_blocks; ++b)
                prog.spawn(payload); // dependence-free
            prog.taskwait(); // barrier between kernels
        }
    }
    return prog;
}

void
registerStreamWorkloads(spec::WorkloadRegistry &reg)
{
    using spec::WorkloadArgs;
    const std::vector<spec::ParamDef> params = {
        {"blocks", 8, 1, 1'000'000, "array blocks (tasks per kernel)"},
        {"elems", 8, 1, 100'000'000, "doubles per block"},
        {"iters", 2, 1, 100'000, "copy/scale/add/triad iterations"},
    };
    reg.add({"stream-deps",
             "STREAM kernels chained by per-block dependences (ompss-ee)",
             params, [](const WorkloadArgs &a) {
                 return streamDeps(static_cast<unsigned>(a.at("blocks")),
                                   static_cast<unsigned>(a.at("elems")),
                                   static_cast<unsigned>(a.at("iters")));
             }});
    reg.add({"stream-barr",
             "STREAM kernels separated by taskwait barriers (ompss-ee)",
             params, [](const WorkloadArgs &a) {
                 return streamBarr(static_cast<unsigned>(a.at("blocks")),
                                   static_cast<unsigned>(a.at("elems")),
                                   static_cast<unsigned>(a.at("iters")));
             }});
}

} // namespace picosim::apps
