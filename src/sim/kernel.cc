#include "sim/kernel.hh"

#include <algorithm>

#include "sim/log.hh"

namespace picosim::sim
{

void
Simulator::evaluate()
{
    for (Ticked *t : ticked_)
        t->tick();
    ++evaluatedCycles_;
}

bool
Simulator::anyActive() const
{
    return std::any_of(ticked_.begin(), ticked_.end(),
                       [](const Ticked *t) { return t->active(); });
}

Cycle
Simulator::nextWake() const
{
    Cycle wake = kCycleNever;
    for (const Ticked *t : ticked_)
        wake = std::min(wake, t->wakeAt());
    return wake;
}

bool
Simulator::run(const std::function<bool()> &done, Cycle limit)
{
    const Cycle start = clock_.now();
    while (true) {
        if (done())
            return true;
        if (clock_.now() - start >= limit)
            return false;

        evaluate();

        if (anyActive()) {
            clock_.advanceTo(clock_.now() + 1);
            continue;
        }
        const Cycle wake = nextWake();
        if (wake == kCycleNever) {
            // Fully idle system: either done() holds next check or the
            // simulation can never progress again.
            if (done())
                return true;
            return false;
        }
        clock_.advanceTo(std::max(wake, clock_.now() + 1));
    }
}

void
Simulator::runFor(Cycle n)
{
    const Cycle end = clock_.now() + n;
    while (clock_.now() < end) {
        evaluate();
        Cycle next = clock_.now() + 1;
        if (!anyActive()) {
            const Cycle wake = nextWake();
            if (wake != kCycleNever)
                next = std::max(next, wake);
            else
                next = end;
        }
        clock_.advanceTo(std::min(next, end));
    }
}

} // namespace picosim::sim
