/**
 * @file
 * Ablation study of the architecture's design choices (DESIGN.md):
 *
 *  A. Integration tightness: sweep the core-side cost of one scheduler
 *     interaction from the 2-cycle RoCC round trip up to AXI-like
 *     latencies -- the paper's central claim is that this term dominated
 *     prior systems.
 *  B. Per-core ready-queue depth: the paper says the private queues hide
 *     half of the 8-cycle ready-fetch latency (Section IV-F2).
 *  C. Submit Three Packets vs single-packet submission (Section IV-E3).
 *  D. Memory-bandwidth ceiling: sweep alpha to show where the ~5.7x
 *     saturation of Figures 9/10 comes from.
 *
 * Each section prints the measured effect on Phentos lifetime overhead
 * or application speedup. Every knob is a spec::RunSpec field
 * (rocc-latency, core-ready-depth, bandwidth-alpha), so each row is
 * reproducible with `picosim_run` flags.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "spec/engine.hh"

using namespace picosim;
using namespace picosim::bench;

namespace
{

/** Lifetime overhead of @p base with the workload pinned to the
 *  near-empty task-free stream on one core. */
double
overheadWith(spec::RunSpec base)
{
    base.workload = "task-free";
    base.wl = {{"tasks", quickMode() ? 64u : 256u},
               {"deps", 1},
               {"payload", 10}};
    base.runtime = rt::RuntimeKind::Phentos;
    base.cores = 1;
    base.canonicalize();
    const auto r = bench::runJob(base);
    return r.completed ? r.overheadPerTask() : -1.0;
}

double
speedupWith(spec::RunSpec s)
{
    s.canonicalize();
    spec::RunSpec serialSpec = s;
    serialSpec.runtime = rt::RuntimeKind::Serial;
    const auto serial = bench::runJob(serialSpec);
    s.runtime = rt::RuntimeKind::Phentos;
    const auto par = bench::runJob(s);
    if (!serial.completed || !par.completed)
        return -1.0;
    return static_cast<double>(serial.cycles) /
           static_cast<double>(par.cycles);
}

} // namespace

int
main()
{
    std::printf("# Ablation A: scheduler-interaction latency "
                "(RoCC=2 ... AXI-like)\n");
    std::printf("%-14s %14s %14s\n", "latency/instr", "Lo (cycles)",
                "vs tight");
    const double tight = overheadWith(spec::RunSpec{});
    for (Cycle lat : {2u, 8u, 20u, 50u, 120u, 160u}) {
        spec::RunSpec s;
        s.roccLatency = lat;
        const double lo = overheadWith(s);
        std::printf("%-14llu %14.0f %13.2fx\n",
                    static_cast<unsigned long long>(lat), lo, lo / tight);
    }
    std::printf("# The paper's claim: cutting this term is worth two "
                "orders of magnitude\n# end to end (Section II).\n\n");

    std::printf("# Ablation B: per-core ready queue depth "
                "(fine-grain blackscholes speedup)\n");
    std::printf("%-8s %10s\n", "depth", "speedup");
    for (unsigned depth : {1u, 2u, 4u, 8u}) {
        spec::RunSpec s;
        s.workload = "blackscholes";
        s.wl = {{"options", 4096}, {"block", 8}};
        s.coreReadyDepth = depth;
        std::printf("%-8u %9.2fx\n", depth, speedupWith(s));
    }
    std::printf("\n");

    std::printf("# Ablation C: Submit Three Packets vs single packets\n");
    // Model the single-packet ISA by tripling the per-instruction cost of
    // the submission stream: 3 instructions instead of 1 per triple.
    {
        const double triple = overheadWith(spec::RunSpec{});
        spec::RunSpec s;
        // A 1-dep task streams 6 packets: 2 triple-instructions (4
        // cycles) vs 6 single-packet instructions (12 cycles), plus the
        // loop overhead per instruction. Emulate by raising rocc-latency
        // for the whole submission stream proportionally.
        s.roccLatency = 6; // 3x the stream cost
        const double single = overheadWith(s);
        std::printf("triple-submit Lo %.0f, single-packet-equivalent Lo "
                    "%.0f (+%.0f%%)\n",
                    triple, single, (single / triple - 1.0) * 100.0);
    }
    std::printf("\n");

    std::printf("# Ablation D: memory-bandwidth ceiling (coarse tasks, "
                "8 cores)\n");
    std::printf("%-8s %10s %16s\n", "alpha", "speedup", "ideal ceiling");
    for (double alpha : {0.0, 0.029, 0.058, 0.116}) {
        spec::RunSpec s;
        s.workload = "task-free";
        s.wl = {{"tasks", 64}, {"deps", 1}, {"payload", 500'000}};
        s.bandwidthAlpha = alpha;
        std::printf("%-8.3f %9.2fx %15.2fx\n", alpha, speedupWith(s),
                    8.0 / (1.0 + 7.0 * alpha));
    }
    std::printf("# alpha = 0.058 reproduces the paper's ~5.7x "
                "saturation.\n");
    return 0;
}
