/**
 * @file
 * Hostile-client tests for the daemon front-end: garbage verbs,
 * request lines streamed without a newline, SUBMIT frames that lie
 * about their body size, and clients that vanish mid-request. The
 * daemon must answer each abuse with a clean ERR (or a closed
 * connection) and keep serving well-behaved clients — a crash-safe
 * daemon that a malformed request can kill is not crash-safe.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <string>
#include <thread>

#include "service/server.hh"
#include "service/wire.hh"

using namespace picosim;
using namespace picosim::svc;

namespace
{

class TortureServer : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        ServerParams params;
        params.port = 0;
        params.manager.workers = 1;
        server_ = std::make_unique<Server>(params);
        thread_ = std::thread([this] { server_->serveForever(); });
    }

    void
    TearDown() override
    {
        server_->stop();
        thread_.join();
        server_.reset();
    }

    int
    connect()
    {
        const int fd = wire::connectTcp("127.0.0.1", server_->port());
        EXPECT_GE(fd, 0);
        return fd;
    }

    /** One request line in, one reply line out, on a fresh connection. */
    std::string
    roundTrip(const std::string &request)
    {
        const int fd = connect();
        EXPECT_TRUE(wire::sendAll(fd, request));
        wire::LineReader in(fd);
        std::string reply;
        EXPECT_TRUE(in.readLine(reply)) << "no reply to: " << request;
        ::close(fd);
        return reply;
    }

    /** The daemon is still alive and polite. */
    void
    expectHealthy()
    {
        EXPECT_EQ(roundTrip("PING\n"), "PONG");
    }

    std::unique_ptr<Server> server_;
    std::thread thread_;
};

} // namespace

TEST_F(TortureServer, GarbageVerbGetsErrAndTheConnectionSurvives)
{
    const int fd = connect();
    ASSERT_TRUE(wire::sendAll(fd, "GOBBLEDYGOOK x y z\n"));
    wire::LineReader in(fd);
    std::string reply;
    ASSERT_TRUE(in.readLine(reply));
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
    EXPECT_NE(reply.find("unknown verb"), std::string::npos) << reply;

    // Same connection, next request: a bad verb is not fatal.
    ASSERT_TRUE(wire::sendAll(fd, "PING\n"));
    ASSERT_TRUE(in.readLine(reply));
    EXPECT_EQ(reply, "PONG");
    ::close(fd);
}

TEST_F(TortureServer, UnterminatedRequestLineIsBounded)
{
    // 66000 newline-free bytes: just past the 64 KiB line cap, sized so
    // the server drains the whole blob before rejecting (a close with
    // unread bytes would RST the ERR reply away).
    const int fd = connect();
    ASSERT_TRUE(wire::sendAll(fd, std::string(66'000, 'A')));
    wire::LineReader in(fd);
    std::string reply;
    ASSERT_TRUE(in.readLine(reply));
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
    EXPECT_NE(reply.find("request line exceeds"), std::string::npos)
        << reply;
    // The server hangs up on a flooding client...
    EXPECT_FALSE(in.readLine(reply));
    ::close(fd);
    // ...but keeps serving everyone else.
    expectHealthy();
}

TEST_F(TortureServer, SubmitBodyCapIsEnforced)
{
    // One byte past the 16 MiB cap; the body is never read, so no
    // allocation happens on the server side.
    std::string reply = roundTrip("SUBMIT 16777217\n");
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
    EXPECT_NE(reply.find("too large"), std::string::npos) << reply;

    reply = roundTrip("SUBMIT notanumber\n");
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;
    EXPECT_NE(reply.find("byte count"), std::string::npos) << reply;

    expectHealthy();
}

TEST_F(TortureServer, ClientVanishingMidSubmitIsHarmless)
{
    // Promise 500 body bytes, deliver 7, hang up.
    const int fd = connect();
    ASSERT_TRUE(wire::sendAll(fd, "SUBMIT 500 tag=x\npartial"));
    ::close(fd);
    expectHealthy();
}

TEST_F(TortureServer, MalformedIdsAndUnknownJobsGetErr)
{
    std::string reply = roundTrip("STATUS notanid\n");
    EXPECT_NE(reply.find("expects a job id"), std::string::npos) << reply;

    reply = roundTrip("RESULT 424242\n");
    EXPECT_NE(reply.find("unknown job"), std::string::npos) << reply;

    reply = roundTrip("CANCEL 424242\n");
    EXPECT_NE(reply.find("unknown or finished job"), std::string::npos)
        << reply;
}

TEST_F(TortureServer, RealWorkStillRunsAfterTheAbuse)
{
    // A bad-spec SUBMIT crosses the parser error back verbatim...
    const std::string body = "workload=nonexistent-workload\n";
    const int fd = connect();
    ASSERT_TRUE(wire::sendAll(fd, "SUBMIT " +
                                      std::to_string(body.size()) + "\n" +
                                      body));
    wire::LineReader in(fd);
    std::string reply;
    ASSERT_TRUE(in.readLine(reply));
    EXPECT_EQ(reply.rfind("ERR ", 0), 0u) << reply;

    // ...and a good one on the very same connection runs to completion.
    const std::string good =
        "workload=task-free\nwl.tasks=64\nwl.payload=100\n";
    ASSERT_TRUE(wire::sendAll(fd, "SUBMIT " +
                                      std::to_string(good.size()) + "\n" +
                                      good));
    ASSERT_TRUE(in.readLine(reply));
    ASSERT_EQ(reply.rfind("OK ", 0), 0u) << reply;
    const std::uint64_t id = std::strtoull(reply.c_str() + 3, nullptr, 10);
    ASSERT_GT(id, 0u);

    ASSERT_TRUE(wire::sendAll(fd, "RESULT " + std::to_string(id) + "\n"));
    bool sawRow = false;
    bool sawDone = false;
    while (in.readLine(reply)) {
        if (reply.rfind("ROW ", 0) == 0)
            sawRow = true;
        if (reply == "DONE done") {
            sawDone = true;
            break;
        }
    }
    EXPECT_TRUE(sawRow);
    EXPECT_TRUE(sawDone);
    ::close(fd);
}
