/**
 * @file
 * Global simulated-cycle clock shared by all components of one system.
 */

#ifndef PICOSIM_SIM_CLOCK_HH
#define PICOSIM_SIM_CLOCK_HH

#include "sim/types.hh"

namespace picosim::sim
{

/**
 * Monotonic cycle counter. Owned by the Simulator; every component holds a
 * const reference and may only read it. Advancing is the kernel's job.
 */
class Clock
{
  public:
    Clock() = default;

    /** Current cycle. */
    Cycle now() const { return now_; }

    /** Advance to an absolute cycle; must be monotonic. */
    void
    advanceTo(Cycle c)
    {
        if (c > now_)
            now_ = c;
    }

    /** Reset to cycle zero (used between experiment runs). */
    void reset() { now_ = 0; }

  private:
    Cycle now_ = 0;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_CLOCK_HH
