/**
 * @file
 * Divide-and-conquer mergesort as a nested task program.
 *
 * Every internal node is a task whose body spawns the two half-sorts,
 * scoped-waits on them, then spawns and joins the merge of the halves —
 * the canonical recursive OmpSs pattern. The task tree therefore grows
 * from whichever workers execute the internal nodes, and scoped
 * taskwaits release strictly per subtree: a node's join never waits on
 * its siblings' halves.
 */

#include "apps/workloads.hh"

#include <algorithm>
#include <string>

#include "apps/register.hh"
#include "sim/log.hh"
#include "spec/workload_registry.hh"

namespace picosim::apps
{

namespace
{
constexpr Addr kSortArray = 0x5A00'0000;

/** Per-element costs at -O3 (8-byte keys, branchy compare loop). */
constexpr Cycle kSortPerElem = 14;  ///< leaf insertion/quick sort
constexpr Cycle kMergePerElem = 7;  ///< linear merge of the halves
constexpr Cycle kTaskFixed = 220;
constexpr Cycle kSplitPayload = 90; ///< internal node: split bookkeeping

Addr
rangeAddr(unsigned lo)
{
    return kSortArray + static_cast<Addr>(lo) * sizeof(std::uint64_t);
}

/** Leaf cost: n * log2(n)-ish comparison sort of a small range. */
Cycle
leafCost(unsigned n)
{
    unsigned log2n = 0;
    for (unsigned v = n; v > 1; v >>= 1)
        ++log2n;
    return kTaskFixed + static_cast<Cycle>(n) * kSortPerElem *
                            std::max(1u, log2n) / 4;
}

/** Recursively emit the sort of [lo, lo+n) as a child of @p parent. */
void
buildSort(rt::Program &prog, std::uint64_t parent, unsigned lo, unsigned n,
          unsigned cutoff)
{
    if (n <= cutoff) {
        prog.spawnChild(parent, leafCost(n),
                        {{rangeAddr(lo), rt::Dir::InOut}});
        return;
    }
    const unsigned half = n / 2;
    const std::uint64_t node = prog.spawnChild(parent, kSplitPayload);
    buildSort(prog, node, lo, half, cutoff);
    buildSort(prog, node, lo + half, n - half, cutoff);
    prog.taskwaitChildren(node);
    prog.spawnChild(node, kTaskFixed + static_cast<Cycle>(n) * kMergePerElem,
                    {{rangeAddr(lo), rt::Dir::InOut},
                     {rangeAddr(lo + half), rt::Dir::In}});
    prog.taskwaitChildren(node);
}

} // namespace

rt::Program
mergesortNested(unsigned n, unsigned cutoff)
{
    if (n == 0 || cutoff == 0)
        sim::fatal("mergesortNested: empty input or zero cutoff");
    rt::Program prog;
    prog.name = "mergesort-nested n" + std::to_string(n) + " c" +
                std::to_string(cutoff);

    // The root is a top-level task; everything below it is spawned by
    // whichever worker executes the enclosing node.
    if (n <= cutoff) {
        prog.spawn(leafCost(n), {{rangeAddr(0), rt::Dir::InOut}});
    } else {
        const unsigned half = n / 2;
        const std::uint64_t root = prog.spawn(kSplitPayload);
        buildSort(prog, root, 0, half, cutoff);
        buildSort(prog, root, half, n - half, cutoff);
        prog.taskwaitChildren(root);
        prog.spawnChild(root,
                        kTaskFixed + static_cast<Cycle>(n) * kMergePerElem,
                        {{rangeAddr(0), rt::Dir::InOut},
                         {rangeAddr(half), rt::Dir::In}});
        prog.taskwaitChildren(root);
    }
    prog.taskwait();
    return prog;
}

void
registerMergesortWorkloads(spec::WorkloadRegistry &reg)
{
    reg.add({"mergesort-nested",
             "divide-and-conquer mergesort, worker-spawned subtrees",
             {{"n", 4096, 1, 1'000'000'000, "elements to sort"},
              {"cutoff", 128, 1, 1'000'000'000,
               "leaf size below which ranges sort serially"}},
             [](const spec::WorkloadArgs &a) {
                 return mergesortNested(static_cast<unsigned>(a.at("n")),
                                        static_cast<unsigned>(
                                            a.at("cutoff")));
             }});
}

} // namespace picosim::apps
