#include "picos/sharded_picos.hh"

#include <algorithm>
#include <limits>
#include <string>

#include "sim/log.hh"

namespace picosim::picos
{

namespace
{

// Cross-shard notification word: dependent id in the low bits, the
// affinity (producer-executing) cluster above. 2^20 ids covers the
// largest topology (64 shards x 256 TRS entries) with room to spare.
constexpr unsigned kNotifyClusterShift = 20;
constexpr std::uint32_t kNotifyIdMask = (1u << kNotifyClusterShift) - 1;

} // namespace

ShardedPicos::Shard::Shard(const sim::Clock &clock, const PicosParams &p,
                           const TopologyParams &topo,
                           sim::StatGroup &stats, unsigned id,
                           sim::Ticked *owner, std::size_t notify_cap)
    : table(p.dctSets, p.dctWays, id, topo.schedShards),
      gate(&stats, "sharded.s" + std::to_string(id) + ".gate"),
      notifyQueue(clock, {notify_cap, topo.xshardNotifyCycles, 0}, &stats,
                  "sharded.s" + std::to_string(id) + ".notify", owner)
{
}

ShardedPicos::Cluster::Cluster(const sim::Clock &clock,
                               const sim::Clock &readyClock,
                               const PicosParams &p,
                               const TopologyParams &topo,
                               sim::StatGroup &stats, unsigned id,
                               sim::Ticked *owner)
    // In PDES mode the cluster-link hop rides on the boundary ports'
    // latency (where it doubles as conservative lookahead) instead of
    // the gateway arbiter's grant offset — see tickRouters().
    : subQueue(clock,
               {p.subQueueDepth,
                1 + (topo.pdesBoundaryPorts ? topo.clusterLinkCycles : 0),
                0},
               &stats, "sharded.c" + std::to_string(id) + ".subQueue",
               owner),
      retireQueue(clock,
                  {p.retireQueueDepth, 1 + topo.clusterLinkCycles, 0},
                  &stats, "sharded.c" + std::to_string(id) + ".retireQueue",
                  owner),
      // One ready tuple (3 packets) buffered, deliberately shallower
      // than the single Picos's ready FIFO: a tuple sitting here is
      // pinned to this cluster, so deeper buffering would hoard work a
      // dry neighbour could have stolen from readyPending. Bound to the
      // manager-domain clock: the manager is its consumer.
      readyQueue(readyClock,
                 {3,
                  1 + (topo.pdesBoundaryPorts ? topo.clusterLinkCycles : 0),
                  0},
                 &stats, "sharded.c" + std::to_string(id) + ".readyQueue")
{
    collectBuffer.reserve(rocc::kDescriptorPackets);
}

ShardedPicos::ShardedPicos(const sim::Clock &clock,
                           std::vector<const sim::Clock *> readyClocks,
                           const PicosParams &params,
                           const TopologyParams &topo,
                           sim::StatGroup &stats)
    : sim::Ticked("shardedPicos"), clock_(clock),
      readyClocks_(std::move(readyClocks)),
      params_(params), topo_(topo), stats_(stats),
      statSubPackets_(&stats.scalar("sharded.subPackets")),
      statRetirePackets_(&stats.scalar("sharded.retirePackets")),
      statDepEdges_(&stats.scalar("sharded.depEdges")),
      statCrossShardEdges_(&stats.scalar("sharded.crossShardEdges")),
      statDepTableStalls_(&stats.scalar("sharded.depTableStalls")),
      statTasksProcessed_(&stats.scalar("sharded.tasksProcessed")),
      statCrossShardNotifies_(&stats.scalar("sharded.crossShardNotifies")),
      statRetires_(&stats.scalar("sharded.retires")),
      statBadRetires_(&stats.scalar("sharded.badRetires")),
      statTrsStalls_(&stats.scalar("sharded.trsStalls")),
      statGatewayBackpressure_(&stats.scalar("sharded.gatewayBackpressure")),
      statReadyIssued_(&stats.scalar("sharded.readyIssued")),
      statSteals_(&stats.scalar("sharded.steals")),
      statInFlight_(&stats.dist("sharded.inFlight"))
{
    if (topo_.schedShards == 0 || topo_.clusters == 0)
        sim::fatal("ShardedPicos needs at least one shard and one cluster");
    if (readyClocks_.size() != topo_.clusters)
        sim::fatal("ShardedPicos needs one manager-domain clock per "
                   "cluster");

    tasks_.assign(std::size_t{topo_.schedShards} * params_.trsEntries,
                  TaskEntry{});
    // The cross-shard notification word packs (cluster, id); refuse any
    // topology the encoding cannot address rather than corrupt wakeups.
    if (tasks_.size() > std::size_t{kNotifyIdMask} + 1 ||
        topo_.clusters > (1u << (32 - kNotifyClusterShift)))
        sim::fatal("topology exceeds the cross-shard notification "
                   "encoding (ids or clusters too large)");
    retireServed_.assign(topo_.schedShards, 0);
    // Worst-case forwarded wakeups in flight: every edge of every
    // in-flight task crossing shards at once.
    const std::size_t notify_cap = tasks_.size() * rocc::kMaxDeps + 1;

    shards_.reserve(topo_.schedShards);
    for (unsigned s = 0; s < topo_.schedShards; ++s) {
        shards_.emplace_back(clock, params_, topo_, stats, s, this,
                             notify_cap);
        for (std::uint32_t i = 0; i < params_.trsEntries; ++i)
            shards_[s].freeList.push_back(s * params_.trsEntries + i);
    }
    clusters_.reserve(topo_.clusters);
    ports_.reserve(topo_.clusters);
    for (unsigned c = 0; c < topo_.clusters; ++c) {
        clusters_.emplace_back(clock, *readyClocks_[c], params_, topo_,
                               stats, c, this);
        ports_.emplace_back(*this, c);
    }
    bindFastDispatch<ShardedPicos>();
}

void
ShardedPicos::bindPdes(sim::Simulator &sim)
{
    for (unsigned c = 0; c < clusters_.size(); ++c) {
        Cluster &cl = clusters_[c];
        const sim::Clock &mgrClock = *readyClocks_[c];
        // Manager-domain producers into this scheduler's domain...
        cl.subQueue.enableCrossDomainStaging(sim, mgrClock);
        cl.retireQueue.enableCrossDomainStaging(sim, mgrClock);
        // ...and the ready return in the opposite direction.
        cl.readyQueue.enableCrossDomainStaging(sim, clock_);
        // The per-packet scalars the producing managers used to bump
        // inline move to the boundary drain: with the managers spread
        // over several domains, these shared counters must only ever be
        // written from the single-threaded coordinator step.
        cl.subQueue.onStagedDrain(
            [this](const std::uint32_t &) { ++*statSubPackets_; });
        cl.retireQueue.onStagedDrain(
            [this](const std::uint32_t &) { ++*statRetirePackets_; });
    }
}

SchedulerIf &
ShardedPicos::clusterPort(unsigned c)
{
    return ports_.at(c);
}

// -- ClusterPort: the manager-facing packet protocol --------------------

bool
ShardedPicos::ClusterPort::subCanAccept() const
{
    return sp_.clusters_[c_].subQueue.canPush();
}

bool
ShardedPicos::ClusterPort::subPush(std::uint32_t packet)
{
    Cluster &cl = sp_.clusters_[c_];
    if (!cl.subQueue.push(packet))
        return false;
    if (!cl.subQueue.crossDomainStaging())
        ++*sp_.statSubPackets_; // staged: counted at the boundary drain
    return true;
}

bool
ShardedPicos::ClusterPort::readyValid() const
{
    return sp_.clusters_[c_].readyQueue.frontReady();
}

std::uint32_t
ShardedPicos::ClusterPort::readyPop()
{
    // Freed ready-queue space may unblock a stalled packet issue. The
    // wake cycle is clamped to the scheduler domain's own current cycle
    // (or the next window boundary when the caller is cross-domain), so
    // pass 0 rather than reading another domain's clock.
    sp_.requestWake(0);
    return sp_.clusters_[c_].readyQueue.pop();
}

void
ShardedPicos::ClusterPort::setReadyListener(sim::Ticked *listener)
{
    sp_.clusters_[c_].readyQueue.setOwner(listener);
}

bool
ShardedPicos::ClusterPort::retireCanAccept() const
{
    return sp_.clusters_[c_].retireQueue.canPush();
}

bool
ShardedPicos::ClusterPort::retirePush(std::uint32_t picos_id)
{
    Cluster &cl = sp_.clusters_[c_];
    if (!cl.retireQueue.push(picos_id))
        return false;
    if (!cl.retireQueue.crossDomainStaging())
        ++*sp_.statRetirePackets_; // staged: counted at boundary drain
    return true;
}

// -- Shared task-table helpers ------------------------------------------

bool
ShardedPicos::alive(const TaskRef &ref) const
{
    if (!ref.valid || ref.id >= tasks_.size())
        return false;
    const TaskEntry &e = tasks_[ref.id];
    return e.gen == ref.gen && e.state != TaskState::Free;
}

TaskRef
ShardedPicos::refOf(std::uint32_t id) const
{
    return TaskRef{id, tasks_[id].gen, true};
}

bool
ShardedPicos::entryEvictable(const DepEntry &entry) const
{
    if (alive(entry.lastWriter))
        return false;
    return std::none_of(entry.readers.begin(), entry.readers.end(),
                        [this](const TaskRef &r) { return alive(r); });
}

unsigned
ShardedPicos::homeShardOf(std::uint32_t id) const
{
    return id / params_.trsEntries;
}

unsigned
ShardedPicos::shardOfDesc(const rocc::TaskDescriptor &desc,
                          const Cluster &cl) const
{
    if (!desc.deps.empty())
        return DepTable::shardOf(desc.deps.front().addr, topo_.schedShards);
    return cl.rrShard; // advanced by the router on successful dispatch
}

Cycle
ShardedPicos::descOccupancy(const rocc::TaskDescriptor &desc,
                            unsigned home) const
{
    Cycle occ = params_.headerCycles;
    for (const rocc::TaskDep &dep : desc.deps) {
        occ += params_.depCycles;
        if (DepTable::shardOf(dep.addr, topo_.schedShards) != home)
            occ += topo_.xshardDepCycles; // remote table round trip
    }
    return occ;
}

void
ShardedPicos::addEdge(const TaskRef &producer, std::uint32_t consumer_id)
{
    if (!alive(producer) || producer.id == consumer_id)
        return;
    tasks_[producer.id].dependents.push_back(refOf(consumer_id));
    ++tasks_[consumer_id].pendingDeps;
    ++*statDepEdges_;
    if (homeShardOf(producer.id) != homeShardOf(consumer_id)) {
        ++crossShardEdges_;
        ++*statCrossShardEdges_;
    }
}

bool
ShardedPicos::applyDescriptor(Shard &sh)
{
    const auto id = static_cast<std::uint32_t>(sh.gwTaskId);
    TaskEntry &task = tasks_[id];

    // KEEP IN SYNC with Picos::applyDescriptor (picos.cc): same
    // RAW/WAW/WAR walk and stall-resume protocol, differing only in
    // table routing (per-shard slices), cross-shard accounting and
    // ready placement. A semantic fix to one engine applies to both.
    //
    // One dependence at a time with gwDepIndex as the resume point, so a
    // table-conflict stall (in any shard's slice) retries idempotently.
    while (sh.gwDepIndex < sh.gwDesc.deps.size()) {
        const rocc::TaskDep &dep = sh.gwDesc.deps[sh.gwDepIndex];
        DepTable &table =
            shards_[DepTable::shardOf(dep.addr, topo_.schedShards)].table;
        DepEntry *e = table.find(dep.addr);
        if (!e) {
            e = table.alloc(dep.addr, [this](const DepEntry &de) {
                return entryEvictable(de);
            });
            if (!e) {
                ++*statDepTableStalls_;
                return false;
            }
        }
        std::erase_if(e->readers,
                      [this](const TaskRef &r) { return !alive(r); });

        switch (dep.dir) {
          case rocc::Dir::In:
            addEdge(e->lastWriter, id); // RAW
            e->readers.push_back(refOf(id));
            break;
          case rocc::Dir::Out:
          case rocc::Dir::InOut:
            addEdge(e->lastWriter, id); // WAW (and RAW for InOut)
            for (const TaskRef &r : e->readers)
                addEdge(r, id); // WAR
            e->lastWriter = refOf(id);
            e->readers.clear();
            break;
        }
        ++sh.gwDepIndex;
    }

    task.swId = sh.gwDesc.swId;
    ++tasksProcessed_;
    ++*statTasksProcessed_;
    ++inFlight_;
    statInFlight_->sample(inFlight_);
    // Only now may wakeups ready this task: producers that retired
    // during a mid-walk table stall were counted but deferred.
    task.applying = false;
    if (task.pendingDeps == 0) {
        markReady(id, task.homeCluster);
    } else {
        task.state = TaskState::Waiting;
    }
    return true;
}

void
ShardedPicos::markReady(std::uint32_t id, unsigned cluster)
{
    tasks_[id].state = TaskState::Ready;
    tasks_[id].homeCluster = cluster;
    clusters_[cluster].readyPending.push_back(id);
}

void
ShardedPicos::wakeDependent(std::uint32_t id, unsigned cluster)
{
    TaskEntry &d = tasks_[id];
    if (d.pendingDeps == 0)
        sim::panic("dependence underflow on wakeup");
    // The last wakeup decides where the task becomes ready: the cluster
    // that executed its (final) producer, for data affinity — dependence
    // chains then stay cluster-local instead of funnelling back to the
    // submitting master's cluster and relying on steals to spread out.
    // A task whose descriptor is still mid-application at a stalled
    // gateway must not be readied here — its remaining deps may add
    // edges. Record the affinity hint so the deferred markReady in
    // applyDescriptor still honours the placement rule.
    if (--d.pendingDeps == 0 && d.state == TaskState::Waiting) {
        if (d.applying)
            d.homeCluster = cluster;
        else
            markReady(id, cluster);
    }
}

// -- Pipelines ----------------------------------------------------------

void
ShardedPicos::tickNotify()
{
    // Deliver forwarded retirement notifications that reached their
    // dependent's home shard this cycle. A pending dependence pins its
    // task entry (it cannot run, so it cannot retire or recycle), so the
    // id in flight is always the intended task.
    for (unsigned s = 0; s < shards_.size(); ++s) {
        if (shardDown(s))
            continue; // notifications queue up until the shard heals
        Shard &sh = shards_[s];
        while (sh.notifyQueue.frontReady()) {
            const std::uint32_t packed = sh.notifyQueue.pop();
            wakeDependent(packed & kNotifyIdMask,
                          packed >> kNotifyClusterShift);
        }
    }
}

void
ShardedPicos::finishRetire(Shard &sh, std::uint32_t id)
{
    const Cycle now = clock_.now();
    TaskEntry &t = tasks_[id];
    Cycle cost = params_.retireCycles;
    const unsigned shard = homeShardOf(id);
    const unsigned exec_cluster = t.homeCluster; // where @p id last ran
    for (const TaskRef &dep : t.dependents) {
        if (!alive(dep))
            continue;
        cost += params_.wakeupCycles;
        if (homeShardOf(dep.id) == shard) {
            wakeDependent(dep.id, exec_cluster);
        } else {
            // Forward the wakeup (dependent id + affinity cluster) to
            // the dependent's home shard.
            const std::uint32_t packed =
                dep.id | (exec_cluster << kNotifyClusterShift);
            if (!shards_[homeShardOf(dep.id)].notifyQueue.push(packed))
                sim::panic("cross-shard notify queue overflow");
            ++*statCrossShardNotifies_;
        }
    }
    t.dependents.clear();
    t.state = TaskState::Free;
    ++t.gen;
    sh.freeList.push_back(id);
    --inFlight_;
    ++tasksRetired_;
    sh.retireBusyUntil = now + cost;
    ++*statRetires_;
}

void
ShardedPicos::tickRetire()
{
    const Cycle now = clock_.now();
    // In-order service per cluster queue (head-of-line blocks on a busy
    // shard); round-robin across clusters, at most one retirement per
    // shard per cycle.
    std::fill(retireServed_.begin(), retireServed_.end(), 0);
    std::vector<char> &served = retireServed_;
    int first = -1;
    for (unsigned i = 0; i < clusters_.size(); ++i) {
        const unsigned c =
            (rrRetire_ + i) % static_cast<unsigned>(clusters_.size());
        Cluster &cl = clusters_[c];
        if (!cl.retireQueue.frontReady())
            continue;
        const std::uint32_t id = cl.retireQueue.front();
        if (id >= tasks_.size() ||
            tasks_[id].state != TaskState::Running) {
            cl.retireQueue.pop();
            ++*statBadRetires_;
            PSIM_WARN(clock_, "sharded",
                      "retire of task " << id << " in invalid state");
            continue;
        }
        const unsigned s = homeShardOf(id);
        // A down home shard blocks its retirements head-of-line, just
        // like a busy retire pipeline — in-order service per cluster.
        if (served[s] || shards_[s].retireBusyUntil > now || shardDown(s))
            continue;
        cl.retireQueue.pop();
        finishRetire(shards_[s], id);
        served[s] = true;
        if (first < 0)
            first = static_cast<int>(c);
    }
    if (first >= 0)
        rrRetire_ = (static_cast<unsigned>(first) + 1) %
                    static_cast<unsigned>(clusters_.size());
}

void
ShardedPicos::tickGateways()
{
    const Cycle now = clock_.now();
    for (unsigned s = 0; s < shards_.size(); ++s) {
        if (shardDown(s))
            continue; // descriptors wait at the gateway until it heals
        Shard &sh = shards_[s];
        if (sh.gwTaskId < 0) {
            if (sh.inQueue.empty() || now < sh.inQueue.front().readyAt)
                continue;
            if (sh.freeList.empty()) {
                // Backpressure: hold the descriptor at the gateway until
                // a retirement frees a reservation entry.
                ++*statTrsStalls_;
                continue;
            }
            PendingDesc &pending = sh.inQueue.front();
            const std::uint32_t id = sh.freeList.front();
            sh.freeList.pop_front();
            TaskEntry &t = tasks_[id];
            t.swId = 0;
            t.pendingDeps = 0;
            t.dependents.clear();
            t.state = TaskState::Waiting;
            t.applying = true;
            t.homeCluster = pending.homeCluster;
            sh.gwTaskId = static_cast<int>(id);
            sh.gwDepIndex = 0;
            sh.gwDesc = std::move(pending.desc);
            sh.inQueue.pop_front();
        }
        // Fresh descriptor or stalled retry: apply until a table conflict.
        if (applyDescriptor(sh))
            sh.gwTaskId = -1;
    }
}

void
ShardedPicos::tickRouters()
{
    const Cycle now = clock_.now();
    for (unsigned c = 0; c < clusters_.size(); ++c) {
        if (clusterLinkDown(c))
            continue; // submission fabric down: packets sit in subQueue
        Cluster &cl = clusters_[c];
        // Dispatch a decoded descriptor to its home shard's gateway.
        if (cl.hasDecoded) {
            const unsigned s = shardOfDesc(cl.decoded, cl);
            const bool dep_free = cl.decoded.deps.empty();
            Shard &sh = shards_[s];
            if (sh.inQueue.size() < topo_.gatewayQueueDepth) {
                const Cycle occ = descOccupancy(cl.decoded, s);
                // In PDES mode the link hop was already charged by the
                // submission port's latency; don't charge it twice.
                const Cycle link_hop =
                    topo_.pdesBoundaryPorts ? 0 : topo_.clusterLinkCycles;
                const Cycle grant = sh.gate.grant(now + link_hop, occ);
                sh.inQueue.push_back(
                    PendingDesc{grant + occ, std::move(cl.decoded), c});
                cl.hasDecoded = false;
                if (dep_free)
                    cl.rrShard = (cl.rrShard + 1) % topo_.schedShards;
            } else {
                ++*statGatewayBackpressure_;
            }
        }
        // Collect one submission packet per cycle into the descriptor.
        if (!cl.hasDecoded && cl.subQueue.frontReady()) {
            cl.collectBuffer.push_back(cl.subQueue.pop());
            if (cl.collectBuffer.size() == rocc::kDescriptorPackets) {
                cl.decoded = rocc::decodeDescriptor(cl.collectBuffer);
                cl.collectBuffer.clear();
                cl.hasDecoded = true;
            }
        }
    }
}

void
ShardedPicos::tickReadyIssue()
{
    const Cycle now = clock_.now();
    for (unsigned c = 0; c < clusters_.size(); ++c) {
        Cluster &cl = clusters_[c];
        if (cl.readyIssuingId >= 0 && now >= cl.readyBusyUntil) {
            // Stream the three packets of the ready descriptor.
            if (cl.readyQueue.capacity() - cl.readyQueue.size() < 3)
                continue; // wait for space
            const TaskEntry &t = tasks_[cl.readyIssuingId];
            cl.readyQueue.push(
                static_cast<std::uint32_t>(cl.readyIssuingId));
            cl.readyQueue.push(static_cast<std::uint32_t>(t.swId >> 32));
            cl.readyQueue.push(
                static_cast<std::uint32_t>(t.swId & 0xffffffffu));
            tasks_[cl.readyIssuingId].state = TaskState::Running;
            ++*statReadyIssued_;
            cl.readyIssuingId = -1;
            // The pushes themselves woke the ready listener (the port's
            // owner) at the tuple's ready cycle.
        }
        if (cl.readyIssuingId >= 0)
            continue;
        if (!cl.readyPending.empty()) {
            cl.readyIssuingId = static_cast<int>(cl.readyPending.front());
            cl.readyPending.pop_front();
            cl.readyBusyUntil = now + params_.readyIssueCycles;
        } else if (topo_.workStealing &&
                   cl.readyQueue.capacity() - cl.readyQueue.size() >= 3) {
            // Local queue ran dry: steal from the longest remote queue
            // (LIFO end), paying the remote-access penalty.
            int victim = -1;
            std::size_t best = 0;
            for (unsigned k = 1; k < clusters_.size(); ++k) {
                const unsigned v =
                    (c + k) % static_cast<unsigned>(clusters_.size());
                if (clusters_[v].readyPending.size() > best) {
                    best = clusters_[v].readyPending.size();
                    victim = static_cast<int>(v);
                }
            }
            if (victim >= 0) {
                Cluster &vc = clusters_[victim];
                const std::uint32_t id = vc.readyPending.back();
                vc.readyPending.pop_back();
                tasks_[id].homeCluster = c;
                cl.readyIssuingId = static_cast<int>(id);
                cl.readyBusyUntil = now + params_.readyIssueCycles +
                                    topo_.stealPenaltyCycles;
                ++steals_;
                ++*statSteals_;
            }
        }
    }
}

void
ShardedPicos::tick()
{
    tickNotify();
    tickRetire();
    tickGateways();
    tickRouters();
    tickReadyIssue();
}

Cycle
ShardedPicos::nextDue() const
{
    const Cycle now = clock_.now();
    const Cycle poll = now + 1;
    Cycle due = kCycleNever;
    const auto merge = [&due](Cycle c) { due = std::min(due, c); };

    for (unsigned s = 0; s < shards_.size(); ++s) {
        const Shard &sh = shards_[s];
        // A down shard services nothing until it heals: defer its
        // sources to the heal cycle (or never) instead of polling
        // through the outage. The gate is a pure function of the
        // domain clock, so the deferral is deterministic.
        const bool down = shardDown(s);
        if (sh.gwTaskId >= 0)
            merge(gateFault(poll, down)); // dep-table stall retry
        if (!sh.inQueue.empty())
            merge(gateFault(std::max(sh.inQueue.front().readyAt, poll),
                            down));
        merge(gateFault(sh.notifyQueue.nextReadyCycle(), down));
    }
    for (unsigned c = 0; c < clusters_.size(); ++c) {
        const Cluster &cl = clusters_[c];
        const bool linkDown = clusterLinkDown(c);
        if (!cl.collectBuffer.empty() || cl.hasDecoded)
            merge(gateFault(poll, linkDown));
        merge(gateFault(cl.subQueue.nextReadyCycle(), linkDown));
        // Consumer-side view only (nextReadyCycle reads resident items,
        // never the producer's staging state): non-empty iff an item is
        // resident, exactly what the old empty() test established.
        const Cycle retire_ready = cl.retireQueue.nextReadyCycle();
        if (retire_ready != kCycleNever) {
            // A consumable head homed on a down shard is head-of-line
            // blocked until the heal; anything else is serviceable.
            bool blocked = false;
            if (cl.retireQueue.frontReady()) {
                const std::uint32_t id = cl.retireQueue.front();
                blocked = id < tasks_.size() &&
                          tasks_[id].state == TaskState::Running &&
                          shardDown(homeShardOf(id));
            }
            merge(gateFault(std::max(retire_ready, poll), blocked));
        }
        if (cl.readyIssuingId >= 0)
            merge(std::max(cl.readyBusyUntil, poll));
        if (!cl.readyPending.empty())
            merge(poll);
        // Surface pending ready packets so the cluster's manager gets
        // the clock advanced across the queue latency. In PDES mode the
        // manager owns those items (other domain) — its wake comes from
        // the boundary drain instead, and this scheduler must not read
        // consumer-owned state.
        if (!topo_.pdesBoundaryPorts)
            merge(cl.readyQueue.nextReadyCycle());
    }
    return due;
}

bool
ShardedPicos::active() const
{
    return nextDue() <= clock_.now() + 1;
}

Cycle
ShardedPicos::wakeAt() const
{
    return nextDue();
}

bool
ShardedPicos::quiescent() const
{
    if (inFlight_ != 0)
        return false;
    for (const Shard &sh : shards_) {
        if (sh.gwTaskId >= 0 || !sh.inQueue.empty() ||
            !sh.notifyQueue.empty())
            return false;
    }
    for (const Cluster &cl : clusters_) {
        if (!cl.subQueue.empty() || !cl.retireQueue.empty() ||
            !cl.readyQueue.empty() || !cl.collectBuffer.empty() ||
            cl.hasDecoded || !cl.readyPending.empty() ||
            cl.readyIssuingId >= 0)
            return false;
    }
    return true;
}

TaskState
ShardedPicos::taskState(std::uint32_t picos_id) const
{
    if (picos_id >= tasks_.size())
        return TaskState::Free;
    return tasks_[picos_id].state;
}

} // namespace picosim::picos
