/** @file Unit tests for the simulation kernel (clock, tick, fast-forward). */

#include <gtest/gtest.h>

#include "sim/kernel.hh"
#include "sim/ticked.hh"

using namespace picosim;
using namespace picosim::sim;

namespace
{

/** Component active for the first n ticks, then idle. */
class CountDown : public Ticked
{
  public:
    CountDown(const Clock &clk, unsigned n)
        : Ticked("countdown"), clk_(clk), remaining_(n)
    {
    }

    void
    tick() override
    {
        if (remaining_ > 0) {
            --remaining_;
            lastTick_ = clk_.now();
            ++ticks_;
        }
    }

    bool active() const override { return remaining_ > 0; }

    unsigned remaining() const { return remaining_; }
    unsigned ticks() const { return ticks_; }
    Cycle lastTick() const { return lastTick_; }

  private:
    const Clock &clk_;
    unsigned remaining_;
    unsigned ticks_ = 0;
    Cycle lastTick_ = 0;
};

/** Component idle until a programmed wake cycle, then active once. */
class Alarm : public Ticked
{
  public:
    Alarm(const Clock &clk, Cycle at)
        : Ticked("alarm"), clk_(clk), at_(at)
    {
    }

    void
    tick() override
    {
        if (!fired_ && clk_.now() >= at_) {
            fired_ = true;
            firedAt_ = clk_.now();
        }
    }

    bool active() const override { return false; }
    Cycle wakeAt() const override { return fired_ ? kCycleNever : at_; }

    bool fired() const { return fired_; }
    Cycle firedAt() const { return firedAt_; }

  private:
    const Clock &clk_;
    Cycle at_;
    bool fired_ = false;
    Cycle firedAt_ = 0;
};

} // namespace

TEST(Clock, AdvancesMonotonically)
{
    Clock clk;
    EXPECT_EQ(clk.now(), 0u);
    clk.advanceTo(5);
    EXPECT_EQ(clk.now(), 5u);
    clk.advanceTo(3); // backwards is a no-op
    EXPECT_EQ(clk.now(), 5u);
}

TEST(Simulator, TicksWhileActive)
{
    Simulator sim;
    CountDown cd(sim.clock(), 3);
    sim.addTicked(&cd);
    EXPECT_TRUE(sim.run([&] { return cd.remaining() == 0; }, 100));
    EXPECT_EQ(cd.ticks(), 3u);
    EXPECT_LE(sim.clock().now(), 4u);
}

TEST(Simulator, FastForwardsToWake)
{
    Simulator sim;
    Alarm alarm(sim.clock(), 1'000'000);
    sim.addTicked(&alarm);
    EXPECT_TRUE(sim.run([&] { return alarm.fired(); }, 2'000'000));
    EXPECT_EQ(alarm.firedAt(), 1'000'000u);
    // The kernel must have skipped the idle stretch.
    EXPECT_LT(sim.evaluatedCycles(), 10u);
}

TEST(Simulator, HonorsCycleLimit)
{
    Simulator sim;
    CountDown cd(sim.clock(), 1'000'000);
    sim.addTicked(&cd);
    EXPECT_FALSE(sim.run([] { return false; }, 100));
    EXPECT_LE(sim.clock().now(), 102u);
}

TEST(Simulator, ReturnsFalseWhenFullyIdle)
{
    Simulator sim;
    Alarm alarm(sim.clock(), 10);
    sim.addTicked(&alarm);
    // Alarm fires then goes idle forever; predicate never true.
    EXPECT_FALSE(sim.run([] { return false; }, 1'000'000));
}

TEST(Simulator, RunForAdvancesExactly)
{
    Simulator sim;
    CountDown cd(sim.clock(), 5);
    sim.addTicked(&cd);
    sim.runFor(50);
    EXPECT_EQ(sim.clock().now(), 50u);
    EXPECT_EQ(cd.remaining(), 0u);
}

TEST(Simulator, MultipleComponentsTickInOrder)
{
    Simulator sim;
    CountDown a(sim.clock(), 2), b(sim.clock(), 4);
    sim.addTicked(&a);
    sim.addTicked(&b);
    EXPECT_TRUE(sim.run([&] { return b.remaining() == 0; }, 100));
    EXPECT_EQ(a.ticks(), 2u);
    EXPECT_EQ(b.ticks(), 4u);
}
