/**
 * @file
 * Model of the Nanos OmpSs runtime in its three evaluated configurations
 * (paper Sections II, V-A and VI):
 *
 *  - Nanos-SW:  dependence inference by the software `plain` plugin;
 *  - Nanos-RV:  dependence inference offloaded to Picos via the custom
 *               instructions (`picos` plugin, NX_ARGS="-deps=picos");
 *  - Nanos-AXI: literature baseline — Picos++ reached through AXI
 *               MMIO/DMA transactions (Tan et al. [20]).
 *
 * All three share the Nanos machinery the paper blames for its overhead:
 * virtual-function plugin hops, mutex-guarded shared structures, and the
 * Scheduler singleton that funnels every ready task through one central
 * queue instead of running it on the fetching core (Section V-A).
 */

#ifndef PICOSIM_RUNTIME_NANOS_HH
#define PICOSIM_RUNTIME_NANOS_HH

#include <deque>
#include <unordered_map>

#include "runtime/cost_model.hh"
#include "runtime/runtime.hh"
#include "runtime/sw_dep_graph.hh"
#include "runtime/sync.hh"
#include "runtime/task_trace.hh"
#include "runtime/task_window.hh"

namespace picosim::rt
{

class Nanos : public Runtime
{
  public:
    enum class Variant { SW, RV, AXI };

    explicit Nanos(Variant variant, const CostModel &cm = {});

    std::string name() const override;

    void install(cpu::System &sys, const Program &prog) override;

    bool finished() const override;
    std::uint64_t tasksExecuted() const override { return executed_; }
    std::uint64_t tasksSubmittedByWorkers() const override
    {
        return workerSubmitted_;
    }
    std::uint64_t tasksExecutedInline() const override
    {
        return inlineExecuted_;
    }

    Variant variant() const { return variant_; }

    /** Attach an optional per-task lifecycle trace (may be nullptr). */
    void setTrace(TaskTrace *trace) { trace_ = trace; }

  private:
    sim::CoTask<void> master(cpu::HartApi &api);
    sim::CoTask<void> worker(cpu::HartApi &api);

    /**
     * Submit one task through the variant's dependence path. With
     * @p allow_throttle (nested RV/AXI programs), co_returns false
     * without submitting when the hardware task window is saturated —
     * the caller must fall back (drain, then execute inline).
     */
    sim::CoTask<bool> submitTask(cpu::HartApi &api, const Task &task,
                                 bool allow_throttle = false);

    /** Saturation fallback: run @p task without the dependence hardware
     *  (the caller guarantees its earlier siblings drained). */
    sim::CoTask<void> executeInline(cpu::HartApi &api, const Task &task);

    /** Completion bookkeeping shared by retire() and executeInline(). */
    sim::CoTask<void> noteCompletion(cpu::HartApi &api, const Task &task);

    /** Push a ready task into the Scheduler singleton's central queue. */
    sim::CoTask<void> pushCentral(cpu::HartApi &api, std::uint64_t sw_id);

    /** Pop the central queue; co_returns -1 when empty. */
    sim::CoTask<std::int64_t> popCentral(cpu::HartApi &api);

    /** RV/AXI: move one ready tuple from the HW to the central queue. */
    sim::CoTask<bool> hwFetchToCentral(cpu::HartApi &api);

    /** Fetch+execute+retire one task. co_returns success. */
    sim::CoTask<bool> tryExecuteOne(cpu::HartApi &api);

    sim::CoTask<void> retire(cpu::HartApi &api, const Task &task);

    /** Submit the descriptor through the custom instructions (RV). */
    sim::CoTask<void> hwSubmitRocc(cpu::HartApi &api, const Task &task);

    /** Submit the descriptor over modeled AXI DMA (AXI baseline). */
    sim::CoTask<void> hwSubmitAxi(cpu::HartApi &api, const Task &task);

    sim::CoTask<void> taskwait(cpu::HartApi &api, std::uint64_t target);

    /** Nested-program barrier: drain everything submitted so far,
     *  subtrees included (re-reads the growing submission count). */
    sim::CoTask<void> taskwaitAll(cpu::HartApi &api);

    /** Scoped taskwait: wait until @p target children of @p id retired. */
    sim::CoTask<void> taskwaitChildren(cpu::HartApi &api, std::uint64_t id,
                                       std::uint64_t target);

    /** Replay a task body's child spawns and scoped waits (nested). */
    sim::CoTask<void> runBody(cpu::HartApi &api, const Task &task);

    Variant variant_;
    CostModel cm_;
    cpu::System *sys_ = nullptr;
    const Program *prog_ = nullptr;
    TaskTrace *trace_ = nullptr;

    // Scheduler singleton state (central ready queue + its lock).
    SimLock schedLock_;
    std::deque<std::uint64_t> centralQueue_;
    std::uint64_t queuePushes_ = 0;
    std::uint64_t queuePops_ = 0;

    // Dependence subsystem.
    SwDepGraph swGraph_;                ///< SW variant
    SimLock depLock_;                   ///< SW variant
    std::unordered_map<std::uint64_t, std::uint32_t> picosIdBySw_; // RV/AXI
    std::vector<unsigned> outstandingReq_; ///< RV/AXI, per core

    std::uint64_t submitted_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t executed_ = 0;
    std::uint64_t workerSubmitted_ = 0; ///< spawns from non-master harts
    bool doneFlag_ = false;
    bool masterDone_ = false;

    // -- Nested tasking (inert for flat programs) --
    bool nested_ = false;           ///< program spawns child tasks
    bool skipFinalBarrier_ = false; ///< last action already is a taskwait
    std::vector<std::uint64_t> childRetired_; ///< per-parent counts

    /** Hardware task-window throttle (nested RV/AXI only): blocked
     *  parents must never fill the accelerator — see Phentos. */
    std::uint64_t hwInFlight_ = 0;     ///< submitted to HW, not retired
    std::uint64_t inFlightLimit_ = 0;  ///< 0 = no throttle
    std::uint64_t inlineExecuted_ = 0; ///< saturation-fallback executions
    LiveWriters liveWriters_; ///< guards the inline fallback (throttled runs)
};

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_NANOS_HH
