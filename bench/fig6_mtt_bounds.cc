/**
 * @file
 * Reproduces Figure 6: MTT-derived maximum-speedup bounds for an 8-core
 * system, MS(t) = min(t / Lo, 8), with Lo measured from the Task-Chain
 * (1 dep) workload on each platform (Section VI-B2, Equation 1).
 *
 * Paper landmarks: at ~1000-cycle tasks Phentos bounds just below 3x
 * while every other platform is far below 1x; at ~10000 cycles Phentos
 * has saturated to 8x while the others remain under 1x.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hh"

using namespace picosim;
using namespace picosim::bench;

int
main()
{
    const unsigned n = quickMode() ? 64 : 256;
    const spec::RunSpec chain = canonicalSpec(
        "task-chain", {{"tasks", n}, {"deps", 1}, {"payload", 10}});

    const rt::RuntimeKind kinds[] = {
        rt::RuntimeKind::Phentos,
        rt::RuntimeKind::NanosRV,
        rt::RuntimeKind::NanosAXI,
        rt::RuntimeKind::NanosSW,
    };

    double lo[4];
    for (unsigned k = 0; k < 4; ++k) {
        spec::RunSpec s = chain;
        s.runtime = kinds[k];
        lo[k] = lifetimeOverhead(s);
    }

    std::printf("# Figure 6: MTT-derived maximum speedup, 8 cores\n");
    std::printf("# MS(t) = min(t / Lo, 8); Lo from Task-Chain (1 dep)\n");
    std::printf("%-12s", "task_size");
    for (unsigned k = 0; k < 4; ++k)
        std::printf(" %10s", std::string(rt::kindName(kinds[k])).c_str());
    std::printf("\n");

    for (double t = 100.0; t <= 100'000.0 * 1.01; t *= 1.2589254) { // 10^0.1
        std::printf("%-12.0f", t);
        for (unsigned k = 0; k < 4; ++k) {
            const double ms =
                lo[k] > 0 ? std::min(t / lo[k], 8.0) : 0.0;
            std::printf(" %10.3f", ms);
        }
        std::printf("\n");
    }

    std::printf("\n# Landmarks (paper: Phentos <3x at 1k, 8x by 10k; "
                "others <0.1x at 1k, <1x at 10k)\n");
    std::printf("MS(1000)  Phentos=%.2f others_max=%.3f\n",
                std::min(1000.0 / lo[0], 8.0),
                std::max({1000.0 / lo[1], 1000.0 / lo[2], 1000.0 / lo[3]}));
    std::printf("MS(10000) Phentos=%.2f others_max=%.3f\n",
                std::min(10000.0 / lo[0], 8.0),
                std::max({10000.0 / lo[1], 10000.0 / lo[2],
                          10000.0 / lo[3]}));
    return 0;
}
