/**
 * @file
 * Crash-recovery tests for the journaled JobManager: a manager pointed
 * at a journal directory must bring back queued jobs verbatim, keep
 * finished and cancelled jobs in their final states, and re-dispatch
 * runs that were in flight when the process died — producing results
 * bit-identical to a run that was never interrupted. Destroying the
 * manager mid-run stands in for the crash: like `kill -9`, it never
 * journals the in-flight rows (their cancellation is an artifact of
 * shutdown, not a user decision).
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>

#include "service/job_manager.hh"
#include "service/wire.hh"
#include "spec/engine.hh"
#include "spec/run_spec.hh"

using namespace picosim;
using namespace picosim::svc;
namespace fs = std::filesystem;

namespace
{

std::string
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

spec::RunSpec
quickSpec()
{
    spec::RunSpec s;
    s.workload = "task-free";
    s.wl = {{"tasks", 64}, {"deps", 1}, {"payload", 100}};
    s.canonicalize();
    return s;
}

/** Long enough (a serialized 20k-task chain) that the manager can be
 *  destroyed while the run is still simulating. */
spec::RunSpec
longSpec()
{
    spec::RunSpec s;
    s.workload = "task-chain";
    s.wl = {{"tasks", 20000}, {"deps", 1}, {"payload", 500}};
    s.canonicalize();
    return s;
}

JobSpec
singleRunJob(const spec::RunSpec &s)
{
    JobSpec js;
    js.runs = {s};
    return js;
}

JobManager::Params
journaled(const std::string &dir, bool paused = false)
{
    JobManager::Params p;
    p.workers = 2;
    p.journalDir = dir;
    p.checkpointEvery = 100'000;
    p.startPaused = paused;
    return p;
}

/** Result comparison key with the resume provenance zeroed — a
 *  recovered run resumes mid-stream, which is exactly the difference
 *  that must NOT leak into any other field. */
std::string
resultKey(const rt::RunResult &res)
{
    rt::RunResult r = res;
    r.resumedFromCycle = 0;
    return wire::runResultJson(r);
}

/** Poll until @p id reports Running (fails the test on a 60s stall). */
void
awaitRunning(JobManager &mgr, std::uint64_t id)
{
    const auto limit =
        std::chrono::steady_clock::now() + std::chrono::seconds(60);
    for (;;) {
        const auto st = mgr.status(id);
        ASSERT_TRUE(st.has_value());
        if (jobStateFinal(st->state) || st->state == JobState::Running)
            return;
        if (std::chrono::steady_clock::now() > limit)
            FAIL() << "job " << id << " never started";
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
}

} // namespace

TEST(JobStateNames, RoundTripThroughTheJournalSpelling)
{
    for (const JobState s :
         {JobState::Queued, JobState::Running, JobState::Done,
          JobState::Failed, JobState::Cancelled, JobState::TimedOut})
        EXPECT_EQ(jobStateFromName(jobStateName(s)), s);
    EXPECT_THROW(jobStateFromName("exploded"), spec::SpecError);
}

TEST(Recovery, QueuedJobSurvivesRestartVerbatim)
{
    const std::string dir = freshDir("recover_queued");
    std::uint64_t id = 0;
    {
        JobManager mgr(journaled(dir, /*paused=*/true));
        JobSpec js = singleRunJob(quickSpec());
        js.tag = "nightly-7";
        id = mgr.submit(std::move(js));
        // Destroyed while still queued: nothing ran, nothing finished.
    }

    JobManager mgr(journaled(dir, /*paused=*/true));
    const auto jobs = mgr.list();
    ASSERT_EQ(jobs.size(), 1u);
    EXPECT_EQ(jobs[0].id, id);
    EXPECT_EQ(jobs[0].state, JobState::Queued);
    EXPECT_EQ(jobs[0].tag, "nightly-7");
    EXPECT_EQ(jobs[0].runsTotal, 1u);
    EXPECT_EQ(jobs[0].runsDone, 0u);

    // The id sequence continues where the dead manager left off.
    EXPECT_EQ(mgr.submit(singleRunJob(quickSpec())), id + 1);

    mgr.resume();
    const JobStatus done = mgr.wait(id);
    EXPECT_EQ(done.state, JobState::Done);
    const auto row = mgr.waitRow(id, 0);
    ASSERT_TRUE(row.has_value() && row->done);
    EXPECT_EQ(resultKey(row->result),
              resultKey(spec::Engine::run(quickSpec())));
}

TEST(Recovery, FinishedJobKeepsItsRowsAcrossRestarts)
{
    const std::string dir = freshDir("recover_done");
    std::uint64_t id = 0;
    std::string rowBefore;
    std::string dumpBefore;
    {
        JobManager mgr(journaled(dir));
        JobSpec js = singleRunJob(quickSpec());
        js.captureStatDumps = true;
        id = mgr.submit(std::move(js));
        EXPECT_EQ(mgr.wait(id).state, JobState::Done);
        const auto row = mgr.waitRow(id, 0);
        ASSERT_TRUE(row.has_value() && row->done);
        rowBefore = wire::runResultJson(row->result);
        dumpBefore = row->statDump;
        ASSERT_FALSE(dumpBefore.empty());
    }

    // Two restarts: the second replays the compacted journal the first
    // one wrote, so compaction itself is covered.
    for (int restart = 0; restart < 2; ++restart) {
        JobManager mgr(journaled(dir, /*paused=*/true));
        const auto st = mgr.status(id);
        ASSERT_TRUE(st.has_value()) << "restart " << restart;
        EXPECT_EQ(st->state, JobState::Done);
        EXPECT_EQ(st->runsDone, 1u);
        const auto row = mgr.waitRow(id, 0);
        ASSERT_TRUE(row.has_value() && row->done);
        EXPECT_EQ(wire::runResultJson(row->result), rowBefore);
        EXPECT_EQ(row->statDump, dumpBefore);
    }
}

TEST(Recovery, CancelledJobStaysCancelled)
{
    const std::string dir = freshDir("recover_cancelled");
    std::uint64_t id = 0;
    {
        JobManager mgr(journaled(dir, /*paused=*/true));
        id = mgr.submit(singleRunJob(quickSpec()));
        EXPECT_TRUE(mgr.cancel(id));
    }

    JobManager mgr(journaled(dir));
    const JobStatus st = mgr.wait(id);
    EXPECT_EQ(st.state, JobState::Cancelled);
    EXPECT_EQ(st.runsDone, 0u);
    const auto row = mgr.waitRow(id, 0);
    ASSERT_TRUE(row.has_value());
    EXPECT_FALSE(row->done); // never ran, not even after recovery
}

TEST(Recovery, InterruptedRunResumesBitIdentically)
{
    const std::string dir = freshDir("recover_interrupted");
    std::uint64_t id = 0;
    {
        JobManager mgr(journaled(dir));
        id = mgr.submit(singleRunJob(longSpec()));
        awaitRunning(mgr, id);
        // Give the run time to pass some checkpoints, then "crash".
        std::this_thread::sleep_for(std::chrono::milliseconds(300));
    }

    JobManager mgr(journaled(dir));
    const JobStatus st = mgr.wait(id);
    EXPECT_EQ(st.state, JobState::Done);
    const auto row = mgr.waitRow(id, 0);
    ASSERT_TRUE(row.has_value() && row->done);
    EXPECT_EQ(row->result.status, rt::RunStatus::Ok);
    EXPECT_EQ(resultKey(row->result),
              resultKey(spec::Engine::run(longSpec())));
}

TEST(Recovery, DrainLeavesTheRunResumable)
{
    const std::string dir = freshDir("recover_drain");
    std::uint64_t id = 0;
    {
        JobManager mgr(journaled(dir));
        id = mgr.submit(singleRunJob(longSpec()));
        awaitRunning(mgr, id);
        mgr.drain();
        // Drained, not cancelled: the job is still live, its row is
        // unfinished, and new submissions are refused.
        const auto st = mgr.status(id);
        ASSERT_TRUE(st.has_value());
        EXPECT_FALSE(jobStateFinal(st->state));
        EXPECT_EQ(st->runsDone, 0u);
        EXPECT_THROW(mgr.submit(singleRunJob(quickSpec())),
                     spec::SpecError);
    }

    JobManager mgr(journaled(dir));
    EXPECT_EQ(mgr.wait(id).state, JobState::Done);
    const auto row = mgr.waitRow(id, 0);
    ASSERT_TRUE(row.has_value() && row->done);
    EXPECT_EQ(resultKey(row->result),
              resultKey(spec::Engine::run(longSpec())));
}
