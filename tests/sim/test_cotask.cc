/** @file Unit tests for the coroutine hart machinery. */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/clock.hh"
#include "sim/cotask.hh"

using namespace picosim;
using namespace picosim::sim;

namespace
{

/** Drive a HartContext until done or the cycle budget runs out. */
void
drive(Clock &clk, HartContext &ctx, Cycle budget = 100000)
{
    const Cycle end = clk.now() + budget;
    while (!ctx.done() && clk.now() < end) {
        ctx.tick();
        if (ctx.done())
            break;
        const Cycle wake = ctx.wakeAt();
        clk.advanceTo(wake == kCycleNever ? end
                                          : std::max(wake, clk.now() + 1));
    }
}

CoTask<void>
delayTwice(std::vector<Cycle> *trace, const Clock *clk)
{
    trace->push_back(clk->now());
    co_await Delay{10};
    trace->push_back(clk->now());
    co_await Delay{5};
    trace->push_back(clk->now());
}

CoTask<int>
leaf(const Clock *clk)
{
    co_await Delay{3};
    co_return static_cast<int>(clk->now());
}

CoTask<int>
middle(const Clock *clk)
{
    const int v = co_await leaf(clk);
    co_await Delay{2};
    co_return v + 100;
}

CoTask<void>
nested(const Clock *clk, int *out)
{
    *out = co_await middle(clk);
}

CoTask<void>
thrower()
{
    co_await Delay{1};
    throw std::runtime_error("boom");
}

CoTask<void>
awaitsThrower(bool *reached)
{
    co_await thrower();
    *reached = true;
}

} // namespace

TEST(CoTask, DelayAdvancesLocalTime)
{
    Clock clk;
    HartContext ctx(clk);
    std::vector<Cycle> trace;
    ctx.start(delayTwice(&trace, &clk));
    drive(clk, ctx);
    ASSERT_TRUE(ctx.done());
    ASSERT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace[0], 0u);
    EXPECT_EQ(trace[1], 10u);
    EXPECT_EQ(trace[2], 15u);
}

TEST(CoTask, NestedTasksPropagateValues)
{
    Clock clk;
    HartContext ctx(clk);
    int out = 0;
    ctx.start(nested(&clk, &out));
    drive(clk, ctx);
    ASSERT_TRUE(ctx.done());
    EXPECT_EQ(out, 103); // leaf returns 3, +100
    EXPECT_EQ(clk.now(), 5u);
}

TEST(CoTask, ExceptionsPropagateThroughAwaits)
{
    Clock clk;
    HartContext ctx(clk);
    bool reached = false;
    ctx.start(awaitsThrower(&reached));
    EXPECT_THROW(drive(clk, ctx), std::runtime_error);
    EXPECT_FALSE(reached);
}

TEST(CoTask, WaitUntilPollsPredicate)
{
    Clock clk;
    HartContext ctx(clk);
    bool flag = false;
    Cycle resumed_at = 0;
    auto body = [](bool *f, Cycle *at, const Clock *c) -> CoTask<void> {
        co_await WaitUntil{[f] { return *f; }};
        *at = c->now();
    };
    ctx.start(body(&flag, &resumed_at, &clk));
    // Run a few cycles: should not complete.
    for (int i = 0; i < 5; ++i) {
        ctx.tick();
        clk.advanceTo(clk.now() + 1);
    }
    EXPECT_FALSE(ctx.done());
    flag = true;
    ctx.tick();
    EXPECT_TRUE(ctx.done());
    EXPECT_EQ(resumed_at, clk.now());
}

TEST(CoTask, ZeroDelayDoesNotSuspend)
{
    Clock clk;
    HartContext ctx(clk);
    int steps = 0;
    auto body = [](int *s) -> CoTask<void> {
        co_await Delay{0};
        ++*s;
        co_await Delay{0};
        ++*s;
    };
    ctx.start(body(&steps));
    ctx.tick();
    EXPECT_TRUE(ctx.done());
    EXPECT_EQ(steps, 2);
}

TEST(CoTask, HartWakeAtReportsSleep)
{
    Clock clk;
    HartContext ctx(clk);
    auto body = []() -> CoTask<void> { co_await Delay{42}; };
    ctx.start(body());
    ctx.tick(); // runs to the delay
    EXPECT_EQ(ctx.wakeAt(), 42u);
    EXPECT_FALSE(ctx.runnable());
    clk.advanceTo(42);
    EXPECT_TRUE(ctx.runnable());
    ctx.tick();
    EXPECT_TRUE(ctx.done());
    EXPECT_EQ(ctx.wakeAt(), kCycleNever);
}

TEST(CoTask, ManySequentialChildrenReuseCleanly)
{
    Clock clk;
    HartContext ctx(clk);
    int sum = 0;
    auto child = [](int i) -> CoTask<int> {
        co_await Delay{1};
        co_return i;
    };
    auto body = [child](int *out) -> CoTask<void> {
        for (int i = 0; i < 100; ++i)
            *out += co_await child(i);
    };
    ctx.start(body(&sum));
    drive(clk, ctx);
    ASSERT_TRUE(ctx.done());
    EXPECT_EQ(sum, 4950);
    EXPECT_EQ(clk.now(), 100u);
}
