#include "runtime/task_types.hh"

#include "sim/log.hh"

namespace picosim::rt
{

const Task &
Program::taskById(std::uint64_t id) const
{
    constexpr std::size_t kInvalid = ~std::size_t{0};
    if (index_.size() != numTasks_) {
        index_.clear();
        index_.resize(numTasks_, kInvalid);
        for (std::size_t pos = 0; pos < actions.size(); ++pos) {
            const Action &a = actions[pos];
            if (a.kind == Action::Kind::Spawn)
                index_[a.task.id] = pos;
        }
    }
    if (id >= index_.size() || index_[id] == kInvalid)
        sim::fatal("Program::taskById: unknown task id");
    return actions[index_[id]].task;
}

} // namespace picosim::rt
