/**
 * @file
 * Scheduler topology: how many dependence-management shards the system
 * instantiates, how cores are grouped into clusters in front of them, and
 * the port-level timings of the fabric in between.
 *
 * The default (1 shard, 1 cluster) reproduces the paper's single
 * centralized Picos exactly — the sharded code path is not even
 * constructed, so the paper-reproduction goldens stay bit-identical.
 */

#ifndef PICOSIM_PICOS_TOPOLOGY_HH
#define PICOSIM_PICOS_TOPOLOGY_HH

#include "sim/types.hh"

namespace picosim::picos
{

struct TopologyParams
{
    /** Dependence-management shards (address-interleaved DCT slices). */
    unsigned schedShards = 1;

    /** Core clusters, each with its own submission/ready fabric and
     *  Picos Manager instance. */
    unsigned clusters = 1;

    /** Steal ready tasks from another cluster when the local ready
     *  scheduler runs dry. */
    bool workStealing = true;

    /** One-way latency of the cluster fabric -> shard gateway link. */
    Cycle clusterLinkCycles = 2;

    /** Latency of a forwarded cross-shard retirement notification. */
    Cycle xshardNotifyCycles = 4;

    /** Extra gateway cycles per dependence whose address is owned by a
     *  remote shard (the cross-shard table round trip). */
    Cycle xshardDepCycles = 2;

    /** Extra ready-issue cycles charged for a stolen task (the remote
     *  ready-queue access). */
    Cycle stealPenaltyCycles = 10;

    /** Decoded-descriptor slots buffered at each shard's gateway. */
    unsigned gatewayQueueDepth = 4;

    /**
     * Set by System when the scheduler runs in its own PDES domain: the
     * manager<->scheduler ports become cross-domain staging links, and
     * the cluster-link latency moves from the gateway arbiter into the
     * submission port so it can serve as conservative lookahead. An
     * opt-in timing configuration — bit-identical across host thread
     * counts, but not to the non-partitioned run.
     */
    bool pdesBoundaryPorts = false;

    /** True when the single centralized Picos path must be constructed. */
    bool
    singlePicos() const
    {
        return schedShards <= 1 && clusters <= 1;
    }
};

} // namespace picosim::picos

#endif // PICOSIM_PICOS_TOPOLOGY_HH
