/**
 * @file
 * JobManager: the job-oriented execution core every front-end shares.
 *
 * A worker pool pulls individual runs off admitted jobs in strict
 * admission (FIFO) order — run-granular dispatch, so one wide job keeps
 * all workers busy while later jobs wait their turn — and executes each
 * through spec::Engine on a private System. Per-run results stream into
 * the job's rows as they finish; observers block on wait()/waitRow().
 *
 * Cancellation and timeouts are cooperative: each job owns an
 * rt::CancelToken, and the job's wall-clock deadline (armed when its
 * first run is dispatched) rides the same RunControls. Both are polled
 * only at deterministic simulation boundaries, so cancelling one job
 * never perturbs the results of jobs running beside it — the bit-
 * identity contract the determinism tests pin down.
 *
 * Job-spec validation is exactly spec::RunSpec parsing: submitText()
 * forwards SpecError verbatim, "did you mean" suggestions included.
 */

#ifndef PICOSIM_SERVICE_JOB_MANAGER_HH
#define PICOSIM_SERVICE_JOB_MANAGER_HH

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "service/job.hh"
#include "service/job_queue.hh"
#include "service/journal.hh"

namespace picosim::svc
{

class JobManager
{
  public:
    struct Params
    {
        unsigned workers = 0;      ///< worker threads (0 = hw concurrency)
        std::size_t maxQueued = 0; ///< job admission cap (0 = unbounded)
        double defaultTimeoutSec = 0.0;  ///< used when JobSpec has none
        unsigned maxInFlightPerJob = 0;  ///< used when JobSpec has none
        bool startPaused = false;  ///< admit without dispatching (tests)

        /** Directory of the durable job journal ("" = volatile manager,
         *  the historical behavior). With a journal, submissions and
         *  finished rows survive a crash: the next manager pointed at
         *  the same directory re-queues unfinished jobs verbatim and
         *  resumes their missing runs from the last durable
         *  checkpoint. */
        std::string journalDir;

        /** Checkpoint stride (simulated cycles) for journaled runs.
         *  0 keeps runs checkpoint-free — recovery then restarts
         *  interrupted runs from cycle zero, which is always correct
         *  (the simulator is deterministic), just slower. */
        Cycle checkpointEvery = 0;
    };

    JobManager(); ///< default Params
    explicit JobManager(const Params &params);
    ~JobManager(); ///< cancels every live job, joins the pool

    JobManager(const JobManager &) = delete;
    JobManager &operator=(const JobManager &) = delete;

    /** Admit @p spec. Throws SpecError on an empty run list or a full
     *  queue. Returns the job id (monotonically increasing from 1). */
    std::uint64_t submit(JobSpec spec);

    /**
     * Parse @p text as one RunSpec (key=value or flat JSON; errors are
     * spec::SpecError verbatim), expand it exactly like `picosim_run`
     * (RunPlan: main run + serial baseline, × repeat) and submit the
     * expansion as one job. Canonicalization warnings land in
     * @p warnings when given.
     */
    std::uint64_t submitText(const std::string &text,
                             double timeoutSec = 0.0, std::string tag = {},
                             std::vector<std::string> *warnings = nullptr);

    /** Request cancellation. Queued jobs finalize immediately; running
     *  jobs stop at the next deterministic boundary. False when the id
     *  is unknown or the job already reached a final state. */
    bool cancel(std::uint64_t id);

    std::optional<JobStatus> status(std::uint64_t id) const;
    std::vector<JobStatus> list() const; ///< admission order

    /** Block until the job reaches a final state. */
    JobStatus wait(std::uint64_t id);

    /** wait() with a timeout; nullopt when still live after @p sec. */
    std::optional<JobStatus> waitFor(std::uint64_t id, double seconds);

    /** Block until run @p idx finished — or the job finalized without
     *  running it (row.done stays false). nullopt: unknown id/index. */
    std::optional<RunRow> waitRow(std::uint64_t id, std::size_t idx);

    /** Snapshot of all rows (finished or not) of @p id. */
    std::vector<RunRow> runRows(std::uint64_t id) const;

    /** Stop/resume dispatching (admission unaffected). Lets tests pin
     *  a known queue state before releasing the workers. */
    void pause();
    void resume();

    /**
     * Graceful shutdown: refuse new submissions, stop dispatching,
     * cancel in-flight runs at their next deterministic boundary
     * WITHOUT marking their jobs cancelled, and block until nothing is
     * in flight. Interrupted rows are left unfinished (and never
     * journaled), so a journaled manager restarted on the same
     * directory re-dispatches them — resuming from their last durable
     * checkpoint. Queued jobs stay queued.
     */
    void drain();

    unsigned workers() const { return workers_; }

  private:
    struct Rec; // one job's full bookkeeping (job_manager.cc)

    Rec *find(std::uint64_t id);
    const Rec *find(std::uint64_t id) const;
    Rec *pickRun(std::size_t &runIdx); // next dispatchable (job, run)
    void finalize(Rec &rec);           // called with lock_ held
    void workerLoop();
    void recover(const std::string &dir); // ctor: replay + compact

    const double defaultTimeoutSec_;
    const unsigned defaultMaxInFlight_;
    const Cycle checkpointEvery_;
    unsigned workers_ = 1;
    std::unique_ptr<Journal> journal_; ///< null = volatile manager

    mutable std::mutex lock_;
    std::condition_variable dispatchCv_; ///< workers: work available
    std::condition_variable resultCv_;   ///< observers: rows/state moved
    JobQueue queue_;
    std::map<std::uint64_t, std::unique_ptr<Rec>> jobs_;
    std::uint64_t lastId_ = 0;
    std::uint64_t startCounter_ = 0;
    bool paused_ = false;
    bool stopping_ = false;
    bool draining_ = false;
    std::vector<std::thread> pool_;
};

} // namespace picosim::svc

#endif // PICOSIM_SERVICE_JOB_MANAGER_HH
