#!/bin/sh
# End-to-end smoke of the picosim_serve daemon, gated as a ctest:
#
#   1. Start picosim_serve on an ephemeral port and parse the
#      "listening on" line.
#   2. Submit the golden blackscholes spec through picosim_submit and
#      require its stdout to be BYTE-IDENTICAL to running the same
#      spec locally with `picosim_run --spec` (the wire round-trip
#      acceptance criterion).
#   3. CANCEL leg: submit a long job, cancel it mid-flight through the
#      wire, and require both the streaming client and STATUS to
#      observe the cancelled state.
#   4. SHUTDOWN drains the server.
#
# Usage: server_roundtrip.sh <picosim_serve> <picosim_submit> <picosim_run>
set -u

SERVE=$1
SUBMIT=$2
RUN=$3

TMP=$(mktemp -d) || exit 1
SERVER_PID=
cleanup() {
    [ -n "$SERVER_PID" ] && kill "$SERVER_PID" 2>/dev/null
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "FAIL: $*" >&2
    exit 1
}

# -- 1. Start the server on an ephemeral port ---------------------------
"$SERVE" --port=0 --workers=2 >"$TMP/serve.out" 2>&1 &
SERVER_PID=$!

# Bounded retry with exponential backoff: quick on the happy path
# (first probes land within milliseconds), patient on a loaded CI box
# (delays double up to 1s; ~25s total budget), never unbounded.
PORT=
DELAY=0.05
i=0
while [ $i -lt 25 ]; do
    PORT=$(sed -n 's/.*listening on [0-9.]*:\([0-9]*\).*/\1/p' \
               "$TMP/serve.out")
    [ -n "$PORT" ] && break
    kill -0 "$SERVER_PID" 2>/dev/null \
        || fail "server died: $(cat "$TMP/serve.out")"
    sleep "$DELAY"
    DELAY=$(awk "BEGIN { d = $DELAY * 2; print (d > 1) ? 1 : d }")
    i=$((i + 1))
done
[ -n "$PORT" ] || fail "server never printed its listening line"

"$SUBMIT" --port="$PORT" --ping | grep -q PONG || fail "PING"

# -- 2. Byte-identical wire round trip on the golden spec ---------------
"$RUN" --workload=blackscholes --dump-spec >"$TMP/golden.spec" \
    || fail "dump-spec"
"$RUN" --spec "$TMP/golden.spec" >"$TMP/local.out" \
    || fail "local golden run"
"$SUBMIT" --port="$PORT" --spec="$TMP/golden.spec" \
    >"$TMP/remote.out" 2>"$TMP/remote.err" \
    || fail "submit: $(cat "$TMP/remote.err")"
diff -u "$TMP/local.out" "$TMP/remote.out" \
    || fail "served stdout differs from the local run"
grep -q "cycles    : 404299 (completed)" "$TMP/local.out" \
    || fail "golden cycle count missing from the report"

# -- 3. CANCEL a long job mid-flight ------------------------------------
cat >"$TMP/long.spec" <<EOF
workload=task-chain
wl.tasks=50000
wl.payload=1000
EOF
"$SUBMIT" --port="$PORT" --spec="$TMP/long.spec" --tag=longjob \
    --print=rows >"$TMP/cancel.out" 2>"$TMP/cancel.err" &
CLIENT_PID=$!

ID=
DELAY=0.05
i=0
while [ $i -lt 25 ]; do
    "$SUBMIT" --port="$PORT" --list >"$TMP/list.out" 2>/dev/null
    ID=$(sed -n 's/^JOB \([0-9]*\) .*tag="longjob".*/\1/p' \
             "$TMP/list.out" | head -n 1)
    [ -n "$ID" ] && break
    sleep "$DELAY"
    DELAY=$(awk "BEGIN { d = $DELAY * 2; print (d > 1) ? 1 : d }")
    i=$((i + 1))
done
[ -n "$ID" ] || fail "long job never appeared in LIST"

"$SUBMIT" --port="$PORT" --cancel="$ID" >/dev/null || fail "CANCEL"
wait "$CLIENT_PID" # non-zero by design: the job did not finish as done
grep -q "DONE cancelled" "$TMP/cancel.out" \
    || fail "streaming client did not observe the cancellation: \
$(cat "$TMP/cancel.out")"
"$SUBMIT" --port="$PORT" --status="$ID" | grep -q "state=cancelled" \
    || fail "STATUS does not report the cancelled state"

# -- 4. Drain -----------------------------------------------------------
"$SUBMIT" --port="$PORT" --shutdown >/dev/null || fail "SHUTDOWN"
wait "$SERVER_PID"
SERVER_PID=

echo "server round trip OK"
