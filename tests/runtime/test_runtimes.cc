/**
 * @file
 * Correctness tests of the four runtimes: every program completes, all
 * tasks execute exactly once, and dependence order is respected.
 */

#include <gtest/gtest.h>

#include "apps/workloads.hh"
#include "runtime/harness.hh"

using namespace picosim;
using namespace picosim::rt;

namespace
{

RunResult
run(RuntimeKind kind, const Program &prog, unsigned cores = 8)
{
    HarnessParams hp;
    hp.numCores = cores;
    hp.cycleLimit = 2'000'000'000ull;
    return runProgram(kind, prog, hp);
}

struct KindName
{
    template <typename T>
    std::string
    operator()(const ::testing::TestParamInfo<T> &info) const
    {
        std::string n{kindName(info.param)};
        for (char &c : n)
            if (c == '-')
                c = '_';
        return n;
    }
};

} // namespace

class RuntimeCorrectness : public ::testing::TestWithParam<RuntimeKind>
{
};

TEST_P(RuntimeCorrectness, EmptyProgramFinishes)
{
    Program prog;
    prog.name = "empty";
    prog.taskwait();
    const auto r = run(GetParam(), prog);
    EXPECT_TRUE(r.completed);
}

TEST_P(RuntimeCorrectness, SingleTaskRuns)
{
    Program prog;
    prog.name = "one";
    prog.spawn(5'000, {{0x100, Dir::Out}});
    prog.taskwait();
    const auto r = run(GetParam(), prog);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.tasks, 1u);
}

TEST_P(RuntimeCorrectness, IndependentTasksAllExecute)
{
    const Program prog = apps::taskFree(100, 2, 1'000);
    const auto r = run(GetParam(), prog);
    EXPECT_TRUE(r.completed);
}

TEST_P(RuntimeCorrectness, ChainCompletes)
{
    const Program prog = apps::taskChain(50, 1, 1'000);
    const auto r = run(GetParam(), prog);
    EXPECT_TRUE(r.completed);
}

TEST_P(RuntimeCorrectness, MaxDepsCompletes)
{
    const Program prog = apps::taskFree(40, 15, 500);
    const auto r = run(GetParam(), prog);
    EXPECT_TRUE(r.completed);
}

TEST_P(RuntimeCorrectness, InterleavedTaskwaitsComplete)
{
    Program prog;
    prog.name = "barriers";
    for (int phase = 0; phase < 5; ++phase) {
        for (int i = 0; i < 10; ++i)
            prog.spawn(2'000);
        prog.taskwait();
    }
    const auto r = run(GetParam(), prog);
    EXPECT_TRUE(r.completed);
    EXPECT_EQ(r.tasks, 50u);
}

TEST_P(RuntimeCorrectness, SingleCoreCompletes)
{
    const Program prog = apps::taskChain(20, 3, 500);
    const auto r = run(GetParam(), prog, 1);
    EXPECT_TRUE(r.completed);
}

TEST_P(RuntimeCorrectness, TwoCoreCompletes)
{
    const Program prog = apps::taskFree(60, 1, 2'000);
    const auto r = run(GetParam(), prog, 2);
    EXPECT_TRUE(r.completed);
}

TEST_P(RuntimeCorrectness, MoreTasksThanReservationEntries)
{
    // 600 tasks > 256 TRS entries: backpressure paths must not deadlock.
    const Program prog = apps::taskFree(600, 1, 300);
    const auto r = run(GetParam(), prog);
    EXPECT_TRUE(r.completed);
}

TEST_P(RuntimeCorrectness, ZeroDepTasksComplete)
{
    const Program prog = apps::taskFree(50, 0, 1'000);
    const auto r = run(GetParam(), prog);
    EXPECT_TRUE(r.completed);
}

INSTANTIATE_TEST_SUITE_P(AllRuntimes, RuntimeCorrectness,
                         ::testing::Values(RuntimeKind::NanosSW,
                                           RuntimeKind::NanosRV,
                                           RuntimeKind::NanosAXI,
                                           RuntimeKind::Phentos),
                         KindName{});

TEST(RuntimeOrdering, CoarseTasksScaleOnAllParallelRuntimes)
{
    // 64 x 500k-cycle independent tasks on 8 cores: every HW-assisted
    // runtime should achieve >4x; Nanos-SW >2x.
    const Program prog = apps::taskFree(64, 1, 500'000);
    HarnessParams hp;
    const auto serial = runProgram(RuntimeKind::Serial, prog, hp);
    ASSERT_TRUE(serial.completed);
    for (auto kind : {RuntimeKind::NanosRV, RuntimeKind::Phentos}) {
        auto r = runProgram(kind, prog, hp);
        ASSERT_TRUE(r.completed);
        r.serialCycles = serial.cycles;
        EXPECT_GT(r.speedup(), 4.0) << kindName(kind);
    }
    auto sw = runProgram(RuntimeKind::NanosSW, prog, hp);
    ASSERT_TRUE(sw.completed);
    sw.serialCycles = serial.cycles;
    EXPECT_GT(sw.speedup(), 2.0);
}

TEST(RuntimeOrdering, FineTasksSeparateThePlatforms)
{
    // 400 x 2k-cycle tasks: Phentos must clearly beat Nanos-RV, which
    // must clearly beat Nanos-SW (the paper's core claim).
    const Program prog = apps::taskFree(400, 1, 2'000);
    HarnessParams hp;
    const auto ph = runProgram(RuntimeKind::Phentos, prog, hp);
    const auto rv = runProgram(RuntimeKind::NanosRV, prog, hp);
    const auto sw = runProgram(RuntimeKind::NanosSW, prog, hp);
    ASSERT_TRUE(ph.completed && rv.completed && sw.completed);
    EXPECT_LT(ph.cycles * 2, rv.cycles);
    EXPECT_LT(rv.cycles, sw.cycles);
}

TEST(RuntimeOrdering, SerialBaselineMatchesPayloadSum)
{
    const Program prog = apps::taskFree(50, 1, 10'000);
    HarnessParams hp;
    const auto r = runProgram(RuntimeKind::Serial, prog, hp);
    ASSERT_TRUE(r.completed);
    // Serial run = payloads + small per-task call overhead.
    EXPECT_GE(r.cycles, prog.serialPayloadCycles());
    EXPECT_LE(r.cycles, prog.serialPayloadCycles() + 50u * 50u);
}

TEST(Harness, RunWithSpeedupFillsBaseline)
{
    const Program prog = apps::taskFree(20, 1, 50'000);
    const auto r = runWithSpeedup(RuntimeKind::Phentos, prog);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.serialCycles, 0u);
    EXPECT_GT(r.speedup(), 1.0);
}
