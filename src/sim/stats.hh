/**
 * @file
 * Minimal gem5-flavoured statistics package.
 *
 * Components register named scalars/histograms with a StatGroup; harness
 * code dumps them as text or consumes them programmatically.
 */

#ifndef PICOSIM_SIM_STATS_HH
#define PICOSIM_SIM_STATS_HH

#include <algorithm>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace picosim::sim
{

/** A named accumulating counter. */
class Scalar
{
  public:
    Scalar() = default;

    Scalar &operator+=(double v) { value_ += v; return *this; }
    Scalar &operator++() { value_ += 1.0; return *this; }
    void set(double v) { value_ = v; }
    double value() const { return value_; }
    void reset() { value_ = 0.0; }

  private:
    double value_ = 0.0;
};

/** A simple sample-statistics accumulator (count/sum/min/max/mean). */
class Distribution
{
  public:
    void
    sample(double v)
    {
        if (count_ == 0) {
            min_ = max_ = v;
        } else {
            min_ = std::min(min_, v);
            max_ = std::max(max_, v);
        }
        sum_ += v;
        sumSq_ += v * v;
        ++count_;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }

    double
    variance() const
    {
        if (count_ < 2)
            return 0.0;
        const double m = mean();
        return sumSq_ / count_ - m * m;
    }

    void
    reset()
    {
        count_ = 0;
        sum_ = sumSq_ = min_ = max_ = 0.0;
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * A flat registry of named statistics. Hierarchy is encoded in the names
 * ("picos.readyQueue.pops") like gem5's stat dump.
 */
class StatGroup
{
  public:
    Scalar &scalar(const std::string &name) { return scalars_[name]; }
    Distribution &dist(const std::string &name) { return dists_[name]; }

    bool hasScalar(const std::string &name) const
    {
        return scalars_.count(name) > 0;
    }

    double
    scalarValue(const std::string &name) const
    {
        auto it = scalars_.find(name);
        return it == scalars_.end() ? 0.0 : it->second.value();
    }

    /**
     * Sum of every scalar whose name starts with @p prefix and ends with
     * @p suffix — aggregates per-instance port stats ("manager.c3
     * .routingQueue.pushStalls") across replicated components.
     */
    double
    sumScalars(const std::string &prefix, const std::string &suffix) const
    {
        double sum = 0.0;
        for (auto it = scalars_.lower_bound(prefix);
             it != scalars_.end() && it->first.compare(0, prefix.size(),
                                                       prefix) == 0;
             ++it) {
            const std::string &name = it->first;
            if (name.size() >= suffix.size() &&
                name.compare(name.size() - suffix.size(), suffix.size(),
                             suffix) == 0)
                sum += it->second.value();
        }
        return sum;
    }

    void
    reset()
    {
        for (auto &kv : scalars_)
            kv.second.reset();
        for (auto &kv : dists_)
            kv.second.reset();
    }

    /** Dump all statistics, sorted by name, as "name value" lines. */
    void dump(std::ostream &os) const;

  private:
    std::map<std::string, Scalar> scalars_;
    std::map<std::string, Distribution> dists_;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_STATS_HH
