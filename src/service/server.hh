/**
 * @file
 * Server: the picosim_serve daemon core — a plain-TCP line-protocol
 * front-end over a JobManager (wire.hh documents the protocol).
 *
 * One thread per connection; every connection talks to the same
 * JobManager, so jobs submitted over different connections share the
 * worker pool, the admission queue, and the id space. RESULT streams
 * rows in run order as they complete, which lets a client print a
 * partial report while later runs are still simulating.
 */

#ifndef PICOSIM_SERVICE_SERVER_HH
#define PICOSIM_SERVICE_SERVER_HH

#include <atomic>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/job_manager.hh"
#include "service/wire.hh"

namespace picosim::svc
{

struct ServerParams
{
    std::string host = "127.0.0.1";
    unsigned short port = 0; ///< 0: ephemeral, read back via port()
    JobManager::Params manager{};
};

class Server
{
  public:
    /** Binds and listens (throws std::runtime_error on failure); the
     *  job manager starts immediately. */
    explicit Server(const ServerParams &params);
    ~Server();

    Server(const Server &) = delete;
    Server &operator=(const Server &) = delete;

    unsigned short port() const { return port_; }
    const std::string &host() const { return host_; }
    JobManager &manager() { return manager_; }

    /** Accept loop; returns after stop() / a SHUTDOWN verb, with every
     *  connection thread joined. */
    void serveForever();

    /** Ask serveForever() to wind down (callable from any thread). */
    void stop();

  private:
    void handleClient(int fd);
    void cmdSubmit(int fd, wire::LineReader &in, const std::string &line);
    void cmdResult(int fd, std::uint64_t id);

    std::string host_;
    unsigned short port_ = 0;
    int listenFd_ = -1;
    std::atomic<bool> stopping_{false};
    JobManager manager_;
    std::mutex connLock_;
    std::vector<std::thread> connections_;

    /** Live client fds (under connLock_). serveForever() shuts them
     *  down before joining, so an idle client blocked in recv() cannot
     *  stall shutdown forever. handleClient removes its fd before
     *  closing it — the list never holds a closed (reusable) fd. */
    std::vector<int> clientFds_;
};

} // namespace picosim::svc

#endif // PICOSIM_SERVICE_SERVER_HH
