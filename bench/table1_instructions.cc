/**
 * @file
 * Reproduces Table I: the seven custom task-scheduling instructions,
 * their encodings and blocking semantics, validated against the live
 * delegate model (a one-task round trip driven instruction by
 * instruction).
 */

#include <cstdio>

#include "cpu/system.hh"
#include "rocc/rocc_inst.hh"
#include "rocc/task_packets.hh"
#include "spec/engine.hh"

using namespace picosim;
using namespace picosim::rocc;

int
main()
{
    std::printf("# Table I: supported custom task scheduling "
                "instructions\n");
    std::printf("%-20s %-8s %-10s %-5s %-5s %-4s\n", "name", "funct7",
                "blocking", "rs1", "rs2", "rd");
    for (unsigned f = 0; f < kNumTaskInsts; ++f) {
        const auto funct = static_cast<TaskFunct>(f);
        const InstSignature sig = signatureOf(funct);
        std::printf("%-20s %-8u %-10s %-5s %-5s %-4s\n",
                    std::string(functName(funct)).c_str(), f,
                    isNonBlocking(funct) ? "no" : "yes",
                    sig.usesRs1 ? "yes" : "-", sig.usesRs2 ? "yes" : "-",
                    sig.writesRd ? "yes" : "-");
    }

    // Validate semantics with a live single-task round trip on core 0.
    spec::RunSpec rs;
    rs.cores = 1;
    rs.canonicalize();
    const auto sysPtr = spec::Engine::makeSystem(rs);
    cpu::System &sys = *sysPtr;
    auto &del = sys.delegateOf(0);
    auto &sim = sys.simulator();

    TaskDescriptor desc;
    desc.swId = 77;
    desc.deps = {{0x1000, Dir::InOut}};
    const auto pkts = encodeNonZero(desc);

    bool ok = del.submissionRequest(static_cast<unsigned>(pkts.size()));
    std::printf("\n# Live round trip\nSubmissionRequest(%zu) -> %s\n",
                pkts.size(), ok ? "ok" : "fail");
    for (std::size_t i = 0; i < pkts.size(); i += 3) {
        const std::uint64_t rs1 =
            (static_cast<std::uint64_t>(pkts[i]) << 32) | pkts[i + 1];
        del.submitThreePackets(rs1, pkts[i + 2]);
    }
    std::printf("SubmitThreePackets x%zu -> ok\n", pkts.size() / 3);
    del.readyTaskRequest();
    std::printf("ReadyTaskRequest -> ok\n");

    // Let the hardware process the descriptor.
    sim.run([&] { return del.fetchSwId().has_value(); }, 10000);
    const auto sw = del.fetchSwId();
    const auto pid = del.fetchPicosId();
    if (!sw || !pid) {
        std::printf("FAILED: ready tuple never delivered\n");
        return 1;
    }
    std::printf("FetchSwId -> %llu (expected 77)\n",
                static_cast<unsigned long long>(*sw));
    std::printf("FetchPicosId -> %u\n", *pid);
    del.retireTask(*pid);
    sim.run([&] { return sys.picos().quiescent(); }, 10000);
    std::printf("RetireTask -> retired, Picos quiescent: %s\n",
                sys.picos().quiescent() ? "yes" : "no");
    return 0;
}
