#include "runtime/serial.hh"

namespace picosim::rt
{

sim::CoTask<void>
Serial::thread(cpu::HartApi &api, const Program &prog)
{
    for (const Action &a : prog.actions) {
        if (a.kind != Action::Kind::Spawn)
            continue; // taskwait is a no-op serially
        co_await api.delay(cm_.call);
        co_await api.executePayload(a.task.payload);
        ++executed_;
    }
    finished_ = true;
}

void
Serial::install(cpu::System &sys, const Program &prog)
{
    sys.installThread(0, thread(sys.hartApi(0), prog));
}

} // namespace picosim::rt
