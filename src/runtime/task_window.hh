/**
 * @file
 * Hardware task-window sizing shared by the Phentos and Nanos models.
 *
 * A nested program can wedge the dependence accelerator: every
 * reservation-station entry held by a *blocked parent* (scoped taskwait)
 * whose children cannot be submitted leaves nothing ready to execute.
 * The runtimes therefore bound their hardware-in-flight task count below
 * the accelerator's structural capacity; past the bound the spawner
 * drains its own children and runs new ones inline.
 */

#ifndef PICOSIM_RUNTIME_TASK_WINDOW_HH
#define PICOSIM_RUNTIME_TASK_WINDOW_HH

#include <algorithm>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "picos/picos_params.hh"
#include "rocc/task_packets.hh"
#include "sim/log.hh"

namespace picosim::rt
{

/**
 * In-flight limit that keeps the accelerator's reservation station and
 * dependence table from saturating: structural capacity (table capacity
 * scaled by the program's worst-case dependence count) minus a margin
 * for the retire pipeline and one in-flight submission per core.
 */
inline std::uint64_t
taskWindowLimit(const picos::PicosParams &pp, unsigned num_cores,
                unsigned max_deps)
{
    const std::uint64_t margin = pp.retireQueueDepth + num_cores + 2;
    const std::uint64_t trs_cap =
        pp.trsEntries > margin ? pp.trsEntries - margin : 1;
    const std::uint64_t dct_entries =
        static_cast<std::uint64_t>(pp.dctSets) * pp.dctWays;
    std::uint64_t dep_cap = dct_entries / std::max(1u, max_deps);
    dep_cap = dep_cap > margin ? dep_cap - margin : 1;
    return std::max<std::uint64_t>(1, std::min(trs_cap, dep_cap));
}

/**
 * Live-writer ledger guarding the inline fallback. Inline execution
 * bypasses the dependence hardware on the contract that the task's
 * earlier siblings — the only tasks OmpSs dependences may name — have
 * drained. The ledger makes a contract violation loud instead of
 * silently corrupting the simulated schedule: writers (Out/InOut) of
 * every hardware-in-flight task are counted per address, and a task
 * about to run inline must not touch an address with a live writer.
 */
using LiveWriters = std::unordered_map<Addr, std::uint32_t>;

inline void
registerWriters(LiveWriters &writers, const std::vector<rocc::TaskDep> &deps)
{
    for (const rocc::TaskDep &dep : deps) {
        if (dep.dir != rocc::Dir::In)
            ++writers[dep.addr];
    }
}

inline void
releaseWriters(LiveWriters &writers, const std::vector<rocc::TaskDep> &deps)
{
    for (const rocc::TaskDep &dep : deps) {
        if (dep.dir == rocc::Dir::In)
            continue;
        const auto it = writers.find(dep.addr);
        if (it != writers.end() && --it->second == 0)
            writers.erase(it);
    }
}

/** Fail loudly when @p deps touch an address with a live writer. */
inline void
checkInlineSafe(const LiveWriters &writers,
                const std::vector<rocc::TaskDep> &deps)
{
    for (const rocc::TaskDep &dep : deps) {
        if (writers.count(dep.addr))
            sim::fatal("inline fallback would violate a dependence: an "
                       "in-flight task still writes a monitored address "
                       "of the task being inlined (nested dependences "
                       "must only name earlier siblings)");
    }
}

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_TASK_WINDOW_HH
