/**
 * @file
 * Timed port/interconnect primitives.
 *
 * Three building blocks, all layered on the event kernel's requestWake()
 * contract so producers and consumers on different components stay
 * bit-identical between EvalMode::EventDriven and EvalMode::TickWorld:
 *
 *  - LinkTimings: the latency configuration of a request/response link.
 *    A tightly-coupled (RoCC) link is {issue≈2, response=0}; the paper's
 *    loosely-coupled AXI baseline is {issue=MMIO write, response=MMIO
 *    read} — the coupling gap becomes a configuration, not bespoke code.
 *  - Arbiter: a shared resource (bus, DRAM port) granted FCFS with a
 *    per-grant occupancy. Grants serialize; waiting shows up as stall
 *    cycles in the stats. All bookkeeping is cycle arithmetic, so the
 *    schedule is independent of when (or how often) components tick.
 *  - TimedPort<T>: a bounded request queue between two components —
 *    TimedFifo semantics (capacity backpressure, visibility latency)
 *    plus width-limited acceptance (at most `width` items become visible
 *    per cycle) and per-port contention statistics. An optional owner
 *    component is woken exactly as the hand-written manager code used
 *    to: pushes wake at the front element's ready cycle, freeing space
 *    with popAndWakeOwner() wakes at the current cycle.
 */

#ifndef PICOSIM_SIM_PORT_HH
#define PICOSIM_SIM_PORT_HH

#include <algorithm>
#include <cstddef>
#include <string>
#include <utility>

#include "sim/clock.hh"
#include "sim/kernel.hh"
#include "sim/ring.hh"
#include "sim/log.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/types.hh"

namespace picosim::sim
{

/** Latency configuration of a request/response link. */
struct LinkTimings
{
    /** One-way cost of issuing a command/request over the link. */
    Cycle issue = 0;

    /** Cost of reading a response/status back over the link. */
    Cycle response = 0;
};

/** Parameters of one timed port. */
struct PortParams
{
    /** Maximum resident elements (backpressure beyond this). */
    std::size_t capacity = 1;

    /** Cycles before an accepted element is visible to the consumer. */
    Cycle latency = 0;

    /** Elements accepted per cycle; 0 = unlimited (plain TimedFifo). */
    unsigned width = 0;
};

/**
 * A shared resource granted first-come-first-served with per-grant
 * occupancy. grant() returns the cycle the resource starts serving the
 * request; the resource is busy until grant + occupancy. Because the
 * free-at horizon is plain cycle arithmetic, callers may reserve future
 * cycles — the schedule never depends on evaluation sparsity.
 */
class Arbiter
{
  public:
    /**
     * @param stats Optional stat registry; pass nullptr for stat-free use.
     * @param name Stat prefix, e.g. "port.membus".
     */
    Arbiter(StatGroup *stats, const std::string &name)
    {
        if (stats) {
            grants_ = &stats->scalar(name + ".grants");
            busyCycles_ = &stats->scalar(name + ".busyCycles");
            stallCycles_ = &stats->scalar(name + ".stallCycles");
        }
    }

    /**
     * Reserve the resource for a request ready at @p ready, occupying it
     * for @p occupancy cycles. @return the grant (service start) cycle.
     */
    Cycle
    grant(Cycle ready, Cycle occupancy)
    {
        const Cycle g = std::max(ready, freeAt_);
        freeAt_ = g + occupancy;
        if (grants_) {
            ++*grants_;
            *busyCycles_ += static_cast<double>(occupancy);
            *stallCycles_ += static_cast<double>(g - ready);
        }
        return g;
    }

    /** First cycle at which a new request would be served immediately. */
    Cycle freeAt() const { return freeAt_; }

    void reset() { freeAt_ = 0; }

  private:
    Cycle freeAt_ = 0;
    // Cached registry entries (map nodes are stable); null when stat-free.
    Scalar *grants_ = nullptr;
    Scalar *busyCycles_ = nullptr;
    Scalar *stallCycles_ = nullptr;
};

/**
 * A bounded, width-limited, latency-charged queue between a producer and
 * a consumer component. The consumer (owner) is woken through the kernel
 * on pushes; a producer blocked on a full port shows up as push stalls.
 */
template <typename T>
class TimedPort
{
  public:
    /**
     * @param owner Component woken on pushes / popAndWakeOwner() frees.
     *        May be nullptr for ports internal to a single component.
     */
    TimedPort(const Clock &clock, const PortParams &params,
              StatGroup *stats = nullptr, const std::string &name = {},
              Ticked *owner = nullptr)
        : clock_(clock), params_(params), owner_(owner)
    {
        if (stats) {
            pushes_ = &stats->scalar(name + ".pushes");
            pushStalls_ = &stats->scalar(name + ".pushStalls");
            queued_ = &stats->dist(name + ".queued");
        }
    }

    std::size_t capacity() const { return params_.capacity; }

    /**
     * Occupancy as the PRODUCER sees it. In cross-domain staging mode
     * this is the window-start snapshot of resident items (creditSize_)
     * plus everything staged since — consumer pops inside the current
     * window don't free credit until the next boundary, a conservative
     * view that is identical at every host thread count.
     */
    std::size_t
    size() const
    {
        return staging_ ? creditSize_ + staged_.size() : items_.size();
    }

    bool empty() const { return size() == 0; }
    bool full() const { return size() >= params_.capacity; }

    /** True when a producer may push this cycle. */
    bool canPush() const { return !full(); }

    /** True when the consumer can see and pop the front element now. */
    bool
    frontReady() const
    {
        return !items_.empty() && items_.front().readyAt <= clock_.now();
    }

    /**
     * Push; returns false (and counts a stall) when full. On success the
     * owner is woken at the front element's ready cycle — the cycle at
     * which the port next has consumable work.
     */
    bool
    push(T value)
    {
        if (full()) {
            if (pushStalls_)
                ++*pushStalls_;
            return false;
        }
        if (staging_) {
            // Cross-domain: record (send cycle, value) in the producer-
            // owned staging ring; the window-boundary drain replays the
            // accept/latency arithmetic and wakes the owner. Nothing on
            // this path touches consumer-owned state.
            staged_.push_back(
                StagedSlot{producerClock_->now(), std::move(value)});
            if (pushes_) {
                ++*pushes_;
                queued_->sample(static_cast<double>(size()));
            }
            return true;
        }
        items_.push_back(Slot{acceptCycle(clock_.now()) + params_.latency,
                              std::move(value)});
        if (pushes_) {
            ++*pushes_;
            queued_->sample(static_cast<double>(items_.size()));
        }
        if (owner_)
            owner_->requestWake(items_.front().readyAt);
        return true;
    }

    /** Front element; only valid when frontReady(). */
    const T &
    front() const
    {
        if (!frontReady())
            panic("TimedPort::front on not-ready port");
        return items_.front().value;
    }

    /** Pop and return the front element; only valid when frontReady(). */
    T
    pop()
    {
        if (!frontReady())
            panic("TimedPort::pop on not-ready port");
        T value = std::move(items_.front().value);
        items_.pop_front();
        return value;
    }

    /**
     * Pop from outside the owner, waking it this cycle: freed space (or
     * consumed output) may let the owner's pipelines advance.
     */
    T
    popAndWakeOwner()
    {
        if (owner_)
            owner_->requestWake(clock_.now());
        return pop();
    }

    void
    clear()
    {
        items_.clear();
        staged_.clear();
        creditSize_ = 0;
        acceptAt_ = 0;
        acceptUsed_ = 0;
    }

    /**
     * Earliest cycle at which the front element becomes consumable, or
     * kCycleNever when empty. Used by components' wakeAt() logic.
     */
    Cycle
    nextReadyCycle() const
    {
        return items_.empty() ? kCycleNever : items_.front().readyAt;
    }

    const PortParams &params() const { return params_; }

    /** Re-bind the owner (consumer) woken on pushes and drains. */
    void setOwner(Ticked *owner) { owner_ = owner; }

    /**
     * Put the port in cross-domain staging mode: the producer lives in a
     * different PDES domain than the consumer (this port's clock_ must be
     * the CONSUMER domain's clock). Pushes stage producer-side; the
     * registered drain replays them at each window boundary. The port's
     * latency becomes a lookahead bound, so it must be >= 1.
     */
    void
    enableCrossDomainStaging(Simulator &sim, const Clock &producerClock)
    {
        if (params_.latency == 0)
            panic("cross-domain TimedPort requires latency >= 1");
        staging_ = true;
        producerClock_ = &producerClock;
        creditSize_ = items_.size();
        sim.registerCrossDomainLink(params_.latency,
                                    [this] { drainStaged(); });
    }

  private:
    struct Slot
    {
        Cycle readyAt;
        T value;
    };

    struct StagedSlot
    {
        Cycle sendCycle;
        T value;
    };

    /**
     * Window-boundary replay of staged pushes: identical accept/latency
     * arithmetic to the plain push() path, anchored at each recorded
     * send cycle, with the owner woken exactly as a live push would
     * have. Replay cannot overflow: the producer-view admission bound
     * (creditSize_ + staged) <= capacity, and items_ never exceeds
     * creditSize_ inside a window.
     */
    void
    drainStaged()
    {
        while (!staged_.empty()) {
            StagedSlot s = std::move(staged_.front());
            staged_.pop_front();
            items_.push_back(Slot{acceptCycle(s.sendCycle) +
                                      params_.latency,
                                  std::move(s.value)});
            if (owner_)
                owner_->requestWake(items_.front().readyAt);
        }
        creditSize_ = items_.size(); // refresh the producer's credit
    }

    /** Width arbitration: the cycle a push at @p now is accepted. */
    Cycle
    acceptCycle(Cycle now)
    {
        if (params_.width == 0)
            return now;
        if (now > acceptAt_) {
            acceptAt_ = now;
            acceptUsed_ = 0;
        }
        if (acceptUsed_ >= params_.width) {
            ++acceptAt_;
            acceptUsed_ = 0;
        }
        ++acceptUsed_;
        return acceptAt_;
    }

    const Clock &clock_;
    PortParams params_;
    Ticked *owner_;
    Ring<Slot> items_;
    Cycle acceptAt_ = 0;     ///< cycle whose acceptance slots are in use
    unsigned acceptUsed_ = 0; ///< slots consumed in acceptAt_

    // -- Cross-domain staging (PDES mode only) --
    bool staging_ = false;
    const Clock *producerClock_ = nullptr;
    std::size_t creditSize_ = 0;  ///< items_ snapshot at the last drain
    Ring<StagedSlot> staged_;     ///< producer-owned pending pushes
    // Cached registry entries; null when stat-free.
    Scalar *pushes_ = nullptr;
    Scalar *pushStalls_ = nullptr;
    Distribution *queued_ = nullptr;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_PORT_HH
