/**
 * @file
 * picosim_serve: the experiment daemon. Listens on a plain TCP socket
 * and executes submitted RunSpecs through the shared JobManager (the
 * same execution path `picosim_run` uses in-process). The protocol is
 * documented in src/service/wire.hh; `picosim_submit` is the matching
 * client.
 *
 * Usage:
 *   picosim_serve [--port=N] [--host=ADDR] [--workers=N]
 *                 [--max-queued=N] [--timeout=SEC]
 *                 [--journal=DIR] [--checkpoint-every=N]
 *
 *   --port       listen port (default 0 = ephemeral; the chosen port is
 *                printed on the "listening" line for scripts to parse)
 *   --host       bind address (default 127.0.0.1)
 *   --workers    simulation worker threads (default: hardware
 *                concurrency)
 *   --max-queued job admission cap (default 0 = unbounded)
 *   --timeout    default per-job wall-clock budget in seconds
 *                (default 0 = none; SUBMIT timeout= overrides)
 *   --journal    durable job journal directory: submissions and
 *                finished runs survive a crash, and a restarted daemon
 *                pointed at the same directory re-queues unfinished
 *                jobs and resumes them from their last checkpoint
 *   --checkpoint-every  checkpoint stride in simulated cycles for
 *                journaled runs (default 0 = restart interrupted runs
 *                from cycle zero — always correct, just slower)
 *
 * The server runs until a client sends SHUTDOWN (exit 0) or it receives
 * SIGTERM/SIGINT (exit 3). Both paths drain: dispatching stops,
 * in-flight runs checkpoint and stop at their next deterministic
 * boundary, and the journal is flushed before the process exits —
 * nothing submitted is lost.
 */

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.hh"

using namespace picosim;

namespace
{

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr,
                 "%s\nusage: picosim_serve [--port=N] [--host=ADDR] "
                 "[--workers=N] [--max-queued=N] [--timeout=SEC] "
                 "[--journal=DIR] [--checkpoint-every=N]\n",
                 msg);
    std::exit(1);
}

/** Distinct exit status for a signal-initiated (drained) shutdown, so
 *  supervisors can tell "asked to stop, wound down cleanly" from both
 *  a client SHUTDOWN (0) and a startup/runtime failure (1). */
constexpr int kExitDrained = 3;

volatile std::sig_atomic_t g_signalled = 0;
svc::Server *g_server = nullptr;

/** Handler body is async-signal-safe: one flag store plus
 *  Server::stop() (an atomic exchange and shutdown(2)). */
void
onSignal(int)
{
    g_signalled = 1;
    if (g_server != nullptr)
        g_server->stop();
}

} // namespace

int
main(int argc, char **argv)
{
    svc::ServerParams params;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::size_t eq = arg.find('=');
        if (arg.rfind("--", 0) != 0 || eq == std::string::npos)
            usage(("bad argument '" + arg + "'").c_str());
        const std::string key = arg.substr(2, eq - 2);
        const std::string value = arg.substr(eq + 1);
        char *end = nullptr;
        if (key == "port") {
            const unsigned long v = std::strtoul(value.c_str(), &end, 10);
            if (*end != '\0' || v > 65535)
                usage("--port expects a port number");
            params.port = static_cast<unsigned short>(v);
        } else if (key == "host") {
            params.host = value;
        } else if (key == "workers") {
            const unsigned long v = std::strtoul(value.c_str(), &end, 10);
            if (*end != '\0' || v > 4096)
                usage("--workers expects an integer in [0, 4096]");
            params.manager.workers = static_cast<unsigned>(v);
        } else if (key == "max-queued") {
            const unsigned long v = std::strtoul(value.c_str(), &end, 10);
            if (*end != '\0')
                usage("--max-queued expects an integer");
            params.manager.maxQueued = v;
        } else if (key == "timeout") {
            params.manager.defaultTimeoutSec =
                std::strtod(value.c_str(), &end);
            if (*end != '\0' || params.manager.defaultTimeoutSec < 0)
                usage("--timeout expects seconds");
        } else if (key == "journal") {
            if (value.empty())
                usage("--journal expects a directory");
            params.manager.journalDir = value;
        } else if (key == "checkpoint-every") {
            const unsigned long long v =
                std::strtoull(value.c_str(), &end, 10);
            if (*end != '\0')
                usage("--checkpoint-every expects a cycle count");
            params.manager.checkpointEvery = v;
        } else {
            usage(("unknown flag '--" + key + "'").c_str());
        }
    }

    try {
        svc::Server server(params);
        g_server = &server;
        struct sigaction sa = {};
        sa.sa_handler = onSignal;
        ::sigaction(SIGTERM, &sa, nullptr);
        ::sigaction(SIGINT, &sa, nullptr);

        // Scripts parse this exact line (and its flush) to learn the
        // ephemeral port before connecting.
        std::printf("picosim_serve listening on %s:%u\n",
                    server.host().c_str(),
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        server.serveForever();

        // Wind down before the manager is destroyed: in-flight runs
        // stop at their next deterministic boundary and stay resumable
        // (journaled mode), queued jobs stay queued in the journal.
        server.manager().drain();
        g_server = nullptr;
        if (g_signalled != 0) {
            std::printf("picosim_serve drained on signal\n");
            return kExitDrained;
        }
        std::printf("picosim_serve shut down\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "picosim_serve: %s\n", e.what());
        return 1;
    }
}
