/**
 * @file
 * Reproduces Figure 7: lifetime Task Scheduling overhead (cycles per task)
 * for Task-Free / Task-Chain x {1, 15} dependences on the four platforms.
 *
 * Paper reference values (Rocket-Chip-equivalent cycles):
 *
 *                Task-Free 1   Task-Free 15   Task-Chain 1   Task-Chain 15
 *   Phentos            185           320            329            423
 *   Nanos-RV         12348         13143          12835          12393
 *   Nanos-AXI        13426         17042          18459          18668
 *   Nanos-SW         25208         99008          35867          58214
 */

#include <cstdio>

#include "bench/bench_util.hh"

using namespace picosim;

int
main()
{
    const unsigned n = bench::quickMode() ? 64 : 256;
    const std::uint64_t payload = 10; // near-empty task bodies

    struct Col
    {
        const char *label;
        spec::RunSpec spec;
    };
    Col cols[] = {
        {"Task-Free 1dep",
         bench::canonicalSpec("task-free", {{"tasks", n},
                                            {"deps", 1},
                                            {"payload", payload}})},
        {"Task-Free 15deps",
         bench::canonicalSpec("task-free", {{"tasks", n},
                                            {"deps", 15},
                                            {"payload", payload}})},
        {"Task-Chain 1dep",
         bench::canonicalSpec("task-chain", {{"tasks", n},
                                             {"deps", 1},
                                             {"payload", payload}})},
        {"Task-Chain 15deps",
         bench::canonicalSpec("task-chain", {{"tasks", n},
                                             {"deps", 15},
                                             {"payload", payload}})},
    };
    const rt::RuntimeKind kinds[] = {
        rt::RuntimeKind::Phentos,
        rt::RuntimeKind::NanosRV,
        rt::RuntimeKind::NanosAXI,
        rt::RuntimeKind::NanosSW,
    };
    const double paper[4][4] = {
        {185, 320, 329, 423},
        {12348, 13143, 12835, 12393},
        {13426, 17042, 18459, 18668},
        {25208, 99008, 35867, 58214},
    };

    std::printf("# Figure 7: lifetime Task Scheduling overhead "
                "(cycles/task)\n");
    std::printf("%-10s %-18s %12s %12s %8s\n", "platform", "workload",
                "measured", "paper", "ratio");
    for (unsigned k = 0; k < 4; ++k) {
        for (unsigned c = 0; c < 4; ++c) {
            spec::RunSpec s = cols[c].spec;
            s.runtime = kinds[k];
            const double lo = bench::lifetimeOverhead(s);
            std::printf("%-10s %-18s %12.0f %12.0f %8.2f\n",
                        std::string(rt::kindName(kinds[k])).c_str(),
                        cols[c].label, lo, paper[k][c],
                        paper[k][c] > 0 ? lo / paper[k][c] : 0.0);
        }
    }
    return 0;
}
