/**
 * @file
 * blackscholes (parsec-ompss): Black-Scholes PDE evaluation for European
 * options. Highly data-parallel: the option array is partitioned into
 * blocks of B options; each task prices one block (Section VI-A2).
 */

#include "apps/workloads.hh"

#include "apps/register.hh"
#include "sim/log.hh"
#include "spec/workload_registry.hh"

namespace picosim::apps
{

namespace
{
constexpr Addr kOptionData = 0x5100'0000;
constexpr Addr kPriceData = 0x5200'0000;

/**
 * Serial cost of pricing one option at -O3 on the 80 MHz Rocket core:
 * CNDF twice (exp/log/sqrt/div on the FPU) plus bookkeeping. Rocket's FPU
 * is pipelined but these transcendentals are library calls.
 */
constexpr Cycle kCyclesPerOption = 520;
constexpr Cycle kTaskFixed = 180;
} // namespace

rt::Program
blackscholes(unsigned num_options, unsigned block_size)
{
    if (block_size == 0 || num_options % block_size != 0)
        sim::fatal("blackscholes: block size must divide option count");
    rt::Program prog;
    prog.name = "blackscholes " + std::to_string(num_options / 1024) +
                "K B" + std::to_string(block_size);

    const unsigned num_blocks = num_options / block_size;
    // One OptionData record is 36 bytes; price output 4 bytes.
    const unsigned in_stride = 64 * ((block_size * 36 + 63) / 64);
    const unsigned out_stride = 64 * ((block_size * 4 + 63) / 64);

    for (unsigned b = 0; b < num_blocks; ++b) {
        std::vector<rt::TaskDep> deps{
            {kOptionData + static_cast<Addr>(b) * in_stride, rt::Dir::In},
            {kPriceData + static_cast<Addr>(b) * out_stride, rt::Dir::Out},
        };
        prog.spawn(kTaskFixed + kCyclesPerOption * block_size,
                   std::move(deps));
    }
    prog.taskwait();
    return prog;
}

void
registerBlackscholesWorkloads(spec::WorkloadRegistry &reg)
{
    reg.add({"blackscholes",
             "embarrassingly parallel option pricing (parsec-ompss)",
             {{"options", 4096, 1, 100'000'000, "number of options"},
              {"block", 8, 1, 1'000'000, "options priced per task"}},
             [](const spec::WorkloadArgs &a) {
                 const auto options =
                     static_cast<unsigned>(a.at("options"));
                 const auto block = static_cast<unsigned>(a.at("block"));
                 if (options % block != 0) {
                     throw spec::SpecError(
                         "wl.block=" + std::to_string(block) +
                         " must divide wl.options=" +
                         std::to_string(options));
                 }
                 return blackscholes(options, block);
             }});
}

} // namespace picosim::apps
