/**
 * @file
 * Ablation study of the architecture's design choices (DESIGN.md):
 *
 *  A. Integration tightness: sweep the core-side cost of one scheduler
 *     interaction from the 2-cycle RoCC round trip up to AXI-like
 *     latencies -- the paper's central claim is that this term dominated
 *     prior systems.
 *  B. Per-core ready-queue depth: the paper says the private queues hide
 *     half of the 8-cycle ready-fetch latency (Section IV-F2).
 *  C. Submit Three Packets vs single-packet submission (Section IV-E3).
 *  D. Memory-bandwidth ceiling: sweep alpha to show where the ~5.7x
 *     saturation of Figures 9/10 comes from.
 *
 * Each section prints the measured effect on Phentos lifetime overhead
 * or application speedup.
 */

#include <cstdio>

#include "apps/workloads.hh"
#include "bench/bench_util.hh"

using namespace picosim;
using namespace picosim::bench;

namespace
{

double
overheadWith(const rt::HarnessParams &hp)
{
    const rt::Program prog =
        apps::taskFree(quickMode() ? 64 : 256, 1, 10);
    rt::HarnessParams p = hp;
    p.numCores = 1;
    const auto r = rt::runProgram(rt::RuntimeKind::Phentos, prog, p);
    return r.completed ? r.overheadPerTask() : -1.0;
}

double
speedupWith(const rt::HarnessParams &hp, const rt::Program &prog)
{
    const auto serial = rt::runProgram(rt::RuntimeKind::Serial, prog, hp);
    const auto par = rt::runProgram(rt::RuntimeKind::Phentos, prog, hp);
    if (!serial.completed || !par.completed)
        return -1.0;
    return static_cast<double>(serial.cycles) /
           static_cast<double>(par.cycles);
}

} // namespace

int
main()
{
    std::printf("# Ablation A: scheduler-interaction latency "
                "(RoCC=2 ... AXI-like)\n");
    std::printf("%-14s %14s %14s\n", "latency/instr", "Lo (cycles)",
                "vs tight");
    const double tight = overheadWith(rt::HarnessParams{});
    for (Cycle lat : {2u, 8u, 20u, 50u, 120u, 160u}) {
        rt::HarnessParams hp;
        hp.system.hartApi.roccLatency = lat;
        const double lo = overheadWith(hp);
        std::printf("%-14llu %14.0f %13.2fx\n",
                    static_cast<unsigned long long>(lat), lo, lo / tight);
    }
    std::printf("# The paper's claim: cutting this term is worth two "
                "orders of magnitude\n# end to end (Section II).\n\n");

    std::printf("# Ablation B: per-core ready queue depth "
                "(fine-grain blackscholes speedup)\n");
    const rt::Program fine = apps::blackscholes(4096, 8);
    std::printf("%-8s %10s\n", "depth", "speedup");
    for (unsigned depth : {1u, 2u, 4u, 8u}) {
        rt::HarnessParams hp;
        hp.system.manager.coreReadyQueueDepth = depth;
        std::printf("%-8u %9.2fx\n", depth, speedupWith(hp, fine));
    }
    std::printf("\n");

    std::printf("# Ablation C: Submit Three Packets vs single packets\n");
    // Model the single-packet ISA by tripling the per-instruction cost of
    // the submission stream: 3 instructions instead of 1 per triple.
    {
        const double triple = overheadWith(rt::HarnessParams{});
        rt::HarnessParams hp;
        // A 1-dep task streams 6 packets: 2 triple-instructions (4
        // cycles) vs 6 single-packet instructions (12 cycles), plus the
        // loop overhead per instruction. Emulate by raising roccLatency
        // for the whole submission stream proportionally.
        hp.system.hartApi.roccLatency = 6; // 3x the stream cost
        const double single = overheadWith(hp);
        std::printf("triple-submit Lo %.0f, single-packet-equivalent Lo "
                    "%.0f (+%.0f%%)\n",
                    triple, single, (single / triple - 1.0) * 100.0);
    }
    std::printf("\n");

    std::printf("# Ablation D: memory-bandwidth ceiling (coarse tasks, "
                "8 cores)\n");
    const rt::Program coarse = apps::taskFree(64, 1, 500'000);
    std::printf("%-8s %10s %16s\n", "alpha", "speedup", "ideal ceiling");
    for (double alpha : {0.0, 0.029, 0.058, 0.116}) {
        rt::HarnessParams hp;
        hp.system.bandwidthAlpha = alpha;
        std::printf("%-8.3f %9.2fx %15.2fx\n", alpha,
                    speedupWith(hp, coarse), 8.0 / (1.0 + 7.0 * alpha));
    }
    std::printf("# alpha = 0.058 reproduces the paper's ~5.7x "
                "saturation.\n");
    return 0;
}
