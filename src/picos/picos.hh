/**
 * @file
 * Cycle-level model of the Picos task-dependence-management accelerator
 * (Yazdanpanah et al. [24], Tan et al. [18,19,20]; paper Section IV-D).
 *
 * External interface (all 32-bit packet queues, as in the paper):
 *  - submission queue: receives 48-packet task descriptors (Figure 3);
 *  - ready queue: emits 3 packets (Picos ID, SW ID hi, SW ID lo) per
 *    ready-to-run task;
 *  - retirement queue: receives one Picos ID per retired task.
 *
 * Internals: a gateway FSM ingests one packet per cycle; a task reservation
 * station holds in-flight tasks; the dependence table tracks, per monitored
 * address, the last writer and the readers since then, from which RAW, WAW
 * and WAR edges are derived (Section III-A). Retirement wakes dependents
 * and re-feeds the ready scheduler.
 */

#ifndef PICOSIM_PICOS_PICOS_HH
#define PICOSIM_PICOS_PICOS_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "picos/dep_table.hh"
#include "picos/picos_params.hh"
#include "picos/scheduler_if.hh"
#include "rocc/task_packets.hh"
#include "sim/clock.hh"
#include "sim/queue.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"

namespace picosim::picos
{

/** Lifecycle of a task reservation entry. */
enum class TaskState : std::uint8_t {
    Free,    ///< entry unused
    Waiting, ///< has unresolved dependences
    Ready,   ///< queued for / streaming to the ready interface
    Running, ///< handed to a core, awaiting retirement
};

class Picos final : public sim::Ticked, public SchedulerIf
{
  public:
    Picos(const sim::Clock &clock, const PicosParams &params,
          sim::StatGroup &stats);

    // -- Submission interface --
    bool subCanAccept() const override { return subQueue_.canPush(); }
    bool subPush(std::uint32_t packet) override;

    // -- Ready interface (3 packets per task) --
    bool readyValid() const override { return readyQueue_.frontReady(); }

    std::uint32_t
    readyPop() override
    {
        // Freed ready-queue space may unblock a stalled descriptor issue.
        requestWake(clock_.now());
        return readyQueue_.pop();
    }

    /**
     * Register the consumer of the ready interface (the Picos Manager's
     * packet encoder). The event-driven kernel evaluates only scheduled
     * components, so Picos wakes its consumer whenever ready packets
     * become visible; without this the encoder would sleep through them.
     */
    void
    setReadyListener(sim::Ticked *listener) override
    {
        readyListener_ = listener;
    }

    // -- Retirement interface --
    bool retireCanAccept() const override { return retireQueue_.canPush(); }
    bool retirePush(std::uint32_t picos_id) override;

    // -- Ticked --
    void tick() override;
    bool active() const override;
    Cycle wakeAt() const override;

    /** Fused kernel re-arm query: `active() ? next : wakeAt()` in one
     *  pass over the pipeline state. */
    Cycle nextSelfDue(Cycle next) const;

    // -- Introspection (tests, stats) --
    unsigned inFlightTasks() const { return inFlight_; }
    bool quiescent() const;
    const PicosParams &params() const { return params_; }
    TaskState taskState(std::uint32_t picos_id) const;
    std::size_t depTableEntries() const { return depTable_.validEntries(); }
    std::uint64_t tasksProcessed() const { return tasksProcessed_; }
    std::uint64_t tasksRetired() const { return tasksRetired_; }

    void reset();

  private:
    struct TaskEntry
    {
        TaskState state = TaskState::Free;
        std::uint32_t gen = 0;
        std::uint64_t swId = 0;
        unsigned pendingDeps = 0;
        std::vector<TaskRef> dependents;

        /** Descriptor still being applied by the gateway: retirements
         *  must not mark the task ready yet — deps beyond a table-stall
         *  resume point may still add edges. */
        bool applying = false;
    };

    bool alive(const TaskRef &ref) const;
    TaskRef refOf(std::uint32_t id) const;
    bool entryEvictable(const DepEntry &entry) const;

    /** Allocate a TRS entry; returns id or -1 when full. */
    int allocTask();

    /** Run the gateway FSM for one cycle. */
    void tickGateway();

    /** Apply dependence analysis for the decoded descriptor. @return true
     *  if all table allocations succeeded (otherwise stall and retry). */
    bool applyDescriptor();

    /** Add edge producer -> consumer (consumer waits on producer). */
    void addEdge(const TaskRef &producer, std::uint32_t consumer_id);

    void tickReadyIssue();
    void tickRetire();

    void markReady(std::uint32_t id);

    const sim::Clock &clock_;
    PicosParams params_;

    // Cached stat-registry slots (node addresses are stable); bumped on
    // every packet/edge, so the hot path never does a name lookup.
    sim::Scalar *statSubPackets_;
    sim::Scalar *statRetirePackets_;
    sim::Scalar *statDepEdges_;
    sim::Scalar *statDepTableStalls_;
    sim::Scalar *statTrsStalls_;
    sim::Scalar *statReadyIssued_;
    sim::Scalar *statBadRetires_;
    sim::Scalar *statRetires_;
    sim::Distribution *statInFlight_;

    sim::TimedFifo<std::uint32_t> subQueue_;
    sim::TimedFifo<std::uint32_t> readyQueue_;
    sim::TimedFifo<std::uint32_t> retireQueue_;

    // Gateway state.
    std::vector<std::uint32_t> collectBuffer_;
    enum class GwState : std::uint8_t { Collect, Process, Stalled };
    GwState gwState_ = GwState::Collect;
    Cycle gwBusyUntil_ = 0;
    int gwTaskId_ = -1;
    std::size_t gwDepIndex_ = 0; ///< resume point across table stalls
    rocc::TaskDescriptor gwDesc_;

    // Task reservation station.
    std::vector<TaskEntry> tasks_;
    std::deque<std::uint32_t> freeList_;
    unsigned inFlight_ = 0;

    // Dependence table.
    DepTable depTable_;

    // Ready scheduling.
    std::deque<std::uint32_t> readyPending_;
    Cycle readyBusyUntil_ = 0;
    int readyIssuingId_ = -1;

    // Retirement.
    Cycle retireBusyUntil_ = 0;

    // Ready-interface consumer woken when ready packets become visible.
    sim::Ticked *readyListener_ = nullptr;

    std::uint64_t tasksProcessed_ = 0;
    std::uint64_t tasksRetired_ = 0;
};

} // namespace picosim::picos

#endif // PICOSIM_PICOS_PICOS_HH
