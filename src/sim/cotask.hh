/**
 * @file
 * C++20 coroutine machinery used to express simulated software threads.
 *
 * A hart's software (runtime + application glue) is written as ordinary
 * coroutine code returning CoTask<T>. Awaiting Delay{n} advances that hart's
 * local time by n cycles; awaiting WaitUntil{pred} polls a condition once
 * per cycle. Nested CoTask calls use symmetric transfer so runtime code can
 * be decomposed into functions exactly like real runtime code.
 *
 * Execution model: a HartContext owns the root coroutine. The owning core
 * resumes the innermost suspended coroutine whenever the hart's wake
 * condition is met. Everything is single-threaded and deterministic.
 */

#ifndef PICOSIM_SIM_COTASK_HH
#define PICOSIM_SIM_COTASK_HH

#include <coroutine>
#include <exception>
#include <optional>
#include <utility>

#include "sim/clock.hh"
#include "sim/frame_pool.hh"
#include "sim/log.hh"
#include "sim/small_fn.hh"
#include "sim/types.hh"

namespace picosim::sim
{

class HartContext;

namespace detail
{

/** Promise base: continuation chaining + exception capture. Frames are
 *  recycled through the thread-local FramePool — simulated software
 *  spawns coroutines at task rates, and pooling keeps that churn off the
 *  shared process heap (the batch pool's main scaling hazard). */
struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr error;

    static void *operator new(std::size_t n) { return frameAlloc(n); }

    static void
    operator delete(void *p, std::size_t n)
    {
        frameFree(p, n);
    }

    struct FinalAwaiter
    {
        bool await_ready() noexcept { return false; }

        template <typename Promise>
        std::coroutine_handle<>
        await_suspend(std::coroutine_handle<Promise> h) noexcept
        {
            auto cont = h.promise().continuation;
            return cont ? cont : std::noop_coroutine();
        }

        void await_resume() noexcept {}
    };
};

} // namespace detail

/**
 * Lazily-started coroutine task. co_await it to run it to completion on the
 * simulated timeline of the current hart.
 */
template <typename T = void>
class [[nodiscard]] CoTask
{
  public:
    struct promise_type : detail::PromiseBase
    {
        std::optional<T> value;

        CoTask
        get_return_object()
        {
            return CoTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_value(T v) { value = std::move(v); }
        void unhandled_exception() { error = std::current_exception(); }
    };

    CoTask() = default;

    explicit CoTask(std::coroutine_handle<promise_type> h) : handle_(h) {}

    CoTask(CoTask &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    CoTask &
    operator=(CoTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;

    ~CoTask() { destroy(); }

    bool valid() const { return handle_ != nullptr; }
    bool done() const { return !handle_ || handle_.done(); }

    std::coroutine_handle<> handle() const { return handle_; }

    // Awaiter interface: symmetric transfer into the child coroutine.
    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    T
    await_resume()
    {
        auto &p = handle_.promise();
        if (p.error)
            std::rethrow_exception(p.error);
        return std::move(*p.value);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_ = nullptr;
};

/** Specialization for void-returning tasks. */
template <>
class [[nodiscard]] CoTask<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        CoTask
        get_return_object()
        {
            return CoTask{
                std::coroutine_handle<promise_type>::from_promise(*this)};
        }

        std::suspend_always initial_suspend() noexcept { return {}; }
        FinalAwaiter final_suspend() noexcept { return {}; }
        void return_void() {}
        void unhandled_exception() { error = std::current_exception(); }
    };

    CoTask() = default;

    explicit CoTask(std::coroutine_handle<promise_type> h) : handle_(h) {}

    CoTask(CoTask &&other) noexcept
        : handle_(std::exchange(other.handle_, nullptr))
    {
    }

    CoTask &
    operator=(CoTask &&other) noexcept
    {
        if (this != &other) {
            destroy();
            handle_ = std::exchange(other.handle_, nullptr);
        }
        return *this;
    }

    CoTask(const CoTask &) = delete;
    CoTask &operator=(const CoTask &) = delete;

    ~CoTask() { destroy(); }

    bool valid() const { return handle_ != nullptr; }
    bool done() const { return !handle_ || handle_.done(); }

    std::coroutine_handle<> handle() const { return handle_; }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    void
    await_resume()
    {
        auto &p = handle_.promise();
        if (p.error)
            std::rethrow_exception(p.error);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = nullptr;
        }
    }

    std::coroutine_handle<promise_type> handle_ = nullptr;
};

/**
 * Execution context of one simulated hart's software thread.
 *
 * The owning core calls tick(); awaitables (Delay/WaitUntil) register wake
 * conditions through current(), which is valid only while a coroutine is
 * being resumed by this context.
 */
class HartContext
{
  public:
    /** Wake-predicate storage: inline, never heap-allocated. */
    using Predicate = SmallFn<bool(), 32>;

    explicit HartContext(const Clock &clock) : clock_(clock) {}

    /** Install and start a root coroutine (does not run it yet). */
    void
    start(CoTask<void> root)
    {
        root_ = std::move(root);
        resumeNext_ = root_.handle();
        wakeAt_ = clock_.now();
        pred_.reset();
        finished_ = !root_.valid();
    }

    bool started() const { return root_.valid(); }

    /** Completion is latched after every resume, so the per-evaluation
     *  queries (runnable/wakeAt/threadDone) never touch the coroutine
     *  frame. */
    bool done() const { return finished_; }

    /** Cycle at which this hart next wants to run (kCycleNever if done). */
    Cycle
    wakeAt() const
    {
        if (done())
            return kCycleNever;
        // A predicate wait polls every cycle.
        return pred_ ? clock_.now() : wakeAt_;
    }

    /** True when the hart can make progress this cycle. */
    bool
    runnable() const
    {
        if (done() || clock_.now() < wakeAt_)
            return false;
        return !pred_ || pred_();
    }

    /**
     * Resume the thread if its wake condition is satisfied. Returns true
     * when the coroutine made progress this cycle.
     */
    bool
    tick()
    {
        if (!runnable())
            return false;
        pred_.reset();
        resume();
        return true;
    }

    /** Rethrow any exception that escaped the root coroutine. */
    void
    checkError() const
    {
        if (root_.valid() && root_.done()) {
            // await_resume is non-const; poke the promise directly.
            auto h = std::coroutine_handle<
                CoTask<void>::promise_type>::from_address(
                root_.handle().address());
            if (h.promise().error)
                std::rethrow_exception(h.promise().error);
        }
    }

    /** Context of the coroutine currently being resumed. */
    static HartContext *current() { return s_current; }

    const Clock &clock() const { return clock_; }

    // -- Interface used by awaitables (via current()) --

    void
    suspendFor(Cycle cycles, std::coroutine_handle<> h)
    {
        resumeNext_ = h;
        wakeAt_ = clock_.now() + cycles;
        pred_ = nullptr;
    }

    void
    suspendUntil(Predicate pred, std::coroutine_handle<> h)
    {
        resumeNext_ = h;
        wakeAt_ = clock_.now() + 1;
        pred_ = pred;
    }

    /**
     * Park the hart with no wake condition of its own: it resumes only
     * when an external component (a timed port delivering a response)
     * calls scheduleWakeAt(). Used by BlockHart.
     */
    void
    suspendBlocked(std::coroutine_handle<> h)
    {
        resumeNext_ = h;
        wakeAt_ = kCycleNever;
        pred_ = nullptr;
    }

    /**
     * Wake a blocked hart at @p cycle. Called by the component completing
     * the hart's outstanding request (its response port). The caller must
     * also requestWake() the owning core so the kernel evaluates it.
     */
    void scheduleWakeAt(Cycle cycle) { wakeAt_ = cycle; }

  private:
    void
    resume()
    {
        HartContext *prev = s_current;
        s_current = this;
        auto h = resumeNext_;
        resumeNext_ = nullptr;
        h.resume();
        s_current = prev;
        if (root_.done()) {
            finished_ = true;
            checkError();
        }
    }

    static inline thread_local HartContext *s_current = nullptr;

    const Clock &clock_;
    CoTask<void> root_;
    std::coroutine_handle<> resumeNext_ = nullptr;
    Cycle wakeAt_ = 0;
    bool finished_ = true; ///< no root installed counts as done
    Predicate pred_;
};

/** Awaitable: advance this hart's time by a fixed number of cycles. */
struct Delay
{
    Cycle cycles;

    bool await_ready() const noexcept { return cycles == 0; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        HartContext *ctx = HartContext::current();
        if (!ctx)
            panic("Delay awaited outside a HartContext");
        ctx->suspendFor(cycles, h);
    }

    void await_resume() const noexcept {}
};

/**
 * Awaitable: park the hart until an external component wakes it via
 * HartContext::scheduleWakeAt(). The awaiting code must have registered a
 * pending request (e.g. TimedMemory::issue) with a component that is
 * guaranteed to deliver the wake; a BlockHart with no outstanding request
 * suspends the hart forever.
 */
struct BlockHart
{
    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        HartContext *ctx = HartContext::current();
        if (!ctx)
            panic("BlockHart awaited outside a HartContext");
        ctx->suspendBlocked(h);
    }

    void await_resume() const noexcept {}
};

/** Awaitable: poll a predicate once per cycle until it holds. The
 *  predicate is stored inline (small trivially-copyable captures only),
 *  so suspending never allocates. */
struct WaitUntil
{
    HartContext::Predicate pred;

    bool await_ready() const { return pred(); }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        HartContext *ctx = HartContext::current();
        if (!ctx)
            panic("WaitUntil awaited outside a HartContext");
        ctx->suspendUntil(pred, h);
    }

    void await_resume() const noexcept {}
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_COTASK_HH
