/**
 * @file
 * Workload generators for every benchmark of the paper (Section VI-A2)
 * plus the two lifetime-overhead microbenchmarks (Section VI-B2).
 *
 * Each generator emits a rt::Program: the trace of task spawns (payload
 * cycle costs + annotated pointer parameters) and taskwait barriers the
 * real OmpSs source would produce. Payload costs model the -O3 serial
 * execution of the task bodies on the 80 MHz Rocket core; the per-element
 * constants are documented at each builder.
 *
 * Scaling note (DESIGN.md): sparseLU block-grid sizes are scaled down
 * relative to the labels so full sweeps stay tractable in simulation; the
 * M parameter still sweeps task granularity across three decades, which is
 * what Figures 8-10 need.
 */

#ifndef PICOSIM_APPS_WORKLOADS_HH
#define PICOSIM_APPS_WORKLOADS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/task_types.hh"
#include "spec/workload_registry.hh"

namespace picosim::apps
{

// -- Lifetime-overhead microbenchmarks (Figure 7) --

/**
 * Task Free: independent tasks with @p num_deps monitored parameters, all
 * output-directed on distinct addresses (no inter-task edges).
 */
rt::Program taskFree(unsigned num_tasks, unsigned num_deps, Cycle payload);

/**
 * Task Chain: fully serialized chain; every task carries @p num_deps
 * inout parameters on the same shared addresses.
 */
rt::Program taskChain(unsigned num_tasks, unsigned num_deps, Cycle payload);

// -- Application benchmarks (Figure 9) --

/** blackscholes (parsec-ompss): embarrassingly parallel option pricing. */
rt::Program blackscholes(unsigned num_options, unsigned block_size);

/** jacobi (KaStORS): 1D-blocked 2D Poisson sweeps with halo dependences. */
rt::Program jacobi(unsigned n, unsigned block_rows, unsigned sweeps);

/** sparseLU (KaStORS): blocked LU with lu0/fwd/bdiv/bmod task graph. */
rt::Program sparseLu(unsigned num_blocks, unsigned block_elems,
                     std::uint64_t seed = 42);

/** stream with per-block data dependences (ompss-ee stream-deps). */
rt::Program streamDeps(unsigned num_blocks, unsigned block_elems,
                       unsigned iterations);

/** stream with taskwait barriers between kernels (stream-barr). */
rt::Program streamBarr(unsigned num_blocks, unsigned block_elems,
                       unsigned iterations);

// -- Nested (recursive) workloads: tasks spawning child tasks with
//    scoped taskwaits; every spawn below the top level originates on the
//    worker that executes the parent --

/**
 * Blocked Cholesky factorization (fork-join panels): one parent task per
 * panel k whose body spawns the potrf/trsm/syrk/gemm children with their
 * block dependences and joins them with a single scoped taskwait. Panels
 * are chained through a token dependence so the dependence engines see
 * panel subtrees in program order.
 */
rt::Program choleskyNested(unsigned nb, unsigned bs);

/**
 * Divide-and-conquer mergesort: each internal node spawns its two half
 * sorts, scoped-waits on them, then spawns and joins the merge child.
 * Leaves of @p cutoff elements or fewer sort in place.
 */
rt::Program mergesortNested(unsigned n, unsigned cutoff);

/**
 * Nested taskbench (the `--nested` mode of the lifetime microbenchmarks):
 * a @p fanout-ary task tree of the given @p depth; every inner node
 * spawns its children from the executing worker and scoped-waits on
 * them. @p chained links siblings with an inout dependence (the nested
 * analogue of Task Chain); otherwise children are independent (Task
 * Free).
 */
rt::Program taskTree(unsigned fanout, unsigned depth, Cycle payload,
                     bool chained = false);

// -- The 37 Figure-9 inputs --

struct BenchInput
{
    std::string program;    ///< registry workload name, e.g. "blackscholes"
    std::string label;      ///< figure label, e.g. "4K B8"
    spec::WorkloadArgs args; ///< workload parameters (spec `wl.*` keys)

    /** Build the program through the workload registry. */
    rt::Program build() const;
};

/** All 37 inputs of Figure 9, grouped per program, in figure order. */
std::vector<BenchInput> figure9Inputs();

} // namespace picosim::apps

#endif // PICOSIM_APPS_WORKLOADS_HH
