/**
 * @file
 * Domain example: sparse LU factorization (KaStORS), the paper's
 * irregular-dependence workload. Shows how to build a real task graph
 * against the public API (lu0/fwd/bdiv/bmod with in/out/inout
 * annotations), run it, and inspect hardware statistics: how many
 * dependence edges Picos tracked, ready-queue traffic, etc.
 */

#include <cstdio>

#include "apps/workloads.hh"
#include "runtime/harness.hh"
#include "runtime/phentos.hh"

using namespace picosim;

int
main()
{
    // An 8x8-block matrix with 24x24-element blocks.
    const rt::Program prog = apps::sparseLu(8, 24);
    std::printf("sparseLU: %llu tasks, mean task size %.0f cycles\n",
                static_cast<unsigned long long>(prog.numTasks()),
                prog.meanTaskSize());

    // Run under Phentos on the full 8-core system, keeping the system
    // object so we can inspect the hardware statistics afterwards.
    rt::HarnessParams hp;
    cpu::System sys(hp.system);
    rt::Phentos phentos(hp.costs);
    phentos.install(sys, prog);
    if (!sys.run(hp.cycleLimit) || !phentos.finished()) {
        std::printf("run did not complete!\n");
        return 1;
    }

    const auto serial = rt::runProgram(rt::RuntimeKind::Serial, prog, hp);
    std::printf("parallel: %llu cycles, serial: %llu cycles -> %.2fx\n",
                static_cast<unsigned long long>(sys.clock().now()),
                static_cast<unsigned long long>(serial.cycles),
                static_cast<double>(serial.cycles) / sys.clock().now());

    auto &st = sys.stats();
    std::printf("\nHardware counters:\n");
    std::printf("  dependence edges tracked : %.0f\n",
                st.scalarValue("picos.depEdges"));
    std::printf("  submission packets       : %.0f (of which %.0f "
                "zero-padded)\n",
                st.scalarValue("picos.subPackets"),
                st.scalarValue("manager.zeroPadPackets"));
    std::printf("  ready tuples delivered   : %.0f\n",
                st.scalarValue("manager.readyDelivered"));
    std::printf("  dirty-line transfers     : %.0f\n",
                sys.memory().stats().scalarValue("mem.dirtyRemoteTransfers"));
    std::printf("  peak tasks in flight     : %.0f\n", [&] {
        return sys.stats().dist("picos.inFlight").max();
    }());
    return 0;
}
