#include "spec/engine.hh"

#include "runtime/nanos.hh"
#include "runtime/phentos.hh"
#include "runtime/task_trace.hh"
#include "spec/workload_registry.hh"

namespace picosim::spec
{

rt::Program
Engine::buildProgram(const RunSpec &spec)
{
    return WorkloadRegistry::instance().build(spec.workload, spec.wl);
}

rt::HarnessParams
Engine::harnessParams(const RunSpec &spec)
{
    rt::HarnessParams hp;
    hp.numCores = spec.cores;
    hp.cycleLimit = spec.cycleLimit;

    cpu::SystemParams &sp = hp.system;
    sp.evalMode = spec.mode;
    sp.bandwidthAlpha = spec.bandwidthAlpha;

    sp.mem.mode = spec.mem;
    sp.mem.mshrs = spec.mshrs;
    sp.mem.busBytesPerCycle = spec.busBytes;
    sp.mem.memOccupancy = spec.memOccupancy;

    sp.topology.schedShards = spec.schedShards;
    sp.topology.clusters = spec.clusters;
    sp.topology.workStealing = spec.steal;
    sp.topology.clusterLinkCycles = spec.clusterLink;
    sp.topology.xshardDepCycles = spec.xshardDep;
    sp.topology.xshardNotifyCycles = spec.xshardNotify;
    sp.topology.stealPenaltyCycles = spec.stealPenalty;
    sp.topology.gatewayQueueDepth = spec.gatewayDepth;

    sp.manager.coreReadyQueueDepth = spec.coreReadyDepth;
    sp.hartApi.roccLatency = spec.roccLatency;

    sp.pdes.hostThreads = spec.hostThreads;
    sp.pdes.domains = spec.pdesDomains;
    sp.pdes.partition = spec.pdes;

    hp.fault.kind = spec.faultKind;
    hp.fault.cycle = spec.faultCycle;
    hp.fault.until = spec.faultUntil;
    hp.fault.target = spec.faultTarget;
    sp.fault = hp.fault; // the model only acts on KillShard/StallLink
    return hp;
}

cpu::SystemParams
Engine::systemParams(const RunSpec &spec)
{
    const rt::HarnessParams hp = harnessParams(spec);
    cpu::SystemParams sp = hp.system;
    sp.numCores = spec.runtime == rt::RuntimeKind::Serial ? 1 : hp.numCores;
    if (spec.runtime == rt::RuntimeKind::Serial) {
        // The serial baseline never touches the scheduler; a clustered
        // topology cannot be laid out over its single core, and a
        // shard/link fault has no meaning without one.
        sp.topology = {};
        sp.fault = {};
    }
    return sp;
}

std::unique_ptr<cpu::System>
Engine::makeSystem(const RunSpec &spec)
{
    return std::make_unique<cpu::System>(systemParams(spec));
}

rt::RunResult
Engine::run(const RunSpec &spec, const rt::RunControls &controls)
{
    rt::HarnessParams hp = harnessParams(spec);
    hp.controls = controls;
    return rt::runProgram(spec.runtime, buildProgram(spec), hp);
}

rt::RunResult
Engine::runWithSpeedup(const RunSpec &spec, const rt::RunControls &controls)
{
    rt::HarnessParams hp = harnessParams(spec);
    hp.controls = controls;
    return rt::runWithSpeedup(spec.runtime, buildProgram(spec), hp);
}

std::vector<rt::RunResult>
Engine::runBatch(const std::vector<RunSpec> &specs,
                 const rt::BatchOptions &opts)
{
    std::vector<rt::RunResult> results(specs.size());
    if (specs.empty())
        return results; // explicit: an empty batch yields no results

    // Build phase. A spec whose workload cannot be built becomes a
    // per-position Error result (captureErrors) instead of poisoning
    // the batch; buildable specs — duplicates included, each with a
    // private Program — are mapped onto a dense job vector.
    std::vector<rt::Job> jobs;
    std::vector<std::size_t> jobSpec; // job index -> spec index
    jobs.reserve(specs.size());
    jobSpec.reserve(specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        try {
            rt::Job job;
            job.kind = specs[i].runtime;
            job.prog = buildProgram(specs[i]);
            job.params = harnessParams(specs[i]);
            job.label = specs[i].serialize();
            jobs.push_back(std::move(job));
            jobSpec.push_back(i);
        } catch (const std::exception &e) {
            if (!opts.captureErrors)
                throw;
            rt::RunResult &res = results[i];
            res.runtime = std::string(rt::kindName(specs[i].runtime));
            res.status = rt::RunStatus::Error;
            res.error = e.what();
            if (opts.onResult)
                opts.onResult(i, res);
        }
    }

    rt::BatchOptions inner = opts;
    if (opts.onStart)
        inner.onStart = [&](std::size_t j) { opts.onStart(jobSpec[j]); };
    if (opts.onResult)
        inner.onResult = [&](std::size_t j, const rt::RunResult &r) {
            opts.onResult(jobSpec[j], r);
        };
    std::vector<rt::RunResult> ran = rt::runBatch(jobs, inner);
    for (std::size_t j = 0; j < ran.size(); ++j)
        results[jobSpec[j]] = std::move(ran[j]);
    return results;
}

std::vector<rt::RunResult>
Engine::runBatch(const std::vector<RunSpec> &specs, unsigned threads,
                 const std::function<void(std::size_t,
                                          const rt::RunResult &)> &onResult)
{
    rt::BatchOptions opts;
    opts.threads = threads;
    opts.onResult = onResult;
    opts.captureErrors = false; // legacy contract: rethrow after join
    return runBatch(specs, opts);
}

InspectedRun
Engine::runInspected(const RunSpec &spec, rt::TaskTrace *trace,
                     const rt::RunControls &controls)
{
    const rt::HarnessParams hp = harnessParams(spec);
    const rt::Program prog = buildProgram(spec);

    InspectedRun out;
    out.system = makeSystem(spec);
    out.runtime = rt::makeRuntime(spec.runtime, hp.costs);

    if (trace != nullptr) {
        trace->reset(prog.numTasks());
        if (auto *ph = dynamic_cast<rt::Phentos *>(out.runtime.get()))
            ph->setTrace(trace);
        else if (auto *nn = dynamic_cast<rt::Nanos *>(out.runtime.get()))
            nn->setTrace(trace);
    }

    out.runtime->install(*out.system, prog);
    rt::armControls(*out.system, controls, hp.fault);
    const auto cpState = rt::armCheckpoints(*out.system, controls);
    const bool ok = out.system->run(hp.cycleLimit);

    rt::RunResult &res = out.result;
    res.runtime = out.runtime->name();
    res.program = prog.name;
    res.completed = ok && out.runtime->finished();
    res.status =
        rt::finishStatus(*out.system, controls, res.completed, hp.fault);
    res.cycles = out.system->clock().now();
    res.serialPayload = prog.serialPayloadCycles();
    res.tasks = prog.numTasks();
    res.meanTaskSize = prog.meanTaskSize();
    res.evaluatedCycles = out.system->simulator().evaluatedCycles();
    res.componentTicks = out.system->simulator().componentTicks();
    res.tickWorldTicks = out.system->simulator().tickWorldTicks();
    res.workerSubmits = out.runtime->tasksSubmittedByWorkers();
    res.inlineTasks = out.runtime->tasksExecutedInline();
    rt::fillContentionStats(res, *out.system);
    if (controls.resumeFrom != nullptr)
        res.resumedFromCycle = controls.resumeFrom->cycle;
    if (cpState->mismatch) {
        res.status = rt::RunStatus::Error;
        res.error = cpState->message;
        res.completed = false;
    }
    return out;
}

} // namespace picosim::spec
