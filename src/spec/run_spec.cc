#include "spec/run_spec.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <sstream>

#include "apps/workloads.hh"

namespace picosim::spec
{

namespace
{

constexpr std::uint64_t kU64Max = std::numeric_limits<std::uint64_t>::max();

/**
 * Strict base-10 integer: digits only (signs, hex prefixes and trailing
 * garbage are rejected, never truncated), overflow-checked, and an
 * explicit valid range reported in the same style as the enum keys.
 */
std::uint64_t
parseInt(const std::string &disp, const std::string &v, std::uint64_t min,
         std::uint64_t max)
{
    std::uint64_t value = 0;
    bool ok = !v.empty() && v.size() <= 20;
    if (ok) {
        for (const char c : v) {
            if (c < '0' || c > '9') {
                ok = false;
                break;
            }
            const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
            if (value > (kU64Max - digit) / 10) {
                ok = false;
                break;
            }
            value = value * 10 + digit;
        }
    }
    if (!ok || value < min || value > max) {
        throw SpecError(disp + " expects an integer in [" +
                        std::to_string(min) + ", " + std::to_string(max) +
                        "], got '" + v + "'");
    }
    return value;
}

/** Shortest decimal form of @p d that strtod parses back bit-exactly. */
std::string
formatDouble(double d)
{
    char buf[40];
    for (int prec = 6; prec <= 17; ++prec) {
        std::snprintf(buf, sizeof buf, "%.*g", prec, d);
        if (std::strtod(buf, nullptr) == d)
            break;
    }
    return buf;
}

double
parseDouble(const std::string &disp, const std::string &v, double min,
            double max)
{
    char *end = nullptr;
    const double d = v.empty() ? 0.0 : std::strtod(v.c_str(), &end);
    const bool ok = !v.empty() && end == v.c_str() + v.size() &&
                    std::isfinite(d);
    if (!ok || d < min || d > max) {
        throw SpecError(disp + " expects a number in [" +
                        formatDouble(min) + ", " + formatDouble(max) +
                        "], got '" + v + "'");
    }
    return d;
}

/** One choice of an enum-valued key. */
struct Choice
{
    const char *name;
    unsigned value;
};

unsigned
parseChoice(const std::string &what, const std::string &v,
            const std::vector<Choice> &choices)
{
    std::string valid;
    std::string best;
    unsigned bestDist = ~0u;
    for (const Choice &c : choices) {
        if (v == c.name)
            return c.value;
        if (!valid.empty())
            valid += ", ";
        valid += c.name;
        const unsigned d = editDistance(v, c.name);
        if (d < bestDist) {
            bestDist = d;
            best = c.name;
        }
    }
    throw SpecError("unknown " + what + " '" + v + "' (valid: " + valid +
                    ")" + didYouMean(v, best));
}

struct KeyDef
{
    const char *key;
    std::string (*get)(const RunSpec &);
    void (*set)(RunSpec &, const std::string &v, const std::string &disp);
};

/** The spec schema: every fixed key, in serialization order. */
const std::vector<KeyDef> &
keyTable()
{
    using S = RunSpec;
    static const std::vector<KeyDef> table = {
        {"workload", [](const S &s) { return s.workload; },
         [](S &s, const std::string &v, const std::string &) {
             s.workload = v;
         }},
        {"runtime",
         [](const S &s) { return kindSpecName(s.runtime); },
         [](S &s, const std::string &v, const std::string &) {
             s.runtime = static_cast<rt::RuntimeKind>(parseChoice(
                 "runtime", v,
                 {{"serial", 0}, {"nanos-sw", 1}, {"nanos-rv", 2},
                  {"nanos-axi", 3}, {"phentos", 4}}));
         }},
        {"cores",
         [](const S &s) { return std::to_string(s.cores); },
         [](S &s, const std::string &v, const std::string &d) {
             s.cores = static_cast<unsigned>(parseInt(d, v, 1, 4096));
         }},
        {"mode",
         [](const S &s) {
             return std::string(s.mode == sim::EvalMode::TickWorld
                                    ? "tickworld"
                                    : "event");
         },
         [](S &s, const std::string &v, const std::string &) {
             s.mode = parseChoice("mode", v,
                                  {{"event", 0}, {"tickworld", 1}}) == 0
                          ? sim::EvalMode::EventDriven
                          : sim::EvalMode::TickWorld;
         }},
        {"mem",
         [](const S &s) {
             return std::string(s.mem == mem::MemMode::Timed ? "timed"
                                                             : "inline");
         },
         [](S &s, const std::string &v, const std::string &) {
             s.mem = parseChoice("memory model", v,
                                 {{"inline", 0}, {"timed", 1}}) == 0
                         ? mem::MemMode::Inline
                         : mem::MemMode::Timed;
         }},
        {"mshrs",
         [](const S &s) { return std::to_string(s.mshrs); },
         [](S &s, const std::string &v, const std::string &d) {
             s.mshrs =
                 static_cast<unsigned>(parseInt(d, v, 1, 100'000'000));
         }},
        {"bus-bytes",
         [](const S &s) { return std::to_string(s.busBytes); },
         [](S &s, const std::string &v, const std::string &d) {
             s.busBytes =
                 static_cast<unsigned>(parseInt(d, v, 1, 100'000'000));
         }},
        {"mem-occupancy",
         [](const S &s) { return std::to_string(s.memOccupancy); },
         [](S &s, const std::string &v, const std::string &d) {
             s.memOccupancy = parseInt(d, v, 1, 100'000'000);
         }},
        {"sched-shards",
         [](const S &s) { return std::to_string(s.schedShards); },
         [](S &s, const std::string &v, const std::string &d) {
             s.schedShards = static_cast<unsigned>(parseInt(d, v, 1, 64));
         }},
        {"clusters",
         [](const S &s) { return std::to_string(s.clusters); },
         [](S &s, const std::string &v, const std::string &d) {
             s.clusters = static_cast<unsigned>(parseInt(d, v, 1, 256));
         }},
        {"steal",
         [](const S &s) { return std::string(s.steal ? "on" : "off"); },
         [](S &s, const std::string &v, const std::string &) {
             s.steal = parseChoice("steal policy", v,
                                   {{"on", 1}, {"off", 0}}) != 0;
         }},
        {"cluster-link",
         [](const S &s) { return std::to_string(s.clusterLink); },
         [](S &s, const std::string &v, const std::string &d) {
             s.clusterLink = parseInt(d, v, 0, 1'000'000);
         }},
        {"xshard-dep",
         [](const S &s) { return std::to_string(s.xshardDep); },
         [](S &s, const std::string &v, const std::string &d) {
             s.xshardDep = parseInt(d, v, 0, 1'000'000);
         }},
        {"xshard-notify",
         [](const S &s) { return std::to_string(s.xshardNotify); },
         [](S &s, const std::string &v, const std::string &d) {
             s.xshardNotify = parseInt(d, v, 0, 1'000'000);
         }},
        {"steal-penalty",
         [](const S &s) { return std::to_string(s.stealPenalty); },
         [](S &s, const std::string &v, const std::string &d) {
             s.stealPenalty = parseInt(d, v, 0, 1'000'000);
         }},
        {"gateway-depth",
         [](const S &s) { return std::to_string(s.gatewayDepth); },
         [](S &s, const std::string &v, const std::string &d) {
             s.gatewayDepth =
                 static_cast<unsigned>(parseInt(d, v, 1, 100'000));
         }},
        {"rocc-latency",
         [](const S &s) { return std::to_string(s.roccLatency); },
         [](S &s, const std::string &v, const std::string &d) {
             s.roccLatency = parseInt(d, v, 0, 1'000'000);
         }},
        {"core-ready-depth",
         [](const S &s) { return std::to_string(s.coreReadyDepth); },
         [](S &s, const std::string &v, const std::string &d) {
             s.coreReadyDepth =
                 static_cast<unsigned>(parseInt(d, v, 1, 100'000));
         }},
        {"bandwidth-alpha",
         [](const S &s) { return formatDouble(s.bandwidthAlpha); },
         [](S &s, const std::string &v, const std::string &d) {
             s.bandwidthAlpha = parseDouble(d, v, 0.0, 1.0);
         }},
        {"pdes",
         [](const S &s) {
             switch (s.pdes) {
               case cpu::PdesParams::Partition::Off: return std::string("off");
               case cpu::PdesParams::Partition::Force:
                 return std::string("force");
               case cpu::PdesParams::Partition::Auto: break;
             }
             return std::string("auto");
         },
         [](S &s, const std::string &v, const std::string &) {
             s.pdes = static_cast<cpu::PdesParams::Partition>(parseChoice(
                 "pdes policy", v, {{"auto", 0}, {"off", 1}, {"force", 2}}));
         }},
        {"pdes-domains",
         [](const S &s) {
             return s.pdesDomains == 0 ? std::string("auto")
                                       : std::to_string(s.pdesDomains);
         },
         [](S &s, const std::string &v, const std::string &d) {
             s.pdesDomains =
                 v == "auto"
                     ? 0
                     : static_cast<unsigned>(parseInt(d, v, 2, 258));
         }},
        {"host-threads",
         [](const S &s) { return std::to_string(s.hostThreads); },
         [](S &s, const std::string &v, const std::string &d) {
             s.hostThreads = static_cast<unsigned>(parseInt(d, v, 1, 256));
         }},
        {"repeat",
         [](const S &s) { return std::to_string(s.repeat); },
         [](S &s, const std::string &v, const std::string &d) {
             s.repeat = static_cast<unsigned>(parseInt(d, v, 1, 1'000'000));
         }},
        {"seed",
         [](const S &s) { return std::to_string(s.seed); },
         [](S &s, const std::string &v, const std::string &d) {
             s.seed = parseInt(d, v, 0, kU64Max);
         }},
        {"cycle-limit",
         [](const S &s) { return std::to_string(s.cycleLimit); },
         [](S &s, const std::string &v, const std::string &d) {
             s.cycleLimit = parseInt(d, v, 1, kU64Max);
         }},
        {"fault.kind",
         [](const S &s) {
             return std::string(sim::faultKindName(s.faultKind));
         },
         [](S &s, const std::string &v, const std::string &) {
             s.faultKind = static_cast<sim::FaultKind>(parseChoice(
                 "fault kind", v,
                 {{"none", 0}, {"kill-shard", 1}, {"stall-link", 2},
                  {"drop-job", 3}}));
         }},
        {"fault.cycle",
         [](const S &s) { return std::to_string(s.faultCycle); },
         [](S &s, const std::string &v, const std::string &d) {
             s.faultCycle = parseInt(d, v, 0, kU64Max);
         }},
        {"fault.until",
         [](const S &s) { return std::to_string(s.faultUntil); },
         [](S &s, const std::string &v, const std::string &d) {
             s.faultUntil = parseInt(d, v, 0, kU64Max);
         }},
        {"fault.target",
         [](const S &s) { return std::to_string(s.faultTarget); },
         [](S &s, const std::string &v, const std::string &d) {
             s.faultTarget = static_cast<unsigned>(parseInt(d, v, 0, 256));
         }},
        // Folded away by canonicalize(), hence never serialized; kept
        // last so serialize() can simply skip the final table entry.
        {"nested",
         [](const S &s) { return std::string(s.nested ? "on" : "off"); },
         [](S &s, const std::string &v, const std::string &) {
             s.nested = parseChoice("nested mode", v,
                                    {{"on", 1}, {"off", 0}}) != 0;
         }},
    };
    return table;
}

/** Workloads the `nested` key folds between (or accepts as-is). */
bool
inherentlyNested(const std::string &workload)
{
    return workload == "task-tree" || workload == "cholesky-nested" ||
           workload == "mergesort-nested";
}

void
parseJsonInto(const std::string &text, RunSpec &spec)
{
    std::size_t i = 0;
    const auto fail = [](const std::string &msg) {
        throw SpecError("spec JSON: " + msg);
    };
    const auto skipWs = [&] {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            ++i;
    };
    const auto parseString = [&] {
        ++i; // opening quote
        std::string out;
        while (i < text.size() && text[i] != '"') {
            if (text[i] == '\\' && i + 1 < text.size())
                ++i;
            out += text[i++];
        }
        if (i >= text.size())
            fail("unterminated string");
        ++i;
        return out;
    };

    skipWs();
    ++i; // '{' (the caller dispatched on it)
    skipWs();
    if (i < text.size() && text[i] == '}') {
        ++i;
    } else {
        while (true) {
            skipWs();
            if (i >= text.size() || text[i] != '"')
                fail("expected a quoted key");
            const std::string key = parseString();
            skipWs();
            if (i >= text.size() || text[i] != ':')
                fail("expected ':' after key '" + key + "'");
            ++i;
            skipWs();
            std::string value;
            if (i < text.size() && text[i] == '"') {
                value = parseString();
            } else {
                const std::size_t start = i;
                while (i < text.size() && text[i] != ',' &&
                       text[i] != '}' &&
                       !std::isspace(static_cast<unsigned char>(text[i])))
                    ++i;
                value = text.substr(start, i - start);
                if (value == "true")
                    value = "on";
                else if (value == "false")
                    value = "off";
            }
            spec.setKey(key, value, "");
            skipWs();
            if (i < text.size() && text[i] == ',') {
                ++i;
                continue;
            }
            if (i < text.size() && text[i] == '}') {
                ++i;
                break;
            }
            fail("expected ',' or '}'");
        }
    }
    skipWs();
    if (i != text.size())
        fail("trailing characters after '}'");
}

} // namespace

std::string
kindSpecName(rt::RuntimeKind kind)
{
    switch (kind) {
      case rt::RuntimeKind::Serial:   return "serial";
      case rt::RuntimeKind::NanosSW:  return "nanos-sw";
      case rt::RuntimeKind::NanosRV:  return "nanos-rv";
      case rt::RuntimeKind::NanosAXI: return "nanos-axi";
      case rt::RuntimeKind::Phentos:  return "phentos";
    }
    return "phentos";
}

void
RunSpec::setKey(const std::string &key, const std::string &value,
                const std::string &display_prefix)
{
    if (key.rfind("wl.", 0) == 0) {
        const std::string param = key.substr(3);
        if (param.empty()) {
            throw SpecError("empty workload parameter name in '" +
                            display_prefix + key + "'");
        }
        // Range/schema checks happen at canonicalize(), when the
        // workload the parameter belongs to is known.
        wl[param] = parseInt(display_prefix + key, value, 0, kU64Max);
        return;
    }
    for (const KeyDef &kd : keyTable()) {
        if (key == kd.key) {
            kd.set(*this, value, display_prefix + key);
            return;
        }
    }
    const bool is_flag = display_prefix == "--";
    throw SpecError(std::string("unknown ") + (is_flag ? "flag" : "key") +
                    " '" + display_prefix + key + "'" +
                    didYouMean(key, nearestKey(key), display_prefix));
}

std::vector<std::string>
RunSpec::canonicalize(const std::string &display_prefix)
{
    std::vector<std::string> warnings;
    const WorkloadRegistry &reg = WorkloadRegistry::instance();

    // 1. Resolve the workload: exact registry name, else a Figure-9
    // "program label" substring, rewritten losslessly to the registry
    // name plus its wl.* parameters (explicit wl.* keys win).
    const WorkloadDef *def = reg.find(workload);
    if (!def) {
        for (const auto &input : apps::figure9Inputs()) {
            const std::string full = input.program + " " + input.label;
            if (full.find(workload) != std::string::npos) {
                workload = input.program;
                for (const auto &[param, value] : input.args)
                    wl.emplace(param, value);
                def = reg.find(workload);
                break;
            }
        }
        if (!def) {
            throw SpecError("unknown workload '" + workload +
                            "' (try --list-workloads)" +
                            didYouMean(workload, reg.nearest(workload)));
        }
    }

    // 2. Fold taskbench nested mode into the workload itself: the flat
    // microbenchmarks become the equivalent recursive task trees.
    if (nested) {
        if (workload == "task-free" || workload == "task-chain") {
            WorkloadArgs tree;
            if (const auto it = wl.find("payload"); it != wl.end())
                tree["payload"] = it->second;
            tree["chained"] = workload == "task-chain" ? 1 : 0;
            workload = "task-tree";
            wl = std::move(tree);
            def = reg.find(workload);
        } else if (!inherentlyNested(workload)) {
            throw SpecError(
                display_prefix + "nested is not supported for workload '" +
                workload + "' (valid: task-free, task-chain, task-tree, "
                           "cholesky-nested, mergesort-nested)");
        }
        nested = false;
    }

    // 3. The global seed fills a workload's seed parameter unless one
    // was given explicitly.
    if (def->findParam("seed") != nullptr && wl.find("seed") == wl.end())
        wl["seed"] = seed;

    // 4. Fill schema defaults and range-check every parameter.
    wl = def->canonicalArgs(wl);

    // 5. Cross-key constraints.
    if (clusters > cores) {
        throw SpecError(display_prefix + "clusters=" +
                        std::to_string(clusters) + " exceeds " +
                        display_prefix + "cores=" + std::to_string(cores) +
                        " (each cluster needs at least one core)");
    }
    if (pdes == cpu::PdesParams::Partition::Off && hostThreads > 1) {
        warnings.push_back(
            "warning: " + display_prefix + "host-threads=" +
            std::to_string(hostThreads) + " is ignored with " +
            display_prefix + "pdes=off (the unpartitioned kernel is "
                             "sequential)");
    }
    if (faultKind != sim::FaultKind::None) {
        if (faultUntil != 0 && faultUntil <= faultCycle) {
            throw SpecError(
                display_prefix + "fault.until=" +
                std::to_string(faultUntil) + " must exceed " +
                display_prefix + "fault.cycle=" +
                std::to_string(faultCycle) + " (or be 0: never restored)");
        }
        const bool modelFault = faultKind == sim::FaultKind::KillShard ||
                                faultKind == sim::FaultKind::StallLink;
        if (modelFault && schedShards == 1 && clusters == 1) {
            throw SpecError(
                display_prefix + "fault.kind=" +
                sim::faultKindName(faultKind) +
                " needs the sharded scheduler (" + display_prefix +
                "sched-shards or " + display_prefix + "clusters > 1); "
                "the single centralized Picos has no shard or link to "
                "fault");
        }
        if (modelFault && runtime == rt::RuntimeKind::Serial) {
            throw SpecError(
                display_prefix + "fault.kind=" +
                sim::faultKindName(faultKind) +
                " is meaningless under runtime=serial (no scheduler is "
                "built)");
        }
        if (faultKind == sim::FaultKind::KillShard &&
            faultTarget >= schedShards) {
            throw SpecError(
                display_prefix + "fault.target=" +
                std::to_string(faultTarget) + " is out of range for " +
                display_prefix + "fault.kind=kill-shard (sched-shards=" +
                std::to_string(schedShards) + ")");
        }
        if (faultKind == sim::FaultKind::StallLink &&
            faultTarget >= clusters) {
            throw SpecError(
                display_prefix + "fault.target=" +
                std::to_string(faultTarget) + " is out of range for " +
                display_prefix + "fault.kind=stall-link (clusters=" +
                std::to_string(clusters) + ")");
        }
    }
    return warnings;
}

std::string
RunSpec::serialize(char sep) const
{
    std::string out;
    const auto emit = [&](const std::string &key,
                          const std::string &value) {
        if (!out.empty())
            out += sep;
        out += key;
        out += '=';
        out += value;
    };
    for (const KeyDef &kd : keyTable()) {
        if (std::strcmp(kd.key, "nested") == 0)
            continue; // canonical specs have it folded away
        emit(kd.key, kd.get(*this));
        if (std::strcmp(kd.key, "workload") == 0) {
            for (const auto &[param, value] : wl)
                emit("wl." + param, std::to_string(value));
        }
    }
    return out;
}

void
RunSpec::merge(const std::string &text)
{
    std::size_t first = 0;
    while (first < text.size() &&
           std::isspace(static_cast<unsigned char>(text[first])))
        ++first;

    if (first < text.size() && text[first] == '{') {
        parseJsonInto(text, *this);
        return;
    }

    // Blank out # comments, then whitespace-tokenize key=value pairs.
    std::string clean;
    clean.reserve(text.size());
    bool comment = false;
    for (const char c : text) {
        if (c == '#')
            comment = true;
        if (c == '\n')
            comment = false;
        clean += comment ? ' ' : c;
    }
    std::istringstream ss(clean);
    std::string token;
    while (ss >> token) {
        const std::size_t eq = token.find('=');
        if (eq == std::string::npos || eq == 0) {
            throw SpecError("malformed spec entry '" + token +
                            "' (expected key=value)");
        }
        setKey(token.substr(0, eq), token.substr(eq + 1));
    }
}

RunSpec
RunSpec::parse(const std::string &text, std::vector<std::string> *warnings)
{
    RunSpec spec;
    spec.merge(text);
    std::vector<std::string> w = spec.canonicalize();
    if (warnings)
        *warnings = std::move(w);
    return spec;
}

std::vector<std::string>
RunSpec::keys()
{
    std::vector<std::string> out;
    out.reserve(keyTable().size());
    for (const KeyDef &kd : keyTable())
        out.push_back(kd.key);
    return out;
}

std::string
RunSpec::nearestKey(const std::string &key)
{
    std::string best;
    unsigned bestDist = ~0u;
    for (const KeyDef &kd : keyTable()) {
        const unsigned d = editDistance(key, kd.key);
        if (d < bestDist) {
            bestDist = d;
            best = kd.key;
        }
    }
    return best;
}

} // namespace picosim::spec
