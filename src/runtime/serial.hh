/**
 * @file
 * Serial executor: the -O3 serial binary the paper's speedups are
 * measured against (Section VI-A1).
 */

#ifndef PICOSIM_RUNTIME_SERIAL_HH
#define PICOSIM_RUNTIME_SERIAL_HH

#include "runtime/cost_model.hh"
#include "runtime/runtime.hh"

namespace picosim::rt
{

class Serial : public Runtime
{
  public:
    explicit Serial(const CostModel &cm = {}) : cm_(cm) {}

    std::string name() const override { return "serial"; }

    void install(cpu::System &sys, const Program &prog) override;

    bool finished() const override { return finished_; }
    std::uint64_t tasksExecuted() const override { return executed_; }

  private:
    sim::CoTask<void> thread(cpu::HartApi &api, const Program &prog);

    /** Execute one task and, depth-first, every task its body spawns. */
    sim::CoTask<void> runTask(cpu::HartApi &api, const Program &prog,
                              const Task &task);

    CostModel cm_;
    bool finished_ = false;
    std::uint64_t executed_ = 0;
};

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_SERIAL_HH
