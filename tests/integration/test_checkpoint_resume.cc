/**
 * @file
 * Checkpoint/resume round-trip tests.
 *
 * A checkpoint is a deterministic cut (cycle + stat-dump digest), and
 * resume is fast-forward replay, so the contract under test is bit
 * identity three ways: (1) taking checkpoints must not perturb a run,
 * (2) a run resumed from any recorded cut must reproduce the original
 * result field-for-field (and stat-for-stat) on every seed golden in
 * both kernels and under PDES at several host-thread counts, and
 * (3) a digest mismatch on replay must fail the run loudly instead of
 * silently producing a different experiment.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "apps/workloads.hh"
#include "runtime/harness.hh"
#include "service/wire.hh"
#include "spec/engine.hh"
#include "spec/run_spec.hh"

using namespace picosim;
using namespace picosim::rt;

namespace
{

HarnessParams
withMode(sim::EvalMode mode)
{
    HarnessParams hp;
    hp.system.evalMode = mode;
    return hp;
}

Program
namedWorkload(const char *name)
{
    return std::string(name) == "task-free" ? apps::taskFree(256, 1, 1000)
                                            : apps::taskChain(256, 1, 1000);
}

std::string
testName(const char *workload, RuntimeKind kind)
{
    std::string name = std::string(workload) + "_" +
                       std::string(kindName(kind));
    for (char &c : name)
        if (c == '-')
            c = '_';
    return name;
}

/** The whole result as one comparable string, resume provenance
 *  zeroed: resumedFromCycle reports where the replay was verified, so
 *  it is the one field allowed to differ between an original run and
 *  its resumed twin. */
std::string
resultKey(const RunResult &res)
{
    RunResult r = res;
    r.resumedFromCycle = 0;
    return svc::wire::runResultJson(r);
}

/** Full stat dump of an inspected run — the digest's input text. */
std::string
statDumpOf(const spec::InspectedRun &run)
{
    std::ostringstream os;
    run.system->stats().dump(os);
    run.system->memory().stats().dump(os);
    return os.str();
}

} // namespace

struct GoldenRun
{
    const char *workload;
    RuntimeKind kind;
    Cycle cycles;
};

class CheckpointRoundTrip : public ::testing::TestWithParam<GoldenRun>
{
};

TEST_P(CheckpointRoundTrip, ResumeReproducesEverySeedGolden)
{
    const GoldenRun &g = GetParam();
    const Program prog = namedWorkload(g.workload);
    const Cycle every = std::max<Cycle>(g.cycles / 3, 1);

    for (const auto mode :
         {sim::EvalMode::EventDriven, sim::EvalMode::TickWorld}) {
        const char *label =
            mode == sim::EvalMode::EventDriven ? "event" : "tickworld";

        const RunResult pure = runProgram(g.kind, prog, withMode(mode));
        ASSERT_TRUE(pure.completed) << label;
        ASSERT_EQ(pure.cycles, g.cycles) << label;

        // Checkpointing must be a pure observer.
        std::vector<sim::Checkpoint> cuts;
        HarnessParams cp = withMode(mode);
        cp.controls.checkpointEvery = every;
        cp.controls.onCheckpoint = [&cuts](const sim::Checkpoint &c) {
            cuts.push_back(c);
        };
        const RunResult base = runProgram(g.kind, prog, cp);
        EXPECT_EQ(resultKey(base), resultKey(pure)) << label;

        ASSERT_FALSE(cuts.empty()) << label;
        for (std::size_t i = 0; i < cuts.size(); ++i) {
            EXPECT_EQ(cuts[i].seq, i + 1) << label;
            EXPECT_EQ(cuts[i].cycle % every, 0u) << label;
            if (i > 0) {
                EXPECT_GT(cuts[i].cycle, cuts[i - 1].cycle) << label;
            }
        }

        // Resume from a mid-run cut: bit-identical, provenance stamped.
        const sim::Checkpoint mid = cuts[cuts.size() / 2];
        ASSERT_NE(mid.cycle, 0u) << label;
        HarnessParams rp = withMode(mode);
        rp.controls.resumeFrom = &mid;
        const RunResult resumed = runProgram(g.kind, prog, rp);
        EXPECT_EQ(resumed.status, RunStatus::Ok) << label;
        EXPECT_EQ(resumed.resumedFromCycle, mid.cycle) << label;
        EXPECT_EQ(resultKey(resumed), resultKey(pure)) << label;
    }
}

// The ten seed goldens (Fig6Style table of test_seed_equivalence.cc):
// every workload x runtime pair the kernel-equivalence suite pins must
// also round-trip through checkpoint/resume bit-identically.
INSTANTIATE_TEST_SUITE_P(
    Fig6Style, CheckpointRoundTrip,
    ::testing::Values(
        GoldenRun{"task-free", RuntimeKind::Serial, 257'280},
        GoldenRun{"task-free", RuntimeKind::NanosSW, 5'043'488},
        GoldenRun{"task-free", RuntimeKind::NanosRV, 978'924},
        GoldenRun{"task-free", RuntimeKind::NanosAXI, 1'189'170},
        GoldenRun{"task-free", RuntimeKind::Phentos, 51'566},
        GoldenRun{"task-chain", RuntimeKind::Serial, 257'280},
        GoldenRun{"task-chain", RuntimeKind::NanosSW, 4'589'870},
        GoldenRun{"task-chain", RuntimeKind::NanosRV, 2'689'474},
        GoldenRun{"task-chain", RuntimeKind::NanosAXI, 3'097'835},
        GoldenRun{"task-chain", RuntimeKind::Phentos, 289'118}),
    [](const auto &info) {
        return testName(info.param.workload, info.param.kind);
    });

TEST(Checkpoint, ReplayReproducesTheExactCutSequence)
{
    const Program prog = namedWorkload("task-free");
    const Cycle every = 10'000;

    std::vector<sim::Checkpoint> first;
    HarnessParams hp;
    hp.controls.checkpointEvery = every;
    hp.controls.onCheckpoint = [&first](const sim::Checkpoint &c) {
        first.push_back(c);
    };
    const RunResult a = runProgram(RuntimeKind::Phentos, prog, hp);
    ASSERT_TRUE(a.completed);
    ASSERT_GE(first.size(), 3u);

    // Resume with the same stride: the replay must re-take every cut
    // with the same label and digest, and verify the resume point.
    std::vector<sim::Checkpoint> second;
    HarnessParams rp;
    rp.controls.checkpointEvery = every;
    rp.controls.resumeFrom = &first[1];
    rp.controls.onCheckpoint = [&second](const sim::Checkpoint &c) {
        second.push_back(c);
    };
    const RunResult b = runProgram(RuntimeKind::Phentos, prog, rp);
    EXPECT_EQ(b.status, RunStatus::Ok);
    EXPECT_EQ(resultKey(a), resultKey(b));
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        EXPECT_EQ(second[i].cycle, first[i].cycle);
        EXPECT_EQ(second[i].digest, first[i].digest);
    }
}

TEST(Checkpoint, DigestMismatchFailsTheRunLoudly)
{
    const Program prog = namedWorkload("task-free");

    std::vector<sim::Checkpoint> cuts;
    HarnessParams hp;
    hp.controls.checkpointEvery = 10'000;
    hp.controls.onCheckpoint = [&cuts](const sim::Checkpoint &c) {
        cuts.push_back(c);
    };
    ASSERT_TRUE(runProgram(RuntimeKind::Phentos, prog, hp).completed);
    ASSERT_FALSE(cuts.empty());

    sim::Checkpoint corrupt = cuts.front();
    corrupt.digest ^= 1; // a different spec/binary/environment
    HarnessParams rp;
    rp.controls.resumeFrom = &corrupt;
    const RunResult res = runProgram(RuntimeKind::Phentos, prog, rp);
    EXPECT_EQ(res.status, RunStatus::Error);
    EXPECT_FALSE(res.completed);
    EXPECT_NE(res.error.find("digest mismatch"), std::string::npos)
        << res.error;
}

TEST(Checkpoint, StatDumpsCapturedOnlyOnRequest)
{
    const Program prog = namedWorkload("task-free");

    HarnessParams hp;
    hp.controls.checkpointEvery = 20'000;
    std::vector<sim::Checkpoint> plain;
    hp.controls.onCheckpoint = [&plain](const sim::Checkpoint &c) {
        plain.push_back(c);
    };
    ASSERT_TRUE(runProgram(RuntimeKind::Phentos, prog, hp).completed);

    hp.controls.checkpointDumps = true;
    std::vector<sim::Checkpoint> dumped;
    hp.controls.onCheckpoint = [&dumped](const sim::Checkpoint &c) {
        dumped.push_back(c);
    };
    ASSERT_TRUE(runProgram(RuntimeKind::Phentos, prog, hp).completed);

    ASSERT_EQ(plain.size(), dumped.size());
    for (std::size_t i = 0; i < plain.size(); ++i) {
        EXPECT_TRUE(plain[i].statDump.empty());
        ASSERT_FALSE(dumped[i].statDump.empty());
        // The digest is FNV-1a over exactly the captured text.
        EXPECT_EQ(sim::fnv1a(dumped[i].statDump), dumped[i].digest);
        EXPECT_EQ(dumped[i].digest, plain[i].digest);
    }
}

// -- PDES: forced cuts at window barriers -------------------------------

namespace
{

spec::RunSpec
pdesSpec(unsigned hostThreads)
{
    spec::RunSpec s;
    s.workload = "task-free";
    s.wl = {{"tasks", 2000}, {"deps", 1}, {"payload", 500}};
    s.schedShards = 4;
    s.pdes = cpu::PdesParams::Partition::Force;
    s.hostThreads = hostThreads;
    s.canonicalize();
    return s;
}

} // namespace

class PdesCheckpoint : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(PdesCheckpoint, ResumeBitIdenticalUnderPartitionedKernel)
{
    const spec::RunSpec s = pdesSpec(GetParam());

    std::vector<sim::Checkpoint> cuts;
    RunControls ctl;
    ctl.checkpointEvery = 40'000;
    ctl.onCheckpoint = [&cuts](const sim::Checkpoint &c) {
        cuts.push_back(c);
    };
    spec::InspectedRun base = spec::Engine::runInspected(s, nullptr, ctl);
    ASSERT_TRUE(base.result.completed);
    ASSERT_GE(cuts.size(), 2u);
    const std::string baseDump = statDumpOf(base);

    // PDES cuts land on window barriers, not stride multiples, but the
    // sequence is still strictly ordered and 1-based.
    for (std::size_t i = 0; i < cuts.size(); ++i) {
        EXPECT_EQ(cuts[i].seq, i + 1);
        if (i > 0) {
            EXPECT_GT(cuts[i].cycle, cuts[i - 1].cycle);
        }
    }

    const sim::Checkpoint mid = cuts[cuts.size() / 2];
    RunControls rctl;
    rctl.resumeFrom = &mid;
    spec::InspectedRun resumed =
        spec::Engine::runInspected(s, nullptr, rctl);
    EXPECT_EQ(resumed.result.status, RunStatus::Ok);
    EXPECT_EQ(resumed.result.resumedFromCycle, mid.cycle);
    EXPECT_EQ(resultKey(resumed.result), resultKey(base.result));
    // Full stat-dump equality: every counter in the system, not just
    // the fields RunResult surfaces.
    EXPECT_EQ(statDumpOf(resumed), baseDump);
}

INSTANTIATE_TEST_SUITE_P(HostThreads, PdesCheckpoint,
                         ::testing::Values(2u, 4u),
                         [](const auto &info) {
                             return "h" + std::to_string(info.param);
                         });
