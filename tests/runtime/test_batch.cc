/** @file Unit tests for the parallel batch harness (runBatch). */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "apps/workloads.hh"
#include "runtime/harness.hh"

using namespace picosim;
using namespace picosim::rt;

namespace
{

std::vector<Job>
smallMatrix()
{
    std::vector<Job> jobs;
    const RuntimeKind kinds[] = {RuntimeKind::Serial, RuntimeKind::NanosRV,
                                 RuntimeKind::Phentos};
    const Program progs[] = {apps::taskFree(64, 1, 500),
                             apps::taskChain(64, 1, 500),
                             apps::blackscholes(512, 32)};
    for (const Program &prog : progs) {
        for (const RuntimeKind kind : kinds) {
            Job job;
            job.kind = kind;
            job.prog = prog;
            jobs.push_back(std::move(job));
        }
    }
    return jobs;
}

} // namespace

TEST(RunBatch, EmptyBatchYieldsNoResults)
{
    EXPECT_TRUE(runBatch({}).empty());
}

TEST(RunBatch, MatchesSequentialHarnessRuns)
{
    const std::vector<Job> jobs = smallMatrix();
    const std::vector<RunResult> batch = runBatch(jobs, 4);

    ASSERT_EQ(batch.size(), jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const RunResult seq =
            runProgram(jobs[i].kind, jobs[i].prog, jobs[i].params);
        EXPECT_TRUE(batch[i].completed) << i;
        EXPECT_EQ(batch[i].cycles, seq.cycles) << i;
        EXPECT_EQ(batch[i].runtime, seq.runtime) << i;
        EXPECT_EQ(batch[i].program, seq.program) << i;
    }
}

TEST(RunBatch, ThreadCountDoesNotChangeResults)
{
    const std::vector<Job> jobs = smallMatrix();
    const std::vector<RunResult> one = runBatch(jobs, 1);
    const std::vector<RunResult> four = runBatch(jobs, 4);
    const std::vector<RunResult> many = runBatch(jobs, 16);

    ASSERT_EQ(one.size(), four.size());
    ASSERT_EQ(one.size(), many.size());
    for (std::size_t i = 0; i < one.size(); ++i) {
        EXPECT_EQ(one[i].cycles, four[i].cycles) << i;
        EXPECT_EQ(one[i].cycles, many[i].cycles) << i;
    }
}

TEST(RunBatch, InvokesCallbackOncePerJob)
{
    const std::vector<Job> jobs = smallMatrix();
    std::atomic<unsigned> calls{0};
    std::vector<char> seen(jobs.size(), 0);
    const auto results =
        runBatch(jobs, 4, [&](std::size_t i, const RunResult &res) {
            ++calls;
            ASSERT_LT(i, seen.size());
            seen[i] += 1;
            EXPECT_FALSE(res.program.empty());
        });
    EXPECT_EQ(calls.load(), jobs.size());
    for (const char s : seen)
        EXPECT_EQ(s, 1);
    EXPECT_EQ(results.size(), jobs.size());
}

TEST(RunBatch, SerialJobsForcedToOneCore)
{
    Job job;
    job.kind = RuntimeKind::Serial;
    job.prog = apps::taskFree(32, 1, 100);
    job.params.numCores = 8;
    const auto results = runBatch({job}, 2);
    ASSERT_EQ(results.size(), 1u);
    EXPECT_TRUE(results[0].completed);
    EXPECT_EQ(results[0].runtime, "serial");
}
