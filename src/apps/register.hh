/**
 * @file
 * Registration hooks tying each workload generator's translation unit
 * into the spec::WorkloadRegistry. Every generator .cc in this directory
 * implements its own hook (owning its registry entries — name, parameter
 * schema, description, factory); registerBuiltinWorkloads() is the one
 * place that enumerates them, called lazily by the registry singleton.
 *
 * Plain functions instead of static registrar objects: the library is
 * linked statically, where an unreferenced TU's initializers are legally
 * dropped — a registry silently missing workloads would be the result.
 */

#ifndef PICOSIM_APPS_REGISTER_HH
#define PICOSIM_APPS_REGISTER_HH

namespace picosim::spec
{
class WorkloadRegistry;
}

namespace picosim::apps
{

void registerTaskbenchWorkloads(spec::WorkloadRegistry &reg);
void registerBlackscholesWorkloads(spec::WorkloadRegistry &reg);
void registerJacobiWorkloads(spec::WorkloadRegistry &reg);
void registerSparseLuWorkloads(spec::WorkloadRegistry &reg);
void registerStreamWorkloads(spec::WorkloadRegistry &reg);
void registerCholeskyWorkloads(spec::WorkloadRegistry &reg);
void registerMergesortWorkloads(spec::WorkloadRegistry &reg);

/** Register every built-in workload (called once by the registry). */
void registerBuiltinWorkloads(spec::WorkloadRegistry &reg);

} // namespace picosim::apps

#endif // PICOSIM_APPS_REGISTER_HH
