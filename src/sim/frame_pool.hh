/**
 * @file
 * Thread-local free-list allocator for coroutine frames.
 *
 * Every simulated task body, runtime routine and nested CoTask call
 * allocates a coroutine frame; under the general-purpose allocator that
 * malloc/free churn is both a single-run cost and — because the heap is
 * the ONE resource all runBatch worker threads share — the dominant
 * cross-thread serialization point of parallel sweeps. Frames are
 * perfectly recyclable: a handful of distinct sizes, allocated and freed
 * in enormous numbers, never crossing threads (each batch job simulates
 * entirely on one worker). A per-thread, size-bucketed free list makes
 * every steady-state frame allocation a pointer pop with zero sharing.
 *
 * Blocks are returned to the system allocator when the owning thread
 * exits; oversized frames (> kMaxBytes) fall through to operator new.
 */

#ifndef PICOSIM_SIM_FRAME_POOL_HH
#define PICOSIM_SIM_FRAME_POOL_HH

#include <cstddef>
#include <new>

namespace picosim::sim::detail
{

class FramePool
{
  public:
    static constexpr std::size_t kGranule = 64;
    static constexpr std::size_t kMaxBytes = 4096;

    ~FramePool()
    {
        for (Node *&head : free_) {
            while (head) {
                Node *next = head->next;
                ::operator delete(static_cast<void *>(head));
                head = next;
            }
        }
    }

    void *
    alloc(std::size_t n)
    {
        if (n == 0)
            n = 1;
        if (n > kMaxBytes)
            return ::operator new(n);
        const std::size_t b = (n - 1) / kGranule;
        if (Node *p = free_[b]) {
            free_[b] = p->next;
            return p;
        }
        return ::operator new((b + 1) * kGranule);
    }

    void
    dealloc(void *p, std::size_t n)
    {
        if (n == 0)
            n = 1;
        if (n > kMaxBytes) {
            ::operator delete(p);
            return;
        }
        const std::size_t b = (n - 1) / kGranule;
        Node *node = static_cast<Node *>(p);
        node->next = free_[b];
        free_[b] = node;
    }

    /** The calling thread's pool. */
    static FramePool &
    local()
    {
        static thread_local FramePool pool;
        return pool;
    }

  private:
    struct Node
    {
        Node *next;
    };

    Node *free_[kMaxBytes / kGranule] = {};
};

inline void *
frameAlloc(std::size_t n)
{
    return FramePool::local().alloc(n);
}

inline void
frameFree(void *p, std::size_t n)
{
    FramePool::local().dealloc(p, n);
}

} // namespace picosim::sim::detail

#endif // PICOSIM_SIM_FRAME_POOL_HH
