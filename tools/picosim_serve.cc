/**
 * @file
 * picosim_serve: the experiment daemon. Listens on a plain TCP socket
 * and executes submitted RunSpecs through the shared JobManager (the
 * same execution path `picosim_run` uses in-process). The protocol is
 * documented in src/service/wire.hh; `picosim_submit` is the matching
 * client.
 *
 * Usage:
 *   picosim_serve [--port=N] [--host=ADDR] [--workers=N]
 *                 [--max-queued=N] [--timeout=SEC]
 *
 *   --port       listen port (default 0 = ephemeral; the chosen port is
 *                printed on the "listening" line for scripts to parse)
 *   --host       bind address (default 127.0.0.1)
 *   --workers    simulation worker threads (default: hardware
 *                concurrency)
 *   --max-queued job admission cap (default 0 = unbounded)
 *   --timeout    default per-job wall-clock budget in seconds
 *                (default 0 = none; SUBMIT timeout= overrides)
 *
 * The server runs until a client sends SHUTDOWN.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "service/server.hh"

using namespace picosim;

namespace
{

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr,
                 "%s\nusage: picosim_serve [--port=N] [--host=ADDR] "
                 "[--workers=N] [--max-queued=N] [--timeout=SEC]\n",
                 msg);
    std::exit(1);
}

} // namespace

int
main(int argc, char **argv)
{
    svc::ServerParams params;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const std::size_t eq = arg.find('=');
        if (arg.rfind("--", 0) != 0 || eq == std::string::npos)
            usage(("bad argument '" + arg + "'").c_str());
        const std::string key = arg.substr(2, eq - 2);
        const std::string value = arg.substr(eq + 1);
        char *end = nullptr;
        if (key == "port") {
            const unsigned long v = std::strtoul(value.c_str(), &end, 10);
            if (*end != '\0' || v > 65535)
                usage("--port expects a port number");
            params.port = static_cast<unsigned short>(v);
        } else if (key == "host") {
            params.host = value;
        } else if (key == "workers") {
            const unsigned long v = std::strtoul(value.c_str(), &end, 10);
            if (*end != '\0' || v > 4096)
                usage("--workers expects an integer in [0, 4096]");
            params.manager.workers = static_cast<unsigned>(v);
        } else if (key == "max-queued") {
            const unsigned long v = std::strtoul(value.c_str(), &end, 10);
            if (*end != '\0')
                usage("--max-queued expects an integer");
            params.manager.maxQueued = v;
        } else if (key == "timeout") {
            params.manager.defaultTimeoutSec =
                std::strtod(value.c_str(), &end);
            if (*end != '\0' || params.manager.defaultTimeoutSec < 0)
                usage("--timeout expects seconds");
        } else {
            usage(("unknown flag '--" + key + "'").c_str());
        }
    }

    try {
        svc::Server server(params);
        // Scripts parse this exact line (and its flush) to learn the
        // ephemeral port before connecting.
        std::printf("picosim_serve listening on %s:%u\n",
                    server.host().c_str(),
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
        server.serveForever();
        std::printf("picosim_serve shut down\n");
        return 0;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "picosim_serve: %s\n", e.what());
        return 1;
    }
}
