/**
 * @file
 * Quickstart: build a tiny task-parallel program, run it on the simulated
 * 8-core Rocket Chip with the Picos scheduler under each runtime, and
 * print the resulting cycle counts and speedups.
 */

#include <cstdio>

#include "apps/workloads.hh"
#include "runtime/harness.hh"

using namespace picosim;

int
main()
{
    // A diamond-shaped program: one producer, many parallel consumers,
    // one final reducer -- written directly against the public API.
    rt::Program prog;
    prog.name = "quickstart-diamond";
    const Addr buf = 0x7000'0000;
    prog.spawn(20'000, {{buf, rt::Dir::Out}}); // producer
    for (unsigned i = 0; i < 24; ++i) {
        prog.spawn(15'000, {{buf, rt::Dir::In},
                            {buf + 64 * (i + 1), rt::Dir::Out}});
    }
    std::vector<rt::TaskDep> reduce_deps{{buf, rt::Dir::InOut}};
    prog.spawn(30'000, reduce_deps); // reducer (waits for readers: WAR)
    prog.taskwait();

    std::printf("program: %s, %llu tasks, %llu serial payload cycles\n\n",
                prog.name.c_str(),
                static_cast<unsigned long long>(prog.numTasks()),
                static_cast<unsigned long long>(
                    prog.serialPayloadCycles()));
    std::printf("%-10s %14s %9s\n", "runtime", "cycles", "speedup");

    for (rt::RuntimeKind kind :
         {rt::RuntimeKind::NanosSW, rt::RuntimeKind::NanosRV,
          rt::RuntimeKind::NanosAXI, rt::RuntimeKind::Phentos}) {
        const rt::RunResult res = rt::runWithSpeedup(kind, prog);
        std::printf("%-10s %14llu %8.2fx%s\n", res.runtime.c_str(),
                    static_cast<unsigned long long>(res.cycles),
                    res.speedup(), res.completed ? "" : "  (INCOMPLETE)");
    }
    return 0;
}
