#include "sim/kernel.hh"

#include <algorithm>
#include <bit>

#include "sim/log.hh"

namespace picosim::sim
{

void
Ticked::requestWake(Cycle cycle)
{
    if (sim_)
        sim_->requestWake(this, cycle);
}

void
Simulator::addTicked(Ticked *component)
{
    if (component->sim_ && component->sim_ != this)
        fatal("Ticked '" + component->name() +
              "' already registered with another Simulator");
    component->sim_ = this;
    component->regIndex_ = static_cast<unsigned>(ticked_.size());
    ticked_.push_back(component);
    wheel_.addComponent(component->regIndex_);
    // Initial evaluation at the current cycle, like the reference kernel's
    // first tick-the-world pass.
    addExternal(component, clock_.now());
    arm(component, clock_.now());
}

void
Simulator::addExternal(Ticked *t, Cycle cycle)
{
    if (t->extHead_ == kCycleNever) {
        t->extHead_ = cycle;
        return;
    }
    if (cycle == t->extHead_)
        return; // duplicate of the earliest pending wake
    if (cycle < t->extHead_) {
        std::swap(cycle, t->extHead_); // old head becomes a later wake
    }
    auto &more = t->extMore_;
    const auto it = std::lower_bound(more.begin(), more.end(), cycle);
    if (it == more.end() || *it != cycle)
        more.insert(it, cycle); // keep sorted, deduplicated
}

void
Simulator::consumeExternalHead(Ticked *t)
{
    if (t->extMore_.empty()) {
        t->extHead_ = kCycleNever;
    } else {
        t->extHead_ = t->extMore_.front();
        t->extMore_.erase(t->extMore_.begin());
    }
}

void
Simulator::disarm(Ticked *t)
{
    if (t->armedAt_ == kCycleNever)
        return;
    if (t->far_) {
        t->far_ = false;
        if (--farCount_ == 0)
            farMin_ = kCycleNever;
    } else {
        wheel_.clear(t->regIndex_, t->armedAt_);
    }
    t->armedAt_ = kCycleNever;
}

void
Simulator::arm(Ticked *t, Cycle now)
{
    const Cycle due = std::min(t->selfSched_, t->extHead_);
    if (due == t->armedAt_)
        return; // already armed at its due cycle
    disarm(t);
    if (due == kCycleNever)
        return;
    t->armedAt_ = due;
    if (due - now < EventWheel::kBuckets) {
        wheel_.set(t->regIndex_, due);
    } else {
        t->far_ = true;
        ++farCount_;
        farMin_ = std::min(farMin_, due);
    }
}

void
Simulator::refileFar(Cycle now)
{
    if (farCount_ == 0 || farMin_ - now >= EventWheel::kBuckets)
        return;
    // At least one far component may have entered the horizon (farMin_ is
    // a conservative lower bound); re-derive the far set exactly.
    Cycle newMin = kCycleNever;
    for (Ticked *t : ticked_) {
        if (!t->far_)
            continue;
        if (t->armedAt_ - now < EventWheel::kBuckets) {
            t->far_ = false;
            --farCount_;
            wheel_.set(t->regIndex_, t->armedAt_);
        } else {
            newMin = std::min(newMin, t->armedAt_);
        }
    }
    farMin_ = newMin;
}

void
Simulator::requestWake(Ticked *component, Cycle cycle)
{
    if (mode_ == EvalMode::TickWorld)
        return; // the polling kernel re-queries everything each cycle
    const Cycle now = clock_.now();
    Cycle c = std::max(cycle, now);
    if (c == now && evaluating_ &&
        (component->lastTick_ == now ||
         component->regIndex_ <= currentRegIndex_)) {
        // The component's evaluation slot for this cycle has passed; the
        // reference kernel would make this state visible to it next cycle.
        c = now + 1;
    }
    if (c == kCycleNever)
        return;
    addExternal(component, c);
    arm(component, now);
}

void
Simulator::evaluateDue()
{
    const Cycle now = clock_.now();
    refileFar(now);

    bool tickedAny = false;
    evaluating_ = true;
    const unsigned nwords = wheel_.numWords();
    for (unsigned w = 0; w < nwords; ++w) {
        // The word is re-read after every dispatch: a tick may wake a
        // LATER-registered component for this same cycle (bits at or
        // below the current slot slip to the next cycle in requestWake),
        // so the live view preserves registration-order dispatch.
        std::uint64_t bits;
        while ((bits = wheel_.word(now, w)) != 0) {
            const unsigned r =
                w * 64 + static_cast<unsigned>(std::countr_zero(bits));
            wheel_.clearBit(now, r);
            Ticked *t = ticked_[r];
            t->armedAt_ = kCycleNever;
            if (t->extHead_ == now)
                consumeExternalHead(t); // tracked wake consumed
            if (t->selfSched_ == now)
                t->selfSched_ = kCycleNever;
            if (t->lastTick_ == now) {
                arm(t, now);
                continue; // already evaluated this cycle
            }
            t->lastTick_ = now;
            currentRegIndex_ = r;

            t->fastTick();
            ++componentTicks_;
            tickedAny = true;

            // Re-arm at the component's own next due cycle; wakes
            // requested during its own tick have updated extHead_.
            const Cycle self = t->fastDue(now + 1);
            t->selfSched_ = self == kCycleNever
                                ? kCycleNever
                                : std::max(self, now + 1);
            arm(t, now);
        }
    }
    evaluating_ = false;
    if (tickedAny)
        ++evaluatedCycles_;
}

Cycle
Simulator::refreshNextEventCycle()
{
    const Cycle now = clock_.now();
    // Dense-phase fast path: something is armed for the immediately next
    // cycle, which no revalidation could beat (armed cycles are >= now,
    // and re-validated self-schedules clamp to now + 1 as well). A stale
    // self-schedule costs at most one idle evaluation and re-arms itself
    // from live state — results are unaffected.
    if (wheel_.anyAt(now + 1))
        return now + 1;
    while (true) {
        refileFar(now);
        Cycle c = wheel_.firstOnOrAfter(now);
        bool inWheel = true;
        if (c == kCycleNever) {
            if (farCount_ == 0)
                return kCycleNever;
            // Nothing within the horizon: the minimum lives in the far
            // set (re-derive it exactly; farMin_ is a lower bound).
            c = kCycleNever;
            for (Ticked *t : ticked_)
                if (t->far_)
                    c = std::min(c, t->armedAt_);
            farMin_ = c;
            inWheel = false;
        }

        // Re-validate components armed at c purely by self-schedule: a
        // consumer may have emptied the queue the re-arm was computed
        // for, pushing the real due cycle out (or a contract-violating
        // mutation pulled it in). External wakes are always honored.
        bool anyValid = false;
        Cycle movedMin = kCycleNever;
        const auto revalidate = [&](Ticked *t) {
            if (t->extHead_ == c) {
                anyValid = true;
                return;
            }
            if (t->lastTick_ == now) {
                // Ticked (and re-armed from live state) this very cycle:
                // any later same-cycle mutation comes with a requestWake
                // by the kernel contract, so the self-schedule is fresh —
                // skip the duplicate active()/wakeAt() computation that
                // dominated the fast-forward path.
                anyValid = true;
                return;
            }
            Cycle fresh = t->fastDue(now + 1);
            if (fresh != kCycleNever)
                fresh = std::max(fresh, now + 1);
            if (fresh == c) {
                anyValid = true;
                return;
            }
            t->selfSched_ = fresh;
            arm(t, now);
            movedMin = std::min(movedMin, t->armedAt_);
        };

        if (inWheel) {
            const unsigned nwords = wheel_.numWords();
            for (unsigned w = 0; w < nwords; ++w) {
                std::uint64_t bits = wheel_.word(c, w);
                while (bits) {
                    const unsigned r =
                        w * 64 +
                        static_cast<unsigned>(std::countr_zero(bits));
                    bits &= bits - 1;
                    revalidate(ticked_[r]);
                }
            }
        } else {
            for (Ticked *t : ticked_)
                if (t->far_ && t->armedAt_ == c)
                    revalidate(t);
        }

        if (anyValid && movedMin >= c)
            return c;
        // Either everything moved later (rescan finds the new minimum)
        // or a re-validated component moved EARLIER than c (stale entry
        // masked a nearer due cycle) — rescan from the current cycle.
    }
}

bool
Simulator::run(DonePredicate done, Cycle limit)
{
    if (mode_ == EvalMode::TickWorld)
        return runTickWorld(done, limit);

    const Cycle start = clock_.now();
    while (true) {
        if (done())
            return true;
        if (clock_.now() - start >= limit)
            return false;

        evaluateDue();

        const Cycle next = refreshNextEventCycle();
        if (next == kCycleNever) {
            // Fully idle system: either done() holds now or the
            // simulation can never progress again.
            return done();
        }
        clock_.advanceTo(next);
    }
}

void
Simulator::runFor(Cycle n)
{
    if (mode_ == EvalMode::TickWorld) {
        runForTickWorld(n);
        return;
    }

    const Cycle end = clock_.now() + n;
    while (clock_.now() < end) {
        evaluateDue();
        const Cycle next = refreshNextEventCycle();
        clock_.advanceTo(std::min(next == kCycleNever ? end : next, end));
    }
}

// -- TickWorld reference implementation ---------------------------------

void
Simulator::evaluateAll()
{
    for (Ticked *t : ticked_)
        t->fastTick();
    componentTicks_ += ticked_.size();
    ++evaluatedCycles_;
}

bool
Simulator::anyActive() const
{
    return std::any_of(ticked_.begin(), ticked_.end(),
                       [](const Ticked *t) { return t->fastActive(); });
}

Cycle
Simulator::nextWakeAll() const
{
    Cycle wake = kCycleNever;
    for (const Ticked *t : ticked_)
        wake = std::min(wake, t->fastWakeAt());
    return wake;
}

bool
Simulator::runTickWorld(const DonePredicate &done, Cycle limit)
{
    const Cycle start = clock_.now();
    while (true) {
        if (done())
            return true;
        if (clock_.now() - start >= limit)
            return false;

        evaluateAll();

        if (anyActive()) {
            clock_.advanceTo(clock_.now() + 1);
            continue;
        }
        const Cycle wake = nextWakeAll();
        if (wake == kCycleNever) {
            // Fully idle system: either done() holds next check or the
            // simulation can never progress again.
            return done();
        }
        clock_.advanceTo(std::max(wake, clock_.now() + 1));
    }
}

void
Simulator::runForTickWorld(Cycle n)
{
    const Cycle end = clock_.now() + n;
    while (clock_.now() < end) {
        evaluateAll();
        Cycle next = clock_.now() + 1;
        if (!anyActive()) {
            const Cycle wake = nextWakeAll();
            if (wake != kCycleNever)
                next = std::max(next, wake);
            else
                next = end;
        }
        clock_.advanceTo(std::min(next, end));
    }
}

} // namespace picosim::sim
