#include "spec/engine.hh"

#include "runtime/nanos.hh"
#include "runtime/phentos.hh"
#include "runtime/task_trace.hh"
#include "spec/workload_registry.hh"

namespace picosim::spec
{

rt::Program
Engine::buildProgram(const RunSpec &spec)
{
    return WorkloadRegistry::instance().build(spec.workload, spec.wl);
}

rt::HarnessParams
Engine::harnessParams(const RunSpec &spec)
{
    rt::HarnessParams hp;
    hp.numCores = spec.cores;
    hp.cycleLimit = spec.cycleLimit;

    cpu::SystemParams &sp = hp.system;
    sp.evalMode = spec.mode;
    sp.bandwidthAlpha = spec.bandwidthAlpha;

    sp.mem.mode = spec.mem;
    sp.mem.mshrs = spec.mshrs;
    sp.mem.busBytesPerCycle = spec.busBytes;
    sp.mem.memOccupancy = spec.memOccupancy;

    sp.topology.schedShards = spec.schedShards;
    sp.topology.clusters = spec.clusters;
    sp.topology.workStealing = spec.steal;
    sp.topology.clusterLinkCycles = spec.clusterLink;
    sp.topology.xshardDepCycles = spec.xshardDep;
    sp.topology.xshardNotifyCycles = spec.xshardNotify;
    sp.topology.stealPenaltyCycles = spec.stealPenalty;
    sp.topology.gatewayQueueDepth = spec.gatewayDepth;

    sp.manager.coreReadyQueueDepth = spec.coreReadyDepth;
    sp.hartApi.roccLatency = spec.roccLatency;

    sp.pdes.hostThreads = spec.hostThreads;
    sp.pdes.domains = spec.pdesDomains;
    sp.pdes.partition = spec.pdes;
    return hp;
}

cpu::SystemParams
Engine::systemParams(const RunSpec &spec)
{
    const rt::HarnessParams hp = harnessParams(spec);
    cpu::SystemParams sp = hp.system;
    sp.numCores = spec.runtime == rt::RuntimeKind::Serial ? 1 : hp.numCores;
    if (spec.runtime == rt::RuntimeKind::Serial) {
        // The serial baseline never touches the scheduler; a clustered
        // topology cannot be laid out over its single core.
        sp.topology = {};
    }
    return sp;
}

std::unique_ptr<cpu::System>
Engine::makeSystem(const RunSpec &spec)
{
    return std::make_unique<cpu::System>(systemParams(spec));
}

rt::RunResult
Engine::run(const RunSpec &spec)
{
    return rt::runProgram(spec.runtime, buildProgram(spec),
                          harnessParams(spec));
}

rt::RunResult
Engine::runWithSpeedup(const RunSpec &spec)
{
    return rt::runWithSpeedup(spec.runtime, buildProgram(spec),
                              harnessParams(spec));
}

std::vector<rt::RunResult>
Engine::runBatch(const std::vector<RunSpec> &specs, unsigned threads,
                 const std::function<void(std::size_t,
                                          const rt::RunResult &)> &onResult)
{
    std::vector<rt::Job> jobs;
    jobs.reserve(specs.size());
    for (const RunSpec &spec : specs) {
        rt::Job job;
        job.kind = spec.runtime;
        job.prog = buildProgram(spec);
        job.params = harnessParams(spec);
        job.label = spec.serialize();
        jobs.push_back(std::move(job));
    }
    return rt::runBatch(jobs, threads, onResult);
}

InspectedRun
Engine::runInspected(const RunSpec &spec, rt::TaskTrace *trace)
{
    const rt::HarnessParams hp = harnessParams(spec);
    const rt::Program prog = buildProgram(spec);

    InspectedRun out;
    out.system = makeSystem(spec);
    out.runtime = rt::makeRuntime(spec.runtime, hp.costs);

    if (trace != nullptr) {
        trace->reset(prog.numTasks());
        if (auto *ph = dynamic_cast<rt::Phentos *>(out.runtime.get()))
            ph->setTrace(trace);
        else if (auto *nn = dynamic_cast<rt::Nanos *>(out.runtime.get()))
            nn->setTrace(trace);
    }

    out.runtime->install(*out.system, prog);
    const bool ok = out.system->run(hp.cycleLimit);

    rt::RunResult &res = out.result;
    res.runtime = out.runtime->name();
    res.program = prog.name;
    res.completed = ok && out.runtime->finished();
    res.cycles = out.system->clock().now();
    res.serialPayload = prog.serialPayloadCycles();
    res.tasks = prog.numTasks();
    res.meanTaskSize = prog.meanTaskSize();
    res.evaluatedCycles = out.system->simulator().evaluatedCycles();
    res.componentTicks = out.system->simulator().componentTicks();
    res.tickWorldTicks = out.system->simulator().tickWorldTicks();
    res.workerSubmits = out.runtime->tasksSubmittedByWorkers();
    res.inlineTasks = out.runtime->tasksExecutedInline();
    rt::fillContentionStats(res, *out.system);
    return out;
}

} // namespace picosim::spec
