/**
 * @file
 * Extension experiment (beyond the paper's fixed 8-core prototype):
 * core-count scaling. Section I argues that the task spawning frequency
 * required to avoid starvation grows linearly with the core count, so a
 * software runtime that feeds 4 cores can starve 16. We sweep 1..16
 * cores on a fine-grained workload and report speedups: Phentos should
 * keep scaling while Nanos-SW flatlines at its scheduling throughput
 * (Meenderinck & Juurlink's observation, here reproduced end to end).
 * The sweep is expressed as spec::RunSpec mutations over one base spec.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "spec/engine.hh"

using namespace picosim;
using namespace picosim::bench;

int
main()
{
    // ~8700-cycle tasks: coarse enough for serial to matter, fine enough
    // that a software scheduler saturates before 16 cores.
    spec::RunSpec base;
    base.workload = "blackscholes";
    base.wl = {{"options", 8192}, {"block", 16}};
    base.canonicalize();
    const rt::Program prog = spec::Engine::buildProgram(base);
    std::printf("# Extension: core-count scaling, %s "
                "(%llu tasks, %.0f cycles each)\n",
                prog.name.c_str(),
                static_cast<unsigned long long>(prog.numTasks()),
                prog.meanTaskSize());
    std::printf("%-6s %10s %10s %10s\n", "cores", "Nanos-SW", "Nanos-RV",
                "Phentos");

    spec::RunSpec serialSpec = base;
    serialSpec.runtime = rt::RuntimeKind::Serial;
    const auto serial = bench::runJob(serialSpec);

    for (unsigned cores : {1u, 2u, 4u, 8u, 12u, 16u}) {
        const auto speedup = [&](rt::RuntimeKind kind) {
            spec::RunSpec s = base;
            s.runtime = kind;
            s.cores = cores;
            const auto r = bench::runJob(s);
            return r.completed ? static_cast<double>(serial.cycles) /
                                     static_cast<double>(r.cycles)
                               : 0.0;
        };
        std::printf("%-6u %9.2fx %9.2fx %9.2fx\n", cores,
                    speedup(rt::RuntimeKind::NanosSW),
                    speedup(rt::RuntimeKind::NanosRV),
                    speedup(rt::RuntimeKind::Phentos));
    }
    std::printf("# Expected shape: Nanos-SW saturates at its maximum "
                "task throughput while\n# the tightly-integrated "
                "runtimes keep scaling (paper Sections I-II).\n");

    // The inline memory model charges latency with zero bus occupancy, so
    // the sweep above is optimistic at high core counts. Re-run the
    // scheduling-heavy runtime under the timed (contention-aware) memory
    // subsystem and report the divergence the inline assumption hides.
    std::printf("\n# Timed vs inline memory (Nanos-SW makespan cycles)\n");
    std::printf("%-6s %14s %14s %9s\n", "cores", "inline", "timed",
                "diff%");
    for (unsigned cores : {2u, 8u, 16u}) {
        spec::RunSpec s = base;
        s.runtime = rt::RuntimeKind::NanosSW;
        s.cores = cores;
        s.mem = mem::MemMode::Inline;
        const auto ri = bench::runJob(s);
        s.mem = mem::MemMode::Timed;
        const auto rtm = bench::runJob(s);
        const double diff =
            ri.cycles == 0
                ? 0.0
                : 100.0 *
                      (static_cast<double>(rtm.cycles) -
                       static_cast<double>(ri.cycles)) /
                      static_cast<double>(ri.cycles);
        std::printf("%-6u %14llu %14llu %8.2f%%\n", cores,
                    static_cast<unsigned long long>(ri.cycles),
                    static_cast<unsigned long long>(rtm.cycles), diff);
    }
    std::printf("# See mem_sensitivity for the full runtime x core-count "
                "divergence matrix.\n");
    return 0;
}
