#include "service/journal.hh"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace picosim::svc
{

namespace
{

constexpr const char *kFileName = "jobs.journal";

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

[[noreturn]] void
ioFail(const std::string &what, const std::string &path)
{
    throw std::runtime_error("journal: " + what + " '" + path +
                             "': " + std::strerror(errno));
}

/** The complete on-disk frame of one record. */
std::string
frame(const std::string &payload)
{
    char head[48];
    std::snprintf(head, sizeof(head), "PJ1 %zu %08x\n", payload.size(),
                  crc32(payload));
    std::string out = head;
    out += payload;
    out += '\n';
    return out;
}

bool
writeAll(int fd, const std::string &data)
{
    std::size_t done = 0;
    while (done < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + done, data.size() - done);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        done += static_cast<std::size_t>(n);
    }
    return true;
}

} // namespace

std::uint32_t
crc32(std::string_view data)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (const char ch : data)
        c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

std::string
Journal::filePath(const std::string &dir)
{
    return dir + "/" + kFileName;
}

Journal::Journal(const std::string &dir) : path_(filePath(dir))
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        ioFail("mkdir", dir);
    fd_ = ::open(path_.c_str(), O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC,
                 0644);
    if (fd_ < 0)
        ioFail("open", path_);
}

Journal::~Journal()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Journal::append(const std::string &payload)
{
    const std::string rec = frame(payload);
    const std::lock_guard<std::mutex> lk(lock_);
    if (!writeAll(fd_, rec))
        ioFail("write", path_);
    if (::fsync(fd_) != 0)
        ioFail("fsync", path_);
}

std::vector<std::string>
Journal::readAll(const std::string &dir, std::ostream *diag)
{
    std::vector<std::string> out;
    std::ifstream in(filePath(dir), std::ios::binary);
    if (!in.is_open())
        return out; // first boot: nothing journaled yet

    std::string text{std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>()};
    std::size_t pos = 0;
    const auto tear = [&](const char *why) {
        if (diag != nullptr) {
            *diag << "picosim journal: " << why << " at byte " << pos
                  << " of " << filePath(dir) << "; keeping the "
                  << out.size() << " intact record(s) before it and "
                  << "discarding the rest\n";
        }
        return out;
    };

    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos)
            return tear("truncated frame header");
        const std::string head = text.substr(pos, nl - pos);
        std::size_t len = 0;
        unsigned long want = 0;
        {
            char tag[8] = {};
            unsigned long long n = 0;
            if (std::sscanf(head.c_str(), "%3s %llu %lx", tag, &n,
                            &want) != 3 ||
                std::string(tag) != "PJ1")
                return tear("unrecognized frame header");
            len = static_cast<std::size_t>(n);
        }
        const std::size_t body = nl + 1;
        if (body + len + 1 > text.size())
            return tear("torn record (payload shorter than header says)");
        if (text[body + len] != '\n')
            return tear("torn record (missing payload terminator)");
        const std::string payload = text.substr(body, len);
        if (crc32(payload) != static_cast<std::uint32_t>(want))
            return tear("CRC mismatch (corrupt record)");
        out.push_back(payload);
        pos = body + len + 1;
    }
    return out;
}

void
Journal::rewrite(const std::string &dir,
                 const std::vector<std::string> &payloads)
{
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST)
        ioFail("mkdir", dir);
    const std::string path = filePath(dir);
    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(),
                          O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0)
        ioFail("open", tmp);

    std::string all;
    for (const std::string &p : payloads)
        all += frame(p);
    const bool ok = writeAll(fd, all) && ::fsync(fd) == 0;
    ::close(fd);
    if (!ok)
        ioFail("write", tmp);
    if (::rename(tmp.c_str(), path.c_str()) != 0)
        ioFail("rename", tmp);
}

} // namespace picosim::svc
