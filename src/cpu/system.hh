/**
 * @file
 * Assembly of one complete simulated system: N cores with delegates, the
 * Picos Manager(s), the dependence-management scheduler, the coherent
 * memory model and the kernel (paper Figure 2).
 *
 * With the default topology (1 shard, 1 cluster) the paper's single
 * centralized Picos is constructed, bit-identical to the seed model.
 * Larger topologies group cores into clusters — one PicosManager each —
 * in front of a ShardedPicos whose dependence table is address-
 * interleaved over N shards (the many-core scaling layer).
 */

#ifndef PICOSIM_CPU_SYSTEM_HH
#define PICOSIM_CPU_SYSTEM_HH

#include <memory>
#include <vector>

#include "cpu/bandwidth.hh"
#include "cpu/core.hh"
#include "cpu/hart_api.hh"
#include "delegate/picos_delegate.hh"
#include "manager/picos_manager.hh"
#include "mem/coherent_memory.hh"
#include "mem/mem_subsystem.hh"
#include "picos/picos.hh"
#include "picos/sharded_picos.hh"
#include "picos/topology.hh"
#include "sim/fault.hh"
#include "sim/kernel.hh"

namespace picosim::cpu
{

/** Conservative-PDES (multi-threaded single-simulation) configuration. */
struct PdesParams
{
    /** Host threads for the windowed run loop. Any value >= 1 produces
     *  bit-identical results; > 1 only changes who executes windows. */
    unsigned hostThreads = 1;

    /**
     * PDES domain count. 0 (auto) derives the partition from the
     * topology: the full {cores+runtime+memory | one domain per cluster
     * manager | scheduler} cut when the cluster link is at least one
     * cycle, the classic 2-way {cores+managers | scheduler} cut
     * otherwise. Values >= 2 request exactly that many domains (clamped
     * to the 2 + clusters the component graph supports; in between, the
     * per-cluster managers are folded round-robin onto the manager
     * domains). 1 is rejected — use partition = Off for a sequential
     * run. Deliberately NEVER derived from hostThreads: the partition,
     * and therefore every simulated result, is a pure function of the
     * simulated topology, so any thread count replays the same schedule.
     */
    unsigned domains = 0;

    enum class Partition : std::uint8_t
    {
        /** Partition only when hostThreads > 1 asks for parallelism. */
        Auto,
        /** Never partition; plain sequential kernel regardless. */
        Off,
        /** Partition whenever the topology has a cut, even at 1 thread
         *  (lets tests/CI compare thread counts on the same schedule). */
        Force,
    };
    Partition partition = Partition::Auto;
};

struct SystemParams
{
    unsigned numCores = 8;
    picos::PicosParams picos{};
    picos::TopologyParams topology{};
    manager::ManagerParams manager{};
    mem::MemParams mem{};
    HartApiParams hartApi{};
    double bandwidthAlpha = 0.058;
    /** Kernel strategy; TickWorld is the bit-exact reference baseline. */
    sim::EvalMode evalMode = sim::EvalMode::EventDriven;
    PdesParams pdes{};

    /** Fault to inject into the model (KillShard/StallLink; DropJob is
     *  harness-level and ignored here). Requires the sharded topology —
     *  the spec layer rejects shard/link faults without one. */
    sim::FaultPlan fault{};
};

class System
{
  public:
    explicit System(const SystemParams &params = {});

    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }

    sim::Simulator &simulator() { return sim_; }
    const sim::Clock &clock() const { return sim_.clock(); }
    sim::StatGroup &stats() { return sim_.stats(); }

    Core &core(CoreId i) { return *cores_.at(i); }
    delegate::PicosDelegate &delegateOf(CoreId i) { return *delegates_.at(i); }
    HartApi &hartApi(CoreId i) { return *hartApis_.at(i); }
    mem::CoherentMemory &memory() { return *memory_; }

    /** Timed memory subsystem; nullptr when mem.mode == MemMode::Inline. */
    mem::TimedMemory *timedMemory() { return timedMem_.get(); }

    /** The single centralized Picos; only valid in the default
     *  (1 shard, 1 cluster) topology — panics otherwise. */
    picos::Picos &picos();

    /** The sharded scheduler; nullptr in the single-Picos topology. */
    picos::ShardedPicos *sharded() { return sharded_.get(); }

    unsigned numClusters() const
    {
        return static_cast<unsigned>(managers_.size());
    }

    /** Cluster that core @p i belongs to (contiguous, balanced blocks). */
    unsigned clusterOfCore(CoreId i) const;

    /** Manager of cluster @p cluster (the only one by default). */
    manager::PicosManager &manager(unsigned cluster = 0)
    {
        return *managers_.at(cluster);
    }

    BandwidthModel &bandwidth() { return bandwidth_; }

    /** Install a software thread on core @p i. */
    void
    installThread(CoreId i, sim::CoTask<void> thread)
    {
        cores_.at(i)->install(std::move(thread));
    }

    /** True when every installed hart thread has finished. */
    bool allThreadsDone() const;

    /**
     * Run until all hart threads complete. @return true on completion,
     * false when the cycle limit was hit (likely deadlock).
     */
    bool run(Cycle limit = kCycleNever);

    const SystemParams &params() const { return params_; }

    /** True when this system runs partitioned (conservative PDES). */
    bool pdesActive() const { return pdesActive_; }

    /** Resolved PDES domain count (1 when not partitioned). */
    unsigned pdesDomains() const { return sim_.numDomains(); }

  private:
    /** First core of @p cluster (balanced contiguous blocks). */
    unsigned clusterBegin(unsigned cluster) const;

    /** Domain hosting cluster @p c's manager in an @p ndom-way cut. */
    static unsigned managerDomainOf(unsigned c, unsigned ndom);

    SystemParams params_;
    sim::Simulator sim_;
    BandwidthModel bandwidth_;
    std::unique_ptr<mem::CoherentMemory> memory_;
    std::unique_ptr<mem::TimedMemory> timedMem_;
    std::unique_ptr<picos::Picos> picos_;
    std::unique_ptr<picos::ShardedPicos> sharded_;
    std::vector<std::unique_ptr<manager::PicosManager>> managers_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<delegate::PicosDelegate>> delegates_;
    std::vector<std::unique_ptr<HartApi>> hartApis_;

    /** Cores whose thread is finished (or absent), maintained by the
     *  cores themselves — makes the run loop's done() check O(1). */
    std::uint32_t coresDone_ = 0;

    bool pdesActive_ = false;
};

} // namespace picosim::cpu

#endif // PICOSIM_CPU_SYSTEM_HH
