/**
 * @file
 * Command-line driver: a thin shell over the spec layer. Flags are spec
 * keys (`--cores=16` sets the spec key `cores`); the driver parses them
 * into a spec::RunSpec, resolves it through the workload registry, and
 * dispatches to spec::Engine. Multiple workloads (comma-separated) are
 * simulated in parallel on a worker pool.
 *
 * Usage:
 *   picosim_run [--list] [--list-workloads]
 *               [--spec=FILE] [--dump-spec]
 *               [--workload=NAME[,NAME...]] [--wl.PARAM=N ...]
 *               [--runtime=KIND] [--cores=N] [--jobs=N]
 *               [--mode=event|tickworld] [--mem=inline|timed] [--mshrs=N]
 *               [--bus-bytes=N] [--mem-occupancy=N] [--sched-shards=N]
 *               [--clusters=N] [--steal=on|off] [--host-threads=N]
 *               [--pdes=auto|off|force] [--pdes-domains=auto|N]
 *               [--repeat=N] [--seed=N] [--nested] [--stats]
 *               [--trace=FILE.json]
 *
 *   NAME: a workload-registry name (see --list-workloads), optionally
 *         parameterized with --wl.PARAM flags, or a Figure-9 input label
 *         substring, e.g. "blackscholes 4K B8" (rewritten to the registry
 *         name plus its wl.* parameters).
 *   --spec: read key=value pairs (or a flat JSON object) from FILE first;
 *         command-line flags override file keys.
 *   --dump-spec: print the fully resolved spec (one key=value per line)
 *         and exit. `picosim_run --dump-spec ... | picosim_run --spec
 *         /dev/stdin` reproduces the run exactly.
 *   --nested: taskbench nested mode — task-free/task-chain become the
 *         equivalent recursive task trees (workers spawn the children).
 *   KIND: serial | nanos-sw | nanos-rv | nanos-axi | phentos
 *   --jobs: worker threads for multi-workload batches (default: hardware
 *           concurrency). Execution-only: not part of the spec.
 *
 * Every other key is documented in src/spec/run_spec.hh; unknown flags
 * and misspelled keys are rejected with a nearest-key suggestion.
 *
 * --stats / --trace need the simulated System inspectable after the run,
 * so they force the single-workload in-process path.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/workloads.hh"
#include "runtime/harness.hh"
#include "runtime/task_trace.hh"
#include "service/job_manager.hh"
#include "service/run_plan.hh"
#include "spec/engine.hh"
#include "spec/run_spec.hh"
#include "spec/workload_registry.hh"

using namespace picosim;

namespace
{

/** One parsed command-line argument: `--key=value` or a bare `--flag`. */
struct CliArg
{
    std::string key;
    std::string value;
    bool has_value = false;
};

/** Bare flags (no value) the driver itself consumes. */
constexpr const char *kBareFlags[] = {
    "list", "list-workloads", "dump-spec", "nested", "stats",
};

/** Valued flags that are not spec keys (execution/introspection only). */
constexpr const char *kDriverValueFlags[] = {
    "workload", "jobs", "trace", "spec",
};

bool
isBareFlag(const std::string &key)
{
    for (const char *f : kBareFlags)
        if (key == f)
            return true;
    return false;
}

bool
isDriverValueFlag(const std::string &key)
{
    for (const char *f : kDriverValueFlags)
        if (key == f)
            return true;
    return false;
}

/** Closest known flag (spec keys + driver flags) for a typo suggestion. */
std::string
nearestFlag(const std::string &key)
{
    std::string best = spec::RunSpec::nearestKey(key);
    unsigned bestDist = best.empty() ? ~0u : spec::editDistance(key, best);
    const auto consider = [&](const char *name) {
        const unsigned d = spec::editDistance(key, name);
        if (d < bestDist) {
            bestDist = d;
            best = name;
        }
    };
    for (const char *f : kBareFlags)
        consider(f);
    for (const char *f : kDriverValueFlags)
        consider(f);
    return best;
}

bool
isSpecKey(const std::string &key)
{
    if (key.rfind("wl.", 0) == 0)
        return true;
    for (const std::string &k : spec::RunSpec::keys())
        if (key == k)
            return true;
    return false;
}

/**
 * Split argv into CliArgs. Throws SpecError for arguments that are not
 * `--key[=value]` or whose bare/valued shape does not match the flag.
 */
std::vector<CliArg>
parseArgv(int argc, char **argv)
{
    std::vector<CliArg> args;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            throw spec::SpecError("unexpected argument '" + arg +
                                  "' (flags look like --key=value)");
        }
        CliArg out;
        const std::size_t eq = arg.find('=');
        if (eq == std::string::npos) {
            out.key = arg.substr(2);
            // Valued driver flags also accept "--flag VALUE".
            if (isDriverValueFlag(out.key) && i + 1 < argc &&
                std::strncmp(argv[i + 1], "--", 2) != 0) {
                out.value = argv[++i];
                out.has_value = true;
            }
        } else {
            out.key = arg.substr(2, eq - 2);
            out.value = arg.substr(eq + 1);
            out.has_value = true;
        }
        if (out.key.empty()) {
            throw spec::SpecError("unexpected argument '" + arg +
                                  "' (flags look like --key=value)");
        }
        args.push_back(std::move(out));
    }
    return args;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> parts;
    std::stringstream ss(s);
    std::string part;
    while (std::getline(ss, part, ','))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

/** Legacy quick listing (workload names, runtimes, memory models). */
void
printList()
{
    std::printf("workloads:\n  task-free\n  task-chain\n"
                "  cholesky-nested\n  mergesort-nested\n  task-tree\n");
    for (const auto &input : apps::figure9Inputs())
        std::printf("  %s %s\n", input.program.c_str(),
                    input.label.c_str());
    std::printf("runtimes: serial nanos-sw nanos-rv nanos-axi "
                "phentos\n");
    std::printf("memory models: inline timed\n");
}

/** Registry listing: every workload with its parameter schema. */
void
printWorkloadRegistry()
{
    std::printf("workloads:\n");
    for (const auto &def : spec::WorkloadRegistry::instance().list()) {
        std::printf("  %-18s %s\n", def.name.c_str(),
                    def.description.c_str());
        for (const auto &p : def.params) {
            std::printf("    wl.%-16s %s (default %llu, range [%llu, "
                        "%llu])\n",
                        p.name.c_str(), p.help.c_str(),
                        static_cast<unsigned long long>(p.def),
                        static_cast<unsigned long long>(p.min),
                        static_cast<unsigned long long>(p.max));
        }
    }
}

/** Single-workload path with the System kept inspectable (stats/trace). */
int
runInspectable(const spec::RunSpec &sp,
               const std::optional<std::string> &trace_path, bool stats)
{
    rt::TaskTrace trace;
    spec::InspectedRun run = spec::Engine::runInspected(
        sp, trace_path ? &trace : nullptr);

    spec::RunSpec serial = sp;
    serial.runtime = rt::RuntimeKind::Serial;
    run.result.serialCycles = spec::Engine::run(serial).cycles;
    svc::printRunResult(run.result, run.system->numCores());

    if (trace_path) {
        std::ofstream out(*trace_path);
        trace.writeChromeTrace(out, run.result.program);
        std::printf("trace     : %s (queue %.0f cyc, service %.0f cyc)\n",
                    trace_path->c_str(), trace.meanQueueLatency(),
                    trace.meanServiceTime());
        if (trace.droppedRecords() > 0)
            std::printf("trace     : WARNING %llu events beyond the "
                        "%llu-record ceiling were dropped\n",
                        static_cast<unsigned long long>(
                            trace.droppedRecords()),
                        static_cast<unsigned long long>(
                            rt::TaskTrace::kMaxRecords));
    }
    if (stats) {
        std::printf("\n-- system statistics --\n");
        run.system->stats().dump(std::cout);
        run.system->memory().stats().dump(std::cout);
    }
    return run.result.completed ? 0 : 1;
}

int
runMain(int argc, char **argv)
{
    const std::vector<CliArg> args = parseArgv(argc, argv);

    // Pass 1: driver-level flags.
    bool list = false, list_workloads = false, dump_spec = false;
    bool nested = false, stats = false;
    std::optional<std::string> workloads_flag, trace_path, spec_path;
    unsigned jobs = 0;
    for (const CliArg &a : args) {
        if (!isBareFlag(a.key) && !isDriverValueFlag(a.key) &&
            !isSpecKey(a.key)) {
            throw spec::SpecError(
                "unknown flag '--" + a.key + "'" +
                spec::didYouMean(a.key, nearestFlag(a.key), "--"));
        }
        if (isBareFlag(a.key)) {
            if (a.has_value) {
                throw spec::SpecError("--" + a.key +
                                      " does not take a value");
            }
            if (a.key == "list") list = true;
            else if (a.key == "list-workloads") list_workloads = true;
            else if (a.key == "dump-spec") dump_spec = true;
            else if (a.key == "nested") nested = true;
            else if (a.key == "stats") stats = true;
            continue;
        }
        if (!a.has_value) {
            // A known valued flag missing its value.
            if (isDriverValueFlag(a.key)) {
                throw spec::SpecError("--" + a.key + " expects a value "
                                      "(--" + a.key + "=...)");
            }
            spec::RunSpec probe;
            probe.setKey(a.key, "", "--"); // throws the right message
            continue;
        }
        if (a.key == "workload") workloads_flag = a.value;
        else if (a.key == "trace") trace_path = a.value;
        else if (a.key == "spec") spec_path = a.value;
        else if (a.key == "jobs") {
            // Execution-only knob, same strict parsing as spec keys.
            const std::string &v = a.value;
            bool ok = !v.empty() && v.size() <= 12;
            unsigned long long value = 0;
            if (ok) {
                for (const char c : v) {
                    if (c < '0' || c > '9') { ok = false; break; }
                    value = value * 10 + static_cast<unsigned>(c - '0');
                }
            }
            if (!ok || value > 4096) {
                throw spec::SpecError(
                    "--jobs expects an integer in [0, 4096], got '" + v +
                    "'");
            }
            jobs = static_cast<unsigned>(value);
        }
        // Spec keys are applied in pass 2 (after any --spec file).
    }

    if (list) {
        printList();
        return 0;
    }
    if (list_workloads) {
        printWorkloadRegistry();
        return 0;
    }

    // Base spec: file first, then command-line keys override.
    spec::RunSpec base;
    if (spec_path) {
        std::ifstream in(*spec_path);
        if (!in) {
            std::fprintf(stderr, "cannot read spec file '%s'\n",
                         spec_path->c_str());
            return 1;
        }
        std::ostringstream text;
        text << in.rdbuf();
        base.merge(text.str());
    }
    for (const CliArg &a : args) {
        if (isBareFlag(a.key) || isDriverValueFlag(a.key) ||
            a.key == "workload")
            continue;
        if (a.key == "jobs" || !a.has_value)
            continue;
        base.setKey(a.key, a.value, "--");
    }
    base.nested = base.nested || nested;

    // The legacy no-flag default: blackscholes 4K with 32-option blocks.
    std::vector<std::string> names;
    if (workloads_flag) {
        names = splitCommas(*workloads_flag);
        if (names.empty()) {
            std::fprintf(stderr, "no workload given\n");
            return 1;
        }
    } else if (!spec_path) {
        names = {"blackscholes 4K B32"};
    }

    // Resolve one canonical spec per workload name; warnings once.
    std::vector<spec::RunSpec> specs;
    if (names.empty()) {
        specs.push_back(base);
    } else {
        for (const std::string &name : names) {
            spec::RunSpec sp = base;
            sp.workload = name;
            specs.push_back(std::move(sp));
        }
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const auto warnings = specs[i].canonicalize("--");
        if (i == 0) {
            for (const std::string &w : warnings)
                std::fprintf(stderr, "%s\n", w.c_str());
        }
    }

    if (dump_spec) {
        if (specs.size() > 1) {
            std::fprintf(stderr,
                         "--dump-spec needs a single workload\n");
            return 1;
        }
        std::printf("%s\n", specs[0].serialize('\n').c_str());
        return 0;
    }

    // Introspection keeps the legacy single-run path; everything else
    // goes through the batch engine (workload + serial baseline each).
    if (trace_path || stats) {
        if (specs.size() > 1) {
            std::fprintf(stderr,
                         "--trace/--stats need a single workload\n");
            return 1;
        }
        return runInspectable(specs[0], trace_path, stats);
    }

    // Batch execution rides the job core: the CLI is a local in-process
    // client of the same JobManager the daemon serves, so a spec run
    // here and a spec submitted over the wire share one execution path.
    const svc::RunPlan plan = svc::RunPlan::make(specs);

    svc::JobManager::Params mp;
    mp.workers = jobs;
    svc::JobManager manager(mp);
    svc::JobSpec job;
    job.runs = plan.runs;
    const std::uint64_t id = manager.submit(std::move(job));
    const svc::JobStatus st = manager.wait(id);
    if (st.state == svc::JobState::Failed) {
        std::fprintf(stderr, "%s\n", st.error.c_str());
        return 1;
    }

    std::vector<svc::RunRow> rows = manager.runRows(id);
    std::vector<rt::RunResult> results;
    results.reserve(rows.size());
    for (svc::RunRow &row : rows)
        results.push_back(std::move(row.result));
    return svc::printPlanResults(plan, results) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return runMain(argc, argv);
    } catch (const spec::SpecError &err) {
        std::fprintf(stderr, "%s\n", err.what());
        return 1;
    }
}
