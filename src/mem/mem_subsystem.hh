/**
 * @file
 * Timed, contention-aware memory subsystem (MemMode::Timed).
 *
 * TimedMemory is the Ticked front half of the memory system: harts issue
 * line-granular requests into per-core L1 front-ends and suspend
 * (sim::BlockHart) until the response arrives; the subsystem schedules
 * each request against three shared/limited resources and wakes the hart
 * at its completion cycle:
 *
 *  - per-core issue slot: one access enters a core's L1 pipeline per
 *    cycle, so bursts (streamTouch) serialize at the front-end;
 *  - per-core MSHRs: a bounded number of outstanding misses; a miss that
 *    finds all MSHRs busy waits for the oldest outstanding completion
 *    (backpressure);
 *  - the shared bus and main memory: FCFS Arbiters with per-transaction
 *    occupancy. Misses occupy the bus for a line transfer; refills and
 *    dirty transfers additionally occupy main memory (a MESI dirty
 *    transfer pays the owner writeback plus the requester refill).
 *
 * Functional MESI state and zero-contention latencies come from the
 * shared CoherentMemory, so an uncontended blocking access costs exactly
 * what MemMode::Inline charges — contention, queuing, and burst
 * parallelism are the only deltas between the modes.
 *
 * Determinism contract: requests are processed in issue order at the
 * issue cycle (harts tick before this component, which is woken for the
 * same cycle), and the whole schedule is cycle arithmetic over resource
 * free-at horizons. Nothing depends on how often tick() runs, so
 * EvalMode::EventDriven and EvalMode::TickWorld stay bit-identical.
 */

#ifndef PICOSIM_MEM_MEM_SUBSYSTEM_HH
#define PICOSIM_MEM_MEM_SUBSYSTEM_HH

#include <deque>
#include <vector>

#include "mem/coherent_memory.hh"
#include "sim/clock.hh"
#include "sim/cotask.hh"
#include "sim/port.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/types.hh"

namespace picosim::mem
{

class TimedMemory final : public sim::Ticked
{
  public:
    TimedMemory(const sim::Clock &clock, CoherentMemory &func,
                sim::StatGroup &stats);

    /**
     * Bind the hart issuing on @p core: the context parked on BlockHart
     * and the core component to wake when its response completes.
     */
    void bindHart(CoreId core, sim::HartContext *ctx, sim::Ticked *hart);

    /**
     * Issue a burst of @p lines consecutive line accesses from @p core.
     * Must be called from that core's hart coroutine, which must
     * immediately `co_await sim::BlockHart{}`; the hart is woken at the
     * completion cycle of the last response. One outstanding burst per
     * core (the hart is blocked while it is in flight).
     */
    void issue(CoreId core, MemOp op, Addr base, unsigned lines);

    // -- Ticked --
    void tick() override;
    bool active() const override { return false; }
    Cycle wakeAt() const override { return kCycleNever; }

    const MemParams &params() const { return func_.params(); }

  private:
    struct Request
    {
        MemOp op;
        Addr addr;
    };

    /** Per-core L1 front-end. */
    struct Front
    {
        std::deque<Request> queue;   ///< issued, not yet scheduled
        std::vector<Cycle> inflight; ///< completions of outstanding misses
        Cycle slotFreeAt = 0;        ///< next free issue slot
        unsigned remaining = 0;      ///< burst requests not yet scheduled
        Cycle burstDone = 0;         ///< latest completion in the burst
        sim::HartContext *ctx = nullptr;
        sim::Ticked *hart = nullptr;
    };

    /** Schedule every queued request of @p core (all are schedulable:
     *  MSHR pressure delays the issue slot instead of stalling). */
    void drain(CoreId core);

    /** Schedule one request; @return its completion cycle. */
    Cycle schedule(CoreId core, const Request &req);

    const sim::Clock &clock_;
    CoherentMemory &func_;
    std::vector<Front> fronts_;
    sim::Arbiter bus_;
    sim::Arbiter dram_;
    sim::Scalar *accesses_;
    sim::Scalar *mshrStallCycles_;
};

} // namespace picosim::mem

#endif // PICOSIM_MEM_MEM_SUBSYSTEM_HH
