/**
 * @file
 * Interface for cycle-evaluated hardware components.
 */

#ifndef PICOSIM_SIM_TICKED_HH
#define PICOSIM_SIM_TICKED_HH

#include <string>

#include "sim/types.hh"

namespace picosim::sim
{

class Simulator;

/**
 * A component evaluated at simulated cycles by the kernel.
 *
 * Under the event-driven kernel (the default), a component is evaluated
 * only at cycles for which it is scheduled in the kernel's event queue:
 *
 *  - after every tick() the kernel re-arms the component at its own next
 *    due cycle (now + 1 while active(), wakeAt() otherwise);
 *  - any state mutation from outside the component's own tick() — a
 *    producer pushing into one of its queues, a consumer freeing space —
 *    must be accompanied by a requestWake() so the sleeping component is
 *    evaluated when that state becomes visible.
 *
 * Components scheduled for the same cycle are evaluated in registration
 * order, so results are bit-identical to the reference tick-the-world
 * kernel (EvalMode::TickWorld), which simply ticks every component in
 * registration order for every cycle in which at least one is active.
 */
class Ticked
{
  public:
    explicit Ticked(std::string name) : name_(std::move(name)) {}
    virtual ~Ticked() = default;

    Ticked(const Ticked &) = delete;
    Ticked &operator=(const Ticked &) = delete;

    /** Evaluate one cycle at the current clock value. */
    virtual void tick() = 0;

    /**
     * True when the component has work to do in the immediate next cycle
     * (non-empty internal queues, in-flight operations, resumable harts).
     */
    virtual bool active() const = 0;

    /**
     * When inactive, the earliest future cycle at which the component needs
     * to be ticked again (kCycleNever when it is fully idle until external
     * stimulus arrives).
     */
    virtual Cycle wakeAt() const { return kCycleNever; }

    /**
     * Ask the owning kernel to evaluate this component at (or after)
     * @p cycle. Safe to call from anywhere — another component's tick(),
     * a hart coroutine, or harness code between runs. A no-op when the
     * component is not registered with a Simulator (bare unit tests) or
     * the kernel runs in TickWorld mode. Requests for the current cycle
     * made after this component's evaluation slot has passed take effect
     * next cycle, preserving registration-order semantics.
     */
    void requestWake(Cycle cycle);

    /** True once registered with a Simulator. */
    bool attached() const { return sim_ != nullptr; }

    /** Position in the kernel's registration order (valid when attached). */
    unsigned regIndex() const { return regIndex_; }

    const std::string &name() const { return name_; }

  private:
    friend class Simulator;

    std::string name_;

    // -- Scheduling bookkeeping, owned by the registered Simulator --
    Simulator *sim_ = nullptr;
    unsigned regIndex_ = 0;
    Cycle selfSched_ = kCycleNever;   ///< cycle of the valid self entry
    Cycle extEarliest_ = kCycleNever; ///< min pending external wake (dedup)
    Cycle lastTick_ = kCycleNever;    ///< cycle of the last evaluation
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_TICKED_HH
