/**
 * @file
 * Embedding the spec layer: describe experiments as RunSpecs, run them
 * through the Engine facade, and emit a replayable record of each run.
 *
 * This is the programmatic face of the `--spec` / `--dump-spec`
 * workflow: a sweep is a base spec plus mutations, every result carries
 * the serialized spec that produced it, and any printed spec can be fed
 * back through `picosim_run --spec /dev/stdin` (or RunSpec::parse) to
 * reproduce the exact run — same cycle count, bit for bit.
 */

#include <cstdio>
#include <vector>

#include "spec/engine.hh"
#include "spec/run_spec.hh"

using namespace picosim;

int
main()
{
    // The base experiment, written as spec text exactly as a spec file
    // would hold it. parse() validates every key against the schema --
    // a typo'd key or out-of-range value throws spec::SpecError with a
    // message naming the key, the value and the legal range.
    spec::RunSpec base;
    try {
        base = spec::RunSpec::parse("workload=blackscholes\n"
                                    "wl.options=4096\n"
                                    "wl.block=8\n"
                                    "runtime=phentos\n");
    } catch (const spec::SpecError &e) {
        std::fprintf(stderr, "bad spec: %s\n", e.what());
        return 1;
    }

    // A sweep is just spec mutations. Canonical specs compare and
    // serialize deterministically, so the serialized form IS the
    // experiment's identity.
    std::vector<spec::RunSpec> sweep;
    for (unsigned cores : {2u, 4u, 8u, 16u}) {
        spec::RunSpec s = base;
        s.cores = cores;
        sweep.push_back(s);
    }

    std::printf("%-6s %12s %9s\n", "cores", "cycles", "speedup");
    for (const spec::RunSpec &s : sweep) {
        // runWithSpeedup also runs the serial baseline; Engine::run()
        // skips it, Engine::runBatch() spreads specs over a worker pool.
        const rt::RunResult r = spec::Engine::runWithSpeedup(s);
        std::printf("%-6u %12llu %8.2fx\n", s.cores,
                    static_cast<unsigned long long>(r.cycles),
                    r.speedup());
    }

    // The replay handle: paste this line into a file (or pipe it) and
    // `picosim_run --spec` reruns the 16-core point exactly.
    std::printf("\nreplay the last point with:\n  picosim_run --spec "
                "<<< '%s'\n",
                sweep.back().serialize().c_str());
    return 0;
}
