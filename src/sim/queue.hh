/**
 * @file
 * Hardware FIFO queue models.
 *
 * TimedFifo models a Chisel Queue: bounded capacity, and an optional
 * minimum residency latency so that non-fallthrough behaviour (an element
 * pushed in cycle c is visible to the consumer in cycle c + latency) can be
 * expressed. Latency 0 yields a fallthrough (combinational) queue, which is
 * the Chisel default used inside Rocket Chip; the Picos-facing protocol
 * crossing modules instantiate latency-1 queues (Section IV-F2).
 */

#ifndef PICOSIM_SIM_QUEUE_HH
#define PICOSIM_SIM_QUEUE_HH

#include <cstddef>
#include <deque>

#include "sim/clock.hh"
#include "sim/log.hh"
#include "sim/types.hh"

namespace picosim::sim
{

template <typename T>
class TimedFifo
{
  public:
    /**
     * @param clock Shared cycle clock.
     * @param capacity Maximum number of resident elements.
     * @param latency Cycles before a pushed element becomes visible.
     */
    TimedFifo(const Clock &clock, std::size_t capacity, Cycle latency = 0)
        : clock_(clock), capacity_(capacity), latency_(latency)
    {
    }

    std::size_t capacity() const { return capacity_; }
    std::size_t size() const { return items_.size(); }
    bool empty() const { return items_.empty(); }
    bool full() const { return items_.size() >= capacity_; }

    /** True when the consumer can see and pop the front element now. */
    bool
    frontReady() const
    {
        return !items_.empty() && items_.front().readyAt <= clock_.now();
    }

    /** True when a producer may push this cycle. */
    bool canPush() const { return !full(); }

    /** Push; returns false when full (producer must retry). */
    bool
    push(T value)
    {
        if (full())
            return false;
        items_.push_back(Slot{clock_.now() + latency_, std::move(value)});
        return true;
    }

    /** Front element; only valid when frontReady(). */
    const T &
    front() const
    {
        if (!frontReady())
            panic("TimedFifo::front on not-ready queue");
        return items_.front().value;
    }

    /** Pop and return the front element; only valid when frontReady(). */
    T
    pop()
    {
        if (!frontReady())
            panic("TimedFifo::pop on not-ready queue");
        T value = std::move(items_.front().value);
        items_.pop_front();
        return value;
    }

    void clear() { items_.clear(); }

    /**
     * Earliest cycle at which the front element becomes consumable, or
     * kCycleNever when empty. Used by the kernel's fast-forward logic.
     */
    Cycle
    nextReadyCycle() const
    {
        return items_.empty() ? kCycleNever : items_.front().readyAt;
    }

  private:
    struct Slot
    {
        Cycle readyAt;
        T value;
    };

    const Clock &clock_;
    std::size_t capacity_;
    Cycle latency_;
    std::deque<Slot> items_;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_QUEUE_HH
