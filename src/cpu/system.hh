/**
 * @file
 * Assembly of one complete simulated system: N cores with delegates, the
 * Picos Manager, Picos, the coherent memory model and the kernel
 * (paper Figure 2).
 */

#ifndef PICOSIM_CPU_SYSTEM_HH
#define PICOSIM_CPU_SYSTEM_HH

#include <memory>
#include <vector>

#include "cpu/bandwidth.hh"
#include "cpu/core.hh"
#include "cpu/hart_api.hh"
#include "delegate/picos_delegate.hh"
#include "manager/picos_manager.hh"
#include "mem/coherent_memory.hh"
#include "mem/mem_subsystem.hh"
#include "picos/picos.hh"
#include "sim/kernel.hh"

namespace picosim::cpu
{

struct SystemParams
{
    unsigned numCores = 8;
    picos::PicosParams picos{};
    manager::ManagerParams manager{};
    mem::MemParams mem{};
    HartApiParams hartApi{};
    double bandwidthAlpha = 0.058;
    /** Kernel strategy; TickWorld is the bit-exact reference baseline. */
    sim::EvalMode evalMode = sim::EvalMode::EventDriven;
};

class System
{
  public:
    explicit System(const SystemParams &params = {});

    unsigned numCores() const { return static_cast<unsigned>(cores_.size()); }

    sim::Simulator &simulator() { return sim_; }
    const sim::Clock &clock() const { return sim_.clock(); }
    sim::StatGroup &stats() { return sim_.stats(); }

    Core &core(CoreId i) { return *cores_.at(i); }
    delegate::PicosDelegate &delegateOf(CoreId i) { return *delegates_.at(i); }
    HartApi &hartApi(CoreId i) { return *hartApis_.at(i); }
    mem::CoherentMemory &memory() { return *memory_; }

    /** Timed memory subsystem; nullptr when mem.mode == MemMode::Inline. */
    mem::TimedMemory *timedMemory() { return timedMem_.get(); }
    picos::Picos &picos() { return *picos_; }
    manager::PicosManager &manager() { return *manager_; }
    BandwidthModel &bandwidth() { return bandwidth_; }

    /** Install a software thread on core @p i. */
    void
    installThread(CoreId i, sim::CoTask<void> thread)
    {
        cores_.at(i)->install(std::move(thread));
    }

    /** True when every installed hart thread has finished. */
    bool allThreadsDone() const;

    /**
     * Run until all hart threads complete. @return true on completion,
     * false when the cycle limit was hit (likely deadlock).
     */
    bool run(Cycle limit = kCycleNever);

    const SystemParams &params() const { return params_; }

  private:
    SystemParams params_;
    sim::Simulator sim_;
    BandwidthModel bandwidth_;
    std::unique_ptr<mem::CoherentMemory> memory_;
    std::unique_ptr<mem::TimedMemory> timedMem_;
    std::unique_ptr<picos::Picos> picos_;
    std::unique_ptr<manager::PicosManager> manager_;
    std::vector<std::unique_ptr<Core>> cores_;
    std::vector<std::unique_ptr<delegate::PicosDelegate>> delegates_;
    std::vector<std::unique_ptr<HartApi>> hartApis_;
};

} // namespace picosim::cpu

#endif // PICOSIM_CPU_SYSTEM_HH
