/**
 * @file
 * Multi-Picos scaling layer: N dependence-management shards behind C
 * per-cluster submission/ready fabrics (the many-core extension of the
 * paper's single centralized accelerator, Section IV-D).
 *
 * Topology (all links are sim/port.hh primitives):
 *
 *   cluster c's PicosManager --TimedPort--> cluster router --Arbiter-->
 *       shard gateway s --DepTable shard s--> ready/retire pipelines
 *
 *  - The dependence table is address-interleaved over the shards
 *    (DepTable::shardOf); a task's home shard is the owner of its first
 *    dependence address (dependence-free tasks round-robin), so most
 *    lookups stay shard-local while remote dependences pay a per-dep
 *    cross-shard table cost at the gateway.
 *  - Each shard's gateway is serialized by an Arbiter; contention between
 *    clusters shows up as grant-stall cycles in the stats.
 *  - Dependence edges may span shards: the producer's shard resolves
 *    local dependents directly at retirement and forwards a retirement
 *    notification (TimedPort, xshardNotifyCycles) to each remote
 *    dependent's home shard.
 *  - Ready tasks queue at their submitting cluster; a cluster whose ready
 *    scheduler runs dry steals from the longest remote queue (LIFO end),
 *    paying a steal penalty. Everything is evaluated single-threaded in a
 *    fixed order, so schedules are deterministic and bit-identical
 *    between EvalMode::EventDriven and EvalMode::TickWorld.
 *
 * Each cluster-facing SchedulerIf port speaks the exact packet protocol
 * of the single Picos, so PicosManager is reused unchanged per cluster.
 */

#ifndef PICOSIM_PICOS_SHARDED_PICOS_HH
#define PICOSIM_PICOS_SHARDED_PICOS_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <vector>

#include "picos/dep_table.hh"
#include "picos/picos.hh"
#include "picos/picos_params.hh"
#include "picos/scheduler_if.hh"
#include "picos/topology.hh"
#include "rocc/task_packets.hh"
#include "sim/clock.hh"
#include "sim/fault.hh"
#include "sim/port.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"

namespace picosim::picos
{

class ShardedPicos final : public sim::Ticked
{
  public:
    ShardedPicos(const sim::Clock &clock, const PicosParams &params,
                 const TopologyParams &topo, sim::StatGroup &stats)
        : ShardedPicos(clock, clock, params, topo, stats)
    {
    }

    /**
     * PDES form: @p clock is the scheduler's own (consumer) domain
     * clock, @p readyClock the clock of the domain the per-cluster
     * managers live in — the ready-return ports are bound to it so the
     * managers' frontReady() checks read their own domain's time. With
     * both arguments equal this is exactly the classic constructor.
     */
    ShardedPicos(const sim::Clock &clock, const sim::Clock &readyClock,
                 const PicosParams &params, const TopologyParams &topo,
                 sim::StatGroup &stats)
        : ShardedPicos(clock,
                       std::vector<const sim::Clock *>(
                           std::max(1u, topo.clusters), &readyClock),
                       params, topo, stats)
    {
    }

    /**
     * Many-domain PDES form: one manager-domain clock per cluster (the
     * partitioner may spread the per-cluster managers over several
     * domains). @p readyClocks must hold topo.clusters entries; cluster
     * c's ready-return port is bound to readyClocks[c].
     */
    ShardedPicos(const sim::Clock &clock,
                 std::vector<const sim::Clock *> readyClocks,
                 const PicosParams &params, const TopologyParams &topo,
                 sim::StatGroup &stats);

    /** The SchedulerIf endpoint cluster @p c's manager connects to. */
    SchedulerIf &clusterPort(unsigned c);

    /**
     * Arm a KillShard/StallLink fault: while the scheduler-domain clock
     * is inside [plan.cycle, plan.until) — forever from plan.cycle when
     * plan.until is 0 — the target shard stops notifying, retiring and
     * decoding (KillShard), or the target cluster's submission fabric
     * stops moving (StallLink). Backpressure does the rest: upstream
     * queues fill and the system stalls exactly as a real outage would.
     * The down predicate is a pure function of the simulated clock, so
     * faulted runs stay deterministic in both kernels and under PDES.
     */
    void setFault(const sim::FaultPlan &plan) { fault_ = plan; }

    /**
     * Flip every manager<->scheduler port into cross-domain staging mode
     * (topology.pdesBoundaryPorts must have shaped the port latencies).
     * Call after all components are registered with @p sim.
     */
    void bindPdes(sim::Simulator &sim);

    // -- Ticked --
    void tick() override;
    bool active() const override;
    Cycle wakeAt() const override;

    // -- Introspection (tests, stats) --
    unsigned numShards() const { return topo_.schedShards; }
    unsigned numClusters() const { return topo_.clusters; }
    unsigned inFlightTasks() const { return inFlight_; }
    bool quiescent() const;
    std::uint64_t tasksProcessed() const { return tasksProcessed_; }
    std::uint64_t tasksRetired() const { return tasksRetired_; }
    std::uint64_t crossShardEdges() const { return crossShardEdges_; }
    std::uint64_t workSteals() const { return steals_; }
    TaskState taskState(std::uint32_t picos_id) const;
    const PicosParams &params() const { return params_; }

  private:
    struct TaskEntry
    {
        TaskState state = TaskState::Free;
        std::uint32_t gen = 0;
        std::uint64_t swId = 0;
        unsigned pendingDeps = 0;
        std::vector<TaskRef> dependents;
        unsigned homeCluster = 0; ///< submitting (then executing) cluster

        /** Descriptor still being applied at a gateway: wakeups must not
         *  mark the task ready yet — later deps may add more edges. */
        bool applying = false;
    };

    /** A decoded descriptor granted to a shard gateway. */
    struct PendingDesc
    {
        Cycle readyAt = 0; ///< grant + occupancy: processing completes
        rocc::TaskDescriptor desc;
        unsigned homeCluster = 0;
    };

    struct Shard
    {
        Shard(const sim::Clock &clock, const PicosParams &p,
              const TopologyParams &topo, sim::StatGroup &stats,
              unsigned id, sim::Ticked *owner, std::size_t notify_cap);

        DepTable table;
        sim::Arbiter gate; ///< gateway serialization across clusters
        std::deque<PendingDesc> inQueue;

        // Gateway apply state (mirrors Picos's Process/Stalled resume).
        int gwTaskId = -1;
        std::size_t gwDepIndex = 0;
        rocc::TaskDescriptor gwDesc;

        std::deque<std::uint32_t> freeList; ///< global ids of this slice
        Cycle retireBusyUntil = 0;

        /** Incoming forwarded retirement notifications (dependent ids). */
        sim::TimedPort<std::uint32_t> notifyQueue;
    };

    struct Cluster
    {
        Cluster(const sim::Clock &clock, const sim::Clock &readyClock,
                const PicosParams &p, const TopologyParams &topo,
                sim::StatGroup &stats, unsigned id, sim::Ticked *owner);

        sim::TimedPort<std::uint32_t> subQueue;    ///< manager -> router
        sim::TimedPort<std::uint32_t> retireQueue; ///< manager -> shards
        sim::TimedPort<std::uint32_t> readyQueue;  ///< issue -> manager

        std::vector<std::uint32_t> collectBuffer;
        bool hasDecoded = false;
        rocc::TaskDescriptor decoded;
        unsigned rrShard = 0; ///< round-robin home for dep-free tasks

        std::deque<std::uint32_t> readyPending;
        Cycle readyBusyUntil = 0;
        int readyIssuingId = -1;
    };

    class ClusterPort : public SchedulerIf
    {
      public:
        ClusterPort(ShardedPicos &sp, unsigned c) : sp_(sp), c_(c) {}

        bool subCanAccept() const override;
        bool subPush(std::uint32_t packet) override;
        bool readyValid() const override;
        std::uint32_t readyPop() override;
        void setReadyListener(sim::Ticked *listener) override;
        bool retireCanAccept() const override;
        bool retirePush(std::uint32_t picos_id) override;

      private:
        ShardedPicos &sp_;
        unsigned c_;
    };

    bool alive(const TaskRef &ref) const;
    TaskRef refOf(std::uint32_t id) const;
    bool entryEvictable(const DepEntry &entry) const;
    unsigned homeShardOf(std::uint32_t id) const;
    unsigned shardOfDesc(const rocc::TaskDescriptor &desc,
                         const Cluster &cl) const;
    Cycle descOccupancy(const rocc::TaskDescriptor &desc,
                        unsigned home) const;

    void addEdge(const TaskRef &producer, std::uint32_t consumer_id);
    bool applyDescriptor(Shard &sh);
    void markReady(std::uint32_t id, unsigned cluster);
    void wakeDependent(std::uint32_t id, unsigned cluster);
    void finishRetire(Shard &sh, std::uint32_t id);

    void tickNotify();
    void tickRetire();
    void tickGateways();
    void tickRouters();
    void tickReadyIssue();

    /** Earliest cycle at which internal progress is possible. */
    Cycle nextDue() const;

    // -- Fault injection -------------------------------------------------

    /** True while the armed fault is striking at the current cycle. */
    bool
    faultDownNow() const
    {
        if (!fault_.armed())
            return false;
        const Cycle now = clock_.now();
        return now >= fault_.cycle &&
               (fault_.until == 0 || now < fault_.until);
    }

    bool
    shardDown(unsigned s) const
    {
        return fault_.kind == sim::FaultKind::KillShard &&
               fault_.target == s && faultDownNow();
    }

    bool
    clusterLinkDown(unsigned c) const
    {
        return fault_.kind == sim::FaultKind::StallLink &&
               fault_.target == c && faultDownNow();
    }

    /**
     * Defer a nextDue() source belonging to a currently-down component:
     * nothing will service it before the fault heals, so waking for it
     * earlier would be a pure polling storm (and, permanently down,
     * would keep an otherwise-idle system spinning to the cycle limit).
     * kCycleNever for a fault that never heals.
     */
    Cycle
    gateFault(Cycle due, bool affected) const
    {
        if (!affected)
            return due;
        return fault_.until == 0 ? kCycleNever
                                 : std::max(due, fault_.until);
    }

    const sim::Clock &clock_;
    /** Per-cluster manager-domain clocks (PDES); all &clock_ classic. */
    std::vector<const sim::Clock *> readyClocks_;
    PicosParams params_;
    TopologyParams topo_;
    sim::StatGroup &stats_;

    // Cached stat-registry slots for the per-packet/per-edge counters.
    sim::Scalar *statSubPackets_;
    sim::Scalar *statRetirePackets_;
    sim::Scalar *statDepEdges_;
    sim::Scalar *statCrossShardEdges_;
    sim::Scalar *statDepTableStalls_;
    sim::Scalar *statTasksProcessed_;
    sim::Scalar *statCrossShardNotifies_;
    sim::Scalar *statRetires_;
    sim::Scalar *statBadRetires_;
    sim::Scalar *statTrsStalls_;
    sim::Scalar *statGatewayBackpressure_;
    sim::Scalar *statReadyIssued_;
    sim::Scalar *statSteals_;
    sim::Distribution *statInFlight_;

    std::vector<Shard> shards_;
    std::vector<Cluster> clusters_;
    std::vector<ClusterPort> ports_;

    sim::FaultPlan fault_{}; ///< armed KillShard/StallLink fault, if any

    std::vector<TaskEntry> tasks_; ///< global TRS, sliced per shard
    unsigned inFlight_ = 0;
    unsigned rrRetire_ = 0; ///< retire arbiter round-robin over clusters
    std::vector<char> retireServed_; ///< per-shard scratch for tickRetire

    std::uint64_t tasksProcessed_ = 0;
    std::uint64_t tasksRetired_ = 0;
    std::uint64_t crossShardEdges_ = 0;
    std::uint64_t steals_ = 0;
};

} // namespace picosim::picos

#endif // PICOSIM_PICOS_SHARDED_PICOS_HH
