#include "rocc/rocc_inst.hh"

#include "sim/log.hh"

namespace picosim::rocc
{

std::string_view
functName(TaskFunct funct)
{
    switch (funct) {
      case TaskFunct::SubmissionRequest:  return "SubmissionRequest";
      case TaskFunct::SubmitPacket:       return "SubmitPacket";
      case TaskFunct::SubmitThreePackets: return "SubmitThreePackets";
      case TaskFunct::ReadyTaskRequest:   return "ReadyTaskRequest";
      case TaskFunct::FetchSwId:          return "FetchSwId";
      case TaskFunct::FetchPicosId:       return "FetchPicosId";
      case TaskFunct::RetireTask:         return "RetireTask";
    }
    return "Unknown";
}

std::uint32_t
encode(const RoccInst &inst)
{
    std::uint32_t word = 0;
    word |= static_cast<std::uint32_t>(inst.opcode) & 0x7f;
    word |= (static_cast<std::uint32_t>(inst.rd) & 0x1f) << 7;
    word |= (inst.xs2 ? 1u : 0u) << 12;
    word |= (inst.xs1 ? 1u : 0u) << 13;
    word |= (inst.xd ? 1u : 0u) << 14;
    word |= (static_cast<std::uint32_t>(inst.rs1) & 0x1f) << 15;
    word |= (static_cast<std::uint32_t>(inst.rs2) & 0x1f) << 20;
    word |= (static_cast<std::uint32_t>(inst.funct) & 0x7f) << 25;
    return word;
}

RoccInst
decode(std::uint32_t word)
{
    RoccInst inst;
    inst.opcode = static_cast<CustomOpcode>(word & 0x7f);
    inst.rd = (word >> 7) & 0x1f;
    inst.xs2 = ((word >> 12) & 1) != 0;
    inst.xs1 = ((word >> 13) & 1) != 0;
    inst.xd = ((word >> 14) & 1) != 0;
    inst.rs1 = (word >> 15) & 0x1f;
    inst.rs2 = (word >> 20) & 0x1f;
    inst.funct = static_cast<TaskFunct>((word >> 25) & 0x7f);
    return inst;
}

InstSignature
signatureOf(TaskFunct funct)
{
    switch (funct) {
      case TaskFunct::SubmissionRequest:
        // rs1 = number of non-zero packets; rd = success flag.
        return {true, false, true};
      case TaskFunct::SubmitPacket:
        // rs1 = packet (lower 32 bits); rd = success flag.
        return {true, false, true};
      case TaskFunct::SubmitThreePackets:
        // rs1 = {P1,P2}, rs2 = {-,P3}; rd = success flag.
        return {true, true, true};
      case TaskFunct::ReadyTaskRequest:
        // rd = success flag.
        return {false, false, true};
      case TaskFunct::FetchSwId:
        // rd = SW ID or failure value.
        return {false, false, true};
      case TaskFunct::FetchPicosId:
        // rd = Picos ID or failure value.
        return {false, false, true};
      case TaskFunct::RetireTask:
        // rs1 = Picos ID; blocking, no result register (Section IV-B).
        return {true, false, false};
    }
    return {false, false, false};
}

RoccInst
makeTaskInst(TaskFunct funct, std::uint8_t rd, std::uint8_t rs1,
             std::uint8_t rs2)
{
    const InstSignature sig = signatureOf(funct);
    RoccInst inst;
    inst.funct = funct;
    inst.opcode = CustomOpcode::Custom0;
    inst.rd = rd;
    inst.rs1 = rs1;
    inst.rs2 = rs2;
    inst.xd = sig.writesRd;
    inst.xs1 = sig.usesRs1;
    inst.xs2 = sig.usesRs2;
    return inst;
}

} // namespace picosim::rocc
