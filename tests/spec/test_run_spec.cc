/** @file Unit tests for the RunSpec parse/serialize/canonicalize layer. */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "spec/run_spec.hh"

using namespace picosim;
using namespace picosim::spec;

namespace
{

/** Canonicalized copy of @p s (the canonical form is what serialize()
 *  round-trips). */
RunSpec
canon(RunSpec s)
{
    s.canonicalize();
    return s;
}

} // namespace

TEST(RunSpec, DefaultsRoundTrip)
{
    const RunSpec s = canon(RunSpec{});
    EXPECT_EQ(RunSpec::parse(s.serialize()), s);
    EXPECT_EQ(RunSpec::parse(s.serialize('\n')), s);
}

TEST(RunSpec, EveryKeyNonDefaultRoundTrips)
{
    RunSpec s;
    const std::vector<std::pair<std::string, std::string>> pairs = {
        {"workload", "sparselu"},  {"wl.nb", "9"},
        {"runtime", "nanos-rv"},   {"cores", "12"},
        {"mode", "tickworld"},     {"mem", "timed"},
        {"mshrs", "8"},            {"bus-bytes", "32"},
        {"mem-occupancy", "16"},   {"sched-shards", "2"},
        {"clusters", "2"},         {"steal", "off"},
        {"cluster-link", "3"},     {"xshard-dep", "5"},
        {"xshard-notify", "7"},    {"steal-penalty", "11"},
        {"gateway-depth", "6"},    {"rocc-latency", "4"},
        {"core-ready-depth", "3"}, {"bandwidth-alpha", "0.125"},
        {"pdes", "force"},         {"pdes-domains", "4"},
        {"host-threads", "2"},     {"repeat", "2"},
        {"seed", "99"},            {"cycle-limit", "123456789"},
    };
    for (const auto &[key, value] : pairs)
        s.setKey(key, value);
    s.canonicalize();
    EXPECT_EQ(RunSpec::parse(s.serialize()), s);
}

TEST(RunSpec, EachKeyRoundTripsIndividually)
{
    // Property sweep: a canonical spec that differs from the default in
    // exactly one key must survive parse(serialize()) bit-exactly.
    const std::vector<std::pair<std::string, std::string>> mutations = {
        {"workload", "jacobi"},   {"runtime", "serial"},
        {"cores", "17"},          {"mode", "tickworld"},
        {"mem", "timed"},         {"mshrs", "2"},
        {"bus-bytes", "64"},      {"mem-occupancy", "3"},
        {"sched-shards", "8"},    {"steal", "off"},
        {"cluster-link", "0"},    {"xshard-dep", "0"},
        {"xshard-notify", "1"},   {"steal-penalty", "0"},
        {"gateway-depth", "1"},   {"rocc-latency", "160"},
        {"core-ready-depth", "8"},
        {"bandwidth-alpha", "0.029"},
        {"pdes", "off"},          {"pdes-domains", "258"},
        {"host-threads", "256"},  {"repeat", "1000000"},
        {"seed", "18446744073709551615"},
        {"cycle-limit", "1"},
    };
    for (const auto &[key, value] : mutations) {
        RunSpec s;
        s.setKey(key, value);
        s.canonicalize();
        EXPECT_EQ(RunSpec::parse(s.serialize()), s)
            << key << "=" << value;
    }
}

TEST(RunSpec, BandwidthAlphaSerializesShortestExactForm)
{
    RunSpec s = canon(RunSpec{});
    EXPECT_NE(s.serialize().find("bandwidth-alpha=0.058"),
              std::string::npos);
    s.setKey("bandwidth-alpha", "0.1");
    EXPECT_NE(s.serialize().find("bandwidth-alpha=0.1"),
              std::string::npos);
    EXPECT_EQ(RunSpec::parse(s.serialize()).bandwidthAlpha, 0.1);
}

TEST(RunSpec, SpecFileCommentsAndJsonAccepted)
{
    RunSpec file;
    file.merge("# an experiment\ncores=12 # trailing comment\n"
               "workload=task-free\nwl.tasks=32\n");
    file.canonicalize();
    EXPECT_EQ(file.cores, 12u);
    EXPECT_EQ(file.wl.at("tasks"), 32u);

    RunSpec json;
    json.merge(R"({"cores": 12, "workload": "task-free",)"
               R"( "wl.tasks": 32, "steal": false})");
    json.canonicalize();
    EXPECT_EQ(json.cores, 12u);
    EXPECT_FALSE(json.steal);
    file.steal = false;
    EXPECT_EQ(json, file);
}

TEST(RunSpec, UnknownKeySuggestsNearest)
{
    RunSpec s;
    try {
        s.setKey("coers", "8");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_STREQ(e.what(),
                     "unknown key 'coers' (did you mean 'cores'?)");
    }
    try {
        s.setKey("coers", "8", "--");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_STREQ(e.what(),
                     "unknown flag '--coers' (did you mean '--cores'?)");
    }
}

TEST(RunSpec, ErrorsNameKeyValueAndRange)
{
    RunSpec s;
    try {
        s.setKey("cores", "0", "--");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_STREQ(e.what(),
                     "--cores expects an integer in [1, 4096], got '0'");
    }
    try {
        s.setKey("cores", "8q");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_STREQ(e.what(),
                     "cores expects an integer in [1, 4096], got '8q'");
    }
    try {
        s.setKey("runtime", "bogus");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_STREQ(e.what(),
                     "unknown runtime 'bogus' (valid: serial, nanos-sw, "
                     "nanos-rv, nanos-axi, phentos)");
    }
    try {
        s.setKey("bandwidth-alpha", "1.5");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_STREQ(e.what(), "bandwidth-alpha expects a number in "
                               "[0, 1], got '1.5'");
    }
    EXPECT_THROW(s.merge("cores"), SpecError);
    EXPECT_THROW(s.merge("=8"), SpecError);
    EXPECT_THROW(s.merge("{\"cores\" 8}"), SpecError);
}

TEST(RunSpec, Figure9LabelRewritesToRegistryForm)
{
    RunSpec s;
    s.workload = "4K B32";
    s.canonicalize();
    EXPECT_EQ(s.workload, "blackscholes");
    EXPECT_EQ(s.wl.at("options"), 4096u);
    EXPECT_EQ(s.wl.at("block"), 32u);
    // Explicit wl.* keys win over the label's parameters.
    RunSpec t;
    t.workload = "4K B32";
    t.wl["block"] = 64;
    t.canonicalize();
    EXPECT_EQ(t.wl.at("block"), 64u);
}

TEST(RunSpec, NestedFoldsIntoTaskTree)
{
    RunSpec s;
    s.workload = "task-chain";
    s.wl["payload"] = 77;
    s.nested = true;
    s.canonicalize();
    EXPECT_EQ(s.workload, "task-tree");
    EXPECT_FALSE(s.nested);
    EXPECT_EQ(s.wl.at("chained"), 1u);
    EXPECT_EQ(s.wl.at("payload"), 77u);
    // Canonical specs never serialize a nested key.
    EXPECT_EQ(s.serialize().find("nested"), std::string::npos);

    RunSpec bad;
    bad.workload = "jacobi";
    bad.nested = true;
    EXPECT_THROW(bad.canonicalize(), SpecError);
}

TEST(RunSpec, CanonicalizeIsIdempotent)
{
    RunSpec s;
    s.workload = "task-chain";
    s.nested = true;
    s.canonicalize();
    RunSpec again = s;
    again.canonicalize();
    EXPECT_EQ(again, s);
}

TEST(RunSpec, GlobalSeedFillsWorkloadSeed)
{
    RunSpec s;
    s.workload = "sparselu";
    s.seed = 7;
    s.canonicalize();
    EXPECT_EQ(s.wl.at("seed"), 7u);

    RunSpec t;
    t.workload = "sparselu";
    t.seed = 7;
    t.wl["seed"] = 3; // explicit parameter wins
    t.canonicalize();
    EXPECT_EQ(t.wl.at("seed"), 3u);
}

TEST(RunSpec, CrossKeyConstraints)
{
    RunSpec s;
    s.cores = 4;
    s.clusters = 8;
    try {
        s.canonicalize("--");
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_STREQ(e.what(),
                     "--clusters=8 exceeds --cores=4 (each cluster needs "
                     "at least one core)");
    }

    RunSpec w;
    w.pdes = cpu::PdesParams::Partition::Off;
    w.hostThreads = 4;
    const auto warnings = w.canonicalize("--");
    ASSERT_EQ(warnings.size(), 1u);
    EXPECT_EQ(warnings[0],
              "warning: --host-threads=4 is ignored with --pdes=off (the "
              "unpartitioned kernel is sequential)");
}

TEST(RunSpec, UnknownWorkloadSuggestsNearest)
{
    RunSpec s;
    s.workload = "blackscoles";
    try {
        s.canonicalize();
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        EXPECT_STREQ(e.what(),
                     "unknown workload 'blackscoles' (try "
                     "--list-workloads) (did you mean 'blackscholes'?)");
    }
}

TEST(RunSpec, KeysAreUniqueAndNearestKeyWorks)
{
    const auto keys = RunSpec::keys();
    EXPECT_GE(keys.size(), 26u);
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]);
    EXPECT_EQ(RunSpec::nearestKey("cors"), "cores");
    EXPECT_EQ(RunSpec::nearestKey("hostthreads"), "host-threads");
}
