/**
 * @file
 * One in-order Rocket-style hart. The hart's software (runtime + benchmark
 * glue) is a coroutine installed via install(); the core resumes it
 * whenever its wake condition is met.
 */

#ifndef PICOSIM_CPU_CORE_HH
#define PICOSIM_CPU_CORE_HH

#include <string>

#include "sim/cotask.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"

namespace picosim::cpu
{

class Core : public sim::Ticked
{
  public:
    Core(const sim::Clock &clock, CoreId id, sim::StatGroup &stats)
        : sim::Ticked("core" + std::to_string(id)), clock_(clock), id_(id),
          ctx_(clock), stats_(stats)
    {
    }

    CoreId id() const { return id_; }

    /** Install (and arm) the software thread of this hart. */
    void
    install(sim::CoTask<void> thread)
    {
        ctx_.start(std::move(thread));
        // The thread wants to run at the current cycle; re-arm the core in
        // the kernel's event queue (it may have gone idle and unscheduled).
        requestWake(clock_.now());
    }

    bool threadDone() const { return !ctx_.started() || ctx_.done(); }

    sim::HartContext &context() { return ctx_; }

    void
    tick() override
    {
        if (ctx_.tick())
            ++stats_.scalar("core" + std::to_string(id_) + ".resumes");
    }

    bool
    active() const override
    {
        return ctx_.wakeAt() <= clock_.now() + 1;
    }

    Cycle wakeAt() const override { return ctx_.wakeAt(); }

  private:
    const sim::Clock &clock_;
    CoreId id_;
    sim::HartContext ctx_;
    sim::StatGroup &stats_;
};

} // namespace picosim::cpu

#endif // PICOSIM_CPU_CORE_HH
