/**
 * @file
 * One in-order Rocket-style hart. The hart's software (runtime + benchmark
 * glue) is a coroutine installed via install(); the core resumes it
 * whenever its wake condition is met.
 */

#ifndef PICOSIM_CPU_CORE_HH
#define PICOSIM_CPU_CORE_HH

#include <string>

#include "sim/cotask.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"

namespace picosim::cpu
{

class Core final : public sim::Ticked
{
  public:
    Core(const sim::Clock &clock, CoreId id, sim::StatGroup &stats)
        : sim::Ticked("core" + std::to_string(id)), clock_(clock), id_(id),
          ctx_(clock),
          resumes_(&stats.scalar("core" + std::to_string(id) + ".resumes"))
    {
        bindFastDispatch<Core>();
    }

    CoreId id() const { return id_; }

    /** Install (and arm) the software thread of this hart. */
    void
    install(sim::CoTask<void> thread)
    {
        if (doneCounted_) {
            doneCounted_ = false;
            if (doneCounter_)
                --*doneCounter_;
        }
        ctx_.start(std::move(thread));
        // The thread wants to run at the current cycle; re-arm the core in
        // the kernel's event queue (it may have gone idle and unscheduled).
        requestWake(clock_.now());
    }

    bool threadDone() const { return !ctx_.started() || ctx_.done(); }

    /**
     * Let the owning System keep an O(1) count of finished threads: the
     * core bumps @p counter exactly once when its thread completes (and
     * counts itself immediately while no thread is installed), so the
     * run loop's done() predicate never rescans every core.
     */
    void
    bindDoneCounter(std::uint32_t *counter)
    {
        doneCounter_ = counter;
        if (doneCounted_ && counter)
            ++*counter;
    }

    sim::HartContext &context() { return ctx_; }

    void
    tick() override
    {
        if (ctx_.tick())
            ++*resumes_;
        if (!doneCounted_ && ctx_.done()) {
            doneCounted_ = true;
            if (doneCounter_)
                ++*doneCounter_;
        }
    }

    bool
    active() const override
    {
        return ctx_.wakeAt() <= clock_.now() + 1;
    }

    Cycle wakeAt() const override { return ctx_.wakeAt(); }

    /** Fused re-arm query: one HartContext::wakeAt() read instead of the
     *  separate active()+wakeAt() pair. */
    Cycle
    nextSelfDue(Cycle next) const
    {
        const Cycle wake = ctx_.wakeAt();
        return wake <= next ? next : wake;
    }

  private:
    const sim::Clock &clock_;
    CoreId id_;
    sim::HartContext ctx_;
    sim::Scalar *resumes_; ///< cached stat slot (map nodes are stable)
    std::uint32_t *doneCounter_ = nullptr;
    bool doneCounted_ = true; ///< no thread installed counts as done
};

} // namespace picosim::cpu

#endif // PICOSIM_CPU_CORE_HH
