/**
 * @file
 * Experiment harness: build a fresh system, install a runtime, run a
 * program, collect results — one call per experiment, or a whole batch of
 * independent experiments spread over a worker-thread pool.
 */

#ifndef PICOSIM_RUNTIME_HARNESS_HH
#define PICOSIM_RUNTIME_HARNESS_HH

#include <functional>
#include <memory>
#include <string_view>
#include <vector>

#include "cpu/system.hh"
#include "runtime/cost_model.hh"
#include "runtime/runtime.hh"

namespace picosim::rt
{

enum class RuntimeKind { Serial, NanosSW, NanosRV, NanosAXI, Phentos };

std::string_view kindName(RuntimeKind kind);

/** Factory for the runtime model of @p kind. */
std::unique_ptr<Runtime> makeRuntime(RuntimeKind kind, const CostModel &cm);

struct HarnessParams
{
    unsigned numCores = 8;
    CostModel costs{};
    cpu::SystemParams system{};
    Cycle cycleLimit = 50'000'000'000ull;
};

/**
 * Run @p prog under @p kind on a fresh system. Serial runs are forced to
 * one core. The serialCycles field is left zero; use measureSpeedup or
 * fill it from a separate Serial run.
 */
RunResult runProgram(RuntimeKind kind, const Program &prog,
                     const HarnessParams &params = {});

/** Copy the interconnect/memory contention counters of a finished run
 *  (timed memory mode; zeros under MemMode::Inline) into @p res. */
void fillContentionStats(RunResult &res, cpu::System &sys);

/** Run serial + the given runtime and fill in the speedup baseline. */
RunResult runWithSpeedup(RuntimeKind kind, const Program &prog,
                         const HarnessParams &params = {});

// -- Parallel batch execution -------------------------------------------

/**
 * One independent experiment in a batch. The job owns its Program copy:
 * each job is simulated on a private System by exactly one worker thread,
 * so jobs share no mutable state (Program caches an index lazily, which
 * would race if instances were shared across workers).
 */
struct Job
{
    RuntimeKind kind = RuntimeKind::Phentos;
    Program prog;
    HarnessParams params{};
    std::string label; ///< optional caller tag, carried through unchanged
};

/**
 * Run every job on a pool of @p threads worker threads (0 = hardware
 * concurrency). Results are positionally aligned with @p jobs. Each job
 * builds a fresh Simulator/System, so results are identical to running
 * the same jobs sequentially through runProgram(), in any thread count.
 *
 * @param onResult Optional progress callback, invoked once per finished
 *        job from its worker thread under an internal mutex (safe to
 *        print from). May be nullptr.
 */
std::vector<RunResult>
runBatch(const std::vector<Job> &jobs, unsigned threads = 0,
         const std::function<void(std::size_t, const RunResult &)>
             &onResult = nullptr);

/**
 * Run the full @p progs x @p kinds evaluation matrix as one batch.
 * results[p][k] is program p under kind k — callers index results by
 * position in the kinds vector they passed, so there is no hidden
 * column-order contract to keep in sync.
 */
std::vector<std::vector<RunResult>>
runMatrix(const std::vector<Program> &progs,
          const std::vector<RuntimeKind> &kinds,
          const HarnessParams &params = {}, unsigned threads = 0,
          const std::function<void(std::size_t, std::size_t,
                                   const RunResult &)> &onResult = nullptr);

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_HARNESS_HH
