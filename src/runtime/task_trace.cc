#include "runtime/task_trace.hh"

namespace picosim::rt
{

double
TaskTrace::meanQueueLatency() const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const TaskRecord &r : records_) {
        if (!r.valid || r.retired == 0)
            continue;
        sum += static_cast<double>(r.dispatched - r.submitted);
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

double
TaskTrace::meanServiceTime() const
{
    double sum = 0.0;
    std::uint64_t n = 0;
    for (const TaskRecord &r : records_) {
        if (!r.valid || r.retired == 0)
            continue;
        sum += static_cast<double>(r.retired - r.dispatched);
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

std::uint64_t
TaskTrace::completedCount() const
{
    std::uint64_t n = 0;
    for (const TaskRecord &r : records_)
        n += (r.valid && r.retired != 0) ? 1 : 0;
    return n;
}

void
TaskTrace::writeChromeTrace(std::ostream &os,
                            const std::string &name) const
{
    os << "[\n";
    bool first = true;
    for (std::size_t id = 0; id < records_.size(); ++id) {
        const TaskRecord &r = records_[id];
        if (!r.valid || r.retired == 0)
            continue;
        if (!first)
            os << ",\n";
        first = false;
        os << "  {\"name\": \"task" << id << "\", \"cat\": \"" << name
           << "\", \"ph\": \"X\", \"ts\": " << r.dispatched
           << ", \"dur\": " << (r.retired - r.dispatched)
           << ", \"pid\": 0, \"tid\": " << r.core << "}";
    }
    os << "\n]\n";
}

} // namespace picosim::rt
