/** @file Unit tests for the per-task lifecycle trace. */

#include <gtest/gtest.h>

#include <sstream>

#include "apps/workloads.hh"
#include "runtime/nanos.hh"
#include "runtime/phentos.hh"
#include "runtime/task_trace.hh"

using namespace picosim;
using namespace picosim::rt;

TEST(TaskTrace, RecordsLifecycle)
{
    TaskTrace trace;
    trace.reset(2);
    trace.onSubmit(0, 100);
    trace.onDispatch(0, 150, 3);
    trace.onRetire(0, 400);
    trace.onSubmit(1, 110);
    trace.onDispatch(1, 120, 1);
    trace.onRetire(1, 220);

    EXPECT_EQ(trace.completedCount(), 2u);
    EXPECT_DOUBLE_EQ(trace.meanQueueLatency(), (50 + 10) / 2.0);
    EXPECT_DOUBLE_EQ(trace.meanServiceTime(), (250 + 100) / 2.0);
    EXPECT_EQ(trace.record(0).core, 3u);
}

TEST(TaskTrace, GrowsForIdsBeyondResetCount)
{
    // Tasks spawned beyond the reset() count must not vanish from the
    // latency breakdowns: the record vector grows on demand.
    TaskTrace trace;
    trace.reset(1);
    trace.onSubmit(5, 100);
    trace.onDispatch(5, 150, 2);
    trace.onRetire(5, 300);
    EXPECT_GE(trace.size(), 6u);
    EXPECT_EQ(trace.completedCount(), 1u);
    EXPECT_DOUBLE_EQ(trace.meanQueueLatency(), 50.0);
    EXPECT_EQ(trace.record(5).core, 2u);
    EXPECT_EQ(trace.droppedRecords(), 0u);
}

TEST(TaskTrace, CountsDropsBeyondTheCeiling)
{
    TaskTrace trace;
    trace.reset(1);
    trace.onSubmit(TaskTrace::kMaxRecords, 100);
    trace.onRetire(TaskTrace::kMaxRecords + 7, 200);
    EXPECT_EQ(trace.droppedRecords(), 2u);
    EXPECT_EQ(trace.completedCount(), 0u);
    trace.reset(1); // reset clears the drop counter with the records
    EXPECT_EQ(trace.droppedRecords(), 0u);
}

TEST(TaskTrace, ChromeTraceIsWellFormedJson)
{
    TaskTrace trace;
    trace.reset(2);
    trace.onSubmit(0, 10);
    trace.onDispatch(0, 20, 0);
    trace.onRetire(0, 30);
    trace.onSubmit(1, 15);
    trace.onDispatch(1, 25, 1);
    trace.onRetire(1, 45);

    std::ostringstream oss;
    trace.writeChromeTrace(oss, "test");
    const std::string json = oss.str();
    EXPECT_EQ(json.front(), '[');
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\": 10"), std::string::npos);
    EXPECT_NE(json.find("\"tid\": 1"), std::string::npos);
    // Two events, one comma between them.
    EXPECT_NE(json.find("task0"), std::string::npos);
    EXPECT_NE(json.find("task1"), std::string::npos);
}

TEST(TaskTrace, PhentosFillsEveryRecord)
{
    const Program prog = apps::taskFree(30, 1, 1'000);
    cpu::System sys;
    Phentos phentos;
    TaskTrace trace;
    trace.reset(prog.numTasks());
    phentos.setTrace(&trace);
    phentos.install(sys, prog);
    ASSERT_TRUE(sys.run(100'000'000ull));
    EXPECT_EQ(trace.completedCount(), prog.numTasks());
    // dispatch >= submit, retire > dispatch for every task.
    for (std::uint64_t i = 0; i < prog.numTasks(); ++i) {
        const TaskRecord &r = trace.record(i);
        EXPECT_GE(r.dispatched, r.submitted) << i;
        EXPECT_GT(r.retired, r.dispatched) << i;
        EXPECT_LT(r.core, sys.numCores()) << i;
    }
    EXPECT_GT(trace.meanServiceTime(), 1'000.0); // at least the payload
}

TEST(TaskTrace, ChainMakespanFromTraceMatchesRuntimeGap)
{
    // Queue latency measured from submission mostly reflects submission
    // speed (a fast submitter builds a backlog), so the robust
    // cross-runtime comparison is the traced makespan: first submission
    // to last retirement. Nanos-SW must be far slower than Phentos on a
    // serialized chain.
    const Program prog = apps::taskChain(40, 1, 500);

    TaskTrace ph_trace;
    {
        cpu::System sys;
        Phentos phentos;
        ph_trace.reset(prog.numTasks());
        phentos.setTrace(&ph_trace);
        phentos.install(sys, prog);
        ASSERT_TRUE(sys.run(100'000'000ull));
    }
    TaskTrace sw_trace;
    {
        cpu::System sys;
        Nanos nanos(Nanos::Variant::SW);
        sw_trace.reset(prog.numTasks());
        nanos.setTrace(&sw_trace);
        nanos.install(sys, prog);
        ASSERT_TRUE(sys.run(100'000'000ull));
    }
    ASSERT_EQ(ph_trace.completedCount(), prog.numTasks());
    ASSERT_EQ(sw_trace.completedCount(), prog.numTasks());

    const auto makespan = [&](const TaskTrace &t) {
        Cycle first = kCycleNever, last = 0;
        for (std::uint64_t i = 0; i < t.size(); ++i) {
            first = std::min(first, t.record(i).submitted);
            last = std::max(last, t.record(i).retired);
        }
        return last - first;
    };
    EXPECT_GT(makespan(sw_trace), makespan(ph_trace) * 5);
}

TEST(TaskTrace, ChainServiceStrictlyOrdered)
{
    const Program prog = apps::taskChain(20, 1, 200);
    cpu::System sys;
    Phentos phentos;
    TaskTrace trace;
    trace.reset(prog.numTasks());
    phentos.setTrace(&trace);
    phentos.install(sys, prog);
    ASSERT_TRUE(sys.run(100'000'000ull));
    // Chained task i+1 cannot dispatch before task i retires.
    for (std::uint64_t i = 0; i + 1 < prog.numTasks(); ++i) {
        EXPECT_GE(trace.record(i + 1).dispatched, trace.record(i).retired)
            << "task " << i + 1;
    }
}
