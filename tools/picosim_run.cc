/**
 * @file
 * Command-line driver: run any built-in workload under any runtime on a
 * configurable system and print results plus hardware statistics.
 *
 * Usage:
 *   picosim_run [--list] [--workload=NAME] [--runtime=KIND]
 *               [--cores=N] [--stats] [--trace=FILE.json]
 *
 *   NAME: a Figure-9 input label substring, e.g. "blackscholes 4K B8",
 *         or one of: task-free, task-chain.
 *   KIND: serial | nanos-sw | nanos-rv | nanos-axi | phentos
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "apps/workloads.hh"
#include "runtime/harness.hh"
#include "runtime/nanos.hh"
#include "runtime/phentos.hh"
#include "runtime/serial.hh"
#include "runtime/task_trace.hh"

using namespace picosim;

namespace
{

std::optional<rt::RuntimeKind>
parseKind(const std::string &s)
{
    if (s == "serial") return rt::RuntimeKind::Serial;
    if (s == "nanos-sw") return rt::RuntimeKind::NanosSW;
    if (s == "nanos-rv") return rt::RuntimeKind::NanosRV;
    if (s == "nanos-axi") return rt::RuntimeKind::NanosAXI;
    if (s == "phentos") return rt::RuntimeKind::Phentos;
    return std::nullopt;
}

std::optional<rt::Program>
buildWorkload(const std::string &name)
{
    if (name == "task-free")
        return apps::taskFree(256, 1, 1000);
    if (name == "task-chain")
        return apps::taskChain(256, 1, 1000);
    for (const auto &input : apps::figure9Inputs()) {
        const std::string full = input.program + " " + input.label;
        if (full.find(name) != std::string::npos)
            return input.build();
    }
    return std::nullopt;
}

std::optional<std::string>
argValue(int argc, char **argv, const char *flag)
{
    const std::string prefix = std::string(flag) + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::string(argv[i] + prefix.size());
    }
    return std::nullopt;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    if (hasFlag(argc, argv, "--list")) {
        std::printf("workloads:\n  task-free\n  task-chain\n");
        for (const auto &input : apps::figure9Inputs())
            std::printf("  %s %s\n", input.program.c_str(),
                        input.label.c_str());
        std::printf("runtimes: serial nanos-sw nanos-rv nanos-axi "
                    "phentos\n");
        return 0;
    }

    const std::string wl =
        argValue(argc, argv, "--workload").value_or("blackscholes 4K B32");
    const std::string rtname =
        argValue(argc, argv, "--runtime").value_or("phentos");

    const auto kind = parseKind(rtname);
    if (!kind) {
        std::fprintf(stderr, "unknown runtime '%s'\n", rtname.c_str());
        return 1;
    }
    const auto prog = buildWorkload(wl);
    if (!prog) {
        std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                     wl.c_str());
        return 1;
    }

    rt::HarnessParams hp;
    if (auto cores = argValue(argc, argv, "--cores"))
        hp.numCores = static_cast<unsigned>(std::stoul(*cores));

    // Build the system by hand so stats/trace stay inspectable.
    cpu::SystemParams sp = hp.system;
    sp.numCores = *kind == rt::RuntimeKind::Serial ? 1 : hp.numCores;
    cpu::System sys(sp);
    auto runtime = rt::makeRuntime(*kind, hp.costs);

    rt::TaskTrace trace;
    const auto trace_path = argValue(argc, argv, "--trace");
    if (trace_path) {
        trace.reset(prog->numTasks());
        if (auto *ph = dynamic_cast<rt::Phentos *>(runtime.get()))
            ph->setTrace(&trace);
        else if (auto *nn = dynamic_cast<rt::Nanos *>(runtime.get()))
            nn->setTrace(&trace);
    }

    runtime->install(sys, *prog);
    const bool ok = sys.run(hp.cycleLimit);

    const auto serial = rt::runProgram(rt::RuntimeKind::Serial, *prog, hp);
    std::printf("workload  : %s (%llu tasks, mean size %.0f cycles)\n",
                prog->name.c_str(),
                static_cast<unsigned long long>(prog->numTasks()),
                prog->meanTaskSize());
    std::printf("runtime   : %s on %u core(s)\n",
                runtime->name().c_str(), sys.numCores());
    std::printf("cycles    : %llu (%s)\n",
                static_cast<unsigned long long>(sys.clock().now()),
                ok && runtime->finished() ? "completed" : "INCOMPLETE");
    std::printf("serial    : %llu cycles\n",
                static_cast<unsigned long long>(serial.cycles));
    std::printf("speedup   : %.2fx\n",
                static_cast<double>(serial.cycles) /
                    static_cast<double>(sys.clock().now()));
    std::printf("wall time @80MHz: %.1f ms\n",
                static_cast<double>(sys.clock().now()) / 80'000.0);

    if (trace_path) {
        std::ofstream out(*trace_path);
        trace.writeChromeTrace(out, prog->name);
        std::printf("trace     : %s (queue %.0f cyc, service %.0f cyc)\n",
                    trace_path->c_str(), trace.meanQueueLatency(),
                    trace.meanServiceTime());
    }
    if (hasFlag(argc, argv, "--stats")) {
        std::printf("\n-- system statistics --\n");
        sys.stats().dump(std::cout);
        sys.memory().stats().dump(std::cout);
    }
    return ok && runtime->finished() ? 0 : 1;
}
