/** @file Unit tests for the Table II area model. */

#include <gtest/gtest.h>

#include "area/resource_model.hh"

using namespace picosim;
using namespace picosim::area;

TEST(ResourceModel, TableIIHasCanonicalRows)
{
    const auto rows = tableII(AreaParams{}, picos::PicosParams{},
                              manager::ManagerParams{});
    ASSERT_EQ(rows.size(), 6u);
    EXPECT_EQ(rows[0].name, "top");
    EXPECT_EQ(rows[5].name, "SSystem");
    EXPECT_DOUBLE_EQ(rows[0].fraction, 1.0);
}

TEST(ResourceModel, MatchesPaperBreakdown)
{
    const auto rows = tableII(AreaParams{}, picos::PicosParams{},
                              manager::ManagerParams{});
    // Paper: top 384K, Core 11.56%, fpu 4.77%, dcache 1.57%, icache
    // 0.32%, SSystem 1.79%. Allow a few tenths of slack.
    EXPECT_NEAR(rows[0].cells / 1000.0, 384.0, 15.0);
    EXPECT_NEAR(rows[1].fraction, 0.1156, 0.01);
    EXPECT_NEAR(rows[2].fraction, 0.0477, 0.005);
    EXPECT_NEAR(rows[3].fraction, 0.0157, 0.002);
    EXPECT_NEAR(rows[4].fraction, 0.0032, 0.001);
    EXPECT_NEAR(rows[5].fraction, 0.0179, 0.005);
}

TEST(ResourceModel, SchedulingSystemBelowTwoPercent)
{
    const auto rows = tableII(AreaParams{}, picos::PicosParams{},
                              manager::ManagerParams{});
    EXPECT_LE(rows[5].fraction, 0.0205);
}

TEST(ResourceModel, GrowsWithQueueDepths)
{
    const AreaParams a{};
    const picos::PicosParams pp{};
    manager::ManagerParams small{}, big{};
    big.coreReadyQueueDepth = 8;
    big.routingQueueDepth = 32;
    EXPECT_GT(schedulingSystemCells(a, pp, big),
              schedulingSystemCells(a, pp, small));
}

TEST(ResourceModel, GrowsWithTableGeometry)
{
    const AreaParams a{};
    const manager::ManagerParams mp{};
    picos::PicosParams small{}, big{};
    big.trsEntries = 1024;
    big.dctSets = 256;
    EXPECT_GT(schedulingSystemCells(a, big, mp),
              schedulingSystemCells(a, small, mp));
    EXPECT_GT(picosTableBits(big), picosTableBits(small));
}

TEST(ResourceModel, DelegatesScaleWithCores)
{
    const picos::PicosParams pp{};
    const manager::ManagerParams mp{};
    AreaParams a4{}, a8{};
    a4.numCores = 4;
    a8.numCores = 8;
    EXPECT_GT(schedulingSystemCells(a8, pp, mp),
              schedulingSystemCells(a4, pp, mp));
}

TEST(ResourceModel, FractionsSumBelowOne)
{
    // Core/fpu/dcache/icache overlap (fpu and caches are inside Core),
    // but Core*8 + SSystem must stay within top.
    const AreaParams a{};
    const auto rows = tableII(a, picos::PicosParams{},
                              manager::ManagerParams{});
    EXPECT_LE(rows[1].cells * a.numCores + rows[5].cells, rows[0].cells);
}
