/**
 * @file
 * Tests for the multi-Picos scaling layer: address interleaving,
 * cross-shard RAW/WAW/WAR ordering (via the per-task lifecycle trace),
 * work-steal determinism, kernel-mode equivalence and topology layout.
 */

#include <gtest/gtest.h>

#include <vector>

#include "apps/workloads.hh"
#include "picos/dep_table.hh"
#include "runtime/harness.hh"
#include "runtime/phentos.hh"
#include "runtime/task_trace.hh"

using namespace picosim;
using namespace picosim::rt;

namespace
{

constexpr unsigned kShards = 4;

/** Distinct cache-line addresses whose owning shards (under kShards-way
 *  interleaving) follow @p wanted. */
std::vector<Addr>
addrsInShards(const std::vector<unsigned> &wanted)
{
    std::vector<Addr> out;
    Addr a = 0x10000;
    for (unsigned shard : wanted) {
        while (picos::DepTable::shardOf(a, kShards) != shard)
            a += 64;
        out.push_back(a);
        a += 64;
    }
    return out;
}

HarnessParams
shardedParams(unsigned shards, unsigned clusters, bool steal = true)
{
    HarnessParams hp;
    hp.system.topology.schedShards = shards;
    hp.system.topology.clusters = clusters;
    hp.system.topology.workStealing = steal;
    return hp;
}

/** Run @p prog under Phentos on a sharded system, capturing the trace. */
RunResult
runTraced(const Program &prog, const HarnessParams &hp, TaskTrace &trace,
          std::uint64_t *cross_shard_edges = nullptr)
{
    cpu::SystemParams sp = hp.system;
    sp.numCores = hp.numCores;
    cpu::System sys(sp);
    Phentos runtime;
    trace.reset(prog.numTasks());
    runtime.setTrace(&trace);
    runtime.install(sys, prog);
    const bool ok = sys.run(hp.cycleLimit);

    RunResult res;
    res.completed = ok && runtime.finished();
    res.cycles = sys.clock().now();
    if (cross_shard_edges) {
        if (sys.sharded() == nullptr) {
            ADD_FAILURE() << "expected a sharded topology";
            res.completed = false;
        } else {
            *cross_shard_edges = sys.sharded()->crossShardEdges();
        }
    }
    return res;
}

} // namespace

TEST(ShardInterleaving, StridedAddressesCoverAllShards)
{
    std::vector<unsigned> hits(kShards, 0);
    for (Addr a = 0; a < 4096 * 64; a += 64)
        ++hits[picos::DepTable::shardOf(a, kShards)];
    for (unsigned s = 0; s < kShards; ++s)
        EXPECT_GT(hits[s], 4096u / kShards / 2) << "shard " << s;
}

TEST(ShardInterleaving, ShardedTableStoresItsOwnedAddresses)
{
    // Every address the interleave assigns to shard s must be storable
    // and findable in shard s's slice of the dependence table.
    std::vector<picos::DepTable> tables;
    for (unsigned s = 0; s < kShards; ++s)
        tables.emplace_back(16, 4, s, kShards);
    const auto never = [](const picos::DepEntry &) { return false; };
    unsigned stored = 0;
    for (Addr a = 0x4000; a < 0x4000 + 64 * 64; a += 64) {
        picos::DepTable &t =
            tables[picos::DepTable::shardOf(a, kShards)];
        if (t.alloc(a, never) != nullptr) {
            EXPECT_NE(t.find(a), nullptr);
            ++stored;
        }
    }
    EXPECT_GT(stored, 32u);
    // Single-shard interleaving owns everything, trivially.
    EXPECT_EQ(picos::DepTable::shardOf(0x2040, 1), 0u);
}

TEST(CrossShard, RawEdgeOrdersAcrossShards)
{
    // Producer homed on shard(A) writes A; the consumer reads A but is
    // homed on shard(B) != shard(A), so the RAW edge crosses shards and
    // the wakeup travels as a forwarded retirement notification.
    const auto addrs = addrsInShards({0, 2});
    const Addr A = addrs[0], B = addrs[1];

    Program prog;
    prog.name = "xshard-raw";
    prog.spawn(4000, {{A, Dir::Out}});
    prog.spawn(500, {{B, Dir::In}, {A, Dir::In}});
    prog.taskwait();

    TaskTrace trace;
    std::uint64_t edges = 0;
    const RunResult r = runTraced(prog, shardedParams(kShards, 2), trace,
                                  &edges);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(edges, 1u);
    ASSERT_EQ(trace.completedCount(), 2u);
    // The consumer may not start before the producer has retired.
    EXPECT_GE(trace.record(1).dispatched, trace.record(0).retired);
}

TEST(CrossShard, WawEdgeOrdersAcrossShards)
{
    const auto addrs = addrsInShards({1, 3});
    const Addr A = addrs[0], B = addrs[1];

    Program prog;
    prog.name = "xshard-waw";
    prog.spawn(4000, {{A, Dir::Out}});
    prog.spawn(500, {{B, Dir::Out}, {A, Dir::Out}}); // WAW on A
    prog.taskwait();

    TaskTrace trace;
    std::uint64_t edges = 0;
    const RunResult r = runTraced(prog, shardedParams(kShards, 2), trace,
                                  &edges);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(edges, 1u);
    ASSERT_EQ(trace.completedCount(), 2u);
    EXPECT_GE(trace.record(1).dispatched, trace.record(0).retired);
}

TEST(CrossShard, WarEdgeOrdersAcrossShards)
{
    const auto addrs = addrsInShards({0, 3});
    const Addr A = addrs[0], B = addrs[1];

    Program prog;
    prog.name = "xshard-war";
    prog.spawn(4000, {{A, Dir::In}});                // reader of A
    prog.spawn(500, {{B, Dir::In}, {A, Dir::Out}}); // WAR: write after read
    prog.taskwait();

    TaskTrace trace;
    std::uint64_t edges = 0;
    const RunResult r = runTraced(prog, shardedParams(kShards, 2), trace,
                                  &edges);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(edges, 1u);
    ASSERT_EQ(trace.completedCount(), 2u);
    EXPECT_GE(trace.record(1).dispatched, trace.record(0).retired);
}

TEST(CrossShard, ChainAcrossAllShardsSerializes)
{
    // A dependence chain whose links deliberately hop shards: every hop
    // is a forwarded retirement notification, and the chain must still
    // execute strictly serially.
    const auto addrs = addrsInShards({0, 1, 2, 3, 0, 2, 1, 3});
    Program prog;
    prog.name = "xshard-chain";
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        std::vector<TaskDep> deps;
        deps.push_back({addrs[i], Dir::Out});
        if (i > 0)
            deps.push_back({addrs[i - 1], Dir::InOut});
        prog.spawn(1000, std::move(deps));
    }
    prog.taskwait();

    TaskTrace trace;
    std::uint64_t edges = 0;
    HarnessParams hp = shardedParams(kShards, 4);
    const RunResult r = runTraced(prog, hp, trace, &edges);
    ASSERT_TRUE(r.completed);
    EXPECT_GE(edges, 4u); // most links hop shards
    ASSERT_EQ(trace.completedCount(), addrs.size());
    for (std::size_t i = 1; i < addrs.size(); ++i)
        EXPECT_GE(trace.record(i).dispatched, trace.record(i - 1).retired)
            << "link " << i;
    // Serial chain: the makespan covers every payload back to back.
    EXPECT_GE(r.cycles, Cycle{1000} * addrs.size());
}

TEST(WorkStealing, SameConfigurationIsDeterministic)
{
    const Program prog = apps::blackscholes(2048, 16);
    HarnessParams hp = shardedParams(4, 4);
    hp.numCores = 16;
    const RunResult a = runProgram(RuntimeKind::Phentos, prog, hp);
    const RunResult b = runProgram(RuntimeKind::Phentos, prog, hp);
    ASSERT_TRUE(a.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.componentTicks, b.componentTicks);
    EXPECT_EQ(a.evaluatedCycles, b.evaluatedCycles);
    EXPECT_EQ(a.workSteals, b.workSteals);
    EXPECT_GT(a.workSteals, 0u); // the master's cluster gets robbed
}

TEST(WorkStealing, DisabledStillCompletes)
{
    const Program prog = apps::blackscholes(2048, 16);
    HarnessParams hp = shardedParams(4, 4, /*steal=*/false);
    hp.numCores = 16;
    const RunResult r = runProgram(RuntimeKind::Phentos, prog, hp);
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.workSteals, 0u);
}

TEST(ShardedKernel, EventDrivenMatchesTickWorld)
{
    const Program prog = apps::taskFree(128, 1, 800);
    for (const auto &topo :
         std::vector<std::pair<unsigned, unsigned>>{{2, 2}, {4, 4}}) {
        HarnessParams hp = shardedParams(topo.first, topo.second);
        hp.numCores = 8;
        hp.system.evalMode = sim::EvalMode::EventDriven;
        const RunResult ev = runProgram(RuntimeKind::Phentos, prog, hp);
        hp.system.evalMode = sim::EvalMode::TickWorld;
        const RunResult tw = runProgram(RuntimeKind::Phentos, prog, hp);
        ASSERT_TRUE(ev.completed);
        ASSERT_TRUE(tw.completed);
        EXPECT_EQ(ev.cycles, tw.cycles)
            << topo.first << "x" << topo.second;
    }
}

TEST(Topology, ClusterLayoutIsContiguousAndBalanced)
{
    cpu::SystemParams sp;
    sp.numCores = 10;
    sp.topology.schedShards = 2;
    sp.topology.clusters = 4;
    cpu::System sys(sp);
    EXPECT_EQ(sys.numClusters(), 4u);
    unsigned prev = 0;
    std::vector<unsigned> sizes(4, 0);
    for (CoreId i = 0; i < sp.numCores; ++i) {
        const unsigned c = sys.clusterOfCore(i);
        EXPECT_GE(c, prev); // contiguous, monotone blocks
        prev = c;
        ++sizes[c];
    }
    // clusterOfCore must be the exact inverse of the constructor's
    // block partition: every manager serves exactly the cores whose
    // clusterOfCore points at it (ports would go out of range
    // otherwise).
    for (unsigned c = 0; c < 4; ++c)
        EXPECT_EQ(sizes[c], sys.manager(c).numCores()) << "cluster " << c;
    for (unsigned n : sizes) {
        EXPECT_GE(n, 2u); // 10 cores over 4 clusters: sizes 2..3
        EXPECT_LE(n, 3u);
    }
    EXPECT_EQ(sys.sharded()->numShards(), 2u);
}

TEST(Topology, NonDivisibleClusterCountRunsEndToEnd)
{
    // Cores not divisible by clusters: the layout math must still hand
    // every delegate an in-range port on its cluster's manager.
    for (const auto &[cores, clusters] :
         std::vector<std::pair<unsigned, unsigned>>{
             {6, 4}, {10, 4}, {7, 3}}) {
        HarnessParams hp = shardedParams(2, clusters);
        hp.numCores = cores;
        const Program prog = apps::taskFree(64, 1, 500);
        const RunResult r = runProgram(RuntimeKind::Phentos, prog, hp);
        EXPECT_TRUE(r.completed) << cores << " cores / " << clusters
                                 << " clusters";
    }
}

TEST(Topology, SinglePicosTopologyKeepsTheCentralizedPath)
{
    cpu::SystemParams sp;
    sp.numCores = 4;
    cpu::System sys(sp);
    EXPECT_EQ(sys.sharded(), nullptr);
    EXPECT_EQ(sys.numClusters(), 1u);
    EXPECT_NO_THROW(sys.picos());
}