/**
 * @file
 * Kernel-efficiency benchmark: quantifies what the event-driven kernel and
 * the parallel batch harness buy over the reference implementation.
 *
 *  1. Component-tick reduction: a sparse large-grain workload (a Figure 8
 *     coarse-granularity point) run under EvalMode::EventDriven vs the
 *     tick-the-world reference, with identical cycle results.
 *  2. Batch throughput: the Figure 9 matrix swept by runBatch() with one
 *     worker vs a pool, with identical rows.
 */

#include <chrono>
#include <cstdio>

#include "apps/workloads.hh"
#include "bench/bench_util.hh"
#include "bench/fig_common.hh"

using namespace picosim;

namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

void
compareModes(bench::BenchJson &json, const char *label,
             const rt::Program &prog, rt::RuntimeKind kind)
{
    rt::HarnessParams event;
    event.system.evalMode = sim::EvalMode::EventDriven;
    rt::HarnessParams world;
    world.system.evalMode = sim::EvalMode::TickWorld;

    rt::RunResult re, rw;
    const double te =
        wallSeconds([&] { re = rt::runProgram(kind, prog, event); });
    const double tw =
        wallSeconds([&] { rw = rt::runProgram(kind, prog, world); });

    const double tickRatio =
        re.componentTicks == 0
            ? 0.0
            : static_cast<double>(rw.componentTicks) /
                  static_cast<double>(re.componentTicks);
    std::printf("%-28s %12llu cycles %s  ticks %llu -> %llu (%.2fx)  "
                "wall %.3fs -> %.3fs (%.2fx)\n",
                label, static_cast<unsigned long long>(re.cycles),
                re.cycles == rw.cycles ? "[=]" : "[MISMATCH]",
                static_cast<unsigned long long>(rw.componentTicks),
                static_cast<unsigned long long>(re.componentTicks),
                tickRatio, tw, te, te > 0 ? tw / te : 0.0);

    json.beginRow();
    json.field("bench", "mode_compare");
    json.field("label", label);
    json.field("cycles", re.cycles);
    json.field("identical", re.cycles == rw.cycles);
    json.field("eventTicks", re.componentTicks);
    json.field("worldTicks", rw.componentTicks);
    json.field("tickRatio", tickRatio);
    json.field("wallEventSec", te);
    json.field("wallWorldSec", tw);
    json.field("wallSpeedup", te > 0 ? tw / te : 0.0);
}

} // namespace

int
main()
{
    bench::BenchJson json("BENCH_kernel.json");

    std::printf("== Event-driven kernel vs tick-the-world reference ==\n");
    std::printf("(ticks = component evaluations; [=] = identical cycle "
                "results)\n\n");

    // Figure 8 coarse-granularity points: most components quiescent most
    // cycles, the sweet spot for wake scheduling.
    compareModes(json, "blackscholes 4K B32 Phentos",
                 apps::blackscholes(4096, 32), rt::RuntimeKind::Phentos);
    compareModes(json, "blackscholes 4K B256 Phentos",
                 apps::blackscholes(4096, 256), rt::RuntimeKind::Phentos);
    compareModes(json, "task-free g=10k Phentos",
                 apps::taskFree(256, 1, 10'000), rt::RuntimeKind::Phentos);
    compareModes(json, "task-free g=10k Nanos-RV",
                 apps::taskFree(256, 1, 10'000), rt::RuntimeKind::NanosRV);
    compareModes(json, "task-chain g=1k Phentos",
                 apps::taskChain(256, 1, 1'000), rt::RuntimeKind::Phentos);

    std::printf("\n== Parallel batch harness (Figure 9 sweep) ==\n");
    std::vector<bench::MatrixRow> serialRows, poolRows;
    const double tSerial = wallSeconds(
        [&] { serialRows = bench::runFigure9Matrix(false, 1); });
    const double tPool = wallSeconds(
        [&] { poolRows = bench::runFigure9Matrix(false, 4); });

    bool same = serialRows.size() == poolRows.size();
    for (std::size_t i = 0; same && i < serialRows.size(); ++i) {
        same = serialRows[i].serialCycles == poolRows[i].serialCycles &&
               serialRows[i].nanosSw == poolRows[i].nanosSw &&
               serialRows[i].nanosRv == poolRows[i].nanosRv &&
               serialRows[i].phentos == poolRows[i].phentos;
    }
    std::printf("1 worker: %.2fs   4 workers: %.2fs (%.2fx)   results %s\n",
                tSerial, tPool, tPool > 0 ? tSerial / tPool : 0.0,
                same ? "identical" : "MISMATCH");

    json.beginRow();
    json.field("bench", "batch_throughput");
    json.field("serialSec", tSerial);
    json.field("poolSec", tPool);
    json.field("poolSpeedup", tPool > 0 ? tSerial / tPool : 0.0);
    json.field("identical", same);
    if (json.write())
        std::printf("json      : %s\n", json.path().c_str());
    else
        std::fprintf(stderr, "warning: could not write %s\n",
                     json.path().c_str());
    return same ? 0 : 1;
}
