/**
 * @file
 * Cooperative cancellation for simulation runs and run batches.
 *
 * A CancelToken is a one-way latch shared between a controller (a batch
 * driver, the job manager, a signal handler) and the harness executing a
 * run. The controller calls cancel() once; the harness polls cancelled()
 * only at deterministic simulation boundaries — before starting the next
 * run of a batch, at the sequential kernel's cycle-dispatch boundary,
 * and at conservative-PDES window barriers — so a cancelled run stops at
 * a clean schedule point and every run it shared a batch with produces
 * results bit-identical to a solo execution (each run simulates a
 * private System; cancellation never mutates another run's state).
 *
 * The token never resets: a job that observed cancellation stays
 * cancelled. Wall-clock timeouts use the same polling points but are
 * expressed as deadlines in rt::RunControls, not through the token.
 */

#ifndef PICOSIM_RUNTIME_CANCEL_HH
#define PICOSIM_RUNTIME_CANCEL_HH

#include <atomic>

namespace picosim::rt
{

class CancelToken
{
  public:
    CancelToken() = default;

    // A latch shared by address; copying would silently split it.
    CancelToken(const CancelToken &) = delete;
    CancelToken &operator=(const CancelToken &) = delete;

    /** Request cancellation. Idempotent, callable from any thread. */
    void
    cancel()
    {
        cancelled_.store(true, std::memory_order_release);
    }

    /** True once cancel() was called. Cheap enough to poll. */
    bool
    cancelled() const
    {
        return cancelled_.load(std::memory_order_acquire);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_CANCEL_HH
