/** @file Unit tests for the RoCC instruction encoding (paper Figure 1). */

#include <gtest/gtest.h>

#include "rocc/rocc_inst.hh"

using namespace picosim::rocc;

TEST(RoccInst, EncodeDecodeRoundTrip)
{
    RoccInst inst;
    inst.funct = TaskFunct::SubmitThreePackets;
    inst.rs1 = 11;
    inst.rs2 = 12;
    inst.rd = 13;
    inst.xd = true;
    inst.xs1 = true;
    inst.xs2 = true;
    inst.opcode = CustomOpcode::Custom0;
    EXPECT_EQ(decode(encode(inst)), inst);
}

TEST(RoccInst, FieldPlacementMatchesFigure1)
{
    RoccInst inst;
    inst.funct = static_cast<TaskFunct>(0x7f);
    inst.rs2 = 0x1f;
    inst.rs1 = 0x1f;
    inst.xd = inst.xs1 = inst.xs2 = true;
    inst.rd = 0x1f;
    inst.opcode = static_cast<CustomOpcode>(0x7f);
    EXPECT_EQ(encode(inst), 0xffffffffu);

    const std::uint32_t word = encode(makeTaskInst(TaskFunct::RetireTask,
                                                   0, 5, 0));
    EXPECT_EQ(word & 0x7f, static_cast<std::uint32_t>(
                               CustomOpcode::Custom0)); // opcode [6:0]
    EXPECT_EQ((word >> 25) & 0x7f,
              static_cast<std::uint32_t>(TaskFunct::RetireTask));
    EXPECT_EQ((word >> 15) & 0x1f, 5u); // rs1 [19:15]
}

TEST(RoccInst, OnlyRetireTaskIsBlocking)
{
    for (unsigned f = 0; f < kNumTaskInsts; ++f) {
        const auto funct = static_cast<TaskFunct>(f);
        EXPECT_EQ(isNonBlocking(funct), funct != TaskFunct::RetireTask)
            << functName(funct);
    }
}

TEST(RoccInst, SignaturesMatchTable1)
{
    // Submission Request: rs1 = packet count, writes rd (failure flag).
    auto sig = signatureOf(TaskFunct::SubmissionRequest);
    EXPECT_TRUE(sig.usesRs1);
    EXPECT_FALSE(sig.usesRs2);
    EXPECT_TRUE(sig.writesRd);

    // Submit Three Packets is the only two-operand instruction.
    for (unsigned f = 0; f < kNumTaskInsts; ++f) {
        const auto funct = static_cast<TaskFunct>(f);
        EXPECT_EQ(signatureOf(funct).usesRs2,
                  funct == TaskFunct::SubmitThreePackets)
            << functName(funct);
    }

    // Retire Task has no result register (reduces register pressure,
    // Section IV-B).
    EXPECT_FALSE(signatureOf(TaskFunct::RetireTask).writesRd);

    // Fetches produce results, consume nothing.
    for (auto funct : {TaskFunct::FetchSwId, TaskFunct::FetchPicosId,
                       TaskFunct::ReadyTaskRequest}) {
        sig = signatureOf(funct);
        EXPECT_FALSE(sig.usesRs1);
        EXPECT_TRUE(sig.writesRd);
    }
}

TEST(RoccInst, MakeTaskInstSetsXBits)
{
    const RoccInst inst = makeTaskInst(TaskFunct::SubmitThreePackets,
                                       1, 2, 3);
    EXPECT_TRUE(inst.xd);
    EXPECT_TRUE(inst.xs1);
    EXPECT_TRUE(inst.xs2);
    EXPECT_EQ(inst.rd, 1);
    EXPECT_EQ(inst.rs1, 2);
    EXPECT_EQ(inst.rs2, 3);
}

TEST(RoccInst, NamesAreDistinct)
{
    for (unsigned a = 0; a < kNumTaskInsts; ++a) {
        for (unsigned b = a + 1; b < kNumTaskInsts; ++b) {
            EXPECT_NE(functName(static_cast<TaskFunct>(a)),
                      functName(static_cast<TaskFunct>(b)));
        }
    }
}

class RoccRoundTrip : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(RoccRoundTrip, AllFunctsRoundTrip)
{
    const auto funct = static_cast<TaskFunct>(GetParam());
    const RoccInst inst = makeTaskInst(funct, 3, 4, 5);
    EXPECT_EQ(decode(encode(inst)), inst);
}

INSTANTIATE_TEST_SUITE_P(AllFuncts, RoccRoundTrip,
                         ::testing::Range(0u, kNumTaskInsts));
