#include "bench/fig_common.hh"

#include <cstdio>

#include "apps/workloads.hh"
#include "bench/bench_util.hh"
#include "spec/engine.hh"

namespace picosim::bench
{

std::vector<MatrixRow>
runFigure9Matrix(bool progress, unsigned threads)
{
    const auto inputs = apps::figure9Inputs();
    const bool quick = quickMode();

    // Per selected input: one serial baseline plus the figure's runtimes.
    const std::vector<rt::RuntimeKind> kinds = {
        rt::RuntimeKind::Serial, rt::RuntimeKind::NanosSW,
        rt::RuntimeKind::NanosRV, rt::RuntimeKind::Phentos};

    std::vector<MatrixRow> rows;
    std::vector<spec::RunSpec> specs;
    unsigned index = 0;
    for (const auto &input : inputs) {
        ++index;
        if (quick && index % 3 != 1)
            continue; // subsample in quick mode

        spec::RunSpec base;
        base.workload = input.program;
        base.wl = input.args;
        base.canonicalize();

        MatrixRow row;
        row.program = input.program;
        row.label = input.label;
        const rt::Program prog = spec::Engine::buildProgram(base);
        row.tasks = prog.numTasks();
        row.meanTaskSize = prog.meanTaskSize();
        for (rt::RuntimeKind kind : kinds) {
            spec::RunSpec s = base;
            s.runtime = kind;
            if (kind == rt::RuntimeKind::Phentos)
                row.spec = s.serialize();
            specs.push_back(std::move(s));
        }
        rows.push_back(std::move(row));
    }

    const auto onResult = [&](std::size_t j, const rt::RunResult &res) {
        if (progress) {
            const std::size_t p = j / kinds.size();
            std::fprintf(stderr, "  [%3zu/%zu] %s %s %s done\n", j + 1,
                         specs.size(), rows[p].program.c_str(),
                         rows[p].label.c_str(), res.runtime.c_str());
        }
    };
    // The matrix rides the job core (one job, run-granular dispatch on
    // a dedicated pool) — the same execution path as picosim_serve.
    const auto results = runJobs(specs, threads, onResult);

    for (std::size_t j = 0; j < results.size(); ++j) {
        const rt::RunResult &res = results[j];
        MatrixRow &row = rows[j / kinds.size()];
        const Cycle cycles = res.completed ? res.cycles : 0;
        switch (specs[j].runtime) {
          case rt::RuntimeKind::Serial:
            row.serialCycles = cycles;
            break;
          case rt::RuntimeKind::NanosSW:
            row.nanosSw = cycles;
            break;
          case rt::RuntimeKind::NanosRV:
            row.nanosRv = cycles;
            break;
          case rt::RuntimeKind::Phentos:
            row.phentos = cycles;
            break;
          case rt::RuntimeKind::NanosAXI:
            break; // not part of the Figure 9 matrix
        }
    }
    return rows;
}

} // namespace picosim::bench
