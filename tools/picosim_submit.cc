/**
 * @file
 * picosim_submit: client for the picosim_serve daemon.
 *
 * Usage:
 *   picosim_submit --port=N [--host=ADDR] --spec=FILE
 *                  [--timeout=SEC] [--tag=T] [--print=cli|rows]
 *   picosim_submit --port=N --status=ID | --result=ID | --cancel=ID
 *                  | --list | --ping | --shutdown
 *   picosim_submit --port=N --result=ID --spec=FILE [--print=cli|rows]
 *
 * Submitting streams the job's per-run results as they complete.
 * --print=cli (default) folds them with the shared RunPlan and prints
 * the classic `picosim_run` report — byte-identical stdout to running
 * the same spec file locally (`picosim_run --spec FILE`), which the
 * server smoke test diffs. --print=rows prints the raw `ROW <idx>
 * <json>` lines instead (BENCH-style, one JSON object per run).
 *
 * --result=ID together with --spec=FILE re-fetches an existing job (for
 * example one recovered from a `picosim_serve --journal` restart) and
 * prints the same CLI report: the spec file tells the client the plan
 * shape, so the output stays byte-identical to the local run — the CI
 * crash-recovery smoke diffs exactly that.
 *
 * Exit code: like picosim_run, 0 only when the job finished and every
 * displayed run completed.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <unistd.h>
#include <vector>

#include "service/run_plan.hh"
#include "service/wire.hh"
#include "spec/run_spec.hh"
#include "spec/workload_registry.hh"

using namespace picosim;
namespace wire = picosim::svc::wire;

namespace
{

struct Options
{
    std::string host = "127.0.0.1";
    unsigned short port = 0;
    std::string specPath;
    double timeoutSec = 0.0;
    std::string tag;
    std::string print = "cli";
    std::optional<std::uint64_t> statusId, resultId, cancelId;
    bool list = false, ping = false, shutdown = false;
};

[[noreturn]] void
usage(const std::string &msg)
{
    std::fprintf(
        stderr,
        "%s\nusage: picosim_submit --port=N [--host=ADDR] --spec=FILE "
        "[--timeout=SEC] [--tag=T] [--print=cli|rows]\n"
        "       picosim_submit --port=N --status=ID | --result=ID | "
        "--cancel=ID | --list | --ping | --shutdown\n",
        msg.c_str());
    std::exit(2);
}

Options
parseArgs(int argc, char **argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0)
            usage("bad argument '" + arg + "'");
        const std::size_t eq = arg.find('=');
        const std::string key =
            eq == std::string::npos ? arg.substr(2)
                                    : arg.substr(2, eq - 2);
        const std::string value =
            eq == std::string::npos ? "" : arg.substr(eq + 1);

        const auto id = [&]() -> std::uint64_t {
            char *end = nullptr;
            const std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0')
                usage("--" + key + " expects a job id");
            return v;
        };
        char *end = nullptr;
        if (key == "port") {
            const unsigned long v = std::strtoul(value.c_str(), &end, 10);
            if (value.empty() || *end != '\0' || v == 0 || v > 65535)
                usage("--port expects a port number");
            opt.port = static_cast<unsigned short>(v);
        } else if (key == "host") opt.host = value;
        else if (key == "spec") opt.specPath = value;
        else if (key == "timeout") {
            opt.timeoutSec = std::strtod(value.c_str(), &end);
            if (value.empty() || *end != '\0' || opt.timeoutSec < 0)
                usage("--timeout expects seconds");
        } else if (key == "tag") opt.tag = value;
        else if (key == "print") {
            if (value != "cli" && value != "rows")
                usage("--print expects cli or rows");
            opt.print = value;
        } else if (key == "status") opt.statusId = id();
        else if (key == "result") opt.resultId = id();
        else if (key == "cancel") opt.cancelId = id();
        else if (key == "list") opt.list = true;
        else if (key == "ping") opt.ping = true;
        else if (key == "shutdown") opt.shutdown = true;
        else usage("unknown flag '--" + key + "'");
    }
    if (opt.port == 0)
        usage("--port is required");
    // --result=ID --spec=FILE is one action: re-fetch an existing job
    // and print the CLI report the spec's plan shape implies.
    const bool resultWithSpec = opt.resultId && !opt.specPath.empty();
    const int actions = (opt.specPath.empty() || resultWithSpec ? 0 : 1) +
                        (opt.statusId ? 1 : 0) + (opt.resultId ? 1 : 0) +
                        (opt.cancelId ? 1 : 0) + (opt.list ? 1 : 0) +
                        (opt.ping ? 1 : 0) + (opt.shutdown ? 1 : 0);
    if (actions != 1)
        usage("exactly one of --spec/--status/--result/--cancel/--list/"
              "--ping/--shutdown (--result may add --spec)");
    return opt;
}

/** Send one request line, print every reply line until @p last. */
int
simpleCommand(int fd, const std::string &request, const std::string &last)
{
    if (!wire::sendAll(fd, request + "\n")) {
        std::fprintf(stderr, "picosim_submit: connection lost\n");
        return 1;
    }
    wire::LineReader in(fd);
    std::string line;
    while (in.readLine(line)) {
        std::printf("%s\n", line.c_str());
        if (line.rfind("ERR", 0) == 0)
            return 1;
        if (last.empty() || line.rfind(last, 0) == 0)
            return 0;
    }
    std::fprintf(stderr, "picosim_submit: connection closed early\n");
    return 1;
}

/**
 * Stream `RESULT <id>`: fill @p results (positional) from ROW lines.
 * Returns the final job state, or nullopt on a protocol error.
 */
std::optional<std::string>
streamResult(int fd, wire::LineReader &in, std::uint64_t id,
             std::vector<rt::RunResult> *results, bool echoRows)
{
    if (!wire::sendAll(fd, "RESULT " + std::to_string(id) + "\n"))
        return std::nullopt;
    std::string line;
    while (in.readLine(line)) {
        if (line.rfind("ROW ", 0) == 0) {
            const std::size_t sp = line.find(' ', 4);
            if (sp == std::string::npos)
                return std::nullopt;
            const std::size_t idx =
                std::strtoull(line.substr(4, sp - 4).c_str(), nullptr, 10);
            const std::string json = line.substr(sp + 1);
            if (echoRows)
                std::printf("%s\n", line.c_str());
            if (results != nullptr && idx < results->size())
                (*results)[idx] = wire::runResultFromJson(json);
        } else if (line.rfind("DONE ", 0) == 0) {
            return line.substr(5);
        } else if (line.rfind("ERR", 0) == 0) {
            std::fprintf(stderr, "%s\n", line.c_str());
            return std::nullopt;
        }
    }
    return std::nullopt;
}

/**
 * `--result=ID --spec=FILE`: stream an existing job's rows and print
 * them through the spec's RunPlan — the same report submitSpec ends
 * with, for a job this process never submitted (crash recovery).
 */
int
fetchResult(int fd, const Options &opt)
{
    std::ifstream specIn(opt.specPath);
    if (!specIn) {
        std::fprintf(stderr, "cannot read spec file '%s'\n",
                     opt.specPath.c_str());
        return 1;
    }
    std::ostringstream textStream;
    textStream << specIn.rdbuf();

    std::optional<svc::RunPlan> plan;
    try {
        plan = svc::RunPlan::make({spec::RunSpec::parse(textStream.str())});
    } catch (const spec::SpecError &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    wire::LineReader in(fd);
    std::vector<rt::RunResult> results(plan->runs.size());
    const auto state = streamResult(fd, in, *opt.resultId, &results,
                                    opt.print == "rows");
    if (!state)
        return 1;
    if (opt.print == "rows") {
        std::printf("DONE %s\n", state->c_str());
        return *state == "done" ? 0 : 1;
    }
    if (*state != "done")
        std::fprintf(stderr, "job %llu finished as %s\n",
                     static_cast<unsigned long long>(*opt.resultId),
                     state->c_str());
    const bool all_ok = svc::printPlanResults(*plan, results);
    return (*state == "done" && all_ok) ? 0 : 1;
}

int
submitSpec(int fd, const Options &opt)
{
    std::ifstream specIn(opt.specPath);
    if (!specIn) {
        std::fprintf(stderr, "cannot read spec file '%s'\n",
                     opt.specPath.c_str());
        return 1;
    }
    std::ostringstream textStream;
    textStream << specIn.rdbuf();
    const std::string text = textStream.str();

    // Local mirror of the server-side expansion: the client knows the
    // plan shape (rows per display result, core count) without another
    // round trip, and prints exactly what `picosim_run --spec` would.
    // Parse errors surface here with the same message the server sends.
    std::optional<svc::RunPlan> plan;
    if (opt.print == "cli") {
        try {
            plan = svc::RunPlan::make({spec::RunSpec::parse(text)});
        } catch (const spec::SpecError &e) {
            std::fprintf(stderr, "%s\n", e.what());
            return 1;
        }
    }

    std::string request = "SUBMIT " + std::to_string(text.size());
    if (opt.timeoutSec > 0.0) {
        char buf[40];
        std::snprintf(buf, sizeof(buf), " timeout=%.17g", opt.timeoutSec);
        request += buf;
    }
    if (!opt.tag.empty())
        request += " tag=" + opt.tag;
    request += "\n" + text;
    if (!wire::sendAll(fd, request)) {
        std::fprintf(stderr, "picosim_submit: connection lost\n");
        return 1;
    }

    wire::LineReader in(fd);
    std::string line;
    std::uint64_t id = 0;
    std::size_t runs = 0;
    while (in.readLine(line)) {
        if (line.rfind("WARN ", 0) == 0) {
            std::fprintf(stderr, "%s\n",
                         wire::parseJsonString(line.substr(5)).c_str());
            continue;
        }
        if (line.rfind("ERR", 0) == 0) {
            const std::size_t sp = line.find(' ');
            std::fprintf(stderr, "%s\n",
                         sp == std::string::npos
                             ? line.c_str()
                             : wire::parseJsonString(line.substr(sp + 1))
                                   .c_str());
            return 1;
        }
        if (line.rfind("OK ", 0) == 0) {
            std::istringstream ok(line.substr(3));
            std::string runsTok;
            ok >> id >> runsTok;
            if (runsTok.rfind("runs=", 0) == 0)
                runs = std::strtoull(runsTok.c_str() + 5, nullptr, 10);
            break;
        }
    }
    if (id == 0) {
        std::fprintf(stderr, "picosim_submit: no job id from server\n");
        return 1;
    }
    std::fprintf(stderr, "submitted job %llu (%zu runs)\n",
                 static_cast<unsigned long long>(id), runs);

    std::vector<rt::RunResult> results(runs);
    const auto state = streamResult(fd, in, id, &results,
                                    opt.print == "rows");
    if (!state)
        return 1;
    if (opt.print == "rows") {
        std::printf("DONE %s\n", state->c_str());
        return *state == "done" ? 0 : 1;
    }

    if (*state != "done")
        std::fprintf(stderr, "job %llu finished as %s\n",
                     static_cast<unsigned long long>(id), state->c_str());
    const bool all_ok = svc::printPlanResults(*plan, results);
    return (*state == "done" && all_ok) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    const Options opt = parseArgs(argc, argv);

    const int fd = wire::connectTcp(opt.host, opt.port);
    if (fd < 0) {
        std::fprintf(stderr, "picosim_submit: cannot connect to %s:%u\n",
                     opt.host.c_str(), static_cast<unsigned>(opt.port));
        return 1;
    }

    int rc = 0;
    try {
        if (opt.resultId && !opt.specPath.empty()) {
            rc = fetchResult(fd, opt);
        } else if (!opt.specPath.empty()) {
            rc = submitSpec(fd, opt);
        } else if (opt.statusId) {
            rc = simpleCommand(fd, "STATUS " + std::to_string(*opt.statusId),
                               "OK");
        } else if (opt.resultId) {
            rc = simpleCommand(fd, "RESULT " + std::to_string(*opt.resultId),
                               "DONE");
        } else if (opt.cancelId) {
            rc = simpleCommand(fd, "CANCEL " + std::to_string(*opt.cancelId),
                               "OK");
        } else if (opt.list) {
            rc = simpleCommand(fd, "LIST", "END");
        } else if (opt.ping) {
            rc = simpleCommand(fd, "PING", "PONG");
        } else if (opt.shutdown) {
            rc = simpleCommand(fd, "SHUTDOWN", "OK");
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "picosim_submit: %s\n", e.what());
        rc = 1;
    }
    ::close(fd);
    return rc;
}
