/** @file Unit tests for the simulated lock primitive. */

#include <gtest/gtest.h>

#include "cpu/system.hh"
#include "runtime/sync.hh"

using namespace picosim;
using namespace picosim::rt;

namespace
{

struct LockFixture : ::testing::Test
{
    CostModel cm;
    SimLock lock{false, 0x3000'0000, 0, 0};
};

} // namespace

TEST_F(LockFixture, MutualExclusionUnderContention)
{
    cpu::System sys(cpu::SystemParams{.numCores = 4});
    int inside = 0;
    int max_inside = 0;
    long total = 0;

    auto body = [&](cpu::HartApi &api) -> sim::CoTask<void> {
        for (int i = 0; i < 20; ++i) {
            co_await lockAcquire(api, lock, cm);
            ++inside;
            max_inside = std::max(max_inside, inside);
            co_await api.delay(17); // critical section
            ++total;
            --inside;
            co_await lockRelease(api, lock, cm);
        }
    };
    for (CoreId c = 0; c < 4; ++c)
        sys.installThread(c, body(sys.hartApi(c)));
    ASSERT_TRUE(sys.run(10'000'000));
    EXPECT_EQ(max_inside, 1);
    EXPECT_EQ(total, 80);
    EXPECT_EQ(lock.acquisitions, 80u);
    EXPECT_GT(lock.contentions, 0u);
}

TEST_F(LockFixture, UncontendedAcquireIsCheap)
{
    cpu::System sys(cpu::SystemParams{.numCores = 1});
    Cycle spent = 0;
    auto body = [&](cpu::HartApi &api) -> sim::CoTask<void> {
        // Warm the lock line first so the measurement is the steady state.
        co_await lockAcquire(api, lock, cm);
        co_await lockRelease(api, lock, cm);
        const Cycle t0 = sys.clock().now();
        co_await lockAcquire(api, lock, cm);
        co_await lockRelease(api, lock, cm);
        spent = sys.clock().now() - t0;
    };
    sys.installThread(0, body(sys.hartApi(0)));
    ASSERT_TRUE(sys.run(100'000));
    EXPECT_LT(spent, cm.mutexLock + cm.mutexUnlock + 40);
    EXPECT_EQ(lock.contentions, 0u);
}

TEST_F(LockFixture, LockLineBouncesBetweenCores)
{
    cpu::System sys(cpu::SystemParams{.numCores = 2});
    auto body = [&](cpu::HartApi &api) -> sim::CoTask<void> {
        for (int i = 0; i < 10; ++i) {
            co_await lockAcquire(api, lock, cm);
            co_await lockRelease(api, lock, cm);
            co_await api.delay(500);
        }
    };
    sys.installThread(0, body(sys.hartApi(0)));
    sys.installThread(1, body(sys.hartApi(1)));
    ASSERT_TRUE(sys.run(10'000'000));
    // The alternating RMWs must generate dirty-remote transfers (MESI
    // through-memory moves), the effect Section V-B calls out.
    EXPECT_GT(sys.memory().stats().scalarValue("mem.dirtyRemoteTransfers"),
              0.0);
}
