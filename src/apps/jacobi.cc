/**
 * @file
 * jacobi (KaStORS): iterative Jacobi solver for the Poisson equation.
 * The N x N grid is partitioned into row blocks; each sweep spawns one
 * task per block reading its halo neighbours from the previous iterate
 * and writing its rows of the next iterate (Section VI-A2).
 */

#include "apps/workloads.hh"

#include "apps/register.hh"
#include "sim/log.hh"
#include "spec/workload_registry.hh"

namespace picosim::apps
{

namespace
{
constexpr Addr kGridA = 0x5300'0000;
constexpr Addr kGridB = 0x5400'0000;

/** 5-point stencil: ~7 cycles/element at -O3 (FP add/mul + loads). */
constexpr Cycle kCyclesPerElem = 7;
constexpr Cycle kTaskFixed = 150;
} // namespace

rt::Program
jacobi(unsigned n, unsigned block_rows, unsigned sweeps)
{
    if (block_rows == 0 || n % block_rows != 0)
        sim::fatal("jacobi: block_rows must divide n");
    rt::Program prog;
    prog.name = "jacobi N" + std::to_string(n) + " B" +
                std::to_string(block_rows);

    const unsigned num_blocks = n / block_rows;
    const Addr row_bytes = static_cast<Addr>(n) * 8;
    const Cycle payload = kTaskFixed + kCyclesPerElem * block_rows * n;

    Addr src = kGridA, dst = kGridB;
    for (unsigned s = 0; s < sweeps; ++s) {
        for (unsigned b = 0; b < num_blocks; ++b) {
            std::vector<rt::TaskDep> deps;
            // Halo reads: own block plus the neighbouring blocks.
            deps.push_back(
                {src + static_cast<Addr>(b) * block_rows * row_bytes,
                 rt::Dir::In});
            if (b > 0)
                deps.push_back(
                    {src + static_cast<Addr>(b - 1) * block_rows * row_bytes,
                     rt::Dir::In});
            if (b + 1 < num_blocks)
                deps.push_back(
                    {src + static_cast<Addr>(b + 1) * block_rows * row_bytes,
                     rt::Dir::In});
            deps.push_back(
                {dst + static_cast<Addr>(b) * block_rows * row_bytes,
                 rt::Dir::Out});
            prog.spawn(payload, std::move(deps));
        }
        std::swap(src, dst);
    }
    prog.taskwait();
    return prog;
}

void
registerJacobiWorkloads(spec::WorkloadRegistry &reg)
{
    reg.add({"jacobi",
             "iterative stencil with halo dependences (kastors)",
             {{"n", 128, 1, 1'000'000, "grid dimension (NxN)"},
              {"block-rows", 1, 1, 1'000'000, "grid rows per task"},
              {"sweeps", 8, 1, 100'000, "Jacobi iterations"}},
             [](const spec::WorkloadArgs &a) {
                 const auto n = static_cast<unsigned>(a.at("n"));
                 const auto rows =
                     static_cast<unsigned>(a.at("block-rows"));
                 if (n % rows != 0) {
                     throw spec::SpecError(
                         "wl.block-rows=" + std::to_string(rows) +
                         " must divide wl.n=" + std::to_string(n));
                 }
                 return jacobi(n, rows,
                               static_cast<unsigned>(a.at("sweeps")));
             }});
}

} // namespace picosim::apps
