/**
 * @file
 * Unit tests of the timed port/interconnect primitives (sim/port.hh):
 * latency visibility, capacity backpressure, width arbitration, arbiter
 * FCFS occupancy accounting, contention statistics, and the owner-wake
 * contract against a live event-driven Simulator.
 */

#include <gtest/gtest.h>

#include "sim/kernel.hh"
#include "sim/port.hh"

using namespace picosim;
using namespace picosim::sim;

namespace
{

/** Consumer stub: drains its port one element per tick and logs cycles. */
class Drain : public Ticked
{
  public:
    Drain(const Clock &clock, TimedPort<int> *&port)
        : Ticked("drain"), clock_(clock), port_(port)
    {
    }

    void
    tick() override
    {
        if (port_->frontReady()) {
            popped.push_back({clock_.now(), port_->pop()});
        }
    }

    bool active() const override { return port_->frontReady(); }
    Cycle wakeAt() const override { return port_->nextReadyCycle(); }

    std::vector<std::pair<Cycle, int>> popped;

  private:
    const Clock &clock_;
    TimedPort<int> *&port_;
};

} // namespace

TEST(TimedPort, LatencyHidesElementsFromConsumer)
{
    Clock clock;
    TimedPort<int> port(clock, {4, /*latency=*/2, 0});
    EXPECT_TRUE(port.push(7));
    EXPECT_FALSE(port.frontReady());
    EXPECT_EQ(port.nextReadyCycle(), 2u);
    clock.advanceTo(1);
    EXPECT_FALSE(port.frontReady());
    clock.advanceTo(2);
    ASSERT_TRUE(port.frontReady());
    EXPECT_EQ(port.pop(), 7);
}

TEST(TimedPort, CapacityBackpressureCountsStalls)
{
    Clock clock;
    StatGroup stats;
    TimedPort<int> port(clock, {2, 0, 0}, &stats, "p");
    EXPECT_TRUE(port.push(1));
    EXPECT_TRUE(port.push(2));
    EXPECT_TRUE(port.full());
    EXPECT_FALSE(port.canPush());
    EXPECT_FALSE(port.push(3));
    EXPECT_FALSE(port.push(4));
    EXPECT_EQ(stats.scalarValue("p.pushes"), 2.0);
    EXPECT_EQ(stats.scalarValue("p.pushStalls"), 2.0);
    EXPECT_EQ(stats.dist("p.queued").max(), 2.0);
}

TEST(TimedPort, WidthSerializesSameCycleAcceptance)
{
    Clock clock;
    clock.advanceTo(5);
    TimedPort<int> port(clock, {8, /*latency=*/1, /*width=*/1});
    ASSERT_TRUE(port.push(0)); // accepted at 5, visible at 6
    ASSERT_TRUE(port.push(1)); // accepted at 6, visible at 7
    ASSERT_TRUE(port.push(2)); // accepted at 7, visible at 8
    for (Cycle c = 6; c <= 8; ++c) {
        clock.advanceTo(c);
        ASSERT_TRUE(port.frontReady()) << "cycle " << c;
        EXPECT_EQ(port.pop(), static_cast<int>(c - 6));
        EXPECT_FALSE(port.frontReady());
    }
}

TEST(TimedPort, WidthTwoAcceptsPairsPerCycle)
{
    Clock clock;
    TimedPort<int> port(clock, {8, 0, /*width=*/2});
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(port.push(i));
    // Two visible now, two at the next cycle.
    EXPECT_TRUE(port.frontReady());
    EXPECT_EQ(port.pop(), 0);
    EXPECT_EQ(port.pop(), 1);
    EXPECT_FALSE(port.frontReady());
    clock.advanceTo(1);
    EXPECT_EQ(port.pop(), 2);
    EXPECT_EQ(port.pop(), 3);
}

TEST(TimedPort, OwnerWokenThroughKernelOnPush)
{
    Simulator sim;
    TimedPort<int> *port = nullptr;
    Drain drain(sim.clock(), port);
    TimedPort<int> p(sim.clock(), {4, /*latency=*/3, 0}, nullptr, "",
                     &drain);
    port = &p;
    sim.addTicked(&drain);
    sim.runFor(1); // initial evaluation; port empty, drain goes idle

    ASSERT_TRUE(p.push(42));
    sim.run([&] { return !drain.popped.empty(); }, 100);
    ASSERT_EQ(drain.popped.size(), 1u);
    // Pushed at cycle 1 (after runFor(1)), visible at 1 + 3.
    EXPECT_EQ(drain.popped[0].first, 4u);
    EXPECT_EQ(drain.popped[0].second, 42);
}

TEST(Arbiter, GrantsSerializeWithOccupancy)
{
    Arbiter arb(nullptr, "");
    EXPECT_EQ(arb.grant(10, 4), 10u); // idle: served at ready
    EXPECT_EQ(arb.grant(10, 4), 14u); // queued behind the first
    EXPECT_EQ(arb.grant(12, 4), 18u); // still queued
    EXPECT_EQ(arb.grant(40, 4), 40u); // resource long free again
    EXPECT_EQ(arb.freeAt(), 44u);
}

TEST(Arbiter, StatsRecordStallAndBusyCycles)
{
    StatGroup stats;
    Arbiter arb(&stats, "bus");
    arb.grant(0, 8);
    arb.grant(0, 8); // waits 8 cycles
    EXPECT_EQ(stats.scalarValue("bus.grants"), 2.0);
    EXPECT_EQ(stats.scalarValue("bus.busyCycles"), 16.0);
    EXPECT_EQ(stats.scalarValue("bus.stallCycles"), 8.0);
}

TEST(LinkTimings, DefaultsAreCombinational)
{
    LinkTimings link;
    EXPECT_EQ(link.issue, 0u);
    EXPECT_EQ(link.response, 0u);
}
