#include "manager/picos_manager.hh"

#include <algorithm>

#include "sim/log.hh"

namespace picosim::manager
{

PicosManager::PicosManager(const sim::Clock &clock,
                           picos::SchedulerIf &sched, unsigned num_cores,
                           const ManagerParams &params,
                           sim::StatGroup &stats, const std::string &prefix)
    : PicosManager(clock, clock, sched, num_cores, params, stats, prefix)
{
}

PicosManager::PicosManager(const sim::Clock &clock,
                           const sim::Clock &coreClock,
                           picos::SchedulerIf &sched, unsigned num_cores,
                           const ManagerParams &params,
                           sim::StatGroup &stats, const std::string &prefix)
    : sim::Ticked(prefix == "manager" ? "picosManager"
                                      : "picosManager." + prefix),
      clock_(clock), coreClock_(coreClock), sched_(sched), params_(params),
      prefix_(prefix),
      submissionRequests_(&stats.scalar(prefix + ".submissionRequests")),
      packetsSubmitted_(&stats.scalar(prefix + ".packetsSubmitted")),
      tripleSubmits_(&stats.scalar(prefix + ".tripleSubmits")),
      workFetchRequests_(&stats.scalar(prefix + ".workFetchRequests")),
      retirePackets_(&stats.scalar(prefix + ".retirePackets")),
      burstsGranted_(&stats.scalar(prefix + ".burstsGranted")),
      zeroPadPackets_(&stats.scalar(prefix + ".zeroPadPackets")),
      tuplesEncoded_(&stats.scalar(prefix + ".tuplesEncoded")),
      readyDelivered_(&stats.scalar(prefix + ".readyDelivered")),
      finalBuffer_(clock, {params.finalBufferDepth, 0, 0}, &stats,
                   prefix_ + ".finalBuffer"),
      routingQueue_(clock,
                    {params.routingQueueDepth,
                     /*latency=*/1 + params.pdesCoreLinkCycles, 0},
                    &stats, prefix_ + ".routingQueue", this),
      roccReadyQueue_(clock, {params.roccReadyQueueDepth, 0, 0}, &stats,
                      prefix_ + ".roccReadyQueue")
{
    if (num_cores == 0)
        sim::fatal("PicosManager needs at least one core");
    ports_.reserve(num_cores);
    for (unsigned i = 0; i < num_cores; ++i)
        ports_.emplace_back(clock, coreClock, params, stats,
                            prefix_ + ".core" + std::to_string(i), this);
    // The packet encoder consumes Picos's ready interface; have Picos wake
    // this manager when ready packets become visible to it.
    sched_.setReadyListener(this);
    bindFastDispatch<PicosManager>();
}

void
PicosManager::reset()
{
    for (auto &port : ports_) {
        port.requestQueue.clear();
        port.subBuffer.clear();
        port.readyQueue.clear();
        port.retireBuffer.clear();
    }
    grantedCore_ = -1;
    burstRemaining_ = 0;
    padRemaining_ = 0;
    rrSubNext_ = 0;
    finalBuffer_.clear();
    routingQueue_.clear();
    roccReadyQueue_.clear();
    encodeCount_ = 0;
    rrRetireNext_ = 0;
    pendingRequests_ = 0;
    pendingRetires_ = 0;
    readyOccupied_ = 0;
    errorCode_ = 0;
}

void
PicosManager::bindPdesCoreBoundary(sim::Simulator &sim)
{
    if (params_.pdesCoreLinkCycles == 0)
        sim::fatal("PicosManager '" + prefix_ +
                   "': bindPdesCoreBoundary without pdesCoreLinkCycles "
                   ">= 1 (the core<->manager hop is the domain pair's "
                   "conservative lookahead)");
    coreSplit_ = true;
    for (CorePort &port : ports_) {
        // Core-domain producers into this manager's domain...
        port.requestQueue.enableCrossDomainStaging(sim, coreClock_);
        port.subBuffer.enableCrossDomainStaging(sim, coreClock_);
        port.retireBuffer.enableCrossDomainStaging(sim, coreClock_);
        // ...and the private ready queue back the other way.
        port.readyQueue.enableCrossDomainStaging(sim, clock_);
        // The submission/retire occupancy counters were bumped by the
        // delegate inline; across a domain boundary they move to the
        // single-threaded boundary drain, so the arbiters only ever see
        // requests that are visible (drained) on the manager side.
        port.requestQueue.onStagedDrain(
            [this](const unsigned &) { ++pendingRequests_; });
        port.retireBuffer.onStagedDrain(
            [this](const std::uint32_t &) { ++pendingRetires_; });
    }
    routingQueue_.enableCrossDomainStaging(sim, coreClock_);
}

// -- Delegate-facing interface ----------------------------------------

bool
PicosManager::submissionRequest(CoreId core, unsigned num_packets)
{
    if (num_packets == 0 || num_packets > rocc::kDescriptorPackets ||
        num_packets % 3 != 0) {
        errorCode_ |= 0x1;
        return false;
    }
    if (!ports_.at(core).requestQueue.push(num_packets))
        return false;
    if (!coreSplit_)
        ++pendingRequests_; // split mode: counted at the boundary drain
    ++*submissionRequests_;
    return true;
}

bool
PicosManager::submitPacket(CoreId core, std::uint32_t packet)
{
    if (!ports_.at(core).subBuffer.push(packet))
        return false;
    ++*packetsSubmitted_;
    return true;
}

bool
PicosManager::submitThreePackets(CoreId core, std::uint32_t p1,
                                 std::uint32_t p2, std::uint32_t p3)
{
    CorePort &port = ports_.at(core);
    if (port.subBuffer.capacity() - port.subBuffer.size() < 3)
        return false;
    port.subBuffer.push(p1);
    port.subBuffer.push(p2);
    port.subBuffer.push(p3);
    *packetsSubmitted_ += 3;
    ++*tripleSubmits_;
    return true;
}

bool
PicosManager::readyTaskRequest(CoreId core)
{
    if (!routingQueue_.push(core))
        return false;
    ++*workFetchRequests_;
    return true;
}

std::optional<rocc::ReadyTuple>
PicosManager::peekReady(CoreId core) const
{
    const CorePort &port = ports_.at(core);
    if (!port.readyQueue.frontReady())
        return std::nullopt;
    return port.readyQueue.front();
}

rocc::ReadyTuple
PicosManager::popReady(CoreId core)
{
    CorePort &port = ports_.at(core);
    // In the manager split readyOccupied_ is unused (stays 0): size() is
    // the producer-side view, not this consumer thread's to read.
    if (!coreSplit_ && port.readyQueue.size() == 1)
        --readyOccupied_;
    // Freed private-queue space may let the work-fetch arbiter deliver.
    return port.readyQueue.popAndWakeOwner();
}

bool
PicosManager::retireCanAccept(CoreId core) const
{
    return ports_.at(core).retireBuffer.canPush();
}

bool
PicosManager::retirePush(CoreId core, std::uint32_t picos_id)
{
    if (!ports_.at(core).retireBuffer.push(picos_id))
        return false;
    if (!coreSplit_)
        ++pendingRetires_; // split mode: counted at the boundary drain
    ++*retirePackets_;
    return true;
}

// -- Internal pipelines -------------------------------------------------

void
PicosManager::tickSubmissionHandler()
{
    // Final Buffer -> Picos (protocol crossing), one packet per cycle.
    if (finalBuffer_.frontReady() && sched_.subCanAccept())
        sched_.subPush(finalBuffer_.pop());

    // Grant a new core when idle: in-order round-robin over cores with a
    // pending Submission Request (Guided Arbiter).
    if (grantedCore_ < 0 && pendingRequests_ > 0) {
        for (unsigned i = 0; i < ports_.size(); ++i) {
            const unsigned c = (rrSubNext_ + i) % ports_.size();
            if (ports_[c].requestQueue.frontReady()) {
                grantedCore_ = static_cast<int>(c);
                --pendingRequests_;
                burstRemaining_ = ports_[c].requestQueue.pop();
                padRemaining_ =
                    rocc::kDescriptorPackets - burstRemaining_;
                rrSubNext_ = (c + 1) % ports_.size();
                ++*burstsGranted_;
                break;
            }
        }
    }
    if (grantedCore_ < 0)
        return;

    // Stream one packet per cycle from the granted core (then from the
    // Zero Padder) into the Final Buffer.
    if (!finalBuffer_.canPush())
        return;
    CorePort &port = ports_[grantedCore_];
    if (burstRemaining_ > 0) {
        if (!port.subBuffer.frontReady())
            return; // core has not produced the next packet yet
        finalBuffer_.push(port.subBuffer.pop());
        --burstRemaining_;
    } else if (padRemaining_ > 0) {
        finalBuffer_.push(0);
        --padRemaining_;
        ++*zeroPadPackets_;
    }
    if (burstRemaining_ == 0 && padRemaining_ == 0)
        grantedCore_ = -1; // release the port for the next burst
}

void
PicosManager::tickPacketEncoder()
{
    // Collect one 32-bit ready packet per cycle from Picos; emit the
    // compressed 96-bit tuple into the central RoCC Ready Queue.
    if (encodeCount_ == 3) {
        if (!roccReadyQueue_.canPush())
            return;
        rocc::ReadyTuple tuple;
        tuple.picosId = encodeBuf_[0];
        tuple.swId = (static_cast<std::uint64_t>(encodeBuf_[1]) << 32) |
                     encodeBuf_[2];
        roccReadyQueue_.push(tuple);
        encodeCount_ = 0;
        ++*tuplesEncoded_;
        return;
    }
    if (sched_.readyValid())
        encodeBuf_[encodeCount_++] = sched_.readyPop();
}

void
PicosManager::tickWorkFetchArbiter()
{
    // Serve requests strictly in arrival order (InOrderArbiter).
    if (!routingQueue_.frontReady() || !roccReadyQueue_.frontReady())
        return;
    const CoreId core = routingQueue_.front();
    CorePort &port = ports_.at(core);
    if (!port.readyQueue.canPush())
        return;
    routingQueue_.pop();
    if (!coreSplit_ && port.readyQueue.empty())
        ++readyOccupied_;
    port.readyQueue.push(roccReadyQueue_.pop());
    ++*readyDelivered_;
}

void
PicosManager::tickRetireArbiter()
{
    if (pendingRetires_ == 0 || !sched_.retireCanAccept())
        return;
    for (unsigned i = 0; i < ports_.size(); ++i) {
        const unsigned c = (rrRetireNext_ + i) % ports_.size();
        if (ports_[c].retireBuffer.frontReady()) {
            --pendingRetires_;
            sched_.retirePush(ports_[c].retireBuffer.pop());
            rrRetireNext_ = (c + 1) % ports_.size();
            return;
        }
    }
}

void
PicosManager::tick()
{
    tickRetireArbiter();
    tickPacketEncoder();
    tickWorkFetchArbiter();
    tickSubmissionHandler();
}

bool
PicosManager::active() const
{
    const Cycle next = clock_.now() + 1;
    if (grantedCore_ >= 0)
        return true;
    // The encoder makes progress when collecting packets or when it can
    // emit its tuple; a stalled encoder (central queue full) sleeps until
    // the work-fetch path drains it.
    if (encodeCount_ == 3 ? roccReadyQueue_.canPush() : sched_.readyValid())
        return true;
    if (finalBuffer_.nextReadyCycle() <= next)
        return true;
    if (routingQueue_.nextReadyCycle() <= next && !roccReadyQueue_.empty())
        return true;
    for (const CorePort &port : ports_) {
        if (port.requestQueue.nextReadyCycle() <= next)
            return true;
        if (port.retireBuffer.nextReadyCycle() <= next)
            return true;
    }
    return false;
}

Cycle
PicosManager::wakeAt() const
{
    Cycle wake = kCycleNever;
    wake = std::min(wake, finalBuffer_.nextReadyCycle());
    if (!roccReadyQueue_.empty() || encodeCount_ > 0 ||
        sched_.readyValid()) {
        wake = std::min(wake, routingQueue_.nextReadyCycle());
    }
    for (const CorePort &port : ports_) {
        wake = std::min(wake, port.requestQueue.nextReadyCycle());
        wake = std::min(wake, port.retireBuffer.nextReadyCycle());
        // Not work for the manager itself, but the kernel must advance
        // the clock across the private-queue latency so a polling
        // consumer (or a run predicate) can observe the delivery. In the
        // manager split the consumer is another domain — it owns the
        // resident items and self-wakes through its polling delay, so
        // this producer must not read them.
        if (!coreSplit_)
            wake = std::min(wake, port.readyQueue.nextReadyCycle());
    }
    return wake;
}

Cycle
PicosManager::nextSelfDue(Cycle next) const
{
    // Mirrors active() (any hit returns `next`) and wakeAt() (otherwise
    // the min over the same port state) without walking the ports twice.
    if (grantedCore_ >= 0)
        return next;
    if (encodeCount_ == 3 ? roccReadyQueue_.canPush() : sched_.readyValid())
        return next;
    const Cycle fb = finalBuffer_.nextReadyCycle();
    if (fb <= next)
        return next;
    const Cycle rq = routingQueue_.nextReadyCycle();
    const bool roccEmpty = roccReadyQueue_.empty();
    if (rq <= next && !roccEmpty)
        return next;

    Cycle wake = fb;
    if (!roccEmpty || encodeCount_ > 0 || sched_.readyValid())
        wake = std::min(wake, rq);
    if (pendingRequests_ == 0 && pendingRetires_ == 0 &&
        readyOccupied_ == 0)
        return wake; // every per-core port is empty — nothing to scan
    for (const CorePort &port : ports_) {
        const Cycle rr = port.requestQueue.nextReadyCycle();
        const Cycle rb = port.retireBuffer.nextReadyCycle();
        if (rr <= next || rb <= next)
            return next;
        wake = std::min(wake, std::min(rr, rb));
        // Not work for the manager itself, but the kernel must advance
        // the clock across the private-queue latency so a polling
        // consumer (or a run predicate) can observe the delivery — see
        // wakeAt() for why the manager split must not read it.
        if (!coreSplit_)
            wake = std::min(wake, port.readyQueue.nextReadyCycle());
    }
    return wake;
}

bool
PicosManager::drained() const
{
    if (grantedCore_ >= 0 || encodeCount_ > 0 || !finalBuffer_.empty() ||
        !roccReadyQueue_.empty())
        return false;
    for (const CorePort &port : ports_) {
        if (!port.requestQueue.empty() || !port.subBuffer.empty() ||
            !port.readyQueue.empty() || !port.retireBuffer.empty())
            return false;
    }
    return true;
}

} // namespace picosim::manager
