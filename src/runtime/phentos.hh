/**
 * @file
 * Phentos: the fly-weight, header-only-in-spirit Task Scheduling runtime
 * built directly on the custom instructions (paper Section V-B).
 *
 * Design goals reproduced from the paper:
 *  1. no non-IO syscalls (no mutexes / condition variables at all);
 *  2/6. task metadata array sized at one or two cache lines per element
 *     (7 or 15 dependencies), single-writer per element -> no locks;
 *  3. ready-task metadata fetched with one or two line transfers;
 *  4. API inlined in application code (modeled by the tiny loop costs);
 *  5. contention on the single atomic retirement counter mitigated by
 *     per-core private counters flushed only after a number of work-fetch
 *     failures, and taskwait polls backed off to every 10..100 cycles.
 */

#ifndef PICOSIM_RUNTIME_PHENTOS_HH
#define PICOSIM_RUNTIME_PHENTOS_HH

#include <vector>

#include "runtime/cost_model.hh"
#include "runtime/runtime.hh"
#include "runtime/task_trace.hh"
#include "runtime/task_window.hh"

namespace picosim::rt
{

class Phentos : public Runtime
{
  public:
    explicit Phentos(const CostModel &cm = {}) : cm_(cm) {}

    std::string name() const override { return "Phentos"; }

    void install(cpu::System &sys, const Program &prog) override;

    bool finished() const override;
    std::uint64_t tasksExecuted() const override { return executed_; }
    std::uint64_t tasksSubmittedByWorkers() const override
    {
        return workerSubmitted_;
    }
    std::uint64_t tasksExecutedInline() const override
    {
        return inlineExecuted_;
    }

    /** Metadata element size selected for the current program (lines). */
    unsigned elemLines() const { return elemLines_; }

    /** Attach an optional per-task lifecycle trace (may be nullptr). */
    void setTrace(TaskTrace *trace) { trace_ = trace; }

  private:
    struct PerCore
    {
        std::uint64_t privateRetired = 0; ///< unflushed retirements
        unsigned fetchFails = 0;          ///< fails since last flush
        unsigned outstandingReq = 0;      ///< un-consumed ready requests
    };

    sim::CoTask<void> master(cpu::HartApi &api);
    sim::CoTask<void> worker(cpu::HartApi &api);

    /**
     * Submit one task: metadata write + instruction burst. With
     * @p allow_throttle (nested programs), co_returns false without
     * submitting when the hardware task window is saturated — the caller
     * must fall back (drain, then execute inline).
     */
    sim::CoTask<bool> submitTask(cpu::HartApi &api, const Task &task,
                                 bool allow_throttle = false);

    /**
     * Saturation fallback: execute @p task on this hart without hardware
     * involvement (its earlier siblings are guaranteed drained, so its
     * dependences are satisfied). Counts into the same submission/
     * retirement bookkeeping so barriers and scoped waits stay exact.
     */
    sim::CoTask<void> executeInline(cpu::HartApi &api, const Task &task);

    /** Try to fetch and run one ready task. co_returns success. */
    sim::CoTask<bool> tryExecuteOne(cpu::HartApi &api);

    /** Flush this core's private retirement counter if non-zero. */
    sim::CoTask<void> flushPrivate(cpu::HartApi &api);

    /** Spin (with 10..100-cycle backoff) until @p target retirements. */
    sim::CoTask<void> taskwait(cpu::HartApi &api, std::uint64_t target);

    /** Nested-program barrier: drain everything submitted so far,
     *  subtrees included (re-reads the growing submission count). */
    sim::CoTask<void> taskwaitAll(cpu::HartApi &api);

    /** Scoped taskwait: wait until @p target children of @p id retired. */
    sim::CoTask<void> taskwaitChildren(cpu::HartApi &api, std::uint64_t id,
                                       std::uint64_t target);

    /** Replay a task body's child spawns and scoped waits (nested). */
    sim::CoTask<void> runBody(cpu::HartApi &api, const Task &task);

    Cycle backoffOf(unsigned fails) const;

    CostModel cm_;
    cpu::System *sys_ = nullptr;
    const Program *prog_ = nullptr;
    TaskTrace *trace_ = nullptr;
    unsigned elemLines_ = 1;

    std::vector<PerCore> perCore_;
    std::uint64_t submitted_ = 0;
    std::uint64_t sharedRetired_ = 0; ///< the single atomic counter
    std::uint64_t executed_ = 0;
    std::uint64_t workerSubmitted_ = 0; ///< spawns from non-master harts
    bool doneFlag_ = false;
    bool masterDone_ = false;

    // -- Nested tasking (inert for flat programs) --
    bool nested_ = false;           ///< program spawns child tasks
    bool skipFinalBarrier_ = false; ///< last action already is a taskwait
    std::vector<std::uint64_t> childRetired_; ///< per-parent retire counts

    /**
     * Hardware task-window throttle (nested programs only). A nested
     * program can wedge the accelerator: every reservation-station entry
     * held by a *blocked parent* (scoped taskwait) while its children
     * cannot be submitted leaves nothing ready to execute. Flat programs
     * are immune — any in-flight task is executable — so the throttle
     * only guards nested submissions: past the limit the spawner drains
     * its own children and runs the new child inline instead.
     */
    std::uint64_t hwInFlight_ = 0;     ///< submitted to HW, not yet retired
    std::uint64_t inFlightLimit_ = 0;  ///< 0 = no throttle (flat)
    std::uint64_t inlineExecuted_ = 0; ///< saturation-fallback executions
    LiveWriters liveWriters_; ///< guards the inline fallback (throttled runs)
};

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_PHENTOS_HH
