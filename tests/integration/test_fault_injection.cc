/**
 * @file
 * Fault-injection tests. A fault is a pure function of the simulated
 * clock, so a faulted run must be as deterministic as a clean one:
 * bit-identical across the event-driven and tick-the-world kernels and
 * across PDES host-thread counts, while actually perturbing the
 * schedule (a fault nobody can observe is not a fault). The drop-job
 * fault ends a harness run with RunStatus::Dropped; the JobManager
 * turns that into one disarmed re-execution, so a dropped run's final
 * result equals the clean run's.
 */

#include <gtest/gtest.h>

#include <string>

#include "runtime/harness.hh"
#include "service/job_manager.hh"
#include "service/wire.hh"
#include "spec/engine.hh"
#include "spec/run_spec.hh"

using namespace picosim;
using namespace picosim::rt;

namespace
{

/** task-free spreads work over all shards, so a killed shard is
 *  guaranteed to be load-bearing. */
spec::RunSpec
killShardSpec()
{
    spec::RunSpec s;
    s.workload = "task-free";
    s.wl = {{"tasks", 2000}, {"deps", 1}, {"payload", 500}};
    s.schedShards = 4;
    s.faultKind = sim::FaultKind::KillShard;
    s.faultCycle = 20'000;
    s.faultUntil = 120'000;
    s.faultTarget = 0;
    s.canonicalize();
    return s;
}

spec::RunSpec
stallLinkSpec()
{
    spec::RunSpec s;
    s.workload = "task-chain";
    s.wl = {{"tasks", 2000}, {"deps", 1}, {"payload", 500}};
    s.clusters = 2;
    s.faultKind = sim::FaultKind::StallLink;
    s.faultCycle = 50'000;
    s.faultUntil = 150'000;
    s.faultTarget = 0;
    s.canonicalize();
    return s;
}

spec::RunSpec
withoutFault(spec::RunSpec s)
{
    s.faultKind = sim::FaultKind::None;
    s.faultCycle = s.faultUntil = 0;
    s.faultTarget = 0;
    return s;
}

std::string
resultKey(const RunResult &res)
{
    RunResult r = res;
    r.resumedFromCycle = 0;
    return svc::wire::runResultJson(r);
}

} // namespace

// -- Spec validation ----------------------------------------------------

TEST(FaultSpec, SerializationRoundTripsEveryFaultKey)
{
    const spec::RunSpec s = killShardSpec();
    const spec::RunSpec back = spec::RunSpec::parse(s.serialize());
    EXPECT_EQ(back, s);
    EXPECT_NE(s.serialize().find("fault.kind=kill-shard"),
              std::string::npos);
}

TEST(FaultSpec, HealBeforeStrikeIsRejected)
{
    spec::RunSpec s = killShardSpec();
    s.faultUntil = s.faultCycle; // heals the instant it strikes
    EXPECT_THROW(s.canonicalize(), spec::SpecError);
}

TEST(FaultSpec, ModelFaultNeedsTheShardedScheduler)
{
    spec::RunSpec s = killShardSpec();
    s.schedShards = 1;
    s.clusters = 1;
    s.faultTarget = 0;
    EXPECT_THROW(s.canonicalize(), spec::SpecError);
}

TEST(FaultSpec, ModelFaultUnderSerialRuntimeIsRejected)
{
    spec::RunSpec s = killShardSpec();
    s.runtime = rt::RuntimeKind::Serial;
    EXPECT_THROW(s.canonicalize(), spec::SpecError);
}

TEST(FaultSpec, TargetMustExist)
{
    spec::RunSpec shard = killShardSpec();
    shard.faultTarget = shard.schedShards; // one past the last shard
    EXPECT_THROW(shard.canonicalize(), spec::SpecError);

    spec::RunSpec link = stallLinkSpec();
    link.faultTarget = link.clusters;
    EXPECT_THROW(link.canonicalize(), spec::SpecError);
}

// -- Healed faults: deterministic, observable, and they complete --------

TEST(FaultRun, KillShardIsDeterministicAcrossKernels)
{
    spec::RunSpec ev = killShardSpec();
    spec::RunSpec tw = killShardSpec();
    tw.mode = sim::EvalMode::TickWorld;

    const RunResult clean = spec::Engine::run(withoutFault(killShardSpec()));
    const RunResult a = spec::Engine::run(ev);
    const RunResult b = spec::Engine::run(tw);

    ASSERT_TRUE(a.completed); // the outage heals; the work still finishes
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.tasks, b.tasks);
    EXPECT_GT(a.cycles, clean.cycles); // the outage must cost something
}

TEST(FaultRun, StallLinkIsDeterministicAcrossKernels)
{
    spec::RunSpec ev = stallLinkSpec();
    spec::RunSpec tw = stallLinkSpec();
    tw.mode = sim::EvalMode::TickWorld;

    const RunResult clean = spec::Engine::run(withoutFault(stallLinkSpec()));
    const RunResult a = spec::Engine::run(ev);
    const RunResult b = spec::Engine::run(tw);

    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_NE(a.cycles, clean.cycles);
}

TEST(FaultRun, FaultedPdesIsHostThreadInvariant)
{
    // The partitioned kernel quantizes fault edges at window barriers,
    // so its faulted schedule may differ from the sequential kernels' —
    // but it must be bit-identical at every host-thread count.
    RunResult prev;
    for (unsigned threads = 1; threads <= 4; threads *= 2) {
        spec::RunSpec s = killShardSpec();
        s.pdes = cpu::PdesParams::Partition::Force;
        s.hostThreads = threads;
        s.canonicalize();
        const RunResult res = spec::Engine::run(s);
        ASSERT_TRUE(res.completed) << "host threads " << threads;
        if (threads > 1) {
            EXPECT_EQ(resultKey(res), resultKey(prev))
                << "host threads " << threads;
        }
        prev = res;
    }
}

TEST(FaultRun, RepeatedFaultedRunsAreIdentical)
{
    const RunResult a = spec::Engine::run(killShardSpec());
    const RunResult b = spec::Engine::run(killShardSpec());
    EXPECT_EQ(resultKey(a), resultKey(b));
}

// -- Drop-job: the harness drops, the JobManager retries ----------------

TEST(FaultRun, DropJobEndsTheRunAtTheFaultCycle)
{
    spec::RunSpec s = withoutFault(killShardSpec());
    s.faultKind = sim::FaultKind::DropJob;
    s.faultCycle = 20'000;
    s.canonicalize();

    const RunResult res = spec::Engine::run(s);
    EXPECT_EQ(res.status, RunStatus::Dropped);
    EXPECT_FALSE(res.completed);
    // Stops at the first deterministic boundary at or past the cycle.
    EXPECT_GE(res.cycles, 20'000u);
    EXPECT_LT(res.cycles, spec::Engine::run(withoutFault(s)).cycles);
}

TEST(FaultRun, JobManagerRetriesADroppedRunOnce)
{
    spec::RunSpec dropped = withoutFault(killShardSpec());
    dropped.faultKind = sim::FaultKind::DropJob;
    dropped.faultCycle = 20'000;
    dropped.canonicalize();

    svc::JobManager::Params mp;
    mp.workers = 1;
    svc::JobManager mgr(mp);
    svc::JobSpec js;
    js.runs = {dropped};
    const std::uint64_t id = mgr.submit(std::move(js));
    EXPECT_EQ(mgr.wait(id).state, svc::JobState::Done);

    const auto row = mgr.waitRow(id, 0);
    ASSERT_TRUE(row.has_value() && row->done);
    EXPECT_EQ(row->result.status, RunStatus::Ok);
    // The disarmed re-execution reproduces the clean run exactly.
    EXPECT_EQ(resultKey(row->result),
              resultKey(spec::Engine::run(withoutFault(dropped))));
}
