/**
 * @file
 * Reproduces Table II: FPGA resource usage breakdown. Cell counts come
 * from the analytic area model (DESIGN.md substitution #5); the headline
 * claim to preserve is that the whole scheduling subsystem (Picos, Picos
 * Manager and the Delegates) stays below 2% of the octa-core SoC.
 */

#include <cstdio>

#include "area/resource_model.hh"

using namespace picosim;
using namespace picosim::area;

int
main()
{
    const AreaParams a{};
    const picos::PicosParams pp{};
    const manager::ManagerParams mp{};

    std::printf("# Table II: resource usage breakdown (FPGA cells)\n");
    std::printf("# paper: top 384K 100%%, Core 44K 11.56%%, fpuOpt 18K "
                "4.77%%,\n#        dcache 6K 1.57%%, icache 1K 0.32%%, "
                "SSystem 7K 1.79%%\n");
    std::printf("%-10s %10s %9s  %s\n", "module", "cells", "fraction",
                "description");
    for (const ModuleUsage &m : tableII(a, pp, mp)) {
        std::printf("%-10s %10llu %8.2f%%  %s\n", m.name.c_str(),
                    static_cast<unsigned long long>(m.cells),
                    m.fraction * 100.0, m.description.c_str());
    }

    const std::uint64_t ssystem = schedulingSystemCells(a, pp, mp);
    std::printf("\nScheduling subsystem below 2%% of the SoC: %s\n",
                tableII(a, pp, mp).back().fraction < 0.02 ? "yes" : "NO");
    std::printf("State bits: picosFF=%llu picosBRAM=%llu manager(8 cores)=%llu\n",
                static_cast<unsigned long long>(picosStateBits(pp)),
                static_cast<unsigned long long>(picosTableBits(pp)),
                static_cast<unsigned long long>(managerStateBits(mp, 8)));
    std::printf("SSystem cells: %llu\n",
                static_cast<unsigned long long>(ssystem));
    return 0;
}
