/**
 * @file
 * Scheduler-sharding extension: does the dependence-management fabric
 * keep up as cores grow past the paper's 8-core prototype? Sweeps core
 * count x scheduler topology (the single centralized Picos vs sharded
 * multi-Picos configurations) on (a) a fine-grained independent workload
 * that hammers the submission/work-fetch path and (b) a dependence-graph
 * workload that exercises cross-shard edges, and reports makespan plus
 * the per-port contention counters behind it: routing/ready/submission
 * push stalls, shard-gateway arbiter waits, cross-shard edges and
 * cross-cluster steals. The single-gateway routing-queue stalls grow
 * superlinearly past 32 cores; the clustered fabrics shrink them by an
 * order of magnitude while staying cycle-comparable on makespan.
 *
 * A second, named scenario (xshard_latency_sensitivity) measures the
 * suspect behind the sparselu 1.20M -> 1.34M cycle regression at 32
 * cores going 1 -> 4 shards: it sweeps the cross-shard edge latency
 * (link, dep round-trip and notify costs scaled together) on the 4x4
 * topology and emits per-latency cycle counts, so how much of the
 * sharded makespan is latency-induced (vs structural serialization) is
 * measured instead of guessed.
 *
 * Every configuration is a spec::RunSpec mutation run through
 * spec::Engine; each BENCH json row carries its serialized spec.
 * Emits BENCH_shard_scaling.json alongside the tables.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.hh"
#include "spec/engine.hh"

using namespace picosim;
using namespace picosim::bench;

namespace
{

struct Topo
{
    unsigned shards;
    unsigned clusters;
};

/** One configuration run, with its wall time (the BENCH json tracks the
 *  simulator's own perf trajectory across PRs, not just the makespans). */
rt::RunResult
runSpecTimed(const spec::RunSpec &s, double &wall_sec)
{
    const auto t0 = std::chrono::steady_clock::now();
    rt::RunResult r = bench::runJob(s);
    wall_sec = std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - t0)
                   .count();
    return r;
}

} // namespace

int
main()
{
    const std::vector<spec::RunSpec> bases = {
        // fine-grained, independent
        canonicalSpec("blackscholes", {{"options", 16384}, {"block", 16}}),
        // real dependence graph
        canonicalSpec("sparselu", {{"nb", 12}, {"bs", 24}}),
    };
    const std::vector<unsigned> coreCounts =
        quickMode() ? std::vector<unsigned>{8u, 32u}
                    : std::vector<unsigned>{8u, 16u, 32u, 64u};
    const Topo topos[] = {{1, 1}, {2, 2}, {4, 4}};

    BenchJson json("BENCH_shard_scaling.json");
    bool allCompleted = true;
    for (const spec::RunSpec &base : bases) {
        const rt::Program prog = spec::Engine::buildProgram(base);
        std::printf("# Shard scaling: %s (%llu tasks, %.0f cycles each), "
                    "Phentos\n",
                    prog.name.c_str(),
                    static_cast<unsigned long long>(prog.numTasks()),
                    prog.meanTaskSize());
        std::printf("%-6s %-9s %12s %10s %10s %10s %12s %8s %8s\n",
                    "cores", "topology", "cycles", "subStall", "routStall",
                    "rdyStall", "gateWaitCyc", "xEdges", "steals");
        for (unsigned cores : coreCounts) {
            for (const Topo &t : topos) {
                if (t.clusters > cores)
                    continue;
                spec::RunSpec s = base;
                s.cores = cores;
                s.schedShards = t.shards;
                s.clusters = t.clusters;
                double wallSec = 0.0;
                const rt::RunResult r = runSpecTimed(s, wallSec);
                allCompleted = allCompleted && r.completed;
                char topo[16];
                std::snprintf(topo, sizeof topo, "%ux%u", t.shards,
                              t.clusters);
                std::printf("%-6u %-9s %12llu %10llu %10llu %10llu "
                            "%12llu %8llu %8llu%s\n",
                            cores, topo,
                            static_cast<unsigned long long>(r.cycles),
                            static_cast<unsigned long long>(
                                r.schedSubStalls),
                            static_cast<unsigned long long>(
                                r.schedRoutingStalls),
                            static_cast<unsigned long long>(
                                r.schedReadyStalls),
                            static_cast<unsigned long long>(
                                r.schedGatewayStallCycles),
                            static_cast<unsigned long long>(
                                r.crossShardEdges),
                            static_cast<unsigned long long>(r.workSteals),
                            r.completed ? "" : "  INCOMPLETE");
                json.beginRow();
                stampHost(json);
                stampSpec(json, s);
                json.field("bench", "shard_scaling");
                json.field("workload", prog.name);
                json.field("cores", std::uint64_t{cores});
                json.field("shards", std::uint64_t{t.shards});
                json.field("clusters", std::uint64_t{t.clusters});
                json.field("cycles", r.cycles);
                json.field("subStalls", r.schedSubStalls);
                json.field("routingStalls", r.schedRoutingStalls);
                json.field("readyStalls", r.schedReadyStalls);
                json.field("gatewayStallCycles",
                           r.schedGatewayStallCycles);
                json.field("crossShardEdges", r.crossShardEdges);
                json.field("steals", r.workSteals);
                json.field("wallSec", wallSec);
                json.field("hostTicksPerSec",
                           wallSec > 0
                               ? static_cast<double>(r.componentTicks) /
                                     wallSec
                               : 0.0);
                json.field("completed", r.completed);
            }
        }
        std::printf("\n");
    }

    // -- Cross-shard edge-latency sensitivity (named scenario) ----------
    // Fixed workload/topology (the regression point: sparselu at 32
    // cores on 4x4), sweeping the fabric's cross-shard costs together:
    // cluster-link = L, xshard-dep = L, xshard-notify = 2L. L = 2 is
    // the default configuration, reproducing the main table's row
    // exactly.
    {
        spec::RunSpec base =
            canonicalSpec("sparselu", {{"nb", 12}, {"bs", 24}});
        base.cores = 32;
        base.schedShards = 4;
        base.clusters = 4;
        const rt::Program prog = spec::Engine::buildProgram(base);
        const std::vector<unsigned> latencies =
            quickMode() ? std::vector<unsigned>{0u, 2u, 8u}
                        : std::vector<unsigned>{0u, 1u, 2u, 4u, 8u};
        std::printf("# Cross-shard edge-latency sensitivity: %s, %u "
                    "cores, %ux%u topology\n",
                    prog.name.c_str(), base.cores, base.schedShards,
                    base.clusters);
        std::printf("%-8s %12s %12s %8s %8s\n", "latency", "cycles",
                    "gateWaitCyc", "xEdges", "steals");
        for (unsigned lat : latencies) {
            spec::RunSpec s = base;
            s.clusterLink = lat;
            s.xshardDep = lat;
            s.xshardNotify =
                std::max(1u, 2 * lat); // TimedPort latency must be >= 1
            double wallSec = 0.0;
            const rt::RunResult r = runSpecTimed(s, wallSec);
            allCompleted = allCompleted && r.completed;
            std::printf("%-8u %12llu %12llu %8llu %8llu%s\n", lat,
                        static_cast<unsigned long long>(r.cycles),
                        static_cast<unsigned long long>(
                            r.schedGatewayStallCycles),
                        static_cast<unsigned long long>(r.crossShardEdges),
                        static_cast<unsigned long long>(r.workSteals),
                        r.completed ? "" : "  INCOMPLETE");
            json.beginRow();
            stampHost(json);
            stampSpec(json, s);
            json.field("bench", "xshard_latency_sensitivity");
            json.field("workload", prog.name);
            json.field("cores", std::uint64_t{base.cores});
            json.field("shards", std::uint64_t{base.schedShards});
            json.field("clusters", std::uint64_t{base.clusters});
            json.field("linkLatency", std::uint64_t{lat});
            json.field("cycles", r.cycles);
            json.field("gatewayStallCycles", r.schedGatewayStallCycles);
            json.field("crossShardEdges", r.crossShardEdges);
            json.field("steals", r.workSteals);
            json.field("wallSec", wallSec);
            json.field("completed", r.completed);
        }
        std::printf("# latency=2 is the default configuration; latency=0 "
                    "bounds how much of the\n# 1->4 shard cycle "
                    "regression the fabric latency accounts for.\n\n");
    }

    if (json.write())
        std::printf("json: %s\n", json.path().c_str());
    else
        std::fprintf(stderr, "warning: could not write %s\n",
                     json.path().c_str());
    std::printf("# The 1x1 rows are the paper's centralized Picos; its "
                "routing-queue stalls grow\n# superlinearly with cores "
                "while the clustered fabrics hold them near zero.\n");
    return allCompleted ? 0 : 1;
}
