/**
 * @file
 * Kernel-efficiency benchmark: quantifies what the event-driven kernel and
 * the parallel batch harness buy over the reference implementation.
 *
 *  1. Component-tick reduction and wall-clock speedup: Figure 8-style
 *     workloads run under EvalMode::EventDriven vs the tick-the-world
 *     reference, with identical cycle results. Each mode is run several
 *     times and the minimum wall time is reported, so the speedup is a
 *     ratio of floors rather than of noise.
 *  2. Batch throughput: the Figure 9 matrix swept by runBatch() with one
 *     worker vs a pool, with identical rows. The pool result is only
 *     meaningful relative to hostConcurrency (also emitted): on a
 *     single-hardware-thread host the pool cannot beat 1x by
 *     construction.
 *  3. Conservative-PDES: one sharded simulation run on the windowed
 *     kernel at 1 vs 2 host threads — full stat dumps must be
 *     bit-identical (the identical gate in check_perf.py), and the wall
 *     ratio shows what intra-run threading buys on this host.
 *
 * `--quick` (or PICOSIM_QUICK=1) subsamples the sweeps for CI.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>
#include <thread>
#include <utility>

#include "apps/workloads.hh"
#include "bench/bench_util.hh"
#include "bench/fig_common.hh"
#include "cpu/system.hh"

using namespace picosim;

namespace
{

double
wallSeconds(const std::function<void()> &fn)
{
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

void
compareModes(bench::BenchJson &json, const char *label,
             const rt::Program &prog, rt::RuntimeKind kind, unsigned repeats)
{
    rt::HarnessParams event;
    event.system.evalMode = sim::EvalMode::EventDriven;
    rt::HarnessParams world;
    world.system.evalMode = sim::EvalMode::TickWorld;

    // Min-of-N: both modes are CPU-bound and deterministic, so the floor
    // of several runs is the honest wall time on a shared machine.
    rt::RunResult re, rw;
    double te = 0.0, tw = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        const double e =
            wallSeconds([&] { re = rt::runProgram(kind, prog, event); });
        const double w =
            wallSeconds([&] { rw = rt::runProgram(kind, prog, world); });
        te = r == 0 ? e : std::min(te, e);
        tw = r == 0 ? w : std::min(tw, w);
    }

    const double tickRatio =
        re.componentTicks == 0
            ? 0.0
            : static_cast<double>(rw.componentTicks) /
                  static_cast<double>(re.componentTicks);
    std::printf("%-28s %12llu cycles %s  ticks %llu -> %llu (%.2fx)  "
                "wall %.3fs -> %.3fs (%.2fx)\n",
                label, static_cast<unsigned long long>(re.cycles),
                re.cycles == rw.cycles ? "[=]" : "[MISMATCH]",
                static_cast<unsigned long long>(rw.componentTicks),
                static_cast<unsigned long long>(re.componentTicks),
                tickRatio, tw, te, te > 0 ? tw / te : 0.0);

    json.beginRow();
    json.field("bench", "mode_compare");
    json.field("label", label);
    json.field("cycles", re.cycles);
    json.field("identical", re.cycles == rw.cycles);
    json.field("eventTicks", re.componentTicks);
    json.field("worldTicks", rw.componentTicks);
    json.field("tickRatio", tickRatio);
    json.field("wallEventSec", te);
    json.field("wallWorldSec", tw);
    json.field("wallSpeedup", te > 0 ? tw / te : 0.0);
    bench::stampHost(json);
}

/** One forced-partition PDES run; returns (final cycle, full dump). */
std::pair<Cycle, std::string>
runPdes(const rt::Program &prog, unsigned hostThreads)
{
    cpu::SystemParams sp;
    sp.numCores = 16;
    sp.topology.schedShards = 4;
    sp.topology.clusters = 4;
    sp.pdes.partition = cpu::PdesParams::Partition::Force;
    sp.pdes.hostThreads = hostThreads;
    cpu::System sys(sp);
    auto runtime = rt::makeRuntime(rt::RuntimeKind::Phentos, rt::CostModel{});
    runtime->install(sys, prog);
    sys.run(50'000'000'000ull);
    std::ostringstream dump;
    sys.stats().dump(dump);
    return {sys.clock().now(), dump.str()};
}

bool
comparePdes(bench::BenchJson &json, const char *label,
            const rt::Program &prog, unsigned repeats)
{
    const unsigned threads = 2;
    std::pair<Cycle, std::string> r1, rn;
    double t1 = 0.0, tn = 0.0;
    for (unsigned r = 0; r < repeats; ++r) {
        const double a = wallSeconds([&] { r1 = runPdes(prog, 1); });
        const double b = wallSeconds([&] { rn = runPdes(prog, threads); });
        t1 = r == 0 ? a : std::min(t1, a);
        tn = r == 0 ? b : std::min(tn, b);
    }
    const bool same = r1.first == rn.first && r1.second == rn.second;
    std::printf("%-28s %12llu cycles %s  wall 1t %.3fs -> %ut %.3fs "
                "(%.2fx)\n",
                label, static_cast<unsigned long long>(r1.first),
                same ? "[=]" : "[MISMATCH]", t1, threads, tn,
                tn > 0 ? t1 / tn : 0.0);
    json.beginRow();
    json.field("bench", "pdes_compare");
    json.field("label", label);
    json.field("cycles", r1.first);
    json.field("identical", same);
    json.field("wallOneThreadSec", t1);
    json.field("wallMultiThreadSec", tn);
    json.field("pdesSpeedup", tn > 0 ? t1 / tn : 0.0);
    bench::stampHost(json, threads);
    return same;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            // Same switch the sweeps read; one knob for both paths.
            setenv("PICOSIM_QUICK", "1", /*overwrite=*/1);
        } else {
            std::fprintf(stderr, "usage: %s [--quick]\n", argv[0]);
            return 2;
        }
    }
    const unsigned repeats = 3;

    bench::BenchJson json("BENCH_kernel.json");

    std::printf("== Event-driven kernel vs tick-the-world reference ==\n");
    std::printf("(ticks = component evaluations; [=] = identical cycle "
                "results; wall = min of %u runs)\n\n",
                repeats);

    // Warm the process (allocator pools, lazy init, page faults) before
    // anything is timed, so the first measured row is not penalized.
    {
        rt::HarnessParams hp;
        (void)rt::runProgram(rt::RuntimeKind::Phentos,
                             apps::blackscholes(1024, 32), hp);
    }

    // Figure 8 coarse-granularity points: most components quiescent most
    // cycles, the sweet spot for wake scheduling.
    compareModes(json, "blackscholes 4K B32 Phentos",
                 apps::blackscholes(4096, 32), rt::RuntimeKind::Phentos,
                 repeats);
    compareModes(json, "blackscholes 4K B256 Phentos",
                 apps::blackscholes(4096, 256), rt::RuntimeKind::Phentos,
                 repeats);
    compareModes(json, "task-free g=10k Phentos",
                 apps::taskFree(256, 1, 10'000), rt::RuntimeKind::Phentos,
                 repeats);
    compareModes(json, "task-free g=10k Nanos-RV",
                 apps::taskFree(256, 1, 10'000), rt::RuntimeKind::NanosRV,
                 repeats);
    compareModes(json, "task-chain g=1k Phentos",
                 apps::taskChain(256, 1, 1'000), rt::RuntimeKind::Phentos,
                 repeats);

    const unsigned hostThreads =
        std::max(1u, std::thread::hardware_concurrency());
    const unsigned poolThreads = 8;
    std::printf("\n== Parallel batch harness (Figure 9 sweep, %u worker "
                "pool, %u hardware thread(s)) ==\n",
                poolThreads, hostThreads);
    std::vector<bench::MatrixRow> serialRows, poolRows;
    const double tSerial = wallSeconds(
        [&] { serialRows = bench::runFigure9Matrix(false, 1); });
    const double tPool = wallSeconds(
        [&] { poolRows = bench::runFigure9Matrix(false, poolThreads); });

    bool same = serialRows.size() == poolRows.size();
    for (std::size_t i = 0; same && i < serialRows.size(); ++i) {
        same = serialRows[i].serialCycles == poolRows[i].serialCycles &&
               serialRows[i].nanosSw == poolRows[i].nanosSw &&
               serialRows[i].nanosRv == poolRows[i].nanosRv &&
               serialRows[i].phentos == poolRows[i].phentos;
    }
    std::printf("1 worker: %.2fs   %u workers: %.2fs (%.2fx)   results %s\n",
                tSerial, poolThreads, tPool,
                tPool > 0 ? tSerial / tPool : 0.0,
                same ? "identical" : "MISMATCH");
    if (hostThreads == 1) {
        std::printf("(single hardware thread: pool speedup is capped at "
                    "~1x on this host)\n");
    }

    json.beginRow();
    json.field("bench", "batch_throughput");
    json.field("serialSec", tSerial);
    json.field("poolSec", tPool);
    json.field("poolSpeedup", tPool > 0 ? tSerial / tPool : 0.0);
    json.field("poolThreads", std::uint64_t{poolThreads});
    json.field("identical", same);
    bench::stampHost(json, poolThreads);

    std::printf("\n== Conservative-PDES windowed kernel (forced 2-domain "
                "partition, 16 cores, 4x4 topology) ==\n");
    const bool pdes_same = comparePdes(json, "task-chain g=1k Phentos 4x4",
                                       apps::taskChain(256, 1, 1'000),
                                       repeats);
    if (hostThreads == 1) {
        std::printf("(single hardware thread: PDES wall speedup is capped "
                    "at ~1x on this host; identity still checked)\n");
    }

    if (json.write())
        std::printf("json      : %s\n", json.path().c_str());
    else
        std::fprintf(stderr, "warning: could not write %s\n",
                     json.path().c_str());
    return same && pdes_same ? 0 : 1;
}
