#include "picos/picos.hh"

#include <algorithm>

#include "sim/log.hh"

namespace picosim::picos
{

Picos::Picos(const sim::Clock &clock, const PicosParams &params,
             sim::StatGroup &stats)
    : sim::Ticked("picos"), clock_(clock), params_(params),
      statSubPackets_(&stats.scalar("picos.subPackets")),
      statRetirePackets_(&stats.scalar("picos.retirePackets")),
      statDepEdges_(&stats.scalar("picos.depEdges")),
      statDepTableStalls_(&stats.scalar("picos.depTableStalls")),
      statTrsStalls_(&stats.scalar("picos.trsStalls")),
      statReadyIssued_(&stats.scalar("picos.readyIssued")),
      statBadRetires_(&stats.scalar("picos.badRetires")),
      statRetires_(&stats.scalar("picos.retires")),
      statInFlight_(&stats.dist("picos.inFlight")),
      subQueue_(clock, params.subQueueDepth, /*latency=*/1),
      readyQueue_(clock, params.readyQueueDepth, /*latency=*/1),
      retireQueue_(clock, params.retireQueueDepth, /*latency=*/1),
      tasks_(params.trsEntries),
      depTable_(params.dctSets, params.dctWays)
{
    collectBuffer_.reserve(rocc::kDescriptorPackets);
    for (std::uint32_t i = 0; i < params.trsEntries; ++i)
        freeList_.push_back(i);
    bindFastDispatch<Picos>();
}

void
Picos::reset()
{
    subQueue_.clear();
    readyQueue_.clear();
    retireQueue_.clear();
    collectBuffer_.clear();
    gwState_ = GwState::Collect;
    gwBusyUntil_ = 0;
    gwTaskId_ = -1;
    gwDepIndex_ = 0;
    freeList_.clear();
    for (std::uint32_t i = 0; i < params_.trsEntries; ++i) {
        tasks_[i] = TaskEntry{.state = TaskState::Free,
                              .gen = tasks_[i].gen, // keep generations moving
                              .swId = 0,
                              .pendingDeps = 0,
                              .dependents = {}};
        freeList_.push_back(i);
    }
    inFlight_ = 0;
    depTable_.clear();
    readyPending_.clear();
    readyBusyUntil_ = 0;
    readyIssuingId_ = -1;
    retireBusyUntil_ = 0;
}

bool
Picos::subPush(std::uint32_t packet)
{
    if (!subQueue_.push(packet))
        return false;
    ++*statSubPackets_;
    requestWake(subQueue_.nextReadyCycle());
    return true;
}

bool
Picos::retirePush(std::uint32_t picos_id)
{
    if (!retireQueue_.push(picos_id))
        return false;
    ++*statRetirePackets_;
    requestWake(retireQueue_.nextReadyCycle());
    return true;
}

bool
Picos::alive(const TaskRef &ref) const
{
    if (!ref.valid || ref.id >= tasks_.size())
        return false;
    const TaskEntry &e = tasks_[ref.id];
    return e.gen == ref.gen && e.state != TaskState::Free;
}

TaskRef
Picos::refOf(std::uint32_t id) const
{
    return TaskRef{id, tasks_[id].gen, true};
}

bool
Picos::entryEvictable(const DepEntry &entry) const
{
    if (alive(entry.lastWriter))
        return false;
    return std::none_of(entry.readers.begin(), entry.readers.end(),
                        [this](const TaskRef &r) { return alive(r); });
}

int
Picos::allocTask()
{
    if (freeList_.empty())
        return -1;
    const std::uint32_t id = freeList_.front();
    freeList_.pop_front();
    return static_cast<int>(id);
}

void
Picos::addEdge(const TaskRef &producer, std::uint32_t consumer_id)
{
    if (!alive(producer) || producer.id == consumer_id)
        return;
    tasks_[producer.id].dependents.push_back(refOf(consumer_id));
    ++tasks_[consumer_id].pendingDeps;
    ++*statDepEdges_;
}

bool
Picos::applyDescriptor()
{
    const std::uint32_t id = static_cast<std::uint32_t>(gwTaskId_);
    TaskEntry &task = tasks_[id];

    // KEEP IN SYNC with ShardedPicos::applyDescriptor
    // (sharded_picos.cc), which reproduces this walk over
    // address-interleaved table shards. A semantic fix to one engine
    // applies to both.
    //
    // Apply one dependence at a time, tracking progress in gwDepIndex_ so
    // a table-conflict stall can resume idempotently. Entries already
    // claimed by earlier deps of this task hold live references and are
    // therefore not evictable by later deps.
    while (gwDepIndex_ < gwDesc_.deps.size()) {
        const rocc::TaskDep &dep = gwDesc_.deps[gwDepIndex_];
        DepEntry *e = depTable_.find(dep.addr);
        if (!e) {
            e = depTable_.alloc(
                dep.addr,
                [this](const DepEntry &de) { return entryEvictable(de); });
            if (!e) {
                ++*statDepTableStalls_;
                return false;
            }
        }
        // Prune dead readers opportunistically to bound the list.
        std::erase_if(e->readers,
                      [this](const TaskRef &r) { return !alive(r); });

        switch (dep.dir) {
          case rocc::Dir::In:
            addEdge(e->lastWriter, id); // RAW
            e->readers.push_back(refOf(id));
            break;
          case rocc::Dir::Out:
          case rocc::Dir::InOut:
            addEdge(e->lastWriter, id); // WAW (and RAW for InOut)
            for (const TaskRef &r : e->readers)
                addEdge(r, id); // WAR
            e->lastWriter = refOf(id);
            e->readers.clear();
            break;
        }
        ++gwDepIndex_;
    }

    task.swId = gwDesc_.swId;
    ++tasksProcessed_;
    ++inFlight_;
    statInFlight_->sample(inFlight_);
    // Only now may retirements ready this task: wakeups that arrived
    // during a mid-walk table stall were counted but deferred.
    task.applying = false;
    if (task.pendingDeps == 0) {
        markReady(id);
    } else {
        task.state = TaskState::Waiting;
    }
    return true;
}

void
Picos::markReady(std::uint32_t id)
{
    tasks_[id].state = TaskState::Ready;
    readyPending_.push_back(id);
}

void
Picos::tickGateway()
{
    const Cycle now = clock_.now();
    switch (gwState_) {
      case GwState::Collect:
        if (subQueue_.frontReady()) {
            if (collectBuffer_.empty() && freeList_.empty()) {
                // No reservation entry: exert backpressure by not
                // consuming; the submission queue fills and software sees
                // failed Submit Packet instructions.
                ++*statTrsStalls_;
                return;
            }
            collectBuffer_.push_back(subQueue_.pop());
            if (collectBuffer_.size() == rocc::kDescriptorPackets) {
                gwDesc_ = rocc::decodeDescriptor(collectBuffer_);
                collectBuffer_.clear();
                gwTaskId_ = allocTask();
                if (gwTaskId_ < 0)
                    sim::panic("TRS freelist empty after guard");
                // Reset the fields of the recycled entry.
                TaskEntry &t = tasks_[gwTaskId_];
                t.swId = 0;
                t.pendingDeps = 0;
                t.dependents.clear();
                t.state = TaskState::Waiting;
                t.applying = true;
                gwDepIndex_ = 0;
                gwBusyUntil_ = now + params_.headerCycles +
                               params_.depCycles * gwDesc_.deps.size();
                gwState_ = GwState::Process;
            }
        }
        break;

      case GwState::Process:
        if (now >= gwBusyUntil_) {
            if (applyDescriptor()) {
                gwTaskId_ = -1;
                gwState_ = GwState::Collect;
            } else {
                gwState_ = GwState::Stalled;
            }
        }
        break;

      case GwState::Stalled:
        if (applyDescriptor()) {
            gwTaskId_ = -1;
            gwState_ = GwState::Collect;
        }
        break;
    }
}

void
Picos::tickReadyIssue()
{
    const Cycle now = clock_.now();
    if (readyIssuingId_ >= 0) {
        if (now < readyBusyUntil_)
            return;
        // Stream the three packets of the descriptor.
        const TaskEntry &t = tasks_[readyIssuingId_];
        if (readyQueue_.capacity() - readyQueue_.size() < 3)
            return; // wait for space
        readyQueue_.push(static_cast<std::uint32_t>(readyIssuingId_));
        readyQueue_.push(static_cast<std::uint32_t>(t.swId >> 32));
        readyQueue_.push(static_cast<std::uint32_t>(t.swId & 0xffffffffu));
        tasks_[readyIssuingId_].state = TaskState::Running;
        ++*statReadyIssued_;
        readyIssuingId_ = -1;
        if (readyListener_)
            readyListener_->requestWake(readyQueue_.nextReadyCycle());
    }
    if (readyIssuingId_ < 0 && !readyPending_.empty()) {
        readyIssuingId_ = static_cast<int>(readyPending_.front());
        readyPending_.pop_front();
        readyBusyUntil_ = now + params_.readyIssueCycles;
    }
}

void
Picos::tickRetire()
{
    const Cycle now = clock_.now();
    if (now < retireBusyUntil_ || !retireQueue_.frontReady())
        return;
    const std::uint32_t id = retireQueue_.pop();
    if (id >= tasks_.size() || tasks_[id].state != TaskState::Running) {
        ++*statBadRetires_;
        PSIM_WARN(clock_, "picos",
                  "retire of task " << id << " in invalid state");
        return;
    }
    TaskEntry &t = tasks_[id];
    Cycle cost = params_.retireCycles;
    for (const TaskRef &dep : t.dependents) {
        if (!alive(dep))
            continue;
        cost += params_.wakeupCycles;
        TaskEntry &d = tasks_[dep.id];
        if (d.pendingDeps == 0)
            sim::panic("dependence underflow on wakeup");
        // A task mid-application at a stalled gateway is not ready even
        // at zero pending deps — applyDescriptor may add more edges and
        // performs the deferred markReady itself.
        if (--d.pendingDeps == 0 && d.state == TaskState::Waiting &&
            !d.applying)
            markReady(dep.id);
    }
    t.dependents.clear();
    t.state = TaskState::Free;
    ++t.gen;
    freeList_.push_back(id);
    --inFlight_;
    ++tasksRetired_;
    retireBusyUntil_ = now + cost;
    ++*statRetires_;
}

void
Picos::tick()
{
    tickRetire();
    tickGateway();
    tickReadyIssue();
}

bool
Picos::active() const
{
    const Cycle next = clock_.now() + 1;
    if (gwState_ != GwState::Collect || !collectBuffer_.empty())
        return true;
    if (readyIssuingId_ >= 0 || !readyPending_.empty())
        return true;
    if (subQueue_.nextReadyCycle() <= next)
        return true;
    if (retireQueue_.nextReadyCycle() <= next)
        return true;
    return false;
}

Cycle
Picos::wakeAt() const
{
    Cycle wake = kCycleNever;
    wake = std::min(wake, subQueue_.nextReadyCycle());
    wake = std::min(wake, retireQueue_.nextReadyCycle());
    // Surface pending ready packets so the manager's encoder gets ticked
    // even when everything else is quiescent.
    wake = std::min(wake, readyQueue_.nextReadyCycle());
    if (gwState_ == GwState::Process)
        wake = std::min(wake, gwBusyUntil_);
    if (readyIssuingId_ >= 0)
        wake = std::min(wake, readyBusyUntil_);
    return wake;
}

Cycle
Picos::nextSelfDue(Cycle next) const
{
    // Mirrors active() (any hit returns `next`) and wakeAt() without
    // reading the queue state twice.
    if (gwState_ != GwState::Collect || !collectBuffer_.empty())
        return next;
    if (readyIssuingId_ >= 0 || !readyPending_.empty())
        return next;
    const Cycle sub = subQueue_.nextReadyCycle();
    if (sub <= next)
        return next;
    const Cycle retire = retireQueue_.nextReadyCycle();
    if (retire <= next)
        return next;

    Cycle wake = std::min(sub, retire);
    // Surface pending ready packets so the manager's encoder gets ticked
    // even when everything else is quiescent.
    wake = std::min(wake, readyQueue_.nextReadyCycle());
    // gwState_ == Collect and readyIssuingId_ < 0 here, so the busy-until
    // terms of wakeAt() cannot apply.
    return wake;
}

bool
Picos::quiescent() const
{
    return inFlight_ == 0 && subQueue_.empty() && readyQueue_.empty() &&
           retireQueue_.empty() && collectBuffer_.empty() &&
           readyPending_.empty() && gwState_ == GwState::Collect &&
           readyIssuingId_ < 0;
}

TaskState
Picos::taskState(std::uint32_t picos_id) const
{
    if (picos_id >= tasks_.size())
        return TaskState::Free;
    return tasks_[picos_id].state;
}

} // namespace picosim::picos
