/**
 * @file
 * Interface for cycle-evaluated hardware components.
 */

#ifndef PICOSIM_SIM_TICKED_HH
#define PICOSIM_SIM_TICKED_HH

#include <concepts>
#include <string>
#include <vector>

#include "sim/types.hh"

namespace picosim::sim
{

class Simulator;

/**
 * A component evaluated at simulated cycles by the kernel.
 *
 * Under the event-driven kernel (the default), a component is evaluated
 * only at cycles for which it is scheduled in the kernel's timing wheel:
 *
 *  - after every tick() the kernel re-arms the component at its own next
 *    due cycle (now + 1 while active(), wakeAt() otherwise);
 *  - any state mutation from outside the component's own tick() — a
 *    producer pushing into one of its queues, a consumer freeing space —
 *    must be accompanied by a requestWake() so the sleeping component is
 *    evaluated when that state becomes visible.
 *
 * Components scheduled for the same cycle are evaluated in registration
 * order, so results are bit-identical to the reference tick-the-world
 * kernel (EvalMode::TickWorld), which simply ticks every component in
 * registration order for every cycle in which at least one is active.
 *
 * Dispatch: tick()/active()/wakeAt() are virtual for flexibility (unit
 * tests subclass freely), but the kernel's per-event path goes through a
 * flattened per-component function-pointer table. A concrete component
 * class calls bindFastDispatch<Self>() in its constructor to devirtualize
 * that table: the generated thunks call Self::tick() etc. statically, so
 * they inline into the thunk and skip the vtable load on every event.
 */
class Ticked
{
  public:
    explicit Ticked(std::string name) : name_(std::move(name))
    {
        // Fallback thunks: dispatch through the vtable until a concrete
        // class binds itself via bindFastDispatch<Self>().
        tickFn_ = [](Ticked *t) { t->tick(); };
        activeFn_ = [](const Ticked *t) { return t->active(); };
        wakeAtFn_ = [](const Ticked *t) { return t->wakeAt(); };
        dueFn_ = [](const Ticked *t, Cycle next) {
            return t->active() ? next : t->wakeAt();
        };
    }

    virtual ~Ticked() = default;

    Ticked(const Ticked &) = delete;
    Ticked &operator=(const Ticked &) = delete;

    /** Evaluate one cycle at the current clock value. */
    virtual void tick() = 0;

    /**
     * True when the component has work to do in the immediate next cycle
     * (non-empty internal queues, in-flight operations, resumable harts).
     */
    virtual bool active() const = 0;

    /**
     * When inactive, the earliest future cycle at which the component needs
     * to be ticked again (kCycleNever when it is fully idle until external
     * stimulus arrives).
     */
    virtual Cycle wakeAt() const { return kCycleNever; }

    /**
     * Ask the owning kernel to evaluate this component at (or after)
     * @p cycle. Safe to call from anywhere — another component's tick(),
     * a hart coroutine, or harness code between runs. A no-op when the
     * component is not registered with a Simulator (bare unit tests) or
     * the kernel runs in TickWorld mode. Requests for the current cycle
     * made after this component's evaluation slot has passed take effect
     * next cycle, preserving registration-order semantics.
     */
    void requestWake(Cycle cycle);

    /** True once registered with a Simulator. */
    bool attached() const { return sim_ != nullptr; }

    /** Position in the kernel's registration order (valid when attached). */
    unsigned regIndex() const { return regIndex_; }

    /** PDES domain this component was registered into (0 by default). */
    unsigned domain() const { return domain_; }

    const std::string &name() const { return name_; }

    // -- Flattened kernel-facing dispatch --------------------------------

    void fastTick() { tickFn_(this); }
    bool fastActive() const { return activeFn_(this); }
    Cycle fastWakeAt() const { return wakeAtFn_(this); }

    /**
     * Fused re-arm query: the cycle this component next wants to run,
     * given @p next = now + 1 — exactly `active() ? next : wakeAt()`.
     * Components whose active()/wakeAt() scan the same state twice can
     * provide a single-pass `Cycle nextSelfDue(Cycle next) const`;
     * bindFastDispatch() picks it up automatically.
     */
    Cycle fastDue(Cycle next) const { return dueFn_(this, next); }

  protected:
    /**
     * Devirtualize the kernel dispatch for the most-derived class. Call
     * from the constructor of the concrete component type; the qualified
     * Self::tick() calls in the generated thunks bind statically and
     * inline. Classes that skip this simply pay the virtual call.
     */
    template <typename Self>
    void
    bindFastDispatch()
    {
        tickFn_ = [](Ticked *t) { static_cast<Self *>(t)->Self::tick(); };
        activeFn_ = [](const Ticked *t) {
            return static_cast<const Self *>(t)->Self::active();
        };
        wakeAtFn_ = [](const Ticked *t) {
            return static_cast<const Self *>(t)->Self::wakeAt();
        };
        if constexpr (requires(const Self &s, Cycle c) {
                          { s.nextSelfDue(c) } -> std::same_as<Cycle>;
                      }) {
            dueFn_ = [](const Ticked *t, Cycle next) {
                return static_cast<const Self *>(t)->Self::nextSelfDue(
                    next);
            };
        } else {
            dueFn_ = [](const Ticked *t, Cycle next) {
                const Self *s = static_cast<const Self *>(t);
                return s->Self::active() ? next : s->Self::wakeAt();
            };
        }
    }

  private:
    friend class Simulator;

    std::string name_;

    // Flattened dispatch table (virtual-call thunks until a concrete
    // class binds itself).
    void (*tickFn_)(Ticked *) = nullptr;
    bool (*activeFn_)(const Ticked *) = nullptr;
    Cycle (*wakeAtFn_)(const Ticked *) = nullptr;
    Cycle (*dueFn_)(const Ticked *, Cycle) = nullptr;

    // -- Scheduling bookkeeping, owned by the registered Simulator --
    Simulator *sim_ = nullptr;
    unsigned regIndex_ = 0;   ///< registration slot within its domain
    unsigned domain_ = 0;     ///< owning PDES domain (0 = main)
    Cycle armedAt_ = kCycleNever;  ///< cycle of the single wheel entry
    Cycle selfSched_ = kCycleNever; ///< kernel re-arm after last tick
    Cycle extHead_ = kCycleNever;  ///< earliest pending external wake
    Cycle lastTick_ = kCycleNever; ///< cycle of the last evaluation
    bool far_ = false;             ///< armed beyond the wheel horizon
    std::vector<Cycle> extMore_;   ///< later pending external wakes, sorted
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_TICKED_HH
