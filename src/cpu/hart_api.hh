/**
 * @file
 * The per-hart programming interface used by simulated runtime software.
 *
 * Every method is an awaitable operation on the simulated timeline of one
 * hart: custom RoCC instructions charge the 2-cycle RoCC round trip
 * (Section IV-F2), memory operations charge MESI model latencies, and
 * executePayload models a task body including bandwidth contention.
 */

#ifndef PICOSIM_CPU_HART_API_HH
#define PICOSIM_CPU_HART_API_HH

#include <cstdint>
#include <optional>

#include "cpu/bandwidth.hh"
#include "delegate/picos_delegate.hh"
#include "mem/coherent_memory.hh"
#include "sim/cotask.hh"
#include "sim/types.hh"

namespace picosim::cpu
{

struct HartApiParams
{
    /** Core-side occupancy of one RoCC custom instruction. */
    Cycle roccLatency = 2;
};

class HartApi
{
  public:
    HartApi(CoreId core, delegate::PicosDelegate &del,
            mem::CoherentMemory &mem, BandwidthModel &bw,
            const HartApiParams &params = {})
        : core_(core), delegate_(del), mem_(mem), bw_(bw), params_(params)
    {
    }

    CoreId coreId() const { return core_; }
    delegate::PicosDelegate &delegateRef() { return delegate_; }
    mem::CoherentMemory &memRef() { return mem_; }
    BandwidthModel &bandwidthRef() { return bw_; }

    /** Pure compute: advance this hart's clock. */
    sim::CoTask<void>
    delay(Cycle cycles)
    {
        co_await sim::Delay{cycles};
    }

    // -- Custom task-scheduling instructions (Table I) --

    sim::CoTask<bool>
    submissionRequest(unsigned num_packets)
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.submissionRequest(num_packets);
    }

    sim::CoTask<bool>
    submitPacket(std::uint32_t packet)
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.submitPacket(packet);
    }

    sim::CoTask<bool>
    submitThreePackets(std::uint64_t rs1, std::uint64_t rs2)
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.submitThreePackets(rs1, rs2);
    }

    sim::CoTask<bool>
    readyTaskRequest()
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.readyTaskRequest();
    }

    sim::CoTask<std::optional<std::uint64_t>>
    fetchSwId()
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.fetchSwId();
    }

    sim::CoTask<std::optional<std::uint32_t>>
    fetchPicosId()
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.fetchPicosId();
    }

    /** Retire Task: the one blocking instruction (Section IV-B). */
    sim::CoTask<void>
    retireTask(std::uint32_t picos_id)
    {
        co_await sim::Delay{params_.roccLatency};
        if (!delegate_.retireCanAccept()) {
            delegate::PicosDelegate *del = &delegate_;
            co_await sim::WaitUntil{
                [del] { return del->retireCanAccept(); }};
        }
        delegate_.retireTask(picos_id);
    }

    // -- Memory operations (runtime data structures) --

    sim::CoTask<void>
    read(Addr addr)
    {
        co_await sim::Delay{mem_.read(core_, addr)};
    }

    sim::CoTask<void>
    write(Addr addr)
    {
        co_await sim::Delay{mem_.write(core_, addr)};
    }

    sim::CoTask<void>
    atomicRmw(Addr addr)
    {
        co_await sim::Delay{mem_.atomicRmw(core_, addr)};
    }

    /** Touch @p lines consecutive cache lines starting at @p base. */
    sim::CoTask<void>
    streamTouch(Addr base, unsigned lines, bool is_write)
    {
        co_await sim::Delay{mem_.streamTouch(core_, base, lines, is_write)};
    }

    // -- Task payload execution --

    /**
     * Execute a task body of @p base_cycles, inflated by memory-bandwidth
     * contention with other concurrently executing payloads.
     */
    sim::CoTask<void>
    executePayload(Cycle base_cycles)
    {
        bw_.beginPayload();
        const Cycle cost = bw_.inflate(base_cycles);
        co_await sim::Delay{cost};
        bw_.endPayload();
    }

  private:
    CoreId core_;
    delegate::PicosDelegate &delegate_;
    mem::CoherentMemory &mem_;
    BandwidthModel &bw_;
    HartApiParams params_;
};

} // namespace picosim::cpu

#endif // PICOSIM_CPU_HART_API_HH
