/**
 * @file
 * Abstract interface of a simulated Task Scheduling runtime plus the
 * result record produced by the run harness.
 */

#ifndef PICOSIM_RUNTIME_RUNTIME_HH
#define PICOSIM_RUNTIME_RUNTIME_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "cpu/system.hh"
#include "runtime/task_types.hh"

namespace picosim::rt
{

/**
 * A Task Scheduling runtime. install() arms one coroutine per hart; the
 * harness then drives the system until all harts finish.
 *
 * Event-driven kernel contract: runtime models execute as hart software,
 * so their waits are Delay-based backoff polls (and the occasional
 * WaitUntil, which polls once per cycle) exactly as the modeled software
 * behaves. Cores self-schedule at each coroutine's next resume cycle, so
 * runtime code needs no explicit wake requests of its own — the delegate
 * transactions it issues carry the wake semantics into the hardware
 * layers. Runtime instances are single-run and must not be shared across
 * concurrently simulated systems (runBatch builds one per job).
 */
class Runtime
{
  public:
    virtual ~Runtime() = default;

    virtual std::string name() const = 0;

    /** Install master/worker threads for @p prog on @p sys's cores. */
    virtual void install(cpu::System &sys, const Program &prog) = 0;

    /** True when the whole program was executed and accounted for. */
    virtual bool finished() const = 0;

    /** Tasks actually executed (must equal prog.numTasks() when done). */
    virtual std::uint64_t tasksExecuted() const = 0;

    /** Tasks submitted from worker harts (their own delegate/RoCC port).
     *  Non-zero only for nested programs, whose child spawns originate on
     *  whichever core executes the parent. */
    virtual std::uint64_t tasksSubmittedByWorkers() const { return 0; }

    /** Tasks executed by the saturation fallback (inline, without the
     *  dependence hardware) when a nested program fills the task window. */
    virtual std::uint64_t tasksExecutedInline() const { return 0; }
};

/**
 * How a run ended. Ok and CycleLimit are the classic synchronous
 * outcomes; Cancelled/TimedOut report cooperative stops observed at
 * deterministic schedule boundaries (see rt::CancelToken); Error marks
 * a job whose worker threw (message preserved in RunResult::error).
 */
enum class RunStatus : std::uint8_t
{
    Ok,         ///< program completed before the cycle limit
    CycleLimit, ///< simulated-cycle budget exhausted
    Cancelled,  ///< stopped by a CancelToken
    TimedOut,   ///< stopped by a wall-clock deadline
    Error,      ///< run threw; see RunResult::error
    Dropped,    ///< fault-injection drop-job fired; run is resumable
};

constexpr const char *
runStatusName(RunStatus s)
{
    switch (s) {
    case RunStatus::Ok: return "ok";
    case RunStatus::CycleLimit: return "cycle-limit";
    case RunStatus::Cancelled: return "cancelled";
    case RunStatus::TimedOut: return "timed-out";
    case RunStatus::Error: return "error";
    case RunStatus::Dropped: return "dropped";
    }
    return "?";
}

/** Outcome of one program run on one runtime. */
struct RunResult
{
    std::string runtime;
    std::string program;
    bool completed = false;   ///< finished before the cycle limit
    RunStatus status = RunStatus::Ok; ///< how the run ended
    std::string error;        ///< non-empty iff status == Error
    Cycle cycles = 0;         ///< parallel makespan
    Cycle serialPayload = 0;  ///< sum of task payloads
    std::uint64_t tasks = 0;
    double meanTaskSize = 0.0;

    /** Speedup over the measured serial execution (filled by harness). */
    Cycle serialCycles = 0;

    // -- Kernel cost of producing this result (simulator efficiency) --
    std::uint64_t evaluatedCycles = 0; ///< distinct cycles evaluated
    std::uint64_t componentTicks = 0;  ///< component evaluations performed
    std::uint64_t tickWorldTicks = 0;  ///< tick-the-world baseline ticks

    // -- Interconnect/memory contention (timed memory mode; zero under
    //    MemMode::Inline, which models no occupancy) --
    std::uint64_t busTransactions = 0; ///< coherence/refill bus grants
    std::uint64_t busStallCycles = 0;  ///< cycles waited for the shared bus
    std::uint64_t dramStallCycles = 0; ///< cycles refills waited for DRAM
    std::uint64_t mshrStallCycles = 0; ///< issue slots delayed by full MSHRs

    // -- Scheduler-fabric contention (all topologies; the sharded-only
    //    counters stay zero in the single-Picos topology) --
    std::uint64_t schedSubStalls = 0;     ///< final-buffer push stalls
    std::uint64_t schedRoutingStalls = 0; ///< work-fetch queue push stalls
    std::uint64_t schedReadyStalls = 0;   ///< central ready-queue stalls
    std::uint64_t schedGatewayStallCycles = 0; ///< shard gate arbiter waits
    std::uint64_t crossShardEdges = 0; ///< dependence edges spanning shards
    std::uint64_t workSteals = 0;      ///< cross-cluster ready-task steals

    // -- Nested tasking (zero for flat programs) --
    std::uint64_t workerSubmits = 0; ///< tasks submitted from worker harts
    std::uint64_t inlineTasks = 0;   ///< saturation-fallback executions

    /**
     * Non-zero when the run was resumed from a checkpoint: the boundary
     * cycle the replay was verified against. Deliberately NOT part of
     * the CLI report — a resumed run's printed output must stay
     * byte-identical to an uninterrupted one (that equality IS the
     * resume contract); the field rides the wire JSON for provenance.
     */
    Cycle resumedFromCycle = 0;

    double
    speedup() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(serialCycles) / cycles;
    }

    /**
     * Mean lifetime scheduling overhead per task (Figure 7 metric):
     * wall cycles minus pure payload, per task, on a single-worker run.
     * NaN for inconsistent inputs — no tasks, or a run reporting fewer
     * wall cycles than its serial payload (a broken run must not be
     * mistaken for one with zero scheduling overhead).
     */
    double
    overheadPerTask() const
    {
        if (tasks == 0 || cycles < serialPayload)
            return std::numeric_limits<double>::quiet_NaN();
        return static_cast<double>(cycles - serialPayload) / tasks;
    }
};

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_RUNTIME_HH
