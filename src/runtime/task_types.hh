/**
 * @file
 * Task-parallel program representation consumed by the runtimes.
 *
 * A Program is the trace of OmpSs-style pragmas a benchmark would execute:
 * an ordered list of task spawns (each with a payload cost and annotated
 * pointer parameters) interleaved with taskwait barriers. Payload cost is
 * the -O3 serial execution time of the task body in core cycles; the
 * workload generators in src/apps compute it from their block sizes.
 *
 * Nested tasking: any spawned task may itself spawn child tasks and issue
 * *scoped* taskwaits (wait on its own children, not the global barrier).
 * A task's body is described by an ordered list of BodyOps the executing
 * worker replays after the payload; children record their parent id so
 * runtimes can count per-parent retirements. Flat programs carry no body
 * lists and take exactly the legacy code paths.
 */

#ifndef PICOSIM_RUNTIME_TASK_TYPES_HH
#define PICOSIM_RUNTIME_TASK_TYPES_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rocc/task_packets.hh"
#include "sim/types.hh"

namespace picosim::rt
{

using rocc::Dir;
using rocc::TaskDep;

/** Parent id of tasks spawned by the master thread (no parent task). */
inline constexpr std::uint64_t kNoParent = ~std::uint64_t{0};

/** One spawned task. */
struct Task
{
    std::uint64_t id = 0; ///< dense software id (index in spawn order)
    Cycle payload = 0;    ///< serial execution cost of the task body
    std::vector<TaskDep> deps;
    std::uint64_t parent = kNoParent; ///< spawning task (kNoParent = master)
};

/** One program action, in program order. */
struct Action
{
    enum class Kind : std::uint8_t { Spawn, Taskwait };

    Kind kind = Kind::Spawn;
    Task task; ///< valid when kind == Spawn
};

/**
 * One operation inside a task body, in body order. The executing worker
 * replays these after the task payload: child spawns submit through the
 * worker's own delegate port, scoped taskwaits block until the children
 * spawned so far (waitTarget of them) have retired.
 */
struct BodyOp
{
    enum class Kind : std::uint8_t { SpawnChild, TaskwaitChildren };

    Kind kind = Kind::SpawnChild;
    std::uint64_t child = 0;      ///< spawned task id (SpawnChild)
    std::uint64_t waitTarget = 0; ///< children spawned before this op
                                  ///  (TaskwaitChildren)
};

/** A whole task-parallel program. */
struct Program
{
    std::string name;
    std::vector<Action> actions;

    /** Append a spawn; assigns and returns the task id. */
    std::uint64_t
    spawn(Cycle payload, std::vector<TaskDep> deps = {})
    {
        Action a;
        a.kind = Action::Kind::Spawn;
        a.task.id = numTasks_;
        a.task.payload = payload;
        a.task.deps = std::move(deps);
        actions.push_back(std::move(a));
        return numTasks_++;
    }

    /** Append a taskwait barrier. */
    void
    taskwait()
    {
        Action a;
        a.kind = Action::Kind::Taskwait;
        actions.push_back(std::move(a));
    }

    /**
     * Append a child spawn to @p parent's body; assigns and returns the
     * child's task id. @p parent must be an already-spawned task (top
     * level or itself a child — nesting depth is unbounded).
     */
    std::uint64_t spawnChild(std::uint64_t parent, Cycle payload,
                             std::vector<TaskDep> deps = {});

    /**
     * Append a scoped taskwait to @p parent's body: the executing worker
     * blocks until every child @p parent has spawned *so far* (in body
     * order) has retired. Unrelated sibling tasks may still be in flight.
     */
    void taskwaitChildren(std::uint64_t parent);

    /** True when any task spawns children (enables the nested paths). */
    bool hasNested() const { return !childTasks_.empty(); }

    /** Body operations of task @p id (empty for leaf/flat tasks). */
    const std::vector<BodyOp> &bodyOf(std::uint64_t id) const;

    /** Number of children task @p id spawns over its whole body. */
    std::uint64_t childrenOf(std::uint64_t id) const;

    std::uint64_t numTasks() const { return numTasks_; }

    /** Largest dependence count over all tasks, children included. */
    unsigned maxDeps() const;

    /**
     * Serial baseline: the task bodies (children included) executed back
     * to back. Fails loudly (sim::fatal) on Cycle overflow so pathological
     * generator parameters cannot silently wrap the speedup baseline.
     */
    Cycle serialPayloadCycles() const;

    /** Mean task payload in cycles (task granularity, Section III-E). */
    double
    meanTaskSize() const
    {
        return numTasks_ == 0
                   ? 0.0
                   : static_cast<double>(serialPayloadCycles()) / numTasks_;
    }

    /** The task for a given id (spawn order). O(tasks) build, cached. */
    const Task &taskById(std::uint64_t id) const;

  private:
    std::uint64_t numTasks_ = 0;

    /** Child tasks in spawn order; ids share the dense numTasks_ space. */
    std::vector<Task> childTasks_;

    /** Body operations per spawning task (absent key = leaf task). */
    std::unordered_map<std::uint64_t, std::vector<BodyOp>> bodies_;

    /**
     * Lazy id -> position index. Positions (not pointers) so the cache
     * stays valid across Program copies — batch jobs copy their programs
     * so each worker thread owns its (lazily mutated) index. Entries with
     * the top bit set index childTasks_, the rest index actions.
     */
    mutable std::vector<std::size_t> index_;
};

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_TASK_TYPES_HH
