/**
 * @file
 * RunSpec: one simulated experiment, declaratively.
 *
 * A RunSpec names everything that determines a run's simulated result —
 * the workload and its parameters, the runtime model, the machine
 * (cores, scheduler topology, memory system, ablation knobs), the
 * conservative-PDES configuration, and the harness controls (repeat,
 * seed, cycle limit). Front-ends never assemble cpu::SystemParams by
 * hand: they parse or mutate a RunSpec and hand it to spec::Engine.
 *
 * Specs are written as `key=value` pairs — the same keys on the command
 * line (`--cores=16`), in spec files (one pair per line, `#` comments),
 * or as a flat JSON object. serialize() emits the canonical form, which
 * parses back bit-exactly: parse(serialize(s)) == s for any canonical s.
 * A default-constructed, canonicalized RunSpec reproduces the
 * seed-golden configuration (8 cores, single centralized Picos, inline
 * memory, event-driven kernel).
 *
 * Every parse error names the offending key, the rejected value, and
 * the legal range or choices; near-miss keys get a "did you mean"
 * suggestion.
 */

#ifndef PICOSIM_SPEC_RUN_SPEC_HH
#define PICOSIM_SPEC_RUN_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/harness.hh"
#include "sim/fault.hh"
#include "spec/workload_registry.hh"

namespace picosim::spec
{

struct RunSpec
{
    // -- Workload --
    std::string workload = "blackscholes"; ///< registry name or fig9 label
    WorkloadArgs wl; ///< `wl.*` parameters; canonical once canonicalized

    /** Taskbench nested mode: task-free/task-chain become the
     *  equivalent recursive task trees. Folded away by canonicalize()
     *  (the workload becomes task-tree), so never serialized. */
    bool nested = false;

    // -- Runtime & kernel --
    rt::RuntimeKind runtime = rt::RuntimeKind::Phentos;
    unsigned cores = 8;
    sim::EvalMode mode = sim::EvalMode::EventDriven;

    // -- Memory system --
    mem::MemMode mem = mem::MemMode::Inline;
    unsigned mshrs = 4;
    unsigned busBytes = 16;
    Cycle memOccupancy = 8;

    // -- Scheduler topology --
    unsigned schedShards = 1;
    unsigned clusters = 1;
    bool steal = true;
    Cycle clusterLink = 2;
    Cycle xshardDep = 2;
    Cycle xshardNotify = 4;
    Cycle stealPenalty = 10;
    unsigned gatewayDepth = 4;

    // -- Ablation knobs (Section VII design-space sweeps) --
    Cycle roccLatency = 2;
    unsigned coreReadyDepth = 2;
    double bandwidthAlpha = 0.058;

    // -- Conservative PDES --
    cpu::PdesParams::Partition pdes = cpu::PdesParams::Partition::Auto;
    unsigned pdesDomains = 0; ///< 0 = derive from the topology
    unsigned hostThreads = 1;

    // -- Harness controls --
    unsigned repeat = 1;
    std::uint64_t seed = 42; ///< fills a workload's wl.seed unless set
    Cycle cycleLimit = 50'000'000'000ull;

    // -- Fault injection (fault.* keys; kind=none disables) --
    sim::FaultKind faultKind = sim::FaultKind::None;
    Cycle faultCycle = 0;  ///< when the fault strikes
    Cycle faultUntil = 0;  ///< when it heals (0 = never restored)
    unsigned faultTarget = 0; ///< shard (kill-shard) / cluster (stall-link)

    bool operator==(const RunSpec &) const = default;

    /**
     * Set one key. @p key is a spec key ("cores", "wl.block", ...);
     * @p display_prefix is prepended to key names in diagnostics ("--"
     * when the pair came from a command-line flag, "" from a spec
     * file). Throws SpecError naming the key, the value and the legal
     * range; unknown keys get a nearest-key suggestion.
     */
    void setKey(const std::string &key, const std::string &value,
                const std::string &display_prefix = "");

    /**
     * Resolve the spec to its canonical form: the workload name is
     * resolved through the registry (Figure-9 label substrings are
     * accepted and rewritten to name + wl.* parameters), `nested` is
     * folded into the workload, every workload parameter is filled
     * with its schema default, and cross-key constraints are checked.
     * Idempotent. @return warnings to surface (non-fatal combinations,
     * e.g. host-threads with pdes=off); throws SpecError otherwise.
     */
    std::vector<std::string>
    canonicalize(const std::string &display_prefix = "");

    /**
     * The canonical `key=value` form, every key present, joined by
     * @p sep (' ' keeps it one line for JSON row stamping; '\n' is the
     * spec-file layout). parse(serialize()) reproduces this spec
     * bit-exactly, including the bandwidth-alpha double.
     */
    std::string serialize(char sep = ' ') const;

    /**
     * Apply spec text on top of this spec: whitespace-separated
     * `key=value` pairs with `#` line comments, or a flat JSON object.
     * Does not canonicalize — later setKey() calls (e.g. command-line
     * overrides) still win. Throws SpecError.
     */
    void merge(const std::string &text);

    /**
     * Parse spec text: defaults + merge(text) + canonicalize().
     * Warnings behave as in canonicalize(). Throws SpecError.
     */
    static RunSpec parse(const std::string &text,
                         std::vector<std::string> *warnings = nullptr);

    /** All fixed spec keys in serialization order (no wl.*). */
    static std::vector<std::string> keys();

    /** Nearest fixed spec key to @p key by edit distance. */
    static std::string nearestKey(const std::string &key);
};

/** CLI spelling of a runtime kind ("serial", "nanos-sw", ...). */
std::string kindSpecName(rt::RuntimeKind kind);

} // namespace picosim::spec

#endif // PICOSIM_SPEC_RUN_SPEC_HH
