/**
 * @file
 * Advanced example: build your own task-scheduling runtime directly on
 * the custom-instruction API (the paper's Section IV-B argues the ISA is
 * general enough for runtimes other than Nanos/Phentos). This ~80-line
 * "MiniRT" demonstrates the canonical instruction sequences:
 *
 *   submit:  SubmissionRequest(3+3D) then SubmitThreePackets bursts
 *   fetch:   ReadyTaskRequest -> FetchSwId -> FetchPicosId
 *   retire:  RetireTask (the one blocking instruction)
 *
 * and the non-blocking failure handling that keeps the system
 * deadlock-free.
 */

#include <cstdio>

#include "apps/workloads.hh"
#include "cpu/system.hh"
#include "rocc/task_packets.hh"
#include "runtime/task_types.hh"

using namespace picosim;

namespace
{

class MiniRt
{
  public:
    MiniRt(cpu::System &sys, const rt::Program &prog)
        : sys_(sys), prog_(prog)
    {
    }

    void
    launch()
    {
        sys_.installThread(0, master(sys_.hartApi(0)));
        for (CoreId c = 1; c < sys_.numCores(); ++c)
            sys_.installThread(c, worker(sys_.hartApi(c)));
    }

    bool done() const { return retired_ == prog_.numTasks(); }
    std::uint64_t retired() const { return retired_; }

  private:
    sim::CoTask<void>
    submit(cpu::HartApi &api, const rt::Task &task)
    {
        rocc::TaskDescriptor desc;
        desc.swId = task.id;
        desc.deps = task.deps;
        const auto pkts = rocc::encodeNonZero(desc);

        // Non-blocking submission: on failure, spin briefly (a real
        // runtime would execute a ready task here -- see Phentos).
        while (true) {
            const bool ok = co_await api.submissionRequest(
                static_cast<unsigned>(pkts.size()));
            if (ok)
                break;
            co_await api.delay(50);
        }
        for (std::size_t i = 0; i < pkts.size(); i += 3) {
            const std::uint64_t rs1 =
                (static_cast<std::uint64_t>(pkts[i]) << 32) | pkts[i + 1];
            while (true) {
                const bool ok =
                    co_await api.submitThreePackets(rs1, pkts[i + 2]);
                if (ok)
                    break;
                co_await api.delay(10);
            }
        }
    }

    sim::CoTask<bool>
    runOne(cpu::HartApi &api)
    {
        const bool requested = co_await api.readyTaskRequest();
        (void)requested; // may fail when the routing queue is full: fine
        const auto sw = co_await api.fetchSwId();
        if (!sw)
            co_return false;
        const auto pid = co_await api.fetchPicosId();
        co_await api.executePayload(prog_.taskById(*sw).payload);
        co_await api.retireTask(*pid);
        ++retired_;
        co_return true;
    }

    sim::CoTask<void>
    master(cpu::HartApi &api)
    {
        for (const rt::Action &a : prog_.actions) {
            if (a.kind == rt::Action::Kind::Spawn)
                co_await submit(api, a.task);
        }
        while (!done()) {
            const bool ran = co_await runOne(api);
            if (!ran)
                co_await api.delay(100);
        }
    }

    sim::CoTask<void>
    worker(cpu::HartApi &api)
    {
        while (!done()) {
            const bool ran = co_await runOne(api);
            if (!ran)
                co_await api.delay(100);
        }
    }

    cpu::System &sys_;
    const rt::Program &prog_;
    std::uint64_t retired_ = 0;
};

} // namespace

int
main()
{
    const rt::Program prog = apps::streamDeps(32, 256, 2);
    cpu::System sys;

    MiniRt mini(sys, prog);
    mini.launch();
    const bool ok = sys.run(1'000'000'000ull);

    std::printf("MiniRT ran %llu/%llu tasks of %s in %llu cycles: %s\n",
                static_cast<unsigned long long>(mini.retired()),
                static_cast<unsigned long long>(prog.numTasks()),
                prog.name.c_str(),
                static_cast<unsigned long long>(sys.clock().now()),
                ok && mini.done() ? "ok" : "FAILED");
    std::printf("serial payload would be %llu cycles -> speedup %.2fx\n",
                static_cast<unsigned long long>(
                    prog.serialPayloadCycles()),
                static_cast<double>(prog.serialPayloadCycles()) /
                    static_cast<double>(sys.clock().now()));
    return ok && mini.done() ? 0 : 1;
}
