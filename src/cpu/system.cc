#include "cpu/system.hh"

#include <algorithm>

namespace picosim::cpu
{

System::System(const SystemParams &params)
    : params_(params), bandwidth_(params.bandwidthAlpha)
{
    sim_.setEvalMode(params.evalMode);
    memory_ = std::make_unique<mem::CoherentMemory>(params.numCores,
                                                    params.mem);
    picos_ = std::make_unique<picos::Picos>(sim_.clock(), params.picos,
                                            sim_.stats());
    manager_ = std::make_unique<manager::PicosManager>(
        sim_.clock(), *picos_, params.numCores, params.manager, sim_.stats());

    cores_.reserve(params.numCores);
    delegates_.reserve(params.numCores);
    hartApis_.reserve(params.numCores);
    for (CoreId i = 0; i < params.numCores; ++i) {
        cores_.push_back(
            std::make_unique<Core>(sim_.clock(), i, sim_.stats()));
        delegates_.push_back(std::make_unique<delegate::PicosDelegate>(
            i, *manager_, sim_.stats()));
        hartApis_.push_back(std::make_unique<HartApi>(
            i, *delegates_.back(), *memory_, bandwidth_, params.hartApi));
    }

    // Evaluation order each cycle: cores produce transactions, the manager
    // moves them, Picos consumes them.
    for (auto &core : cores_)
        sim_.addTicked(core.get());
    sim_.addTicked(manager_.get());
    sim_.addTicked(picos_.get());
}

bool
System::allThreadsDone() const
{
    return std::all_of(cores_.begin(), cores_.end(),
                       [](const auto &c) { return c->threadDone(); });
}

bool
System::run(Cycle limit)
{
    return sim_.run([this] { return allThreadsDone(); }, limit);
}

} // namespace picosim::cpu
