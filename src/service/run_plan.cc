#include "service/run_plan.hh"

#include <cstdio>

#include "runtime/harness.hh"
#include "spec/workload_registry.hh"

namespace picosim::svc
{

RunPlan
RunPlan::make(const std::vector<spec::RunSpec> &specs)
{
    if (specs.empty())
        throw spec::SpecError("run plan needs at least one spec");

    RunPlan plan;
    const bool isSerial = specs[0].runtime == rt::RuntimeKind::Serial;
    plan.runsPerSpec = isSerial ? 1 : 2;
    plan.printCores = isSerial ? 1 : specs[0].cores;

    // One main job per workload and repetition, plus a serial baseline
    // unless the main run already is serial (then it is its own
    // baseline).
    const unsigned repeat = specs[0].repeat;
    for (const spec::RunSpec &sp : specs) {
        for (unsigned r = 0; r < repeat; ++r) {
            plan.runs.push_back(sp);
            if (!isSerial) {
                spec::RunSpec serial = sp;
                serial.runtime = rt::RuntimeKind::Serial;
                // The baseline is the IDEAL serial execution: faults
                // apply to the measured run only (and a shard/link
                // fault could not be laid out over the baseline's
                // topology-free single core anyway).
                serial.faultKind = sim::FaultKind::None;
                serial.faultCycle = 0;
                serial.faultUntil = 0;
                serial.faultTarget = 0;
                plan.runs.push_back(std::move(serial));
            }
        }
    }
    return plan;
}

std::vector<rt::RunResult>
RunPlan::fold(const std::vector<rt::RunResult> &results) const
{
    std::vector<rt::RunResult> out;
    out.reserve(displayCount(results.size()));
    for (std::size_t i = 0; i * runsPerSpec < results.size(); ++i) {
        rt::RunResult res = results[runsPerSpec * i];
        res.serialCycles =
            results[runsPerSpec * i + runsPerSpec - 1].cycles;
        out.push_back(std::move(res));
    }
    return out;
}

void
printRunResult(const rt::RunResult &res, unsigned cores)
{
    std::printf("workload  : %s (%llu tasks, mean size %.0f cycles)\n",
                res.program.c_str(),
                static_cast<unsigned long long>(res.tasks),
                res.meanTaskSize);
    std::printf("runtime   : %s on %u core(s)\n", res.runtime.c_str(),
                cores);
    std::printf("cycles    : %llu (%s)\n",
                static_cast<unsigned long long>(res.cycles),
                res.completed ? "completed" : "INCOMPLETE");
    std::printf("serial    : %llu cycles\n",
                static_cast<unsigned long long>(res.serialCycles));
    std::printf("speedup   : %.2fx\n", res.speedup());
    std::printf("wall time @80MHz: %.1f ms\n",
                static_cast<double>(res.cycles) / 80'000.0);
    if (res.tickWorldTicks > 0) {
        std::printf("kernel    : %llu component ticks over %llu cycles "
                    "(%.2fx fewer than tick-the-world)\n",
                    static_cast<unsigned long long>(res.componentTicks),
                    static_cast<unsigned long long>(res.evaluatedCycles),
                    res.componentTicks == 0
                        ? 0.0
                        : static_cast<double>(res.tickWorldTicks) /
                              static_cast<double>(res.componentTicks));
    }
    if (res.busTransactions > 0) {
        std::printf("contention: %llu bus transactions; stall cycles "
                    "bus %llu, dram %llu, mshr %llu\n",
                    static_cast<unsigned long long>(res.busTransactions),
                    static_cast<unsigned long long>(res.busStallCycles),
                    static_cast<unsigned long long>(res.dramStallCycles),
                    static_cast<unsigned long long>(res.mshrStallCycles));
    }
    if (res.schedSubStalls + res.schedRoutingStalls + res.schedReadyStalls +
            res.schedGatewayStallCycles + res.crossShardEdges +
            res.workSteals >
        0) {
        std::printf("scheduler : push stalls sub %llu, routing %llu, "
                    "ready %llu; gateway wait %llu cyc; "
                    "cross-shard edges %llu; steals %llu\n",
                    static_cast<unsigned long long>(res.schedSubStalls),
                    static_cast<unsigned long long>(res.schedRoutingStalls),
                    static_cast<unsigned long long>(res.schedReadyStalls),
                    static_cast<unsigned long long>(
                        res.schedGatewayStallCycles),
                    static_cast<unsigned long long>(res.crossShardEdges),
                    static_cast<unsigned long long>(res.workSteals));
    }
    if (res.workerSubmits > 0) {
        std::printf("nested    : %llu of %llu tasks submitted from worker "
                    "harts, %llu run inline (window full)\n",
                    static_cast<unsigned long long>(res.workerSubmits),
                    static_cast<unsigned long long>(res.tasks),
                    static_cast<unsigned long long>(res.inlineTasks));
    }
}

bool
printPlanResults(const RunPlan &plan,
                 const std::vector<rt::RunResult> &results)
{
    const std::vector<rt::RunResult> display = plan.fold(results);
    bool all_ok = true;
    for (std::size_t i = 0; i < display.size(); ++i) {
        if (i > 0)
            std::printf("\n");
        printRunResult(display[i], plan.printCores);
        all_ok = all_ok && display[i].completed;
    }
    return all_ok;
}

} // namespace picosim::svc
