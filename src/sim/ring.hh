/**
 * @file
 * Bounded ring buffer backing the timed FIFO/port models.
 *
 * std::deque allocates and frees its chunk nodes continuously as elements
 * stream through a queue — per-packet heap traffic on every port of every
 * component, and (because the heap is shared) a cross-thread scaling tax
 * on parallel batch sweeps. Port capacities are bounded by construction,
 * so a ring over a plain vector gives allocation-free steady state: the
 * buffer grows geometrically (capped by the port's capacity) the first
 * few times a queue deepens and never allocates again.
 */

#ifndef PICOSIM_SIM_RING_HH
#define PICOSIM_SIM_RING_HH

#include <cstddef>
#include <utility>
#include <vector>

namespace picosim::sim
{

template <typename T>
class Ring
{
  public:
    Ring() = default;

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    T &front() { return buf_[head_]; }
    const T &front() const { return buf_[head_]; }

    void
    push_back(T value)
    {
        if (size_ == buf_.size())
            grow();
        buf_[(head_ + size_) & (buf_.size() - 1)] = std::move(value);
        ++size_;
    }

    void
    pop_front()
    {
        buf_[head_] = T{}; // release any owned resources promptly
        head_ = (head_ + 1) & (buf_.size() - 1);
        --size_;
    }

    void
    clear()
    {
        for (std::size_t i = 0; i < size_; ++i)
            buf_[(head_ + i) & (buf_.size() - 1)] = T{};
        head_ = 0;
        size_ = 0;
    }

  private:
    void
    grow()
    {
        const std::size_t cap = buf_.empty() ? 8 : buf_.size() * 2;
        std::vector<T> wider(cap);
        for (std::size_t i = 0; i < size_; ++i)
            wider[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
        buf_ = std::move(wider);
        head_ = 0;
    }

    std::vector<T> buf_; ///< power-of-two length once allocated
    std::size_t head_ = 0;
    std::size_t size_ = 0;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_RING_HH
