/**
 * @file
 * Nested tasking: scoped-taskwait semantics, worker-side submission, the
 * saturation fallback, and flat-program seed equivalence with nesting
 * support compiled in.
 */

#include <gtest/gtest.h>

#include "apps/workloads.hh"
#include "runtime/harness.hh"
#include "runtime/nanos.hh"
#include "runtime/phentos.hh"
#include "runtime/task_trace.hh"

using namespace picosim;
using namespace picosim::rt;

namespace
{

HarnessParams
withTopology(unsigned cores, unsigned shards, unsigned clusters)
{
    HarnessParams hp;
    hp.numCores = cores;
    hp.system.topology.schedShards = shards;
    hp.system.topology.clusters = clusters;
    return hp;
}

/** Run @p prog with a lifecycle trace attached (hand-built system). */
RunResult
runTraced(RuntimeKind kind, const Program &prog, const HarnessParams &hp,
          TaskTrace &trace)
{
    cpu::SystemParams sp = hp.system;
    sp.numCores = hp.numCores;
    cpu::System sys(sp);
    std::unique_ptr<Runtime> runtime = makeRuntime(kind, hp.costs);
    trace.reset(prog.numTasks());
    if (auto *ph = dynamic_cast<Phentos *>(runtime.get()))
        ph->setTrace(&trace);
    else if (auto *nn = dynamic_cast<Nanos *>(runtime.get()))
        nn->setTrace(&trace);
    runtime->install(sys, prog);
    const bool ok = sys.run(hp.cycleLimit);
    RunResult res;
    res.completed = ok && runtime->finished();
    res.cycles = sys.clock().now();
    res.tasks = prog.numTasks();
    res.workerSubmits = runtime->tasksSubmittedByWorkers();
    res.inlineTasks = runtime->tasksExecutedInline();
    return res;
}

/**
 * A small parent subtree plus one long independent sibling: the parent's
 * scoped taskwait must release (and the parent retire) long before the
 * unrelated sibling finishes.
 *
 * The subtree is spawned before the sibling: Nanos's Scheduler-singleton
 * indirection (Section V-A) can park a ready tuple in the private queue
 * of a core that busied itself with central-queue work, for the whole
 * length of that task — submitting the 400k-cycle sibling last keeps the
 * subtree's tuples clear of that (faithfully modeled) pathology.
 */
Program
subtreeBesideLongSibling()
{
    Program prog;
    prog.name = "scoped-wait-vs-sibling";
    const std::uint64_t parent = prog.spawn(500); // id 0
    prog.spawnChild(parent, 500);                 // id 1
    prog.spawnChild(parent, 500);                 // id 2
    prog.taskwaitChildren(parent);
    prog.spawn(400'000); // id 3: the long unrelated sibling
    prog.taskwait();
    return prog;
}

} // namespace

// -- Scoped-taskwait semantics -------------------------------------------

struct NestedConfig
{
    RuntimeKind kind;
    unsigned cores;
    unsigned shards;
    unsigned clusters;
};

class ScopedTaskwait : public ::testing::TestWithParam<NestedConfig>
{
};

TEST_P(ScopedTaskwait, SubtreeDrainReleasesParentWhileSiblingInFlight)
{
    const NestedConfig &cfg = GetParam();
    const Program prog = subtreeBesideLongSibling();
    TaskTrace trace;
    const RunResult res =
        runTraced(cfg.kind, prog,
                  withTopology(cfg.cores, cfg.shards, cfg.clusters), trace);
    ASSERT_TRUE(res.completed);

    const TaskRecord &parent = trace.record(0);
    const TaskRecord &sibling = trace.record(3);
    ASSERT_TRUE(sibling.valid);
    ASSERT_TRUE(parent.valid);
    // The parent's scoped wait covers exactly its own children: it must
    // retire while the 400k-cycle sibling is still executing.
    EXPECT_GT(parent.retired, 0u);
    EXPECT_LT(parent.retired, sibling.retired);
    // And both children retire before the parent does.
    EXPECT_LE(trace.record(1).retired, parent.retired);
    EXPECT_LE(trace.record(2).retired, parent.retired);
}

INSTANTIATE_TEST_SUITE_P(
    RuntimesAndTopologies, ScopedTaskwait,
    ::testing::Values(NestedConfig{RuntimeKind::Phentos, 8, 1, 1},
                      NestedConfig{RuntimeKind::Phentos, 16, 4, 4},
                      NestedConfig{RuntimeKind::NanosRV, 8, 1, 1},
                      NestedConfig{RuntimeKind::NanosRV, 16, 4, 4}),
    [](const auto &info) {
        std::string name{kindName(info.param.kind)};
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name + "_" + std::to_string(info.param.shards) + "x" +
               std::to_string(info.param.clusters);
    });

// -- Nested workloads complete under every runtime ------------------------

class NestedWorkloads : public ::testing::TestWithParam<RuntimeKind>
{
};

TEST_P(NestedWorkloads, CompleteWithAllTasksExecuted)
{
    const RuntimeKind kind = GetParam();
    const std::vector<Program> progs = {
        apps::choleskyNested(6, 8),
        apps::mergesortNested(512, 64),
        apps::taskTree(3, 2, 300, /*chained=*/true),
    };
    for (const Program &prog : progs) {
        // completed requires runtime->finished(), which asserts every
        // task (children included) was executed and accounted for.
        const RunResult res = runProgram(kind, prog);
        EXPECT_TRUE(res.completed) << prog.name;
        if (kind == RuntimeKind::Serial) {
            // The serial executor charges call + payload per task, with
            // children executed depth-first — nothing else.
            const CostModel cm;
            EXPECT_EQ(res.cycles, prog.numTasks() * cm.call +
                                      prog.serialPayloadCycles())
                << prog.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(AllRuntimes, NestedWorkloads,
                         ::testing::Values(RuntimeKind::Serial,
                                           RuntimeKind::NanosSW,
                                           RuntimeKind::NanosRV,
                                           RuntimeKind::NanosAXI,
                                           RuntimeKind::Phentos),
                         [](const auto &info) {
                             std::string name{kindName(info.param)};
                             for (char &c : name)
                                 if (c == '-')
                                     c = '_';
                             return name;
                         });

// -- Saturation fallback (deadlock regression) ----------------------------

TEST(NestedSaturation, DeepTreeCompletesPastTheTaskWindow)
{
    // 1364 tasks against a 256-entry reservation station: without the
    // task-window throttle + drain-then-inline fallback this wedges the
    // accelerator with blocked parents (the bug this PR fixes).
    const Program prog = apps::taskTree(4, 4, 200);
    const RunResult res = runProgram(RuntimeKind::Phentos, prog);
    ASSERT_TRUE(res.completed);
    EXPECT_EQ(res.tasks, prog.numTasks());
    EXPECT_GT(res.inlineTasks, 0u);
    EXPECT_GT(res.workerSubmits, 0u);
}

TEST(NestedSaturation, NanosDeepTreeCompletes)
{
    const Program prog = apps::taskTree(3, 4, 100);
    const RunResult res = runProgram(RuntimeKind::NanosRV, prog);
    ASSERT_TRUE(res.completed);
}

TEST(NestedSaturation, ChainedDepsSurviveTheInlineFallback)
{
    // Sibling-chained children carry inout dependences; the fallback's
    // drain-before-inline contract keeps those legal (earlier siblings
    // retired), so the live-writer guard must stay silent and the run
    // complete. A shrunken reservation station forces the fallback on.
    const Program prog = apps::taskTree(4, 3, 200, /*chained=*/true);
    HarnessParams hp;
    hp.system.picos.trsEntries = 30; // task window shrinks to 4
    const RunResult res = runProgram(RuntimeKind::Phentos, prog, hp);
    ASSERT_TRUE(res.completed);
    EXPECT_GT(res.inlineTasks, 0u);
}

TEST(NestedSaturation, InlineFallbackRejectsNonSiblingDependences)
{
    // A child whose dependence names an in-flight *non-sibling* writer
    // violates the inline fallback's contract (OmpSs dependences may
    // only name earlier siblings). Shrink the reservation station so the
    // parent saturates while the writers are still running: the
    // live-writer guard must fail loudly instead of silently reordering
    // the schedule.
    constexpr Addr kAddr = 0x7700'0000;
    Program prog;
    prog.name = "inline-contract-violation";
    for (int i = 0; i < 3; ++i)
        prog.spawn(300'000, {{kAddr + i * 64, rt::Dir::Out}});
    const std::uint64_t parent = prog.spawn(100);
    prog.spawnChild(parent, 100, {{kAddr, rt::Dir::In}});
    prog.taskwaitChildren(parent);
    prog.taskwait();

    HarnessParams hp;
    hp.system.picos.trsEntries = 30; // task window shrinks to 4
    EXPECT_THROW(runProgram(RuntimeKind::Phentos, prog, hp),
                 std::runtime_error);
}

// -- Kernel equivalence on nested programs --------------------------------

TEST(NestedKernelEquivalence, EventKernelMatchesTickWorld)
{
    const Program prog = apps::mergesortNested(2048, 128);
    HarnessParams ev;
    ev.system.evalMode = sim::EvalMode::EventDriven;
    HarnessParams tw;
    tw.system.evalMode = sim::EvalMode::TickWorld;
    const RunResult a = runProgram(RuntimeKind::Phentos, prog, ev);
    const RunResult b = runProgram(RuntimeKind::Phentos, prog, tw);
    ASSERT_TRUE(a.completed);
    ASSERT_TRUE(b.completed);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.workerSubmits, b.workerSubmits);
}

// -- Flat seed equivalence with nesting compiled in -----------------------

TEST(NestedSeedEquivalence, FlatProgramsStayBitIdenticalToGoldens)
{
    // The nesting machinery must be completely inert for flat programs:
    // these are the seed goldens (see test_seed_equivalence.cc), on both
    // the single-Picos and an explicit sharded topology.
    const Program free = apps::taskFree(256, 1, 1000);
    const Program chain = apps::taskChain(256, 1, 1000);
    EXPECT_FALSE(free.hasNested());
    EXPECT_FALSE(chain.hasNested());

    EXPECT_EQ(runProgram(RuntimeKind::Phentos, free).cycles, 51'566u);
    EXPECT_EQ(runProgram(RuntimeKind::NanosRV, free).cycles, 978'924u);
    EXPECT_EQ(runProgram(RuntimeKind::Phentos, chain).cycles, 289'118u);

    const HarnessParams sharded = withTopology(8, 1, 1);
    EXPECT_EQ(runProgram(RuntimeKind::Phentos, free, sharded).cycles,
              51'566u);
}

// -- Satellite: redundant final barrier ----------------------------------

TEST(RedundantFinalBarrier, TrailingTaskwaitCostsNothingExtra)
{
    // The master skips its unconditional final barrier when the program's
    // last action already is an explicit taskwait with the same target;
    // a program with the trailing taskwait must therefore cost exactly
    // the same as one without it (where the master's own barrier runs).
    Program with_tw = apps::taskFree(256, 1, 1000);
    Program without_tw = with_tw;
    ASSERT_EQ(without_tw.actions.back().kind, Action::Kind::Taskwait);
    without_tw.actions.pop_back();

    for (const RuntimeKind kind :
         {RuntimeKind::Phentos, RuntimeKind::NanosRV}) {
        const RunResult a = runProgram(kind, with_tw);
        const RunResult b = runProgram(kind, without_tw);
        EXPECT_TRUE(a.completed);
        EXPECT_TRUE(b.completed);
        EXPECT_EQ(a.cycles, b.cycles) << kindName(kind);
    }

    // Pin the absolute counts so the skip cannot silently regress.
    EXPECT_EQ(runProgram(RuntimeKind::Phentos, with_tw).cycles, 51'566u);
    EXPECT_EQ(runProgram(RuntimeKind::NanosRV, with_tw).cycles, 978'924u);
}
