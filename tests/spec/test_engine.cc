/** @file Golden-equivalence tests for the spec::Engine facade: a spec
 *  assembled from flags, a spec parsed from a file, and a hand-built
 *  legacy harness run must all produce bit-identical cycle counts — in
 *  both simulation kernels and at every PDES host-thread count. */

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "apps/workloads.hh"
#include "runtime/harness.hh"
#include "spec/engine.hh"
#include "spec/run_spec.hh"

using namespace picosim;
using namespace picosim::spec;

namespace
{

/** A small dependence-free taskbench spec (fast enough for every
 *  equivalence axis to be exercised in one test binary). */
RunSpec
smallSpec()
{
    RunSpec s;
    s.workload = "task-free";
    s.wl = {{"tasks", 64}, {"deps", 1}, {"payload", 100}};
    s.canonicalize();
    return s;
}

} // namespace

TEST(Engine, FlagSpecAndFileSpecAreTheSameRun)
{
    // The same experiment described twice: once as command-line flags...
    RunSpec flags;
    flags.setKey("workload", "task-chain", "--");
    flags.setKey("wl.tasks", "64", "--");
    flags.setKey("wl.payload", "100", "--");
    flags.setKey("cores", "4", "--");
    flags.canonicalize("--");

    // ...and once as a spec file.
    const RunSpec file = RunSpec::parse("# same experiment\n"
                                        "workload=task-chain\n"
                                        "wl.tasks=64\n"
                                        "wl.payload=100\n"
                                        "cores=4\n");
    EXPECT_EQ(flags, file);

    // Bit-identical results in both kernels.
    for (const sim::EvalMode mode :
         {sim::EvalMode::EventDriven, sim::EvalMode::TickWorld}) {
        RunSpec a = flags, b = file;
        a.mode = b.mode = mode;
        const rt::RunResult ra = Engine::run(a);
        const rt::RunResult rb = Engine::run(b);
        EXPECT_TRUE(ra.completed);
        EXPECT_GT(ra.cycles, 0u);
        EXPECT_EQ(ra.cycles, rb.cycles);
        EXPECT_EQ(ra.tasks, rb.tasks);
    }

    // And the two kernels agree with each other.
    RunSpec ev = flags, tw = flags;
    tw.mode = sim::EvalMode::TickWorld;
    EXPECT_EQ(Engine::run(ev).cycles, Engine::run(tw).cycles);
}

TEST(Engine, SpecDefaultsMatchLegacyHarnessDefaults)
{
    // A spec that only names the workload must reproduce the legacy
    // rt::runProgram path under default HarnessParams bit-exactly —
    // the spec layer's defaults ARE the harness defaults.
    const RunSpec s = smallSpec();
    const rt::Program prog =
        WorkloadRegistry::instance().build("task-free", s.wl);
    const rt::RunResult legacy =
        rt::runProgram(rt::RuntimeKind::Phentos, prog);
    const rt::RunResult viaSpec = Engine::run(s);
    EXPECT_TRUE(viaSpec.completed);
    EXPECT_EQ(viaSpec.cycles, legacy.cycles);
    EXPECT_EQ(viaSpec.tasks, legacy.tasks);
    EXPECT_EQ(viaSpec.runtime, legacy.runtime);
}

TEST(Engine, SerialRuntimeFoldsToOneCore)
{
    RunSpec s = smallSpec();
    s.runtime = rt::RuntimeKind::Serial;
    s.cores = 32;
    s.schedShards = 4;
    s.clusters = 4;

    // The baseline never touches the scheduler: one core, flat topology.
    EXPECT_EQ(Engine::systemParams(s).numCores, 1u);

    RunSpec one = smallSpec();
    one.runtime = rt::RuntimeKind::Serial;
    EXPECT_EQ(Engine::run(s).cycles, Engine::run(one).cycles);
}

TEST(Engine, RunWithSpeedupFillsSerialBaseline)
{
    RunSpec s = smallSpec();
    const rt::RunResult r = Engine::runWithSpeedup(s);
    EXPECT_TRUE(r.completed);
    ASSERT_GT(r.serialCycles, 0u);

    RunSpec serial = s;
    serial.runtime = rt::RuntimeKind::Serial;
    EXPECT_EQ(r.serialCycles, Engine::run(serial).cycles);
    EXPECT_EQ(r.cycles, Engine::run(s).cycles);
}

TEST(Engine, RunBatchMatchesSequentialRuns)
{
    std::vector<RunSpec> specs;
    for (unsigned cores : {2u, 4u, 8u}) {
        RunSpec s = smallSpec();
        s.cores = cores;
        specs.push_back(s);
    }
    std::atomic<unsigned> callbacks{0};
    const std::vector<rt::RunResult> batch = Engine::runBatch(
        specs, 2,
        [&](std::size_t, const rt::RunResult &) { ++callbacks; });
    ASSERT_EQ(batch.size(), specs.size());
    EXPECT_EQ(callbacks.load(), specs.size());
    for (std::size_t i = 0; i < specs.size(); ++i) {
        const rt::RunResult solo = Engine::run(specs[i]);
        EXPECT_TRUE(batch[i].completed) << i;
        EXPECT_EQ(batch[i].cycles, solo.cycles) << i;
        EXPECT_EQ(batch[i].tasks, solo.tasks) << i;
    }
}

TEST(Engine, RunBatchEmptySpecVectorYieldsNoResults)
{
    EXPECT_TRUE(Engine::runBatch({}, rt::BatchOptions{}).empty());
    EXPECT_TRUE(Engine::runBatch({}, 4).empty());
}

TEST(Engine, RunBatchDuplicateSpecsGetPrivatePrograms)
{
    // The same spec three times: every instance must run on a private
    // Program/System and report the identical solo result (shared
    // mutable state across workers would race or skew).
    const RunSpec s = smallSpec();
    const rt::RunResult solo = Engine::run(s);
    const std::vector<rt::RunResult> batch =
        Engine::runBatch({s, s, s}, rt::BatchOptions{});
    ASSERT_EQ(batch.size(), 3u);
    for (const rt::RunResult &res : batch) {
        EXPECT_EQ(res.status, rt::RunStatus::Ok);
        EXPECT_EQ(res.cycles, solo.cycles);
        EXPECT_EQ(res.tasks, solo.tasks);
    }
}

TEST(Engine, RunBatchBuildFailureIsAPerJobError)
{
    // A spec that fails to build (unknown workload) must surface as an
    // explicit RunStatus::Error on its own slot — with the registry's
    // message verbatim — while the surrounding jobs run to completion.
    RunSpec bad;
    bad.workload = "no-such-workload";
    const RunSpec good = smallSpec();
    const rt::RunResult solo = Engine::run(good);

    std::atomic<unsigned> callbacks{0};
    rt::BatchOptions opts;
    opts.threads = 2;
    opts.onResult = [&](std::size_t, const rt::RunResult &) {
        ++callbacks;
    };
    const std::vector<rt::RunResult> batch =
        Engine::runBatch({good, bad, good}, opts);
    ASSERT_EQ(batch.size(), 3u);
    EXPECT_EQ(callbacks.load(), 3u);
    EXPECT_EQ(batch[0].status, rt::RunStatus::Ok);
    EXPECT_EQ(batch[0].cycles, solo.cycles);
    EXPECT_EQ(batch[2].status, rt::RunStatus::Ok);
    EXPECT_EQ(batch[2].cycles, solo.cycles);

    EXPECT_EQ(batch[1].status, rt::RunStatus::Error);
    EXPECT_FALSE(batch[1].completed);
    EXPECT_NE(batch[1].error.find("no-such-workload"), std::string::npos)
        << batch[1].error;
}

TEST(Engine, RunBatchLegacyOverloadRethrowsBuildFailures)
{
    RunSpec bad;
    bad.workload = "no-such-workload";
    EXPECT_THROW(Engine::runBatch({bad}, 2), std::exception);
}

TEST(Engine, RunHonoursControls)
{
    RunSpec s = smallSpec();
    rt::CancelToken token;
    token.cancel();
    rt::RunControls ctl;
    ctl.cancel = &token;
    const rt::RunResult res = Engine::run(s, ctl);
    EXPECT_EQ(res.status, rt::RunStatus::Cancelled);
    EXPECT_FALSE(res.completed);
}

TEST(Engine, RunInspectedMatchesRun)
{
    const RunSpec s = smallSpec();
    const InspectedRun run = Engine::runInspected(s);
    ASSERT_NE(run.system, nullptr);
    ASSERT_NE(run.runtime, nullptr);
    EXPECT_TRUE(run.result.completed);
    EXPECT_EQ(run.result.cycles, Engine::run(s).cycles);
}

TEST(Engine, PdesIsBitIdenticalAcrossHostThreadCounts)
{
    // The partitioned kernel must agree with the unpartitioned one at
    // every host-thread count — the acceptance bar for every PDES change.
    RunSpec base = smallSpec();
    base.cores = 8;
    base.schedShards = 2;
    base.clusters = 2;

    RunSpec off = base;
    off.pdes = cpu::PdesParams::Partition::Off;
    const Cycle golden = Engine::run(off).cycles;
    EXPECT_GT(golden, 0u);

    for (unsigned threads : {1u, 2u, 4u}) {
        RunSpec s = base;
        s.pdes = cpu::PdesParams::Partition::Force;
        s.hostThreads = threads;
        EXPECT_EQ(Engine::run(s).cycles, golden)
            << "host-threads=" << threads;
    }
}

TEST(Engine, BuildProgramGoesThroughTheRegistry)
{
    const RunSpec s = smallSpec();
    const rt::Program prog = Engine::buildProgram(s);
    EXPECT_EQ(prog.numTasks(), 64u);

    // Figure-9 labels resolve too (the registry owns the mapping).
    RunSpec fig;
    fig.workload = "4K B8";
    fig.canonicalize();
    const rt::Program bs = Engine::buildProgram(fig);
    EXPECT_GT(bs.numTasks(), 0u);
    EXPECT_EQ(fig.workload, "blackscholes");
}
