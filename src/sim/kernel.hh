/**
 * @file
 * The simulation kernel: owns the clock, schedules component evaluations
 * through an event queue, fast-forwards across quiescent periods.
 */

#ifndef PICOSIM_SIM_KERNEL_HH
#define PICOSIM_SIM_KERNEL_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/clock.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/types.hh"

namespace picosim::sim
{

/** Kernel evaluation strategy. */
enum class EvalMode : std::uint8_t
{
    /**
     * Event-driven: components are evaluated only at cycles for which they
     * are scheduled (self-rescheduling after each tick plus explicit
     * requestWake() calls on external mutations). Same-cycle evaluations
     * run in registration order, so results are bit-identical to TickWorld.
     */
    EventDriven,

    /**
     * Reference tick-the-world kernel: every registered component is
     * ticked, in registration order, for every cycle in which at least one
     * reports active(); when all are quiescent the clock jumps to the
     * minimum wakeAt(). Kept as the equivalence baseline.
     */
    TickWorld,
};

/**
 * Cycle-exact simulator with a binary-heap event queue.
 *
 * Event entries are ordered by (cycle, registration index), so components
 * due in the same cycle are always evaluated in registration order — the
 * invariant that makes the event-driven schedule produce bit-identical
 * results to ticking the world every active cycle.
 */
class Simulator
{
  public:
    Simulator() = default;

    explicit Simulator(EvalMode mode) : mode_(mode) {}

    Clock &clock() { return clock_; }
    const Clock &clock() const { return clock_; }
    StatGroup &stats() { return stats_; }

    EvalMode evalMode() const { return mode_; }

    /** Select the evaluation strategy; call before the first run. */
    void setEvalMode(EvalMode mode) { mode_ = mode; }

    /**
     * Register a component; order defines same-cycle evaluation order.
     * The component is scheduled for an initial evaluation at the current
     * cycle (the reference kernel ticks everything on the first evaluated
     * cycle; the event queue reproduces that).
     */
    void addTicked(Ticked *component);

    /**
     * Schedule @p component for evaluation at (or after) @p cycle.
     * Requests for the current cycle made at or before the component's
     * registration slot are honored this cycle; later ones slip to the
     * next cycle (its slot in the reference schedule has already passed).
     * No-op in TickWorld mode, where every active cycle ticks everything.
     */
    void requestWake(Ticked *component, Cycle cycle);

    /**
     * Run until the predicate holds (checked once per evaluated cycle) or
     * the cycle limit is exceeded.
     *
     * @return true if the predicate was satisfied, false on cycle-limit.
     */
    bool run(const std::function<bool()> &done, Cycle limit = kCycleNever);

    /** Run for exactly n cycles of simulated time. */
    void runFor(Cycle n);

    /** Number of distinct cycles at which any component was evaluated. */
    std::uint64_t evaluatedCycles() const { return evaluatedCycles_; }

    /** Total individual component tick() evaluations performed. */
    std::uint64_t componentTicks() const { return componentTicks_; }

    /**
     * Component ticks a tick-the-world kernel would have performed over
     * the same evaluated cycles — the baseline for the event-driven win.
     */
    std::uint64_t
    tickWorldTicks() const
    {
        return evaluatedCycles_ * ticked_.size();
    }

    std::size_t numComponents() const { return ticked_.size(); }

  private:
    /**
     * One scheduled evaluation. Self entries (the kernel re-arming a
     * component after its tick) can go stale when the component's state
     * is consumed externally; they are re-validated against the live
     * active()/wakeAt() before being used as a fast-forward target.
     * External entries (requestWake) are explicit and always honored.
     */
    struct Event
    {
        Cycle cycle;
        unsigned regIndex;
        Ticked *component;
        bool external;

        bool
        operator>(const Event &o) const
        {
            return cycle != o.cycle ? cycle > o.cycle
                                    : regIndex > o.regIndex;
        }
    };

    /** Replace the component's self entry with one at @p cycle. */
    void scheduleSelf(Ticked *component, Cycle cycle);

    /** Tick every component due at the current cycle, registration order. */
    void evaluateDue();

    /**
     * Earliest future cycle holding a valid event, re-validating stale
     * entries against the components' live active()/wakeAt() so the
     * fast-forward target matches the reference kernel's fresh global
     * minimum. kCycleNever when the queue is empty.
     */
    Cycle refreshNextEventCycle();

    // -- TickWorld reference implementation --
    bool runTickWorld(const std::function<bool()> &done, Cycle limit);
    void runForTickWorld(Cycle n);
    void evaluateAll();
    bool anyActive() const;
    Cycle nextWakeAll() const;

    Clock clock_;
    StatGroup stats_;
    EvalMode mode_ = EvalMode::EventDriven;
    std::vector<Ticked *> ticked_;
    std::priority_queue<Event, std::vector<Event>, std::greater<Event>>
        events_;
    bool evaluating_ = false;
    unsigned currentRegIndex_ = 0;
    std::uint64_t evaluatedCycles_ = 0;
    std::uint64_t componentTicks_ = 0;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_KERNEL_HH
