#!/usr/bin/env python3
"""Perf-smoke gate: compare a fresh BENCH_kernel.json against the
checked-in baseline.

Fails (exit 1) when:
  * any row reports identical: false (the event kernel diverged from the
    tick-the-world reference, or a PDES run diverged across host thread
    counts — a correctness bug, never acceptable);
  * a mode_compare row's wallSpeedup regressed more than the tolerance
    below its baseline value;
  * a batch_throughput poolSpeedup or pdes_compare pdesSpeedup regressed
    more than the tolerance below baseline — but ONLY when both the
    fresh row and the baseline row were measured with hostConcurrency
    > 1. On a single-hardware-thread host a worker pool cannot beat 1x
    by construction, so those comparisons are loudly SKIPPED rather
    than reported as regressions.

Rows stamped with a "spec" field (the serialized RunSpec that produced
the measurement) are reported with a replay hint on failure: feed the
spec back through `picosim_run --spec` to reproduce the exact run.

Wall-clock seconds are machine-dependent, so the gate is on wallSpeedup —
the event-driven/tick-world ratio measured within one process on one
machine, which transfers across hosts far better than absolute times.
The tolerance is generous (CI machines are noisy neighbours), but a real
scheduler regression — an O(log n) structure creeping back, a per-event
allocation — shifts the ratio well past it.

With --expect-scaling[=FLOOR] the gate additionally enforces an
ABSOLUTE floor (default 1.05x) on every fresh poolSpeedup and
pdesSpeedup row: a multi-worker pool and the partitioned PDES kernel
must actually beat single-threaded execution on a multi-core host, not
merely match their own previous measurement. On a single-hardware-
thread host those rows are loudly SKIPPED (a 1-CPU box cannot scale by
construction) — the CI leg that passes this flag guards itself with an
nproc check for the same reason.

Usage: check_perf.py <fresh BENCH_kernel.json> <baseline json>
                     [tolerance] [--expect-scaling[=FLOOR]]
"""

import json
import sys


def load_rows(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def main():
    args = list(sys.argv[1:])
    scaling_floor = None
    for arg in list(args):
        if arg == "--expect-scaling":
            scaling_floor = 1.05
            args.remove(arg)
        elif arg.startswith("--expect-scaling="):
            scaling_floor = float(arg.split("=", 1)[1])
            args.remove(arg)
    if len(args) < 2:
        print(__doc__)
        return 2
    fresh = load_rows(args[0])
    baseline = load_rows(args[1])
    tolerance = float(args[2]) if len(args) > 2 else 0.20

    failures = []

    def replay_hint(row):
        spec = row.get("spec")
        return f" [replay: picosim_run --spec <<< '{spec}']" if spec else ""

    stamped = sum(1 for row in fresh if row.get("spec"))
    print(f"{stamped}/{len(fresh)} fresh rows carry a replayable spec")

    for row in fresh:
        if row.get("identical") is False:
            failures.append(
                f"row '{row.get('label', row.get('bench'))}' reports "
                "identical: false — event kernel diverged from the "
                "reference" + replay_hint(row))

    base_by_label = {
        row["label"]: row
        for row in baseline
        if row.get("bench") == "mode_compare"
    }
    for row in fresh:
        if row.get("bench") != "mode_compare":
            continue
        label = row["label"]
        base = base_by_label.get(label)
        if base is None:
            print(f"note: no baseline for '{label}' (new row?) — skipped")
            continue
        got = float(row["wallSpeedup"])
        want = float(base["wallSpeedup"])
        floor = want * (1.0 - tolerance)
        status = "ok" if got >= floor else "REGRESSION"
        print(f"{label:32s} wallSpeedup {got:6.2f}x "
              f"(baseline {want:.2f}x, floor {floor:.2f}x) {status}")
        if got < floor:
            failures.append(
                f"'{label}' wallSpeedup {got:.2f}x fell more than "
                f"{tolerance:.0%} below the baseline {want:.2f}x"
                + replay_hint(row))

    def host_concurrency(row):
        # Rows written before hostConcurrency stamping count as
        # unmeasurable rather than silently comparable.
        try:
            return int(row.get("hostConcurrency", 0))
        except (TypeError, ValueError):
            return 0

    def worker_threads(row):
        try:
            return int(row.get("workerThreads", 0))
        except (TypeError, ValueError):
            return 0

    def check_pool_speedup(bench, field, need_workers=False):
        base_rows = [r for r in baseline if r.get("bench") == bench]
        fresh_rows = [r for r in fresh if r.get("bench") == bench]
        for row in fresh_rows:
            label = row.get("label", bench)
            base = next(
                (b for b in base_rows if b.get("label") == row.get("label")),
                None)
            if base is None:
                print(f"note: no baseline for '{label}' (new row?) — skipped")
                continue
            got_hc, want_hc = host_concurrency(row), host_concurrency(base)
            if got_hc <= 1 or want_hc <= 1:
                which = "fresh" if got_hc <= 1 else "baseline"
                print(f"{label:32s} {field} SKIPPED "
                      f"(hostConcurrency == 1 on the {which} host: a "
                      "worker pool cannot speed up a 1-CPU box, so this "
                      "comparison is unmeasurable here — NOT a pass)")
                continue
            if need_workers and (got_hc < worker_threads(row)
                                 or want_hc < worker_threads(base)):
                # A PDES run at N host threads is only a fair speedup
                # measurement on a host with >= N hardware threads; an
                # oversubscribed point says nothing about the kernel.
                which = ("fresh"
                         if got_hc < worker_threads(row) else "baseline")
                print(f"{label:32s} {field} SKIPPED "
                      f"(hostConcurrency < workerThreads on the {which} "
                      "host: this point needs "
                      f"{worker_threads(row)} hardware threads to be "
                      "measurable — NOT a pass)")
                continue
            got = float(row[field])
            want = float(base[field])
            floor = want * (1.0 - tolerance)
            status = "ok" if got >= floor else "REGRESSION"
            print(f"{label:32s} {field} {got:6.2f}x "
                  f"(baseline {want:.2f}x, floor {floor:.2f}x) {status}")
            if got < floor:
                failures.append(
                    f"'{label}' {field} {got:.2f}x fell more than "
                    f"{tolerance:.0%} below the baseline {want:.2f}x"
                    + replay_hint(row))

    check_pool_speedup("batch_throughput", "poolSpeedup")
    check_pool_speedup("pdes_compare", "pdesSpeedup", need_workers=True)

    def expect_scaling(bench, field, need_workers=False):
        # Absolute multi-thread gate (--expect-scaling): fresh rows must
        # clear the floor outright, independent of any baseline.
        for row in (r for r in fresh if r.get("bench") == bench):
            label = row.get("label", bench)
            hc = host_concurrency(row)
            if hc <= 1:
                print(f"{label:32s} {field} SKIPPED (scaling gate: "
                      "hostConcurrency == 1 — a 1-CPU host cannot "
                      "scale, so this row is unmeasurable — NOT a pass)")
                continue
            if need_workers and hc < worker_threads(row):
                print(f"{label:32s} {field} SKIPPED (scaling gate: "
                      f"needs {worker_threads(row)} hardware threads, "
                      f"host has {hc} — NOT a pass)")
                continue
            got = float(row[field])
            status = "ok" if got >= scaling_floor else "NO SCALING"
            print(f"{label:32s} {field} {got:6.2f}x "
                  f"(absolute floor {scaling_floor:.2f}x) {status}")
            if got < scaling_floor:
                failures.append(
                    f"'{label}' {field} {got:.2f}x is below the absolute "
                    f"scaling floor {scaling_floor:.2f}x on a "
                    f"{hc}-thread host" + replay_hint(row))

    if scaling_floor is not None:
        expect_scaling("batch_throughput", "poolSpeedup")
        expect_scaling("pdes_compare", "pdesSpeedup", need_workers=True)

    if failures:
        print("\nperf-smoke FAILED:")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("\nperf-smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
