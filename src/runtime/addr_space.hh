/**
 * @file
 * Synthetic address-space layout of the simulated runtimes' shared data.
 *
 * The MESI model only needs stable, collision-free addresses for the
 * structures whose cache-line behaviour the paper discusses (Section V-B):
 * the Phentos task-metadata array and retirement counter, the Nanos central
 * ready queue and locks, and the software dependence-graph hash.
 */

#ifndef PICOSIM_RUNTIME_ADDR_SPACE_HH
#define PICOSIM_RUNTIME_ADDR_SPACE_HH

#include "sim/types.hh"

namespace picosim::rt::layout
{

inline constexpr Addr kLine = 64;

/** Phentos Task Metadata Array (one or two cache lines per element). */
inline constexpr Addr kPhentosMetadataBase = 0x1000'0000;

/** Phentos single atomic retirement counter (its own line). */
inline constexpr Addr kPhentosRetireCounter = 0x2000'0000;

/** Phentos program-done flag. */
inline constexpr Addr kPhentosDoneFlag = 0x2000'0040;

/** Phentos per-parent child-retirement counters (one line each; nested
 *  programs only). Siblings contend only on their own parent's line. */
inline constexpr Addr kPhentosChildCounterBase = 0x2100'0000;

/** Nanos scheduler singleton: lock line and queue head/slots. */
inline constexpr Addr kNanosSchedLock = 0x3000'0000;
inline constexpr Addr kNanosQueueHead = 0x3000'0040;
inline constexpr Addr kNanosQueueSlots = 0x3000'0080;
inline constexpr Addr kNanosCompletion = 0x3001'0000;
inline constexpr Addr kNanosDoneFlag = 0x3001'0040;

/** Nanos per-parent child-completion counters (nested programs only). */
inline constexpr Addr kNanosChildCounterBase = 0x3100'0000;

/** Nanos-SW dependence-domain lock and hash buckets. */
inline constexpr Addr kSwDepLock = 0x4000'0000;
inline constexpr Addr kSwDepHashBase = 0x4000'1000;
inline constexpr unsigned kSwDepHashBuckets = 1024;

/** Metadata line(s) of Phentos element @p sw_id (elemLines in {1,2}). */
constexpr Addr
phentosMetadataAddr(std::uint64_t sw_id, unsigned elem_lines)
{
    return kPhentosMetadataBase + sw_id * elem_lines * kLine;
}

/** Child-retirement counter line of Phentos parent task @p sw_id. */
constexpr Addr
phentosChildCounterAddr(std::uint64_t sw_id)
{
    return kPhentosChildCounterBase + sw_id * kLine;
}

/** Child-completion counter line of Nanos parent task @p sw_id. */
constexpr Addr
nanosChildCounterAddr(std::uint64_t sw_id)
{
    return kNanosChildCounterBase + sw_id * kLine;
}

/** Hash-bucket line of a monitored address in the SW dependence domain. */
constexpr Addr
swDepBucketAddr(Addr monitored)
{
    std::uint64_t h = monitored >> 3;
    h ^= h >> 16;
    h *= 0x45d9f3b;
    h ^= h >> 16;
    return kSwDepHashBase + (h % kSwDepHashBuckets) * kLine;
}

/** Ready-queue slot line for index @p i (8 slots per line). */
constexpr Addr
nanosQueueSlotAddr(std::uint64_t i)
{
    return kNanosQueueSlots + ((i % 64) / 8) * kLine;
}

} // namespace picosim::rt::layout

#endif // PICOSIM_RUNTIME_ADDR_SPACE_HH
