/**
 * @file
 * The packet-level interface a dependence-management scheduler presents
 * to a Picos Manager: the submission, ready and retirement queues of the
 * paper's Picos (Section IV-D).
 *
 * Two implementations exist: the single centralized picos::Picos (the
 * paper's accelerator, bit-exact reference) and one cluster-facing port
 * of picos::ShardedPicos (the address-interleaved multi-shard scaling
 * layer). The manager is written against this interface only, so cluster
 * topology is a construction-time decision, not a manager variant.
 */

#ifndef PICOSIM_PICOS_SCHEDULER_IF_HH
#define PICOSIM_PICOS_SCHEDULER_IF_HH

#include <cstdint>

#include "sim/ticked.hh"

namespace picosim::picos
{

class SchedulerIf
{
  public:
    virtual ~SchedulerIf() = default;

    // -- Submission interface (32-bit descriptor packets) --
    virtual bool subCanAccept() const = 0;
    virtual bool subPush(std::uint32_t packet) = 0;

    // -- Ready interface (3 packets per ready task) --
    virtual bool readyValid() const = 0;
    virtual std::uint32_t readyPop() = 0;

    /** Register the consumer of the ready interface (the manager's packet
     *  encoder); it is woken when ready packets become visible. */
    virtual void setReadyListener(sim::Ticked *listener) = 0;

    // -- Retirement interface (one Picos ID per packet) --
    virtual bool retireCanAccept() const = 0;
    virtual bool retirePush(std::uint32_t picos_id) = 0;
};

} // namespace picosim::picos

#endif // PICOSIM_PICOS_SCHEDULER_IF_HH
