#include "service/job_manager.hh"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "runtime/cancel.hh"
#include "runtime/harness.hh"
#include "service/run_plan.hh"
#include "spec/engine.hh"
#include "spec/workload_registry.hh"

namespace picosim::svc
{

namespace
{
using SteadyClock = std::chrono::steady_clock;
}

/** One job's full bookkeeping. Lives behind a unique_ptr so the
 *  CancelToken's address stays stable for in-flight RunControls. */
struct JobManager::Rec
{
    std::uint64_t id = 0;
    JobSpec spec;
    JobState state = JobState::Queued;
    std::vector<RunRow> rows;       ///< rows[i] pairs with spec.runs[i]
    std::size_t nextRun = 0;        ///< first undispatched run index
    std::size_t doneRuns = 0;       ///< dispatched runs that returned
    std::size_t inFlight = 0;
    rt::CancelToken token;
    bool cancelRequested = false;
    double timeoutSec = 0.0;        ///< resolved (spec or manager default)
    unsigned maxInFlight = 0;       ///< resolved
    bool deadlineArmed = false;
    SteadyClock::time_point deadline{};
    std::uint64_t startSeq = 0;
    std::string error;

    JobStatus
    snapshot() const
    {
        JobStatus st;
        st.id = id;
        st.tag = spec.tag;
        st.state = state;
        st.runsTotal = spec.runs.size();
        st.runsDone = doneRuns;
        st.error = error;
        st.startSeq = startSeq;
        return st;
    }
};

JobManager::JobManager() : JobManager(Params{}) {}

JobManager::JobManager(const Params &params)
    : defaultTimeoutSec_(params.defaultTimeoutSec),
      defaultMaxInFlight_(params.maxInFlightPerJob),
      queue_(params.maxQueued), paused_(params.startPaused)
{
    workers_ = params.workers != 0
                   ? params.workers
                   : std::max(1u, std::thread::hardware_concurrency());
    pool_.reserve(workers_);
    for (unsigned t = 0; t < workers_; ++t)
        pool_.emplace_back([this] { workerLoop(); });
}

JobManager::~JobManager()
{
    {
        const std::lock_guard<std::mutex> lk(lock_);
        stopping_ = true;
        // Wake in-flight runs at their next deterministic boundary;
        // their results are discarded with the manager.
        for (auto &[id, rec] : jobs_)
            if (!jobStateFinal(rec->state))
                rec->token.cancel();
    }
    dispatchCv_.notify_all();
    for (std::thread &t : pool_)
        t.join();
}

JobManager::Rec *
JobManager::find(std::uint64_t id)
{
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
}

const JobManager::Rec *
JobManager::find(std::uint64_t id) const
{
    const auto it = jobs_.find(id);
    return it == jobs_.end() ? nullptr : it->second.get();
}

std::uint64_t
JobManager::submit(JobSpec spec)
{
    if (spec.runs.empty())
        throw spec::SpecError("job has no runs");

    const std::lock_guard<std::mutex> lk(lock_);
    if (stopping_)
        throw spec::SpecError("job manager is shutting down");
    if (queue_.full()) {
        throw spec::SpecError("job queue full (" +
                              std::to_string(queue_.size()) +
                              " jobs queued)");
    }

    auto rec = std::make_unique<Rec>();
    rec->id = ++lastId_;
    rec->rows.resize(spec.runs.size());
    rec->timeoutSec =
        spec.timeoutSec > 0.0 ? spec.timeoutSec : defaultTimeoutSec_;
    rec->maxInFlight =
        spec.maxInFlight != 0 ? spec.maxInFlight : defaultMaxInFlight_;
    rec->spec = std::move(spec);

    const std::uint64_t id = rec->id;
    queue_.push(id); // capacity checked above, under the same lock
    jobs_.emplace(id, std::move(rec));
    dispatchCv_.notify_all();
    return id;
}

std::uint64_t
JobManager::submitText(const std::string &text, double timeoutSec,
                       std::string tag,
                       std::vector<std::string> *warnings)
{
    const spec::RunSpec parsed = spec::RunSpec::parse(text, warnings);
    const RunPlan plan = RunPlan::make({parsed});

    JobSpec js;
    js.runs = plan.runs;
    js.timeoutSec = timeoutSec;
    js.tag = std::move(tag);
    return submit(std::move(js));
}

bool
JobManager::cancel(std::uint64_t id)
{
    {
        const std::lock_guard<std::mutex> lk(lock_);
        Rec *rec = find(id);
        if (rec == nullptr || jobStateFinal(rec->state))
            return false;
        rec->cancelRequested = true;
        rec->token.cancel();
        if (rec->state == JobState::Queued) {
            // Nothing dispatched: finalize on the spot. The rows keep
            // done == false — the runs never existed.
            queue_.remove(id);
            rec->state = JobState::Cancelled;
        }
        // Running jobs finalize when their in-flight and remaining
        // runs drain (each observes the token and returns Cancelled).
    }
    resultCv_.notify_all();
    return true;
}

std::optional<JobStatus>
JobManager::status(std::uint64_t id) const
{
    const std::lock_guard<std::mutex> lk(lock_);
    const Rec *rec = find(id);
    if (rec == nullptr)
        return std::nullopt;
    return rec->snapshot();
}

std::vector<JobStatus>
JobManager::list() const
{
    const std::lock_guard<std::mutex> lk(lock_);
    std::vector<JobStatus> out;
    out.reserve(jobs_.size());
    for (const auto &[id, rec] : jobs_) // map: ascending id = admission
        out.push_back(rec->snapshot());
    return out;
}

JobStatus
JobManager::wait(std::uint64_t id)
{
    std::unique_lock<std::mutex> lk(lock_);
    const Rec *rec = find(id);
    if (rec == nullptr)
        throw spec::SpecError("unknown job " + std::to_string(id));
    resultCv_.wait(lk, [&] { return jobStateFinal(rec->state); });
    return rec->snapshot();
}

std::optional<JobStatus>
JobManager::waitFor(std::uint64_t id, double seconds)
{
    std::unique_lock<std::mutex> lk(lock_);
    const Rec *rec = find(id);
    if (rec == nullptr)
        throw spec::SpecError("unknown job " + std::to_string(id));
    const bool finished = resultCv_.wait_for(
        lk, std::chrono::duration<double>(seconds),
        [&] { return jobStateFinal(rec->state); });
    if (!finished)
        return std::nullopt;
    return rec->snapshot();
}

std::optional<RunRow>
JobManager::waitRow(std::uint64_t id, std::size_t idx)
{
    std::unique_lock<std::mutex> lk(lock_);
    const Rec *rec = find(id);
    if (rec == nullptr || idx >= rec->rows.size())
        return std::nullopt;
    resultCv_.wait(lk, [&] {
        return rec->rows[idx].done || jobStateFinal(rec->state);
    });
    return rec->rows[idx];
}

std::vector<RunRow>
JobManager::runRows(std::uint64_t id) const
{
    const std::lock_guard<std::mutex> lk(lock_);
    const Rec *rec = find(id);
    if (rec == nullptr)
        return {};
    return rec->rows;
}

void
JobManager::pause()
{
    const std::lock_guard<std::mutex> lk(lock_);
    paused_ = true;
}

void
JobManager::resume()
{
    {
        const std::lock_guard<std::mutex> lk(lock_);
        paused_ = false;
    }
    dispatchCv_.notify_all();
}

/** First (job, run) eligible for dispatch, in strict admission order.
 *  Caller holds lock_. */
JobManager::Rec *
JobManager::pickRun(std::size_t &runIdx)
{
    for (const std::uint64_t id : queue_.items()) {
        Rec *rec = find(id);
        if (rec == nullptr || rec->nextRun >= rec->spec.runs.size())
            continue;
        if (rec->maxInFlight != 0 && rec->inFlight >= rec->maxInFlight)
            continue;
        runIdx = rec->nextRun;
        return rec;
    }
    return nullptr;
}

/** Settle the final state once every dispatched run returned.
 *  Precedence: cancelled > timeout > failed > done. Holds lock_. */
void
JobManager::finalize(Rec &rec)
{
    if (rec.cancelRequested) {
        rec.state = JobState::Cancelled;
        return;
    }
    bool timedOut = false;
    bool failed = false;
    for (const RunRow &row : rec.rows) {
        if (!row.done)
            continue;
        if (row.result.status == rt::RunStatus::TimedOut)
            timedOut = true;
        if (row.result.status == rt::RunStatus::Error) {
            if (!failed)
                rec.error = row.result.error;
            failed = true;
        }
    }
    rec.state = timedOut  ? JobState::TimedOut
                : failed  ? JobState::Failed
                          : JobState::Done;
}

void
JobManager::workerLoop()
{
    std::unique_lock<std::mutex> lk(lock_);
    while (true) {
        std::size_t idx = 0;
        Rec *rec = nullptr;
        dispatchCv_.wait(lk, [&] {
            if (stopping_)
                return true;
            if (paused_)
                return false;
            rec = pickRun(idx);
            return rec != nullptr;
        });
        if (stopping_)
            return;

        rec->nextRun = idx + 1;
        ++rec->inFlight;
        if (rec->state == JobState::Queued) {
            rec->state = JobState::Running;
            rec->startSeq = ++startCounter_;
            if (rec->timeoutSec > 0.0) {
                // The wall-clock budget covers the whole job, counted
                // from its first dispatched run.
                rec->deadline =
                    SteadyClock::now() +
                    std::chrono::duration_cast<SteadyClock::duration>(
                        std::chrono::duration<double>(rec->timeoutSec));
                rec->deadlineArmed = true;
            }
        }
        if (rec->nextRun >= rec->spec.runs.size())
            queue_.remove(rec->id); // fully dispatched

        // Snapshot everything the unlocked run needs. The token address
        // is stable (Rec is heap-pinned) and outlives the run: records
        // are only destroyed with the manager, after the pool joined.
        const spec::RunSpec runSpec = rec->spec.runs[idx];
        const bool capture = rec->spec.captureStatDumps;
        rt::RunControls ctl;
        ctl.cancel = &rec->token;
        ctl.deadline = rec->deadline;
        ctl.hasDeadline = rec->deadlineArmed;

        lk.unlock();
        RunRow row;
        try {
            if (capture) {
                spec::InspectedRun ins =
                    spec::Engine::runInspected(runSpec, nullptr, ctl);
                std::ostringstream os;
                ins.system->stats().dump(os);
                ins.system->memory().stats().dump(os);
                row.result = std::move(ins.result);
                row.statDump = os.str();
            } else {
                row.result = spec::Engine::run(runSpec, ctl);
            }
        } catch (const std::exception &e) {
            row.result.status = rt::RunStatus::Error;
            row.result.error = e.what();
        } catch (...) {
            row.result.status = rt::RunStatus::Error;
            row.result.error = "unknown worker exception";
        }
        row.done = true;
        lk.lock();

        rec->rows[idx] = std::move(row);
        --rec->inFlight;
        ++rec->doneRuns;
        if (rec->doneRuns == rec->spec.runs.size() &&
            !jobStateFinal(rec->state))
            finalize(*rec);
        resultCv_.notify_all();
        dispatchCv_.notify_all();
    }
}

} // namespace picosim::svc
