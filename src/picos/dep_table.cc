#include "picos/dep_table.hh"

#include "sim/log.hh"

namespace picosim::picos
{

namespace
{

// Full 64-bit finalizer (splitmix64): stride-64 access patterns
// (cache-line sized blocks) must spread over all sets, otherwise the
// gateway stalls long before the reservation station fills.
std::uint64_t
addrHash(Addr addr)
{
    std::uint64_t h = addr >> 3;
    h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
    h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
    h ^= h >> 31;
    return h;
}

} // namespace

DepTable::DepTable(unsigned sets, unsigned ways, unsigned shard_id,
                   unsigned num_shards)
    : sets_(sets), ways_(ways), shardId_(shard_id), numShards_(num_shards)
{
    if (sets == 0 || ways == 0)
        sim::fatal("DepTable needs at least one set and one way");
    if (num_shards == 0 || shard_id >= num_shards)
        sim::fatal("DepTable shard id out of range");
    entries_.assign(std::size_t{sets} * ways, DepEntry{});
}

unsigned
DepTable::shardOf(Addr addr, unsigned num_shards)
{
    // Fold the upper hash bits so shard interleaving stays decorrelated
    // from the set index (which consumes the hash modulo sets).
    return static_cast<unsigned>((addrHash(addr) >> 32) % num_shards);
}

unsigned
DepTable::setOf(Addr addr) const
{
    return static_cast<unsigned>(addrHash(addr) % sets_);
}

void
DepTable::checkOwnership(Addr addr) const
{
    if (numShards_ > 1 && shardOf(addr, numShards_) != shardId_)
        sim::panic("DepTable shard routing violation");
}

DepEntry *
DepTable::find(Addr addr)
{
    checkOwnership(addr);
    DepEntry *base = &entries_[std::size_t{setOf(addr)} * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].addr == addr)
            return &base[w];
    }
    return nullptr;
}

DepEntry *
DepTable::alloc(Addr addr,
                const EvictPred &evictable)
{
    checkOwnership(addr);
    DepEntry *base = &entries_[std::size_t{setOf(addr)} * ways_];
    DepEntry *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (!victim && evictable(base[w]))
            victim = &base[w];
    }
    if (!victim)
        return nullptr;
    victim->valid = true;
    victim->addr = addr;
    victim->lastWriter = TaskRef{};
    victim->readers.clear();
    return victim;
}

std::size_t
DepTable::validEntries() const
{
    std::size_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

void
DepTable::clear()
{
    for (auto &e : entries_)
        e = DepEntry{};
}

} // namespace picosim::picos
