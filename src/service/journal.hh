/**
 * @file
 * Journal: the durable append-only record log behind `picosim_serve
 * --journal DIR`. Every record is one framed line pair:
 *
 *     PJ1 <payload-bytes> <crc32-hex>\n
 *     <payload>\n
 *
 * where the payload is a one-line flat JSON object (the same dialect
 * wire.hh speaks) and the CRC-32 (IEEE, poly 0xEDB88320) covers the
 * payload bytes only. The format is deliberately line-oriented so a
 * torn tail — the half-written record a `kill -9` leaves behind — is
 * detectable: readAll() replays records until the first frame that is
 * truncated or fails its checksum, warns loudly on @p diag, and drops
 * everything from that point on. Records before the tear are good by
 * construction: append() writes the full frame with one O_APPEND
 * write(2) and fsyncs before returning.
 *
 * Compaction (rewrite()) replaces the log atomically: the survivors are
 * written to `<path>.tmp`, fsynced, and renamed over the original, so a
 * crash during compaction leaves either the old or the new journal —
 * never a mix.
 */

#ifndef PICOSIM_SERVICE_JOURNAL_HH
#define PICOSIM_SERVICE_JOURNAL_HH

#include <cstdint>
#include <mutex>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace picosim::svc
{

/** CRC-32 (IEEE 802.3, reflected poly 0xEDB88320) of @p data. */
std::uint32_t crc32(std::string_view data);

class Journal
{
  public:
    /** The journal file inside @p dir (created if needed). */
    static std::string filePath(const std::string &dir);

    /**
     * Open @p dir's journal for appending, creating the directory and
     * the file as needed. Throws std::runtime_error on I/O failure.
     */
    explicit Journal(const std::string &dir);
    ~Journal();

    Journal(const Journal &) = delete;
    Journal &operator=(const Journal &) = delete;

    /**
     * Frame, append, and fsync one record. Thread-safe (internal
     * mutex); records from different threads land whole, in some
     * serial order. Throws std::runtime_error when the write or sync
     * fails — durability is the whole point, so failure is loud.
     */
    void append(const std::string &payload);

    const std::string &path() const { return path_; }

    /**
     * Replay every intact record of @p dir's journal, in order. A
     * missing file yields an empty vector (first boot). The first
     * torn or CRC-corrupt frame stops the replay: a warning naming
     * the byte offset and the reason goes to @p diag (when non-null)
     * and the remainder of the file is discarded.
     */
    static std::vector<std::string> readAll(const std::string &dir,
                                            std::ostream *diag);

    /**
     * Atomically replace @p dir's journal with @p payloads (tmp file +
     * fsync + rename). Throws std::runtime_error on I/O failure.
     */
    static void rewrite(const std::string &dir,
                        const std::vector<std::string> &payloads);

  private:
    std::mutex lock_;
    std::string path_;
    int fd_ = -1;
};

} // namespace picosim::svc

#endif // PICOSIM_SERVICE_JOURNAL_HH
