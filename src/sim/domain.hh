/**
 * @file
 * Conservative-PDES domain partitioning of the event kernel.
 *
 * A Simulator may be partitioned into host-thread DOMAINS: disjoint
 * groups of components, each with its own clock, timing wheel and run
 * loop. Domains execute lookahead windows independently and synchronize
 * at window boundaries.
 *
 * Window length (pairwise lookahead): each cross-domain link declares an
 * ordered (source, destination) domain pair and a latency; the kernel
 * keeps the min declared latency per ordered pair (the lookahead matrix)
 * and, per source domain s, minOut(s) = min over destinations of that
 * row. A message leaving s cannot be sent before s's next event
 * nextEvent(s), so no staged traffic can arrive anywhere before
 *
 *     windowEnd = min over sources s of  nextEvent(s) + minOut(s)
 *
 * — the window bound used by the coordinator. Only pairs whose source is
 * LIVE constrain the window: an idle domain (no armed events) drops its
 * row entirely, so sparse topologies get long windows. Links registered
 * without endpoints (the legacy two-argument form) constrain every pair.
 * Intra-window execution therefore never observes a concurrent mutation:
 * anything sent at cycle t >= nextEvent(s) over a link of latency
 * L >= minOut(s) arrives at t + L >= windowEnd.
 *
 * Idle-window fast-forward: every domain caches a lower bound on its
 * next armed event (Domain::cachedNext — exact at window exit, lowered
 * only by boundary drains and wakes). A domain whose cachedNext is at or
 * past the window boundary skips the window entirely — no wheel scan, no
 * revalidation — which is behaviorally identical to running an empty
 * window. The boundary merge is batched the same way: only links staged
 * into this window (dirty links) and outboxes written this window are
 * touched, so barrier cost tracks live traffic, not domain count.
 *
 * Two kinds of traffic cross a boundary, both applied single-threaded at
 * the window barrier so the merge order is fixed:
 *
 *  - TimedPort traffic: a cross-domain port runs in staging mode
 *    (TimedPort::enableCrossDomainStaging) — the producer appends to a
 *    producer-owned staging ring, and the port registers a drain with
 *    the Simulator that replays the staged pushes (same accept/latency
 *    arithmetic, anchored at the recorded send cycle) at the boundary.
 *  - Bare requestWake() calls: captured in the evaluating domain's
 *    per-destination outbox as WakeRequests and applied at the boundary,
 *    clamped to the boundary cycle (the destination's window has already
 *    been executed up to it).
 *
 * Determinism: the same windowed schedule runs regardless of the host
 * thread count — one thread iterates the domains in id order, N threads
 * execute them concurrently — and all cross-domain state merges happen
 * in the single-threaded barrier step in a fixed order (links in
 * registration order, then outboxes in source-domain order). External
 * wakes land in each component's sorted, deduplicated pending set, so
 * the post-merge kernel state is independent of arrival order, and
 * same-cycle dispatch stays in per-domain registration order exactly as
 * in the sequential kernel. Results are therefore bit-identical for any
 * hostThreads >= 1.
 */

#ifndef PICOSIM_SIM_DOMAIN_HH
#define PICOSIM_SIM_DOMAIN_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/clock.hh"
#include "sim/event_wheel.hh"
#include "sim/types.hh"

namespace picosim::sim
{

class Ticked;

/** A cross-domain wake captured mid-window, applied at the boundary. */
struct WakeRequest
{
    Ticked *component;
    Cycle cycle;
};

/**
 * A timed link crossing a domain boundary. The declared latency bounds
 * the lookahead window for its (src, dst) domain pair; the drain
 * callback replays the link's staged traffic into the consumer domain
 * at each window boundary. Links with src == dst == kAllPairs (the
 * legacy endpoint-less registration) constrain every ordered pair.
 */
struct CrossDomainLink
{
    /** Sentinel endpoint: the link constrains every domain pair. */
    static constexpr unsigned kAllPairs = ~0u;

    unsigned src = kAllPairs;
    unsigned dst = kAllPairs;
    Cycle latency = 0;
    std::function<void()> drain;
    std::string name; ///< for diagnostics (misconfigured latency, etc.)
};

/**
 * Per-domain scheduling engine: the complete state the kernel's
 * event-driven algorithm needs, so one Domain is "a sequential kernel".
 * The unpartitioned Simulator owns exactly one (its members ARE the
 * sequential kernel's members); partitioning adds more, and the windowed
 * run loop executes each with the unchanged per-domain algorithm.
 */
struct Domain
{
    Clock clock;
    EventWheel wheel;
    std::vector<Ticked *> ticked; ///< members, registration order
    unsigned id = 0;
    unsigned farCount = 0;        ///< components armed beyond the horizon
    Cycle farMin = kCycleNever;   ///< lower bound on far armed cycles
    bool evaluating = false;
    unsigned currentRegIndex = 0;
    std::uint64_t componentTicks = 0;

    /** Cycles evaluated in the current window, ascending; merged (and
     *  global-deduplicated) into evaluatedCycles at the boundary. */
    std::vector<Cycle> windowCycles;

    /** Outgoing cross-domain wakes, one FIFO per destination domain;
     *  only this domain's thread appends during a window. */
    std::vector<std::vector<WakeRequest>> outbox;

    /** True when any outbox FIFO was written since the last boundary. */
    bool outboxDirty = false;

    /**
     * Lower bound on this domain's next armed event cycle. Exact at
     * window exit (the refresh loop's final value); lowered between
     * windows only by applyLocalWake (boundary drains, outbox merges,
     * harness-context wakes). The coordinator derives window bounds
     * from it without touching the wheel, and a domain with
     * cachedNext >= windowEnd skips its window entirely.
     */
    Cycle cachedNext = 0;

    /** Cross-domain link ids first staged into during this window by
     *  code running on this domain's thread; drained (sorted, deduped)
     *  and cleared at the boundary. */
    std::vector<unsigned> dirtyLinks;

    /** Windows this domain executed / skipped via idle fast-forward
     *  (own-thread writes; read at boundaries and post-run). */
    std::uint64_t windowsRun = 0;
    std::uint64_t windowsSkipped = 0;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_DOMAIN_HH
