#include "bench/fig_common.hh"

#include <cstdio>

#include "apps/workloads.hh"
#include "bench/bench_util.hh"

namespace picosim::bench
{

std::vector<MatrixRow>
runFigure9Matrix(bool progress, unsigned threads)
{
    const auto inputs = apps::figure9Inputs();
    const bool quick = quickMode();

    // Per selected input: one serial baseline plus the figure's runtimes.
    const std::vector<rt::RuntimeKind> kinds = {
        rt::RuntimeKind::Serial, rt::RuntimeKind::NanosSW,
        rt::RuntimeKind::NanosRV, rt::RuntimeKind::Phentos};

    std::vector<MatrixRow> rows;
    std::vector<rt::Program> progs;
    unsigned index = 0;
    for (const auto &input : inputs) {
        ++index;
        if (quick && index % 3 != 1)
            continue; // subsample in quick mode

        rt::Program prog = input.build();

        MatrixRow row;
        row.program = input.program;
        row.label = input.label;
        row.tasks = prog.numTasks();
        row.meanTaskSize = prog.meanTaskSize();
        rows.push_back(std::move(row));
        progs.push_back(std::move(prog));
    }

    const auto onResult = [&](std::size_t p, std::size_t k,
                              const rt::RunResult &res) {
        if (progress) {
            std::fprintf(stderr, "  [%3zu/%zu] %s %s %s done\n",
                         p * kinds.size() + k + 1,
                         progs.size() * kinds.size(),
                         rows[p].program.c_str(), rows[p].label.c_str(),
                         res.runtime.c_str());
        }
    };
    const auto results =
        rt::runMatrix(progs, kinds, rt::HarnessParams{}, threads, onResult);

    for (std::size_t p = 0; p < rows.size(); ++p) {
        for (std::size_t k = 0; k < kinds.size(); ++k) {
            const rt::RunResult &res = results[p][k];
            const Cycle cycles = res.completed ? res.cycles : 0;
            switch (kinds[k]) {
              case rt::RuntimeKind::Serial:
                rows[p].serialCycles = cycles;
                break;
              case rt::RuntimeKind::NanosSW:
                rows[p].nanosSw = cycles;
                break;
              case rt::RuntimeKind::NanosRV:
                rows[p].nanosRv = cycles;
                break;
              case rt::RuntimeKind::Phentos:
                rows[p].phentos = cycles;
                break;
              case rt::RuntimeKind::NanosAXI:
                break; // not part of the Figure 9 matrix
            }
        }
    }
    return rows;
}

} // namespace picosim::bench
