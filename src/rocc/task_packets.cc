#include "rocc/task_packets.hh"

#include "sim/log.hh"

namespace picosim::rocc
{

std::vector<std::uint32_t>
encodeNonZero(const TaskDescriptor &desc)
{
    if (desc.deps.size() > kMaxDeps)
        sim::fatal("task has more than 15 dependencies");

    std::vector<std::uint32_t> packets;
    packets.reserve(nonZeroPackets(desc.deps.size()));
    packets.push_back(static_cast<std::uint32_t>(desc.swId >> 32));
    packets.push_back(static_cast<std::uint32_t>(desc.swId & 0xffffffffu));
    packets.push_back(static_cast<std::uint32_t>(desc.deps.size()));
    for (const TaskDep &dep : desc.deps) {
        packets.push_back(static_cast<std::uint32_t>(dep.addr >> 32));
        packets.push_back(static_cast<std::uint32_t>(dep.addr & 0xffffffffu));
        packets.push_back(static_cast<std::uint32_t>(dep.dir));
    }
    return packets;
}

TaskDescriptor
decodeDescriptor(const std::vector<std::uint32_t> &packets)
{
    if (packets.size() != kDescriptorPackets)
        sim::fatal("descriptor must be exactly 48 packets");

    TaskDescriptor desc;
    desc.swId = (static_cast<std::uint64_t>(packets[0]) << 32) | packets[1];
    const std::uint32_t ndeps = packets[2];
    if (ndeps > kMaxDeps)
        sim::fatal("descriptor announces more than 15 dependencies");
    for (std::uint32_t i = 0; i < ndeps; ++i) {
        const std::size_t base = 3 + std::size_t{i} * 3;
        TaskDep dep;
        dep.addr = (static_cast<std::uint64_t>(packets[base]) << 32) |
                   packets[base + 1];
        const std::uint32_t dir = packets[base + 2];
        if (dir < 1 || dir > 3)
            sim::fatal("descriptor has invalid directionality");
        dep.dir = static_cast<Dir>(dir);
        desc.deps.push_back(dep);
    }
    // Padding must be all zeros.
    for (std::size_t i = nonZeroPackets(ndeps); i < kDescriptorPackets; ++i) {
        if (packets[i] != 0)
            sim::fatal("descriptor padding contains non-zero packet");
    }
    return desc;
}

} // namespace picosim::rocc
