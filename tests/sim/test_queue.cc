/** @file Unit tests for sim::TimedFifo. */

#include <gtest/gtest.h>

#include "sim/clock.hh"
#include "sim/queue.hh"

using namespace picosim;
using namespace picosim::sim;

TEST(TimedFifo, StartsEmpty)
{
    Clock clk;
    TimedFifo<int> q(clk, 4);
    EXPECT_TRUE(q.empty());
    EXPECT_FALSE(q.full());
    EXPECT_EQ(q.size(), 0u);
    EXPECT_FALSE(q.frontReady());
    EXPECT_EQ(q.nextReadyCycle(), kCycleNever);
}

TEST(TimedFifo, ZeroLatencyIsFallthrough)
{
    Clock clk;
    TimedFifo<int> q(clk, 4, 0);
    EXPECT_TRUE(q.push(7));
    EXPECT_TRUE(q.frontReady());
    EXPECT_EQ(q.front(), 7);
    EXPECT_EQ(q.pop(), 7);
    EXPECT_TRUE(q.empty());
}

TEST(TimedFifo, LatencyDelaysVisibility)
{
    Clock clk;
    TimedFifo<int> q(clk, 4, 2);
    q.push(1);
    EXPECT_FALSE(q.frontReady());
    EXPECT_EQ(q.nextReadyCycle(), 2u);
    clk.advanceTo(1);
    EXPECT_FALSE(q.frontReady());
    clk.advanceTo(2);
    EXPECT_TRUE(q.frontReady());
    EXPECT_EQ(q.pop(), 1);
}

TEST(TimedFifo, RespectsCapacity)
{
    Clock clk;
    TimedFifo<int> q(clk, 2);
    EXPECT_TRUE(q.push(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.canPush());
    EXPECT_FALSE(q.push(3));
    EXPECT_EQ(q.pop(), 1);
    EXPECT_TRUE(q.push(3));
    EXPECT_EQ(q.pop(), 2);
    EXPECT_EQ(q.pop(), 3);
}

TEST(TimedFifo, FifoOrderPreserved)
{
    Clock clk;
    TimedFifo<int> q(clk, 8, 1);
    for (int i = 0; i < 5; ++i)
        q.push(i);
    clk.advanceTo(1);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(q.pop(), i);
}

TEST(TimedFifo, ClearEmptiesQueue)
{
    Clock clk;
    TimedFifo<int> q(clk, 4);
    q.push(1);
    q.push(2);
    q.clear();
    EXPECT_TRUE(q.empty());
}

TEST(TimedFifo, MixedAgeFrontGatesYoungerEntries)
{
    Clock clk;
    TimedFifo<int> q(clk, 4, 1);
    q.push(1); // ready at 1
    clk.advanceTo(5);
    q.push(2); // ready at 6
    EXPECT_TRUE(q.frontReady());
    EXPECT_EQ(q.pop(), 1);
    // Second entry not ready yet.
    EXPECT_FALSE(q.frontReady());
    EXPECT_EQ(q.nextReadyCycle(), 6u);
}

TEST(TimedFifo, SameCyclePopDoesNotUnblockCanPush)
{
    // Audited same-cycle ordering (see the file comment in queue.hh):
    // canPush() reflects occupancy at the call, so a producer refused
    // this cycle stays refused even if the consumer pops later in the
    // same cycle — the freed slot becomes pushable next cycle. This is
    // what makes throughput independent of component evaluation order.
    Clock clk;
    TimedFifo<int> q(clk, 1, 1);
    ASSERT_TRUE(q.push(1));
    clk.advanceTo(1);
    // Producer evaluated first: refused while the consumer's pop is
    // still pending this cycle.
    EXPECT_FALSE(q.canPush());
    EXPECT_FALSE(q.push(2));
    EXPECT_EQ(q.conservativeFrees(), 0u);
    // Consumer evaluated second: the pop frees the slot too late for
    // the refused producer; the queue records the conservative miss.
    EXPECT_TRUE(q.frontReady());
    EXPECT_EQ(q.pop(), 1);
    EXPECT_EQ(q.conservativeFrees(), 1u);
    // The slot is usable from the producer's next evaluation on.
    EXPECT_TRUE(q.canPush());
    EXPECT_TRUE(q.push(2));
    EXPECT_FALSE(q.frontReady()); // latency 1: visible at cycle 2
    clk.advanceTo(2);
    EXPECT_EQ(q.pop(), 2);
    // A pop with no refused producer this cycle is not a missed slot.
    EXPECT_EQ(q.conservativeFrees(), 1u);
}

class TimedFifoLatencyTest : public ::testing::TestWithParam<Cycle>
{
};

TEST_P(TimedFifoLatencyTest, NextReadyMatchesLatency)
{
    Clock clk;
    clk.advanceTo(10);
    TimedFifo<int> q(clk, 4, GetParam());
    q.push(42);
    EXPECT_EQ(q.nextReadyCycle(), 10 + GetParam());
    clk.advanceTo(10 + GetParam());
    EXPECT_TRUE(q.frontReady());
}

INSTANTIATE_TEST_SUITE_P(Latencies, TimedFifoLatencyTest,
                         ::testing::Values(0, 1, 2, 3, 8));
