#include "runtime/nanos.hh"

#include <algorithm>

#include "rocc/task_packets.hh"
#include "runtime/addr_space.hh"
#include "runtime/task_window.hh"
#include "sim/log.hh"

namespace picosim::rt
{

Nanos::Nanos(Variant variant, const CostModel &cm)
    : variant_(variant), cm_(cm), swGraph_(cm_)
{
    schedLock_.lineAddr = layout::kNanosSchedLock;
    depLock_.lineAddr = layout::kSwDepLock;
}

std::string
Nanos::name() const
{
    switch (variant_) {
      case Variant::SW:  return "Nanos-SW";
      case Variant::RV:  return "Nanos-RV";
      case Variant::AXI: return "Nanos-AXI";
    }
    return "Nanos-?";
}

void
Nanos::install(cpu::System &sys, const Program &prog)
{
    sys_ = &sys;
    prog_ = &prog;
    outstandingReq_.assign(sys.numCores(), 0);
    nested_ = prog.hasNested();
    childRetired_.assign(nested_ ? prog.numTasks() : 0, 0);
    hwInFlight_ = 0;
    inlineExecuted_ = 0;
    inFlightLimit_ = 0;
    liveWriters_.clear();
    // Nested RV/AXI programs bound their hardware-in-flight tasks (the
    // software dependence graph of Nanos-SW is unbounded and needs no
    // throttle).
    if (nested_ && variant_ != Variant::SW)
        inFlightLimit_ = taskWindowLimit(sys.params().picos,
                                         sys.numCores(), prog.maxDeps());
    // When the program's last action already is an explicit taskwait, the
    // master's final barrier would re-poll the completion line for a
    // target the explicit wait just drained — skip the redundant barrier.
    skipFinalBarrier_ = !prog.actions.empty() &&
                        prog.actions.back().kind == Action::Kind::Taskwait;
    if (variant_ == Variant::AXI) {
        // The loosely-coupled baseline reaches the delegate over MMIO;
        // publish the calibrated link costs as the harts' loose link.
        for (CoreId c = 0; c < sys.numCores(); ++c)
            sys.hartApi(c).setLooseLink({cm_.axiWrite, cm_.axiRead});
    }
    sys.installThread(0, master(sys.hartApi(0)));
    for (CoreId c = 1; c < sys.numCores(); ++c)
        sys.installThread(c, worker(sys.hartApi(c)));
}

bool
Nanos::finished() const
{
    return masterDone_ && executed_ == prog_->numTasks() &&
           completed_ == prog_->numTasks();
}

// -- Scheduler singleton -------------------------------------------------

sim::CoTask<void>
Nanos::pushCentral(cpu::HartApi &api, std::uint64_t sw_id)
{
    co_await lockAcquire(api, schedLock_, cm_);
    co_await api.write(layout::kNanosQueueHead);
    co_await api.write(layout::nanosQueueSlotAddr(queuePushes_));
    centralQueue_.push_back(sw_id);
    ++queuePushes_;
    co_await api.delay(cm_.virtualCall * 2); // SchedulePolicy::queue()
    co_await lockRelease(api, schedLock_, cm_);
    // Wake a potentially sleeping worker.
    co_await api.delay(cm_.condSignal);
}

sim::CoTask<std::int64_t>
Nanos::popCentral(cpu::HartApi &api)
{
    co_await lockAcquire(api, schedLock_, cm_);
    co_await api.read(layout::kNanosQueueHead);
    std::int64_t got = -1;
    if (!centralQueue_.empty()) {
        co_await api.read(layout::nanosQueueSlotAddr(queuePops_));
        got = static_cast<std::int64_t>(centralQueue_.front());
        centralQueue_.pop_front();
        ++queuePops_;
    }
    co_await api.delay(cm_.virtualCall * 2); // SchedulePolicy::atIdle()
    co_await lockRelease(api, schedLock_, cm_);
    co_return got;
}

// -- Submission ----------------------------------------------------------

sim::CoTask<void>
Nanos::hwSubmitRocc(cpu::HartApi &api, const Task &task)
{
    // The picos plugin translates the WorkDescriptor dependences into
    // submission packets (a few calls per dependence).
    co_await api.delay(cm_.call * 3 * (1 + task.deps.size()));

    const auto num_deps = static_cast<unsigned>(task.deps.size());
    const unsigned packets = rocc::nonZeroPackets(num_deps);
    // GCC 12 note: co_await results are always hoisted into named locals
    // (never awaited inside a condition) to dodge a coroutine codegen bug.
    while (true) {
        const bool announced = co_await api.submissionRequest(packets);
        if (announced)
            break;
        // Non-blocking failure path: run something to drain the system
        // (deadlock scenario 1, Section IV-C).
        const bool ran = co_await tryExecuteOne(api);
        if (!ran)
            co_await api.delay(cm_.nanosIdleBackoff);
    }

    rocc::TaskDescriptor desc;
    desc.swId = task.id;
    desc.deps = task.deps;
    const auto pkts = rocc::encodeNonZero(desc);
    for (std::size_t i = 0; i < pkts.size(); i += 3) {
        const std::uint64_t rs1 =
            (static_cast<std::uint64_t>(pkts[i]) << 32) | pkts[i + 1];
        unsigned stalls = 0;
        while (true) {
            const bool sent =
                co_await api.submitThreePackets(rs1, pkts[i + 2]);
            if (sent)
                break;
            co_await api.delay(cm_.taskwaitPollMin);
            // Persistent backpressure: the scheduler is full of
            // unexecuted tasks, so run one (fetch/retire use separate
            // queues; the burst stays intact).
            if (++stalls >= 16) {
                stalls = 0;
                co_await tryExecuteOne(api);
            }
        }
    }
}

sim::CoTask<void>
Nanos::hwSubmitAxi(cpu::HartApi &api, const Task &task)
{
    // Picos++ over AXI: write the descriptor to a DMA region, set up the
    // transfer, ring the doorbell; the DMA engine streams all 48 packets
    // (including the zero padding) to the accelerator.
    co_await api.delay(cm_.axiDmaSetup +
                       cm_.axiPerDep * task.deps.size());
    for (unsigned l = 0; l < 3; ++l) // 48 * 4B descriptor = 3 lines
        co_await api.write(0x6000'0000 + task.id * 256 + l * 64);
    co_await api.looseIssue(); // doorbell

    rocc::TaskDescriptor desc;
    desc.swId = task.id;
    desc.deps = task.deps;
    auto pkts = rocc::encodeNonZero(desc);
    pkts.resize(rocc::kDescriptorPackets, 0); // DMA ships the zeros too

    auto &del = api.delegateRef();
    while (!del.submissionRequest(rocc::kDescriptorPackets)) {
        // Request queue full: poll status, then help drain the system by
        // running a ready task (the master doubles as a worker).
        co_await api.looseResponse();
        const bool ran = co_await tryExecuteOne(api);
        if (!ran)
            co_await api.delay(cm_.nanosIdleBackoff);
    }
    for (std::uint32_t p : pkts) {
        co_await api.delay(cm_.axiDmaBeat);
        unsigned backpressure = 0;
        while (!del.submitPacket(p)) {
            co_await api.delay(1); // DMA backpressure
            // A long stall means the accelerator pipeline is full of
            // unexecuted tasks; run one to unblock it (fetch/retire use
            // separate queues, so this cannot tear the burst).
            if (++backpressure >= 64) {
                backpressure = 0;
                co_await tryExecuteOne(api);
            }
        }
    }
}

sim::CoTask<bool>
Nanos::submitTask(cpu::HartApi &api, const Task &task, bool allow_throttle)
{
    if (allow_throttle && variant_ != Variant::SW &&
        hwInFlight_ >= inFlightLimit_)
        co_return false; // saturated: the caller drains + runs inline

    // WorkDescriptor allocation + plugin boilerplate (virtual hops).
    co_await api.delay(cm_.nanosSubmitPath + cm_.alloc +
                       cm_.virtualCall * 4);

    switch (variant_) {
      case Variant::SW: {
        co_await lockAcquire(api, depLock_, cm_);
        DepOpResult r = swGraph_.submit(task);
        for (Addr line : r.touchedLines)
            co_await api.write(line);
        co_await api.delay(r.cost);
        co_await lockRelease(api, depLock_, cm_);
        if (r.ready) {
            co_await pushCentral(api, task.id);
        } else {
            // Register the blocked WorkDescriptor with its predecessors'
            // notification lists.
            co_await api.delay(cm_.swDepBlock);
        }
        break;
      }
      case Variant::RV:
        co_await hwSubmitRocc(api, task);
        ++hwInFlight_;
        break;
      case Variant::AXI:
        co_await hwSubmitAxi(api, task);
        ++hwInFlight_;
        break;
    }
    if (inFlightLimit_ > 0)
        registerWriters(liveWriters_, task.deps);
    ++submitted_;
    if (api.coreId() != 0)
        ++workerSubmitted_;
    if (trace_)
        trace_->onSubmit(task.id, sys_->clock().now());
    co_return true;
}

sim::CoTask<void>
Nanos::executeInline(cpu::HartApi &api, const Task &task)
{
    // Saturation fallback: run the task without the dependence hardware.
    // It joins the same submission/completion bookkeeping so barriers and
    // scoped waits stay exact; dependence safety is the caller's contract
    // (the task's earlier siblings have already drained). Violations
    // fail loudly.
    checkInlineSafe(liveWriters_, task.deps);
    ++submitted_;
    ++inlineExecuted_;
    if (api.coreId() != 0)
        ++workerSubmitted_;
    if (trace_) {
        trace_->onSubmit(task.id, sys_->clock().now());
        trace_->onDispatch(task.id, sys_->clock().now(), api.coreId());
    }
    co_await api.delay(cm_.nanosExecWrap + cm_.virtualCall * 2);
    co_await api.executePayload(task.payload);
    ++executed_;
    co_await runBody(api, task);
    co_await api.delay(cm_.nanosRetirePath + cm_.virtualCall * 2);
    co_await noteCompletion(api, task);
    if (trace_)
        trace_->onRetire(task.id, sys_->clock().now());
}

sim::CoTask<void>
Nanos::runBody(cpu::HartApi &api, const Task &task)
{
    // Replay the task body's nested operations on the executing core:
    // child WorkDescriptors are submitted through this core's own
    // dependence path (worker-side submission), scoped waits poll the
    // parent's completion counter line.
    std::uint64_t spawned = 0;
    for (const BodyOp &op : prog_->bodyOf(task.id)) {
        if (op.kind == BodyOp::Kind::SpawnChild) {
            const Task &child = prog_->taskById(op.child);
            const bool ok =
                co_await submitTask(api, child, /*allow_throttle=*/true);
            if (!ok) {
                // Task window saturated. Drain this task's own children
                // (their producers are all submitted siblings, so the
                // subtree always makes progress), then run the new child
                // inline — its earlier siblings have now retired, so its
                // dependences are satisfied without the hardware.
                co_await taskwaitChildren(api, task.id, spawned);
                const bool retried =
                    co_await submitTask(api, child, /*allow_throttle=*/true);
                if (!retried)
                    co_await executeInline(api, child);
            }
            ++spawned;
        } else {
            co_await taskwaitChildren(api, task.id, op.waitTarget);
        }
    }
}

// -- Fetch / execute / retire ---------------------------------------------

sim::CoTask<bool>
Nanos::hwFetchToCentral(cpu::HartApi &api)
{
    const CoreId c = api.coreId();
    if (variant_ == Variant::RV) {
        if (outstandingReq_[c] == 0) {
            const bool requested = co_await api.readyTaskRequest();
            if (requested)
                ++outstandingReq_[c];
        }
        const auto sw = co_await api.fetchSwId();
        if (!sw)
            co_return false;
        const auto pid = co_await api.fetchPicosId();
        if (!pid)
            sim::panic("FetchPicosId failed after FetchSwId");
        if (outstandingReq_[c] > 0)
            --outstandingReq_[c];
        picosIdBySw_[*sw] = *pid;
        co_await pushCentral(api, *sw);
        co_return true;
    }

    // AXI: poll the accelerator's ready registers over MMIO.
    auto &del = api.delegateRef();
    if (outstandingReq_[c] == 0) {
        co_await api.looseIssue();
        if (del.readyTaskRequest())
            ++outstandingReq_[c];
    }
    co_await api.looseResponse();
    const auto sw = del.fetchSwId();
    if (!sw)
        co_return false;
    co_await api.looseResponse();
    const auto pid = del.fetchPicosId();
    if (!pid)
        sim::panic("AXI FetchPicosId failed after FetchSwId");
    if (outstandingReq_[c] > 0)
        --outstandingReq_[c];
    picosIdBySw_[*sw] = *pid;
    co_await pushCentral(api, *sw);
    co_return true;
}

sim::CoTask<void>
Nanos::retire(cpu::HartApi &api, const Task &task)
{
    co_await api.delay(cm_.nanosRetirePath + cm_.virtualCall * 2);

    switch (variant_) {
      case Variant::SW: {
        co_await lockAcquire(api, depLock_, cm_);
        DepOpResult r = swGraph_.release(task.id);
        for (Addr line : r.touchedLines)
            co_await api.write(line);
        co_await api.delay(r.cost);
        co_await lockRelease(api, depLock_, cm_);
        for (std::uint64_t ready_id : r.becameReady)
            co_await pushCentral(api, ready_id);
        break;
      }
      case Variant::RV: {
        const auto it = picosIdBySw_.find(task.id);
        if (it == picosIdBySw_.end())
            sim::panic("Nanos-RV retire without Picos ID");
        co_await api.retireTask(it->second);
        picosIdBySw_.erase(it);
        --hwInFlight_;
        if (inFlightLimit_ > 0)
            releaseWriters(liveWriters_, task.deps);
        break;
      }
      case Variant::AXI: {
        const auto it = picosIdBySw_.find(task.id);
        if (it == picosIdBySw_.end())
            sim::panic("Nanos-AXI retire without Picos ID");
        co_await api.looseIssue();
        auto &del = api.delegateRef();
        if (!del.retireCanAccept()) {
            auto *d = &del;
            co_await sim::WaitUntil{[d] { return d->retireCanAccept(); }};
        }
        del.retireTask(it->second);
        picosIdBySw_.erase(it);
        --hwInFlight_;
        if (inFlightLimit_ > 0)
            releaseWriters(liveWriters_, task.deps);
        break;
      }
    }

    co_await noteCompletion(api, task);
}

sim::CoTask<void>
Nanos::noteCompletion(cpu::HartApi &api, const Task &task)
{
    // Completion bookkeeping under the scheduler lock + condvar signal.
    co_await lockAcquire(api, schedLock_, cm_);
    co_await api.write(layout::kNanosCompletion);
    ++completed_;
    if (nested_ && task.parent != kNoParent) {
        // Parent -> child retire notification: the parent's scoped
        // counter shares the completion critical section, exactly like
        // Nanos's WorkDescriptor parent accounting.
        co_await api.write(layout::nanosChildCounterAddr(task.parent));
        ++childRetired_[task.parent];
    }
    co_await lockRelease(api, schedLock_, cm_);
    co_await api.delay(cm_.condSignal);
}

sim::CoTask<bool>
Nanos::tryExecuteOne(cpu::HartApi &api)
{
    co_await api.delay(cm_.nanosFetchPath);
    std::int64_t sw = co_await popCentral(api);
    if (sw < 0 && variant_ != Variant::SW) {
        // The ready tasks identified by Picos are not run directly by the
        // fetching core; they go through the Scheduler singleton's central
        // queue first (Section V-A).
        const bool fetched = co_await hwFetchToCentral(api);
        if (fetched)
            sw = co_await popCentral(api);
    }
    if (sw < 0)
        co_return false;

    const Task &task = prog_->taskById(static_cast<std::uint64_t>(sw));
    co_await api.delay(cm_.nanosExecWrap + cm_.virtualCall * 2);
    if (trace_)
        trace_->onDispatch(task.id, sys_->clock().now(), api.coreId());
    co_await api.executePayload(task.payload);
    ++executed_;
    if (nested_)
        co_await runBody(api, task);
    co_await retire(api, task);
    if (trace_)
        trace_->onRetire(task.id, sys_->clock().now());
    co_return true;
}

// -- Master / workers ------------------------------------------------------

sim::CoTask<void>
Nanos::taskwait(cpu::HartApi &api, std::uint64_t target)
{
    while (true) {
        co_await api.read(layout::kNanosCompletion);
        if (completed_ >= target)
            break;
        const bool ran = co_await tryExecuteOne(api);
        if (!ran)
            co_await api.delay(cm_.nanosIdleBackoff);
    }
}

sim::CoTask<void>
Nanos::taskwaitAll(cpu::HartApi &api)
{
    // Nested-program barrier: drain every task submitted so far *and*
    // their subtrees. The target is re-read each poll because in-flight
    // parents keep growing submitted_; a child is always submitted before
    // its parent's completion is counted, so completed_ == submitted_
    // implies the whole subtree has drained.
    while (true) {
        co_await api.read(layout::kNanosCompletion);
        if (completed_ >= submitted_)
            break;
        const bool ran = co_await tryExecuteOne(api);
        if (!ran)
            co_await api.delay(cm_.nanosIdleBackoff);
    }
}

sim::CoTask<void>
Nanos::taskwaitChildren(cpu::HartApi &api, std::uint64_t id,
                        std::uint64_t target)
{
    // Scoped taskwait: wait for this task's own children only; unrelated
    // siblings may still be in flight. The waiting worker keeps running
    // ready tasks so occupying the core can never deadlock the subtree.
    while (true) {
        co_await api.read(layout::nanosChildCounterAddr(id));
        if (childRetired_[id] >= target)
            break;
        const bool ran = co_await tryExecuteOne(api);
        if (!ran)
            co_await api.delay(cm_.nanosIdleBackoff);
    }
}

sim::CoTask<void>
Nanos::master(cpu::HartApi &api)
{
    for (const Action &a : prog_->actions) {
        if (a.kind == Action::Kind::Spawn) {
            const bool ok =
                co_await submitTask(api, a.task, /*allow_throttle=*/nested_);
            if (!ok) {
                // Saturated: drain everything in flight. The window is
                // provably empty afterwards (every hardware submission
                // has retired), so this submission cannot be throttled.
                co_await taskwaitAll(api);
                co_await submitTask(api, a.task);
            }
        } else if (nested_) {
            co_await taskwaitAll(api);
        } else {
            co_await taskwait(api, submitted_);
        }
    }
    if (!skipFinalBarrier_) {
        if (nested_)
            co_await taskwaitAll(api);
        else
            co_await taskwait(api, prog_->numTasks());
    }
    doneFlag_ = true;
    co_await api.write(layout::kNanosDoneFlag);
    masterDone_ = true;
}

sim::CoTask<void>
Nanos::worker(cpu::HartApi &api)
{
    while (true) {
        const bool ran = co_await tryExecuteOne(api);
        if (ran)
            continue;
        co_await api.read(layout::kNanosDoneFlag);
        if (doneFlag_)
            break;
        co_await api.delay(cm_.nanosIdleBackoff);
    }
}

} // namespace picosim::rt
