/**
 * @file
 * sparseLU (KaStORS): LU factorization of a sparse blocked matrix with
 * the classic lu0 / fwd / bdiv / bmod task graph (Section VI-A2).
 *
 * The matrix is nb x nb blocks of bs x bs doubles; a pseudo-random subset
 * of blocks is null and skipped (allocated lazily by bmod, as in the
 * original benchmark).
 */

#include "apps/workloads.hh"

#include <limits>
#include <vector>

#include "apps/register.hh"
#include "sim/log.hh"
#include "sim/rng.hh"
#include "spec/workload_registry.hh"

namespace picosim::apps
{

namespace
{
constexpr Addr kMatrixBase = 0x5500'0000;

/** ~1.6 cycles per FLOP at -O3 on the in-order Rocket FPU. */
constexpr double kCyclesPerFlop = 1.6;
constexpr Cycle kTaskFixed = 220;

Cycle
flops(double count)
{
    return kTaskFixed + static_cast<Cycle>(kCyclesPerFlop * count);
}
} // namespace

rt::Program
sparseLu(unsigned nb, unsigned bs, std::uint64_t seed)
{
    if (nb == 0 || bs == 0)
        sim::fatal("sparseLu: empty matrix");
    rt::Program prog;
    prog.name = "sparselu nb" + std::to_string(nb) + " bs" +
                std::to_string(bs);

    const double b3 = static_cast<double>(bs) * bs * bs;
    const auto blockAddr = [&](unsigned i, unsigned j) {
        return kMatrixBase +
               (static_cast<Addr>(i) * nb + j) * bs * bs * sizeof(double);
    };

    // Initial sparsity pattern of the KaStORS generator: diagonal and a
    // pseudo-random ~45% of off-diagonal blocks are present.
    sim::Rng rng(seed);
    std::vector<char> present(static_cast<std::size_t>(nb) * nb, 0);
    for (unsigned i = 0; i < nb; ++i) {
        for (unsigned j = 0; j < nb; ++j) {
            present[i * nb + j] =
                (i == j) || rng.uniform() < 0.45 ? 1 : 0;
        }
    }

    for (unsigned k = 0; k < nb; ++k) {
        // lu0: factorize the diagonal block.
        prog.spawn(flops(2.0 / 3.0 * b3),
                   {{blockAddr(k, k), rt::Dir::InOut}});

        // fwd: row panel.
        for (unsigned j = k + 1; j < nb; ++j) {
            if (!present[k * nb + j])
                continue;
            prog.spawn(flops(b3), {{blockAddr(k, k), rt::Dir::In},
                                   {blockAddr(k, j), rt::Dir::InOut}});
        }
        // bdiv: column panel.
        for (unsigned i = k + 1; i < nb; ++i) {
            if (!present[i * nb + k])
                continue;
            prog.spawn(flops(b3), {{blockAddr(k, k), rt::Dir::In},
                                   {blockAddr(i, k), rt::Dir::InOut}});
        }
        // bmod: trailing update; fills in blocks (they become present).
        for (unsigned i = k + 1; i < nb; ++i) {
            if (!present[i * nb + k])
                continue;
            for (unsigned j = k + 1; j < nb; ++j) {
                if (!present[k * nb + j])
                    continue;
                present[i * nb + j] = 1;
                prog.spawn(flops(2.0 * b3),
                           {{blockAddr(i, k), rt::Dir::In},
                            {blockAddr(k, j), rt::Dir::In},
                            {blockAddr(i, j), rt::Dir::InOut}});
            }
        }
    }
    prog.taskwait();
    return prog;
}

void
registerSparseLuWorkloads(spec::WorkloadRegistry &reg)
{
    reg.add({"sparselu",
             "sparse blocked LU factorization (kastors)",
             {{"nb", 8, 1, 10'000, "matrix dimension in blocks"},
              {"bs", 6, 1, 10'000, "block dimension in doubles"},
              {"seed", 42, 0, std::numeric_limits<std::uint64_t>::max(),
               "sparsity-pattern RNG seed"}},
             [](const spec::WorkloadArgs &a) {
                 return sparseLu(static_cast<unsigned>(a.at("nb")),
                                 static_cast<unsigned>(a.at("bs")),
                                 a.at("seed"));
             }});
}

} // namespace picosim::apps
