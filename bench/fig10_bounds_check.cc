/**
 * @file
 * Reproduces Figure 10: experimental speedups of every benchmark input
 * compared with the platform's MTT-derived theoretical bound
 * MS(t) = min(t / Lo, 8), Lo measured on Task-Chain (1 dep) -- one panel
 * per platform. Points should sit at or below their bound, approaching
 * it for well-parallelizable workloads.
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/fig_common.hh"

using namespace picosim;
using namespace picosim::bench;

namespace
{

void
panel(const char *name, const std::vector<MatrixRow> &rows, double lo,
      double (MatrixRow::*speedup)() const)
{
    std::printf("\n# Figure 10 panel: %s (Lo = %.0f cycles)\n", name, lo);
    std::printf("%-14s %-12s %10s %9s %9s %9s\n", "program", "input",
                "task_size", "speedup", "bound", "bound_ok");
    unsigned violations = 0;
    for (const auto &r : rows) {
        const double s = (r.*speedup)();
        const double bound =
            lo > 0 ? std::min(r.meanTaskSize / lo, 8.0) : 8.0;
        // Allow 15% slack: Lo is measured on a different workload.
        const bool ok = s <= bound * 1.15;
        violations += ok ? 0 : 1;
        std::printf("%-14s %-12s %10.0f %9.2f %9.2f %9s\n",
                    r.program.c_str(), r.label.c_str(), r.meanTaskSize, s,
                    bound, ok ? "yes" : "NO");
    }
    std::printf("# bound violations: %u / %zu\n", violations, rows.size());
}

} // namespace

int
main()
{
    const unsigned n = quickMode() ? 64 : 256;
    const spec::RunSpec chain = canonicalSpec(
        "task-chain", {{"tasks", n}, {"deps", 1}, {"payload", 10}});

    const auto loOf = [&](rt::RuntimeKind kind) {
        spec::RunSpec s = chain;
        s.runtime = kind;
        return lifetimeOverhead(s);
    };
    const double lo_ph = loOf(rt::RuntimeKind::Phentos);
    const double lo_rv = loOf(rt::RuntimeKind::NanosRV);
    const double lo_sw = loOf(rt::RuntimeKind::NanosSW);

    const auto rows = runFigure9Matrix();

    panel("Phentos", rows, lo_ph, &MatrixRow::speedupPh);
    panel("Nanos-RV", rows, lo_rv, &MatrixRow::speedupRv);
    panel("Nanos-SW", rows, lo_sw, &MatrixRow::speedupSw);
    return 0;
}
