/**
 * @file
 * Domain example: the paper's motivating scenario. Sweep blackscholes
 * block sizes (task granularity) and watch the software runtime collapse
 * on fine tasks while the tightly-integrated scheduler keeps scaling --
 * the "task granularity wall" of Section I, measured end to end.
 *
 * The whole sweep (6 block sizes x 4 runtimes) runs as one batch on the
 * harness's worker pool; each point simulates on its own System.
 */

#include <cstdio>
#include <vector>

#include "apps/workloads.hh"
#include "runtime/harness.hh"

using namespace picosim;

int
main()
{
    const std::vector<unsigned> blocks = {8u, 16u, 32u, 64u, 128u, 256u};
    const std::vector<rt::RuntimeKind> kinds = {
        rt::RuntimeKind::Serial, rt::RuntimeKind::NanosSW,
        rt::RuntimeKind::NanosRV, rt::RuntimeKind::Phentos};

    std::vector<rt::Program> progs;
    for (const unsigned block : blocks)
        progs.push_back(apps::blackscholes(4096, block));
    const auto results = rt::runMatrix(progs, kinds);

    std::printf("blackscholes, 4096 options, 8 cores\n");
    std::printf("%-6s %8s %12s %10s %10s %10s\n", "block", "tasks",
                "task_cycles", "Nanos-SW", "Nanos-RV", "Phentos");

    for (std::size_t b = 0; b < blocks.size(); ++b) {
        // Look results up by runtime kind, not by column position.
        const auto at = [&](rt::RuntimeKind kind) -> const rt::RunResult & {
            for (std::size_t k = 0; k < kinds.size(); ++k)
                if (kinds[k] == kind)
                    return results[b][k];
            std::abort(); // kind not part of this sweep
        };
        const rt::RunResult &serial = at(rt::RuntimeKind::Serial);
        const auto speedup = [&](rt::RuntimeKind kind) {
            const rt::RunResult &r = at(kind);
            return r.completed ? static_cast<double>(serial.cycles) /
                                     static_cast<double>(r.cycles)
                               : 0.0;
        };
        std::printf("%-6u %8llu %12.0f %9.2fx %9.2fx %9.2fx\n", blocks[b],
                    static_cast<unsigned long long>(serial.tasks),
                    serial.meanTaskSize, speedup(rt::RuntimeKind::NanosSW),
                    speedup(rt::RuntimeKind::NanosRV),
                    speedup(rt::RuntimeKind::Phentos));
    }

    std::printf("\nReading: at block 8 (fine tasks) only the "
                "HW-accelerated runtimes deliver speedup;\nby block 256 "
                "(coarse tasks) the runtimes converge, as in paper "
                "Figure 9.\n");
    return 0;
}
