/**
 * @file
 * google-benchmark microbenchmarks of the scheduling stack itself:
 * per-task hardware pipeline throughput, dependence-table pressure, and
 * end-to-end runtime overheads at several dependence counts. These are
 * ablation-style numbers backing the per-experiment analysis (they also
 * double as a performance regression net for the simulator).
 */

#include <benchmark/benchmark.h>

#include "bench/bench_util.hh"
#include "picos/picos.hh"
#include "rocc/task_packets.hh"
#include "runtime/harness.hh"
#include "sim/clock.hh"
#include "sim/stats.hh"
#include "spec/engine.hh"

using namespace picosim;

namespace
{

/** Push-process-retire n independent tasks straight into bare Picos. */
void
BM_PicosPipeline(benchmark::State &state)
{
    const auto ndeps = static_cast<unsigned>(state.range(0));
    for (auto _ : state) {
        sim::Clock clock;
        sim::StatGroup stats;
        picos::Picos picos(clock, picos::PicosParams{}, stats);

        rocc::TaskDescriptor desc;
        for (unsigned d = 0; d < ndeps; ++d)
            desc.deps.push_back(
                {0x1000ull + d * 64, rocc::Dir::Out});

        const unsigned n = 64;
        unsigned retired = 0;
        std::uint32_t buf[3];
        unsigned got = 0;
        std::size_t pushed = 0;
        std::vector<std::uint32_t> pkts;
        for (unsigned t = 0; t < n; ++t) {
            desc.swId = t;
            auto p = rocc::encodeNonZero(desc);
            p.resize(rocc::kDescriptorPackets, 0);
            pkts.insert(pkts.end(), p.begin(), p.end());
        }
        while (retired < n) {
            if (pushed < pkts.size() && picos.subPush(pkts[pushed]))
                ++pushed;
            if (picos.readyValid()) {
                buf[got++] = picos.readyPop();
                if (got == 3) {
                    got = 0;
                    picos.retirePush(buf[0]);
                    ++retired;
                }
            }
            picos.tick();
            clock.advanceTo(clock.now() + 1);
        }
        state.counters["cycles_per_task"] = benchmark::Counter(
            static_cast<double>(clock.now()) / n);
    }
}
BENCHMARK(BM_PicosPipeline)->Arg(0)->Arg(1)->Arg(7)->Arg(15);

/** End-to-end lifetime overhead per runtime (1 core, empty payloads). */
void
BM_RuntimeOverhead(benchmark::State &state)
{
    spec::RunSpec s;
    s.workload = "task-free";
    s.wl = {{"tasks", 64}, {"deps", 1}, {"payload", 10}};
    s.runtime = static_cast<rt::RuntimeKind>(state.range(0));
    s.cores = 1;
    s.canonicalize();
    for (auto _ : state) {
        const rt::RunResult res = bench::runJob(s);
        state.counters["overhead_cycles"] =
            benchmark::Counter(res.overheadPerTask());
    }
}
BENCHMARK(BM_RuntimeOverhead)
    ->Arg(static_cast<int>(rt::RuntimeKind::Phentos))
    ->Arg(static_cast<int>(rt::RuntimeKind::NanosRV))
    ->Arg(static_cast<int>(rt::RuntimeKind::NanosAXI))
    ->Arg(static_cast<int>(rt::RuntimeKind::NanosSW));

/** Simulator throughput: evaluated cycles per wall second. */
void
BM_SimulatorThroughput(benchmark::State &state)
{
    spec::RunSpec s;
    s.workload = "blackscholes";
    s.wl = {{"options", 4096}, {"block", 16}};
    s.canonicalize();
    for (auto _ : state) {
        const rt::RunResult res = bench::runJob(s);
        benchmark::DoNotOptimize(res.cycles);
    }
}
BENCHMARK(BM_SimulatorThroughput)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
