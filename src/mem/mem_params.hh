/**
 * @file
 * Parameters of the modeled memory system.
 *
 * The prototype (Section VI-A1): per-core 32 KiB, 8-way, cache-coherent L1
 * data caches implementing MESI; no shared L2, so dirty lines move between
 * cores through main memory. Main memory runs at 667 MHz against the 80 MHz
 * core clock, which keeps miss penalties moderate in core cycles.
 */

#ifndef PICOSIM_MEM_MEM_PARAMS_HH
#define PICOSIM_MEM_MEM_PARAMS_HH

#include "sim/types.hh"

namespace picosim::mem
{

struct MemParams
{
    unsigned lineBytes = 64;

    /** 32 KiB / 64 B line / 8 ways = 64 sets. */
    unsigned l1Sets = 64;
    unsigned l1Ways = 8;

    /** L1 load-use hit latency in core cycles. */
    Cycle hitLatency = 2;

    /**
     * Clean-line fill from main memory, in core cycles. DRAM at 667 MHz
     * serving an 80 MHz core keeps this low relative to desktop systems.
     */
    Cycle missLatency = 22;

    /**
     * Extra cost when the line is Modified in a remote L1: MESI (unlike
     * MOESI) cannot forward dirty data cache-to-cache, so the owner writes
     * back through main memory before the requester refills (Section V-B).
     */
    Cycle dirtyRemoteExtra = 28;

    /** Invalidation round-trip added to a write that finds remote sharers. */
    Cycle invalidateExtra = 8;

    /** Extra cycles for an atomic read-modify-write beyond the write path. */
    Cycle atomicExtra = 6;
};

} // namespace picosim::mem

#endif // PICOSIM_MEM_MEM_PARAMS_HH
