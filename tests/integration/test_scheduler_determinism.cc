/**
 * @file
 * Determinism regression suite for the timing-wheel scheduler.
 *
 * Every seed-golden workload is re-run under the new scheduler in BOTH
 * evaluation modes and must reproduce the golden cycle counts
 * bit-identically; on top of the cycle counts, the full component-stat
 * dump of an EventDriven run must equal the TickWorld dump — the
 * event-driven schedule may skip idle evaluations, but no skipped
 * evaluation is allowed to change any modeled counter. Repeated runs
 * must be bitwise-stable, including the kernel's own evaluation
 * metrics.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>

#include "apps/workloads.hh"
#include "cpu/system.hh"
#include "runtime/harness.hh"

using namespace picosim;
using namespace picosim::rt;

namespace
{

struct Golden
{
    const char *workload;
    RuntimeKind kind;
    Cycle cycles;
};

// The seed-golden table (default HarnessParams, 8 cores, serial forced
// to 1) — duplicated from test_seed_equivalence so a regression in one
// suite cannot silently weaken the other.
constexpr Golden kGoldens[] = {
    {"task-free", RuntimeKind::Serial, 257'280},
    {"task-free", RuntimeKind::NanosSW, 5'043'488},
    {"task-free", RuntimeKind::NanosRV, 978'924},
    {"task-free", RuntimeKind::NanosAXI, 1'189'170},
    {"task-free", RuntimeKind::Phentos, 51'566},
    {"task-chain", RuntimeKind::Serial, 257'280},
    {"task-chain", RuntimeKind::NanosSW, 4'589'870},
    {"task-chain", RuntimeKind::NanosRV, 2'689'474},
    {"task-chain", RuntimeKind::NanosAXI, 3'097'835},
    {"task-chain", RuntimeKind::Phentos, 289'118},
};

Program
namedWorkload(const char *name)
{
    return std::string(name) == "task-free" ? apps::taskFree(256, 1, 1000)
                                            : apps::taskChain(256, 1, 1000);
}

/** Run one golden config and capture (final cycle, full stat dump). */
std::pair<Cycle, std::string>
runAndDump(const Golden &g, sim::EvalMode mode)
{
    const Program prog = namedWorkload(g.workload);
    cpu::SystemParams sp;
    sp.evalMode = mode;
    sp.numCores = g.kind == RuntimeKind::Serial ? 1 : 8;
    cpu::System sys(sp);
    auto runtime = makeRuntime(g.kind, CostModel{});
    runtime->install(sys, prog);
    EXPECT_TRUE(sys.run(50'000'000'000ull));
    EXPECT_TRUE(runtime->finished());
    std::ostringstream dump;
    sys.stats().dump(dump);
    return {sys.clock().now(), dump.str()};
}

std::string
testName(const Golden &g)
{
    std::string name =
        std::string(g.workload) + "_" + std::string(kindName(g.kind));
    for (char &c : name)
        if (c == '-')
            c = '_';
    return name;
}

} // namespace

class SchedulerDeterminism : public ::testing::TestWithParam<Golden>
{
};

TEST_P(SchedulerDeterminism, GoldenCyclesAndStatsInBothModes)
{
    const Golden &g = GetParam();

    const auto ev = runAndDump(g, sim::EvalMode::EventDriven);
    const auto tw = runAndDump(g, sim::EvalMode::TickWorld);

    // Golden cycle counts, both kernels.
    EXPECT_EQ(ev.first, g.cycles);
    EXPECT_EQ(tw.first, g.cycles);

    // Every modeled counter must agree between the kernels: skipping
    // idle evaluations is only legal because idle ticks are pure no-ops.
    EXPECT_EQ(ev.second, tw.second);
}

TEST_P(SchedulerDeterminism, RepeatedRunsAreBitwiseStable)
{
    const Golden &g = GetParam();
    const Program prog = namedWorkload(g.workload);

    const RunResult a = runProgram(g.kind, prog);
    const RunResult b = runProgram(g.kind, prog);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.cycles, g.cycles);
    EXPECT_EQ(a.evaluatedCycles, b.evaluatedCycles);
    EXPECT_EQ(a.componentTicks, b.componentTicks);
}

INSTANTIATE_TEST_SUITE_P(SeedGoldens, SchedulerDeterminism,
                         ::testing::ValuesIn(kGoldens),
                         [](const auto &info) {
                             return testName(info.param);
                         });

namespace
{

/** Run one golden config at a given host-thread count (and optionally a
 *  forced PDES partition on a sharded topology). */
std::pair<Cycle, std::string>
runThreaded(const Golden &g, unsigned hostThreads,
            cpu::PdesParams::Partition partition, unsigned shards,
            unsigned clusters, unsigned domains = 0)
{
    const Program prog = namedWorkload(g.workload);
    cpu::SystemParams sp;
    sp.numCores = g.kind == RuntimeKind::Serial ? 2 : 8;
    sp.topology.schedShards = shards;
    sp.topology.clusters = clusters;
    sp.pdes.partition = partition;
    sp.pdes.hostThreads = hostThreads;
    sp.pdes.domains = domains;
    cpu::System sys(sp);
    auto runtime = makeRuntime(g.kind, CostModel{});
    runtime->install(sys, prog);
    EXPECT_TRUE(sys.run(50'000'000'000ull));
    EXPECT_TRUE(runtime->finished());
    std::ostringstream dump;
    sys.stats().dump(dump);
    return {sys.clock().now(), dump.str()};
}

} // namespace

// With the default single-Picos topology there is no partitionable cut,
// so any --host-threads value must fall back to the sequential kernel
// and reproduce the seed goldens bit-identically. This pins the
// fallback rule: asking for threads never changes results when PDES
// cannot engage.
TEST_P(SchedulerDeterminism, HostThreadsSeedGoldens)
{
    const Golden &g = GetParam();
    const Program prog = namedWorkload(g.workload);
    for (unsigned threads : {1u, 2u, 4u}) {
        cpu::SystemParams sp;
        sp.numCores = g.kind == RuntimeKind::Serial ? 1 : 8;
        sp.pdes.hostThreads = threads;
        cpu::System sys(sp);
        ASSERT_FALSE(sys.pdesActive());
        auto runtime = makeRuntime(g.kind, CostModel{});
        runtime->install(sys, prog);
        EXPECT_TRUE(sys.run(50'000'000'000ull));
        EXPECT_TRUE(runtime->finished());
        EXPECT_EQ(sys.clock().now(), g.cycles)
            << "hostThreads=" << threads;
    }
}

// The core PDES determinism contract: a forced 2-domain partition on a
// sharded topology must produce bit-identical results (final cycle AND
// every modeled counter in the full stat dump) at 1, 2 and 4 host
// threads. The 1-thread run executes the identical windowed schedule on
// the main thread, so any divergence at N threads is a race, not a
// modeling choice.
TEST_P(SchedulerDeterminism, HostThreadsPartitionedBitIdentical)
{
    const Golden &g = GetParam();
    const auto one = runThreaded(g, 1, cpu::PdesParams::Partition::Force,
                                 2, 2, /*domains=*/2);
    for (unsigned threads : {2u, 4u}) {
        const auto many = runThreaded(
            g, threads, cpu::PdesParams::Partition::Force, 2, 2,
            /*domains=*/2);
        EXPECT_EQ(one.first, many.first) << "hostThreads=" << threads;
        EXPECT_EQ(one.second, many.second) << "hostThreads=" << threads;
    }
}

// The many-domain generalization of the same contract, on a 4-cluster
// topology whose full cut is 6 domains: a folded 3-way cut (all four
// managers round-robin onto one manager domain), a prime 5-way cut
// (managers folded 2+2... onto three), and the full 6-way cut must each
// be bit-identical across host-thread counts — and, since every cut
// >= 3 simulates the *same* machine (identical port latencies, only the
// domain labels differ), bit-identical to each other as well.
TEST(SchedulerDeterminismManyDomain, OddAndFoldedDomainCutsBitIdentical)
{
    const Golden g{"task-chain", RuntimeKind::Phentos, 0};
    std::pair<Cycle, std::string> reference;
    for (unsigned domains : {3u, 5u, 6u}) {
        const auto one = runThreaded(
            g, 1, cpu::PdesParams::Partition::Force, 2, 4, domains);
        for (unsigned threads : {2u, 4u}) {
            const auto many = runThreaded(
                g, threads, cpu::PdesParams::Partition::Force, 2, 4,
                domains);
            EXPECT_EQ(one.first, many.first)
                << "domains=" << domains << " hostThreads=" << threads;
            EXPECT_EQ(one.second, many.second)
                << "domains=" << domains << " hostThreads=" << threads;
        }
        if (domains == 3u)
            reference = one;
        else
            EXPECT_EQ(reference, one)
                << "domain labeling leaked into results, domains="
                << domains;
    }
}

// Domain-count resolution rules (pure function of the topology — never
// of hostThreads): auto picks the full cut when the cluster link is a
// real hop and the classic 2-way cut otherwise; explicit requests clamp
// to what the component graph supports; 1 is not a partition.
TEST(SchedulerDeterminismManyDomain, DomainCountResolution)
{
    cpu::SystemParams sp;
    sp.numCores = 8;
    sp.topology.schedShards = 2;
    sp.topology.clusters = 4;
    sp.pdes.partition = cpu::PdesParams::Partition::Force;
    {
        cpu::System sys(sp); // auto, clusterLinkCycles >= 1
        EXPECT_TRUE(sys.pdesActive());
        EXPECT_EQ(sys.pdesDomains(), 6u);
    }
    sp.pdes.domains = 99;
    {
        cpu::System sys(sp); // clamped to 2 + clusters
        EXPECT_EQ(sys.pdesDomains(), 6u);
    }
    sp.pdes.domains = 2;
    {
        cpu::System sys(sp); // the classic cut, on request
        EXPECT_EQ(sys.pdesDomains(), 2u);
    }
    sp.pdes.domains = 1;
    EXPECT_THROW(cpu::System sys(sp), std::runtime_error);
    sp.pdes.domains = 0;
    sp.topology.clusterLinkCycles = 0;
    {
        cpu::System sys(sp); // zero-cycle cluster link: auto stays 2-way
        EXPECT_EQ(sys.pdesDomains(), 2u);
    }
}
