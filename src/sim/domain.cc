/**
 * @file
 * The conservative-PDES windowed run loop (see sim/domain.hh for the
 * model and the determinism argument). Key structural property: the SAME
 * windowed schedule executes at every host thread count — one thread
 * iterates the domains in id order, N threads split them — and every
 * cross-domain merge happens in the single-threaded coordination step at
 * the window barrier, in a fixed order.
 *
 * Window bounds come from the pairwise lookahead matrix: windowEnd is
 * the min over LIVE source domains of cachedNext + minOutLookahead, so
 * idle domains neither constrain the window nor pay per-window work
 * (their cachedNext is at or past every boundary until a drain wakes
 * them). The bound is additionally capped at the wheel horizon past the
 * global next event, which bounds done()-predicate latency on sparse
 * link graphs without affecting results.
 */

#include "sim/kernel.hh"

#include <algorithm>
#include <barrier>
#include <thread>

#include "sim/log.hh"

namespace picosim::sim
{

namespace
{

/** Domain currently executing a window on this host thread; null in the
 *  coordinator step and in harness code outside any window. */
thread_local Domain *t_currentDomain = nullptr;

/** Saturating cycle addition (kCycleNever absorbs). */
Cycle
satAdd(Cycle a, Cycle b)
{
    return a >= kCycleNever - b ? kCycleNever : a + b;
}

} // namespace

void
Simulator::requestWakeWindowed(Ticked *component, Cycle cycle)
{
    Domain &dst = domainAt(component->domain_);
    Domain *cur = t_currentDomain;
    if (cur != nullptr && cur != &dst) {
        // Cross-domain wake mid-window: the destination is (potentially)
        // executing on another thread. Capture it in this domain's
        // outbox; the boundary drain applies it single-threaded.
        cur->outbox[component->domain_].push_back(
            WakeRequest{component, cycle});
        cur->outboxDirty = true;
        return;
    }
    // Same-domain (the common case), or coordinator/harness context
    // where no window is in flight: apply directly.
    applyLocalWake(dst, component, cycle);
}

void
Simulator::markLinkDirty(unsigned linkId)
{
    Domain *cur = t_currentDomain;
    if (cur != nullptr)
        cur->dirtyLinks.push_back(linkId);
    else
        harnessDirtyLinks_.push_back(linkId);
}

void
Simulator::runDomainWindow(Domain &d, Cycle windowEnd)
{
    t_currentDomain = &d;
    while (true) {
        // firstOnOrAfter(now) includes the current cycle, so boundary-
        // drained events landing exactly at the window start are found
        // before the clock moves.
        const Cycle next = refreshNextEventCycle(d);
        if (next >= windowEnd) { // kCycleNever included
            // The refresh value is this domain's EXACT next event: store
            // it so the coordinator (and the idle-skip check) can bound
            // future windows without touching the wheel.
            d.cachedNext = next;
            break;
        }
        d.clock.advanceTo(next);
        evaluateDue(d);
    }
    t_currentDomain = nullptr;
}

void
Simulator::drainBoundary(Cycle boundary)
{
    // Registered links first (staged port traffic replays with its own
    // recorded send cycles), then captured bare wakes — both in fixed
    // link-id/domain order, single-threaded. Only links actually staged
    // into this window (dirty) are touched, plus endpoint-less links
    // whose producers cannot mark them, so barrier cost tracks live
    // traffic rather than the total link count.
    linkScratch_.clear();
    linkScratch_.insert(linkScratch_.end(), allPairsLinks_.begin(),
                        allPairsLinks_.end());
    linkScratch_.insert(linkScratch_.end(), harnessDirtyLinks_.begin(),
                        harnessDirtyLinks_.end());
    harnessDirtyLinks_.clear();
    for (unsigned i = 0; i < numDomains(); ++i) {
        Domain &d = domainAt(i);
        linkScratch_.insert(linkScratch_.end(), d.dirtyLinks.begin(),
                            d.dirtyLinks.end());
        d.dirtyLinks.clear();
    }
    std::sort(linkScratch_.begin(), linkScratch_.end());
    linkScratch_.erase(
        std::unique(linkScratch_.begin(), linkScratch_.end()),
        linkScratch_.end());
    for (unsigned id : linkScratch_)
        crossLinks_[id].drain();

    for (unsigned src = 0; src < numDomains(); ++src) {
        Domain &s = domainAt(src);
        if (!s.outboxDirty)
            continue;
        s.outboxDirty = false;
        for (unsigned dst = 0; dst < numDomains(); ++dst) {
            if (s.outbox[dst].empty())
                continue;
            Domain &dd = domainAt(dst);
            for (const WakeRequest &w : s.outbox[dst]) {
                // Clamp into the next window: the destination already
                // executed up to the boundary, and keeping every merged
                // event at >= boundary keeps windows disjoint.
                applyLocalWake(dd, w.component,
                               std::max(w.cycle, boundary));
            }
            s.outbox[dst].clear();
        }
    }
}

void
Simulator::mergeWindowCycles()
{
    // Count DISTINCT evaluated cycles across all domains: two domains
    // evaluating the same cycle is one globally-evaluated cycle, exactly
    // as the sequential kernel would count it.
    unsigned nonEmpty = 0;
    Domain *only = nullptr;
    for (unsigned i = 0; i < numDomains(); ++i) {
        Domain &d = domainAt(i);
        if (!d.windowCycles.empty()) {
            ++nonEmpty;
            only = &d;
        }
    }
    if (nonEmpty == 0)
        return;
    if (nonEmpty == 1) {
        // Per-domain window cycles are strictly increasing, so a single
        // active domain needs no sort/dedup — the common case once idle
        // domains fast-forward.
        evaluatedCycles_ +=
            static_cast<std::uint64_t>(only->windowCycles.size());
        only->windowCycles.clear();
        return;
    }
    mergeScratch_.clear();
    for (unsigned i = 0; i < numDomains(); ++i) {
        Domain &d = domainAt(i);
        mergeScratch_.insert(mergeScratch_.end(), d.windowCycles.begin(),
                             d.windowCycles.end());
        d.windowCycles.clear();
    }
    std::sort(mergeScratch_.begin(), mergeScratch_.end());
    evaluatedCycles_ += static_cast<std::uint64_t>(
        std::unique(mergeScratch_.begin(), mergeScratch_.end()) -
        mergeScratch_.begin());
}

Cycle
Simulator::cachedGlobalNext() const
{
    Cycle next = kCycleNever;
    for (unsigned i = 0; i < numDomains(); ++i)
        next = std::min(next, domainAt(i).cachedNext);
    return next;
}

Cycle
Simulator::computeWindowEnd(Cycle globalNext) const
{
    // min over LIVE sources s of nextEvent(s) + minOut(s): traffic from
    // s cannot be sent before s's next event, so nothing can arrive
    // anywhere before this bound. Idle sources drop their row — that is
    // the whole win on sparse topologies. The wheel-horizon cap bounds
    // done()-check latency when the link graph leaves the window
    // unconstrained; it never shrinks a window below globalNext + 1.
    Cycle end = kCycleNever;
    for (unsigned s = 0; s < numDomains(); ++s) {
        const Cycle next = domainAt(s).cachedNext;
        if (next == kCycleNever)
            continue;
        end = std::min(end, satAdd(next, minOutLookahead(s)));
    }
    return std::min(end, satAdd(globalNext, EventWheel::kBuckets));
}

void
Simulator::advanceAllClocksTo(Cycle c)
{
    for (unsigned i = 0; i < numDomains(); ++i)
        domainAt(i).clock.advanceTo(c); // no-op when already past c
}

bool
Simulator::runWindowed(const DonePredicate &done, Cycle limit)
{
    const Cycle start = main_.clock.now();
    const unsigned ndom = numDomains();

    bool stop = false;
    bool result = false;
    Cycle windowEnd = 0;

    // The single-threaded coordination step between windows; runs with
    // every worker parked at the barrier (or inline at 1 thread), so it
    // may freely touch all domains. Stop conditions are only observable
    // at boundaries — the final clocks are advanced to the global
    // maximum across domains, a deterministic value.
    const auto coordinate = [&]() noexcept {
        ++windowBarriers_;
        drainBoundary(windowEnd);
        mergeWindowCycles();
        Cycle maxClock = 0;
        for (unsigned i = 0; i < ndom; ++i)
            maxClock = std::max(maxClock, domainAt(i).clock.now());
        if (cpEvery_ != 0 && windowEnd != 0 && windowEnd >= cpNext_) {
            // Window barriers are the PDES checkpoint cuts: every
            // domain has completed the window ending at windowEnd, so
            // that cycle labels a deterministic global state. The label
            // is the barrier cycle itself (not a stride multiple) —
            // the window sequence is identical at every host thread
            // count, so the labels still reproduce exactly. The hook
            // must not throw (noexcept completion step); the harness
            // guarantees that.
            cpHook_(windowEnd);
            cpNext_ = windowEnd - windowEnd % cpEvery_ + cpEvery_;
        }
        if (done()) {
            advanceAllClocksTo(maxClock);
            stop = true;
            result = true;
            return;
        }
        if (stopCheck_ && stopCheck_()) {
            // Window barriers are the PDES cancellation points: every
            // domain is parked, so stopping here ends the run at a
            // deterministic boundary of the windowed schedule. The
            // check must not throw — this lambda is a noexcept barrier
            // completion step.
            advanceAllClocksTo(maxClock);
            stop = true;
            result = false;
            stoppedByCheck_ = true;
            return;
        }
        const Cycle next = cachedGlobalNext();
        if (next == kCycleNever) {
            // Fully idle system: either done() holds now or the
            // simulation can never progress again.
            advanceAllClocksTo(maxClock);
            stop = true;
            result = done();
            return;
        }
        if (next - start >= limit) {
            advanceAllClocksTo(std::max(maxClock, next));
            stop = true;
            result = false;
            return;
        }
        windowEnd = computeWindowEnd(next);
    };

    // Idle-window fast-forward: a domain whose cached next event is at
    // or past the boundary would evaluate nothing — skip the wheel scan
    // and revalidation entirely. The cache is a lower bound on the true
    // next event, so a skip can never lose work, and the decision is a
    // pure function of deterministic window state (identical at every
    // thread count and labeling).
    const auto runOrSkip = [&](Domain &d) {
        if (d.cachedNext >= windowEnd) {
            ++d.windowsSkipped;
            return;
        }
        ++d.windowsRun;
        runDomainWindow(d, windowEnd);
    };

    const unsigned nThreads =
        std::min(std::max(1u, hostThreads_), ndom);

    if (nThreads <= 1) {
        // One host thread runs the identical windowed schedule, domains
        // in id order — the reference the multi-threaded run must match.
        while (true) {
            coordinate();
            if (stop)
                break;
            for (unsigned i = 0; i < ndom; ++i)
                runOrSkip(domainAt(i));
        }
        return result;
    }

    std::barrier bar(nThreads, [&]() noexcept { coordinate(); });
    const auto worker = [&](unsigned tid) {
        while (true) {
            bar.arrive_and_wait(); // completion step runs coordinate()
            if (stop)
                break;
            for (unsigned i = tid; i < ndom; i += nThreads)
                runOrSkip(domainAt(i));
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(nThreads - 1);
    for (unsigned t = 1; t < nThreads; ++t)
        threads.emplace_back(worker, t);
    worker(0);
    for (std::thread &t : threads)
        t.join();
    return result;
}

void
Simulator::runForWindowed(Cycle n)
{
    // Bounded-time runs execute the same windowed schedule on the
    // calling thread regardless of hostThreads — they are harness
    // warmup/probe helpers, not the measured hot loop.
    const Cycle end = main_.clock.now() + n;
    const unsigned ndom = numDomains();
    Cycle windowEnd = 0;
    while (true) {
        ++windowBarriers_;
        drainBoundary(windowEnd);
        mergeWindowCycles();
        const Cycle next = cachedGlobalNext();
        if (next == kCycleNever || next >= end)
            break;
        windowEnd = std::min(computeWindowEnd(next), end);
        for (unsigned i = 0; i < ndom; ++i) {
            Domain &d = domainAt(i);
            if (d.cachedNext >= windowEnd) {
                ++d.windowsSkipped;
                continue;
            }
            ++d.windowsRun;
            runDomainWindow(d, windowEnd);
        }
    }
    advanceAllClocksTo(end);
}

} // namespace picosim::sim
