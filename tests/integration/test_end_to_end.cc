/**
 * @file
 * Integration tests: whole-system properties across modules, including
 * the paper's deadlock-avoidance scenarios (Section IV-C) and the
 * headline performance orderings at small scale.
 */

#include <gtest/gtest.h>

#include "apps/workloads.hh"
#include "runtime/harness.hh"

using namespace picosim;
using namespace picosim::rt;

namespace
{

HarnessParams
quick()
{
    HarnessParams hp;
    hp.cycleLimit = 2'000'000'000ull;
    return hp;
}

} // namespace

TEST(EndToEnd, DeadlockScenario1SingleThreadSubmitsAndRuns)
{
    // A single thread both generates and executes tasks while the
    // reservation station is tiny: blocking submission would deadlock,
    // the non-blocking ISA must survive (Section IV-C, scenario 1).
    HarnessParams hp = quick();
    hp.numCores = 1;
    hp.system.picos.trsEntries = 4;
    const Program prog = apps::taskChain(64, 1, 100);
    for (auto kind : {RuntimeKind::Phentos, RuntimeKind::NanosRV}) {
        const auto r = runProgram(kind, prog, hp);
        EXPECT_TRUE(r.completed) << kindName(kind);
    }
}

TEST(EndToEnd, DeadlockScenario2TinyRoutingQueue)
{
    // Work-fetch requests far outnumber routing-queue slots; the
    // non-blocking Ready Task Request must keep the system live
    // (Section IV-C, scenario 2).
    HarnessParams hp = quick();
    hp.system.manager.routingQueueDepth = 1;
    const Program prog = apps::taskFree(100, 1, 500);
    for (auto kind : {RuntimeKind::Phentos, RuntimeKind::NanosRV}) {
        const auto r = runProgram(kind, prog, hp);
        EXPECT_TRUE(r.completed) << kindName(kind);
    }
}

TEST(EndToEnd, TinyDependenceTableStillCorrect)
{
    HarnessParams hp = quick();
    // Two sets of four ways: far fewer live addresses than the 150 the
    // program uses, but enough ways that one task's own dependences can
    // never self-block a set.
    hp.system.picos.dctSets = 2;
    hp.system.picos.dctWays = 4;
    const Program prog = apps::taskFree(50, 3, 500);
    const auto r = runProgram(RuntimeKind::Phentos, prog, hp);
    EXPECT_TRUE(r.completed);
}

TEST(EndToEnd, SparseLuRunsOnAllRuntimes)
{
    const Program prog = apps::sparseLu(6, 8);
    for (auto kind : {RuntimeKind::NanosSW, RuntimeKind::NanosRV,
                      RuntimeKind::NanosAXI, RuntimeKind::Phentos}) {
        const auto r = runProgram(kind, prog, quick());
        EXPECT_TRUE(r.completed) << kindName(kind);
    }
}

TEST(EndToEnd, JacobiDependencesLimitParallelismCorrectly)
{
    // One-row blocks with halo deps: speedup must stay meaningful but
    // the program must complete with bitwise-identical task counts.
    const Program prog = apps::jacobi(32, 1, 4);
    const auto r = runWithSpeedup(RuntimeKind::Phentos, prog, quick());
    ASSERT_TRUE(r.completed);
    EXPECT_EQ(r.tasks, 32u * 4u);
}

TEST(EndToEnd, StreamBarrBarriersDrainBetweenKernels)
{
    const Program prog = apps::streamBarr(16, 64, 2);
    const auto r = runProgram(RuntimeKind::Phentos, prog, quick());
    EXPECT_TRUE(r.completed);
}

TEST(EndToEnd, OverheadOrderingMatchesFigure7)
{
    // Lifetime overhead: Phentos << Nanos-RV < Nanos-AXI < Nanos-SW.
    HarnessParams hp = quick();
    hp.numCores = 1;
    const Program prog = apps::taskFree(96, 1, 10);
    double lo[4];
    const RuntimeKind kinds[] = {RuntimeKind::Phentos, RuntimeKind::NanosRV,
                                 RuntimeKind::NanosAXI, RuntimeKind::NanosSW};
    for (int i = 0; i < 4; ++i) {
        const auto r = runProgram(kinds[i], prog, hp);
        ASSERT_TRUE(r.completed) << kindName(kinds[i]);
        lo[i] = r.overheadPerTask();
    }
    EXPECT_LT(lo[0] * 20, lo[1]); // Phentos at least 20x below Nanos-RV
    EXPECT_LT(lo[1], lo[2]);
    EXPECT_LT(lo[2], lo[3]);
}

TEST(EndToEnd, FineGrainSpeedupGapGrowsAsGranularityShrinks)
{
    // Hypothesis 3 of Section VI: the runtime gap narrows as task
    // granularity increases.
    HarnessParams hp = quick();
    const Program fine = apps::blackscholes(4096, 8);
    const Program coarse = apps::blackscholes(4096, 256);

    const auto fine_ph = runProgram(RuntimeKind::Phentos, fine, hp);
    const auto fine_sw = runProgram(RuntimeKind::NanosSW, fine, hp);
    const auto coarse_ph = runProgram(RuntimeKind::Phentos, coarse, hp);
    const auto coarse_sw = runProgram(RuntimeKind::NanosSW, coarse, hp);
    ASSERT_TRUE(fine_ph.completed && fine_sw.completed &&
                coarse_ph.completed && coarse_sw.completed);

    const double gap_fine = static_cast<double>(fine_sw.cycles) /
                            static_cast<double>(fine_ph.cycles);
    const double gap_coarse = static_cast<double>(coarse_sw.cycles) /
                              static_cast<double>(coarse_ph.cycles);
    EXPECT_GT(gap_fine, gap_coarse);
    EXPECT_GT(gap_fine, 5.0);   // dramatic at fine grain
    EXPECT_LT(gap_coarse, 3.0); // modest at coarse grain
}

TEST(EndToEnd, StatsAreInternallyConsistent)
{
    HarnessParams hp = quick();
    const Program prog = apps::taskFree(64, 2, 1'000);

    cpu::System sys(hp.system);
    auto runtime = makeRuntime(RuntimeKind::Phentos, hp.costs);
    runtime->install(sys, prog);
    ASSERT_TRUE(sys.run(hp.cycleLimit));
    ASSERT_TRUE(runtime->finished());

    auto &st = sys.stats();
    EXPECT_EQ(st.scalarValue("picos.retires"), 64.0);
    EXPECT_EQ(st.scalarValue("manager.tuplesEncoded"), 64.0);
    EXPECT_EQ(st.scalarValue("manager.readyDelivered"), 64.0);
    EXPECT_EQ(st.scalarValue("manager.zeroPadPackets"), 64.0 * 39.0);
    EXPECT_EQ(sys.picos().tasksProcessed(), 64u);
    EXPECT_TRUE(sys.picos().quiescent());
}

class EndToEndCoreSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(EndToEndCoreSweep, SpeedupBoundedByCores)
{
    HarnessParams hp = quick();
    hp.numCores = GetParam();
    const Program prog = apps::taskFree(48, 1, 200'000);
    const auto r = runWithSpeedup(RuntimeKind::Phentos, prog, hp);
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.speedup(), static_cast<double>(GetParam()) + 0.05);
    if (GetParam() >= 2) {
        EXPECT_GT(r.speedup(), 1.2);
    }
}

INSTANTIATE_TEST_SUITE_P(Cores, EndToEndCoreSweep,
                         ::testing::Values(1, 2, 4, 8));
