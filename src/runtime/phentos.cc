#include "runtime/phentos.hh"

#include <algorithm>

#include "rocc/task_packets.hh"
#include "runtime/addr_space.hh"
#include "runtime/task_window.hh"
#include "sim/log.hh"

namespace picosim::rt
{

void
Phentos::install(cpu::System &sys, const Program &prog)
{
    sys_ = &sys;
    prog_ = &prog;
    perCore_.assign(sys.numCores(), PerCore{});
    submitted_ = 0;
    sharedRetired_ = 0;
    executed_ = 0;
    workerSubmitted_ = 0;
    doneFlag_ = false;
    masterDone_ = false;
    nested_ = prog.hasNested();
    childRetired_.assign(nested_ ? prog.numTasks() : 0, 0);
    hwInFlight_ = 0;
    inlineExecuted_ = 0;
    inFlightLimit_ = 0;
    const unsigned max_deps = prog.maxDeps();
    liveWriters_.clear();
    if (nested_)
        inFlightLimit_ =
            taskWindowLimit(sys.params().picos, sys.numCores(), max_deps);

    // When the program's last action already is an explicit taskwait, the
    // master's final barrier would re-poll for a target the explicit wait
    // just drained — skip it (it costs an extra flush + poll round).
    skipFinalBarrier_ = !prog.actions.empty() &&
                        prog.actions.back().kind == Action::Kind::Taskwait;

    // Pre-processor macro in real Phentos: element size of one cache line
    // covers up to 7 dependences, two lines cover up to 15 (Section V-B).
    elemLines_ = max_deps <= 7 ? 1 : 2;

    sys.installThread(0, master(sys.hartApi(0)));
    for (CoreId c = 1; c < sys.numCores(); ++c)
        sys.installThread(c, worker(sys.hartApi(c)));
}

bool
Phentos::finished() const
{
    return masterDone_ && executed_ == prog_->numTasks() &&
           sharedRetired_ == prog_->numTasks();
}

Cycle
Phentos::backoffOf(unsigned fails) const
{
    const Cycle backoff = cm_.taskwaitPollMin * (1 + fails);
    return std::min(backoff, cm_.taskwaitPollMax);
}

sim::CoTask<void>
Phentos::flushPrivate(cpu::HartApi &api)
{
    PerCore &pc = perCore_[api.coreId()];
    if (pc.privateRetired == 0)
        co_return;
    co_await api.atomicRmw(layout::kPhentosRetireCounter);
    sharedRetired_ += pc.privateRetired;
    pc.privateRetired = 0;
    pc.fetchFails = 0;
}

sim::CoTask<bool>
Phentos::submitTask(cpu::HartApi &api, const Task &task,
                    bool allow_throttle)
{
    if (allow_throttle && hwInFlight_ >= inFlightLimit_)
        co_return false; // saturated: the caller drains + runs inline

    co_await api.delay(cm_.phentosSubmitFixed);

    // Fill this task's element of the Task Metadata Array (single writer:
    // the submitting thread owns the swID until a worker fetches it).
    const Addr meta = layout::phentosMetadataAddr(task.id, elemLines_);
    for (unsigned l = 0; l < elemLines_; ++l)
        co_await api.write(meta + l * layout::kLine);

    // Announce the burst; on failure run a ready task instead of blocking
    // (deadlock scenario 1, Section IV-C).
    const auto num_deps = static_cast<unsigned>(task.deps.size());
    const unsigned packets = rocc::nonZeroPackets(num_deps);
    // GCC 12 note: co_await results are always hoisted into named locals
    // (never awaited inside a condition) to dodge a coroutine codegen bug.
    while (true) {
        const bool announced = co_await api.submissionRequest(packets);
        if (announced)
            break;
        const bool ran = co_await tryExecuteOne(api);
        if (!ran)
            co_await api.delay(backoffOf(1));
    }

    // Stream the descriptor with Submit Three Packets (the non-zero packet
    // count is always a multiple of three, Section IV-E3).
    rocc::TaskDescriptor desc;
    desc.swId = task.id;
    desc.deps = task.deps;
    const std::vector<std::uint32_t> pkts = rocc::encodeNonZero(desc);
    for (std::size_t i = 0; i < pkts.size(); i += 3) {
        const std::uint64_t rs1 =
            (static_cast<std::uint64_t>(pkts[i]) << 32) | pkts[i + 1];
        const std::uint64_t rs2 = pkts[i + 2];
        unsigned stalls = 0;
        while (true) {
            const bool sent = co_await api.submitThreePackets(rs1, rs2);
            if (sent)
                break;
            // Buffer full: the manager drains one packet per cycle, so a
            // short spin usually suffices. Under persistent backpressure
            // (scheduler full of unexecuted tasks) run one ready task --
            // fetch/retire use separate queues, so the burst stays intact
            // ("perform alternative work actions", Section IV-B).
            co_await api.delay(cm_.phentosSubmitRetry);
            if (++stalls >= 16) {
                stalls = 0;
                co_await tryExecuteOne(api);
            }
        }
    }
    ++submitted_;
    ++hwInFlight_;
    if (inFlightLimit_ > 0)
        registerWriters(liveWriters_, task.deps);
    if (api.coreId() != 0)
        ++workerSubmitted_;
    if (trace_)
        trace_->onSubmit(task.id, sys_->clock().now());
    co_await api.delay(cm_.phentosLoop);
    co_return true;
}

sim::CoTask<void>
Phentos::executeInline(cpu::HartApi &api, const Task &task)
{
    // The task never touches the accelerator, but it joins the same
    // submission/retirement bookkeeping so barriers (children submitted
    // before the parent's retirement is counted) and scoped waits stay
    // exact. Dependence safety is the caller's contract: the task's
    // earlier siblings — the only tasks OmpSs dependences can name —
    // have already drained. Violations fail loudly.
    checkInlineSafe(liveWriters_, task.deps);
    ++submitted_;
    ++inlineExecuted_;
    if (api.coreId() != 0)
        ++workerSubmitted_;
    if (trace_) {
        trace_->onSubmit(task.id, sys_->clock().now());
        trace_->onDispatch(task.id, sys_->clock().now(), api.coreId());
    }
    co_await api.executePayload(task.payload);
    co_await runBody(api, task);
    if (task.parent != kNoParent) {
        co_await api.atomicRmw(layout::phentosChildCounterAddr(task.parent));
        ++childRetired_[task.parent];
    }
    if (trace_)
        trace_->onRetire(task.id, sys_->clock().now());
    ++perCore_[api.coreId()].privateRetired;
    ++executed_;
    co_await api.delay(cm_.phentosLoop);
}

sim::CoTask<void>
Phentos::runBody(cpu::HartApi &api, const Task &task)
{
    // Replay the task body's nested operations on the executing core:
    // child submissions go through this core's own delegate port (worker-
    // side submission), scoped waits spin on the parent's counter line.
    std::uint64_t spawned = 0;
    for (const BodyOp &op : prog_->bodyOf(task.id)) {
        if (op.kind == BodyOp::Kind::SpawnChild) {
            const Task &child = prog_->taskById(op.child);
            const bool ok =
                co_await submitTask(api, child, /*allow_throttle=*/true);
            if (!ok) {
                // Task window saturated. Drain this task's own children
                // (their producers are all submitted siblings, so the
                // subtree can always make progress), then run the new
                // child inline — its earlier siblings have now retired,
                // so its dependences are satisfied without the hardware.
                co_await taskwaitChildren(api, task.id, spawned);
                const bool retried =
                    co_await submitTask(api, child, /*allow_throttle=*/true);
                if (!retried)
                    co_await executeInline(api, child);
            }
            ++spawned;
        } else {
            co_await taskwaitChildren(api, task.id, op.waitTarget);
        }
    }
}

sim::CoTask<bool>
Phentos::tryExecuteOne(cpu::HartApi &api)
{
    PerCore &pc = perCore_[api.coreId()];

    if (pc.outstandingReq == 0) {
        const bool requested = co_await api.readyTaskRequest();
        if (requested)
            ++pc.outstandingReq;
    }

    const auto sw = co_await api.fetchSwId();
    if (!sw) {
        ++pc.fetchFails;
        if (pc.fetchFails >= cm_.phentosFlushThreshold)
            co_await flushPrivate(api);
        co_return false;
    }
    const auto pid = co_await api.fetchPicosId();
    if (!pid)
        sim::panic("FetchPicosId failed after successful FetchSwId");
    if (pc.outstandingReq > 0)
        --pc.outstandingReq;

    // Fetch the task metadata: one or two line transfers (design goal 3).
    const Addr meta = layout::phentosMetadataAddr(*sw, elemLines_);
    for (unsigned l = 0; l < elemLines_; ++l)
        co_await api.read(meta + l * layout::kLine);

    const Task &task = prog_->taskById(*sw);
    if (trace_)
        trace_->onDispatch(task.id, sys_->clock().now(), api.coreId());
    co_await api.executePayload(task.payload);
    if (nested_)
        co_await runBody(api, task);
    co_await api.retireTask(*pid);
    --hwInFlight_;
    if (inFlightLimit_ > 0)
        releaseWriters(liveWriters_, task.deps);
    if (nested_ && task.parent != kNoParent) {
        // Parent -> child retire notification: bump the parent's scoped
        // counter line so its taskwaitChildren() can observe the drain.
        co_await api.atomicRmw(layout::phentosChildCounterAddr(task.parent));
        ++childRetired_[task.parent];
    }
    if (trace_)
        trace_->onRetire(task.id, sys_->clock().now());

    ++pc.privateRetired;
    ++executed_;
    co_await api.delay(cm_.phentosLoop);
    co_return true;
}

sim::CoTask<void>
Phentos::taskwait(cpu::HartApi &api, std::uint64_t target)
{
    while (true) {
        co_await flushPrivate(api);
        co_await api.read(layout::kPhentosRetireCounter);
        if (sharedRetired_ >= target)
            break;
        const bool ran = co_await tryExecuteOne(api);
        if (!ran) {
            // The paper's taskwait checks the counter only every N cycles
            // with N in [10, 100] depending on the taskwait method; the
            // blocking-wait method polls at the large fixed N (Section
            // V-B) — the counter is written by every core, so re-reading
            // it faster only adds coherence traffic. The ramped backoff
            // (backoffOf) is for the work-*fetch* paths, where a ready
            // task may appear at any cycle.
            co_await api.delay(cm_.taskwaitPollMax);
        }
    }
}

sim::CoTask<void>
Phentos::taskwaitAll(cpu::HartApi &api)
{
    // Nested-program barrier: drain every task submitted so far *and*
    // their subtrees. The target is re-read each poll because in-flight
    // parents keep growing submitted_; a child is always submitted before
    // its parent's retirement is counted, so sharedRetired_ == submitted_
    // implies the whole subtree has drained (and every private counter
    // has been flushed).
    while (true) {
        co_await flushPrivate(api);
        co_await api.read(layout::kPhentosRetireCounter);
        if (sharedRetired_ >= submitted_)
            break;
        const bool ran = co_await tryExecuteOne(api);
        if (!ran)
            co_await api.delay(cm_.taskwaitPollMax);
    }
}

sim::CoTask<void>
Phentos::taskwaitChildren(cpu::HartApi &api, std::uint64_t id,
                          std::uint64_t target)
{
    // Scoped taskwait: wait for this task's own children only. Unrelated
    // siblings may still be in flight. The waiting worker keeps executing
    // ready tasks (its own children included) so occupying the core can
    // never deadlock the subtree.
    unsigned idle_polls = 0;
    while (true) {
        co_await api.read(layout::phentosChildCounterAddr(id));
        if (childRetired_[id] >= target)
            break;
        const bool ran = co_await tryExecuteOne(api);
        if (ran) {
            idle_polls = 0;
        } else {
            co_await api.delay(backoffOf(++idle_polls));
        }
    }
}

sim::CoTask<void>
Phentos::master(cpu::HartApi &api)
{
    for (const Action &a : prog_->actions) {
        if (a.kind == Action::Kind::Spawn) {
            const bool ok =
                co_await submitTask(api, a.task, /*allow_throttle=*/nested_);
            if (!ok) {
                // Saturated: drain everything in flight. The window is
                // provably empty afterwards (every hardware submission
                // has retired), so this submission cannot be throttled.
                co_await taskwaitAll(api);
                co_await submitTask(api, a.task);
            }
        } else if (nested_) {
            co_await taskwaitAll(api);
        } else {
            co_await taskwait(api, submitted_);
        }
    }
    if (!skipFinalBarrier_) {
        if (nested_)
            co_await taskwaitAll(api);
        else
            co_await taskwait(api, prog_->numTasks());
    }
    doneFlag_ = true;
    co_await api.write(layout::kPhentosDoneFlag);
    masterDone_ = true;
}

sim::CoTask<void>
Phentos::worker(cpu::HartApi &api)
{
    unsigned idle_polls = 0;
    while (true) {
        const bool ran = co_await tryExecuteOne(api);
        if (ran) {
            idle_polls = 0;
            continue;
        }
        ++idle_polls;
        co_await api.read(layout::kPhentosDoneFlag);
        if (doneFlag_) {
            co_await flushPrivate(api);
            break;
        }
        co_await api.delay(backoffOf(idle_polls));
    }
}

} // namespace picosim::rt
