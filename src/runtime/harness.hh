/**
 * @file
 * One-call experiment harness: build a fresh system, install a runtime,
 * run a program, collect results.
 */

#ifndef PICOSIM_RUNTIME_HARNESS_HH
#define PICOSIM_RUNTIME_HARNESS_HH

#include <memory>
#include <string_view>

#include "cpu/system.hh"
#include "runtime/cost_model.hh"
#include "runtime/runtime.hh"

namespace picosim::rt
{

enum class RuntimeKind { Serial, NanosSW, NanosRV, NanosAXI, Phentos };

std::string_view kindName(RuntimeKind kind);

/** Factory for the runtime model of @p kind. */
std::unique_ptr<Runtime> makeRuntime(RuntimeKind kind, const CostModel &cm);

struct HarnessParams
{
    unsigned numCores = 8;
    CostModel costs{};
    cpu::SystemParams system{};
    Cycle cycleLimit = 50'000'000'000ull;
};

/**
 * Run @p prog under @p kind on a fresh system. Serial runs are forced to
 * one core. The serialCycles field is left zero; use measureSpeedup or
 * fill it from a separate Serial run.
 */
RunResult runProgram(RuntimeKind kind, const Program &prog,
                     const HarnessParams &params = {});

/** Run serial + the given runtime and fill in the speedup baseline. */
RunResult runWithSpeedup(RuntimeKind kind, const Program &prog,
                         const HarnessParams &params = {});

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_HARNESS_HH
