#include "runtime/serial.hh"

namespace picosim::rt
{

sim::CoTask<void>
Serial::runTask(cpu::HartApi &api, const Program &prog, const Task &task)
{
    co_await api.delay(cm_.call);
    co_await api.executePayload(task.payload);
    ++executed_;
    // Nested bodies run depth-first in body order; by the time a scoped
    // taskwait is reached its children have already completed, so it is a
    // no-op serially (flat tasks have empty bodies and add no awaits).
    for (const BodyOp &op : prog.bodyOf(task.id)) {
        if (op.kind == BodyOp::Kind::SpawnChild)
            co_await runTask(api, prog, prog.taskById(op.child));
    }
}

sim::CoTask<void>
Serial::thread(cpu::HartApi &api, const Program &prog)
{
    for (const Action &a : prog.actions) {
        if (a.kind != Action::Kind::Spawn)
            continue; // taskwait is a no-op serially
        co_await runTask(api, prog, a.task);
    }
    finished_ = true;
}

void
Serial::install(cpu::System &sys, const Program &prog)
{
    sys.installThread(0, thread(sys.hartApi(0), prog));
}

} // namespace picosim::rt
