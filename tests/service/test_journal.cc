/**
 * @file
 * Unit tests for the durable job journal: framing round-trips, the
 * CRC-32 reference vector, torn-tail and corrupt-record handling (the
 * half-written frame a `kill -9` leaves behind must be detected, warned
 * about, and skipped — never replayed), and atomic compaction.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "service/journal.hh"

using namespace picosim::svc;
namespace fs = std::filesystem;

namespace
{

/** A fresh, empty journal directory under the test temp root. */
std::string
freshDir(const std::string &name)
{
    const fs::path dir = fs::path(::testing::TempDir()) / name;
    fs::remove_all(dir);
    fs::create_directories(dir);
    return dir.string();
}

void
rawAppend(const std::string &dir, const std::string &bytes)
{
    std::ofstream out(Journal::filePath(dir),
                      std::ios::binary | std::ios::app);
    out << bytes;
}

} // namespace

TEST(Crc32, MatchesTheIeeeReferenceVector)
{
    // The canonical CRC-32 check value ("123456789" -> 0xCBF43926).
    EXPECT_EQ(crc32("123456789"), 0xCBF43926u);
    EXPECT_EQ(crc32(""), 0u);
    EXPECT_NE(crc32("a"), crc32("b"));
}

TEST(Journal, MissingFileReadsAsEmpty)
{
    const std::string dir = freshDir("journal_missing");
    std::ostringstream diag;
    EXPECT_TRUE(Journal::readAll(dir, &diag).empty());
    EXPECT_TRUE(diag.str().empty()); // first boot is not a warning
}

TEST(Journal, AppendReadAllRoundTrip)
{
    const std::string dir = freshDir("journal_roundtrip");
    const std::vector<std::string> payloads = {
        R"({"type":"submit","id":1})",
        R"({"type":"row","result":"{\"status\":\"ok\"}"})",
        "payload with spaces and a trailing brace }",
    };
    {
        Journal j(dir);
        for (const std::string &p : payloads)
            j.append(p);
    }
    // Reopening for append must preserve what is there.
    {
        Journal j(dir);
        j.append("fourth");
    }
    std::ostringstream diag;
    const std::vector<std::string> got = Journal::readAll(dir, &diag);
    ASSERT_EQ(got.size(), 4u);
    for (std::size_t i = 0; i < payloads.size(); ++i)
        EXPECT_EQ(got[i], payloads[i]);
    EXPECT_EQ(got[3], "fourth");
    EXPECT_TRUE(diag.str().empty());
}

TEST(Journal, TornTailIsDroppedLoudly)
{
    const std::string dir = freshDir("journal_torn");
    {
        Journal j(dir);
        j.append("one");
        j.append("two");
        j.append("three");
    }
    // The frame header promises 500 payload bytes that never made it to
    // disk — exactly what a kill -9 mid-append leaves behind.
    rawAppend(dir, "PJ1 500 deadbeef\ntruncated-garbage");

    std::ostringstream diag;
    const std::vector<std::string> got = Journal::readAll(dir, &diag);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[2], "three");
    EXPECT_NE(diag.str().find("torn record"), std::string::npos)
        << diag.str();
    EXPECT_NE(diag.str().find("3 intact record"), std::string::npos)
        << diag.str();
}

TEST(Journal, CorruptRecordStopsTheReplay)
{
    const std::string dir = freshDir("journal_crc");
    {
        Journal j(dir);
        j.append("good");
    }
    // A complete, well-formed frame whose checksum does not match its
    // payload: bit rot, or a record from a different write torn across
    // a power cut. Everything from it on is discarded.
    rawAppend(dir, "PJ1 5 00000000\nhello\n");
    {
        // Journal(dir) appends blindly — it must not "heal" the log.
        Journal j(dir);
        j.append("after-the-corruption");
    }

    std::ostringstream diag;
    const std::vector<std::string> got = Journal::readAll(dir, &diag);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], "good");
    EXPECT_NE(diag.str().find("CRC mismatch"), std::string::npos)
        << diag.str();
}

TEST(Journal, GarbageHeaderStopsTheReplay)
{
    const std::string dir = freshDir("journal_garbage");
    {
        Journal j(dir);
        j.append("good");
    }
    rawAppend(dir, "this is not a frame\n");

    std::ostringstream diag;
    EXPECT_EQ(Journal::readAll(dir, &diag).size(), 1u);
    EXPECT_NE(diag.str().find("unrecognized frame header"),
              std::string::npos)
        << diag.str();
}

TEST(Journal, RewriteReplacesTheLogAtomically)
{
    const std::string dir = freshDir("journal_rewrite");
    {
        Journal j(dir);
        j.append("dead-one");
        j.append("dead-two");
        j.append("live");
    }
    Journal::rewrite(dir, {"live"});

    std::ostringstream diag;
    const std::vector<std::string> got = Journal::readAll(dir, &diag);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0], "live");
    EXPECT_TRUE(diag.str().empty());
    // No temp file left behind.
    EXPECT_FALSE(fs::exists(Journal::filePath(dir) + ".tmp"));

    // The rewritten log is a normal journal: appends keep working.
    {
        Journal j(dir);
        j.append("post-compaction");
    }
    EXPECT_EQ(Journal::readAll(dir, nullptr).size(), 2u);
}
