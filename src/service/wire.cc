#include "service/wire.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "spec/workload_registry.hh"

namespace picosim::svc::wire
{

std::string
jsonString(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    for (const char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
    return out;
}

namespace
{

const char *
statusName(rt::RunStatus s)
{
    return rt::runStatusName(s);
}

rt::RunStatus
statusFromName(const std::string &name)
{
    for (const rt::RunStatus s :
         {rt::RunStatus::Ok, rt::RunStatus::CycleLimit,
          rt::RunStatus::Cancelled, rt::RunStatus::TimedOut,
          rt::RunStatus::Error, rt::RunStatus::Dropped}) {
        if (name == rt::runStatusName(s))
            return s;
    }
    throw spec::SpecError("unknown run status '" + name + "'");
}

void
appendField(std::string &out, const char *key, unsigned long long v)
{
    out += '"';
    out += key;
    out += "\":";
    out += std::to_string(v);
}

} // namespace

std::string
runResultJson(const rt::RunResult &res)
{
    std::string out = "{";
    out += "\"runtime\":" + jsonString(res.runtime);
    out += ",\"program\":" + jsonString(res.program);
    out += ",\"completed\":";
    out += res.completed ? "true" : "false";
    out += ",\"status\":";
    out += jsonString(statusName(res.status));
    out += ",\"error\":" + jsonString(res.error);
    out += ',';

    const auto num = [&out](const char *key, std::uint64_t v) {
        appendField(out, key, static_cast<unsigned long long>(v));
        out += ',';
    };
    num("cycles", res.cycles);
    num("serialPayload", res.serialPayload);
    num("tasks", res.tasks);

    // %.17g round-trips every IEEE-754 double bit-exactly, so the
    // client reprints the very value the server computed.
    char mean[40];
    std::snprintf(mean, sizeof(mean), "%.17g", res.meanTaskSize);
    out += "\"meanTaskSize\":";
    out += mean;
    out += ',';

    num("serialCycles", res.serialCycles);
    num("evaluatedCycles", res.evaluatedCycles);
    num("componentTicks", res.componentTicks);
    num("tickWorldTicks", res.tickWorldTicks);
    num("busTransactions", res.busTransactions);
    num("busStallCycles", res.busStallCycles);
    num("dramStallCycles", res.dramStallCycles);
    num("mshrStallCycles", res.mshrStallCycles);
    num("schedSubStalls", res.schedSubStalls);
    num("schedRoutingStalls", res.schedRoutingStalls);
    num("schedReadyStalls", res.schedReadyStalls);
    num("schedGatewayStallCycles", res.schedGatewayStallCycles);
    num("crossShardEdges", res.crossShardEdges);
    num("workSteals", res.workSteals);
    num("workerSubmits", res.workerSubmits);
    num("resumedFromCycle", res.resumedFromCycle);
    appendField(out, "inlineTasks",
                static_cast<unsigned long long>(res.inlineTasks));
    out += '}';
    return out;
}

namespace
{

/** Cursor over flat JSON text. Throws SpecError with position info. */
struct JsonCursor
{
    const std::string &text;
    std::size_t pos = 0;

    [[noreturn]] void
    fail(const std::string &what) const
    {
        throw spec::SpecError("malformed JSON at byte " +
                              std::to_string(pos) + ": " + what);
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    char
    peek()
    {
        skipWs();
        if (pos >= text.size())
            fail("unexpected end of input");
        return text[pos];
    }

    void
    expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++pos;
    }

    std::string
    parseString()
    {
        expect('"');
        std::string out;
        while (true) {
            if (pos >= text.size())
                fail("unterminated string");
            const char c = text[pos++];
            if (c == '"')
                return out;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                fail("unterminated escape");
            const char e = text[pos++];
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (pos + 4 > text.size())
                    fail("truncated \\u escape");
                unsigned v = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text[pos++];
                    v <<= 4;
                    if (h >= '0' && h <= '9') v |= h - '0';
                    else if (h >= 'a' && h <= 'f') v |= h - 'a' + 10;
                    else if (h >= 'A' && h <= 'F') v |= h - 'A' + 10;
                    else fail("bad \\u escape digit");
                }
                if (v > 0xff)
                    fail("non-ASCII \\u escape unsupported");
                out += static_cast<char>(v);
                break;
            }
            default: fail("unknown escape");
            }
        }
    }

    /** Number / true / false / null, returned verbatim. */
    std::string
    parseScalar()
    {
        skipWs();
        const std::size_t start = pos;
        while (pos < text.size() && text[pos] != ',' &&
               text[pos] != '}' && text[pos] != ' ' &&
               text[pos] != '\t' && text[pos] != '\n' &&
               text[pos] != '\r')
            ++pos;
        if (pos == start)
            fail("expected a value");
        return text.substr(start, pos - start);
    }
};

} // namespace

std::map<std::string, std::string>
parseFlatJson(const std::string &text)
{
    JsonCursor cur{text};
    std::map<std::string, std::string> out;
    cur.expect('{');
    if (cur.peek() == '}')
        return out;
    while (true) {
        const std::string key = cur.parseString();
        cur.expect(':');
        out[key] =
            cur.peek() == '"' ? cur.parseString() : cur.parseScalar();
        const char c = cur.peek();
        if (c == '}')
            return out;
        cur.expect(',');
    }
}

std::string
parseJsonString(const std::string &text)
{
    JsonCursor cur{text};
    return cur.parseString();
}

rt::RunResult
runResultFromJson(const std::string &json)
{
    const std::map<std::string, std::string> kv = parseFlatJson(json);
    rt::RunResult res;

    const auto str = [&](const char *key, std::string &dst) {
        const auto it = kv.find(key);
        if (it != kv.end())
            dst = it->second;
    };
    const auto num = [&](const char *key, auto &dst) {
        const auto it = kv.find(key);
        if (it != kv.end())
            dst = static_cast<std::remove_reference_t<decltype(dst)>>(
                std::strtoull(it->second.c_str(), nullptr, 10));
    };

    str("runtime", res.runtime);
    str("program", res.program);
    str("error", res.error);
    if (const auto it = kv.find("completed"); it != kv.end())
        res.completed = it->second == "true";
    if (const auto it = kv.find("status"); it != kv.end())
        res.status = statusFromName(it->second);
    if (const auto it = kv.find("meanTaskSize"); it != kv.end())
        res.meanTaskSize = std::strtod(it->second.c_str(), nullptr);

    num("cycles", res.cycles);
    num("serialPayload", res.serialPayload);
    num("tasks", res.tasks);
    num("serialCycles", res.serialCycles);
    num("evaluatedCycles", res.evaluatedCycles);
    num("componentTicks", res.componentTicks);
    num("tickWorldTicks", res.tickWorldTicks);
    num("busTransactions", res.busTransactions);
    num("busStallCycles", res.busStallCycles);
    num("dramStallCycles", res.dramStallCycles);
    num("mshrStallCycles", res.mshrStallCycles);
    num("schedSubStalls", res.schedSubStalls);
    num("schedRoutingStalls", res.schedRoutingStalls);
    num("schedReadyStalls", res.schedReadyStalls);
    num("schedGatewayStallCycles", res.schedGatewayStallCycles);
    num("crossShardEdges", res.crossShardEdges);
    num("workSteals", res.workSteals);
    num("workerSubmits", res.workerSubmits);
    num("resumedFromCycle", res.resumedFromCycle);
    num("inlineTasks", res.inlineTasks);
    return res;
}

int
connectTcp(const std::string &host, unsigned short port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return -1;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
        ::close(fd);
        errno = EINVAL;
        return -1;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) != 0) {
        const int err = errno;
        ::close(fd);
        errno = err;
        return -1;
    }
    return fd;
}

bool
sendAll(int fd, const std::string &data)
{
    std::size_t sent = 0;
    while (sent < data.size()) {
        // MSG_NOSIGNAL: a peer that disconnected mid-reply yields
        // EPIPE here instead of a process-killing SIGPIPE — the
        // daemon must outlive any one client.
        const ssize_t n = ::send(fd, data.data() + sent,
                                 data.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            return false;
        }
        sent += static_cast<std::size_t>(n);
    }
    return true;
}

bool
LineReader::fill()
{
    char chunk[4096];
    while (true) {
        const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n > 0) {
            buf_.append(chunk, static_cast<std::size_t>(n));
            return true;
        }
        if (n < 0 && errno == EINTR)
            continue;
        return false; // EOF or hard error
    }
}

bool
LineReader::readLine(std::string &out)
{
    while (true) {
        const std::size_t nl = buf_.find('\n');
        if (nl != std::string::npos) {
            out = buf_.substr(0, nl);
            buf_.erase(0, nl + 1);
            if (!out.empty() && out.back() == '\r')
                out.pop_back();
            return true;
        }
        if (maxLine_ != 0 && buf_.size() > maxLine_) {
            overflowed_ = true;
            return false;
        }
        if (!fill())
            return false;
    }
}

bool
LineReader::readExact(std::size_t n, std::string &out)
{
    while (buf_.size() < n)
        if (!fill())
            return false;
    out = buf_.substr(0, n);
    buf_.erase(0, n);
    return true;
}

} // namespace picosim::svc::wire
