/**
 * @file
 * Domain example: the paper's motivating scenario. Sweep blackscholes
 * block sizes (task granularity) and watch the software runtime collapse
 * on fine tasks while the tightly-integrated scheduler keeps scaling --
 * the "task granularity wall" of Section I, measured end to end.
 */

#include <cstdio>

#include "apps/workloads.hh"
#include "runtime/harness.hh"

using namespace picosim;

int
main()
{
    std::printf("blackscholes, 4096 options, 8 cores\n");
    std::printf("%-6s %8s %12s %10s %10s %10s\n", "block", "tasks",
                "task_cycles", "Nanos-SW", "Nanos-RV", "Phentos");

    for (unsigned block : {8u, 16u, 32u, 64u, 128u, 256u}) {
        const rt::Program prog = apps::blackscholes(4096, block);
        const rt::HarnessParams hp;

        const auto serial =
            rt::runProgram(rt::RuntimeKind::Serial, prog, hp);
        const auto speedup = [&](rt::RuntimeKind kind) {
            const auto r = rt::runProgram(kind, prog, hp);
            return r.completed ? static_cast<double>(serial.cycles) /
                                     static_cast<double>(r.cycles)
                               : 0.0;
        };

        std::printf("%-6u %8llu %12.0f %9.2fx %9.2fx %9.2fx\n", block,
                    static_cast<unsigned long long>(prog.numTasks()),
                    prog.meanTaskSize(),
                    speedup(rt::RuntimeKind::NanosSW),
                    speedup(rt::RuntimeKind::NanosRV),
                    speedup(rt::RuntimeKind::Phentos));
    }

    std::printf("\nReading: at block 8 (fine tasks) only the "
                "HW-accelerated runtimes deliver speedup;\nby block 256 "
                "(coarse tasks) the runtimes converge, as in paper "
                "Figure 9.\n");
    return 0;
}
