/**
 * @file
 * Command-line driver: run built-in workloads under any runtime on a
 * configurable system and print results plus hardware statistics. Multiple
 * workloads (comma-separated) are simulated in parallel on a worker pool.
 *
 * Usage:
 *   picosim_run [--list] [--workload=NAME[,NAME...]] [--runtime=KIND]
 *               [--cores=N] [--jobs=N] [--mode=event|tickworld]
 *               [--mem=inline|timed] [--mshrs=N] [--bus-bytes=N]
 *               [--mem-occupancy=N] [--sched-shards=N] [--clusters=N]
 *               [--steal=on|off] [--host-threads=N]
 *               [--pdes=auto|off|force] [--pdes-domains=auto|N]
 *               [--nested] [--stats] [--trace=FILE.json]
 *
 *   NAME: a Figure-9 input label substring, e.g. "blackscholes 4K B8",
 *         one of: task-free, task-chain, or a nested workload:
 *         cholesky-nested, mergesort-nested, task-tree.
 *   --nested: taskbench nested mode — task-free/task-chain become the
 *         equivalent recursive task trees (workers spawn the children).
 *   KIND: serial | nanos-sw | nanos-rv | nanos-axi | phentos
 *   --jobs: worker threads for multi-workload batches (default: hardware
 *           concurrency).
 *   --mode: kernel evaluation strategy (default: event).
 *   --mem:  memory model (default: inline). timed routes accesses through
 *           the contention-aware subsystem; --mshrs, --bus-bytes and
 *           --mem-occupancy tune its structure.
 *   --sched-shards / --clusters / --steal: scheduler topology. The
 *           default (1, 1) is the paper's single centralized Picos;
 *           larger values instantiate the sharded scaling layer with
 *           per-cluster managers and optional cross-cluster work
 *           stealing (on by default).
 *   --host-threads: host threads per simulated system (default 1). With
 *           a sharded topology, values > 1 run the conservative-PDES
 *           windowed kernel; results are bit-identical for any count.
 *   --pdes: domain partitioning policy (default auto = partition when
 *           --host-threads > 1). force partitions even at one thread
 *           (same windowed schedule, for determinism diffs); off never
 *           partitions. Single-Picos topologies always fall back to the
 *           sequential kernel.
 *   --pdes-domains: PDES domain count (default auto = derive from the
 *           topology: cores | one domain per cluster manager | the
 *           scheduler). N >= 2 requests exactly N domains, clamped to
 *           2 + clusters. Results are bit-identical for any value and
 *           any --host-threads; the count never depends on the thread
 *           count, only on the simulated topology.
 *
 * --stats / --trace need the simulated System inspectable after the run,
 * so they force the single-workload in-process path.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "apps/workloads.hh"
#include "runtime/harness.hh"
#include "runtime/nanos.hh"
#include "runtime/phentos.hh"
#include "runtime/serial.hh"
#include "runtime/task_trace.hh"

using namespace picosim;

namespace
{

constexpr const char *kValidRuntimes =
    "serial, nanos-sw, nanos-rv, nanos-axi, phentos";
constexpr const char *kValidMemModes = "inline, timed";
constexpr const char *kValidModes = "event, tickworld";

std::optional<rt::RuntimeKind>
parseKind(const std::string &s)
{
    if (s == "serial") return rt::RuntimeKind::Serial;
    if (s == "nanos-sw") return rt::RuntimeKind::NanosSW;
    if (s == "nanos-rv") return rt::RuntimeKind::NanosRV;
    if (s == "nanos-axi") return rt::RuntimeKind::NanosAXI;
    if (s == "phentos") return rt::RuntimeKind::Phentos;
    return std::nullopt;
}

std::optional<rt::Program>
buildWorkload(const std::string &name, bool nested)
{
    if (name == "task-free") {
        return nested ? apps::taskTree(4, 3, 1000, /*chained=*/false)
                      : apps::taskFree(256, 1, 1000);
    }
    if (name == "task-chain") {
        return nested ? apps::taskTree(4, 3, 1000, /*chained=*/true)
                      : apps::taskChain(256, 1, 1000);
    }
    if (name == "cholesky-nested")
        return apps::choleskyNested(10, 16);
    if (name == "mergesort-nested")
        return apps::mergesortNested(4096, 128);
    if (name == "task-tree")
        return apps::taskTree(4, 3, 1000);
    for (const auto &input : apps::figure9Inputs()) {
        const std::string full = input.program + " " + input.label;
        if (full.find(name) != std::string::npos)
            return input.build();
    }
    return std::nullopt;
}

std::optional<std::string>
argValue(int argc, char **argv, const char *flag)
{
    const std::string prefix = std::string(flag) + "=";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) == 0)
            return std::string(argv[i] + prefix.size());
    }
    return std::nullopt;
}

bool
hasFlag(int argc, char **argv, const char *flag)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], flag) == 0)
            return true;
    }
    return false;
}

/**
 * Strict numeric flag parsing: base-10 digits only (trailing garbage,
 * signs and hex prefixes are rejected, never truncated) and an explicit
 * valid range reported in the same style as the enum-flag messages.
 * @return false after printing the error; true with @p out untouched
 * when the flag is absent.
 */
bool
parseCountFlag(int argc, char **argv, const char *flag, unsigned min,
               unsigned max, unsigned &out)
{
    const auto v = argValue(argc, argv, flag);
    if (!v)
        return true;
    unsigned long long value = 0;
    bool ok = !v->empty() && v->size() <= 12;
    if (ok) {
        for (const char c : *v) {
            if (c < '0' || c > '9') {
                ok = false;
                break;
            }
            value = value * 10 + static_cast<unsigned>(c - '0');
        }
    }
    if (!ok || value < min || value > max) {
        std::fprintf(stderr, "%s expects an integer in [%u, %u], got "
                             "'%s'\n",
                     flag, min, max, v->c_str());
        return false;
    }
    out = static_cast<unsigned>(value);
    return true;
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> parts;
    std::stringstream ss(s);
    std::string part;
    while (std::getline(ss, part, ','))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

void
printResult(const rt::RunResult &res, unsigned cores)
{
    std::printf("workload  : %s (%llu tasks, mean size %.0f cycles)\n",
                res.program.c_str(),
                static_cast<unsigned long long>(res.tasks),
                res.meanTaskSize);
    std::printf("runtime   : %s on %u core(s)\n", res.runtime.c_str(),
                cores);
    std::printf("cycles    : %llu (%s)\n",
                static_cast<unsigned long long>(res.cycles),
                res.completed ? "completed" : "INCOMPLETE");
    std::printf("serial    : %llu cycles\n",
                static_cast<unsigned long long>(res.serialCycles));
    std::printf("speedup   : %.2fx\n", res.speedup());
    std::printf("wall time @80MHz: %.1f ms\n",
                static_cast<double>(res.cycles) / 80'000.0);
    if (res.tickWorldTicks > 0) {
        std::printf("kernel    : %llu component ticks over %llu cycles "
                    "(%.2fx fewer than tick-the-world)\n",
                    static_cast<unsigned long long>(res.componentTicks),
                    static_cast<unsigned long long>(res.evaluatedCycles),
                    res.componentTicks == 0
                        ? 0.0
                        : static_cast<double>(res.tickWorldTicks) /
                              static_cast<double>(res.componentTicks));
    }
    if (res.busTransactions > 0) {
        std::printf("contention: %llu bus transactions; stall cycles "
                    "bus %llu, dram %llu, mshr %llu\n",
                    static_cast<unsigned long long>(res.busTransactions),
                    static_cast<unsigned long long>(res.busStallCycles),
                    static_cast<unsigned long long>(res.dramStallCycles),
                    static_cast<unsigned long long>(res.mshrStallCycles));
    }
    if (res.schedSubStalls + res.schedRoutingStalls + res.schedReadyStalls +
            res.schedGatewayStallCycles + res.crossShardEdges +
            res.workSteals >
        0) {
        std::printf("scheduler : push stalls sub %llu, routing %llu, "
                    "ready %llu; gateway wait %llu cyc; "
                    "cross-shard edges %llu; steals %llu\n",
                    static_cast<unsigned long long>(res.schedSubStalls),
                    static_cast<unsigned long long>(res.schedRoutingStalls),
                    static_cast<unsigned long long>(res.schedReadyStalls),
                    static_cast<unsigned long long>(
                        res.schedGatewayStallCycles),
                    static_cast<unsigned long long>(res.crossShardEdges),
                    static_cast<unsigned long long>(res.workSteals));
    }
    if (res.workerSubmits > 0) {
        std::printf("nested    : %llu of %llu tasks submitted from worker "
                    "harts, %llu run inline (window full)\n",
                    static_cast<unsigned long long>(res.workerSubmits),
                    static_cast<unsigned long long>(res.tasks),
                    static_cast<unsigned long long>(res.inlineTasks));
    }
}

/** Single-workload path with the System kept inspectable (stats/trace). */
int
runInspectable(const std::string &wl, rt::RuntimeKind kind,
               const rt::HarnessParams &hp, bool nested,
               const std::optional<std::string> &trace_path, bool stats)
{
    const auto prog = buildWorkload(wl, nested);
    if (!prog) {
        std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                     wl.c_str());
        return 1;
    }

    cpu::SystemParams sp = hp.system;
    sp.numCores = kind == rt::RuntimeKind::Serial ? 1 : hp.numCores;
    cpu::System sys(sp);
    auto runtime = rt::makeRuntime(kind, hp.costs);

    rt::TaskTrace trace;
    if (trace_path) {
        trace.reset(prog->numTasks());
        if (auto *ph = dynamic_cast<rt::Phentos *>(runtime.get()))
            ph->setTrace(&trace);
        else if (auto *nn = dynamic_cast<rt::Nanos *>(runtime.get()))
            nn->setTrace(&trace);
    }

    runtime->install(sys, *prog);
    const bool ok = sys.run(hp.cycleLimit);

    const auto serial = rt::runProgram(rt::RuntimeKind::Serial, *prog, hp);

    rt::RunResult res;
    res.runtime = runtime->name();
    res.program = prog->name;
    res.completed = ok && runtime->finished();
    res.cycles = sys.clock().now();
    res.tasks = prog->numTasks();
    res.meanTaskSize = prog->meanTaskSize();
    res.serialCycles = serial.cycles;
    res.evaluatedCycles = sys.simulator().evaluatedCycles();
    res.componentTicks = sys.simulator().componentTicks();
    res.tickWorldTicks = sys.simulator().tickWorldTicks();
    res.workerSubmits = runtime->tasksSubmittedByWorkers();
    res.inlineTasks = runtime->tasksExecutedInline();
    rt::fillContentionStats(res, sys);
    printResult(res, sys.numCores());

    if (trace_path) {
        std::ofstream out(*trace_path);
        trace.writeChromeTrace(out, prog->name);
        std::printf("trace     : %s (queue %.0f cyc, service %.0f cyc)\n",
                    trace_path->c_str(), trace.meanQueueLatency(),
                    trace.meanServiceTime());
        if (trace.droppedRecords() > 0)
            std::printf("trace     : WARNING %llu events beyond the "
                        "%llu-record ceiling were dropped\n",
                        static_cast<unsigned long long>(
                            trace.droppedRecords()),
                        static_cast<unsigned long long>(
                            rt::TaskTrace::kMaxRecords));
    }
    if (stats) {
        std::printf("\n-- system statistics --\n");
        sys.stats().dump(std::cout);
        sys.memory().stats().dump(std::cout);
    }
    return res.completed ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    if (hasFlag(argc, argv, "--list")) {
        std::printf("workloads:\n  task-free\n  task-chain\n"
                    "  cholesky-nested\n  mergesort-nested\n  task-tree\n");
        for (const auto &input : apps::figure9Inputs())
            std::printf("  %s %s\n", input.program.c_str(),
                        input.label.c_str());
        std::printf("runtimes: serial nanos-sw nanos-rv nanos-axi "
                    "phentos\n");
        std::printf("memory models: inline timed\n");
        return 0;
    }

    const std::string wl =
        argValue(argc, argv, "--workload").value_or("blackscholes 4K B32");
    const std::string rtname =
        argValue(argc, argv, "--runtime").value_or("phentos");

    const auto kind = parseKind(rtname);
    if (!kind) {
        std::fprintf(stderr, "unknown runtime '%s' (valid: %s)\n",
                     rtname.c_str(), kValidRuntimes);
        return 1;
    }

    rt::HarnessParams hp;
    if (!parseCountFlag(argc, argv, "--cores", 1, 4096, hp.numCores))
        return 1;
    if (auto mode = argValue(argc, argv, "--mode")) {
        if (*mode == "event") {
            hp.system.evalMode = sim::EvalMode::EventDriven;
        } else if (*mode == "tickworld") {
            hp.system.evalMode = sim::EvalMode::TickWorld;
        } else {
            std::fprintf(stderr, "unknown mode '%s' (valid: %s)\n",
                         mode->c_str(), kValidModes);
            return 1;
        }
    }
    if (auto memmode = argValue(argc, argv, "--mem")) {
        if (*memmode == "inline") {
            hp.system.mem.mode = mem::MemMode::Inline;
        } else if (*memmode == "timed") {
            hp.system.mem.mode = mem::MemMode::Timed;
        } else {
            std::fprintf(stderr, "unknown memory model '%s' (valid: %s)\n",
                         memmode->c_str(), kValidMemModes);
            return 1;
        }
    }
    unsigned mem_occupancy = 0; // Cycle-typed param needs a widening copy
    if (!parseCountFlag(argc, argv, "--mshrs", 1, 100'000'000,
                        hp.system.mem.mshrs) ||
        !parseCountFlag(argc, argv, "--bus-bytes", 1, 100'000'000,
                        hp.system.mem.busBytesPerCycle) ||
        !parseCountFlag(argc, argv, "--mem-occupancy", 1, 100'000'000,
                        mem_occupancy)) {
        return 1;
    }
    if (mem_occupancy > 0)
        hp.system.mem.memOccupancy = mem_occupancy;

    // Scheduler topology: shards/clusters select the scaling layer;
    // (1, 1) keeps the paper's single centralized Picos.
    if (!parseCountFlag(argc, argv, "--sched-shards", 1, 64,
                        hp.system.topology.schedShards) ||
        !parseCountFlag(argc, argv, "--clusters", 1, 256,
                        hp.system.topology.clusters)) {
        return 1;
    }
    if (hp.system.topology.clusters > hp.numCores) {
        std::fprintf(stderr,
                     "--clusters=%u exceeds --cores=%u (each cluster "
                     "needs at least one core)\n",
                     hp.system.topology.clusters, hp.numCores);
        return 1;
    }
    if (auto steal = argValue(argc, argv, "--steal")) {
        if (*steal == "on") {
            hp.system.topology.workStealing = true;
        } else if (*steal == "off") {
            hp.system.topology.workStealing = false;
        } else {
            std::fprintf(stderr,
                         "unknown steal policy '%s' (valid: on, off)\n",
                         steal->c_str());
            return 1;
        }
    }

    // Conservative-PDES controls (see cpu::PdesParams).
    if (!parseCountFlag(argc, argv, "--host-threads", 1, 256,
                        hp.system.pdes.hostThreads))
        return 1;
    if (auto pdes = argValue(argc, argv, "--pdes")) {
        if (*pdes == "auto") {
            hp.system.pdes.partition = cpu::PdesParams::Partition::Auto;
        } else if (*pdes == "off") {
            hp.system.pdes.partition = cpu::PdesParams::Partition::Off;
        } else if (*pdes == "force") {
            hp.system.pdes.partition = cpu::PdesParams::Partition::Force;
        } else {
            std::fprintf(stderr,
                         "unknown pdes policy '%s' (valid: auto, off, "
                         "force)\n",
                         pdes->c_str());
            return 1;
        }
    }
    if (auto pd = argValue(argc, argv, "--pdes-domains")) {
        if (*pd == "auto") {
            hp.system.pdes.domains = 0;
        } else if (!parseCountFlag(argc, argv, "--pdes-domains", 2, 258,
                                   hp.system.pdes.domains)) {
            return 1;
        }
    }
    if (hp.system.pdes.partition == cpu::PdesParams::Partition::Off &&
        hp.system.pdes.hostThreads > 1) {
        std::fprintf(stderr,
                     "warning: --host-threads=%u is ignored with "
                     "--pdes=off (the unpartitioned kernel is "
                     "sequential)\n",
                     hp.system.pdes.hostThreads);
    }

    unsigned jobs = 0;
    if (!parseCountFlag(argc, argv, "--jobs", 0, 4096, jobs))
        return 1;

    const auto trace_path = argValue(argc, argv, "--trace");
    const bool stats = hasFlag(argc, argv, "--stats");
    const bool nested = hasFlag(argc, argv, "--nested");
    const std::vector<std::string> names = splitCommas(wl);
    if (names.empty()) {
        std::fprintf(stderr, "no workload given\n");
        return 1;
    }

    // Introspection keeps the legacy single-run path; everything else goes
    // through the batch harness (workload + serial baseline per name).
    if (trace_path || stats) {
        if (names.size() > 1) {
            std::fprintf(stderr,
                         "--trace/--stats need a single workload\n");
            return 1;
        }
        return runInspectable(names[0], *kind, hp, nested, trace_path,
                              stats);
    }

    // One main job per workload, plus a serial baseline unless the main
    // run already is serial (then it serves as its own baseline).
    const bool isSerial = *kind == rt::RuntimeKind::Serial;
    const std::size_t runsPerName = isSerial ? 1 : 2;
    std::vector<rt::Job> batch;
    for (const std::string &name : names) {
        const auto prog = buildWorkload(name, nested);
        if (!prog) {
            std::fprintf(stderr, "unknown workload '%s' (try --list)\n",
                         name.c_str());
            return 1;
        }
        rt::Job main_job;
        main_job.kind = *kind;
        main_job.prog = *prog;
        main_job.params = hp;
        batch.push_back(main_job);

        if (!isSerial) {
            rt::Job serial_job;
            serial_job.kind = rt::RuntimeKind::Serial;
            serial_job.prog = *prog;
            serial_job.params = hp;
            batch.push_back(std::move(serial_job));
        }
    }

    const std::vector<rt::RunResult> results = rt::runBatch(batch, jobs);

    bool all_ok = true;
    for (std::size_t i = 0; i < names.size(); ++i) {
        rt::RunResult res = results[runsPerName * i];
        res.serialCycles = results[runsPerName * i + runsPerName - 1].cycles;
        if (i > 0)
            std::printf("\n");
        printResult(res, isSerial ? 1 : hp.numCores);
        all_ok = all_ok && res.completed;
    }
    return all_ok ? 0 : 1;
}
