/**
 * @file
 * Software dependence inference, as performed by Nanos-SW's `plain`
 * dependence plugin (paper Section V-A).
 *
 * This is a functional reimplementation of the address-map dependence
 * domain: per monitored address it tracks the last writer and subsequent
 * readers, derives RAW/WAW/WAR edges and maintains per-task pending
 * counts. Each operation *returns the cycle cost* the calling thread must
 * charge (per the calibrated CostModel) along with the cache lines it
 * touched, so the MESI model sees the traffic.
 */

#ifndef PICOSIM_RUNTIME_SW_DEP_GRAPH_HH
#define PICOSIM_RUNTIME_SW_DEP_GRAPH_HH

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "runtime/cost_model.hh"
#include "runtime/task_types.hh"
#include "sim/types.hh"

namespace picosim::rt
{

/** Outcome of a graph operation: cycles to charge + lines to touch. */
struct DepOpResult
{
    Cycle cost = 0;
    std::vector<Addr> touchedLines;
    std::vector<std::uint64_t> becameReady; ///< tasks promoted to ready
    bool ready = false; ///< (submit) task was immediately ready
};

class SwDepGraph
{
  public:
    explicit SwDepGraph(const CostModel &costs) : costs_(costs) {}

    /** Register a submitted task; computes its dependences. */
    DepOpResult submit(const Task &task);

    /** Release a finished task; wakes dependents. */
    DepOpResult release(std::uint64_t task_id);

    std::size_t pendingTasks() const { return live_.size(); }
    bool empty() const { return live_.empty(); }

  private:
    struct AddrEntry
    {
        std::int64_t lastWriter = -1;
        std::vector<std::uint64_t> readers;
    };

    struct LiveTask
    {
        unsigned pendingDeps = 0;
        std::vector<std::uint64_t> dependents;
        std::vector<TaskDep> deps; ///< for release-time updates
    };

    void addEdge(std::uint64_t producer, std::uint64_t consumer,
                 LiveTask &consumer_task, DepOpResult &res);

    const CostModel &costs_;
    std::unordered_map<Addr, AddrEntry> addrMap_;
    std::unordered_map<std::uint64_t, LiveTask> live_;
};

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_SW_DEP_GRAPH_HH
