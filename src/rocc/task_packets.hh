/**
 * @file
 * Picos task-descriptor packet format (paper Figure 3).
 *
 * Every task is described to Picos by 3*(15+1) = 48 32-bit packets:
 *
 *   header:  task-ID (high), task-ID (low), #deps
 *   dep i:   address (high), address (low), directionality
 *   padding: zero packets up to 48
 *
 * A task with N dependencies (0 <= N <= 15) has 3 + 3*N non-zero packets;
 * the remaining (15 - N) * 3 packets are zeros appended by the Submission
 * Handler's Zero Padder, not by software.
 */

#ifndef PICOSIM_ROCC_TASK_PACKETS_HH
#define PICOSIM_ROCC_TASK_PACKETS_HH

#include <cstdint>
#include <vector>

#include "sim/types.hh"

namespace picosim::rocc
{

/** Dependence directionality of a task pointer parameter. */
enum class Dir : std::uint32_t {
    In = 1,    ///< read
    Out = 2,   ///< written
    InOut = 3, ///< read and written
};

/** One monitored pointer parameter. */
struct TaskDep
{
    Addr addr = 0;
    Dir dir = Dir::In;

    bool operator==(const TaskDep &) const = default;
};

/** Maximum dependencies per task supported by the Picos descriptor. */
inline constexpr unsigned kMaxDeps = 15;

/** Total packets in a full Picos descriptor. */
inline constexpr unsigned kDescriptorPackets = 3 * (kMaxDeps + 1);

/** A decoded task descriptor as Picos sees it. */
struct TaskDescriptor
{
    std::uint64_t swId = 0; ///< software task id chosen by the runtime
    std::vector<TaskDep> deps;

    bool operator==(const TaskDescriptor &) const = default;
};

/** Number of non-zero packets for a task with @p num_deps dependencies. */
constexpr unsigned
nonZeroPackets(unsigned num_deps)
{
    return 3 + 3 * num_deps;
}

/** Number of zero packets the Zero Padder appends. */
constexpr unsigned
paddingPackets(unsigned num_deps)
{
    return (kMaxDeps - num_deps) * 3;
}

/** Encode the non-zero prefix (software's responsibility). */
std::vector<std::uint32_t> encodeNonZero(const TaskDescriptor &desc);

/**
 * Decode a full 48-packet descriptor (hardware's view after padding).
 * Throws via sim::fatal on malformed input.
 */
TaskDescriptor decodeDescriptor(const std::vector<std::uint32_t> &packets);

/** Ready-task tuple flowing from Picos to a core (96 bits, Section IV-F2). */
struct ReadyTuple
{
    std::uint32_t picosId = 0;
    std::uint64_t swId = 0;

    bool operator==(const ReadyTuple &) const = default;
};

} // namespace picosim::rocc

#endif // PICOSIM_ROCC_TASK_PACKETS_HH
