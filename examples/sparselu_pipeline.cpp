/**
 * @file
 * Domain example: sparse LU factorization (KaStORS), the paper's
 * irregular-dependence workload. Shows how to build a real task graph
 * against the public API (lu0/fwd/bdiv/bmod with in/out/inout
 * annotations), run it, and inspect hardware statistics: how many
 * dependence edges Picos tracked, ready-queue traffic, etc.
 */

#include <cstdio>

#include "spec/engine.hh"
#include "spec/run_spec.hh"

using namespace picosim;

int
main()
{
    // An 8x8-block matrix with 24x24-element blocks, described as a
    // RunSpec and resolved through the workload registry.
    spec::RunSpec s;
    s.workload = "sparselu";
    s.wl = {{"nb", 8}, {"bs", 24}};
    s.canonicalize();
    const rt::Program prog = spec::Engine::buildProgram(s);
    std::printf("sparseLU: %llu tasks, mean task size %.0f cycles\n",
                static_cast<unsigned long long>(prog.numTasks()),
                prog.meanTaskSize());

    // Run under Phentos on the full 8-core system; runInspected keeps
    // the System alive so the hardware statistics stay inspectable.
    const spec::InspectedRun run = spec::Engine::runInspected(s);
    if (!run.result.completed) {
        std::printf("run did not complete!\n");
        return 1;
    }
    cpu::System &sys = *run.system;

    spec::RunSpec serialSpec = s;
    serialSpec.runtime = rt::RuntimeKind::Serial;
    const rt::RunResult serial = spec::Engine::run(serialSpec);
    std::printf("parallel: %llu cycles, serial: %llu cycles -> %.2fx\n",
                static_cast<unsigned long long>(run.result.cycles),
                static_cast<unsigned long long>(serial.cycles),
                static_cast<double>(serial.cycles) / run.result.cycles);

    auto &st = sys.stats();
    std::printf("\nHardware counters:\n");
    std::printf("  dependence edges tracked : %.0f\n",
                st.scalarValue("picos.depEdges"));
    std::printf("  submission packets       : %.0f (of which %.0f "
                "zero-padded)\n",
                st.scalarValue("picos.subPackets"),
                st.scalarValue("manager.zeroPadPackets"));
    std::printf("  ready tuples delivered   : %.0f\n",
                st.scalarValue("manager.readyDelivered"));
    std::printf("  dirty-line transfers     : %.0f\n",
                sys.memory().stats().scalarValue("mem.dirtyRemoteTransfers"));
    std::printf("  peak tasks in flight     : %.0f\n", [&] {
        return sys.stats().dist("picos.inFlight").max();
    }());
    return 0;
}
