/** @file Unit tests for the Picos Manager (Figures 4 and 5). */

#include <gtest/gtest.h>

#include "manager/picos_manager.hh"
#include "picos/picos.hh"
#include "rocc/task_packets.hh"
#include "sim/kernel.hh"

using namespace picosim;
using namespace picosim::manager;
using namespace picosim::rocc;

namespace
{

class ManagerTest : public ::testing::Test
{
  protected:
    static constexpr unsigned kCores = 4;

    ManagerTest()
        : picos_(sim_.clock(), picos::PicosParams{}, sim_.stats()),
          mgr_(sim_.clock(), picos_, kCores, ManagerParams{}, sim_.stats())
    {
        sim_.addTicked(&mgr_);
        sim_.addTicked(&picos_);
    }

    void
    step(unsigned n = 1)
    {
        sim_.runFor(n);
    }

    /** Submit a full task through core @p c, ticking as needed. */
    void
    submit(CoreId c, std::uint64_t sw_id, std::vector<TaskDep> deps = {})
    {
        TaskDescriptor desc;
        desc.swId = sw_id;
        desc.deps = std::move(deps);
        const auto pkts = encodeNonZero(desc);
        while (!mgr_.submissionRequest(c, static_cast<unsigned>(pkts.size())))
            step();
        for (std::uint32_t p : pkts) {
            while (!mgr_.submitPacket(c, p))
                step();
        }
    }

    /** Fetch one ready tuple on core @p c (request + poll). */
    std::optional<ReadyTuple>
    fetch(CoreId c, unsigned budget = 2000)
    {
        mgr_.readyTaskRequest(c);
        for (unsigned i = 0; i < budget; ++i) {
            if (auto t = mgr_.peekReady(c))
                return mgr_.popReady(c);
            step();
        }
        return std::nullopt;
    }

    sim::Simulator sim_;
    picos::Picos picos_;
    PicosManager mgr_;
};

} // namespace

TEST_F(ManagerTest, ZeroPadderCompletesBurst)
{
    submit(0, 5, {{0x1000, Dir::Out}}); // 6 non-zero packets
    const auto t = fetch(1);
    ASSERT_TRUE(t.has_value());
    EXPECT_EQ(t->swId, 5u);
    // 42 zeros were appended by the manager, not software.
    EXPECT_EQ(sim_.stats().scalarValue("manager.zeroPadPackets"), 42.0);
    EXPECT_EQ(sim_.stats().scalarValue("picos.subPackets"), 48.0);
}

TEST_F(ManagerTest, RejectsMalformedSubmissionRequests)
{
    EXPECT_FALSE(mgr_.submissionRequest(0, 0));   // empty
    EXPECT_FALSE(mgr_.submissionRequest(0, 49));  // too long
    EXPECT_FALSE(mgr_.submissionRequest(0, 4));   // not multiple of 3
    EXPECT_NE(mgr_.errorCode(), 0);
    EXPECT_TRUE(mgr_.submissionRequest(0, 3));
}

TEST_F(ManagerTest, BurstsAreNotInterleaved)
{
    // Announce from two cores, then stream packets alternately; the
    // manager must forward each burst atomically (Picos decodes them as
    // two clean descriptors -> two tasks processed).
    TaskDescriptor d1, d2;
    d1.swId = 1;
    d1.deps = {{0x100, Dir::Out}};
    d2.swId = 2;
    d2.deps = {{0x200, Dir::Out}};
    const auto p1 = encodeNonZero(d1);
    const auto p2 = encodeNonZero(d2);
    ASSERT_TRUE(mgr_.submissionRequest(0, 6));
    ASSERT_TRUE(mgr_.submissionRequest(1, 6));
    for (std::size_t i = 0; i < 6; ++i) {
        ASSERT_TRUE(mgr_.submitPacket(0, p1[i]));
        ASSERT_TRUE(mgr_.submitPacket(1, p2[i]));
        step();
    }
    sim_.runFor(500);
    EXPECT_EQ(picos_.tasksProcessed(), 2u);
    EXPECT_EQ(sim_.stats().scalarValue("picos.badRetires"), 0.0);
}

TEST_F(ManagerTest, WorkFetchServedInRequestOrder)
{
    // Three independent tasks; requests from cores 2, 0, 1 in that order.
    submit(0, 10);
    submit(0, 11);
    submit(0, 12);
    sim_.runFor(400); // let all become ready

    ASSERT_TRUE(mgr_.readyTaskRequest(2));
    ASSERT_TRUE(mgr_.readyTaskRequest(0));
    ASSERT_TRUE(mgr_.readyTaskRequest(1));
    sim_.runFor(100);

    // Deliveries must respect the total request order (Section IV-E4).
    ASSERT_TRUE(mgr_.peekReady(2).has_value());
    ASSERT_TRUE(mgr_.peekReady(0).has_value());
    ASSERT_TRUE(mgr_.peekReady(1).has_value());
    EXPECT_EQ(mgr_.popReady(2).swId, 10u);
    EXPECT_EQ(mgr_.popReady(0).swId, 11u);
    EXPECT_EQ(mgr_.popReady(1).swId, 12u);
}

TEST_F(ManagerTest, RoutingQueueBoundsOutstandingRequests)
{
    const unsigned depth = mgr_.params().routingQueueDepth;
    for (unsigned i = 0; i < depth; ++i)
        EXPECT_TRUE(mgr_.readyTaskRequest(i % kCores));
    // Queue full: further requests fail (non-blocking ISA semantics).
    EXPECT_FALSE(mgr_.readyTaskRequest(0));
}

TEST_F(ManagerTest, RetireRoundRobinMergesAllCores)
{
    // Four independent tasks, delivered to distinct cores, retired from
    // those cores; every retirement must reach Picos.
    for (std::uint64_t i = 0; i < kCores; ++i)
        submit(0, i);
    sim_.runFor(600);
    std::vector<std::uint32_t> ids;
    for (CoreId c = 0; c < kCores; ++c) {
        auto t = fetch(c);
        ASSERT_TRUE(t.has_value());
        ids.push_back(t->picosId);
    }
    for (CoreId c = 0; c < kCores; ++c) {
        ASSERT_TRUE(mgr_.retireCanAccept(c));
        ASSERT_TRUE(mgr_.retirePush(c, ids[c]));
    }
    sim_.runFor(400);
    EXPECT_EQ(picos_.tasksRetired(), kCores);
    EXPECT_TRUE(picos_.quiescent());
}

TEST_F(ManagerTest, PerCoreReadyQueueIsolation)
{
    submit(0, 42);
    const auto t = fetch(3);
    ASSERT_TRUE(t.has_value());
    // Other cores see nothing.
    for (CoreId c = 0; c < 3; ++c)
        EXPECT_FALSE(mgr_.peekReady(c).has_value());
}

TEST_F(ManagerTest, DrainedAfterFullLifecycle)
{
    submit(1, 7, {{0xabc0, Dir::InOut}});
    auto t = fetch(2);
    ASSERT_TRUE(t.has_value());
    while (!mgr_.retireCanAccept(2))
        step();
    mgr_.retirePush(2, t->picosId);
    sim_.runFor(500);
    EXPECT_TRUE(mgr_.drained());
    EXPECT_TRUE(picos_.quiescent());
}

TEST_F(ManagerTest, SubmitThreeRequiresThreeSlots)
{
    const unsigned cap = mgr_.params().subBufferDepth;
    // Fill the buffer to capacity - 2 without an announcement consuming
    // it (no submissionRequest, so the arbiter never drains core 3).
    for (unsigned i = 0; i < cap - 2; ++i)
        ASSERT_TRUE(mgr_.submitPacket(3, i));
    EXPECT_FALSE(mgr_.submitThreePackets(3, 1, 2, 3));
    ASSERT_TRUE(mgr_.submitPacket(3, 0)); // single packets still fit
}
