/**
 * @file
 * Fundamental simulator-wide type aliases and constants.
 */

#ifndef PICOSIM_SIM_TYPES_HH
#define PICOSIM_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace picosim
{

/** Simulated processor cycle count (80 MHz Rocket Chip domain). */
using Cycle = std::uint64_t;

/** Identifier of a hart / core, 0-based. */
using CoreId = unsigned;

/** Simulated byte address. */
using Addr = std::uint64_t;

/** Sentinel meaning "never" / "no pending wake-up". */
inline constexpr Cycle kCycleNever = std::numeric_limits<Cycle>::max();

/** Rocket Chip prototype clock (Section VI-A1). */
inline constexpr std::uint64_t kCoreClockHz = 80'000'000;

/** Main memory clock of the prototype (Section VI-A1). */
inline constexpr std::uint64_t kMemClockHz = 667'000'000;

} // namespace picosim

#endif // PICOSIM_SIM_TYPES_HH
