#include "sim/log.hh"

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

namespace picosim::sim
{

namespace
{
LogLevel g_level = LogLevel::Warn;

const char *
levelName(LogLevel level)
{
    switch (level) {
      case LogLevel::Error: return "ERROR";
      case LogLevel::Warn:  return "WARN ";
      case LogLevel::Info:  return "INFO ";
      case LogLevel::Debug: return "DEBUG";
      case LogLevel::Trace: return "TRACE";
      default:              return "?    ";
    }
}
} // namespace

LogLevel
logLevel()
{
    return g_level;
}

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

void
logLine(LogLevel level, Cycle cycle, std::string_view component,
        std::string_view message)
{
    std::fprintf(stderr, "[%12llu] %s %.*s: %.*s\n",
                 static_cast<unsigned long long>(cycle), levelName(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(message.size()), message.data());
}

void
fatal(const std::string &message)
{
    std::fprintf(stderr, "fatal: %s\n", message.c_str());
    throw std::runtime_error(message);
}

void
panic(const std::string &message)
{
    std::fprintf(stderr, "panic: %s\n", message.c_str());
    std::abort();
}

} // namespace picosim::sim
