/** @file Unit tests for the Program/Task representation. */

#include <gtest/gtest.h>

#include "runtime/task_types.hh"

using namespace picosim;
using namespace picosim::rt;

TEST(Program, SpawnAssignsDenseIds)
{
    Program p;
    EXPECT_EQ(p.spawn(100), 0u);
    EXPECT_EQ(p.spawn(200), 1u);
    p.taskwait();
    EXPECT_EQ(p.spawn(300), 2u);
    EXPECT_EQ(p.numTasks(), 3u);
    EXPECT_EQ(p.actions.size(), 4u);
}

TEST(Program, SerialPayloadSumsSpawnsOnly)
{
    Program p;
    p.spawn(100);
    p.taskwait();
    p.spawn(250);
    EXPECT_EQ(p.serialPayloadCycles(), 350u);
    EXPECT_DOUBLE_EQ(p.meanTaskSize(), 175.0);
}

TEST(Program, EmptyProgramIsWellDefined)
{
    Program p;
    EXPECT_EQ(p.numTasks(), 0u);
    EXPECT_EQ(p.serialPayloadCycles(), 0u);
    EXPECT_DOUBLE_EQ(p.meanTaskSize(), 0.0);
}

TEST(Program, TaskByIdFindsEveryTask)
{
    Program p;
    for (unsigned i = 0; i < 10; ++i)
        p.spawn(100 + i, {{0x1000ull + i * 64, Dir::Out}});
    for (unsigned i = 0; i < 10; ++i) {
        const Task &t = p.taskById(i);
        EXPECT_EQ(t.id, i);
        EXPECT_EQ(t.payload, 100u + i);
    }
}

TEST(Program, TaskByIdRejectsUnknown)
{
    Program p;
    p.spawn(100);
    EXPECT_THROW(p.taskById(5), std::runtime_error);
}

TEST(Program, IndexRebuildsAfterGrowth)
{
    Program p;
    p.spawn(100);
    EXPECT_EQ(p.taskById(0).payload, 100u);
    p.spawn(200); // index must refresh lazily
    EXPECT_EQ(p.taskById(1).payload, 200u);
}

TEST(Program, DepsArePreserved)
{
    Program p;
    std::vector<TaskDep> deps{{0xA0, Dir::In}, {0xB0, Dir::InOut}};
    p.spawn(1'000, deps);
    EXPECT_EQ(p.taskById(0).deps, deps);
}

// -- Nested tasking -------------------------------------------------------

TEST(Program, FlatProgramsHaveNoNesting)
{
    Program p;
    p.spawn(100);
    p.taskwait();
    EXPECT_FALSE(p.hasNested());
    EXPECT_TRUE(p.bodyOf(0).empty());
    EXPECT_EQ(p.childrenOf(0), 0u);
    EXPECT_EQ(p.taskById(0).parent, kNoParent);
}

TEST(Program, SpawnChildSharesTheDenseIdSpace)
{
    Program p;
    const auto root = p.spawn(100);
    const auto c0 = p.spawnChild(root, 10);
    const auto c1 = p.spawnChild(root, 20, {{0xA0, Dir::InOut}});
    const auto grand = p.spawnChild(c1, 30);
    EXPECT_EQ(c0, 1u);
    EXPECT_EQ(c1, 2u);
    EXPECT_EQ(grand, 3u);
    EXPECT_EQ(p.numTasks(), 4u);
    EXPECT_TRUE(p.hasNested());

    EXPECT_EQ(p.taskById(c0).parent, root);
    EXPECT_EQ(p.taskById(c1).parent, root);
    EXPECT_EQ(p.taskById(grand).parent, c1);
    EXPECT_EQ(p.taskById(c1).payload, 20u);
    EXPECT_EQ(p.taskById(grand).payload, 30u);
    EXPECT_EQ(p.childrenOf(root), 2u);
    EXPECT_EQ(p.childrenOf(c1), 1u);
}

TEST(Program, ScopedTaskwaitTargetsCountPriorSpawnsOnly)
{
    Program p;
    const auto root = p.spawn(100);
    p.spawnChild(root, 10);
    p.taskwaitChildren(root); // after 1 child
    p.spawnChild(root, 20);
    p.spawnChild(root, 30);
    p.taskwaitChildren(root); // after 3 children

    const auto &body = p.bodyOf(root);
    ASSERT_EQ(body.size(), 5u);
    EXPECT_EQ(body[1].kind, BodyOp::Kind::TaskwaitChildren);
    EXPECT_EQ(body[1].waitTarget, 1u);
    EXPECT_EQ(body[4].kind, BodyOp::Kind::TaskwaitChildren);
    EXPECT_EQ(body[4].waitTarget, 3u);
}

TEST(Program, SpawnChildRejectsUnknownParent)
{
    Program p;
    p.spawn(100);
    EXPECT_THROW(p.spawnChild(7, 10), std::runtime_error);
    EXPECT_THROW(p.taskwaitChildren(7), std::runtime_error);
}

TEST(Program, NestedPayloadsAndDepsCountInAggregates)
{
    Program p;
    const auto root = p.spawn(100, {{0xA0, Dir::Out}});
    p.spawnChild(root, 250,
                 {{0xB0, Dir::In}, {0xC0, Dir::In}, {0xD0, Dir::InOut}});
    EXPECT_EQ(p.serialPayloadCycles(), 350u);
    EXPECT_EQ(p.maxDeps(), 3u);
    EXPECT_DOUBLE_EQ(p.meanTaskSize(), 175.0);
}

TEST(Program, CopiedNestedProgramIsIndependent)
{
    Program p;
    const auto root = p.spawn(100);
    p.spawnChild(root, 10);
    p.taskwaitChildren(root);
    p.taskById(1); // warm the index before copying
    const Program copy = p;
    EXPECT_EQ(copy.taskById(1).parent, root);
    EXPECT_EQ(copy.bodyOf(root).size(), 2u);
    EXPECT_EQ(copy.childrenOf(root), 1u);
}

// Satellite: the serial speedup baseline must fail loudly on overflow
// instead of wrapping (a wrapped baseline would silently corrupt every
// speedup a bench reports).
TEST(Program, SerialPayloadOverflowFailsLoudly)
{
    Program p;
    p.spawn(~Cycle{0} - 100);
    p.spawn(200);
    EXPECT_THROW(p.serialPayloadCycles(), std::runtime_error);
}

TEST(Program, SerialPayloadNearOverflowStillSums)
{
    Program p;
    p.spawn(~Cycle{0} - 100);
    p.spawn(100);
    EXPECT_EQ(p.serialPayloadCycles(), ~Cycle{0});
}
