/**
 * @file
 * Fault-injection plan: a scenario-level description of one fault to
 * inject mid-run, carried on the spec (fault.* keys) down to the model.
 *
 * Faults are a pure function of the simulated clock — a component is
 * "down" exactly when its domain clock is inside [cycle, until) — so an
 * injected fault is as deterministic as the rest of the schedule: the
 * same spec produces the same faulted run in both kernels and at any
 * PDES host-thread count.
 */

#ifndef PICOSIM_SIM_FAULT_HH
#define PICOSIM_SIM_FAULT_HH

#include <cstdint>

#include "sim/types.hh"

namespace picosim::sim
{

/** What to break. */
enum class FaultKind : std::uint8_t
{
    None,      ///< no fault armed
    KillShard, ///< Picos shard @c target stops notifying/retiring/decoding
    StallLink, ///< cluster @c target's submission fabric stops moving
    DropJob,   ///< harness-level: the run is dropped at the first
               ///< deterministic boundary at or after @c cycle
};

/**
 * One fault to inject. @c cycle is when it strikes; @c until is when it
 * heals (0 = never restored); @c target selects the shard (KillShard)
 * or cluster (StallLink) index — unused for DropJob.
 */
struct FaultPlan
{
    FaultKind kind = FaultKind::None;
    Cycle cycle = 0;
    Cycle until = 0;
    unsigned target = 0;

    bool armed() const { return kind != FaultKind::None; }
};

constexpr const char *
faultKindName(FaultKind k)
{
    switch (k) {
    case FaultKind::None: return "none";
    case FaultKind::KillShard: return "kill-shard";
    case FaultKind::StallLink: return "stall-link";
    case FaultKind::DropJob: return "drop-job";
    }
    return "?";
}

} // namespace picosim::sim

#endif // PICOSIM_SIM_FAULT_HH
