#include "cpu/system.hh"

#include <algorithm>
#include <string>
#include <vector>

#include "sim/log.hh"

namespace picosim::cpu
{

namespace
{

/**
 * Resolve the PDES domain count from the (already pdes-shaped) topology
 * and the user's request. A pure function of the simulated configuration
 * — hostThreads must never leak in here, or two runs of the same system
 * at different thread counts would simulate different machines.
 */
unsigned
resolvePdesDomains(const picos::TopologyParams &topo,
                   const PdesParams &pdes)
{
    // d0 = cores+runtime+memory, d1..dC = cluster managers, dC+1 = the
    // sharded scheduler: the only cuts in the component graph where
    // every crossing edge is a timed port.
    const unsigned full = 2 + topo.clusters;
    unsigned n = pdes.domains;
    if (n == 1)
        sim::fatal("pdes.domains == 1 is not a partition; use "
                   "PdesParams::Partition::Off for a sequential run");
    if (n == 0) {
        // Auto: split the managers out only when the cluster link is a
        // real (>= 1 cycle) hop — with a zero-cycle link the extra
        // windows would be too small to pay for their barriers, so fall
        // back to the classic 2-way {cores+managers | scheduler} cut.
        n = topo.clusterLinkCycles >= 1 ? full : 2;
    }
    return std::min(n, full);
}

} // namespace

System::System(const SystemParams &params)
    : params_(params), bandwidth_(params.bandwidthAlpha)
{
    picos::TopologyParams topo = params.topology;
    if (!topo.singlePicos() && topo.clusters > params.numCores)
        sim::fatal("topology needs at least one core per cluster");

    sim_.setEvalMode(params.evalMode);

    // Conservative-PDES partitioning: the scheduler fabric and the
    // per-cluster manager seams are the only cuts in this component
    // graph where every crossing edge is a timed port (cores share
    // functional memory/bandwidth state with the runtime, so they stay
    // together in domain 0; each cluster's manager may split into its
    // own domain across the cluster link). The single-Picos topology
    // has no such cut — sequential fallback — and the TickWorld
    // reference kernel is sequential by definition.
    const PdesParams &pdes = params.pdes;
    pdesActive_ =
        (pdes.partition == PdesParams::Partition::Force ||
         (pdes.partition == PdesParams::Partition::Auto &&
          pdes.hostThreads > 1)) &&
        !topo.singlePicos() && params.evalMode == sim::EvalMode::EventDriven;
    unsigned ndom = 1;
    if (pdesActive_) {
        topo.pdesBoundaryPorts = true;
        ndom = resolvePdesDomains(topo, pdes);
        sim_.configureDomains(ndom);
        sim_.setHostThreads(pdes.hostThreads);
    }
    memory_ = std::make_unique<mem::CoherentMemory>(params.numCores,
                                                    params.mem);
    if (params.mem.mode == mem::MemMode::Timed)
        timedMem_ = std::make_unique<mem::TimedMemory>(
            sim_.clock(), *memory_, sim_.stats());

    // Scheduler: the paper's single centralized Picos by default; the
    // sharded scaling layer when the topology asks for it. Each cluster
    // gets its own manager fronting its SchedulerIf endpoint.
    if (topo.singlePicos()) {
        picos_ = std::make_unique<picos::Picos>(sim_.clock(), params.picos,
                                                sim_.stats());
        managers_.push_back(std::make_unique<manager::PicosManager>(
            sim_.clock(), *picos_, params.numCores, params.manager,
            sim_.stats()));
    } else {
        // The scheduler ticks on its own (last) domain's clock when
        // partitioned; each cluster's ready-return port is bound to the
        // clock of the domain its manager lives in.
        std::vector<const sim::Clock *> readyClocks;
        readyClocks.reserve(topo.clusters);
        for (unsigned c = 0; c < topo.clusters; ++c)
            readyClocks.push_back(&sim_.domainClock(
                pdesActive_ ? managerDomainOf(c, ndom) : 0u));
        sharded_ = std::make_unique<picos::ShardedPicos>(
            pdesActive_ ? sim_.domainClock(ndom - 1) : sim_.clock(),
            std::move(readyClocks), params.picos, topo, sim_.stats());
        if (params.fault.kind == sim::FaultKind::KillShard ||
            params.fault.kind == sim::FaultKind::StallLink)
            sharded_->setFault(params.fault);
        // Per-cluster managers keep their central ready queue at one
        // tuple: work buffered there is pinned to the cluster, and the
        // whole point of the sharded fabric is that surplus ready tasks
        // stay stealable by dry neighbours. Per-core queues still hide
        // the ready-fetch latency for demand-driven flow.
        manager::ManagerParams cluster_mp = params.manager;
        cluster_mp.roccReadyQueueDepth = 1;
        // Manager split (>= 3 domains): the manager sits across the
        // cluster-local interconnect from its cores; that hop moves onto
        // the delegate-facing ports, where it doubles as the lookahead
        // of the core<->manager domain pair (so it must be >= 1).
        const bool managerSplit = pdesActive_ && ndom > 2;
        if (managerSplit)
            cluster_mp.pdesCoreLinkCycles =
                std::max<Cycle>(1, topo.clusterLinkCycles);
        for (unsigned c = 0; c < topo.clusters; ++c) {
            const unsigned begin = clusterBegin(c);
            const unsigned end = clusterBegin(c + 1);
            const sim::Clock &mgrClock =
                managerSplit ? sim_.domainClock(managerDomainOf(c, ndom))
                             : sim_.clock();
            managers_.push_back(std::make_unique<manager::PicosManager>(
                mgrClock, sim_.clock(), sharded_->clusterPort(c),
                end - begin, cluster_mp, sim_.stats(),
                "manager.c" + std::to_string(c)));
        }
    }

    cores_.reserve(params.numCores);
    delegates_.reserve(params.numCores);
    hartApis_.reserve(params.numCores);
    for (CoreId i = 0; i < params.numCores; ++i) {
        const unsigned cluster = clusterOfCore(i);
        cores_.push_back(
            std::make_unique<Core>(sim_.clock(), i, sim_.stats()));
        cores_.back()->bindDoneCounter(&coresDone_);
        delegates_.push_back(std::make_unique<delegate::PicosDelegate>(
            i, *managers_[cluster], sim_.stats(),
            i - clusterBegin(cluster)));
        hartApis_.push_back(std::make_unique<HartApi>(
            i, *delegates_.back(), *memory_, bandwidth_, params.hartApi,
            timedMem_.get()));
    }

    // Evaluation order each cycle: cores produce transactions, the
    // managers move them, the scheduler consumes them, and the timed
    // memory subsystem schedules this cycle's requests last (harts must
    // have issued before it runs so responses are armed within the issue
    // cycle).
    for (auto &core : cores_)
        sim_.addTicked(core.get());
    for (unsigned c = 0; c < managers_.size(); ++c)
        sim_.addTicked(managers_[c].get(),
                       pdesActive_ ? managerDomainOf(c, ndom) : 0u);
    if (picos_)
        sim_.addTicked(picos_.get());
    if (sharded_)
        sim_.addTicked(sharded_.get(), pdesActive_ ? ndom - 1 : 0u);
    if (timedMem_) {
        sim_.addTicked(timedMem_.get());
        for (CoreId i = 0; i < params.numCores; ++i)
            timedMem_->bindHart(i, &cores_[i]->context(), cores_[i].get());
    }

    // With every component registered (port owners final), flip the
    // manager<->scheduler boundary ports — and, past the 2-way cut, the
    // core<->manager ports — into staging mode; this also derives the
    // kernel's pairwise lookahead matrix from their latencies.
    if (pdesActive_) {
        sharded_->bindPdes(sim_);
        if (ndom > 2)
            for (auto &mgr : managers_)
                mgr->bindPdesCoreBoundary(sim_);
    }
}

unsigned
System::managerDomainOf(unsigned c, unsigned ndom)
{
    // 2-way cut: managers share domain 0 with their cores (the classic
    // partition). Beyond that, clusters fold round-robin onto the
    // ndom - 2 manager domains (one each in the full cut).
    return ndom <= 2 ? 0u : 1u + c % (ndom - 2);
}

picos::Picos &
System::picos()
{
    if (!picos_)
        sim::fatal("System::picos() on a sharded-scheduler topology");
    return *picos_;
}

unsigned
System::clusterBegin(unsigned cluster) const
{
    // Contiguous, balanced blocks: cluster c covers [cN/C, (c+1)N/C).
    const auto n = static_cast<std::uint64_t>(params_.numCores);
    const std::uint64_t clusters =
        std::max(1u, params_.topology.clusters);
    return static_cast<unsigned>(cluster * n / clusters);
}

unsigned
System::clusterOfCore(CoreId i) const
{
    // Exact inverse of clusterBegin()'s partition — the smallest c with
    // clusterBegin(c + 1) > i, i.e. ceil((i+1)C/n) - 1. (A plain
    // i*C/n is NOT that inverse when C does not divide n and would
    // hand delegates out-of-range manager ports.)
    const auto n = static_cast<std::uint64_t>(params_.numCores);
    const std::uint64_t clusters =
        std::max(1u, params_.topology.clusters);
    return static_cast<unsigned>(((i + 1) * clusters + n - 1) / n - 1);
}

bool
System::allThreadsDone() const
{
    return coresDone_ == cores_.size();
}

bool
System::run(Cycle limit)
{
    // The predicate is an O(1) counter comparison: cores report their
    // thread's completion to coresDone_ exactly once, so the kernel's
    // per-evaluated-cycle done() check never rescans every core.
    return sim_.run([this] { return allThreadsDone(); }, limit);
}

} // namespace picosim::cpu
