/** @file Unit tests for the workload generators. */

#include <gtest/gtest.h>

#include <set>

#include "apps/workloads.hh"

using namespace picosim;
using namespace picosim::apps;
using namespace picosim::rt;

namespace
{

/** Count tasks and validate dep counts of a program. */
void
checkBasics(const Program &prog, std::uint64_t expected_tasks)
{
    EXPECT_EQ(prog.numTasks(), expected_tasks);
    std::uint64_t next_id = 0;
    for (const Action &a : prog.actions) {
        if (a.kind != Action::Kind::Spawn)
            continue;
        EXPECT_EQ(a.task.id, next_id++);
        EXPECT_LE(a.task.deps.size(), rocc::kMaxDeps);
    }
}

/** Topologically execute the program honoring deps; returns true if it
 *  completes (i.e., the dependence graph is executable in order). */
bool
executableInProgramOrder(const Program &prog)
{
    // Program order must be a valid serial order: simulate last-writer /
    // readers and check each task only depends on earlier tasks.
    std::map<Addr, std::uint64_t> last_writer;
    for (const Action &a : prog.actions) {
        if (a.kind != Action::Kind::Spawn)
            continue;
        for (const TaskDep &d : a.task.deps) {
            auto it = last_writer.find(d.addr);
            if (it != last_writer.end() && it->second >= a.task.id)
                return false;
            if (d.dir != Dir::In)
                last_writer[d.addr] = a.task.id;
        }
    }
    return true;
}

} // namespace

TEST(TaskFree, TasksAreIndependent)
{
    const Program prog = taskFree(10, 3, 100);
    checkBasics(prog, 10);
    // All deps are outputs on distinct addresses.
    std::set<Addr> addrs;
    for (const Action &a : prog.actions) {
        if (a.kind != Action::Kind::Spawn)
            continue;
        EXPECT_EQ(a.task.deps.size(), 3u);
        for (const TaskDep &d : a.task.deps) {
            EXPECT_EQ(d.dir, Dir::Out);
            EXPECT_TRUE(addrs.insert(d.addr).second) << "address reused";
        }
    }
}

TEST(TaskChain, TasksShareAllAddresses)
{
    const Program prog = taskChain(10, 2, 100);
    checkBasics(prog, 10);
    const auto &first = prog.actions[0].task.deps;
    for (const Action &a : prog.actions) {
        if (a.kind != Action::Kind::Spawn)
            continue;
        EXPECT_EQ(a.task.deps, first);
        for (const TaskDep &d : a.task.deps)
            EXPECT_EQ(d.dir, Dir::InOut);
    }
}

TEST(TaskBench, RejectsTooManyDeps)
{
    EXPECT_THROW(taskFree(1, 16, 10), std::runtime_error);
    EXPECT_THROW(taskChain(1, 16, 10), std::runtime_error);
}

TEST(Blackscholes, BlockingMatchesOptionCount)
{
    const Program prog = blackscholes(4096, 8);
    checkBasics(prog, 4096 / 8);
    // Larger blocks -> proportionally larger tasks.
    const Program coarse = blackscholes(4096, 256);
    EXPECT_EQ(coarse.numTasks(), 16u);
    EXPECT_GT(coarse.meanTaskSize(), prog.meanTaskSize() * 20);
    EXPECT_TRUE(executableInProgramOrder(prog));
}

TEST(Blackscholes, RejectsIndivisibleBlock)
{
    EXPECT_THROW(blackscholes(100, 3), std::runtime_error);
}

TEST(Jacobi, SweepsProduceHaloDependences)
{
    const unsigned n = 16, sweeps = 3;
    const Program prog = jacobi(n, 1, sweeps);
    checkBasics(prog, static_cast<std::uint64_t>(n) * sweeps);
    EXPECT_TRUE(executableInProgramOrder(prog));
    // Interior tasks read three blocks and write one.
    const Task &interior = prog.actions[1].task;
    EXPECT_EQ(interior.deps.size(), 4u);
}

TEST(SparseLu, GraphIsExecutableAndSparse)
{
    const Program prog = sparseLu(8, 8);
    EXPECT_GT(prog.numTasks(), 8u); // at least the lu0 diagonal
    EXPECT_TRUE(executableInProgramOrder(prog));
    // Determinism: same seed, same program.
    const Program again = sparseLu(8, 8);
    EXPECT_EQ(prog.numTasks(), again.numTasks());
    // Block size scales payload cubically (coarse >> fine).
    const Program coarse = sparseLu(8, 32);
    EXPECT_GT(coarse.meanTaskSize(), prog.meanTaskSize() * 20);
}

TEST(Stream, DepsVariantChainsKernels)
{
    const Program prog = streamDeps(4, 64, 1);
    checkBasics(prog, 16u); // 4 kernels x 4 blocks
    EXPECT_TRUE(executableInProgramOrder(prog));
    // No taskwait except the final one.
    unsigned waits = 0;
    for (const Action &a : prog.actions)
        waits += a.kind == Action::Kind::Taskwait ? 1 : 0;
    EXPECT_EQ(waits, 1u);
}

TEST(Stream, BarrVariantUsesBarriers)
{
    const Program prog = streamBarr(4, 64, 2);
    checkBasics(prog, 32u);
    unsigned waits = 0;
    for (const Action &a : prog.actions) {
        if (a.kind == Action::Kind::Spawn)
            EXPECT_TRUE(a.task.deps.empty());
        else
            ++waits;
    }
    EXPECT_EQ(waits, 8u); // one per kernel per iteration
}

TEST(Figure9Inputs, ThirtySevenInputsInFigureOrder)
{
    const auto inputs = figure9Inputs();
    ASSERT_EQ(inputs.size(), 37u);
    unsigned counts[5] = {0, 0, 0, 0, 0};
    for (const auto &in : inputs) {
        if (in.program == "blackscholes") ++counts[0];
        else if (in.program == "jacobi") ++counts[1];
        else if (in.program == "sparselu") ++counts[2];
        else if (in.program == "stream-barr") ++counts[3];
        else if (in.program == "stream-deps") ++counts[4];
    }
    EXPECT_EQ(counts[0], 12u);
    EXPECT_EQ(counts[1], 3u);
    EXPECT_EQ(counts[2], 10u);
    EXPECT_EQ(counts[3], 6u);
    EXPECT_EQ(counts[4], 6u);
}

TEST(Figure9Inputs, BuildersProduceNonEmptyPrograms)
{
    for (const auto &in : figure9Inputs()) {
        const Program prog = in.build();
        EXPECT_GT(prog.numTasks(), 0u) << in.program << " " << in.label;
        EXPECT_GT(prog.serialPayloadCycles(), 0u);
        EXPECT_TRUE(executableInProgramOrder(prog))
            << in.program << " " << in.label;
    }
}

TEST(Figure9Inputs, GranularitySpansDecades)
{
    double min_size = 1e18, max_size = 0;
    for (const auto &in : figure9Inputs()) {
        const Program prog = in.build();
        min_size = std::min(min_size, prog.meanTaskSize());
        max_size = std::max(max_size, prog.meanTaskSize());
    }
    // Figure 8's x-axis spans roughly 10^3..10^6+ cycles.
    EXPECT_LT(min_size, 5'000.0);
    EXPECT_GT(max_size, 300'000.0);
}
