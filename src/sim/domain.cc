/**
 * @file
 * The conservative-PDES windowed run loop (see sim/domain.hh for the
 * model and the determinism argument). Key structural property: the SAME
 * windowed schedule executes at every host thread count — one thread
 * iterates the domains in id order, N threads split them — and every
 * cross-domain merge happens in the single-threaded coordination step at
 * the window barrier, in a fixed order.
 */

#include "sim/kernel.hh"

#include <algorithm>
#include <barrier>
#include <thread>

#include "sim/log.hh"

namespace picosim::sim
{

namespace
{

/** Domain currently executing a window on this host thread; null in the
 *  coordinator step and in harness code outside any window. */
thread_local Domain *t_currentDomain = nullptr;

} // namespace

void
Simulator::requestWakeWindowed(Ticked *component, Cycle cycle)
{
    Domain &dst = domainAt(component->domain_);
    Domain *cur = t_currentDomain;
    if (cur != nullptr && cur != &dst) {
        // Cross-domain wake mid-window: the destination is (potentially)
        // executing on another thread. Capture it in this domain's
        // outbox; the boundary drain applies it single-threaded.
        cur->outbox[component->domain_].push_back(
            WakeRequest{component, cycle});
        return;
    }
    // Same-domain (the common case), or coordinator/harness context
    // where no window is in flight: apply directly.
    applyLocalWake(dst, component, cycle);
}

void
Simulator::runDomainWindow(Domain &d, Cycle windowEnd)
{
    t_currentDomain = &d;
    while (true) {
        // firstOnOrAfter(now) includes the current cycle, so boundary-
        // drained events landing exactly at the window start are found
        // before the clock moves.
        const Cycle next = refreshNextEventCycle(d);
        if (next >= windowEnd) // kCycleNever included
            break;
        d.clock.advanceTo(next);
        evaluateDue(d);
    }
    t_currentDomain = nullptr;
}

void
Simulator::drainBoundary(Cycle boundary)
{
    // Registered links first (staged port traffic replays with its own
    // recorded send cycles), then captured bare wakes — both in fixed
    // registration/domain order, single-threaded.
    for (CrossDomainLink &link : crossLinks_)
        link.drain();
    for (unsigned src = 0; src < numDomains(); ++src) {
        Domain &s = domainAt(src);
        for (unsigned dst = 0; dst < numDomains(); ++dst) {
            if (s.outbox[dst].empty())
                continue;
            Domain &dd = domainAt(dst);
            for (const WakeRequest &w : s.outbox[dst]) {
                // Clamp into the next window: the destination already
                // executed up to the boundary, and keeping every merged
                // event at >= boundary keeps windows disjoint.
                applyLocalWake(dd, w.component,
                               std::max(w.cycle, boundary));
            }
            s.outbox[dst].clear();
        }
    }
}

void
Simulator::mergeWindowCycles()
{
    // Count DISTINCT evaluated cycles across all domains: two domains
    // evaluating the same cycle is one globally-evaluated cycle, exactly
    // as the sequential kernel would count it.
    mergeScratch_.clear();
    bool any = false;
    for (unsigned i = 0; i < numDomains(); ++i) {
        Domain &d = domainAt(i);
        if (!d.windowCycles.empty())
            any = true;
        mergeScratch_.insert(mergeScratch_.end(), d.windowCycles.begin(),
                             d.windowCycles.end());
        d.windowCycles.clear();
    }
    if (!any)
        return;
    std::sort(mergeScratch_.begin(), mergeScratch_.end());
    evaluatedCycles_ += static_cast<std::uint64_t>(
        std::unique(mergeScratch_.begin(), mergeScratch_.end()) -
        mergeScratch_.begin());
}

Cycle
Simulator::nextEventAcrossDomains()
{
    Cycle next = kCycleNever;
    for (unsigned i = 0; i < numDomains(); ++i)
        next = std::min(next, refreshNextEventCycle(domainAt(i)));
    return next;
}

void
Simulator::advanceAllClocksTo(Cycle c)
{
    for (unsigned i = 0; i < numDomains(); ++i)
        domainAt(i).clock.advanceTo(c); // no-op when already past c
}

bool
Simulator::runWindowed(const DonePredicate &done, Cycle limit)
{
    const Cycle start = main_.clock.now();
    const Cycle lk = lookahead();
    const unsigned ndom = numDomains();

    bool stop = false;
    bool result = false;
    Cycle windowEnd = 0;

    // The single-threaded coordination step between windows; runs with
    // every worker parked at the barrier (or inline at 1 thread), so it
    // may freely touch all domains. Stop conditions are only observable
    // at boundaries — the final clocks are advanced to the global
    // maximum across domains, a deterministic value.
    const auto coordinate = [&]() noexcept {
        drainBoundary(windowEnd);
        mergeWindowCycles();
        Cycle maxClock = 0;
        for (unsigned i = 0; i < ndom; ++i)
            maxClock = std::max(maxClock, domainAt(i).clock.now());
        if (done()) {
            advanceAllClocksTo(maxClock);
            stop = true;
            result = true;
            return;
        }
        const Cycle next = nextEventAcrossDomains();
        if (next == kCycleNever) {
            // Fully idle system: either done() holds now or the
            // simulation can never progress again.
            advanceAllClocksTo(maxClock);
            stop = true;
            result = done();
            return;
        }
        if (next - start >= limit) {
            advanceAllClocksTo(std::max(maxClock, next));
            stop = true;
            result = false;
            return;
        }
        windowEnd = next + lk;
    };

    const unsigned nThreads =
        std::min(std::max(1u, hostThreads_), ndom);

    if (nThreads <= 1) {
        // One host thread runs the identical windowed schedule, domains
        // in id order — the reference the multi-threaded run must match.
        while (true) {
            coordinate();
            if (stop)
                break;
            for (unsigned i = 0; i < ndom; ++i)
                runDomainWindow(domainAt(i), windowEnd);
        }
        return result;
    }

    std::barrier bar(nThreads, [&]() noexcept { coordinate(); });
    const auto worker = [&](unsigned tid) {
        while (true) {
            bar.arrive_and_wait(); // completion step runs coordinate()
            if (stop)
                break;
            for (unsigned i = tid; i < ndom; i += nThreads)
                runDomainWindow(domainAt(i), windowEnd);
        }
    };
    std::vector<std::thread> threads;
    threads.reserve(nThreads - 1);
    for (unsigned t = 1; t < nThreads; ++t)
        threads.emplace_back(worker, t);
    worker(0);
    for (std::thread &t : threads)
        t.join();
    return result;
}

void
Simulator::runForWindowed(Cycle n)
{
    // Bounded-time runs execute the same windowed schedule on the
    // calling thread regardless of hostThreads — they are harness
    // warmup/probe helpers, not the measured hot loop.
    const Cycle end = main_.clock.now() + n;
    const Cycle lk = lookahead();
    const unsigned ndom = numDomains();
    Cycle windowEnd = 0;
    while (true) {
        drainBoundary(windowEnd);
        mergeWindowCycles();
        const Cycle next = nextEventAcrossDomains();
        if (next == kCycleNever || next >= end)
            break;
        windowEnd = std::min(next + lk, end);
        for (unsigned i = 0; i < ndom; ++i)
            runDomainWindow(domainAt(i), windowEnd);
    }
    advanceAllClocksTo(end);
}

} // namespace picosim::sim
