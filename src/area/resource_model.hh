/**
 * @file
 * Analytic FPGA resource model reproducing Table II (DESIGN.md
 * substitution #5).
 *
 * We cannot synthesize the design, so each module's cell count is
 * estimated from its structural parameters: state bits (queues, tables,
 * registers) weighted by a cells-per-bit factor plus per-module control
 * overhead, with the per-core constants (FPU, caches) taken from the
 * published breakdown of the ZCU102 build. The model is parametric: tests
 * check that it responds monotonically to queue depths and core counts,
 * and the Table II bench prints the breakdown for the paper's
 * configuration.
 */

#ifndef PICOSIM_AREA_RESOURCE_MODEL_HH
#define PICOSIM_AREA_RESOURCE_MODEL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "manager/manager_params.hh"
#include "picos/picos_params.hh"

namespace picosim::area
{

struct ModuleUsage
{
    std::string name;
    std::string description;
    std::uint64_t cells = 0;
    double fraction = 0.0; ///< of the whole SoC
};

struct AreaParams
{
    unsigned numCores = 8;

    /** Per-core constants from Table II (FPGA cells). */
    std::uint64_t coreCells = 44'000;   ///< core incl. FPU and L1$
    std::uint64_t fpuCells = 18'330;    ///< floating-point unit
    std::uint64_t dcacheCells = 6'030;  ///< D-cache of a single core
    std::uint64_t icacheCells = 1'230;  ///< I-cache of a single core

    /** Uncore (interconnect, DRAM controller, peripherals). */
    std::uint64_t uncoreCells = 25'000;

    /** Synthesis-quality factors for the scheduling subsystem. Large
     *  tables (reservation station, dependence table) map to block RAM,
     *  which costs almost no cells -- only addressing/control logic. */
    double cellsPerStateBit = 0.45;  ///< registers+LUTs per flip-flop bit
    double cellsPerBramBit = 0.012;  ///< BRAM-backed storage overhead
    std::uint64_t picosControlCells = 1'100;
    std::uint64_t managerControlCells = 420;
    std::uint64_t delegateCells = 130; ///< per-core RoCC stub
};

/** Register (flip-flop) state bits of Picos: queues + gateway buffer. */
std::uint64_t picosStateBits(const picos::PicosParams &p);

/** BRAM-backed storage bits of Picos: reservation station + dep table. */
std::uint64_t picosTableBits(const picos::PicosParams &p);

/** Flip-flop state bits of the Picos Manager (small queues, encoder). */
std::uint64_t managerStateBits(const manager::ManagerParams &p,
                               unsigned num_cores);

/** BRAM-backed bits of the Manager (per-core submission buffers). */
std::uint64_t managerTableBits(const manager::ManagerParams &p,
                               unsigned num_cores);

/**
 * Full Table II breakdown: top / Core / fpuOpt / dcache / icache /
 * SSystem rows, with fractions of the whole SoC.
 */
std::vector<ModuleUsage> tableII(const AreaParams &a,
                                 const picos::PicosParams &pp,
                                 const manager::ManagerParams &mp);

/** Cells of the scheduling subsystem (Picos + Manager + Delegates). */
std::uint64_t schedulingSystemCells(const AreaParams &a,
                                    const picos::PicosParams &pp,
                                    const manager::ManagerParams &mp);

} // namespace picosim::area

#endif // PICOSIM_AREA_RESOURCE_MODEL_HH
