/**
 * @file
 * Timed memory subsystem tests: the uncontended-equals-inline contract,
 * MESI dirty transfers through memory on the timed path, MSHR saturation
 * backpressure, streamTouch latency monotonicity in footprint, and
 * same-cycle multi-core contention determinism across both kernels.
 */

#include <gtest/gtest.h>

#include "cpu/system.hh"
#include "sim/cotask.hh"

using namespace picosim;

namespace
{

cpu::SystemParams
timedParams(unsigned cores)
{
    cpu::SystemParams sp;
    sp.numCores = cores;
    sp.mem.mode = mem::MemMode::Timed;
    return sp;
}

/** Single blocking accesses: read misses, hits, upgrades, atomics. */
sim::CoTask<void>
mixedAccesses(cpu::HartApi &api)
{
    co_await api.read(0x1000);      // cold miss
    co_await api.read(0x1000);      // hit
    co_await api.write(0x1000);     // E -> M, local fast path
    co_await api.write(0x9000);     // cold write miss
    co_await api.atomicRmw(0x9000); // atomic on held line
}

} // namespace

TEST(TimedMemory, UncontendedBlockingAccessesMatchInline)
{
    const auto runOnce = [](mem::MemMode mode) {
        cpu::SystemParams sp;
        sp.numCores = 1;
        sp.mem.mode = mode;
        cpu::System sys(sp);
        sys.installThread(0, mixedAccesses(sys.hartApi(0)));
        EXPECT_TRUE(sys.run(100'000));
        return sys.clock().now();
    };
    // A single in-order hart never contends, so the timed subsystem must
    // charge exactly the inline functional latencies.
    EXPECT_EQ(runOnce(mem::MemMode::Timed),
              runOnce(mem::MemMode::Inline));
}

namespace
{

bool g_flag = false;

sim::CoTask<void>
dirtyProducer(cpu::HartApi &api)
{
    co_await api.write(0x4000); // line becomes Modified in core 0
    g_flag = true;
}

sim::CoTask<void>
dirtyConsumer(cpu::HartApi &api, const sim::Clock *clock, Cycle *elapsed)
{
    co_await sim::WaitUntil{[] { return g_flag; }};
    const Cycle t0 = clock->now();
    co_await api.read(0x4000); // dirty transfer through main memory
    *elapsed = clock->now() - t0;
}

} // namespace

TEST(TimedMemory, DirtyTransferThroughMemoryOnTimedPath)
{
    g_flag = false;
    cpu::System sys(timedParams(2));
    Cycle elapsed = 0;
    sys.installThread(0, dirtyProducer(sys.hartApi(0)));
    sys.installThread(1, dirtyConsumer(sys.hartApi(1), &sys.clock(),
                                       &elapsed));
    ASSERT_TRUE(sys.run(100'000));

    const mem::MemParams &mp = sys.params().mem;
    // The read pays the uncontended functional latency: hit + refill +
    // the through-memory dirty penalty MESI imposes (Section V-B).
    EXPECT_EQ(elapsed,
              mp.hitLatency + mp.missLatency + mp.dirtyRemoteExtra);
    EXPECT_EQ(sys.memory().stats().scalarValue("mem.dirtyRemoteTransfers"),
              1.0);
    EXPECT_EQ(sys.memory().lineState(1, 0x4000), mem::LineState::Shared);
    // A dirty transfer occupies main memory twice (writeback + refill).
    EXPECT_GE(sys.stats().scalarValue("port.dram.busyCycles"),
              static_cast<double>(3 * mp.memOccupancy));
}

namespace
{

sim::CoTask<void>
touchBurst(cpu::HartApi &api, Addr base, unsigned lines, Cycle *elapsed,
           const sim::Clock *clock)
{
    const Cycle t0 = clock->now();
    co_await api.streamTouch(base, lines, /*is_write=*/false);
    *elapsed = clock->now() - t0;
}

Cycle
burstCycles(unsigned mshrs, unsigned lines, mem::MemMode mode)
{
    cpu::SystemParams sp;
    sp.numCores = 1;
    sp.mem.mode = mode;
    sp.mem.mshrs = mshrs;
    cpu::System sys(sp);
    Cycle elapsed = 0;
    sys.installThread(0, touchBurst(sys.hartApi(0), 0x100000, lines,
                                    &elapsed, &sys.clock()));
    EXPECT_TRUE(sys.run(1'000'000));
    return elapsed;
}

} // namespace

TEST(TimedMemory, MshrSaturationBackpressure)
{
    // A cold 32-line burst with one MSHR serializes on completions; more
    // MSHRs expose more memory-level parallelism.
    const Cycle one = burstCycles(1, 32, mem::MemMode::Timed);
    const Cycle four = burstCycles(4, 32, mem::MemMode::Timed);
    const Cycle eight = burstCycles(8, 32, mem::MemMode::Timed);
    EXPECT_GT(one, four);
    EXPECT_GE(four, eight);

    // With a single MSHR the burst degenerates to the inline serial sum.
    const Cycle inl = burstCycles(1, 32, mem::MemMode::Inline);
    EXPECT_EQ(one, inl);
    EXPECT_LT(eight, inl);

    // The stall shows up in the backpressure counter.
    cpu::SystemParams sp;
    sp.numCores = 1;
    sp.mem.mode = mem::MemMode::Timed;
    sp.mem.mshrs = 1;
    cpu::System sys(sp);
    Cycle elapsed = 0;
    sys.installThread(0, touchBurst(sys.hartApi(0), 0x100000, 32, &elapsed,
                                    &sys.clock()));
    ASSERT_TRUE(sys.run(1'000'000));
    EXPECT_GT(sys.stats().scalarValue("mem.timed.mshrStallCycles"), 0.0);
}

TEST(TimedMemory, ZeroLineStreamTouchIsFreeInBothModes)
{
    // No lines means no traffic (and no MESI mutation) in either mode.
    EXPECT_EQ(burstCycles(4, 0, mem::MemMode::Timed), 0u);
    EXPECT_EQ(burstCycles(4, 0, mem::MemMode::Inline), 0u);
}

TEST(TimedMemory, StreamTouchLatencyMonotonicInFootprint)
{
    Cycle prev = 0;
    for (unsigned lines : {1u, 4u, 8u, 16u, 32u, 64u}) {
        const Cycle c = burstCycles(4, lines, mem::MemMode::Timed);
        EXPECT_GT(c, prev) << lines << " lines";
        prev = c;
    }
}

namespace
{

sim::CoTask<void>
contender(cpu::HartApi &api, Addr base, Cycle *end, const sim::Clock *clock)
{
    co_await api.streamTouch(base, 16, /*is_write=*/false);
    *end = clock->now();
}

Cycle
contendedRun(sim::EvalMode mode, unsigned cores)
{
    cpu::SystemParams sp;
    sp.numCores = cores;
    sp.mem.mode = mem::MemMode::Timed;
    sp.evalMode = mode;
    cpu::System sys(sp);
    std::vector<Cycle> ends(cores, 0);
    for (CoreId c = 0; c < cores; ++c)
        sys.installThread(c, contender(sys.hartApi(c),
                                       0x100000 + c * 0x10000, &ends[c],
                                       &sys.clock()));
    EXPECT_TRUE(sys.run(1'000'000));
    return sys.clock().now();
}

} // namespace

TEST(TimedMemory, SameCycleContentionIsDeterministicAcrossKernels)
{
    // Four cores fire cold bursts in the same cycle: the bus serializes
    // them, and the outcome must be identical run-to-run and between the
    // event-driven kernel and the tick-the-world reference.
    const Cycle a = contendedRun(sim::EvalMode::EventDriven, 4);
    const Cycle b = contendedRun(sim::EvalMode::EventDriven, 4);
    const Cycle w = contendedRun(sim::EvalMode::TickWorld, 4);
    EXPECT_EQ(a, b);
    EXPECT_EQ(a, w);

    // Contention must actually cost something vs a solo run.
    const Cycle solo = contendedRun(sim::EvalMode::EventDriven, 1);
    EXPECT_GT(a, solo);
}
