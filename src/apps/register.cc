#include "apps/register.hh"

namespace picosim::apps
{

void
registerBuiltinWorkloads(spec::WorkloadRegistry &reg)
{
    // Registration order is the --list-workloads order: the taskbench
    // microbenchmarks first, then the Figure-9 applications, then the
    // nested (recursive) workloads.
    registerTaskbenchWorkloads(reg);
    registerBlackscholesWorkloads(reg);
    registerJacobiWorkloads(reg);
    registerSparseLuWorkloads(reg);
    registerStreamWorkloads(reg);
    registerCholeskyWorkloads(reg);
    registerMergesortWorkloads(reg);
}

} // namespace picosim::apps
