/**
 * @file
 * Conservative-PDES domain partitioning of the event kernel.
 *
 * A Simulator may be partitioned into host-thread DOMAINS: disjoint
 * groups of components, each with its own clock, timing wheel and run
 * loop. Domains execute lookahead windows [W, W + L) independently and
 * synchronize at window boundaries, where L (the lookahead) is the
 * minimum declared latency over the timed links that cross a domain
 * boundary: a message sent at any cycle inside the window over a link of
 * latency >= L cannot arrive before the window ends, so intra-window
 * execution never observes a concurrent mutation.
 *
 * Two kinds of traffic cross a boundary, both applied single-threaded at
 * the window barrier so the merge order is fixed:
 *
 *  - TimedPort traffic: a cross-domain port runs in staging mode
 *    (TimedPort::enableCrossDomainStaging) — the producer appends to a
 *    producer-owned staging ring, and the port registers a drain with
 *    the Simulator that replays the staged pushes (same accept/latency
 *    arithmetic, anchored at the recorded send cycle) at the boundary.
 *  - Bare requestWake() calls: captured in the evaluating domain's
 *    per-destination outbox as WakeRequests and applied at the boundary,
 *    clamped to the boundary cycle (the destination's window has already
 *    been executed up to it).
 *
 * Determinism: the same windowed schedule runs regardless of the host
 * thread count — one thread iterates the domains in id order, N threads
 * execute them concurrently — and all cross-domain state merges happen
 * in the single-threaded barrier step in a fixed order (links in
 * registration order, then outboxes in source-domain order). External
 * wakes land in each component's sorted, deduplicated pending set, so
 * the post-merge kernel state is independent of arrival order, and
 * same-cycle dispatch stays in per-domain registration order exactly as
 * in the sequential kernel. Results are therefore bit-identical for any
 * hostThreads >= 1.
 */

#ifndef PICOSIM_SIM_DOMAIN_HH
#define PICOSIM_SIM_DOMAIN_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/clock.hh"
#include "sim/event_wheel.hh"
#include "sim/types.hh"

namespace picosim::sim
{

class Ticked;

/** A cross-domain wake captured mid-window, applied at the boundary. */
struct WakeRequest
{
    Ticked *component;
    Cycle cycle;
};

/**
 * A timed link crossing a domain boundary. The declared latency bounds
 * the lookahead window; the drain callback replays the link's staged
 * traffic into the consumer domain at each window boundary.
 */
struct CrossDomainLink
{
    Cycle latency = 0;
    std::function<void()> drain;
};

/**
 * Per-domain scheduling engine: the complete state the kernel's
 * event-driven algorithm needs, so one Domain is "a sequential kernel".
 * The unpartitioned Simulator owns exactly one (its members ARE the
 * sequential kernel's members); partitioning adds more, and the windowed
 * run loop executes each with the unchanged per-domain algorithm.
 */
struct Domain
{
    Clock clock;
    EventWheel wheel;
    std::vector<Ticked *> ticked; ///< members, registration order
    unsigned id = 0;
    unsigned farCount = 0;        ///< components armed beyond the horizon
    Cycle farMin = kCycleNever;   ///< lower bound on far armed cycles
    bool evaluating = false;
    unsigned currentRegIndex = 0;
    std::uint64_t componentTicks = 0;

    /** Cycles evaluated in the current window, ascending; merged (and
     *  global-deduplicated) into evaluatedCycles at the boundary. */
    std::vector<Cycle> windowCycles;

    /** Outgoing cross-domain wakes, one FIFO per destination domain;
     *  only this domain's thread appends during a window. */
    std::vector<std::vector<WakeRequest>> outbox;
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_DOMAIN_HH
