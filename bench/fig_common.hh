/**
 * @file
 * Shared evaluation matrix used by the Figure 8/9/10 benches: every
 * Figure-9 input run under serial + the three runtimes of the figure.
 */

#ifndef PICOSIM_BENCH_FIG_COMMON_HH
#define PICOSIM_BENCH_FIG_COMMON_HH

#include <string>
#include <vector>

#include "runtime/harness.hh"

namespace picosim::bench
{

struct MatrixRow
{
    std::string program;
    std::string label;
    /** Canonical serialized RunSpec of the Phentos variant of this row
     *  (the headline runtime); replayable with `picosim_run --spec`. */
    std::string spec;
    std::uint64_t tasks = 0;
    double meanTaskSize = 0.0;
    Cycle serialCycles = 0;
    // Parallel makespans per runtime (0 if not run / incomplete).
    Cycle nanosSw = 0;
    Cycle nanosRv = 0;
    Cycle phentos = 0;

    double speedupSw() const { return ratio(serialCycles, nanosSw); }
    double speedupRv() const { return ratio(serialCycles, nanosRv); }
    double speedupPh() const { return ratio(serialCycles, phentos); }

    static double
    ratio(Cycle num, Cycle den)
    {
        return den == 0 ? 0.0
                        : static_cast<double>(num) /
                              static_cast<double>(den);
    }
};

/**
 * Run the full Figure 9 matrix (or a subsample in quick mode). The
 * matrix expands into independent (input, runtime) jobs executed on a
 * worker-thread pool; results are identical to the former serial loop.
 *
 * @param progress When true, prints one line per finished run to stderr.
 * @param threads Worker threads for the batch (0 = hardware concurrency).
 */
std::vector<MatrixRow> runFigure9Matrix(bool progress = true,
                                        unsigned threads = 0);

} // namespace picosim::bench

#endif // PICOSIM_BENCH_FIG_COMMON_HH
