/**
 * @file
 * Tooling example: record the full task schedule of a sparseLU run and
 * export it as Chrome trace-event JSON (open in chrome://tracing or
 * https://ui.perfetto.dev), plus a queue-latency breakdown comparing
 * Phentos with Nanos-SW on the same program.
 */

#include <cstdio>
#include <fstream>

#include "apps/workloads.hh"
#include "runtime/nanos.hh"
#include "runtime/phentos.hh"
#include "runtime/task_trace.hh"

using namespace picosim;

namespace
{

rt::TaskTrace
traced(rt::Runtime &runtime, rt::TaskTrace &trace,
       const rt::Program &prog)
{
    cpu::System sys;
    trace.reset(prog.numTasks());
    runtime.install(sys, prog);
    if (!sys.run(10'000'000'000ull))
        std::fprintf(stderr, "warning: %s run hit the cycle limit\n",
                     runtime.name().c_str());
    return trace;
}

} // namespace

int
main()
{
    const rt::Program prog = apps::sparseLu(8, 16);
    std::printf("tracing %s: %llu tasks\n", prog.name.c_str(),
                static_cast<unsigned long long>(prog.numTasks()));

    rt::Phentos phentos;
    rt::TaskTrace ph_trace;
    phentos.setTrace(&ph_trace);
    traced(phentos, ph_trace, prog);

    rt::Nanos nanos(rt::Nanos::Variant::SW);
    rt::TaskTrace sw_trace;
    nanos.setTrace(&sw_trace);
    traced(nanos, sw_trace, prog);

    std::printf("\n%-10s %18s %18s\n", "runtime", "mean queue (cyc)",
                "mean service (cyc)");
    std::printf("%-10s %18.0f %18.0f\n", "Phentos",
                ph_trace.meanQueueLatency(), ph_trace.meanServiceTime());
    std::printf("%-10s %18.0f %18.0f\n", "Nanos-SW",
                sw_trace.meanQueueLatency(), sw_trace.meanServiceTime());

    const char *path = "sparselu_phentos_trace.json";
    std::ofstream out(path);
    ph_trace.writeChromeTrace(out, prog.name);
    std::printf("\nwrote %s (open in chrome://tracing)\n", path);
    return 0;
}
