#include "area/resource_model.hh"

#include "rocc/task_packets.hh"

namespace picosim::area
{

std::uint64_t
picosStateBits(const picos::PicosParams &p)
{
    std::uint64_t bits = 0;
    // Packet queues: 32-bit entries.
    bits += 32ull * (p.subQueueDepth + p.readyQueueDepth +
                     p.retireQueueDepth);
    // Gateway collect buffer: a full 48-packet descriptor.
    bits += 32ull * rocc::kDescriptorPackets;
    return bits;
}

std::uint64_t
picosTableBits(const picos::PicosParams &p)
{
    std::uint64_t bits = 0;
    // Task reservation station: swId(64) + state(2) + pending count(4) +
    // a dependents list sized for 4 average out-edges (id+gen ~ 20b).
    bits += static_cast<std::uint64_t>(p.trsEntries) * (64 + 2 + 4 + 4 * 20);
    // Dependence table: address tag (58) + writer ref (20) + 4 reader
    // refs (20 each) + valid.
    bits += static_cast<std::uint64_t>(p.dctSets) * p.dctWays *
            (58 + 20 + 4 * 20 + 1);
    return bits;
}

std::uint64_t
managerStateBits(const manager::ManagerParams &p, unsigned num_cores)
{
    std::uint64_t per_core = 0;
    per_core += 6ull * p.requestQueueDepth;        // burst sizes (<= 48)
    per_core += 96ull * p.coreReadyQueueDepth;     // ready tuples
    per_core += 32ull * p.retireBufferDepth;       // picos ids

    std::uint64_t shared = 0;
    shared += 32ull * p.finalBufferDepth;
    shared += 4ull * p.routingQueueDepth;          // core ids
    shared += 96ull * p.roccReadyQueueDepth;
    shared += 96;                                  // packet encoder regs

    return per_core * num_cores + shared;
}

std::uint64_t
managerTableBits(const manager::ManagerParams &p, unsigned num_cores)
{
    // The 48-entry per-core submission buffers map to distributed RAM.
    return 32ull * p.subBufferDepth * num_cores;
}

std::uint64_t
schedulingSystemCells(const AreaParams &a, const picos::PicosParams &pp,
                      const manager::ManagerParams &mp)
{
    const double ff_bits =
        static_cast<double>(picosStateBits(pp)) +
        static_cast<double>(managerStateBits(mp, a.numCores));
    const double bram_bits =
        static_cast<double>(picosTableBits(pp)) +
        static_cast<double>(managerTableBits(mp, a.numCores));
    std::uint64_t cells =
        static_cast<std::uint64_t>(ff_bits * a.cellsPerStateBit +
                                   bram_bits * a.cellsPerBramBit);
    cells += a.picosControlCells + a.managerControlCells;
    cells += static_cast<std::uint64_t>(a.numCores) * a.delegateCells;
    return cells;
}

std::vector<ModuleUsage>
tableII(const AreaParams &a, const picos::PicosParams &pp,
        const manager::ManagerParams &mp)
{
    const std::uint64_t ssystem = schedulingSystemCells(a, pp, mp);
    const std::uint64_t top =
        static_cast<std::uint64_t>(a.numCores) * a.coreCells +
        a.uncoreCells + ssystem;

    const auto frac = [top](std::uint64_t cells) {
        return static_cast<double>(cells) / static_cast<double>(top);
    };

    return {
        {"top", "Whole system", top, 1.0},
        {"Core", "Core with FPU and L1$", a.coreCells, frac(a.coreCells)},
        {"fpuOpt", "Floating-point unit", a.fpuCells, frac(a.fpuCells)},
        {"dcache", "D-cache of a single core", a.dcacheCells,
         frac(a.dcacheCells)},
        {"icache", "I-cache of a single core", a.icacheCells,
         frac(a.icacheCells)},
        {"SSystem", "Picos, Picos Manager, and Delegates", ssystem,
         frac(ssystem)},
    };
}

} // namespace picosim::area
