/**
 * @file
 * Task-parallel program representation consumed by the runtimes.
 *
 * A Program is the trace of OmpSs-style pragmas a benchmark would execute:
 * an ordered list of task spawns (each with a payload cost and annotated
 * pointer parameters) interleaved with taskwait barriers. Payload cost is
 * the -O3 serial execution time of the task body in core cycles; the
 * workload generators in src/apps compute it from their block sizes.
 */

#ifndef PICOSIM_RUNTIME_TASK_TYPES_HH
#define PICOSIM_RUNTIME_TASK_TYPES_HH

#include <cstdint>
#include <string>
#include <vector>

#include "rocc/task_packets.hh"
#include "sim/types.hh"

namespace picosim::rt
{

using rocc::Dir;
using rocc::TaskDep;

/** One spawned task. */
struct Task
{
    std::uint64_t id = 0; ///< dense software id (index in spawn order)
    Cycle payload = 0;    ///< serial execution cost of the task body
    std::vector<TaskDep> deps;
};

/** One program action, in program order. */
struct Action
{
    enum class Kind : std::uint8_t { Spawn, Taskwait };

    Kind kind = Kind::Spawn;
    Task task; ///< valid when kind == Spawn
};

/** A whole task-parallel program. */
struct Program
{
    std::string name;
    std::vector<Action> actions;

    /** Append a spawn; assigns and returns the task id. */
    std::uint64_t
    spawn(Cycle payload, std::vector<TaskDep> deps = {})
    {
        Action a;
        a.kind = Action::Kind::Spawn;
        a.task.id = numTasks_;
        a.task.payload = payload;
        a.task.deps = std::move(deps);
        actions.push_back(std::move(a));
        return numTasks_++;
    }

    /** Append a taskwait barrier. */
    void
    taskwait()
    {
        Action a;
        a.kind = Action::Kind::Taskwait;
        actions.push_back(std::move(a));
    }

    std::uint64_t numTasks() const { return numTasks_; }

    /** Serial baseline: the task bodies executed back to back. */
    Cycle
    serialPayloadCycles() const
    {
        Cycle total = 0;
        for (const Action &a : actions) {
            if (a.kind == Action::Kind::Spawn)
                total += a.task.payload;
        }
        return total;
    }

    /** Mean task payload in cycles (task granularity, Section III-E). */
    double
    meanTaskSize() const
    {
        return numTasks_ == 0
                   ? 0.0
                   : static_cast<double>(serialPayloadCycles()) / numTasks_;
    }

    /** The task for a given id (spawn order). O(actions) build, cached. */
    const Task &taskById(std::uint64_t id) const;

  private:
    std::uint64_t numTasks_ = 0;
    /**
     * Lazy id -> actions position index. Positions (not pointers) so the
     * cache stays valid across Program copies — batch jobs copy their
     * programs so each worker thread owns its (lazily mutated) index.
     */
    mutable std::vector<std::size_t> index_;
};

} // namespace picosim::rt

#endif // PICOSIM_RUNTIME_TASK_TYPES_HH
