/** @file Unit tests for the workload registry behind --workload /
 *  --list-workloads. */

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "apps/workloads.hh"
#include "spec/workload_registry.hh"

using namespace picosim;
using namespace picosim::spec;

TEST(WorkloadRegistry, AllBuiltinWorkloadsRegistered)
{
    const std::set<std::string> expected = {
        "task-free",   "task-chain",      "task-tree",
        "blackscholes", "jacobi",          "sparselu",
        "stream-deps", "stream-barr",     "cholesky-nested",
        "mergesort-nested",
    };
    std::set<std::string> got;
    for (const WorkloadDef &def : WorkloadRegistry::instance().list()) {
        got.insert(def.name);
        EXPECT_FALSE(def.description.empty()) << def.name;
        EXPECT_TRUE(def.build) << def.name;
        for (const ParamDef &p : def.params) {
            EXPECT_FALSE(p.help.empty()) << def.name << "." << p.name;
            EXPECT_LE(p.min, p.def) << def.name << "." << p.name;
            EXPECT_LE(p.def, p.max) << def.name << "." << p.name;
        }
    }
    EXPECT_EQ(got, expected);
}

TEST(WorkloadRegistry, EveryFigure9InputResolvesThroughRegistry)
{
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    const auto inputs = apps::figure9Inputs();
    ASSERT_EQ(inputs.size(), 37u);
    for (const apps::BenchInput &input : inputs) {
        const WorkloadDef *def = reg.find(input.program);
        ASSERT_NE(def, nullptr) << input.program;
        // Every figure parameter must be in the workload's schema...
        for (const auto &[param, value] : input.args) {
            const ParamDef *p = def->findParam(param);
            ASSERT_NE(p, nullptr) << input.program << "." << param;
            EXPECT_GE(value, p->min) << input.program << "." << param;
            EXPECT_LE(value, p->max) << input.program << "." << param;
        }
        // ...and the input must actually build through the registry.
        const rt::Program prog = reg.build(input.program, input.args);
        EXPECT_GT(prog.numTasks(), 0u)
            << input.program << " " << input.label;
        // Generators label programs themselves (sizes may be rendered
        // differently from the figure label), but the registry name
        // always prefixes it.
        EXPECT_EQ(prog.name.rfind(input.program, 0), 0u) << prog.name;
    }
}

TEST(WorkloadRegistry, CanonicalArgsPadsDefaultsAndValidates)
{
    const WorkloadDef *def =
        WorkloadRegistry::instance().find("blackscholes");
    ASSERT_NE(def, nullptr);

    const WorkloadArgs canonical = def->canonicalArgs({{"block", 8}});
    EXPECT_EQ(canonical.at("block"), 8u);
    EXPECT_EQ(canonical.size(), def->params.size());
    for (const ParamDef &p : def->params)
        EXPECT_TRUE(canonical.count(p.name)) << p.name;

    // Unknown parameter: named, with a nearest-name suggestion.
    try {
        def->canonicalArgs({{"blok", 8}});
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("'wl.blok'"), std::string::npos) << msg;
        EXPECT_NE(msg.find("did you mean"), std::string::npos) << msg;
        EXPECT_NE(msg.find("block"), std::string::npos) << msg;
    }

    // Out-of-range value: message names key, value and legal range.
    const ParamDef *block = def->findParam("block");
    ASSERT_NE(block, nullptr);
    try {
        def->canonicalArgs({{"block", block->max + 1}});
        FAIL() << "expected SpecError";
    } catch (const SpecError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("block"), std::string::npos) << msg;
        EXPECT_NE(msg.find(std::to_string(block->max)),
                  std::string::npos) << msg;
    }
}

TEST(WorkloadRegistry, BuildRejectsInvalidCombinations)
{
    // 1000 options are not divisible into blocks of 16: a constraint the
    // per-parameter ranges cannot express, enforced by the factory.
    EXPECT_THROW(WorkloadRegistry::instance().build(
                     "blackscholes", {{"options", 1000}, {"block", 16}}),
                 SpecError);
    EXPECT_THROW(WorkloadRegistry::instance().build("no-such-workload"),
                 SpecError);
}

TEST(WorkloadRegistry, NearestAndDidYouMean)
{
    const WorkloadRegistry &reg = WorkloadRegistry::instance();
    EXPECT_EQ(reg.nearest("blackscoles"), "blackscholes");
    EXPECT_EQ(reg.nearest("task-fre"), "task-free");

    EXPECT_EQ(didYouMean("coers", "cores", "--"),
              " (did you mean '--cores'?)");
    EXPECT_EQ(didYouMean("coers", "cores"), " (did you mean 'cores'?)");
    // A wildly different string is not presented as a typo.
    EXPECT_EQ(didYouMean("zzzzzzzz", "cores"), "");
    EXPECT_EQ(didYouMean("coers", ""), "");

    EXPECT_EQ(editDistance("cores", "cores"), 0u);
    EXPECT_EQ(editDistance("cores", "coers"), 2u);
    EXPECT_EQ(editDistance("", "abc"), 3u);
}
