#include "runtime/harness.hh"

#include <atomic>
#include <chrono>
#include <exception>
#include <iterator>
#include <mutex>
#include <optional>
#include <semaphore>
#include <sstream>
#include <thread>

#include "runtime/nanos.hh"
#include "runtime/phentos.hh"
#include "runtime/serial.hh"
#include "sim/log.hh"

namespace picosim::rt
{

std::string_view
kindName(RuntimeKind kind)
{
    switch (kind) {
      case RuntimeKind::Serial:   return "serial";
      case RuntimeKind::NanosSW:  return "Nanos-SW";
      case RuntimeKind::NanosRV:  return "Nanos-RV";
      case RuntimeKind::NanosAXI: return "Nanos-AXI";
      case RuntimeKind::Phentos:  return "Phentos";
    }
    sim::fatal("unknown runtime kind");
}

std::unique_ptr<Runtime>
makeRuntime(RuntimeKind kind, const CostModel &cm)
{
    switch (kind) {
      case RuntimeKind::Serial:
        return std::make_unique<Serial>(cm);
      case RuntimeKind::NanosSW:
        return std::make_unique<Nanos>(Nanos::Variant::SW, cm);
      case RuntimeKind::NanosRV:
        return std::make_unique<Nanos>(Nanos::Variant::RV, cm);
      case RuntimeKind::NanosAXI:
        return std::make_unique<Nanos>(Nanos::Variant::AXI, cm);
      case RuntimeKind::Phentos:
        return std::make_unique<Phentos>(cm);
    }
    sim::fatal("unknown runtime kind");
}

void
fillContentionStats(RunResult &res, cpu::System &sys)
{
    const auto stat = [&sys](const char *name) {
        return static_cast<std::uint64_t>(sys.stats().scalarValue(name));
    };
    const auto sum = [&sys](const char *prefix, const char *suffix) {
        return static_cast<std::uint64_t>(
            sys.stats().sumScalars(prefix, suffix));
    };
    res.busTransactions = stat("port.membus.grants");
    res.busStallCycles = stat("port.membus.stallCycles");
    res.dramStallCycles = stat("port.dram.stallCycles");
    res.mshrStallCycles = stat("mem.timed.mshrStallCycles");

    // Scheduler-fabric contention. The "manager" prefix matches the
    // single manager and every per-cluster "manager.c<k>" instance, so
    // single-Picos and sharded runs are directly comparable.
    res.schedSubStalls = sum("manager", ".finalBuffer.pushStalls");
    res.schedRoutingStalls = sum("manager", ".routingQueue.pushStalls");
    res.schedReadyStalls = sum("manager", ".roccReadyQueue.pushStalls");
    res.schedGatewayStallCycles = sum("sharded.", ".gate.stallCycles");
    res.crossShardEdges = stat("sharded.crossShardEdges");
    res.workSteals = stat("sharded.steals");
}

void
armControls(cpu::System &sys, const RunControls &ctl,
            const sim::FaultPlan &fault)
{
    // Compose the wall-clock deadline: the tighter of the caller's
    // absolute cutoff and a per-run budget counted from right here.
    using SteadyClock = std::chrono::steady_clock;
    SteadyClock::time_point deadline{};
    bool hasDeadline = false;
    if (ctl.hasDeadline) {
        deadline = ctl.deadline;
        hasDeadline = true;
    }
    if (ctl.timeoutSec > 0.0) {
        const auto budget = SteadyClock::now() +
            std::chrono::duration_cast<SteadyClock::duration>(
                std::chrono::duration<double>(ctl.timeoutSec));
        if (!hasDeadline || budget < deadline)
            deadline = budget;
        hasDeadline = true;
    }
    const bool drops = fault.kind == sim::FaultKind::DropJob;
    if (!ctl.cancel && !ctl.groupCancel && !hasDeadline && !drops)
        return;
    // The drop-job fault is a simulated-clock condition, so unlike the
    // wall-clock legs it stops at the same deterministic boundary in
    // every rerun: the first stop-check poll with now >= fault.cycle.
    const sim::Clock *clk = drops ? &sys.clock() : nullptr;
    const Cycle dropCycle = fault.cycle;
    sys.simulator().setStopCheck(
        [ctl, deadline, hasDeadline, clk, dropCycle]() noexcept {
            if (ctl.cancelRequested())
                return true;
            if (clk != nullptr && clk->now() >= dropCycle)
                return true;
            return hasDeadline && SteadyClock::now() >= deadline;
        });
}

RunStatus
finishStatus(cpu::System &sys, const RunControls &ctl, bool completed,
             const sim::FaultPlan &fault)
{
    if (sys.simulator().stoppedByCheck()) {
        if (ctl.cancelRequested())
            return RunStatus::Cancelled;
        if (fault.kind == sim::FaultKind::DropJob &&
            sys.clock().now() >= fault.cycle)
            return RunStatus::Dropped;
        return RunStatus::TimedOut;
    }
    return completed ? RunStatus::Ok : RunStatus::CycleLimit;
}

std::shared_ptr<CheckpointOutcome>
armCheckpoints(cpu::System &sys, const RunControls &ctl)
{
    auto out = std::make_shared<CheckpointOutcome>();

    // Resume without periodic checkpoints: arm the stride at exactly
    // the recorded cut so the replay re-fires at the original boundary
    // (the first firing at or past cycle C reproduces label C — the
    // window sequence and dispatch schedule are deterministic, and C is
    // itself a label of the original run; see DESIGN.md).
    const Cycle every =
        ctl.checkpointEvery != 0
            ? ctl.checkpointEvery
            : (ctl.resumeFrom != nullptr && ctl.resumeFrom->cycle != 0
                   ? ctl.resumeFrom->cycle
                   : 0);
    if (every == 0)
        return out;

    cpu::System *sysp = &sys;
    const sim::Checkpoint *resume = ctl.resumeFrom;
    const bool dumps = ctl.checkpointDumps;
    const auto cb = ctl.onCheckpoint;
    sys.simulator().setCheckpointHook(
        // The hook runs inside the (noexcept under PDES) run loop, so
        // every failure path — user callback throw, OOM in the dump —
        // is converted into a mismatch record the harness epilogue
        // turns into RunStatus::Error.
        [out, sysp, resume, dumps, cb](Cycle boundary) noexcept {
            try {
                std::ostringstream os;
                sysp->stats().dump(os);
                sysp->memory().stats().dump(os);
                std::string dump = os.str();

                sim::Checkpoint cp;
                cp.cycle = boundary;
                cp.seq = ++out->taken;
                cp.digest = sim::fnv1a(dump);
                if (dumps)
                    cp.statDump = std::move(dump);

                if (resume != nullptr && boundary == resume->cycle) {
                    if (cp.digest == resume->digest) {
                        out->verified = true;
                    } else if (!out->mismatch) {
                        out->mismatch = true;
                        out->message =
                            "checkpoint digest mismatch at cycle " +
                            std::to_string(boundary) +
                            ": the replayed run diverged from the "
                            "checkpointed one (spec, binary or "
                            "environment changed since the checkpoint "
                            "was taken)";
                    }
                }
                if (cb)
                    cb(cp);
            } catch (const std::exception &e) {
                if (!out->mismatch) {
                    out->mismatch = true;
                    out->message =
                        std::string("checkpoint hook failed: ") + e.what();
                }
            } catch (...) {
                if (!out->mismatch) {
                    out->mismatch = true;
                    out->message = "checkpoint hook failed";
                }
            }
        },
        every);
    return out;
}

RunResult
runProgram(RuntimeKind kind, const Program &prog,
           const HarnessParams &params)
{
    const RunControls &ctl = params.controls;
    if (ctl.cancelRequested()) {
        // Between-runs cancellation boundary: report the job cancelled
        // without building a System (nothing simulated, nothing leaked).
        RunResult res;
        res.runtime = std::string(kindName(kind));
        res.program = prog.name;
        res.status = RunStatus::Cancelled;
        return res;
    }

    cpu::SystemParams sp = params.system;
    sp.numCores = kind == RuntimeKind::Serial ? 1 : params.numCores;
    sp.fault = params.fault;
    if (kind == RuntimeKind::Serial) {
        // The serial baseline never touches the scheduler; a clustered
        // topology cannot be laid out over its single core, and a
        // shard/link fault has no meaning without one.
        sp.topology = {};
        sp.fault = {};
    }

    cpu::System sys(sp);
    std::unique_ptr<Runtime> runtime = makeRuntime(kind, params.costs);
    runtime->install(sys, prog);
    armControls(sys, ctl, params.fault);
    const auto cpState = armCheckpoints(sys, ctl);

    const bool ok = sys.run(params.cycleLimit);

    RunResult res;
    res.runtime = runtime->name();
    res.program = prog.name;
    res.completed = ok && runtime->finished();
    res.status = finishStatus(sys, ctl, res.completed, params.fault);
    res.cycles = sys.clock().now();
    res.serialPayload = prog.serialPayloadCycles();
    res.tasks = prog.numTasks();
    res.meanTaskSize = prog.meanTaskSize();
    res.evaluatedCycles = sys.simulator().evaluatedCycles();
    res.componentTicks = sys.simulator().componentTicks();
    res.tickWorldTicks = sys.simulator().tickWorldTicks();
    res.workerSubmits = runtime->tasksSubmittedByWorkers();
    res.inlineTasks = runtime->tasksExecutedInline();
    fillContentionStats(res, sys);
    if (ctl.resumeFrom != nullptr)
        res.resumedFromCycle = ctl.resumeFrom->cycle;
    if (cpState->mismatch) {
        res.status = RunStatus::Error;
        res.error = cpState->message;
        res.completed = false;
    }
    if (res.status == RunStatus::CycleLimit) {
        // Cancelled/timed-out runs are expected to be incomplete; only
        // an exhausted cycle budget signals a genuinely stuck program.
        PSIM_WARN(sys.clock(), "harness",
                  res.runtime << " did not complete " << prog.name << " ("
                              << runtime->tasksExecuted() << "/"
                              << prog.numTasks() << " tasks)");
    }
    return res;
}

RunResult
runWithSpeedup(RuntimeKind kind, const Program &prog,
               const HarnessParams &params)
{
    const RunResult serial = runProgram(RuntimeKind::Serial, prog, params);
    if (kind == RuntimeKind::Serial) {
        RunResult res = serial;
        res.serialCycles = serial.cycles;
        return res;
    }
    if (serial.status == RunStatus::Cancelled ||
        serial.status == RunStatus::TimedOut) {
        // Between-runs boundary: the baseline was stopped, so the main
        // run never starts and inherits the stop status.
        RunResult res;
        res.runtime = std::string(kindName(kind));
        res.program = prog.name;
        res.status = serial.status;
        res.serialCycles = serial.cycles;
        return res;
    }
    RunResult res = runProgram(kind, prog, params);
    res.serialCycles = serial.cycles;
    return res;
}

std::vector<RunResult>
runBatch(const std::vector<Job> &jobs, const BatchOptions &opts)
{
    std::vector<RunResult> results(jobs.size());
    if (jobs.empty())
        return results;

    unsigned threads = opts.threads;
    if (threads == 0)
        threads = std::max(1u, std::thread::hardware_concurrency());
    threads = std::min<unsigned>(threads,
                                 static_cast<unsigned>(jobs.size()));

    // The in-flight gate bounds how many Systems exist at once; jobs a
    // worker picks up while the gate is full wait before simulating, so
    // the result order and contents stay identical.
    std::optional<std::counting_semaphore<>> gate;
    if (opts.maxInFlight > 0 && opts.maxInFlight < threads)
        gate.emplace(static_cast<std::ptrdiff_t>(opts.maxInFlight));

    std::atomic<std::size_t> nextJob{0};
    std::mutex mtx; // guards firstError + onStart/onResult invocations
    std::exception_ptr firstError;

    const auto worker = [&] {
        while (true) {
            const std::size_t i =
                nextJob.fetch_add(1, std::memory_order_relaxed);
            if (i >= jobs.size())
                return;

            HarnessParams params = jobs[i].params;
            if (opts.cancel && !params.controls.groupCancel)
                params.controls.groupCancel = opts.cancel;
            if (opts.timeoutSec > 0.0 && params.controls.timeoutSec <= 0.0)
                params.controls.timeoutSec = opts.timeoutSec;

            RunResult res;
            bool recorded = true;
            if (params.controls.cancelRequested()) {
                // Cancelled before dispatch: drain the index space so
                // every job gets an explicit per-position result.
                res.runtime = std::string(kindName(jobs[i].kind));
                res.program = jobs[i].prog.name;
                res.status = RunStatus::Cancelled;
            } else {
                if (gate)
                    gate->acquire();
                if (opts.onStart) {
                    const std::lock_guard<std::mutex> lock(mtx);
                    opts.onStart(i);
                }
                try {
                    res = runProgram(jobs[i].kind, jobs[i].prog, params);
                } catch (const std::exception &e) {
                    if (opts.captureErrors) {
                        res = RunResult{};
                        res.runtime = std::string(kindName(jobs[i].kind));
                        res.program = jobs[i].prog.name;
                        res.status = RunStatus::Error;
                        res.error = e.what();
                    } else {
                        recorded = false;
                        const std::lock_guard<std::mutex> lock(mtx);
                        if (!firstError)
                            firstError = std::current_exception();
                    }
                } catch (...) {
                    if (opts.captureErrors) {
                        res = RunResult{};
                        res.runtime = std::string(kindName(jobs[i].kind));
                        res.program = jobs[i].prog.name;
                        res.status = RunStatus::Error;
                        res.error = "unknown worker exception";
                    } else {
                        recorded = false;
                        const std::lock_guard<std::mutex> lock(mtx);
                        if (!firstError)
                            firstError = std::current_exception();
                    }
                }
                if (gate)
                    gate->release();
            }
            if (!recorded)
                continue;
            if (opts.onResult) {
                const std::lock_guard<std::mutex> lock(mtx);
                opts.onResult(i, res);
            }
            results[i] = std::move(res);
        }
    };

    if (threads == 1) {
        worker(); // degenerate pool: run inline, no thread overhead
    } else {
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (unsigned t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
    }

    if (firstError)
        std::rethrow_exception(firstError);
    return results;
}

std::vector<RunResult>
runBatch(const std::vector<Job> &jobs, unsigned threads,
         const std::function<void(std::size_t, const RunResult &)>
             &onResult)
{
    BatchOptions opts;
    opts.threads = threads;
    opts.onResult = onResult;
    opts.captureErrors = false; // legacy contract: rethrow after join
    return runBatch(jobs, opts);
}

std::vector<std::vector<RunResult>>
runMatrix(const std::vector<Program> &progs,
          const std::vector<RuntimeKind> &kinds,
          const HarnessParams &params, unsigned threads,
          const std::function<void(std::size_t, std::size_t,
                                   const RunResult &)> &onResult)
{
    std::vector<Job> jobs;
    jobs.reserve(progs.size() * kinds.size());
    for (const Program &prog : progs) {
        for (const RuntimeKind kind : kinds) {
            Job job;
            job.kind = kind;
            job.prog = prog;
            job.params = params;
            jobs.push_back(std::move(job));
        }
    }

    const auto onJob =
        !onResult ? std::function<void(std::size_t, const RunResult &)>{}
                  : [&](std::size_t i, const RunResult &res) {
                        onResult(i / kinds.size(), i % kinds.size(), res);
                    };
    std::vector<RunResult> flat = runBatch(jobs, threads, onJob);

    std::vector<std::vector<RunResult>> results(progs.size());
    for (std::size_t p = 0; p < progs.size(); ++p) {
        results[p].assign(
            std::make_move_iterator(flat.begin() + p * kinds.size()),
            std::make_move_iterator(flat.begin() + (p + 1) * kinds.size()));
    }
    return results;
}

} // namespace picosim::rt
