#include "sim/stats.hh"

#include <iomanip>

namespace picosim::sim
{

void
StatGroup::dump(std::ostream &os) const
{
    os << std::left;
    for (const auto &kv : scalars_) {
        os << std::setw(48) << kv.first << ' ' << kv.second.value() << '\n';
    }
    for (const auto &kv : dists_) {
        os << std::setw(48) << (kv.first + ".count") << ' '
           << kv.second.count() << '\n';
        os << std::setw(48) << (kv.first + ".mean") << ' '
           << kv.second.mean() << '\n';
        os << std::setw(48) << (kv.first + ".min") << ' '
           << kv.second.min() << '\n';
        os << std::setw(48) << (kv.first + ".max") << ' '
           << kv.second.max() << '\n';
    }
}

} // namespace picosim::sim
