/**
 * @file
 * The per-hart programming interface used by simulated runtime software.
 *
 * Every method is an awaitable operation on the simulated timeline of one
 * hart: custom RoCC instructions charge the 2-cycle RoCC round trip
 * (Section IV-F2), memory operations either charge MESI model latencies
 * inline or suspend on the timed memory subsystem's response port, and
 * executePayload models a task body including bandwidth contention.
 *
 * Delegate access is a link configuration (sim::LinkTimings): the
 * tightly-coupled RoCC instructions pay the short issue latency, while
 * looseIssue()/looseResponse() charge the loosely-coupled (AXI MMIO)
 * link the Nanos-AXI baseline is built on.
 */

#ifndef PICOSIM_CPU_HART_API_HH
#define PICOSIM_CPU_HART_API_HH

#include <cstdint>
#include <optional>

#include "cpu/bandwidth.hh"
#include "delegate/picos_delegate.hh"
#include "mem/coherent_memory.hh"
#include "mem/mem_subsystem.hh"
#include "sim/cotask.hh"
#include "sim/port.hh"
#include "sim/types.hh"

namespace picosim::cpu
{

struct HartApiParams
{
    /** Core-side occupancy of one RoCC custom instruction. */
    Cycle roccLatency = 2;
};

class HartApi
{
  public:
    /**
     * @param timed Timed memory subsystem; nullptr selects the inline
     *        (functional-latency) path against @p mem directly.
     */
    HartApi(CoreId core, delegate::PicosDelegate &del,
            mem::CoherentMemory &mem, BandwidthModel &bw,
            const HartApiParams &params = {},
            mem::TimedMemory *timed = nullptr)
        : core_(core), delegate_(del), mem_(mem), bw_(bw), params_(params),
          timed_(timed)
    {
    }

    CoreId coreId() const { return core_; }
    delegate::PicosDelegate &delegateRef() { return delegate_; }
    mem::CoherentMemory &memRef() { return mem_; }
    BandwidthModel &bandwidthRef() { return bw_; }

    /** Timed memory subsystem, nullptr in MemMode::Inline. */
    mem::TimedMemory *timedMem() { return timed_; }

    // -- Loosely-coupled (MMIO/AXI) delegate link --

    /** Configure the loose link's timings (the AXI runtime installs the
     *  calibrated MMIO costs from its cost model here). */
    void setLooseLink(sim::LinkTimings link) { loose_ = link; }

    const sim::LinkTimings &looseLink() const { return loose_; }

    /** Charge one posted write (command issue) over the loose link. */
    sim::CoTask<void>
    looseIssue()
    {
        co_await sim::Delay{loose_.issue};
    }

    /** Charge one read round trip (status/response) over the loose link. */
    sim::CoTask<void>
    looseResponse()
    {
        co_await sim::Delay{loose_.response};
    }

    /** Pure compute: advance this hart's clock. */
    sim::CoTask<void>
    delay(Cycle cycles)
    {
        co_await sim::Delay{cycles};
    }

    // -- Custom task-scheduling instructions (Table I) --

    sim::CoTask<bool>
    submissionRequest(unsigned num_packets)
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.submissionRequest(num_packets);
    }

    sim::CoTask<bool>
    submitPacket(std::uint32_t packet)
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.submitPacket(packet);
    }

    sim::CoTask<bool>
    submitThreePackets(std::uint64_t rs1, std::uint64_t rs2)
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.submitThreePackets(rs1, rs2);
    }

    sim::CoTask<bool>
    readyTaskRequest()
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.readyTaskRequest();
    }

    sim::CoTask<std::optional<std::uint64_t>>
    fetchSwId()
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.fetchSwId();
    }

    sim::CoTask<std::optional<std::uint32_t>>
    fetchPicosId()
    {
        co_await sim::Delay{params_.roccLatency};
        co_return delegate_.fetchPicosId();
    }

    /** Retire Task: the one blocking instruction (Section IV-B). */
    sim::CoTask<void>
    retireTask(std::uint32_t picos_id)
    {
        co_await sim::Delay{params_.roccLatency};
        if (!delegate_.retireCanAccept()) {
            delegate::PicosDelegate *del = &delegate_;
            co_await sim::WaitUntil{
                [del] { return del->retireCanAccept(); }};
        }
        delegate_.retireTask(picos_id);
    }

    // -- Memory operations (runtime data structures) --

    sim::CoTask<void>
    read(Addr addr)
    {
        if (timed_) {
            timed_->issue(core_, mem::MemOp::Read, addr, 1);
            co_await sim::BlockHart{};
        } else {
            co_await sim::Delay{mem_.read(core_, addr)};
        }
    }

    sim::CoTask<void>
    write(Addr addr)
    {
        if (timed_) {
            timed_->issue(core_, mem::MemOp::Write, addr, 1);
            co_await sim::BlockHart{};
        } else {
            co_await sim::Delay{mem_.write(core_, addr)};
        }
    }

    sim::CoTask<void>
    atomicRmw(Addr addr)
    {
        if (timed_) {
            timed_->issue(core_, mem::MemOp::Atomic, addr, 1);
            co_await sim::BlockHart{};
        } else {
            co_await sim::Delay{mem_.atomicRmw(core_, addr)};
        }
    }

    /**
     * Touch @p lines consecutive cache lines starting at @p base. Inline
     * mode charges the serial sum of latencies; timed mode issues the
     * burst through the L1 front-end, so misses overlap up to the MSHR
     * count and the hart resumes at the last response.
     */
    sim::CoTask<void>
    streamTouch(Addr base, unsigned lines, bool is_write)
    {
        if (lines == 0)
            co_return; // no lines, no traffic — in either memory mode
        if (timed_) {
            timed_->issue(core_,
                          is_write ? mem::MemOp::Write : mem::MemOp::Read,
                          base, lines);
            co_await sim::BlockHart{};
        } else {
            co_await sim::Delay{
                mem_.streamTouch(core_, base, lines, is_write)};
        }
    }

    // -- Task payload execution --

    /**
     * Execute a task body of @p base_cycles, inflated by memory-bandwidth
     * contention with other concurrently executing payloads.
     */
    sim::CoTask<void>
    executePayload(Cycle base_cycles)
    {
        bw_.beginPayload();
        const Cycle cost = bw_.inflate(base_cycles);
        co_await sim::Delay{cost};
        bw_.endPayload();
    }

  private:
    CoreId core_;
    delegate::PicosDelegate &delegate_;
    mem::CoherentMemory &mem_;
    BandwidthModel &bw_;
    HartApiParams params_;
    mem::TimedMemory *timed_;

    /**
     * Loose-link costs; zero (combinational) until a runtime installs
     * its calibrated MMIO timings via setLooseLink() — Nanos-AXI does so
     * from its cost model at install().
     */
    sim::LinkTimings loose_{};
};

} // namespace picosim::cpu

#endif // PICOSIM_CPU_HART_API_HH
