/** @file Unit tests for the Program/Task representation. */

#include <gtest/gtest.h>

#include "runtime/task_types.hh"

using namespace picosim;
using namespace picosim::rt;

TEST(Program, SpawnAssignsDenseIds)
{
    Program p;
    EXPECT_EQ(p.spawn(100), 0u);
    EXPECT_EQ(p.spawn(200), 1u);
    p.taskwait();
    EXPECT_EQ(p.spawn(300), 2u);
    EXPECT_EQ(p.numTasks(), 3u);
    EXPECT_EQ(p.actions.size(), 4u);
}

TEST(Program, SerialPayloadSumsSpawnsOnly)
{
    Program p;
    p.spawn(100);
    p.taskwait();
    p.spawn(250);
    EXPECT_EQ(p.serialPayloadCycles(), 350u);
    EXPECT_DOUBLE_EQ(p.meanTaskSize(), 175.0);
}

TEST(Program, EmptyProgramIsWellDefined)
{
    Program p;
    EXPECT_EQ(p.numTasks(), 0u);
    EXPECT_EQ(p.serialPayloadCycles(), 0u);
    EXPECT_DOUBLE_EQ(p.meanTaskSize(), 0.0);
}

TEST(Program, TaskByIdFindsEveryTask)
{
    Program p;
    for (unsigned i = 0; i < 10; ++i)
        p.spawn(100 + i, {{0x1000ull + i * 64, Dir::Out}});
    for (unsigned i = 0; i < 10; ++i) {
        const Task &t = p.taskById(i);
        EXPECT_EQ(t.id, i);
        EXPECT_EQ(t.payload, 100u + i);
    }
}

TEST(Program, TaskByIdRejectsUnknown)
{
    Program p;
    p.spawn(100);
    EXPECT_THROW(p.taskById(5), std::runtime_error);
}

TEST(Program, IndexRebuildsAfterGrowth)
{
    Program p;
    p.spawn(100);
    EXPECT_EQ(p.taskById(0).payload, 100u);
    p.spawn(200); // index must refresh lazily
    EXPECT_EQ(p.taskById(1).payload, 200u);
}

TEST(Program, DepsArePreserved)
{
    Program p;
    std::vector<TaskDep> deps{{0xA0, Dir::In}, {0xB0, Dir::InOut}};
    p.spawn(1'000, deps);
    EXPECT_EQ(p.taskById(0).deps, deps);
}
