/**
 * @file
 * Structural and timing parameters of the Picos accelerator model.
 *
 * Queue widths and packet counts come straight from the paper (Figures 3-5);
 * internal pipeline cycle counts are calibrated so the end-to-end hardware
 * contribution to task lifetime matches the published Phentos overhead
 * (185-423 cycles, Figure 7) — see DESIGN.md substitution #2.
 */

#ifndef PICOSIM_PICOS_PICOS_PARAMS_HH
#define PICOSIM_PICOS_PICOS_PARAMS_HH

#include "sim/types.hh"

namespace picosim::picos
{

struct PicosParams
{
    /** Task reservation entries (max in-flight tasks inside Picos). */
    unsigned trsEntries = 256;

    /** Dependence-table geometry (set-associative, keyed by address). */
    unsigned dctSets = 64;
    unsigned dctWays = 8;

    /** Submission packet FIFO depth (32-bit packets). */
    unsigned subQueueDepth = 64;

    /** Ready packet FIFO depth (32-bit packets; 3 per ready task). */
    unsigned readyQueueDepth = 24;

    /** Retirement FIFO depth (one Picos ID per slot). */
    unsigned retireQueueDepth = 16;

    /** Cycles to process a decoded task header. */
    Cycle headerCycles = 2;

    /** Cycles per dependence lookup/insert in the dependence table. */
    Cycle depCycles = 2;

    /**
     * Cycles to stream one ready task's three packets to the ready queue.
     * Combined with the manager-side encoder this yields the 8-cycle
     * ready-fetch latency called out in Section IV-F2.
     */
    Cycle readyIssueCycles = 5;

    /** Cycles to process one retirement (graph update per dependent edge
     *  is wakeupCycles extra). */
    Cycle retireCycles = 30;
    Cycle wakeupCycles = 6;
};

} // namespace picosim::picos

#endif // PICOSIM_PICOS_PICOS_PARAMS_HH
