/**
 * @file
 * The simulation kernel: owns the clock, schedules component evaluations
 * through a bitmap timing wheel, fast-forwards across quiescent periods.
 * Optionally partitioned into conservative-PDES domains (sim/domain.hh)
 * that execute lookahead windows on multiple host threads.
 */

#ifndef PICOSIM_SIM_KERNEL_HH
#define PICOSIM_SIM_KERNEL_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "sim/checkpoint.hh"
#include "sim/clock.hh"
#include "sim/domain.hh"
#include "sim/event_wheel.hh"
#include "sim/small_fn.hh"
#include "sim/stats.hh"
#include "sim/ticked.hh"
#include "sim/types.hh"

namespace picosim::sim
{

/** Kernel evaluation strategy. */
enum class EvalMode : std::uint8_t
{
    /**
     * Event-driven: components are evaluated only at cycles for which they
     * are scheduled (self-rescheduling after each tick plus explicit
     * requestWake() calls on external mutations). Same-cycle evaluations
     * run in registration order, so results are bit-identical to TickWorld.
     */
    EventDriven,

    /**
     * Reference tick-the-world kernel: every registered component is
     * ticked, in registration order, for every cycle in which at least one
     * reports active(); when all are quiescent the clock jumps to the
     * minimum wakeAt(). Kept as the equivalence baseline.
     */
    TickWorld,
};

/** Non-allocating done-predicate storage for the run loop. */
using DonePredicate = SmallFn<bool(), 32>;

/**
 * Cooperative stop request for the run loop: polled at deterministic
 * schedule boundaries (every kStopCheckStride dispatched cycles on the
 * sequential kernels, every window barrier on the PDES loop) and never
 * mid-cycle, so a stopped run ends at a clean point in the schedule.
 * Must not throw (the PDES coordination step is noexcept). The harness
 * composes cancellation tokens and wall-clock deadlines into one check.
 */
using StopCheck = std::function<bool()>;

/**
 * Checkpoint notification: invoked from the run loop at deterministic
 * boundary cycles (see setCheckpointHook). The argument is the boundary
 * label — a multiple of the checkpoint stride on the sequential
 * kernels, the just-completed window-barrier cycle under PDES. Like
 * StopCheck, the hook is called at the same points for any host thread
 * count and must not throw (the PDES coordination step is noexcept);
 * the harness wraps user callbacks accordingly.
 */
using CheckpointHook = std::function<void(Cycle)>;

/**
 * Cycle-exact simulator over a bitmap timing-wheel scheduler.
 *
 * Scheduling contract (the deterministic same-cycle ordering rule):
 * every component holds exactly ONE armed entry — the minimum of its
 * kernel re-arm (self-schedule) and its earliest pending external wake —
 * stored as one bit in the wheel bucket of that cycle. Components due in
 * the same cycle are dispatched in REGISTRATION ORDER (bucket bits are
 * iterated word by word, lowest index first), independent of the order
 * wakes were requested in — the invariant that makes the event-driven
 * schedule produce bit-identical results to ticking the world every
 * active cycle. Schedule and cancel are O(1) bit operations; same-cycle
 * events batch into one bucket dispatch; far-future wakes (beyond the
 * wheel horizon) sit in a per-component far set until they come within
 * range.
 *
 * Conservative-PDES partitioning: configureDomains(N) splits the kernel
 * into N domains, each with its own clock/wheel/registration order, run
 * in lookahead windows that are bit-identical for any host thread count
 * (see sim/domain.hh for the full argument). Unpartitioned simulators
 * (the default) never touch any of the windowed machinery — the
 * sequential hot path is byte-for-byte the pre-PDES one.
 */
class Simulator
{
  public:
    Simulator() = default;

    explicit Simulator(EvalMode mode) : mode_(mode) {}

    Clock &clock() { return main_.clock; }
    const Clock &clock() const { return main_.clock; }
    StatGroup &stats() { return stats_; }

    EvalMode evalMode() const { return mode_; }

    /** Select the evaluation strategy; call before the first run. */
    void setEvalMode(EvalMode mode) { mode_ = mode; }

    // -- Conservative-PDES domain partitioning ---------------------------

    /**
     * Partition the kernel into @p count domains before any component is
     * registered. count <= 1 is a no-op (the clean sequential fallback):
     * the simulator stays on the unpartitioned fast path. Incompatible
     * with TickWorld (the reference kernel is sequential by definition).
     */
    void configureDomains(unsigned count);

    /** Number of domains (1 when unpartitioned). */
    unsigned numDomains() const
    {
        return 1u + static_cast<unsigned>(extraDomains_.size());
    }

    /** True when configureDomains() armed the windowed run loop. */
    bool partitioned() const { return windowed_; }

    /** The clock of domain @p d — bind ports to their CONSUMER's domain
     *  clock so frontReady()/nextReadyCycle() read consumer-local time. */
    const Clock &domainClock(unsigned d) const;

    /**
     * Host threads used by the windowed run loop (clamped to the domain
     * count at run time). The windowed schedule itself is identical for
     * any value — this only selects how many OS threads execute it.
     */
    void setHostThreads(unsigned n) { hostThreads_ = n == 0 ? 1 : n; }
    unsigned hostThreads() const { return hostThreads_; }

    /**
     * Declare a timed link from domain @p src to domain @p dst. @p latency
     * (>= 1) bounds the lookahead window for that ordered pair; @p drain
     * is invoked single-threaded at window boundaries (only when traffic
     * was staged — see markLinkDirty) to replay the link's staged traffic
     * into the consumer domain. @p name labels the link in diagnostics.
     * @return the link id the producer passes to markLinkDirty().
     */
    unsigned registerCrossDomainLink(unsigned src, unsigned dst,
                                     Cycle latency,
                                     std::function<void()> drain,
                                     std::string name = {});

    /** Endpoint-less form: the link constrains EVERY ordered domain pair
     *  (and its drain runs whenever any link is dirty). */
    unsigned
    registerCrossDomainLink(Cycle latency, std::function<void()> drain)
    {
        return registerCrossDomainLink(CrossDomainLink::kAllPairs,
                                       CrossDomainLink::kAllPairs, latency,
                                       std::move(drain));
    }

    /** Lookahead window floor: min latency over ALL cross-domain links
     *  (1 when none are registered). Windows derived from the pairwise
     *  matrix are never shorter than nextEvent + this. */
    Cycle
    lookahead() const
    {
        return lookaheadMin_ == kCycleNever ? 1 : lookaheadMin_;
    }

    /** Min declared latency over links from @p src to @p dst, including
     *  endpoint-less links; kCycleNever when unconstrained. */
    Cycle pairLookahead(unsigned src, unsigned dst) const;

    /** Min over destinations of pairLookahead(src, d): the lookahead a
     *  live domain @p src contributes to the window bound. */
    Cycle minOutLookahead(unsigned src) const;

    /** The domain whose clock is @p clk (addresses identify domains). */
    unsigned domainOfClock(const Clock &clk) const;

    /** Record that link @p linkId staged its first item since the last
     *  boundary (producer-thread call; routed to the current domain's
     *  dirty list, or the harness list outside any window). */
    void markLinkDirty(unsigned linkId);

    // -- Per-domain window accounting (benches, tests; not stats) --------
    std::uint64_t windowBarriers() const { return windowBarriers_; }
    std::uint64_t domainWindowsRun(unsigned d) const;
    std::uint64_t domainWindowsSkipped(unsigned d) const;

    // -- Registration and scheduling -------------------------------------

    /**
     * Register a component; order defines same-cycle evaluation order.
     * The component is scheduled for an initial evaluation at the current
     * cycle (the reference kernel ticks everything on the first evaluated
     * cycle; the event queue reproduces that).
     */
    void addTicked(Ticked *component) { addTicked(component, 0); }

    /** Register @p component into domain @p domain (< numDomains()). */
    void addTicked(Ticked *component, unsigned domain);

    /**
     * Schedule @p component for evaluation at (or after) @p cycle.
     * Requests for the current cycle made at or before the component's
     * registration slot are honored this cycle; later ones slip to the
     * next cycle (its slot in the reference schedule has already passed).
     * No-op in TickWorld mode, where every active cycle ticks everything.
     * Cross-domain requests made from another domain's window are
     * captured in an outbox and applied at the next window boundary.
     */
    void requestWake(Ticked *component, Cycle cycle);

    /**
     * Run until the predicate holds (checked once per evaluated cycle, or
     * once per window boundary when partitioned) or the cycle limit is
     * exceeded. The predicate must be a small trivially-copyable callable
     * (it is stored inline, never allocated).
     *
     * @return true if the predicate was satisfied, false on cycle-limit.
     */
    bool run(DonePredicate done, Cycle limit = kCycleNever);

    /** Run for exactly n cycles of simulated time. Stop checks do not
     *  apply (bounded-time runs are harness warmup/probe helpers). */
    void runFor(Cycle n);

    // -- Cooperative stop (cancellation / wall-clock timeouts) -----------

    /** Dispatched-cycle stride between stop-check polls on the
     *  sequential kernels (the PDES loop polls every window barrier). */
    static constexpr std::uint64_t kStopCheckStride = 1024;

    /**
     * Install (or clear, with an empty function) the cooperative stop
     * check. When the check returns true, run() returns false at the
     * next polling boundary and stoppedByCheck() reports why the run
     * ended. The check must not throw.
     */
    void
    setStopCheck(StopCheck check)
    {
        stopCheck_ = std::move(check);
    }

    /** True when the last run() ended because the stop check fired
     *  (as opposed to completing or exhausting the cycle limit). */
    bool stoppedByCheck() const { return stoppedByCheck_; }

    // -- Checkpoints (deterministic cut points) --------------------------

    /**
     * Install (or clear, with an empty function) the checkpoint hook,
     * fired at deterministic boundaries roughly every @p every cycles.
     * Sequential kernels fire at the dispatch boundary of the first
     * evaluated cycle at or past each stride multiple, labeled with the
     * stride multiple itself; the PDES loop fires at the first window
     * barrier at or past it, labeled with the completed window-end
     * cycle. Either way the label sequence is a pure function of the
     * deterministic schedule — identical across reruns and host thread
     * counts — which is what makes a label a valid resume cut.
     */
    void
    setCheckpointHook(CheckpointHook hook, Cycle every)
    {
        cpHook_ = std::move(hook);
        cpEvery_ = cpHook_ ? every : 0;
        cpNext_ = cpEvery_;
    }

    /** Number of distinct cycles at which any component was evaluated
     *  (global across domains; deduplicated at window boundaries). */
    std::uint64_t evaluatedCycles() const { return evaluatedCycles_; }

    /** Total individual component tick() evaluations performed. */
    std::uint64_t componentTicks() const;

    /**
     * Component ticks a tick-the-world kernel would have performed over
     * the same evaluated cycles — the baseline for the event-driven win.
     */
    std::uint64_t
    tickWorldTicks() const
    {
        return evaluatedCycles_ * numComponents();
    }

    std::size_t numComponents() const;

  private:
    /** Arm @p t in the wheel (or far set) at the min of its self/external
     *  due cycles; @p now anchors the wheel horizon. */
    void arm(Domain &d, Ticked *t, Cycle now);

    /** Remove @p t's armed entry (wheel bit or far-set membership). */
    void disarm(Domain &d, Ticked *t);

    /** Consume t's earliest external wake, promoting any later one. */
    void consumeExternalHead(Ticked *t);

    /** Record an external wake at @p cycle (dedup, keep sorted). */
    void addExternal(Ticked *t, Cycle cycle);

    /** File far-armed components whose cycle entered the wheel horizon. */
    void refileFar(Domain &d, Cycle now);

    /** Tick every component due at the current cycle, registration order. */
    void evaluateDue(Domain &d);

    /**
     * Earliest future cycle holding a due component, re-validating pure
     * self-schedules against the components' live active()/wakeAt() so
     * the fast-forward target matches the reference kernel's fresh global
     * minimum. kCycleNever when nothing is armed.
     */
    Cycle refreshNextEventCycle(Domain &d);

    /** The wake-application body of requestWake(), on one domain. */
    void applyLocalWake(Domain &d, Ticked *component, Cycle cycle);

    // -- Windowed (PDES) run loop; see sim/domain.cc ---------------------
    Domain &domainAt(unsigned d);
    const Domain &domainAt(unsigned d) const;
    void requestWakeWindowed(Ticked *component, Cycle cycle);
    void runDomainWindow(Domain &d, Cycle windowEnd);
    void drainBoundary(Cycle boundary);
    void mergeWindowCycles();
    Cycle cachedGlobalNext() const;
    Cycle computeWindowEnd(Cycle globalNext) const;
    void advanceAllClocksTo(Cycle c);
    bool runWindowed(const DonePredicate &done, Cycle limit);
    void runForWindowed(Cycle n);

    // -- TickWorld reference implementation --
    bool runTickWorld(const DonePredicate &done, Cycle limit);
    void runForTickWorld(Cycle n);
    void evaluateAll();
    bool anyActive() const;
    Cycle nextWakeAll() const;

    StatGroup stats_;
    EvalMode mode_ = EvalMode::EventDriven;

    /** Domain 0: THE kernel state of an unpartitioned simulator — the
     *  sequential hot path reads only this member. */
    Domain main_;

    /** Domains 1..N-1; empty (never allocated) when unpartitioned. */
    std::vector<std::unique_ptr<Domain>> extraDomains_;

    bool windowed_ = false;   ///< configureDomains() armed the PDES loop
    unsigned hostThreads_ = 1;
    Cycle lookaheadMin_ = kCycleNever; ///< min cross-domain link latency
    std::vector<CrossDomainLink> crossLinks_;
    std::vector<Cycle> mergeScratch_; ///< window-cycle merge workspace

    /** Pairwise lookahead matrix (ndom x ndom, row-major): min declared
     *  latency over links with concrete (src, dst) endpoints. */
    std::vector<Cycle> pairMin_;
    /** Per-source row minimum of pairMin_ (maintained on registration). */
    std::vector<Cycle> minOut_;
    /** Min latency over endpoint-less (all-pairs) links. */
    Cycle allPairsMin_ = kCycleNever;

    /** Links dirtied from harness/coordinator context (no window live). */
    std::vector<unsigned> harnessDirtyLinks_;
    /** Endpoint-less links: drained at every boundary unconditionally. */
    std::vector<unsigned> allPairsLinks_;
    std::vector<unsigned> linkScratch_; ///< boundary dirty-link workspace

    std::uint64_t windowBarriers_ = 0; ///< coordination steps executed

    std::uint64_t evaluatedCycles_ = 0;

    StopCheck stopCheck_;            ///< empty = never stop early
    bool stoppedByCheck_ = false;    ///< last run() ended by the check
    std::uint64_t stopPollClock_ = 0; ///< dispatch counter for the stride

    CheckpointHook cpHook_; ///< empty = no checkpoints
    Cycle cpEvery_ = 0;     ///< checkpoint stride (0 = off)
    Cycle cpNext_ = 0;      ///< next boundary at or past which to fire

    /** Stride-gated poll of the stop check (sequential kernels). */
    bool
    stopCheckDue()
    {
        if (!stopCheck_)
            return false;
        if (++stopPollClock_ % kStopCheckStride != 0)
            return false;
        return stopCheck_();
    }

    /**
     * Sequential-kernel checkpoint poll, called at the cycle-dispatch
     * boundary (nothing of cycle @p now evaluated yet). Fires with the
     * stride-multiple label `now - now % cpEvery_`: the first dispatch
     * at or past label L is itself deterministic, so the label sequence
     * is reproducible even though evaluated cycles are sparse.
     */
    void
    checkpointDue(Cycle now)
    {
        if (cpEvery_ == 0 || now < cpNext_)
            return;
        const Cycle label = now - now % cpEvery_;
        cpHook_(label);
        cpNext_ = label + cpEvery_;
    }
};

} // namespace picosim::sim

#endif // PICOSIM_SIM_KERNEL_HH
