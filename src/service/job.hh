/**
 * @file
 * Job: the unit of work of the service layer. A job is an ordered list
 * of canonical RunSpecs (its runs) plus execution limits; the
 * JobManager moves it through a small state machine:
 *
 *     queued ──> running ──> done | failed | timeout
 *        │           │
 *        └───────────┴─────> cancelled
 *
 * Final-state precedence when several causes coincide on one job:
 * cancelled > timeout > failed > done. Per-run outcomes stay visible in
 * the rows (rt::RunStatus), so a timed-out job still reports which runs
 * finished cleanly before the deadline.
 */

#ifndef PICOSIM_SERVICE_JOB_HH
#define PICOSIM_SERVICE_JOB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "runtime/runtime.hh"
#include "spec/run_spec.hh"

namespace picosim::svc
{

enum class JobState : std::uint8_t
{
    Queued,    ///< admitted, no run dispatched yet
    Running,   ///< at least one run dispatched
    Done,      ///< every run finished with Ok/CycleLimit
    Failed,    ///< a run threw; first message in JobStatus::error
    Cancelled, ///< cancel() observed (wins over every other outcome)
    TimedOut,  ///< the job's wall-clock deadline fired
};

constexpr const char *
jobStateName(JobState s)
{
    switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Failed: return "failed";
    case JobState::Cancelled: return "cancelled";
    case JobState::TimedOut: return "timeout";
    }
    return "?";
}

constexpr bool
jobStateFinal(JobState s)
{
    return s != JobState::Queued && s != JobState::Running;
}

/** Inverse of jobStateName (journal recovery, client parsing). */
JobState jobStateFromName(const std::string &name);

/** What a client submits: the runs plus per-job execution limits. */
struct JobSpec
{
    std::vector<spec::RunSpec> runs; ///< canonical specs, one per run
    double timeoutSec = 0.0;   ///< 0 = manager default (0 there = none)
    unsigned maxInFlight = 0;  ///< cap on this job's concurrent runs
    bool captureStatDumps = false; ///< keep the full stat dump per run
    std::string tag;           ///< caller label, carried through verbatim
};

/** Point-in-time snapshot of one job (value type, safe to hold). */
struct JobStatus
{
    std::uint64_t id = 0;
    std::string tag;
    JobState state = JobState::Queued;
    std::size_t runsTotal = 0;
    std::size_t runsDone = 0;
    std::string error; ///< first failure message (state == Failed)
    std::uint64_t startSeq = 0; ///< dispatch order, 1-based; 0 = never started
};

/** One finished (or skipped) run of a job. */
struct RunRow
{
    rt::RunResult result;
    std::string statDump; ///< full stats text when captureStatDumps
    bool done = false;    ///< false: not run (job cancelled while queued)
};

} // namespace picosim::svc

#endif // PICOSIM_SERVICE_JOB_HH
