/**
 * @file
 * Reproduces Figure 9 (normalized benchmark performance for all 37 inputs
 * and the three runtimes) plus the Section VI-B1 headline geomeans:
 * Nanos-RV 2.13x over Nanos-SW, Phentos 13.19x over Nanos-SW and 6.20x
 * over Nanos-RV; max speedups vs serial of 5.62x (Nanos-RV) and 5.72x
 * (Phentos).
 */

#include <algorithm>
#include <cstdio>

#include "bench/bench_util.hh"
#include "bench/fig_common.hh"

using namespace picosim;
using namespace picosim::bench;

int
main()
{
    std::printf("# Figure 9: speedup over serial, 8 cores\n");
    std::printf("%-14s %-12s %7s %10s %9s %9s %9s\n", "program", "input",
                "tasks", "task_size", "Nanos-SW", "Nanos-RV", "Phentos");

    const auto rows = runFigure9Matrix();

    std::vector<double> rv_over_sw, ph_over_sw, ph_over_rv;
    double max_rv = 0.0, max_ph = 0.0;
    for (const auto &row : rows) {
        std::printf("%-14s %-12s %7llu %10.0f %9.2f %9.2f %9.2f\n",
                    row.program.c_str(), row.label.c_str(),
                    static_cast<unsigned long long>(row.tasks),
                    row.meanTaskSize, row.speedupSw(), row.speedupRv(),
                    row.speedupPh());
        if (row.nanosSw && row.nanosRv)
            rv_over_sw.push_back(MatrixRow::ratio(row.nanosSw, row.nanosRv));
        if (row.nanosSw && row.phentos)
            ph_over_sw.push_back(MatrixRow::ratio(row.nanosSw, row.phentos));
        if (row.nanosRv && row.phentos)
            ph_over_rv.push_back(MatrixRow::ratio(row.nanosRv, row.phentos));
        max_rv = std::max(max_rv, row.speedupRv());
        max_ph = std::max(max_ph, row.speedupPh());
    }

    std::printf("\n# Headline aggregates (paper Section VI-B1)\n");
    std::printf("%-36s %9s %9s\n", "metric", "measured", "paper");
    std::printf("%-36s %9.2f %9.2f\n", "geomean Nanos-RV over Nanos-SW",
                geomean(rv_over_sw), 2.13);
    std::printf("%-36s %9.2f %9.2f\n", "geomean Phentos over Nanos-SW",
                geomean(ph_over_sw), 13.19);
    std::printf("%-36s %9.2f %9.2f\n", "geomean Phentos over Nanos-RV",
                geomean(ph_over_rv), 6.20);
    std::printf("%-36s %9.2f %9.2f\n", "max Nanos-RV speedup vs serial",
                max_rv, 5.62);
    std::printf("%-36s %9.2f %9.2f\n", "max Phentos speedup vs serial",
                max_ph, 5.72);

    unsigned rv_wins = 0, ph_wins_sw = 0, ph_wins_rv = 0;
    for (const auto &row : rows) {
        if (row.nanosRv && row.nanosSw && row.nanosRv < row.nanosSw)
            ++rv_wins;
        if (row.phentos && row.nanosSw && row.phentos < row.nanosSw)
            ++ph_wins_sw;
        if (row.phentos && row.nanosRv && row.phentos < row.nanosRv)
            ++ph_wins_rv;
    }
    std::printf("\n# Win counts out of %zu inputs "
                "(paper: 34/37, 36/37, 34/37)\n",
                rows.size());
    std::printf("Nanos-RV beats Nanos-SW : %u\n", rv_wins);
    std::printf("Phentos beats Nanos-SW  : %u\n", ph_wins_sw);
    std::printf("Phentos beats Nanos-RV  : %u\n", ph_wins_rv);
    return 0;
}
