/**
 * @file
 * JobQueue: the admission-bounded FIFO of job ids awaiting dispatch.
 *
 * Deliberately not thread-safe — it lives under the JobManager's lock,
 * which also guards the per-job bookkeeping the dispatch scan reads.
 * Keeping it a separate value type pins down the ordering contract
 * (strict admission order; removal anywhere for cancel-while-queued)
 * and makes it unit-testable without a worker pool.
 */

#ifndef PICOSIM_SERVICE_JOB_QUEUE_HH
#define PICOSIM_SERVICE_JOB_QUEUE_HH

#include <cstddef>
#include <cstdint>
#include <deque>

namespace picosim::svc
{

class JobQueue
{
  public:
    /** @p maxQueued 0 = unbounded admission. */
    explicit JobQueue(std::size_t maxQueued = 0) : maxQueued_(maxQueued) {}

    bool
    full() const
    {
        return maxQueued_ != 0 && q_.size() >= maxQueued_;
    }

    /** Admit @p id at the back; false (and no change) when full. */
    bool push(std::uint64_t id);

    /** Remove @p id wherever it sits; false when absent. */
    bool remove(std::uint64_t id);

    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }

    /** Ids in dispatch order, front first (for the manager's scan). */
    const std::deque<std::uint64_t> &items() const { return q_; }

  private:
    std::deque<std::uint64_t> q_;
    std::size_t maxQueued_;
};

} // namespace picosim::svc

#endif // PICOSIM_SERVICE_JOB_QUEUE_HH
