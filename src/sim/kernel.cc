#include "sim/kernel.hh"

#include <algorithm>

#include "sim/log.hh"

namespace picosim::sim
{

void
Ticked::requestWake(Cycle cycle)
{
    if (sim_)
        sim_->requestWake(this, cycle);
}

void
Simulator::addTicked(Ticked *component)
{
    if (component->sim_ && component->sim_ != this)
        fatal("Ticked '" + component->name() +
              "' already registered with another Simulator");
    component->sim_ = this;
    component->regIndex_ = static_cast<unsigned>(ticked_.size());
    ticked_.push_back(component);
    // Initial evaluation at the current cycle, like the reference kernel's
    // first tick-the-world pass.
    component->extEarliest_ = clock_.now();
    events_.push(
        Event{clock_.now(), component->regIndex_, component, true});
}

void
Simulator::scheduleSelf(Ticked *component, Cycle cycle)
{
    // The previous self entry (if any) becomes stale by construction:
    // selfSched_ identifies the single valid one.
    component->selfSched_ = cycle;
    if (cycle != kCycleNever)
        events_.push(Event{cycle, component->regIndex_, component, false});
}

void
Simulator::requestWake(Ticked *component, Cycle cycle)
{
    if (mode_ == EvalMode::TickWorld)
        return; // the polling kernel re-queries everything each cycle
    const Cycle now = clock_.now();
    Cycle c = std::max(cycle, now);
    if (c == now && evaluating_ &&
        (component->lastTick_ == now ||
         component->regIndex_ <= currentRegIndex_)) {
        // The component's evaluation slot for this cycle has passed; the
        // reference kernel would make this state visible to it next cycle.
        c = now + 1;
    }
    if (c == kCycleNever)
        return;
    if (c == component->extEarliest_)
        return; // duplicate of the tracked earliest pending wake
    if (c < component->extEarliest_)
        component->extEarliest_ = c;
    events_.push(Event{c, component->regIndex_, component, true});
}

void
Simulator::evaluateDue()
{
    const Cycle now = clock_.now();

    // Re-file leftovers scheduled in the past (possible across run/runFor
    // boundaries) at the current cycle so same-cycle evaluation order is
    // still registration order.
    while (!events_.empty() && events_.top().cycle < now) {
        const Event e = events_.top();
        events_.pop();
        if (e.external) {
            if (e.cycle == e.component->extEarliest_)
                e.component->extEarliest_ = now;
        } else {
            if (e.cycle != e.component->selfSched_)
                continue; // stale self entry
            e.component->selfSched_ = now;
        }
        events_.push(Event{now, e.regIndex, e.component, e.external});
    }

    bool tickedAny = false;
    evaluating_ = true;
    while (!events_.empty() && events_.top().cycle == now) {
        const Event e = events_.top();
        events_.pop();
        Ticked *t = e.component;
        if (e.external) {
            if (t->extEarliest_ == e.cycle)
                t->extEarliest_ = kCycleNever; // tracked wake consumed
        } else {
            if (e.cycle != t->selfSched_)
                continue; // stale self entry
            t->selfSched_ = kCycleNever;
        }
        if (t->lastTick_ == now)
            continue; // already evaluated this cycle (duplicate entry)
        t->lastTick_ = now;
        currentRegIndex_ = e.regIndex;

        t->tick();
        ++componentTicks_;
        tickedAny = true;

        // Re-arm at the component's own next due cycle; wakes requested
        // during its own tick have entered the queue on their own.
        const Cycle self = t->active() ? now + 1 : t->wakeAt();
        scheduleSelf(t, self == kCycleNever ? kCycleNever
                                            : std::max(self, now + 1));
    }
    evaluating_ = false;
    if (tickedAny)
        ++evaluatedCycles_;
}

Cycle
Simulator::refreshNextEventCycle()
{
    const Cycle now = clock_.now();
    while (!events_.empty()) {
        const Event e = events_.top();
        Ticked *t = e.component;
        if (e.external)
            return e.cycle; // explicit request — always honored
        if (e.cycle != t->selfSched_) {
            events_.pop();
            continue; // stale self entry
        }
        // Re-validate self entries against the component's live state so
        // the fast-forward target equals the reference kernel's freshly
        // computed global minimum (a consumer may have emptied the queue
        // the entry was scheduled for, pushing the real due cycle out).
        Cycle fresh = t->active() ? now + 1 : t->wakeAt();
        if (fresh != kCycleNever)
            fresh = std::max(fresh, now + 1);
        if (fresh == e.cycle)
            return e.cycle;
        events_.pop();
        scheduleSelf(t, fresh);
    }
    return kCycleNever;
}

bool
Simulator::run(const std::function<bool()> &done, Cycle limit)
{
    if (mode_ == EvalMode::TickWorld)
        return runTickWorld(done, limit);

    const Cycle start = clock_.now();
    while (true) {
        if (done())
            return true;
        if (clock_.now() - start >= limit)
            return false;

        evaluateDue();

        const Cycle next = refreshNextEventCycle();
        if (next == kCycleNever) {
            // Fully idle system: either done() holds now or the
            // simulation can never progress again.
            return done();
        }
        clock_.advanceTo(next);
    }
}

void
Simulator::runFor(Cycle n)
{
    if (mode_ == EvalMode::TickWorld) {
        runForTickWorld(n);
        return;
    }

    const Cycle end = clock_.now() + n;
    while (clock_.now() < end) {
        evaluateDue();
        const Cycle next = refreshNextEventCycle();
        clock_.advanceTo(std::min(next == kCycleNever ? end : next, end));
    }
}

// -- TickWorld reference implementation ---------------------------------

void
Simulator::evaluateAll()
{
    for (Ticked *t : ticked_)
        t->tick();
    componentTicks_ += ticked_.size();
    ++evaluatedCycles_;
}

bool
Simulator::anyActive() const
{
    return std::any_of(ticked_.begin(), ticked_.end(),
                       [](const Ticked *t) { return t->active(); });
}

Cycle
Simulator::nextWakeAll() const
{
    Cycle wake = kCycleNever;
    for (const Ticked *t : ticked_)
        wake = std::min(wake, t->wakeAt());
    return wake;
}

bool
Simulator::runTickWorld(const std::function<bool()> &done, Cycle limit)
{
    const Cycle start = clock_.now();
    while (true) {
        if (done())
            return true;
        if (clock_.now() - start >= limit)
            return false;

        evaluateAll();

        if (anyActive()) {
            clock_.advanceTo(clock_.now() + 1);
            continue;
        }
        const Cycle wake = nextWakeAll();
        if (wake == kCycleNever) {
            // Fully idle system: either done() holds next check or the
            // simulation can never progress again.
            return done();
        }
        clock_.advanceTo(std::max(wake, clock_.now() + 1));
    }
}

void
Simulator::runForTickWorld(Cycle n)
{
    const Cycle end = clock_.now() + n;
    while (clock_.now() < end) {
        evaluateAll();
        Cycle next = clock_.now() + 1;
        if (!anyActive()) {
            const Cycle wake = nextWakeAll();
            if (wake != kCycleNever)
                next = std::max(next, wake);
            else
                next = end;
        }
        clock_.advanceTo(std::min(next, end));
    }
}

} // namespace picosim::sim
