/** @file Unit tests for the CPU layer: cores, hart API, bandwidth, system. */

#include <gtest/gtest.h>

#include "cpu/system.hh"

using namespace picosim;
using namespace picosim::cpu;

TEST(BandwidthModel, SoloPayloadNotInflated)
{
    BandwidthModel bw(0.058);
    bw.beginPayload();
    EXPECT_EQ(bw.inflate(1000), 1000u);
    bw.endPayload();
}

TEST(BandwidthModel, EightCoresSaturateNearPaperCeiling)
{
    BandwidthModel bw(0.058);
    for (int i = 0; i < 8; ++i)
        bw.beginPayload();
    // 8 cores: inflation 1 + 7*alpha -> speedup ceiling 8/1.406 = 5.69.
    const double inflated = static_cast<double>(bw.inflate(1'000'000));
    // 8 cores finish 8 units of work in one inflated unit of time.
    const double ceiling = 8.0 * 1'000'000.0 / inflated;
    EXPECT_NEAR(ceiling, 5.69, 0.05);
    for (int i = 0; i < 8; ++i)
        bw.endPayload();
}

TEST(System, ConstructsWithConfiguredCores)
{
    SystemParams p;
    p.numCores = 4;
    System sys(p);
    EXPECT_EQ(sys.numCores(), 4u);
    EXPECT_EQ(sys.memory().numCores(), 4u);
    EXPECT_EQ(sys.manager().numCores(), 4u);
}

TEST(System, RunsInstalledThreadsToCompletion)
{
    System sys(SystemParams{.numCores = 2});
    int done = 0;
    auto body = [](cpu::HartApi &api, int *d) -> sim::CoTask<void> {
        co_await api.delay(100);
        ++*d;
    };
    sys.installThread(0, body(sys.hartApi(0), &done));
    sys.installThread(1, body(sys.hartApi(1), &done));
    EXPECT_TRUE(sys.run(10'000));
    EXPECT_EQ(done, 2);
    EXPECT_GE(sys.clock().now(), 100u);
}

TEST(System, RunTimesOutOnLivelock)
{
    System sys(SystemParams{.numCores = 1});
    auto body = [](cpu::HartApi &api) -> sim::CoTask<void> {
        while (true)
            co_await api.delay(10);
    };
    sys.installThread(0, body(sys.hartApi(0)));
    EXPECT_FALSE(sys.run(1'000));
}

TEST(HartApi, RoccInstructionChargesLatency)
{
    System sys(SystemParams{.numCores = 1});
    Cycle t_before = 0, t_after = 0;
    auto body = [&](cpu::HartApi &api) -> sim::CoTask<void> {
        t_before = sys.clock().now();
        const bool ok = co_await api.submissionRequest(3);
        t_after = sys.clock().now();
        EXPECT_TRUE(ok);
    };
    sys.installThread(0, body(sys.hartApi(0)));
    ASSERT_TRUE(sys.run(1'000));
    EXPECT_EQ(t_after - t_before, sys.params().hartApi.roccLatency);
}

TEST(HartApi, PayloadInflatesUnderConcurrency)
{
    System sys(SystemParams{.numCores = 2});
    Cycle end0 = 0, end1 = 0;
    auto body = [&](cpu::HartApi &api, Cycle *end) -> sim::CoTask<void> {
        co_await api.executePayload(10'000);
        *end = sys.clock().now();
    };
    sys.installThread(0, body(sys.hartApi(0), &end0));
    sys.installThread(1, body(sys.hartApi(1), &end1));
    ASSERT_TRUE(sys.run(1'000'000));
    // The second payload to start sees concurrency 2 and inflates; the
    // first sampled concurrency 1 at start (inflation is sampled once).
    EXPECT_GE(end0, 10'000u);
    EXPECT_GT(end1, 10'000u);
}

TEST(HartApi, MemoryOpsAdvanceTime)
{
    System sys(SystemParams{.numCores = 1});
    Cycle spent = 0;
    auto body = [&](cpu::HartApi &api) -> sim::CoTask<void> {
        const Cycle t0 = sys.clock().now();
        co_await api.write(0x9000); // cold miss
        co_await api.read(0x9000);  // hit
        spent = sys.clock().now() - t0;
    };
    sys.installThread(0, body(sys.hartApi(0)));
    ASSERT_TRUE(sys.run(10'000));
    const auto &mp = sys.params().mem;
    EXPECT_GE(spent, mp.missLatency + 2 * mp.hitLatency);
}

TEST(HartApi, RetireTaskBlocksUntilAccepted)
{
    // Fill core 0's retirement buffer, then verify the blocking retire
    // completes once the round-robin arbiter drains it.
    System sys(SystemParams{.numCores = 1});
    bool finished = false;
    auto body = [&](cpu::HartApi &api) -> sim::CoTask<void> {
        // Depth is 2; pushing 3 back-to-back forces at least one blocking
        // wait inside retireTask.
        co_await api.retireTask(100); // bogus ids; Picos logs bad retire
        co_await api.retireTask(101);
        co_await api.retireTask(102);
        finished = true;
    };
    sys.installThread(0, body(sys.hartApi(0)));
    ASSERT_TRUE(sys.run(100'000));
    EXPECT_TRUE(finished);
    sys.simulator().runFor(100); // drain the manager's retire buffer
    EXPECT_EQ(sys.stats().scalarValue("picos.retirePackets"), 3.0);
}

class SystemCoreSweep : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(SystemCoreSweep, AllCoresCanTouchTheirDelegates)
{
    SystemParams p;
    p.numCores = GetParam();
    System sys(p);
    unsigned ok_count = 0;
    // The closure must outlive sys.run(): a coroutine born from a lambda
    // keeps a reference to the closure object, so a loop-local lambda
    // would dangle once its iteration ends.
    auto body = [&ok_count](cpu::HartApi &api) -> sim::CoTask<void> {
        const bool ok = co_await api.readyTaskRequest();
        if (ok)
            ++ok_count;
    };
    for (CoreId c = 0; c < p.numCores; ++c)
        sys.installThread(c, body(sys.hartApi(c)));
    ASSERT_TRUE(sys.run(10'000));
    EXPECT_EQ(ok_count, p.numCores);
}

INSTANTIATE_TEST_SUITE_P(Cores, SystemCoreSweep,
                         ::testing::Values(1, 2, 4, 8));
