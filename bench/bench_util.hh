/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 */

#ifndef PICOSIM_BENCH_BENCH_UTIL_HH
#define PICOSIM_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "runtime/harness.hh"

namespace picosim::bench
{

/** Geometric mean of positive values. */
inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

/** True when PICOSIM_QUICK is set: benches subsample their sweeps. */
inline bool
quickMode()
{
    const char *env = std::getenv("PICOSIM_QUICK");
    return env && *env && *env != '0';
}

/**
 * Measure the Figure 7 lifetime-overhead metric: single-core run (the
 * measuring thread both generates and executes tasks, as in the paper's
 * deadlock discussion), near-empty payloads, overhead = wall / tasks.
 */
inline double
lifetimeOverhead(rt::RuntimeKind kind, const rt::Program &prog,
                 const rt::HarnessParams &base = {})
{
    rt::HarnessParams hp = base;
    hp.numCores = 1;
    const rt::RunResult res = rt::runProgram(kind, prog, hp);
    if (!res.completed) {
        std::fprintf(stderr, "warning: %s did not complete %s\n",
                     res.runtime.c_str(), res.program.c_str());
        return 0.0;
    }
    return res.overheadPerTask();
}

} // namespace picosim::bench

#endif // PICOSIM_BENCH_BENCH_UTIL_HH
